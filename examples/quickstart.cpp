// Quickstart — a complete SplitBFT deployment in ~80 lines.
//
// Builds a 4-replica SplitBFT cluster (3 enclaves per replica + untrusted
// broker each), attests the Execution enclaves, establishes an encrypted
// client session, and runs a few key-value operations end-to-end.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "apps/kv_store.hpp"
#include "runtime/splitbft_cluster.hpp"

using namespace sbft;
using namespace sbft::runtime;

int main() {
  // 1. Configure the cluster: n = 3f+1 replicas.
  SplitClusterOptions options;
  options.config.n = 4;
  options.config.f = 1;
  options.config.batch_max = 8;
  options.seed = 2024;
  // Real Ed25519 signatures between enclaves, as in the paper.
  options.scheme = crypto::Scheme::Ed25519;

  // 2. Each replica's Execution enclave hosts a key-value store.
  SplitbftCluster cluster(
      options,
      splitbft::plain_app([] { return std::make_unique<apps::KvStore>(); }));

  // 3. Register a client and run attestation + session establishment:
  //    the client verifies enclave quotes against the platform attestation
  //    root, pins the expected compartment measurements, and provisions an
  //    AEAD session key to every Execution enclave via X25519.
  const ClientId client = kFirstClientId;
  cluster.add_client(client);
  if (!cluster.setup_sessions()) {
    std::fprintf(stderr, "attestation/session setup failed\n");
    return 1;
  }
  std::printf("sessions established with all %u Execution enclaves\n",
              cluster.config().n);

  // 4. Execute operations. Payloads are encrypted end-to-end: the ordering
  //    compartments and every untrusted broker only ever see ciphertext.
  const auto put = cluster.execute(
      client, apps::kv::encode_put(to_bytes("balance/alice"), to_bytes("100")));
  if (!put) {
    std::fprintf(stderr, "PUT failed\n");
    return 1;
  }
  std::printf("PUT balance/alice=100 -> status ok\n");

  const auto get =
      cluster.execute(client, apps::kv::encode_get(to_bytes("balance/alice")));
  if (!get) {
    std::fprintf(stderr, "GET failed\n");
    return 1;
  }
  const auto reply = apps::kv::decode_reply(*get);
  std::printf("GET balance/alice -> %s\n",
              reply ? to_string_view_copy(reply->value).c_str() : "?");

  // 5. Every replica executed the same history.
  std::printf("agreement across replicas: %s\n",
              cluster.check_agreement() ? "ok" : "VIOLATED");
  for (ReplicaId r = 0; r < cluster.config().n; ++r) {
    std::printf("  replica %u: executed through seq %llu\n", r,
                static_cast<unsigned long long>(
                    cluster.replica(r).exec().last_executed()));
  }
  return 0;
}
