// Load-generator process of a deployed cluster (see bench/run_cluster.py).
//
//   bft_loadgen --stack pbft --loadgen 0 --replicas 4 --loadgens 1 ...
//   ...       --clients 1000 --base-port 18000 [--host 127.0.0.1] ...
//   ...       [--uds-dir /tmp/sbft] [--seed 42] [--mode closed|open] ...
//   ...       [--warmup-ms 500] [--measure-ms 2000] [--think-us 0]
//
// Drives the PR-4 workload engine's stations over a TcpTransport against
// the live replicas and prints the standard workload JSON `Report` (plus
// the transport counters) to stdout. Exit code 0 iff the run sustained
// traffic and completed operations.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runtime/workload/tcp_cluster.hpp"

using namespace sbft;
using namespace sbft::runtime;
using workload::ClusterTopology;
using workload::LoadMode;
using workload::Options;
using workload::Report;
using workload::Stack;

namespace {

[[nodiscard]] const char* arg_value(int argc, char** argv, const char* flag,
                                    const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

[[nodiscard]] std::uint64_t arg_u64(int argc, char** argv, const char* flag,
                                    std::uint64_t fallback) {
  const char* v = arg_value(argc, argv, flag, nullptr);
  return v ? std::strtoull(v, nullptr, 10) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  ClusterTopology topology;
  topology.replicas = static_cast<std::uint32_t>(
      arg_u64(argc, argv, "--replicas", 4));
  topology.loadgens = static_cast<std::uint32_t>(
      arg_u64(argc, argv, "--loadgens", 1));
  const auto loadgen = static_cast<std::uint32_t>(
      arg_u64(argc, argv, "--loadgen", 0));
  const std::string host = arg_value(argc, argv, "--host", "127.0.0.1");
  const auto base_port = arg_u64(argc, argv, "--base-port", 18000);
  const std::string uds_dir = arg_value(argc, argv, "--uds-dir", "");
  for (std::uint32_t node = 0; node < topology.nodes(); ++node) {
    topology.addrs.push_back(
        uds_dir.empty()
            ? host + ":" + std::to_string(base_port + node)
            : "unix:" + uds_dir + "/node" + std::to_string(node) + ".sock");
  }

  Options options;
  options.stack = std::strcmp(arg_value(argc, argv, "--stack", "pbft"),
                              "splitbft") == 0
                      ? Stack::Splitbft
                      : Stack::Pbft;
  options.mode = std::strcmp(arg_value(argc, argv, "--mode", "closed"),
                             "open") == 0
                     ? LoadMode::Open
                     : LoadMode::Closed;
  options.clients = static_cast<std::uint32_t>(
      arg_u64(argc, argv, "--clients", 1000));
  options.seed = arg_u64(argc, argv, "--seed", 42);
  options.think_time_us = arg_u64(argc, argv, "--think-us", 0);
  options.interarrival_us = arg_u64(argc, argv, "--interarrival-us", 20'000);
  options.warmup_us = arg_u64(argc, argv, "--warmup-ms", 500) * 1000;
  options.measure_us = arg_u64(argc, argv, "--measure-ms", 2000) * 1000;
  options.protocol.n = static_cast<std::uint32_t>(topology.replicas);
  options.protocol.f = (options.protocol.n - 1) / 3;
  options.protocol.batch_max = static_cast<std::size_t>(
      arg_u64(argc, argv, "--batch-max", 200));
  options.protocol.batch_timeout_us = 10'000;
  options.protocol.checkpoint_interval = 50;
  options.protocol.watermark_window = 400;
  options.protocol.pipeline_depth = static_cast<std::size_t>(
      arg_u64(argc, argv, "--pipeline-depth", 8));
  options.protocol.request_timeout_us = 2'000'000;

  const Report report = workload::run_tcp_workload(options, topology, loadgen);
  std::printf("%s\n", workload::report_json(options, report).c_str());
  std::fflush(stdout);

  if (!report.sustained || report.completed_ops == 0) {
    std::fprintf(stderr, "bft_loadgen %u: run did not sustain (%llu ops)\n",
                 loadgen,
                 static_cast<unsigned long long>(report.completed_ops));
    return 1;
  }
  return 0;
}
