// Load-generator process of a deployed cluster (see bench/run_cluster.py).
//
//   bft_loadgen --stack pbft --loadgen 0 --replicas 4 --loadgens 1 ...
//   ...       [--shards 1] [--cross-fraction 0.0] ...
//   ...       [--multi-keys 2] [--multi-groups 1024] ...
//   ...       --clients 1000 --base-port 18000 [--host 127.0.0.1] ...
//   ...       [--uds-dir /tmp/sbft] [--seed 42] [--mode closed|open] ...
//   ...       [--warmup-ms 500] [--measure-ms 2000] [--think-us 0]
//
// Drives the PR-4 workload engine's stations over a TcpTransport against
// the live replicas and prints the standard workload JSON `Report` (plus
// the transport counters) to stdout. Exit code 0 iff the run sustained
// traffic and completed operations.
//
// With `--shards N > 1` every client becomes a shard router over one
// transport per shard (single-key ops one-group fast, cross-shard
// multi-ops via 2PC-over-BFT), and a `--cross-fraction > 0` run ends
// with the torn-write audit — its verdict rides in the report's
// `sharding` object.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/workload/tcp_cluster.hpp"

using namespace sbft;
using namespace sbft::runtime;
using workload::ClusterTopology;
using workload::LoadMode;
using workload::Options;
using workload::Report;
using workload::Stack;

namespace {

[[nodiscard]] const char* arg_value(int argc, char** argv, const char* flag,
                                    const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

[[nodiscard]] std::uint64_t arg_u64(int argc, char** argv, const char* flag,
                                    std::uint64_t fallback) {
  const char* v = arg_value(argc, argv, flag, nullptr);
  return v ? std::strtoull(v, nullptr, 10) : fallback;
}

[[nodiscard]] double arg_f64(int argc, char** argv, const char* flag,
                             double fallback) {
  const char* v = arg_value(argc, argv, flag, nullptr);
  return v ? std::strtod(v, nullptr) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  ClusterTopology topology;
  topology.replicas = static_cast<std::uint32_t>(
      arg_u64(argc, argv, "--replicas", 4));
  topology.loadgens = static_cast<std::uint32_t>(
      arg_u64(argc, argv, "--loadgens", 1));
  const auto loadgen = static_cast<std::uint32_t>(
      arg_u64(argc, argv, "--loadgen", 0));
  const auto shards = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(arg_u64(argc, argv, "--shards", 1)));
  const std::string host = arg_value(argc, argv, "--host", "127.0.0.1");
  const auto base_port = arg_u64(argc, argv, "--base-port", 18000);
  const std::string uds_dir = arg_value(argc, argv, "--uds-dir", "");
  // Flat address plan over every shard; shard 0's slice doubles as the
  // unsharded topology.
  std::vector<std::string> flat_addrs;
  for (std::uint32_t node = 0; node < shards * topology.nodes(); ++node) {
    flat_addrs.push_back(
        uds_dir.empty()
            ? host + ":" + std::to_string(base_port + node)
            : "unix:" + uds_dir + "/node" + std::to_string(node) + ".sock");
  }
  topology.addrs.assign(flat_addrs.begin(),
                        flat_addrs.begin() + topology.nodes());

  Options options;
  options.stack = std::strcmp(arg_value(argc, argv, "--stack", "pbft"),
                              "splitbft") == 0
                      ? Stack::Splitbft
                      : Stack::Pbft;
  options.mode = std::strcmp(arg_value(argc, argv, "--mode", "closed"),
                             "open") == 0
                     ? LoadMode::Open
                     : LoadMode::Closed;
  options.clients = static_cast<std::uint32_t>(
      arg_u64(argc, argv, "--clients", 1000));
  options.seed = arg_u64(argc, argv, "--seed", 42);
  options.think_time_us = arg_u64(argc, argv, "--think-us", 0);
  options.interarrival_us = arg_u64(argc, argv, "--interarrival-us", 20'000);
  options.warmup_us = arg_u64(argc, argv, "--warmup-ms", 500) * 1000;
  options.measure_us = arg_u64(argc, argv, "--measure-ms", 2000) * 1000;
  options.protocol.n = static_cast<std::uint32_t>(topology.replicas);
  options.protocol.f = (options.protocol.n - 1) / 3;
  options.protocol.batch_max = static_cast<std::size_t>(
      arg_u64(argc, argv, "--batch-max", 200));
  options.protocol.batch_timeout_us = 10'000;
  options.protocol.checkpoint_interval = 50;
  options.protocol.watermark_window = 400;
  options.protocol.pipeline_depth = static_cast<std::size_t>(
      arg_u64(argc, argv, "--pipeline-depth", 8));
  options.protocol.request_timeout_us = 2'000'000;
  options.shards = shards;
  options.cross_shard_fraction =
      arg_f64(argc, argv, "--cross-fraction", 0.0);
  options.multi_keys = static_cast<std::uint32_t>(
      arg_u64(argc, argv, "--multi-keys", 2));
  options.multi_groups = arg_u64(argc, argv, "--multi-groups", 1024);

  const Report report =
      shards > 1
          ? workload::run_sharded_tcp_workload(
                options,
                workload::sharded_topologies(shards, topology.replicas,
                                             topology.loadgens, flat_addrs),
                loadgen)
          : workload::run_tcp_workload(options, topology, loadgen);
  std::printf("%s\n", workload::report_json(options, report).c_str());
  std::fflush(stdout);

  if (!report.sustained || report.completed_ops == 0) {
    std::fprintf(stderr, "bft_loadgen %u: run did not sustain (%llu ops)\n",
                 loadgen,
                 static_cast<unsigned long long>(report.completed_ops));
    return 1;
  }
  return 0;
}
