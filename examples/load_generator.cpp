// Load generator — drive a live SplitBFT/PBFT deployment with the
// workload engine over the real threaded runtime.
//
// A miniature version of bench/workload for interactive use: spins up the
// chosen stack behind a ThreadNetwork, multiplexes a few hundred closed-
// or open-loop clients onto station endpoints, and prints throughput and
// the latency distribution.
//
//   $ ./examples/load_generator                 # 200 closed-loop clients, PBFT
//   $ ./examples/load_generator splitbft open   # open-loop against SplitBFT
#include <cstdio>
#include <cstring>

#include "runtime/workload/thread_driver.hpp"

using namespace sbft;
using namespace sbft::runtime;

int main(int argc, char** argv) {
  workload::Options options;
  options.stack = workload::Stack::Pbft;
  options.mode = workload::LoadMode::Closed;
  options.clients = 200;
  options.think_time_us = 2'000;
  options.interarrival_us = 25'000;
  options.key_space = 4'096;
  options.key_skew = 0.99;      // YCSB-style hot keys
  options.get_fraction = 0.5;   // half GETs, half PUTs
  options.protocol.n = 4;
  options.protocol.f = 1;
  options.protocol.batch_max = 200;
  options.protocol.pipeline_depth = 8;  // pipelined batching
  options.protocol.request_timeout_us = 2'000'000;
  options.warmup_us = 200'000;
  options.measure_us = 500'000;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "splitbft") == 0) {
      options.stack = workload::Stack::Splitbft;
    } else if (std::strcmp(argv[i], "pbft") == 0) {
      options.stack = workload::Stack::Pbft;
    } else if (std::strcmp(argv[i], "open") == 0) {
      options.mode = workload::LoadMode::Open;
    } else if (std::strcmp(argv[i], "closed") == 0) {
      options.mode = workload::LoadMode::Closed;
    }
  }

  std::printf("driving %u %s-loop clients against the %s stack "
              "(pipeline depth %zu, batch %zu)...\n",
              options.clients, to_string(options.mode),
              to_string(options.stack), options.protocol.pipeline_depth,
              options.protocol.batch_max);

  const workload::Report report = workload::run_thread_workload(options);

  std::printf("\n  throughput  %10.0f ops/s   (%llu ops in %.1f s, %s)\n",
              report.ops_per_sec,
              static_cast<unsigned long long>(report.completed_ops),
              static_cast<double>(options.measure_us) / 1e6,
              report.sustained ? "sustained" : "STALLED");
  std::printf("  latency     mean %.2f ms   p50 %.2f   p95 %.2f   p99 %.2f "
              "  max %.2f\n",
              report.mean_latency_ms,
              static_cast<double>(report.p50_us) / 1000.0,
              static_cast<double>(report.p95_us) / 1000.0,
              static_cast<double>(report.p99_us) / 1000.0,
              static_cast<double>(report.max_us) / 1000.0);
  std::printf("  histogram   %zu non-empty buckets\n",
              report.histogram.size());
  return report.completed_ops > 0 ? 0 : 1;
}
