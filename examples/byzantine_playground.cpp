// Byzantine playground — watch SplitBFT absorb faults that break the
// baselines.
//
// Scenario 1: plain PBFT with f+1 colluding replicas -> the two honest
//             replicas execute different histories (integrity gone).
// Scenario 2: the same adversarial budget against SplitBFT — an
//             equivocating Preparation enclave plus byzantine brokers on
//             every machine — and agreement survives (a view change
//             restores liveness).
#include <cstdio>

#include "apps/counter_app.hpp"
#include "common/serde.hpp"
#include "faults/byzantine_compartments.hpp"
#include "faults/byzantine_env.hpp"
#include "faults/pbft_attack.hpp"
#include "runtime/pbft_cluster.hpp"
#include "runtime/splitbft_cluster.hpp"

using namespace sbft;
using namespace sbft::runtime;
using apps::CounterApp;

namespace {

void pbft_scenario() {
  std::printf("=== Scenario 1: PBFT, attacker controls primary + 1 backup "
              "(f+1 = 2 of 4) ===\n");
  PbftClusterOptions options;
  options.seed = 1;
  options.config.batch_max = 1;
  PbftCluster cluster(options, [] { return std::make_unique<CounterApp>(); });
  cluster.add_client(kFirstClientId);

  auto attack = std::make_shared<faults::PbftEquivocationAttack>(
      cluster.config(), cluster.keyring().signer(principal::pbft_replica(0)),
      cluster.keyring().signer(principal::pbft_replica(1)), 0, 1);
  cluster.harness().replace_actor(principal::pbft_replica(0), attack);
  cluster.harness().replace_actor(principal::pbft_replica(1), attack);

  cluster.harness().inject(
      cluster.client(kFirstClientId)
          .client()
          .submit(CounterApp::encode_add(1), cluster.harness().now()));
  cluster.harness().run_for(5'000'000);

  std::printf("  honest replica 2 executed seq 1 digest: %s\n",
              cluster.replica(2).executed_digest(1).short_hex().c_str());
  std::printf("  honest replica 3 executed seq 1 digest: %s\n",
              cluster.replica(3).executed_digest(1).short_hex().c_str());
  std::printf("  agreement: %s\n\n",
              cluster.check_agreement() ? "ok" : "VIOLATED (as expected!)");
}

void splitbft_scenario() {
  std::printf("=== Scenario 2: SplitBFT, equivocating Preparation enclave + "
              "byzantine brokers on ALL hosts ===\n");
  SplitClusterOptions options;
  options.seed = 2;
  options.config.batch_max = 1;
  options.compartment_faults[0] = [](ReplicaId r,
                                     const crypto::KeyRing& keyring) {
    return [r, &keyring](Compartment type,
                         std::unique_ptr<splitbft::CompartmentLogic> inner)
               -> std::unique_ptr<splitbft::CompartmentLogic> {
      if (type != Compartment::Preparation) return inner;
      pbft::Config config;
      return std::make_unique<faults::EquivocatingPrep>(
          std::move(inner), config, r,
          keyring.signer(principal::enclave({r, type})));
    };
  };
  SplitbftCluster cluster(
      options,
      splitbft::plain_app([] { return std::make_unique<CounterApp>(); }));
  cluster.add_client(kFirstClientId);

  for (ReplicaId r = 0; r < 4; ++r) {
    cluster.interpose_env(r, [r](std::shared_ptr<Actor> inner) {
      faults::EnvPolicy policy;
      policy.drop_inbound = 0.03;
      policy.drop_outbound = 0.03;
      policy.record_observed = false;
      return std::make_shared<faults::ByzantineEnv>(std::move(inner), policy,
                                                    500 + r);
    });
  }

  if (!cluster.setup_sessions(60'000'000)) {
    std::printf("  session setup slowed by the hostile environment\n");
  }
  const auto result =
      cluster.execute(kFirstClientId, CounterApp::encode_add(1), 60'000'000);
  if (result) {
    Reader r(*result);
    std::printf("  request executed, counter = %llu (after the equivocation "
                "forced a view change)\n",
                static_cast<unsigned long long>(r.u64()));
  } else {
    std::printf("  liveness degraded under the hostile environment "
                "(allowed by the model)\n");
  }
  for (ReplicaId r = 0; r < 4; ++r) {
    std::printf("  replica %u: confirmation view %llu, executed through %llu\n",
                r,
                static_cast<unsigned long long>(cluster.replica(r).conf().view()),
                static_cast<unsigned long long>(
                    cluster.replica(r).exec().last_executed()));
  }
  std::printf("  agreement: %s\n",
              cluster.check_agreement() ? "ok (safety held)" : "VIOLATED");
}

}  // namespace

int main() {
  pbft_scenario();
  splitbft_scenario();
  return 0;
}
