// One replica host of a deployed cluster (see bench/run_cluster.py).
//
//   bft_replica --stack pbft --replica 0 --replicas 4 --loadgens 1 ...
//   ...       [--shards 1 --shard-index 0] ...
//   ...       --clients 1000 --base-port 18000 [--host 127.0.0.1] ...
//   ...       [--uds-dir /tmp/sbft] [--seed 42] [--workers 4] ...
//   ...       [--batch-max 200] [--pipeline-depth 8] ...
//   ...       --run-secs 10 [--stats-out replica0.json]
//
// The process assembles its replica (PBFT or SplitBFT) from the shared
// seed — every process of a deployment derives identical keys, so nothing
// is exchanged out of band — serves it over a TcpTransport for
// `--run-secs`, then writes its transport counters as JSON and exits 0.
//
// A sharded deployment (`--shards N`) is N fully independent groups over
// one flat address plan: this process joins shard `--shard-index` only
// (its slice of the plan) and derives its keys from the shard seed, so
// groups share no key material.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "runtime/workload/tcp_cluster.hpp"

using namespace sbft;
using namespace sbft::runtime;
using workload::ClusterTopology;
using workload::Options;
using workload::ReplicaNode;
using workload::Stack;

namespace {

[[nodiscard]] const char* arg_value(int argc, char** argv, const char* flag,
                                    const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

[[nodiscard]] std::uint64_t arg_u64(int argc, char** argv, const char* flag,
                                    std::uint64_t fallback) {
  const char* v = arg_value(argc, argv, flag, nullptr);
  return v ? std::strtoull(v, nullptr, 10) : fallback;
}

[[nodiscard]] std::string stats_json(const net::TransportStats& s) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"bytes_in\": %llu, \"bytes_out\": %llu, "
                "\"frames_in\": %llu, \"frames_out\": %llu, "
                "\"writev_calls\": %llu, \"frames_per_writev\": %.3f, "
                "\"connects\": %llu, \"reconnects\": %llu, "
                "\"accepts\": %llu, \"backpressure_drops\": %llu, "
                "\"unrouted_drops\": %llu, \"decode_errors\": %llu}",
                static_cast<unsigned long long>(s.bytes_in),
                static_cast<unsigned long long>(s.bytes_out),
                static_cast<unsigned long long>(s.frames_in),
                static_cast<unsigned long long>(s.frames_out),
                static_cast<unsigned long long>(s.writev_calls),
                s.frames_per_writev(),
                static_cast<unsigned long long>(s.connects),
                static_cast<unsigned long long>(s.reconnects),
                static_cast<unsigned long long>(s.accepts),
                static_cast<unsigned long long>(s.backpressure_drops),
                static_cast<unsigned long long>(s.unrouted_drops),
                static_cast<unsigned long long>(s.decode_errors));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  ClusterTopology topology;
  topology.replicas = static_cast<std::uint32_t>(
      arg_u64(argc, argv, "--replicas", 4));
  topology.loadgens = static_cast<std::uint32_t>(
      arg_u64(argc, argv, "--loadgens", 1));
  const auto replica = static_cast<ReplicaId>(
      arg_u64(argc, argv, "--replica", 0));
  const auto shards = static_cast<std::uint32_t>(
      arg_u64(argc, argv, "--shards", 1));
  const auto shard_index = static_cast<std::uint32_t>(
      arg_u64(argc, argv, "--shard-index", 0));
  const std::string host = arg_value(argc, argv, "--host", "127.0.0.1");
  const auto base_port = arg_u64(argc, argv, "--base-port", 18000);
  const std::string uds_dir = arg_value(argc, argv, "--uds-dir", "");
  // This shard's slice of the flat `shards * nodes()` address plan.
  for (std::uint32_t node = 0; node < topology.nodes(); ++node) {
    const std::uint32_t flat = shard_index * topology.nodes() + node;
    topology.addrs.push_back(
        uds_dir.empty()
            ? host + ":" + std::to_string(base_port + flat)
            : "unix:" + uds_dir + "/node" + std::to_string(flat) + ".sock");
  }

  Options options;
  options.stack = std::strcmp(arg_value(argc, argv, "--stack", "pbft"),
                              "splitbft") == 0
                      ? Stack::Splitbft
                      : Stack::Pbft;
  options.clients = static_cast<std::uint32_t>(
      arg_u64(argc, argv, "--clients", 1000));
  options.seed = arg_u64(argc, argv, "--seed", 42);
  options.workers = arg_u64(argc, argv, "--workers", 4);
  options.protocol.n = static_cast<std::uint32_t>(topology.replicas);
  options.protocol.f = (options.protocol.n - 1) / 3;
  options.protocol.batch_max = static_cast<std::size_t>(
      arg_u64(argc, argv, "--batch-max", 200));
  options.protocol.batch_timeout_us = 10'000;
  options.protocol.checkpoint_interval = 50;
  options.protocol.watermark_window = 400;
  options.protocol.pipeline_depth = static_cast<std::size_t>(
      arg_u64(argc, argv, "--pipeline-depth", 8));
  options.protocol.request_timeout_us = 2'000'000;
  if (shards > 1) options = workload::shard_options(options, shard_index);

  ReplicaNode node(options, topology, replica, {});
  if (!node.start()) {
    std::fprintf(stderr, "bft_replica %u/%u: %s\n", shard_index, replica,
                 node.transport().last_error().c_str());
    return 1;
  }
  std::fprintf(stderr, "bft_replica shard %u replica %u up (%s, %s)\n",
               shard_index, replica, workload::to_string(options.stack),
               topology.addrs[replica].c_str());

  const auto run_secs = arg_u64(argc, argv, "--run-secs", 10);
  std::this_thread::sleep_for(std::chrono::seconds(run_secs));
  const net::TransportStats stats = node.transport().stats();
  node.stop();

  const std::string json = stats_json(stats);
  const char* stats_out = arg_value(argc, argv, "--stats-out", nullptr);
  if (stats_out) {
    std::ofstream out(stats_out);
    out << json << "\n";
  }
  std::fprintf(stderr, "bft_replica %u stats %s\n", replica, json.c_str());
  return 0;
}
