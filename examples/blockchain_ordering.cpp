// Blockchain ordering service — the paper's second use case.
//
// SplitBFT orders opaque transactions for a permissioned ledger: the
// Execution enclaves cut a block every 5 transactions and persist it
// through the protected filesystem (in-enclave encryption + MAC chaining,
// then an ocall to untrusted storage). Demonstrates:
//   * the ordering/execution pipeline under a ledger application,
//   * that persisted blocks are ciphertext to the hosting environment,
//   * tamper detection when the (untrusted) block store is modified.
#include <cstdio>
#include <string>

#include "apps/ledger.hpp"
#include "runtime/splitbft_cluster.hpp"

using namespace sbft;
using namespace sbft::runtime;

int main() {
  SplitClusterOptions options;
  options.config.n = 4;
  options.config.f = 1;
  options.config.batch_max = 1;
  options.seed = 99;

  // The ledger cuts 5-transaction blocks into the protected FS via the
  // persist hook (one ocall per block — the cost the paper measures).
  SplitbftCluster cluster(options, [](splitbft::PersistHook persist) {
    return std::make_unique<apps::Ledger>(
        5, [persist](ByteView block) { persist(block); });
  });

  const ClientId client = kFirstClientId;
  cluster.add_client(client);
  if (!cluster.setup_sessions()) {
    std::fprintf(stderr, "session setup failed\n");
    return 1;
  }

  // Submit 12 transactions -> 2 full blocks + 2 pending transactions.
  for (int i = 0; i < 12; ++i) {
    const std::string tx = "transfer:alice->bob:" + std::to_string(i);
    const auto receipt = cluster.execute(client, to_bytes(tx));
    if (!receipt) {
      std::fprintf(stderr, "tx %d failed\n", i);
      return 1;
    }
    const auto decoded = apps::LedgerReceipt::decode(*receipt);
    if (decoded) {
      std::printf("tx %2d -> seq %llu, chain height %llu\n", i,
                  static_cast<unsigned long long>(decoded->tx_seq),
                  static_cast<unsigned long long>(decoded->height));
    }
  }
  cluster.harness().run_for(1'000'000);

  // Inspect the untrusted block stores: ciphertext only.
  auto& store = cluster.replica(0).block_store();
  std::printf("\nreplica 0 persisted %llu encrypted blocks\n",
              static_cast<unsigned long long>(store.size()));
  const auto block0 = store.read(0);
  if (block0) {
    const std::string haystack(block0->begin(), block0->end());
    std::printf("plaintext visible in stored block: %s\n",
                haystack.find("transfer:") == std::string::npos ? "no (good)"
                                                                : "YES (BAD)");
  }

  // The hosting environment cannot tamper undetected: flip one byte and the
  // enclave-side chain verification fails on read-back.
  store.corrupt(0, 5);
  std::printf("after corrupting stored block 0: chain verification would "
              "reject the read (see tee::ProtectedFile tests)\n");

  std::printf("agreement across replicas: %s\n",
              cluster.check_agreement() ? "ok" : "VIOLATED");
  return 0;
}
