#include "common/serde.hpp"

#include <gtest/gtest.h>

namespace sbft {
namespace {

TEST(Serde, ScalarRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.boolean(true);

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Serde, BytesRoundTrip) {
  Writer w;
  const Bytes payload = {1, 2, 3, 4, 5};
  w.bytes(payload);
  w.str("hello");

  Reader r(w.data());
  EXPECT_EQ(r.bytes(), payload);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Serde, EmptyBytes) {
  Writer w;
  w.bytes({});
  Reader r(w.data());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serde, RawRoundTrip) {
  Writer w;
  const Bytes payload = {9, 8, 7};
  w.raw(payload);
  Reader r(w.data());
  EXPECT_EQ(r.raw(3), payload);
  EXPECT_TRUE(r.done());
}

TEST(Serde, ReaderFailsOnTruncatedScalar) {
  const Bytes data = {1, 2};
  Reader r(data);
  (void)r.u32();
  EXPECT_TRUE(r.failed());
  EXPECT_FALSE(r.done());
}

TEST(Serde, ReaderFailsOnOversizedLength) {
  // Length prefix claims 1000 bytes but only 2 follow.
  Writer w;
  w.u32(1000);
  w.u16(0xffff);
  Reader r(w.data());
  (void)r.bytes();
  EXPECT_TRUE(r.failed());
}

TEST(Serde, FailureIsSticky) {
  const Bytes data = {1};
  Reader r(data);
  (void)r.u64();
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.u8(), 0);  // still failed, returns 0
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serde, DoneRequiresFullConsumption) {
  Writer w;
  w.u32(7);
  Reader r(w.data());
  (void)r.u16();
  EXPECT_FALSE(r.done());
  (void)r.u16();
  EXPECT_TRUE(r.done());
}

TEST(Serde, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

}  // namespace
}  // namespace sbft
