#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace sbft {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  const std::string hex = to_hex(data);
  EXPECT_EQ(hex, "0001abff7f");
  const auto decoded = from_hex(hex);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(Bytes, HexUppercaseAccepted) {
  const auto decoded = from_hex("ABCDEF");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(to_hex(*decoded), "abcdef");
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_FALSE(from_hex("abc").has_value());
}

TEST(Bytes, HexRejectsBadDigit) {
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_FALSE(from_hex("0g").has_value());
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  const auto decoded = from_hex("");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(Bytes, CtEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Bytes, ToBytesAndBack) {
  const Bytes b = to_bytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(to_string_view_copy(b), "hello");
}

TEST(Bytes, Append) {
  Bytes dst = {1, 2};
  const Bytes src = {3, 4};
  append(dst, src);
  EXPECT_EQ(dst, (Bytes{1, 2, 3, 4}));
}

TEST(Digest, DefaultIsZero) {
  Digest d;
  EXPECT_TRUE(d.is_zero());
  d.bytes[31] = 1;
  EXPECT_FALSE(d.is_zero());
}

TEST(Digest, Comparison) {
  Digest a, b;
  EXPECT_EQ(a, b);
  b.bytes[0] = 1;
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(Digest, HexHelpers) {
  Digest d;
  d.bytes[0] = 0xab;
  EXPECT_EQ(d.hex().size(), 64u);
  EXPECT_EQ(d.hex().substr(0, 2), "ab");
  EXPECT_EQ(d.short_hex(), "ab000000");
}

}  // namespace
}  // namespace sbft
