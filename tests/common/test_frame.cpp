// SharedBytes (message-fabric frame) unit tests: sharing, slicing,
// lifetime, and allocation accounting.
#include "common/frame.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "common/bytes.hpp"

namespace sbft {
namespace {

TEST(SharedBytes, EmptyFrameAllocatesNothing) {
  const auto before = SharedBytes::alloc_stats();
  const SharedBytes empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.use_count(), 0);
  const auto after = SharedBytes::alloc_stats();
  EXPECT_EQ(after.allocations, before.allocations);
}

TEST(SharedBytes, TakesOwnershipWithoutCopying) {
  Bytes buf = to_bytes("hello fabric");
  const std::uint8_t* raw = buf.data();
  const SharedBytes frame(std::move(buf));
  // The frame views the very same heap storage the vector owned.
  EXPECT_EQ(frame.data(), raw);
  EXPECT_EQ(frame, to_bytes("hello fabric"));
}

TEST(SharedBytes, CopyIsRefcountNotAllocation) {
  const SharedBytes a(to_bytes("payload"));
  const auto before = SharedBytes::alloc_stats();
  const SharedBytes b = a;      // NOLINT(performance-unnecessary-copy-...)
  const SharedBytes c = b;
  const auto after = SharedBytes::alloc_stats();
  EXPECT_EQ(after.allocations, before.allocations);  // zero new buffers
  EXPECT_TRUE(a.same_buffer(b));
  EXPECT_TRUE(a.same_buffer(c));
  EXPECT_EQ(a.use_count(), 3);
}

TEST(SharedBytes, SliceSharesTheBuffer) {
  const SharedBytes frame(to_bytes("abcdefgh"));
  const SharedBytes mid = frame.slice(2, 4);
  EXPECT_EQ(mid, to_bytes("cdef"));
  EXPECT_EQ(mid.data(), frame.data() + 2);
  EXPECT_EQ(frame.use_count(), 2);  // slice holds the buffer too

  // Clamping: length past the end is trimmed, offset past the end is empty.
  EXPECT_EQ(frame.slice(6, 100), to_bytes("gh"));
  EXPECT_TRUE(frame.slice(8, 1).empty());
  EXPECT_TRUE(frame.slice(100, 1).empty());
}

TEST(SharedBytes, SliceOutlivesTheOwningHandle) {
  SharedBytes view;
  {
    SharedBytes frame(to_bytes("long-lived contents"));
    view = frame.slice(5, 5);
  }  // frame handle destroyed; the buffer must survive through `view`
  EXPECT_EQ(view, to_bytes("lived"));
  EXPECT_EQ(view.use_count(), 1);
}

TEST(SharedBytes, ContentEqualityVsIdentity) {
  const SharedBytes a(to_bytes("same bytes"));
  const SharedBytes b(to_bytes("same bytes"));
  EXPECT_EQ(a, b);                   // equal contents
  EXPECT_FALSE(a.same_buffer(b));    // distinct allocations
  EXPECT_EQ(a, ByteView{b.view()});  // heterogeneous comparison
  const SharedBytes c(to_bytes("other"));
  EXPECT_FALSE(a == c);
}

TEST(SharedBytes, AllocStatsCountBuffersAndBytes) {
  const auto before = SharedBytes::alloc_stats();
  const SharedBytes a(Bytes(100, 0x11));
  const SharedBytes b = SharedBytes::copy_of(a.view());
  (void)b;
  const auto after = SharedBytes::alloc_stats();
  EXPECT_EQ(after.allocations, before.allocations + 2);
  EXPECT_EQ(after.bytes, before.bytes + 200);
}

}  // namespace
}  // namespace sbft
