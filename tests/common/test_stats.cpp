#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/clock.hpp"

namespace sbft {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsAreNotLost) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyRecorder, EmptySummary) {
  LatencyRecorder rec;
  const auto s = rec.summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean_us, 0.0);
}

TEST(LatencyRecorder, BasicPercentiles) {
  LatencyRecorder rec;
  for (Micros v = 1; v <= 100; ++v) rec.record(v);
  const auto s = rec.summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean_us, 50.5);
  EXPECT_NEAR(static_cast<double>(s.p50_us), 50.0, 2.0);
  EXPECT_NEAR(static_cast<double>(s.p95_us), 95.0, 2.0);
  EXPECT_EQ(s.max_us, 100u);
}

TEST(LatencyRecorder, Reset) {
  LatencyRecorder rec;
  rec.record(5);
  rec.reset();
  EXPECT_EQ(rec.count(), 0u);
}

TEST(SimClock, AdvanceMonotonic) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance_to(100);
  EXPECT_EQ(clock.now(), 100u);
  clock.advance_to(50);  // never goes backwards
  EXPECT_EQ(clock.now(), 100u);
}

TEST(SteadyClock, Monotonic) {
  SteadyClock clock;
  const Micros a = clock.now();
  const Micros b = clock.now();
  EXPECT_GE(b, a);
}

// Hot counters (VerifyCache hits/misses, pool workers) must each own a
// cache line: adjacent counters sharing one would false-share under
// concurrent add() from worker threads.
static_assert(alignof(Counter) >= kCacheLineBytes);
static_assert(sizeof(Counter) >= kCacheLineBytes);

TEST(Counter, AdjacentCountersDoNotShareACacheLine) {
  struct HotPair {
    Counter a;
    Counter b;
  } pair;
  const auto delta =
      reinterpret_cast<const char*>(&pair.b) -
      reinterpret_cast<const char*>(&pair.a);
  EXPECT_GE(delta, static_cast<std::ptrdiff_t>(kCacheLineBytes));
}

}  // namespace
}  // namespace sbft
