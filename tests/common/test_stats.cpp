#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/clock.hpp"

namespace sbft {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsAreNotLost) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyRecorder, EmptySummary) {
  LatencyRecorder rec;
  const auto s = rec.summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean_us, 0.0);
}

TEST(LatencyRecorder, BasicPercentiles) {
  LatencyRecorder rec;
  for (Micros v = 1; v <= 100; ++v) rec.record(v);
  const auto s = rec.summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean_us, 50.5);
  EXPECT_NEAR(static_cast<double>(s.p50_us), 50.0, 2.0);
  EXPECT_NEAR(static_cast<double>(s.p95_us), 95.0, 2.0);
  EXPECT_EQ(s.max_us, 100u);
}

TEST(LatencyRecorder, Reset) {
  LatencyRecorder rec;
  rec.record(5);
  rec.reset();
  EXPECT_EQ(rec.count(), 0u);
}

TEST(SimClock, AdvanceMonotonic) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance_to(100);
  EXPECT_EQ(clock.now(), 100u);
  clock.advance_to(50);  // never goes backwards
  EXPECT_EQ(clock.now(), 100u);
}

TEST(SteadyClock, Monotonic) {
  SteadyClock clock;
  const Micros a = clock.now();
  const Micros b = clock.now();
  EXPECT_GE(b, a);
}

// Hot counters (VerifyCache hits/misses, pool workers) must each own a
// cache line: adjacent counters sharing one would false-share under
// concurrent add() from worker threads.
static_assert(alignof(Counter) >= kCacheLineBytes);
static_assert(sizeof(Counter) >= kCacheLineBytes);

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.quantile(0.5), 0u);
  EXPECT_EQ(hist.mean_us(), 0.0);
  EXPECT_EQ(hist.max_us(), 0u);
  EXPECT_TRUE(hist.buckets().empty());
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram hist;
  for (Micros v : {0u, 1u, 1u, 2u, 100u, 127u}) hist.record(v);
  EXPECT_EQ(hist.count(), 6u);
  EXPECT_EQ(hist.max_us(), 127u);
  EXPECT_EQ(hist.quantile(0.0), 0u);
  EXPECT_EQ(hist.quantile(1.0), 127u);
  // Sub-128 us values live in exact 1 us bins; the median of
  // {0,1,1,2,100,127} under the recorder's nearest-rank rounding is the
  // rank-3 sample.
  EXPECT_EQ(hist.quantile(0.5), 2u);
}

TEST(LatencyHistogram, QuantilesWithinBucketResolution) {
  LatencyHistogram hist;
  for (Micros v = 1; v <= 100'000; ++v) hist.record(v);
  // Log buckets hold ~1/16 of a power of two: quantiles must land within
  // ~7% of the exact answer.
  const auto close = [](Micros got, Micros want) {
    const double rel = std::abs(static_cast<double>(got) -
                                static_cast<double>(want)) /
                       static_cast<double>(want);
    return rel < 0.07;
  };
  EXPECT_TRUE(close(hist.quantile(0.50), 50'000)) << hist.quantile(0.50);
  EXPECT_TRUE(close(hist.quantile(0.95), 95'000)) << hist.quantile(0.95);
  EXPECT_TRUE(close(hist.quantile(0.99), 99'000)) << hist.quantile(0.99);
  EXPECT_EQ(hist.max_us(), 100'000u);
  const double mean = hist.mean_us();
  EXPECT_GT(mean, 49'000.0);
  EXPECT_LT(mean, 51'000.0);
}

TEST(LatencyHistogram, BucketsCoverAllSamplesInOrder) {
  LatencyHistogram hist;
  for (Micros v : {5u, 130u, 1'000u, 50'000u, 50'001u}) hist.record(v);
  const auto buckets = hist.buckets();
  std::uint64_t covered = 0;
  Micros last_upper = 0;
  for (const auto& b : buckets) {
    EXPECT_LT(b.lower_us, b.upper_us);
    EXPECT_GE(b.lower_us, last_upper);
    last_upper = b.upper_us;
    covered += b.count;
  }
  EXPECT_EQ(covered, 5u);
}

TEST(LatencyHistogram, HugeValuesDoNotOverflow) {
  LatencyHistogram hist;
  hist.record(std::numeric_limits<Micros>::max());
  hist.record(1u << 30);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.max_us(), std::numeric_limits<Micros>::max());
  // The top bucket spans [2^63 + 15*2^59, 2^64): its exclusive upper bound
  // must saturate instead of wrapping to 0, the midpoint must stay inside
  // the bucket, and the bucket list must keep lower < upper throughout.
  const Micros top_lower = (Micros{1} << 63) + (Micros{15} << 59);
  EXPECT_GE(hist.quantile(1.0), top_lower);
  for (const auto& b : hist.buckets()) {
    EXPECT_LT(b.lower_us, b.upper_us);
  }
}

TEST(LatencyHistogram, ConcurrentRecordsAreNotLost) {
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(static_cast<Micros>(t * 1'000 + i % 977));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Counter, AdjacentCountersDoNotShareACacheLine) {
  struct HotPair {
    Counter a;
    Counter b;
  } pair;
  const auto delta =
      reinterpret_cast<const char*>(&pair.b) -
      reinterpret_cast<const char*>(&pair.a);
  EXPECT_GE(delta, static_cast<std::ptrdiff_t>(kCacheLineBytes));
}

}  // namespace
}  // namespace sbft
