// Frame-backed envelope tests: the single-allocation invariant, memoized
// wire/digest products, serde edge cases, aliasing/lifetime, and the
// broadcast-identity property (all recipients observe the same frame).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <utility>
#include <vector>

#include "common/frame.hpp"
#include "common/serde.hpp"
#include "crypto/keyring.hpp"
#include "crypto/sha256.hpp"
#include "net/message.hpp"
#include "net/thread_net.hpp"

namespace sbft::net {
namespace {

[[nodiscard]] Envelope make_envelope(std::string_view payload) {
  Envelope env;
  env.src = 7;
  env.dst = 9;
  env.type = 42;
  env.payload = to_bytes(payload);
  env.signature = to_bytes("sig-bytes");
  return env;
}

// ------------------------------------------------------- serde round trips

TEST(FrameEnvelope, RoundTripBasic) {
  const Envelope env = make_envelope("hello");
  const auto decoded = Envelope::deserialize(env.wire().view());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, env);
}

TEST(FrameEnvelope, RoundTripEmptyPayloadAndSignature) {
  Envelope env;
  env.src = 1;
  env.dst = 2;
  env.type = 3;
  const auto decoded = Envelope::deserialize(env.wire().view());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, env);
  EXPECT_TRUE(decoded->payload.empty());
  EXPECT_TRUE(decoded->signature.empty());
  // And the decoded envelope re-serializes identically.
  EXPECT_EQ(decoded->wire(), env.wire());
}

TEST(FrameEnvelope, RoundTripLargeFields) {
  Envelope env;
  env.src = ~0ULL;
  env.dst = ~0ULL;
  env.type = ~0U;
  env.payload = Bytes(1 << 20, 0xa5);  // 1 MiB payload
  env.signature = Bytes(64, 0x5a);
  const auto decoded = Envelope::deserialize(env.wire().view());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, env);
}

TEST(FrameEnvelope, TruncatedFramesRejectedAtEveryBoundary) {
  const Envelope env = make_envelope("truncate me");
  const SharedBytes wire = env.wire();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const auto decoded =
        Envelope::deserialize(ByteView{wire.data(), cut});
    EXPECT_FALSE(decoded.has_value()) << "cut at " << cut;
  }
}

TEST(FrameEnvelope, TrailingGarbageRejected) {
  Bytes wire = make_envelope("x").wire().to_bytes();
  wire.push_back(0x00);
  EXPECT_FALSE(Envelope::deserialize(wire).has_value());
}

// ------------------------------------------- the single-allocation invariant

TEST(FrameEnvelope, FromFrameAliasesInsteadOfAllocating) {
  const Envelope sent = make_envelope("zero copy payload");
  const SharedBytes frame = sent.wire();

  const auto before = SharedBytes::alloc_stats();
  auto received = Envelope::from_frame(frame);
  ASSERT_TRUE(received.has_value());
  // Parsing allocated nothing: payload/signature are views into `frame`.
  EXPECT_EQ(SharedBytes::alloc_stats().allocations, before.allocations);
  EXPECT_EQ(received->payload, sent.payload);
  EXPECT_GE(received->payload.data(), frame.data());
  EXPECT_LT(received->payload.data(), frame.data() + frame.size());

  // Relaying re-uses the received frame as the wire image — serialize once,
  // relay everywhere.
  EXPECT_TRUE(received->wire().same_buffer(frame));
  EXPECT_EQ(SharedBytes::alloc_stats().allocations, before.allocations);

  // The signing input aliases the frame too (no rebuild on verify).
  const ByteView input = received->signing_input_view();
  EXPECT_GE(input.data(), frame.data());
  EXPECT_LT(input.data(), frame.data() + frame.size());
  EXPECT_EQ(SharedBytes::alloc_stats().allocations, before.allocations);
}

TEST(FrameEnvelope, PayloadViewOutlivesTheEnvelopeHandle) {
  SharedBytes payload_view;
  {
    auto env = Envelope::from_frame(
        make_envelope("outlives the envelope").wire());
    ASSERT_TRUE(env.has_value());
    payload_view = env->payload;
  }  // envelope (and its frame handle) destroyed
  EXPECT_EQ(payload_view, to_bytes("outlives the envelope"));
}

TEST(FrameEnvelope, WireIsMemoizedAcrossCallsAndCopies) {
  const Envelope env = make_envelope("memo");
  const std::uint64_t before = envelope_wire_builds();
  const SharedBytes w1 = env.wire();
  const SharedBytes w2 = env.wire();
  const Envelope copy = env;
  const SharedBytes w3 = copy.wire();
  EXPECT_EQ(envelope_wire_builds(), before + 1);  // built exactly once
  EXPECT_TRUE(w1.same_buffer(w2));
  EXPECT_TRUE(w1.same_buffer(w3));
  EXPECT_EQ(w1.to_bytes(), env.wire().to_bytes());

  // Rewriting the destination (broadcast) re-encodes — the wire image
  // contains dst — but the digest below does not.
  Envelope readdressed = env;
  readdressed.dst = env.dst + 1;
  EXPECT_FALSE(readdressed.wire().same_buffer(w1));
}

TEST(FrameEnvelope, DigestComputedOnceAndSharedByBroadcastCopies) {
  const Envelope env = make_envelope("digest once");
  const std::uint64_t before = envelope_digests_computed();
  const Digest d = env.digest();
  // The digest covers the signing input, i.e. (type || payload).
  EXPECT_EQ(d, crypto::sha256(env.signing_input_view()));

  // Copies with different destinations — a broadcast — share the memo.
  for (int r = 0; r < 16; ++r) {
    Envelope copy = env;
    copy.dst = static_cast<principal::Id>(r);
    EXPECT_EQ(copy.digest(), d);
  }
  EXPECT_EQ(envelope_digests_computed(), before + 1);
}

TEST(FrameEnvelope, MemoInvalidatesWhenFieldsChange) {
  Envelope env = make_envelope("original");
  const Digest d1 = env.digest();
  env.payload = to_bytes("mutated");
  const Digest d2 = env.digest();
  EXPECT_NE(d1, d2);
  env.type += 1;
  EXPECT_NE(env.digest(), d2);  // type is covered too

  // The re-signed envelope round-trips and verifies consistently.
  crypto::KeyRing ring(crypto::Scheme::Ed25519, /*seed=*/1234);
  ring.add_principal(1);
  sign_envelope(env, *ring.signer(1));
  EXPECT_TRUE(verify_envelope(env, *ring.verifier(), 1));
  const auto decoded = Envelope::deserialize(env.wire().view());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->digest(), env.digest());
}

// ----------------------------------------------------- broadcast identity

TEST(FrameEnvelope, BroadcastCopiesShareOnePayloadFrame) {
  const Envelope proto = make_envelope("fan out");
  const auto before = SharedBytes::alloc_stats();
  std::vector<Envelope> out;
  for (int r = 0; r < 100; ++r) {
    Envelope copy = proto;
    copy.dst = static_cast<principal::Id>(r);
    out.push_back(std::move(copy));
  }
  // O(1) allocations for a 100-way broadcast (here: zero — the proto's
  // frames already exist).
  EXPECT_EQ(SharedBytes::alloc_stats().allocations, before.allocations);
  for (const auto& env : out) {
    EXPECT_TRUE(env.payload.same_buffer(proto.payload));
    EXPECT_TRUE(env.signature.same_buffer(proto.signature));
  }
}

TEST(FrameEnvelope, ThreadNetworkRecipientsObserveTheSameFrame) {
  constexpr int kRecipients = 8;
  ThreadNetwork network;
  std::mutex mutex;
  std::vector<Envelope> received;
  for (int r = 0; r < kRecipients; ++r) {
    network.register_endpoint(
        static_cast<principal::Id>(r), [&](Envelope env) {
          const std::scoped_lock lock(mutex);
          received.push_back(std::move(env));
        });
  }

  const Envelope proto = make_envelope("broadcast identity");
  for (int r = 0; r < kRecipients; ++r) {
    Envelope copy = proto;
    copy.dst = static_cast<principal::Id>(r);
    network.send(std::move(copy));
  }
  network.drain();

  const std::scoped_lock lock(mutex);
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kRecipients));
  for (const auto& env : received) {
    // Not just equal bytes: the exact same underlying allocation.
    EXPECT_TRUE(env.payload.same_buffer(proto.payload));
    EXPECT_EQ(env.payload, proto.payload);
  }
}

}  // namespace
}  // namespace sbft::net
