// TCP transport tests: exhaustive framing robustness (truncation at every
// byte, oversized-length plausibility, partial-write resumption, rewind),
// then real-socket exchange, peer-crash mid-frame, garbage preambles,
// reconnect with backoff, and UDS.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "net/framing.hpp"
#include "net/tcp_transport.hpp"

namespace sbft::net {
namespace {

[[nodiscard]] Envelope make_envelope(principal::Id src, principal::Id dst,
                                     std::string_view payload,
                                     std::string_view sig = "sig") {
  Envelope env;
  env.src = src;
  env.dst = dst;
  env.type = 7;
  env.payload = to_bytes(payload);
  if (!sig.empty()) env.signature = to_bytes(sig);
  return env;
}

/// prefix + wire bytes — the exact stream the SendQueue must produce.
[[nodiscard]] Bytes framed(const Envelope& env) {
  const SharedBytes wire = env.wire();
  const auto prefix = frame_prefix(wire.size());
  Bytes out(prefix.begin(), prefix.end());
  out.insert(out.end(), wire.begin(), wire.end());
  return out;
}

/// Feeds `data` into the decoder in one commit.
[[nodiscard]] bool feed(FrameDecoder& decoder, ByteView data,
                        std::vector<SharedBytes>& out) {
  std::size_t at = 0;
  while (at < data.size()) {
    const auto area = decoder.prepare();
    const std::size_t n = std::min(area.size, data.size() - at);
    std::memcpy(area.data, data.data() + at, n);
    if (!decoder.commit(n, out)) return false;
    at += n;
  }
  return true;
}

// ------------------------------------------------------------ FrameDecoder

TEST(FrameDecoder, SingleFrameRoundTrip) {
  const Envelope env = make_envelope(1, 2, "hello transport");
  FrameDecoder decoder;
  std::vector<SharedBytes> frames;
  ASSERT_TRUE(feed(decoder, framed(env), frames));
  ASSERT_EQ(frames.size(), 1u);
  const auto decoded = Envelope::from_frame(frames[0]);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, env);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoder, TruncationAtEveryByteYieldsNoFrameUntilComplete) {
  const Envelope env = make_envelope(3, 4, "truncate me carefully");
  const Bytes stream = framed(env);
  // Deliver byte-by-byte: after EVERY strict prefix — cutting inside the
  // length prefix and at every body byte — no frame may be emitted, and
  // the final byte must complete exactly one.
  FrameDecoder decoder;
  std::vector<SharedBytes> frames;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto area = decoder.prepare();
    ASSERT_GE(area.size, 1u);
    area.data[0] = stream[i];
    ASSERT_TRUE(decoder.commit(1, frames)) << "byte " << i;
    if (i + 1 < stream.size()) {
      EXPECT_TRUE(frames.empty()) << "frame emitted at byte " << i;
    }
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(*Envelope::from_frame(frames[0]), env);
}

TEST(FrameDecoder, EveryChunkSplitOfTwoFrames) {
  const Envelope a = make_envelope(1, 2, "first frame");
  const Envelope b = make_envelope(3, 4, "the second frame, rather longer");
  Bytes stream = framed(a);
  const Bytes second = framed(b);
  stream.insert(stream.end(), second.begin(), second.end());

  // Split the two-frame stream at every possible boundary; both frames
  // must come out intact regardless of where the reads land.
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder decoder;
    std::vector<SharedBytes> frames;
    ASSERT_TRUE(feed(decoder, ByteView{stream.data(), split}, frames));
    ASSERT_TRUE(feed(
        decoder, ByteView{stream.data() + split, stream.size() - split},
        frames));
    ASSERT_EQ(frames.size(), 2u) << "split at " << split;
    EXPECT_EQ(*Envelope::from_frame(frames[0]), a);
    EXPECT_EQ(*Envelope::from_frame(frames[1]), b);
  }
}

TEST(FrameDecoder, FramesInOneCommitSliceOneSealedBuffer) {
  const Envelope a = make_envelope(1, 2, "zero");
  const Envelope b = make_envelope(3, 4, "copy");
  Bytes stream = framed(a);
  const Bytes second = framed(b);
  stream.insert(stream.end(), second.begin(), second.end());

  FrameDecoder decoder;
  std::vector<SharedBytes> frames;
  ASSERT_TRUE(feed(decoder, stream, frames));
  ASSERT_EQ(frames.size(), 2u);
  // Both frames alias the one sealed read buffer — no per-frame copies:
  // they sit back to back in it, one length prefix apart.
  EXPECT_EQ(frames[0].data() + frames[0].size() + kFramePrefixBytes,
            frames[1].data());
  // And the sealed buffer is co-owned (2 slices), not duplicated.
  EXPECT_EQ(frames[0].use_count(), 2);
}

TEST(FrameDecoder, OversizedLengthRejectedBeforeAnyAllocation) {
  // A hostile 4 GiB length prefix must poison the decoder at the
  // plausibility bound WITHOUT sizing any buffer from the untrusted value.
  FrameDecoder decoder(/*max_frame_bytes=*/1 << 20,
                       /*read_chunk_bytes=*/512);
  const auto prefix = frame_prefix(0xfffffff0u);
  std::vector<SharedBytes> frames;
  auto area = decoder.prepare();
  ASSERT_GE(area.size, prefix.size());
  std::memcpy(area.data, prefix.data(), prefix.size());
  EXPECT_FALSE(decoder.commit(prefix.size(), frames));
  EXPECT_TRUE(decoder.failed());
  EXPECT_TRUE(frames.empty());
  // The staging buffer was never grown toward the hostile length: the next
  // prepare() still offers chunk-sized capacity, not 4 GiB.
  EXPECT_LT(decoder.prepare().size, (1u << 20));

  decoder.reset();
  EXPECT_FALSE(decoder.failed());
  ASSERT_TRUE(feed(decoder, framed(make_envelope(1, 2, "ok")), frames));
  EXPECT_EQ(frames.size(), 1u);
}

TEST(FrameDecoder, LengthJustAboveBoundRejectedJustBelowAccepted) {
  const Envelope env = make_envelope(1, 2, "bounded");
  const Bytes stream = framed(env);
  const std::size_t frame_len = stream.size() - kFramePrefixBytes;

  FrameDecoder reject(frame_len - 1);
  std::vector<SharedBytes> frames;
  EXPECT_FALSE(feed(reject, stream, frames));
  EXPECT_TRUE(frames.empty());

  FrameDecoder accept(frame_len);
  ASSERT_TRUE(feed(accept, stream, frames));
  EXPECT_EQ(frames.size(), 1u);
}

// --------------------------------------------------------------- SendQueue

/// Drains the queue `step` bytes per "write" and returns the byte stream.
[[nodiscard]] Bytes drain(SendQueue& queue, std::size_t step,
                          std::uint64_t* retired_total = nullptr) {
  Bytes out;
  while (!queue.empty()) {
    iovec iov[16];
    const std::size_t count = queue.fill_iovecs(iov, 16);
    if (count == 0) break;
    std::size_t take = step;
    for (std::size_t i = 0; i < count && take > 0; ++i) {
      const std::size_t n = std::min(take, iov[i].iov_len);
      const auto* p = static_cast<const std::uint8_t*>(iov[i].iov_base);
      out.insert(out.end(), p, p + n);
      take -= n;
    }
    const std::uint64_t retired = queue.advance(step - take);
    if (retired_total) *retired_total += retired;
  }
  return out;
}

TEST(SendQueue, ProducesExactlyPrefixPlusWire) {
  const Envelope a = make_envelope(10, 20, "queued one");
  const Envelope b = make_envelope(30, 40, "queued two", /*sig=*/"");
  SendQueue queue(1 << 20);
  ASSERT_TRUE(queue.push(a));
  ASSERT_TRUE(queue.push(b));
  EXPECT_EQ(queue.queued_frames(), 2u);

  Bytes expected = framed(a);
  const Bytes fb = framed(b);
  expected.insert(expected.end(), fb.begin(), fb.end());
  EXPECT_EQ(queue.queued_bytes(), expected.size());
  EXPECT_EQ(drain(queue, expected.size()), expected);
}

TEST(SendQueue, PartialWriteResumptionByteAtATime) {
  const Envelope a = make_envelope(1, 2, "partial writes");
  const Envelope b = make_envelope(3, 4, "must resume mid-segment");
  Bytes expected = framed(a);
  const Bytes fb = framed(b);
  expected.insert(expected.end(), fb.begin(), fb.end());

  // One byte per writev: every resumption point inside every segment is
  // exercised; retired counts must sum to the number of envelopes.
  SendQueue queue(1 << 20);
  ASSERT_TRUE(queue.push(a));
  ASSERT_TRUE(queue.push(b));
  std::uint64_t retired = 0;
  EXPECT_EQ(drain(queue, 1, &retired), expected);
  EXPECT_EQ(retired, 2u);
  EXPECT_EQ(queue.queued_bytes(), 0u);
}

TEST(SendQueue, DropNewestWhenFull) {
  const Envelope env = make_envelope(1, 2, "payload that takes some room");
  SendQueue queue(2 * framed(env).size());
  EXPECT_TRUE(queue.push(env));
  EXPECT_TRUE(queue.push(env));
  // Third exceeds the byte budget: dropped, queue state untouched.
  EXPECT_FALSE(queue.push(env));
  EXPECT_EQ(queue.queued_frames(), 2u);
  EXPECT_EQ(drain(queue, 4096).size(), 2 * framed(env).size());
}

TEST(SendQueue, RewindFrontRestartsAtFrameBoundary) {
  const Envelope a = make_envelope(1, 2, "interrupted");
  const Envelope b = make_envelope(3, 4, "survivor");
  SendQueue queue(1 << 20);
  ASSERT_TRUE(queue.push(a));
  ASSERT_TRUE(queue.push(b));

  // Simulate a connection dying 7 bytes into frame a.
  iovec iov[16];
  ASSERT_GT(queue.fill_iovecs(iov, 16), 0u);
  EXPECT_EQ(queue.advance(7), 0u);
  queue.rewind_front();

  // The replacement connection gets both frames from their boundaries.
  Bytes expected = framed(a);
  const Bytes fb = framed(b);
  expected.insert(expected.end(), fb.begin(), fb.end());
  EXPECT_EQ(queue.queued_bytes(), expected.size());
  EXPECT_EQ(drain(queue, 4096), expected);
}

TEST(SendQueue, BroadcastQueuesShareTheSigningAllocation) {
  // One envelope fanned out to two peers: both queues' signing segment
  // must point at the SAME bytes (the memoized signing-input frame) —
  // the "no per-recipient copy" property the writev path depends on.
  // As in the real pipeline, the memo exists BEFORE the fan-out copies
  // (sign_envelope builds it when the message is signed).
  Envelope to_a = make_envelope(1, 100, "broadcast body");
  (void)to_a.signing_input_view();
  Envelope to_b = to_a;
  to_b.dst = 200;

  SendQueue qa(1 << 20);
  SendQueue qb(1 << 20);
  ASSERT_TRUE(qa.push(to_a));
  ASSERT_TRUE(qb.push(to_b));

  iovec ia[8];
  iovec ib[8];
  ASSERT_EQ(qa.fill_iovecs(ia, 8), 4u);
  ASSERT_EQ(qb.fill_iovecs(ib, 8), 4u);
  // Segment 0 (prefix|src|dst) differs per peer; segment 1 (the signing
  // input: type|len|payload) is the shared allocation.
  EXPECT_NE(ia[0].iov_base, ib[0].iov_base);
  EXPECT_EQ(ia[1].iov_base, ib[1].iov_base);
  EXPECT_EQ(ia[1].iov_len, ib[1].iov_len);
}

// ------------------------------------------------------------ real sockets

class Receiver {
 public:
  void on(Envelope env) {
    const std::scoped_lock lock(mutex_);
    received_.push_back(std::move(env));
    cv_.notify_all();
  }

  [[nodiscard]] bool wait_for(std::size_t n, int timeout_ms = 5000) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [&] { return received_.size() >= n; });
  }

  [[nodiscard]] std::vector<Envelope> snapshot() {
    const std::scoped_lock lock(mutex_);
    return received_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Envelope> received_;
};

/// Two-node topology: principal id 1 lives on node 0, id 2 on node 1.
[[nodiscard]] TcpTransport::RouteFn two_node_route() {
  return [](principal::Id id) -> TcpTransport::NodeId {
    return id == 1 ? 0 : 1;
  };
}

TEST(TcpTransport, TwoNodesExchangeEnvelopesBothWays) {
  TcpTransport::Options options;
  options.listen_addr = "127.0.0.1:0";
  TcpTransport node0(0, options, two_node_route());
  TcpTransport node1(1, options, two_node_route());
  ASSERT_TRUE(node0.start());
  ASSERT_TRUE(node1.start());
  node0.add_peer(1, "127.0.0.1:" + std::to_string(node1.listen_port()));
  node1.add_peer(0, "127.0.0.1:" + std::to_string(node0.listen_port()));

  Receiver at0;
  Receiver at1;
  node0.register_endpoint(1, [&](Envelope env) { at0.on(std::move(env)); });
  node1.register_endpoint(2, [&](Envelope env) { at1.on(std::move(env)); });

  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    node0.send(make_envelope(1, 2, "ping " + std::to_string(i)));
    node1.send(make_envelope(2, 1, "pong " + std::to_string(i)));
  }
  ASSERT_TRUE(at1.wait_for(kCount));
  ASSERT_TRUE(at0.wait_for(kCount));

  // Ordered per direction (one TCP stream each way).
  const auto received = at1.snapshot();
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)].payload,
              to_bytes("ping " + std::to_string(i)));
  }

  const TransportStats stats = node0.stats();
  EXPECT_EQ(stats.frames_out, static_cast<std::uint64_t>(kCount));
  EXPECT_GT(stats.writev_calls, 0u);
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(stats.backpressure_drops, 0u);

  node0.shutdown();
  node1.shutdown();
}

TEST(TcpTransport, WritevBatchesManyFramesPerSyscall) {
  // Deterministic scatter-gather check: queue a burst while the peer is
  // unreachable, then bring it up — the backlog must drain with (far)
  // fewer syscalls than envelopes. UDS so the "same address, not yet
  // bound" window can't be stolen by a concurrent test process the way
  // a released ephemeral TCP port can.
  const std::string path =
      "/tmp/sbft_batch_test_" + std::to_string(::getpid()) + ".sock";
  TcpTransport::Options fast_retry;
  fast_retry.reconnect_backoff_min_us = 2'000;
  fast_retry.reconnect_backoff_max_us = 20'000;
  TcpTransport sender(0, fast_retry, two_node_route());
  ASSERT_TRUE(sender.start());
  sender.add_peer(1, "unix:" + path);

  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    sender.send(make_envelope(1, 2, "backlog " + std::to_string(i)));
  }

  TcpTransport::Options listen;
  listen.listen_addr = "unix:" + path;
  TcpTransport receiver(1, listen, two_node_route());
  Receiver sink;
  // Register BEFORE start(): the sender's pending retry may connect and
  // deliver the whole backlog the instant the listener binds.
  receiver.register_endpoint(2, [&](Envelope env) { sink.on(std::move(env)); });
  ASSERT_TRUE(receiver.start()) << receiver.last_error();
  ASSERT_TRUE(sink.wait_for(kCount));

  const TransportStats stats = sender.stats();
  EXPECT_EQ(stats.frames_out, static_cast<std::uint64_t>(kCount));
  EXPECT_GE(stats.frames_per_writev(), 2.0);

  sender.shutdown();
  receiver.shutdown();
}

TEST(TcpTransport, SelfRoutedEnvelopesLoopBackWithoutSockets) {
  TcpTransport::Options options;  // egress-only: no listen socket at all
  TcpTransport node(0, options, [](principal::Id) {
    return TcpTransport::NodeId{0};
  });
  ASSERT_TRUE(node.start());
  Receiver local;
  node.register_endpoint(1, [&](Envelope env) { local.on(std::move(env)); });
  node.send(make_envelope(2, 1, "to myself"));
  ASSERT_TRUE(local.wait_for(1));
  node.shutdown();
}

TEST(TcpTransport, PeerCrashMidFrameIsContainedAndCounted) {
  TcpTransport::Options options;
  options.listen_addr = "127.0.0.1:0";
  TcpTransport node(1, options, two_node_route());
  ASSERT_TRUE(node.start());
  Receiver sink;
  node.register_endpoint(2, [&](Envelope env) { sink.on(std::move(env)); });

  // Raw dialer: valid preamble, then half an envelope frame, then crash.
  const Envelope env = make_envelope(1, 2, "about to be cut off");
  const Bytes stream = framed(env);
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(node.listen_port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    Bytes hello = to_bytes("SBFT-TCP");
    hello.resize(16, 0);
    hello[8] = 0;  // node id 0
    ASSERT_EQ(::send(fd, hello.data(), hello.size(), 0),
              static_cast<ssize_t>(hello.size()));
    ASSERT_EQ(::send(fd, stream.data(), stream.size() / 2, 0),
              static_cast<ssize_t>(stream.size() / 2));
    ::close(fd);  // crash mid-frame
  }

  // The half frame must never surface. A healthy transport still can.
  EXPECT_FALSE(sink.wait_for(1, 300));
  TcpTransport dialer(0, {}, two_node_route());
  ASSERT_TRUE(dialer.start());
  dialer.add_peer(1, "127.0.0.1:" + std::to_string(node.listen_port()));
  dialer.send(env);
  ASSERT_TRUE(sink.wait_for(1));
  dialer.shutdown();
  node.shutdown();
}

TEST(TcpTransport, GarbagePreambleAndOversizedFrameAreRejected) {
  TcpTransport::Options options;
  options.listen_addr = "127.0.0.1:0";
  options.max_frame_bytes = 1 << 16;
  TcpTransport node(1, options, two_node_route());
  ASSERT_TRUE(node.start());
  Receiver sink;
  node.register_endpoint(2, [&](Envelope env) { sink.on(std::move(env)); });

  const auto raw_dial = [&](const Bytes& bytes) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(node.listen_port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
    // Give the loop a moment, then observe the counter.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ::close(fd);
  };

  raw_dial(to_bytes("NOT-SBFT........"));  // 16 bytes, wrong magic

  Bytes oversized = to_bytes("SBFT-TCP");
  oversized.resize(16, 0);
  const auto prefix = frame_prefix(0xff000000u);  // 4 GB frame "length"
  oversized.insert(oversized.end(), prefix.begin(), prefix.end());
  raw_dial(oversized);

  EXPECT_FALSE(sink.wait_for(1, 200));
  EXPECT_GE(node.stats().decode_errors, 2u);
  node.shutdown();
}

TEST(TcpTransport, ReconnectsWithBackoffAfterPeerRestart) {
  // UDS address: unique per process, so the outage window can't be
  // hijacked by a concurrent test grabbing a released ephemeral port.
  // The reconnect machinery is address-family agnostic.
  const std::string path =
      "/tmp/sbft_reconnect_test_" + std::to_string(::getpid()) + ".sock";
  TcpTransport::Options fast_retry;
  fast_retry.reconnect_backoff_min_us = 5'000;
  fast_retry.reconnect_backoff_max_us = 50'000;
  TcpTransport sender(0, fast_retry, two_node_route());
  ASSERT_TRUE(sender.start());

  TcpTransport::Options listen;
  listen.listen_addr = "unix:" + path;
  {
    TcpTransport receiver(1, listen, two_node_route());
    ASSERT_TRUE(receiver.start());
    Receiver sink;
    receiver.register_endpoint(2,
                               [&](Envelope env) { sink.on(std::move(env)); });
    sender.add_peer(1, "unix:" + path);
    sender.send(make_envelope(1, 2, "before restart"));
    ASSERT_TRUE(sink.wait_for(1));
    receiver.shutdown();  // peer dies
  }

  // Sends into the void: the connection breaks, retries back off.
  for (int i = 0; i < 5; ++i) {
    sender.send(make_envelope(1, 2, "during outage " + std::to_string(i)));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Peer restarts on the SAME address; the sender must re-establish and
  // deliver fresh traffic without intervention.
  TcpTransport revived(1, listen, two_node_route());
  Receiver sink;
  revived.register_endpoint(2, [&](Envelope env) { sink.on(std::move(env)); });
  ASSERT_TRUE(revived.start()) << revived.last_error();

  bool delivered = false;
  for (int i = 0; i < 100 && !delivered; ++i) {
    sender.send(make_envelope(1, 2, "after restart"));
    delivered = sink.wait_for(1, 100);
  }
  EXPECT_TRUE(delivered);
  EXPECT_GE(sender.stats().reconnects, 1u);

  sender.shutdown();
  revived.shutdown();
}

TEST(TcpTransport, UnixDomainSocketsCarryTraffic) {
  const std::string path =
      "/tmp/sbft_uds_test_" + std::to_string(::getpid()) + ".sock";
  TcpTransport::Options options;
  options.listen_addr = "unix:" + path;
  TcpTransport receiver(1, options, two_node_route());
  ASSERT_TRUE(receiver.start()) << receiver.last_error();
  Receiver sink;
  receiver.register_endpoint(2, [&](Envelope env) { sink.on(std::move(env)); });

  TcpTransport sender(0, {}, two_node_route());
  ASSERT_TRUE(sender.start());
  sender.add_peer(1, "unix:" + path);
  for (int i = 0; i < 50; ++i) {
    sender.send(make_envelope(1, 2, "uds " + std::to_string(i)));
  }
  ASSERT_TRUE(sink.wait_for(50));

  sender.shutdown();
  receiver.shutdown();
  // Listener unlinked its socket file on shutdown.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(TcpTransport, BackpressureDropsNewestAndCounts) {
  // No listener for the peer: the queue only fills. Tiny budget => drops.
  TcpTransport::Options options;
  options.send_queue_max_bytes = 256;
  TcpTransport sender(0, options, two_node_route());
  ASSERT_TRUE(sender.start());
  sender.add_peer(1, "127.0.0.1:1");  // nothing listens there

  for (int i = 0; i < 64; ++i) {
    sender.send(make_envelope(1, 2, "fills the tiny queue quickly"));
  }
  EXPECT_GT(sender.stats().backpressure_drops, 0u);

  // Unrouted principals are dropped and counted, not crashed on.
  TcpTransport lonely(0, {}, [](principal::Id) {
    return TcpTransport::NodeId{9};
  });
  ASSERT_TRUE(lonely.start());
  lonely.send(make_envelope(1, 2, "no such peer"));
  EXPECT_EQ(lonely.stats().unrouted_drops, 1u);

  sender.shutdown();
  lonely.shutdown();
}

TEST(TcpTransport, MalformedPortsAreRejectedNotMisparsed) {
  // atoi-style parsing would silently bind port 0 ("http") or wrap mod
  // 65536 (70000); both must instead fail start() with a parse error.
  for (const char* bad : {"127.0.0.1:http", "127.0.0.1:", "127.0.0.1:-1",
                          "127.0.0.1:65536", "127.0.0.1:70000",
                          "127.0.0.1:123456"}) {
    TcpTransport::Options options;
    options.listen_addr = bad;
    TcpTransport t(0, options, two_node_route());
    EXPECT_FALSE(t.start()) << bad;
    EXPECT_FALSE(t.last_error().empty()) << bad;
  }
  // Port 0 stays legal: it means "ephemeral", resolved via listen_port().
  TcpTransport::Options options;
  options.listen_addr = "127.0.0.1:0";
  TcpTransport ok(0, options, two_node_route());
  ASSERT_TRUE(ok.start()) << ok.last_error();
  EXPECT_GT(ok.listen_port(), 0);
  ok.shutdown();
}

TEST(TcpTransport, ConcurrentAddPeerWhileLoopBusyIsSafe) {
  // add_peer is documented callable after start(): hammer re-declarations
  // and fresh inserts (forcing unordered_map rehashes) from a second
  // thread while the event loop flushes traffic. Run under TSan this
  // pins the loop's locked snapshot of peers_.
  TcpTransport::Options options;
  options.listen_addr = "127.0.0.1:0";
  TcpTransport receiver(1, options, two_node_route());
  ASSERT_TRUE(receiver.start()) << receiver.last_error();
  Receiver sink;
  receiver.register_endpoint(2,
                             [&](Envelope env) { sink.on(std::move(env)); });

  TcpTransport sender(0, options, two_node_route());
  ASSERT_TRUE(sender.start()) << sender.last_error();
  const std::string addr =
      "127.0.0.1:" + std::to_string(receiver.listen_port());
  sender.add_peer(1, addr);

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    TcpTransport::NodeId next = 100;
    while (!stop.load(std::memory_order_relaxed)) {
      sender.add_peer(1, addr);                // re-declaration path
      sender.add_peer(next++, "127.0.0.1:1");  // insert/rehash path
    }
  });

  constexpr std::size_t kCount = 300;
  for (std::size_t i = 0; i < kCount; ++i) {
    sender.send(make_envelope(1, 2, "churn " + std::to_string(i)));
  }
  EXPECT_TRUE(sink.wait_for(kCount));
  stop.store(true);
  churn.join();
  sender.shutdown();
  receiver.shutdown();
}

TEST(TcpTransport, ShutdownRacingActiveSendersIsSafe) {
  // send() is documented thread-safe and shutdown() tears the queues
  // down; the two must serialize (late sends are silently dropped).
  TcpTransport::Options options;
  options.send_queue_max_bytes = 4096;
  TcpTransport sender(0, options, two_node_route());
  ASSERT_TRUE(sender.start()) << sender.last_error();
  sender.add_peer(1, "127.0.0.1:1");  // nothing listens there

  std::thread pusher([&] {
    for (int i = 0; i < 2000; ++i) {
      sender.send(make_envelope(1, 2, "racing the teardown"));
    }
  });
  sender.shutdown();  // races the pushes; must not corrupt the queue
  pusher.join();
  sender.shutdown();  // idempotent
}

}  // namespace
}  // namespace sbft::net
