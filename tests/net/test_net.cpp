#include <gtest/gtest.h>

#include <atomic>

#include "crypto/keyring.hpp"
#include "net/message.hpp"
#include "net/thread_net.hpp"

namespace sbft::net {
namespace {

TEST(Envelope, SerializationRoundTrip) {
  Envelope env;
  env.src = 5;
  env.dst = 9;
  env.type = 77;
  env.payload = to_bytes("payload");
  env.signature = to_bytes("sig");
  const auto decoded = Envelope::deserialize(env.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, env);
}

TEST(Envelope, RejectsTrailingBytes) {
  Envelope env;
  Bytes data = env.serialize();
  data.push_back(1);
  EXPECT_FALSE(Envelope::deserialize(data).has_value());
}

TEST(Envelope, SignVerifyBindsTypeAndPayload) {
  crypto::KeyRing ring(crypto::Scheme::HmacShared, 5);
  ring.add_principal(1);
  const auto signer = ring.signer(1);
  const auto verifier = ring.verifier();

  Envelope env;
  env.src = 1;
  env.type = 3;
  env.payload = to_bytes("data");
  sign_envelope(env, *signer);
  EXPECT_TRUE(verify_envelope(env, *verifier, 1));

  Envelope wrong_type = env;
  wrong_type.type = 4;
  EXPECT_FALSE(verify_envelope(wrong_type, *verifier, 1));

  Envelope wrong_payload = env;
  wrong_payload.payload = to_bytes("datA");
  EXPECT_FALSE(verify_envelope(wrong_payload, *verifier, 1));

  // dst is a routing hint, not covered by the signature.
  Envelope rerouted = env;
  rerouted.dst = 42;
  EXPECT_TRUE(verify_envelope(rerouted, *verifier, 1));

  EXPECT_FALSE(verify_envelope(env, *verifier, 2));
}

TEST(ThreadNetwork, DeliversToRegisteredEndpoint) {
  ThreadNetwork net;
  std::atomic<int> received{0};
  net.register_endpoint(7, [&](Envelope) { received.fetch_add(1); });

  Envelope env;
  env.dst = 7;
  for (int i = 0; i < 10; ++i) net.send(env);
  net.drain();
  EXPECT_EQ(received.load(), 10);
  net.shutdown();
}

TEST(ThreadNetwork, DropsUnknownDestination) {
  ThreadNetwork net;
  Envelope env;
  env.dst = 999;
  net.send(env);  // must not crash or block
  net.shutdown();
}

TEST(ThreadNetwork, ConcurrentSendersAllDelivered) {
  ThreadNetwork net;
  std::atomic<int> received{0};
  net.register_endpoint(1, [&](Envelope) { received.fetch_add(1); });

  std::vector<std::thread> senders;
  for (int t = 0; t < 4; ++t) {
    senders.emplace_back([&net] {
      Envelope env;
      env.dst = 1;
      for (int i = 0; i < 100; ++i) net.send(env);
    });
  }
  for (auto& t : senders) t.join();
  net.drain();
  EXPECT_EQ(received.load(), 400);
  net.shutdown();
}

TEST(ThreadNetwork, EndpointsProcessInParallel) {
  ThreadNetwork net;
  std::atomic<int> a{0}, b{0};
  net.register_endpoint(1, [&](Envelope) { a.fetch_add(1); });
  net.register_endpoint(2, [&](Envelope) { b.fetch_add(1); });
  Envelope env;
  for (int i = 0; i < 50; ++i) {
    env.dst = 1;
    net.send(env);
    env.dst = 2;
    net.send(env);
  }
  net.drain();
  EXPECT_EQ(a.load(), 50);
  EXPECT_EQ(b.load(), 50);
  net.shutdown();
}

TEST(ThreadNetwork, ShutdownIsIdempotent) {
  ThreadNetwork net;
  net.register_endpoint(1, [](Envelope) {});
  net.shutdown();
  net.shutdown();
}

// Regression for the drain handshake: concurrent senders and drainers must
// neither deadlock nor lose deliveries, and a shutdown arriving while
// drain() waits must terminate the wait (the stopping flag is never
// cleared). The test completing inside the ctest timeout IS the
// no-deadlock assertion.
TEST(ThreadNetwork, DrainWithConcurrentSendsAndShutdown) {
  ThreadNetwork net;
  std::atomic<int> received{0};
  net.register_endpoint(1, [&](Envelope) { received.fetch_add(1); });
  net.register_endpoint(2, [&](Envelope) { received.fetch_add(1); });

  constexpr int kPerSender = 200;
  std::vector<std::thread> senders;
  for (int t = 0; t < 3; ++t) {
    senders.emplace_back([&net] {
      Envelope env;
      for (int i = 0; i < kPerSender; ++i) {
        env.dst = 1 + static_cast<principal::Id>(i % 2);
        net.send(env);
        if (i % 32 == 0) std::this_thread::yield();
      }
    });
  }
  // Drain repeatedly while the senders are still running.
  std::thread drainer([&net] {
    for (int i = 0; i < 50; ++i) net.drain();
  });
  for (auto& t : senders) t.join();
  drainer.join();

  // All sends happened-before this final drain; nothing may be lost.
  net.drain();
  EXPECT_EQ(received.load(), 3 * kPerSender);

  // A drain racing shutdown must return (stopping flag wins, and is not
  // dropped by the concurrent wait).
  std::thread late_drainer([&net] {
    for (int i = 0; i < 100; ++i) net.drain();
  });
  net.shutdown();
  late_drainer.join();
}

}  // namespace
}  // namespace sbft::net
