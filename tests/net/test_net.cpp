#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "crypto/keyring.hpp"
#include "net/message.hpp"
#include "net/thread_net.hpp"

namespace sbft::net {
namespace {

TEST(Envelope, SerializationRoundTrip) {
  Envelope env;
  env.src = 5;
  env.dst = 9;
  env.type = 77;
  env.payload = to_bytes("payload");
  env.signature = to_bytes("sig");
  const auto decoded = Envelope::deserialize(env.wire().view());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, env);
}

TEST(Envelope, RejectsTrailingBytes) {
  Envelope env;
  Bytes data = env.wire().to_bytes();
  data.push_back(1);
  EXPECT_FALSE(Envelope::deserialize(data).has_value());
}

TEST(Envelope, SignVerifyBindsTypeAndPayload) {
  crypto::KeyRing ring(crypto::Scheme::HmacShared, 5);
  ring.add_principal(1);
  const auto signer = ring.signer(1);
  const auto verifier = ring.verifier();

  Envelope env;
  env.src = 1;
  env.type = 3;
  env.payload = to_bytes("data");
  sign_envelope(env, *signer);
  EXPECT_TRUE(verify_envelope(env, *verifier, 1));

  Envelope wrong_type = env;
  wrong_type.type = 4;
  EXPECT_FALSE(verify_envelope(wrong_type, *verifier, 1));

  Envelope wrong_payload = env;
  wrong_payload.payload = to_bytes("datA");
  EXPECT_FALSE(verify_envelope(wrong_payload, *verifier, 1));

  // dst is a routing hint, not covered by the signature.
  Envelope rerouted = env;
  rerouted.dst = 42;
  EXPECT_TRUE(verify_envelope(rerouted, *verifier, 1));

  EXPECT_FALSE(verify_envelope(env, *verifier, 2));
}

TEST(ThreadNetwork, DeliversToRegisteredEndpoint) {
  ThreadNetwork net;
  std::atomic<int> received{0};
  net.register_endpoint(7, [&](Envelope) { received.fetch_add(1); });

  Envelope env;
  env.dst = 7;
  for (int i = 0; i < 10; ++i) net.send(env);
  net.drain();
  EXPECT_EQ(received.load(), 10);
  net.shutdown();
}

TEST(ThreadNetwork, DropsUnknownDestination) {
  ThreadNetwork net;
  Envelope env;
  env.dst = 999;
  net.send(env);  // must not crash or block
  net.shutdown();
}

TEST(ThreadNetwork, ConcurrentSendersAllDelivered) {
  ThreadNetwork net;
  std::atomic<int> received{0};
  net.register_endpoint(1, [&](Envelope) { received.fetch_add(1); });

  std::vector<std::thread> senders;
  for (int t = 0; t < 4; ++t) {
    senders.emplace_back([&net] {
      Envelope env;
      env.dst = 1;
      for (int i = 0; i < 100; ++i) net.send(env);
    });
  }
  for (auto& t : senders) t.join();
  net.drain();
  EXPECT_EQ(received.load(), 400);
  net.shutdown();
}

TEST(ThreadNetwork, EndpointsProcessInParallel) {
  ThreadNetwork net;
  std::atomic<int> a{0}, b{0};
  net.register_endpoint(1, [&](Envelope) { a.fetch_add(1); });
  net.register_endpoint(2, [&](Envelope) { b.fetch_add(1); });
  Envelope env;
  for (int i = 0; i < 50; ++i) {
    env.dst = 1;
    net.send(env);
    env.dst = 2;
    net.send(env);
  }
  net.drain();
  EXPECT_EQ(a.load(), 50);
  EXPECT_EQ(b.load(), 50);
  net.shutdown();
}

TEST(ThreadNetwork, ShutdownIsIdempotent) {
  ThreadNetwork net;
  net.register_endpoint(1, [](Envelope) {});
  net.shutdown();
  net.shutdown();
}

// Regression for the drain handshake: concurrent senders and drainers must
// neither deadlock nor lose deliveries, and a shutdown arriving while
// drain() waits must terminate the wait (the stopping flag is never
// cleared). The test completing inside the ctest timeout IS the
// no-deadlock assertion.
TEST(ThreadNetwork, DrainWithConcurrentSendsAndShutdown) {
  ThreadNetwork net;
  std::atomic<int> received{0};
  net.register_endpoint(1, [&](Envelope) { received.fetch_add(1); });
  net.register_endpoint(2, [&](Envelope) { received.fetch_add(1); });

  constexpr int kPerSender = 200;
  std::vector<std::thread> senders;
  for (int t = 0; t < 3; ++t) {
    senders.emplace_back([&net] {
      Envelope env;
      for (int i = 0; i < kPerSender; ++i) {
        env.dst = 1 + static_cast<principal::Id>(i % 2);
        net.send(env);
        if (i % 32 == 0) std::this_thread::yield();
      }
    });
  }
  // Drain repeatedly while the senders are still running.
  std::thread drainer([&net] {
    for (int i = 0; i < 50; ++i) net.drain();
  });
  for (auto& t : senders) t.join();
  drainer.join();

  // All sends happened-before this final drain; nothing may be lost.
  net.drain();
  EXPECT_EQ(received.load(), 3 * kPerSender);

  // A drain racing shutdown must return (stopping flag wins, and is not
  // dropped by the concurrent wait).
  std::thread late_drainer([&net] {
    for (int i = 0; i < 100; ++i) net.drain();
  });
  net.shutdown();
  late_drainer.join();
}

// Regression: registering an endpoint after shutdown() must not spawn a
// consumer thread — before the fix the thread was never joined and the
// Endpoint destructor called std::terminate.
TEST(ThreadNetwork, RegisterAfterShutdownIsInert) {
  ThreadNetwork net;
  std::atomic<int> received{0};
  net.register_endpoint(1, [&](Envelope) { received.fetch_add(1); });
  net.shutdown();
  net.register_endpoint(2, [&](Envelope) { received.fetch_add(1); });
  Envelope env;
  env.dst = 2;
  net.send(env);  // dropped: the network is stopped
  EXPECT_EQ(received.load(), 0);
}  // ~ThreadNetwork must not terminate

// Regression: re-registering an id replaces the endpoint. Before the fix
// the new Endpoint (with its running consumer thread) was destroyed on the
// failed map emplace — joinable-thread destruction terminates the process.
TEST(ThreadNetwork, ReRegisterReplacesEndpoint) {
  ThreadNetwork net;
  std::atomic<int> first{0}, second{0};
  net.register_endpoint(1, [&](Envelope) { first.fetch_add(1); });
  Envelope env;
  env.dst = 1;
  net.send(env);
  net.drain();
  EXPECT_EQ(first.load(), 1);

  net.register_endpoint(1, [&](Envelope) { second.fetch_add(1); });
  net.send(env);
  net.drain();
  EXPECT_EQ(first.load(), 1);
  EXPECT_EQ(second.load(), 1);
  net.shutdown();
}

// Soak of the shutdown/drain/send race surface, repeated so schedule
// interleavings vary: concurrent send() during shutdown() and drain()
// racing a consumer mid-batch must neither deadlock (ctest timeout is the
// assertion) nor deliver after shutdown() returned. Run under TSan locally
// and ASan in CI.
TEST(ThreadNetwork, ShutdownDrainSendStress) {
  constexpr int kIterations = 25;
  constexpr int kSenders = 4;
  constexpr int kEndpoints = 3;
  for (int iter = 0; iter < kIterations; ++iter) {
    ThreadNetwork net;
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<bool> stopped{false};
    std::atomic<bool> delivered_after_stop{false};
    for (principal::Id id = 1; id <= kEndpoints; ++id) {
      net.register_endpoint(id, [&](Envelope) {
        if (stopped.load()) delivered_after_stop.store(true);
        delivered.fetch_add(1);
      });
    }

    std::atomic<bool> quit{false};
    std::vector<std::thread> senders;
    for (int t = 0; t < kSenders; ++t) {
      senders.emplace_back([&net, &quit, t] {
        Envelope env;
        for (int i = 0; !quit.load(); ++i) {
          env.dst = 1 + static_cast<principal::Id>((i + t) % kEndpoints);
          net.send(env);
          if (i % 64 == 0) std::this_thread::yield();
        }
      });
    }
    std::thread drainer([&net, &quit] {
      while (!quit.load()) net.drain();
    });

    // Let traffic build, then shut down while senders/drainer still run.
    std::this_thread::sleep_for(std::chrono::milliseconds(iter % 3));
    net.shutdown();
    stopped.store(true);
    const std::uint64_t at_stop = delivered.load();
    quit.store(true);
    for (auto& t : senders) t.join();
    drainer.join();

    // shutdown() joins every consumer: nothing may arrive afterwards.
    EXPECT_FALSE(delivered_after_stop.load());
    EXPECT_EQ(delivered.load(), at_stop);
  }
}

// Drain must observe batches a consumer holds mid-delivery: a slow handler
// keeps `busy` raised, and drain() returning implies the whole drained
// batch reached the handler.
TEST(ThreadNetwork, DrainWaitsForConsumerMidBatch) {
  for (int iter = 0; iter < 20; ++iter) {
    ThreadNetwork net;
    std::atomic<int> received{0};
    net.register_endpoint(1, [&](Envelope) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      received.fetch_add(1);
    });
    constexpr int kMessages = 40;
    std::thread sender([&net] {
      Envelope env;
      env.dst = 1;
      for (int i = 0; i < kMessages; ++i) net.send(env);
    });
    sender.join();
    net.drain();
    EXPECT_EQ(received.load(), kMessages);
    net.shutdown();
  }
}

}  // namespace
}  // namespace sbft::net
