// Auth-layer tests: VerifyCache semantics (including tampered envelopes and
// cache-poisoning attempts), VerifiedEnvelope, VerifierPool, and the
// ThreadNetwork ingress-authentication path.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "crypto/keyring.hpp"
#include "net/auth.hpp"
#include "net/message.hpp"
#include "net/thread_net.hpp"

namespace sbft::net {
namespace {

struct AuthFixture {
  explicit AuthFixture(crypto::Scheme scheme = crypto::Scheme::Ed25519,
                       std::size_t principals = 4)
      : ring(scheme, 7) {
    for (std::size_t p = 1; p <= principals; ++p) {
      ring.add_principal(p);
    }
  }

  [[nodiscard]] Envelope signed_envelope(principal::Id signer,
                                         std::string_view payload,
                                         std::uint32_t type = 3) const {
    Envelope env;
    env.src = signer;
    env.dst = 99;
    env.type = type;
    env.payload = to_bytes(payload);
    sign_envelope(env, *ring.signer(signer));
    return env;
  }

  crypto::KeyRing ring;
};

TEST(VerifyCache, VerifiesAndCachesSuccess) {
  AuthFixture f;
  VerifyCache cache(f.ring.verifier());
  const Envelope env = f.signed_envelope(1, "hello");

  auto verified = cache.verify(env, 1);
  ASSERT_TRUE(verified.has_value());
  EXPECT_EQ(verified->signer(), 1u);
  EXPECT_EQ(verified->envelope(), env);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  // Second check of the identical envelope is a hit, not a re-verification.
  EXPECT_TRUE(cache.check(env, 1));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(VerifyCache, TamperedEnvelopesRejected) {
  AuthFixture f;
  VerifyCache cache(f.ring.verifier());
  const Envelope env = f.signed_envelope(1, "payload");
  ASSERT_TRUE(cache.check(env, 1));

  // Frames are immutable: tampering means copying bytes out, editing, and
  // rebinding a fresh frame.
  Envelope flipped = env;
  Bytes flipped_payload = env.payload.to_bytes();
  flipped_payload[0] ^= 0x01;  // flipped payload byte
  flipped.payload = std::move(flipped_payload);
  EXPECT_FALSE(cache.check(flipped, 1));

  Envelope truncated = env;
  Bytes short_sig = env.signature.to_bytes();
  short_sig.pop_back();  // truncated signature
  truncated.signature = std::move(short_sig);
  EXPECT_FALSE(cache.check(truncated, 1));

  // Signer-ID substitution: a valid signature by 1 never verifies as 2.
  EXPECT_FALSE(cache.check(env, 2));

  // Type is covered by the signing input.
  Envelope retyped = env;
  retyped.type = 4;
  EXPECT_FALSE(cache.check(retyped, 1));

  const VerifyStats s = cache.stats();
  EXPECT_EQ(s.failures, 4u);
  EXPECT_EQ(s.misses, 1u);  // only the original verified (and was cached)
}

TEST(VerifyCache, PoisoningAttemptMissesDespitePriorHit) {
  AuthFixture f;
  VerifyCache cache(f.ring.verifier());
  const Envelope env = f.signed_envelope(1, "quorum message");
  ASSERT_TRUE(cache.check(env, 1));
  ASSERT_TRUE(cache.check(env, 1));  // cached
  ASSERT_EQ(cache.stats().hits, 1u);

  // Re-send the SAME payload with a forged signature: signature bytes are
  // part of the cache key, so the prior hit cannot be reused.
  Envelope forged = env;
  forged.signature = f.signed_envelope(2, "quorum message").signature;
  EXPECT_FALSE(cache.check(forged, 1));

  Envelope garbage = env;
  garbage.signature = Bytes(64, 0xab);
  EXPECT_FALSE(cache.check(garbage, 1));

  EXPECT_EQ(cache.stats().failures, 2u);
  // And the legitimate envelope still hits.
  EXPECT_TRUE(cache.check(env, 1));
}

TEST(VerifyCache, LruEvictionAtCapacity) {
  AuthFixture f(crypto::Scheme::HmacShared);
  VerifyCache cache(f.ring.verifier(), /*capacity=*/2);
  const Envelope a = f.signed_envelope(1, "a");
  const Envelope b = f.signed_envelope(1, "b");
  const Envelope c = f.signed_envelope(1, "c");

  EXPECT_TRUE(cache.check(a, 1));
  EXPECT_TRUE(cache.check(b, 1));
  EXPECT_TRUE(cache.check(c, 1));  // evicts a (least recently used)
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);

  // `a` still verifies — through the verifier again, not the cache.
  EXPECT_TRUE(cache.check(a, 1));
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(VerifyCache, AttestOwnSeedsTheCache) {
  AuthFixture f;
  VerifyCache cache(f.ring.verifier());
  Envelope env = f.signed_envelope(1, "own message");

  const VerifiedEnvelope own = cache.attest_own(env, *f.ring.signer(1));
  EXPECT_EQ(own.signer(), 1u);
  EXPECT_EQ(cache.stats().misses, 0u);  // no verification ran

  // A later proof validation that includes our own envelope hits.
  EXPECT_TRUE(cache.check(env, 1));
  EXPECT_EQ(cache.stats().hits, 1u);

  const VerifiedEnvelope copy = own.clone();
  EXPECT_EQ(copy.envelope(), own.envelope());
  EXPECT_EQ(copy.signer(), own.signer());
}

TEST(VerifyCache, UnwrapPreservesOrder) {
  AuthFixture f(crypto::Scheme::HmacShared);
  VerifyCache cache(f.ring.verifier());
  std::vector<VerifiedEnvelope> verified;
  verified.push_back(*cache.verify(f.signed_envelope(1, "x"), 1));
  verified.push_back(*cache.verify(f.signed_envelope(2, "y"), 2));
  const std::vector<Envelope> wire = unwrap(verified);
  ASSERT_EQ(wire.size(), 2u);
  EXPECT_EQ(wire[0].payload, to_bytes("x"));
  EXPECT_EQ(wire[1].payload, to_bytes("y"));
}

TEST(VerifierPool, SynchronousModeMatchesSerial) {
  AuthFixture f;
  auto cache = std::make_shared<VerifyCache>(f.ring.verifier());
  VerifierPool pool(cache, /*workers=*/0);

  std::vector<VerifierPool::Job> jobs;
  jobs.push_back({f.signed_envelope(1, "good"), 1});
  Envelope bad = f.signed_envelope(2, "bad");
  Bytes bad_payload = bad.payload.to_bytes();
  bad_payload[0] ^= 0xff;
  bad.payload = std::move(bad_payload);
  jobs.push_back({bad, 2});
  jobs.push_back({f.signed_envelope(3, "also good"), 3});

  const auto results = pool.verify_batch(jobs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].has_value());
  EXPECT_FALSE(results[1].has_value());
  EXPECT_TRUE(results[2].has_value());
  EXPECT_EQ(results[0]->signer(), 1u);
}

TEST(VerifierPool, ParallelWorkersProduceSameResultsAndShareCache) {
  AuthFixture f;
  auto cache = std::make_shared<VerifyCache>(f.ring.verifier());
  VerifierPool pool(cache, /*workers=*/4);

  std::vector<VerifierPool::Job> jobs;
  for (int i = 0; i < 40; ++i) {
    const principal::Id signer = 1 + (static_cast<principal::Id>(i) % 4);
    Envelope env = f.signed_envelope(signer, "msg " + std::to_string(i));
    if (i % 5 == 0) {  // corrupt every 5th (append a byte)
      Bytes grown = env.payload.to_bytes();
      grown.push_back(0x00);
      env.payload = std::move(grown);
    }
    jobs.push_back({std::move(env), signer});
  }
  const auto results = pool.verify_batch(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].has_value(), i % 5 != 0) << "job " << i;
  }

  // Re-submitting the same batch is answered from the shared cache.
  const auto before = cache->stats();
  (void)pool.verify_batch(jobs);
  const auto after = cache->stats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.hits, before.hits + 32);
}

TEST(VerifierPool, EmptyBatch) {
  AuthFixture f;
  VerifierPool pool(std::make_shared<VerifyCache>(f.ring.verifier()), 2);
  EXPECT_TRUE(pool.verify_batch({}).empty());
}

// --------------------------------------------------- ThreadNetwork ingress

TEST(ThreadNetworkAuth, DropsTamperedEnvelopesBeforeDelivery) {
  AuthFixture f;
  auto cache = std::make_shared<VerifyCache>(f.ring.verifier());
  auto pool = std::make_shared<VerifierPool>(cache, 2);

  ThreadNetwork network;
  network.enable_ingress_auth(
      pool, [](const Envelope& env) -> std::optional<principal::Id> {
        if (env.signature.empty()) return std::nullopt;
        return env.src;  // protocol rule: signer == src for signed traffic
      });

  std::atomic<int> delivered{0};
  std::atomic<int> unsigned_delivered{0};
  network.register_endpoint(99, [&](Envelope env) {
    if (env.signature.empty()) {
      unsigned_delivered.fetch_add(1);
    } else {
      delivered.fetch_add(1);
    }
  });

  // 10 valid, 5 tampered (flipped payload), 5 forged (signer substitution
  // via src rewrite), 3 unsigned pass-through.
  for (int i = 0; i < 10; ++i) {
    network.send(f.signed_envelope(1, "valid " + std::to_string(i)));
  }
  for (int i = 0; i < 5; ++i) {
    Envelope env = f.signed_envelope(1, "tampered " + std::to_string(i));
    Bytes tampered = env.payload.to_bytes();
    tampered[0] ^= 0x80;
    env.payload = std::move(tampered);
    network.send(std::move(env));
  }
  for (int i = 0; i < 5; ++i) {
    Envelope env = f.signed_envelope(2, "forged " + std::to_string(i));
    env.src = 1;  // claims to be principal 1, carries 2's signature
    network.send(std::move(env));
  }
  for (int i = 0; i < 3; ++i) {
    Envelope env;
    env.src = 1;
    env.dst = 99;
    env.type = 1;
    env.payload = to_bytes("unsigned");
    network.send(std::move(env));
  }

  network.drain();
  EXPECT_EQ(delivered.load(), 10);
  EXPECT_EQ(unsigned_delivered.load(), 3);
  EXPECT_EQ(cache->stats().failures, 10u);
  network.shutdown();
}

TEST(ThreadNetworkAuth, RepeatedCertificateTrafficHitsSharedCache) {
  AuthFixture f;
  auto cache = std::make_shared<VerifyCache>(f.ring.verifier());
  auto pool = std::make_shared<VerifierPool>(cache, 2);

  ThreadNetwork network;
  network.enable_ingress_auth(
      pool, [](const Envelope& env) -> std::optional<principal::Id> {
        if (env.signature.empty()) return std::nullopt;
        return env.src;
      });
  std::atomic<int> delivered{0};
  network.register_endpoint(99, [&](Envelope) { delivered.fetch_add(1); });

  const Envelope cert = f.signed_envelope(1, "relayed certificate");
  for (int i = 0; i < 8; ++i) network.send(cert);
  network.drain();
  EXPECT_EQ(delivered.load(), 8);
  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_EQ(cache->stats().hits, 7u);
  network.shutdown();
}

}  // namespace
}  // namespace sbft::net
