// Incremental snapshot emission/application (Application::snapshot_chunks /
// apply_*): the KvStore override and the whole-snapshot compatibility shim
// must both reproduce snapshot()/restore() exactly, chunk size be damned.
#include <gtest/gtest.h>

#include "apps/counter_app.hpp"
#include "apps/kv_store.hpp"

namespace sbft::apps {
namespace {

[[nodiscard]] KvStore filled_store(int keys) {
  KvStore store;
  for (int i = 0; i < keys; ++i) {
    Bytes key = to_bytes("key-" + std::to_string(i));
    Bytes value(static_cast<std::size_t>(17 * (i + 1)));
    for (std::size_t j = 0; j < value.size(); ++j) {
      value[j] = static_cast<std::uint8_t>(i + j);
    }
    (void)store.execute(kv::encode_put(key, value));
  }
  return store;
}

[[nodiscard]] Bytes collect_chunks(const Application& app,
                                   std::size_t chunk_bytes,
                                   std::size_t* max_piece = nullptr) {
  Bytes all;
  app.snapshot_chunks(chunk_bytes, [&](ByteView piece) {
    if (max_piece) *max_piece = std::max(*max_piece, piece.size());
    all.insert(all.end(), piece.begin(), piece.end());
  });
  return all;
}

TEST(StreamingSnapshot, ChunksConcatenateToSnapshot) {
  const KvStore store = filled_store(20);
  const Bytes full = store.snapshot();
  for (const std::size_t chunk : {1u, 64u, 1000u, 1u << 20}) {
    std::size_t max_piece = 0;
    EXPECT_EQ(collect_chunks(store, chunk, &max_piece), full)
        << "chunk=" << chunk;
    EXPECT_LE(max_piece, chunk);
  }
}

TEST(StreamingSnapshot, ApplyRebuildsAtAnyChunkBoundary) {
  const KvStore source = filled_store(20);
  const Bytes full = source.snapshot();
  for (const std::size_t chunk : {1u, 7u, 64u, 4096u}) {
    KvStore target;
    target.apply_begin(full.size());
    for (std::size_t off = 0; off < full.size(); off += chunk) {
      ASSERT_TRUE(target.apply_chunk(
          ByteView{full.data() + off, std::min(chunk, full.size() - off)}))
          << "chunk=" << chunk << " off=" << off;
    }
    ASSERT_TRUE(target.apply_end()) << "chunk=" << chunk;
    EXPECT_EQ(target.state_digest(), source.state_digest());
    EXPECT_EQ(target.size(), source.size());
  }
}

TEST(StreamingSnapshot, LiveStateServesUntilCommitAndAbortKeepsIt) {
  KvStore store;
  (void)store.execute(kv::encode_put(to_bytes("live"), to_bytes("value")));
  const Digest before = store.state_digest();

  const Bytes incoming = filled_store(5).snapshot();
  store.apply_begin(incoming.size());
  ASSERT_TRUE(store.apply_chunk(ByteView{incoming.data(), incoming.size() / 2}));
  // Mid-restore the live table is untouched.
  EXPECT_EQ(store.state_digest(), before);
  store.apply_abort();
  EXPECT_EQ(store.state_digest(), before);
  const auto reply = kv::decode_reply(store.execute(kv::encode_get(to_bytes("live"))));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->value, to_bytes("value"));
}

TEST(StreamingSnapshot, TruncatedApplyFailsWithoutCorruptingLiveState) {
  KvStore store;
  (void)store.execute(kv::encode_put(to_bytes("live"), to_bytes("value")));
  const Digest before = store.state_digest();

  const Bytes incoming = filled_store(5).snapshot();
  store.apply_begin(incoming.size());
  ASSERT_TRUE(store.apply_chunk(ByteView{incoming.data(), incoming.size() - 3}));
  EXPECT_FALSE(store.apply_end());  // records missing
  EXPECT_EQ(store.state_digest(), before);
}

TEST(StreamingSnapshot, GarbageChunkIsRejected) {
  KvStore store;
  // A length prefix claiming far more records than bytes can follow.
  Bytes garbage(64, 0xFF);
  store.apply_begin(garbage.size());
  const bool fed = store.apply_chunk(garbage);
  EXPECT_FALSE(fed && store.apply_end());
}

TEST(StreamingSnapshot, RestartedApplyDiscardsPreviousStaging) {
  const KvStore a = filled_store(3);
  const KvStore b = filled_store(9);
  const Bytes snap_a = a.snapshot();
  const Bytes snap_b = b.snapshot();

  KvStore target;
  target.apply_begin(snap_a.size());
  ASSERT_TRUE(target.apply_chunk(ByteView{snap_a.data(), snap_a.size() / 2}));
  // Begin again: the half-fed restore must not leak into the new one.
  target.apply_begin(snap_b.size());
  ASSERT_TRUE(target.apply_chunk(snap_b));
  ASSERT_TRUE(target.apply_end());
  EXPECT_EQ(target.state_digest(), b.state_digest());
}

TEST(StreamingSnapshot, DefaultShimMatchesRestoreForCounterApp) {
  CounterApp source;
  (void)source.execute(CounterApp::encode_add(41));
  const Bytes full = source.snapshot();

  // CounterApp has no overrides: the base-class buffering shim applies.
  CounterApp target;
  std::size_t max_piece = 0;
  const Bytes chunks = collect_chunks(source, 3, &max_piece);
  EXPECT_EQ(chunks, full);
  EXPECT_LE(max_piece, 3u);

  target.apply_begin(full.size());
  for (std::size_t off = 0; off < full.size(); off += 3) {
    ASSERT_TRUE(target.apply_chunk(
        ByteView{full.data() + off, std::min<std::size_t>(3, full.size() - off)}));
  }
  ASSERT_TRUE(target.apply_end());
  EXPECT_EQ(target.state_digest(), source.state_digest());
}

}  // namespace
}  // namespace sbft::apps
