#include <gtest/gtest.h>

#include "apps/counter_app.hpp"
#include "apps/kv_store.hpp"
#include "apps/ledger.hpp"

namespace sbft::apps {
namespace {

TEST(KvStore, PutGetDelete) {
  KvStore store;
  auto reply = kv::decode_reply(
      store.execute(kv::encode_put(to_bytes("k1"), to_bytes("v1"))));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, KvStatus::Ok);

  reply = kv::decode_reply(store.execute(kv::encode_get(to_bytes("k1"))));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, KvStatus::Ok);
  EXPECT_EQ(reply->value, to_bytes("v1"));

  reply = kv::decode_reply(store.execute(kv::encode_del(to_bytes("k1"))));
  EXPECT_EQ(reply->status, KvStatus::Ok);
  reply = kv::decode_reply(store.execute(kv::encode_get(to_bytes("k1"))));
  EXPECT_EQ(reply->status, KvStatus::NotFound);
}

TEST(KvStore, GetMissingKey) {
  KvStore store;
  const auto reply =
      kv::decode_reply(store.execute(kv::encode_get(to_bytes("nope"))));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, KvStatus::NotFound);
}

TEST(KvStore, DeleteMissingKey) {
  KvStore store;
  const auto reply =
      kv::decode_reply(store.execute(kv::encode_del(to_bytes("nope"))));
  EXPECT_EQ(reply->status, KvStatus::NotFound);
}

TEST(KvStore, CompareAndSwap) {
  KvStore store;
  (void)store.execute(kv::encode_put(to_bytes("k"), to_bytes("a")));

  auto reply = kv::decode_reply(
      store.execute(kv::encode_cas(to_bytes("k"), to_bytes("a"), to_bytes("b"))));
  EXPECT_EQ(reply->status, KvStatus::Ok);

  reply = kv::decode_reply(
      store.execute(kv::encode_cas(to_bytes("k"), to_bytes("a"), to_bytes("c"))));
  EXPECT_EQ(reply->status, KvStatus::CasMismatch);
  EXPECT_EQ(reply->value, to_bytes("b"));  // current value returned

  reply = kv::decode_reply(store.execute(
      kv::encode_cas(to_bytes("missing"), to_bytes("a"), to_bytes("c"))));
  EXPECT_EQ(reply->status, KvStatus::NotFound);
}

TEST(KvStore, MalformedOperationIsBadRequest) {
  KvStore store;
  const auto reply = kv::decode_reply(store.execute(to_bytes("garbage")));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, KvStatus::BadRequest);
}

TEST(KvStore, SnapshotRestoreRoundTrip) {
  KvStore a;
  (void)a.execute(kv::encode_put(to_bytes("x"), to_bytes("1")));
  (void)a.execute(kv::encode_put(to_bytes("y"), to_bytes("2")));

  KvStore b;
  ASSERT_TRUE(b.restore(a.snapshot()));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(a.state_digest(), b.state_digest());

  const auto reply = kv::decode_reply(b.execute(kv::encode_get(to_bytes("y"))));
  EXPECT_EQ(reply->value, to_bytes("2"));
}

TEST(KvStore, DigestReflectsState) {
  KvStore a, b;
  EXPECT_EQ(a.state_digest(), b.state_digest());
  (void)a.execute(kv::encode_put(to_bytes("k"), to_bytes("v")));
  EXPECT_NE(a.state_digest(), b.state_digest());
  (void)b.execute(kv::encode_put(to_bytes("k"), to_bytes("v")));
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(KvStore, RestoreRejectsGarbage) {
  KvStore store;
  EXPECT_FALSE(store.restore(to_bytes("not a snapshot")));
}

TEST(Ledger, CutsBlockEveryN) {
  std::vector<Bytes> blocks;
  Ledger ledger(5, [&](ByteView b) { blocks.emplace_back(b.begin(), b.end()); });
  for (int i = 0; i < 12; ++i) {
    (void)ledger.execute(to_bytes("tx"));
  }
  EXPECT_EQ(ledger.height(), 2u);
  EXPECT_EQ(blocks.size(), 2u);
  EXPECT_EQ(ledger.pending_transactions(), 2u);
}

TEST(Ledger, ReceiptsCarrySequence) {
  Ledger ledger(5);
  const auto r0 = LedgerReceipt::decode(ledger.execute(to_bytes("a")));
  const auto r1 = LedgerReceipt::decode(ledger.execute(to_bytes("b")));
  ASSERT_TRUE(r0 && r1);
  EXPECT_EQ(r0->tx_seq, 0u);
  EXPECT_EQ(r1->tx_seq, 1u);
}

TEST(Ledger, BlocksChainByPrevHash) {
  std::vector<Bytes> blocks;
  Ledger ledger(2, [&](ByteView b) { blocks.emplace_back(b.begin(), b.end()); });
  for (int i = 0; i < 4; ++i) (void)ledger.execute(to_bytes("tx"));
  ASSERT_EQ(blocks.size(), 2u);

  const auto b0 = Block::deserialize(blocks[0]);
  const auto b1 = Block::deserialize(blocks[1]);
  ASSERT_TRUE(b0 && b1);
  EXPECT_EQ(b0->height, 1u);
  EXPECT_EQ(b1->height, 2u);
  EXPECT_TRUE(b0->prev_hash.is_zero());
  EXPECT_EQ(b1->prev_hash, b0->hash());
  EXPECT_EQ(ledger.head_hash(), b1->hash());
}

TEST(Ledger, SnapshotRestorePreservesChain) {
  Ledger a(3);
  for (int i = 0; i < 7; ++i) (void)a.execute(to_bytes("tx"));

  Ledger b(3);
  ASSERT_TRUE(b.restore(a.snapshot()));
  EXPECT_EQ(b.height(), a.height());
  EXPECT_EQ(b.head_hash(), a.head_hash());
  EXPECT_EQ(b.pending_transactions(), a.pending_transactions());
  EXPECT_EQ(a.state_digest(), b.state_digest());

  // Executing the same op on both keeps them convergent.
  (void)a.execute(to_bytes("x"));
  (void)b.execute(to_bytes("x"));
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(Ledger, DeterministicAcrossInstances) {
  Ledger a(5), b(5);
  for (int i = 0; i < 11; ++i) {
    const Bytes tx = to_bytes("tx-" + std::to_string(i));
    (void)a.execute(tx);
    (void)b.execute(tx);
  }
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_EQ(a.head_hash(), b.head_hash());
}

TEST(Ledger, BlockSerializationRoundTrip) {
  Block block;
  block.height = 3;
  block.prev_hash.bytes[0] = 1;
  block.tx_digest.bytes[1] = 2;
  block.transactions = {to_bytes("t1"), to_bytes("t2")};
  const auto decoded = Block::deserialize(block.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->height, 3u);
  EXPECT_EQ(decoded->transactions.size(), 2u);
  EXPECT_EQ(decoded->hash(), block.hash());
}

TEST(CounterApp, AddAndValue) {
  CounterApp app;
  (void)app.execute(CounterApp::encode_add(5));
  (void)app.execute(CounterApp::encode_add(7));
  EXPECT_EQ(app.value(), 12u);
}

TEST(CounterApp, SnapshotRestore) {
  CounterApp a;
  (void)a.execute(CounterApp::encode_add(9));
  CounterApp b;
  ASSERT_TRUE(b.restore(a.snapshot()));
  EXPECT_EQ(b.value(), 9u);
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

}  // namespace
}  // namespace sbft::apps
