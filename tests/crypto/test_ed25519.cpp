#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/ed25519.hpp"

namespace sbft::crypto {
namespace {

[[nodiscard]] std::array<std::uint8_t, 32> seed_from_hex(
    const std::string& hex) {
  const auto v = from_hex(hex);
  std::array<std::uint8_t, 32> out{};
  if (v && v->size() == 32) std::copy(v->begin(), v->end(), out.begin());
  return out;
}

TEST(Ed25519, Rfc8032Test1EmptyMessage) {
  const auto seed = seed_from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto key = Ed25519SecretKey::from_seed(seed);
  EXPECT_EQ(to_hex(key.public_key().view()),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");

  const Ed25519Signature sig = key.sign({});
  EXPECT_EQ(to_hex(sig.view()),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
  EXPECT_TRUE(ed25519_verify(key.public_key(), {}, sig));
}

TEST(Ed25519, Rfc8032Test2OneByte) {
  const auto seed = seed_from_hex(
      "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  const auto key = Ed25519SecretKey::from_seed(seed);
  EXPECT_EQ(to_hex(key.public_key().view()),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");

  const Bytes msg = {0x72};
  const Ed25519Signature sig = key.sign(msg);
  EXPECT_EQ(to_hex(sig.view()),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
  EXPECT_TRUE(ed25519_verify(key.public_key(), msg, sig));
}

TEST(Ed25519, SignVerifyRoundTrip) {
  Rng rng(42);
  const auto key = Ed25519SecretKey::generate(rng);
  const Bytes msg = to_bytes("the quick brown fox");
  const Ed25519Signature sig = key.sign(msg);
  EXPECT_TRUE(ed25519_verify(key.public_key(), msg, sig));
}

TEST(Ed25519, RejectsTamperedMessage) {
  Rng rng(43);
  const auto key = Ed25519SecretKey::generate(rng);
  const Bytes msg = to_bytes("original");
  const Ed25519Signature sig = key.sign(msg);
  EXPECT_FALSE(ed25519_verify(key.public_key(), to_bytes("originaX"), sig));
}

TEST(Ed25519, RejectsTamperedSignature) {
  Rng rng(44);
  const auto key = Ed25519SecretKey::generate(rng);
  const Bytes msg = to_bytes("message");
  Ed25519Signature sig = key.sign(msg);
  sig.bytes[0] ^= 1;
  EXPECT_FALSE(ed25519_verify(key.public_key(), msg, sig));
  sig.bytes[0] ^= 1;
  sig.bytes[63] ^= 0x10;
  EXPECT_FALSE(ed25519_verify(key.public_key(), msg, sig));
}

TEST(Ed25519, RejectsWrongKey) {
  Rng rng(45);
  const auto key1 = Ed25519SecretKey::generate(rng);
  const auto key2 = Ed25519SecretKey::generate(rng);
  const Bytes msg = to_bytes("message");
  const Ed25519Signature sig = key1.sign(msg);
  EXPECT_FALSE(ed25519_verify(key2.public_key(), msg, sig));
}

TEST(Ed25519, DeterministicSignatures) {
  Rng rng(46);
  const auto key = Ed25519SecretKey::generate(rng);
  const Bytes msg = to_bytes("same input");
  EXPECT_EQ(key.sign(msg), key.sign(msg));
}

TEST(Ed25519, DistinctMessagesDistinctSignatures) {
  Rng rng(47);
  const auto key = Ed25519SecretKey::generate(rng);
  EXPECT_NE(key.sign(to_bytes("a")), key.sign(to_bytes("b")));
}

TEST(Ed25519, RandomizedRoundTrips) {
  Rng rng(48);
  for (int i = 0; i < 3; ++i) {
    const auto key = Ed25519SecretKey::generate(rng);
    const Bytes msg = rng.bytes(1 + rng.below(200));
    const Ed25519Signature sig = key.sign(msg);
    EXPECT_TRUE(ed25519_verify(key.public_key(), msg, sig));
    Bytes tampered = msg;
    tampered[rng.below(tampered.size())] ^= 0x80;
    EXPECT_FALSE(ed25519_verify(key.public_key(), tampered, sig));
  }
}

TEST(Ed25519, RejectsGarbagePublicKey) {
  Ed25519PublicKey garbage;
  for (std::size_t i = 0; i < 32; ++i) {
    garbage.bytes[i] = static_cast<std::uint8_t>(0xa0 + i);
  }
  Rng rng(49);
  const auto key = Ed25519SecretKey::generate(rng);
  const Bytes msg = to_bytes("m");
  const Ed25519Signature sig = key.sign(msg);
  EXPECT_FALSE(ed25519_verify(garbage, msg, sig));
}

}  // namespace
}  // namespace sbft::crypto
