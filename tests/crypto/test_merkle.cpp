#include "crypto/merkle.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"

namespace sbft::crypto {
namespace {

[[nodiscard]] Bytes pattern(std::size_t n, std::uint8_t salt = 0) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(i * 7 + salt);
  }
  return b;
}

TEST(Merkle, LeafIsDomainSeparated) {
  const Bytes chunk = pattern(100);
  EXPECT_NE(merkle_leaf(chunk), sha256(chunk));
}

TEST(Merkle, EveryChunkProofVerifies) {
  for (const std::size_t total : {0u, 1u, 63u, 64u, 65u, 300u}) {
    const Bytes snapshot = pattern(total);
    const std::uint64_t chunk_bytes = 64;
    const MerkleTree tree = build_snapshot_tree(snapshot, chunk_bytes);
    const SnapshotManifest manifest{total, chunk_bytes, tree.root()};
    ASSERT_EQ(tree.leaf_count(), manifest.chunk_count()) << "total=" << total;
    for (std::uint64_t i = 0; i < manifest.chunk_count(); ++i) {
      const std::uint64_t off = i * chunk_bytes;
      const ByteView chunk{snapshot.data() + off,
                           static_cast<std::size_t>(manifest.chunk_size(i))};
      EXPECT_TRUE(MerkleTree::verify(tree.root(), i, tree.leaf_count(), chunk,
                                     tree.proof(i)))
          << "total=" << total << " chunk=" << i;
    }
  }
}

TEST(Merkle, TamperedChunkFailsVerification) {
  Bytes snapshot = pattern(300);
  const MerkleTree tree = build_snapshot_tree(snapshot, 64);
  Bytes chunk(snapshot.begin(), snapshot.begin() + 64);
  chunk[10] ^= 0x01;
  EXPECT_FALSE(
      MerkleTree::verify(tree.root(), 0, tree.leaf_count(), chunk, tree.proof(0)));
}

TEST(Merkle, WrongIndexFailsVerification) {
  const Bytes snapshot = pattern(300);
  const MerkleTree tree = build_snapshot_tree(snapshot, 64);
  const ByteView chunk{snapshot.data(), 64};
  // Right chunk + proof, wrong claimed position.
  EXPECT_FALSE(
      MerkleTree::verify(tree.root(), 1, tree.leaf_count(), chunk, tree.proof(0)));
}

TEST(Merkle, TruncatedProofFailsVerification) {
  const Bytes snapshot = pattern(64 * 8);
  const MerkleTree tree = build_snapshot_tree(snapshot, 64);
  MerkleProof proof = tree.proof(0);
  ASSERT_GT(proof.size(), 1u);
  proof.pop_back();
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 0, tree.leaf_count(),
                                  ByteView{snapshot.data(), 64}, proof));
}

TEST(Merkle, LeafCountBoundIntoStructure) {
  // The promoted-odd-node construction must distinguish n leaves from the
  // same leaves plus a duplicate tail — a Bitcoin-style tree would not.
  const Bytes five = pattern(64 * 5);
  Bytes six = five;
  six.insert(six.end(), five.end() - 64, five.end());
  EXPECT_NE(build_snapshot_tree(five, 64).root(),
            build_snapshot_tree(six, 64).root());
}

TEST(Merkle, EmptySnapshotIsOneEmptyLeaf) {
  const MerkleTree tree = build_snapshot_tree({}, 64);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_TRUE(MerkleTree::verify(tree.root(), 0, 1, {}, tree.proof(0)));
}

TEST(SnapshotManifest, GeometryHelpers) {
  const SnapshotManifest m{300, 64, {}};
  EXPECT_EQ(m.chunk_count(), 5u);
  EXPECT_EQ(m.chunk_size(0), 64u);
  EXPECT_EQ(m.chunk_size(4), 44u);
  EXPECT_EQ(SnapshotManifest({0, 64, {}}).chunk_count(), 1u);
  EXPECT_EQ(SnapshotManifest({300, 0, {}}).chunk_count(), 0u);  // invalid
}

TEST(SnapshotManifest, CommitmentBindsGeometry) {
  const MerkleTree tree = build_snapshot_tree(pattern(300), 64);
  const SnapshotManifest base{300, 64, tree.root()};
  SnapshotManifest other = base;
  other.total_bytes = 301;
  EXPECT_NE(base.commitment(), other.commitment());
  other = base;
  other.chunk_bytes = 128;
  EXPECT_NE(base.commitment(), other.commitment());
  other = base;
  other.root.bytes[0] ^= 1;
  EXPECT_NE(base.commitment(), other.commitment());
  EXPECT_EQ(base.commitment(), SnapshotManifest(base).commitment());
}

}  // namespace
}  // namespace sbft::crypto
