// Empty-input hashing against published vectors, plus empty-chunk
// interleavings. A default-constructed ByteView carries a null data()
// pointer, which historically reached memcpy (UB flagged by UBSan).
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"

namespace sbft::crypto {
namespace {

constexpr const char* kSha256Empty =
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
constexpr const char* kSha512Empty =
    "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
    "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e";
// HMAC-SHA256 with empty key and empty message.
constexpr const char* kHmacEmptyEmpty =
    "b613679a0814d9ec772f95d778c35fc5ff1697c493715653c6c712144292c5ad";

TEST(EmptyInput, Sha256EmptyMessageVector) {
  EXPECT_EQ(sha256(ByteView{}).hex(), kSha256Empty);
}

TEST(EmptyInput, Sha256ExplicitEmptyUpdates) {
  Sha256 h;
  h.update(ByteView{});
  h.update(ByteView{});
  EXPECT_EQ(h.finalize().hex(), kSha256Empty);
}

TEST(EmptyInput, Sha512EmptyMessageVector) {
  EXPECT_EQ(to_hex(sha512(ByteView{})), kSha512Empty);
}

TEST(EmptyInput, Sha512ExplicitEmptyUpdates) {
  Sha512 h;
  h.update(ByteView{});
  h.update(ByteView{});
  EXPECT_EQ(to_hex(h.finalize()), kSha512Empty);
}

TEST(EmptyInput, HmacSha256EmptyKeyEmptyMessage) {
  EXPECT_EQ(hmac_sha256(ByteView{}, ByteView{}).hex(), kHmacEmptyEmpty);
}

TEST(EmptyInput, HmacSha256EmptyKeyNonEmptyMessage) {
  // The empty key must pad to a zero block, same as a key of zero length
  // copied in — cross-check against the streaming hasher.
  const Bytes msg = to_bytes("The quick brown fox jumps over the lazy dog");
  const Digest via_empty_view = hmac_sha256(ByteView{}, msg);
  const Bytes empty_key;
  const Digest via_empty_bytes =
      hmac_sha256(ByteView{empty_key.data(), empty_key.size()}, msg);
  EXPECT_EQ(via_empty_view, via_empty_bytes);
}

TEST(EmptyInput, Sha256EmptyChunksInterleaved) {
  // update(empty) interleaved between real chunks must not perturb state,
  // including when the internal buffer is partially full.
  const Bytes msg = to_bytes("abc");
  Sha256 h;
  h.update(ByteView{});
  h.update(ByteView{msg.data(), 1});
  h.update(ByteView{});
  h.update(ByteView{msg.data() + 1, 2});
  h.update(ByteView{});
  EXPECT_EQ(h.finalize().hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(EmptyInput, Sha512EmptyChunksInterleaved) {
  const Bytes msg = to_bytes("abc");
  Sha512 h;
  h.update(ByteView{});
  h.update(ByteView{msg.data(), 1});
  h.update(ByteView{});
  h.update(ByteView{msg.data() + 1, 2});
  h.update(ByteView{});
  EXPECT_EQ(to_hex(h.finalize()),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(EmptyInput, ToStringViewCopyEmpty) {
  EXPECT_EQ(to_string_view_copy(ByteView{}), "");
}

}  // namespace
}  // namespace sbft::crypto
