#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/keyring.hpp"

namespace sbft::crypto {
namespace {

class KeyRingTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(KeyRingTest, SignVerifyRoundTrip) {
  KeyRing ring(GetParam(), 1);
  ring.add_principal(10);
  ring.add_principal(20);

  const auto signer = ring.signer(10);
  const auto verifier = ring.verifier();
  const Bytes msg = to_bytes("hello");
  const Bytes sig = signer->sign(msg);
  EXPECT_TRUE(verifier->verify(10, msg, sig));
}

TEST_P(KeyRingTest, RejectsWrongPrincipal) {
  KeyRing ring(GetParam(), 2);
  ring.add_principal(10);
  ring.add_principal(20);

  const auto verifier = ring.verifier();
  const Bytes msg = to_bytes("hello");
  const Bytes sig = ring.signer(10)->sign(msg);
  // Signature from 10 must not verify as 20 (id binding).
  EXPECT_FALSE(verifier->verify(20, msg, sig));
}

TEST_P(KeyRingTest, RejectsUnknownPrincipal) {
  KeyRing ring(GetParam(), 3);
  ring.add_principal(10);
  const auto verifier = ring.verifier();
  const Bytes sig = ring.signer(10)->sign(to_bytes("m"));
  EXPECT_FALSE(verifier->verify(99, to_bytes("m"), sig));
  EXPECT_FALSE(verifier->knows(99));
  EXPECT_TRUE(verifier->knows(10));
}

TEST_P(KeyRingTest, RejectsTamperedMessage) {
  KeyRing ring(GetParam(), 4);
  ring.add_principal(1);
  const auto verifier = ring.verifier();
  const Bytes sig = ring.signer(1)->sign(to_bytes("aaa"));
  EXPECT_FALSE(verifier->verify(1, to_bytes("aab"), sig));
}

TEST_P(KeyRingTest, RejectsTamperedSignature) {
  KeyRing ring(GetParam(), 5);
  ring.add_principal(1);
  const auto verifier = ring.verifier();
  Bytes sig = ring.signer(1)->sign(to_bytes("m"));
  sig[0] ^= 1;
  EXPECT_FALSE(verifier->verify(1, to_bytes("m"), sig));
}

TEST_P(KeyRingTest, DuplicatePrincipalThrows) {
  KeyRing ring(GetParam(), 6);
  ring.add_principal(1);
  EXPECT_THROW(ring.add_principal(1), std::invalid_argument);
}

TEST_P(KeyRingTest, UnknownSignerThrows) {
  KeyRing ring(GetParam(), 7);
  EXPECT_THROW((void)ring.signer(5), std::out_of_range);
}

TEST_P(KeyRingTest, SignerKnowsItsId) {
  KeyRing ring(GetParam(), 8);
  ring.add_principal(77);
  EXPECT_EQ(ring.signer(77)->id(), 77u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, KeyRingTest,
                         ::testing::Values(Scheme::Ed25519,
                                           Scheme::HmacShared),
                         [](const auto& info) {
                           return info.param == Scheme::Ed25519 ? "Ed25519"
                                                                : "HmacShared";
                         });

TEST(KeyRing, SchemesAreIndependent) {
  KeyRing ed(Scheme::Ed25519, 1);
  KeyRing mac(Scheme::HmacShared, 1);
  ed.add_principal(1);
  mac.add_principal(1);
  const Bytes msg = to_bytes("m");
  // An HMAC "signature" must not verify under the Ed25519 ring and
  // vice versa.
  EXPECT_FALSE(ed.verifier()->verify(1, msg, mac.signer(1)->sign(msg)));
  EXPECT_FALSE(mac.verifier()->verify(1, msg, ed.signer(1)->sign(msg)));
}

}  // namespace
}  // namespace sbft::crypto
