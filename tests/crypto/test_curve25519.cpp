#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/curve25519_internal.hpp"
#include "crypto/x25519.hpp"

namespace sbft::crypto {
namespace {

using fe::Gf;

[[nodiscard]] Gf random_element(Rng& rng) {
  Gf g{};
  for (auto& limb : g) {
    limb = static_cast<std::int64_t>(rng.next_u64() & 0xffff);
  }
  g[15] &= 0x7fff;
  return g;
}

TEST(Fe25519, PackUnpackRoundTrip) {
  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    const Gf a = random_element(rng);
    std::uint8_t packed[32];
    fe::pack(packed, a);
    Gf b;
    fe::unpack(b, packed);
    EXPECT_TRUE(fe::eq(a, b));
  }
}

TEST(Fe25519, AdditionCommutes) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const Gf a = random_element(rng);
    const Gf b = random_element(rng);
    Gf ab, ba;
    fe::add(ab, a, b);
    fe::add(ba, b, a);
    EXPECT_TRUE(fe::eq(ab, ba));
  }
}

TEST(Fe25519, MultiplicationCommutesAndAssociates) {
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const Gf a = random_element(rng);
    const Gf b = random_element(rng);
    const Gf c = random_element(rng);
    Gf ab, ba, ab_c, bc, a_bc;
    fe::mul(ab, a, b);
    fe::mul(ba, b, a);
    EXPECT_TRUE(fe::eq(ab, ba));
    fe::mul(ab_c, ab, c);
    fe::mul(bc, b, c);
    fe::mul(a_bc, a, bc);
    EXPECT_TRUE(fe::eq(ab_c, a_bc));
  }
}

TEST(Fe25519, Distributivity) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    const Gf a = random_element(rng);
    const Gf b = random_element(rng);
    const Gf c = random_element(rng);
    Gf b_plus_c, lhs, ab, ac, rhs;
    fe::add(b_plus_c, b, c);
    fe::mul(lhs, a, b_plus_c);
    fe::mul(ab, a, b);
    fe::mul(ac, a, c);
    fe::add(rhs, ab, ac);
    EXPECT_TRUE(fe::eq(lhs, rhs));
  }
}

TEST(Fe25519, InverseIsInverse) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) {
    Gf a = random_element(rng);
    if (fe::eq(a, fe::kZero)) continue;
    Gf a_inv, prod;
    fe::invert(a_inv, a);
    fe::mul(prod, a, a_inv);
    EXPECT_TRUE(fe::eq(prod, fe::kOne));
  }
}

TEST(Fe25519, SquareMatchesMul) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    const Gf a = random_element(rng);
    Gf sq, mul;
    fe::sq(sq, a);
    fe::mul(mul, a, a);
    EXPECT_TRUE(fe::eq(sq, mul));
  }
}

TEST(Fe25519, SubThenAddRestores) {
  Rng rng(12);
  const Gf a = random_element(rng);
  const Gf b = random_element(rng);
  Gf diff, restored;
  fe::sub(diff, a, b);
  fe::add(restored, diff, b);
  EXPECT_TRUE(fe::eq(restored, a));
}

TEST(Fe25519, SqrtMinusOneSquaresToMinusOne) {
  const auto& k = fe::constants();
  Gf sq, minus_one;
  fe::sq(sq, k.sqrt_m1);
  fe::sub(minus_one, fe::kZero, fe::kOne);
  EXPECT_TRUE(fe::eq(sq, minus_one));
}

TEST(Fe25519, CurveConstantD) {
  // d * 121666 == -121665.
  const auto& k = fe::constants();
  Gf c121666, c121665, lhs, rhs;
  fe::from_u64(c121666, 121666);
  fe::from_u64(c121665, 121665);
  fe::mul(lhs, k.d, c121666);
  fe::sub(rhs, fe::kZero, c121665);
  EXPECT_TRUE(fe::eq(lhs, rhs));
}

TEST(Fe25519, BasePointOnCurve) {
  // -x^2 + y^2 == 1 + d x^2 y^2.
  const auto& k = fe::constants();
  Gf x2, y2, lhs, dx2y2, rhs;
  fe::sq(x2, k.base_x);
  fe::sq(y2, k.base_y);
  fe::sub(lhs, y2, x2);
  fe::mul(dx2y2, x2, y2);
  fe::mul(dx2y2, dx2y2, k.d);
  fe::add(rhs, fe::kOne, dx2y2);
  EXPECT_TRUE(fe::eq(lhs, rhs));
}

TEST(Fe25519, BasePointMatchesRfc8032) {
  // The standard base point y = 4/5 packs to 5866...66 with sign bit 0 and
  // x ending in ...d51a (checked via the full point encoding).
  const auto& k = fe::constants();
  std::uint8_t y_packed[32];
  fe::pack(y_packed, k.base_y);
  EXPECT_EQ(to_hex(ByteView{y_packed, 32}),
            "5866666666666666666666666666666666666666666666666666666666666666");
  std::uint8_t x_packed[32];
  fe::pack(x_packed, k.base_x);
  EXPECT_EQ(to_hex(ByteView{x_packed, 32}),
            "1ad5258f602d56c9b2a7259560c72c695cdcd6fd31e2a4c0fe536ecdd3366921");
}

TEST(Fe25519, PointUnpackRejectsNonCurvePoint) {
  // y = 2 gives x^2 = (y^2-1)/(dy^2+1) which is a non-residue for this y.
  std::uint8_t encoded[32] = {};
  encoded[0] = 2;
  fe::Point p;
  // Try a handful of y values; at least one must be rejected (roughly half
  // of all field elements are not on the curve).
  int rejected = 0;
  for (std::uint8_t y = 2; y < 12; ++y) {
    encoded[0] = y;
    if (!fe::point_unpack_neg(p, encoded)) ++rejected;
  }
  EXPECT_GT(rejected, 0);
}

TEST(X25519, Rfc7748AliceBob) {
  const auto alice_priv_v = from_hex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const auto bob_priv_v = from_hex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  ASSERT_TRUE(alice_priv_v && bob_priv_v);
  Key32 alice_priv, bob_priv;
  std::copy(alice_priv_v->begin(), alice_priv_v->end(), alice_priv.begin());
  std::copy(bob_priv_v->begin(), bob_priv_v->end(), bob_priv.begin());

  const Key32 alice_pub = x25519_base(alice_priv);
  EXPECT_EQ(to_hex(ByteView{alice_pub.data(), alice_pub.size()}),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");

  const Key32 bob_pub = x25519_base(bob_priv);
  EXPECT_EQ(to_hex(ByteView{bob_pub.data(), bob_pub.size()}),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  const Key32 shared_a = x25519(alice_priv, bob_pub);
  const Key32 shared_b = x25519(bob_priv, alice_pub);
  EXPECT_EQ(shared_a, shared_b);
  EXPECT_EQ(to_hex(ByteView{shared_a.data(), shared_a.size()}),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, SharedSecretAgreementRandomKeys) {
  Rng rng(404);
  for (int i = 0; i < 5; ++i) {
    const Key32 a = x25519_keygen(rng);
    const Key32 b = x25519_keygen(rng);
    const Key32 shared_ab = x25519(a, x25519_base(b));
    const Key32 shared_ba = x25519(b, x25519_base(a));
    EXPECT_EQ(shared_ab, shared_ba);
  }
}

TEST(X25519, DifferentKeysDifferentSecrets) {
  Rng rng(405);
  const Key32 a = x25519_keygen(rng);
  const Key32 b = x25519_keygen(rng);
  const Key32 c = x25519_keygen(rng);
  EXPECT_NE(x25519(a, x25519_base(c)), x25519(b, x25519_base(c)));
}

}  // namespace
}  // namespace sbft::crypto
