#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"

namespace sbft::crypto {
namespace {

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = to_bytes("Hi There");
  EXPECT_EQ(hmac_sha256(key, data).hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const Bytes key = to_bytes("Jefe");
  const Bytes data = to_bytes("what do ya want for nothing?");
  EXPECT_EQ(hmac_sha256(key, data).hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, LongKeyIsHashed) {
  // Keys longer than the block size are hashed first; equivalent key gives
  // the same MAC.
  const Bytes long_key(100, 0xaa);
  const Bytes data = to_bytes("payload");
  const Digest direct = hmac_sha256(long_key, data);
  const Digest hashed_key = sha256(long_key);
  const Digest via_hash = hmac_sha256(hashed_key.view(), data);
  EXPECT_EQ(direct, via_hash);
}

TEST(HmacSha256, KeySensitivity) {
  const Bytes data = to_bytes("same message");
  EXPECT_NE(hmac_sha256(to_bytes("key1"), data),
            hmac_sha256(to_bytes("key2"), data));
}

TEST(HmacSha256, MessageSensitivity) {
  const Bytes key = to_bytes("key");
  EXPECT_NE(hmac_sha256(key, to_bytes("a")), hmac_sha256(key, to_bytes("b")));
}

TEST(HmacSha256, ConcatMatchesJoined) {
  const Bytes key = to_bytes("k");
  const Bytes a = to_bytes("part one |");
  const Bytes b = to_bytes("| part two");
  Bytes joined = a;
  append(joined, b);
  EXPECT_EQ(hmac_sha256_concat(key, a, b), hmac_sha256(key, joined));
}

TEST(HmacSha256, VerifyAcceptsAndRejects) {
  const Bytes key = to_bytes("secret");
  const Bytes data = to_bytes("message");
  const Digest mac = hmac_sha256(key, data);
  EXPECT_TRUE(hmac_verify(key, data, mac.view()));

  Digest bad = mac;
  bad.bytes[0] ^= 1;
  EXPECT_FALSE(hmac_verify(key, data, bad.view()));
  EXPECT_FALSE(hmac_verify(key, to_bytes("other"), mac.view()));
  EXPECT_FALSE(hmac_verify(to_bytes("wrong"), data, mac.view()));
}

TEST(DeriveKey, LabelSeparation) {
  const Bytes master = to_bytes("master-key-material");
  const Key32 k1 = derive_key(master, "label-a");
  const Key32 k2 = derive_key(master, "label-b");
  EXPECT_NE(k1, k2);
}

TEST(DeriveKey, ContextSeparation) {
  const Bytes master = to_bytes("master");
  const Bytes ctx1 = {1};
  const Bytes ctx2 = {2};
  EXPECT_NE(derive_key(master, "l", ctx1), derive_key(master, "l", ctx2));
}

TEST(DeriveKey, Deterministic) {
  const Bytes master = to_bytes("master");
  EXPECT_EQ(derive_key(master, "l"), derive_key(master, "l"));
}

}  // namespace
}  // namespace sbft::crypto
