#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/aead.hpp"

namespace sbft::crypto {
namespace {

[[nodiscard]] Key32 test_key(std::uint8_t fill = 0) {
  Key32 k{};
  for (std::size_t i = 0; i < k.size(); ++i) {
    k[i] = static_cast<std::uint8_t>(i + fill);
  }
  return k;
}

TEST(ChaCha20, Rfc8439KeystreamBlock) {
  // RFC 8439 §2.3.2: key 00..1f, nonce 00:00:00:09:00:00:00:4a:00:00:00:00,
  // counter 1.
  const Key32 key = test_key();
  Nonce12 nonce{};
  nonce[3] = 0x09;
  nonce[7] = 0x4a;

  const Bytes zeros(64, 0);
  Bytes keystream(64);
  chacha20_xor(key, nonce, 1, zeros, keystream.data());
  EXPECT_EQ(to_hex(keystream),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(Poly1305, Rfc8439TagVector) {
  // RFC 8439 §2.5.2.
  const auto key_bytes = from_hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  ASSERT_TRUE(key_bytes.has_value());
  Key32 key;
  std::copy(key_bytes->begin(), key_bytes->end(), key.begin());
  const Bytes msg = to_bytes("Cryptographic Forum Research Group");
  const Tag16 tag = poly1305(key, msg);
  EXPECT_EQ(to_hex(ByteView{tag.data(), tag.size()}),
            "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Aead, RoundTrip) {
  const Key32 key = test_key(7);
  const Nonce12 nonce = make_nonce(1, 42);
  const Bytes aad = to_bytes("header");
  const Bytes plaintext = to_bytes("attack at dawn");

  const Bytes sealed = aead_seal(key, nonce, aad, plaintext);
  EXPECT_EQ(sealed.size(), plaintext.size() + 16);

  const auto opened = aead_open(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST(Aead, EmptyPlaintext) {
  const Key32 key = test_key();
  const Nonce12 nonce = make_nonce(0, 0);
  const Bytes sealed = aead_seal(key, nonce, {}, {});
  EXPECT_EQ(sealed.size(), 16u);
  const auto opened = aead_open(key, nonce, {}, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(Aead, RejectsTamperedCiphertext) {
  const Key32 key = test_key();
  const Nonce12 nonce = make_nonce(1, 1);
  Bytes sealed = aead_seal(key, nonce, {}, to_bytes("secret"));
  sealed[0] ^= 1;
  EXPECT_FALSE(aead_open(key, nonce, {}, sealed).has_value());
}

TEST(Aead, RejectsTamperedTag) {
  const Key32 key = test_key();
  const Nonce12 nonce = make_nonce(1, 1);
  Bytes sealed = aead_seal(key, nonce, {}, to_bytes("secret"));
  sealed.back() ^= 1;
  EXPECT_FALSE(aead_open(key, nonce, {}, sealed).has_value());
}

TEST(Aead, RejectsWrongAad) {
  const Key32 key = test_key();
  const Nonce12 nonce = make_nonce(1, 1);
  const Bytes sealed = aead_seal(key, nonce, to_bytes("aad1"), to_bytes("x"));
  EXPECT_FALSE(aead_open(key, nonce, to_bytes("aad2"), sealed).has_value());
  EXPECT_TRUE(aead_open(key, nonce, to_bytes("aad1"), sealed).has_value());
}

TEST(Aead, RejectsWrongNonce) {
  const Key32 key = test_key();
  const Bytes sealed = aead_seal(key, make_nonce(1, 1), {}, to_bytes("x"));
  EXPECT_FALSE(aead_open(key, make_nonce(1, 2), {}, sealed).has_value());
}

TEST(Aead, RejectsWrongKey) {
  const Bytes sealed = aead_seal(test_key(1), make_nonce(1, 1), {},
                                 to_bytes("x"));
  EXPECT_FALSE(aead_open(test_key(2), make_nonce(1, 1), {}, sealed).has_value());
}

TEST(Aead, RejectsTruncated) {
  const Key32 key = test_key();
  const Bytes sealed = aead_seal(key, make_nonce(1, 1), {}, to_bytes("x"));
  const ByteView truncated{sealed.data(), 10};
  EXPECT_FALSE(aead_open(key, make_nonce(1, 1), {}, truncated).has_value());
}

TEST(Aead, RandomizedRoundTrips) {
  Rng rng(1234);
  const Key32 key = test_key(3);
  for (int i = 0; i < 50; ++i) {
    const Bytes plaintext = rng.bytes(rng.below(500));
    const Bytes aad = rng.bytes(rng.below(40));
    const Nonce12 nonce = make_nonce(2, static_cast<std::uint64_t>(i));
    const Bytes sealed = aead_seal(key, nonce, aad, plaintext);
    const auto opened = aead_open(key, nonce, aad, sealed);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, plaintext);
  }
}

TEST(Nonce, ChannelAndSeqLayout) {
  const Nonce12 n = make_nonce(0x01020304, 0x0506070809aabbccULL);
  // Low 8 bytes = seq (LE), high 4 = channel (LE).
  EXPECT_EQ(n[8], 0x04);
  EXPECT_EQ(n[11], 0x01);
  EXPECT_NE(make_nonce(1, 5), make_nonce(2, 5));
  EXPECT_NE(make_nonce(1, 5), make_nonce(1, 6));
}

}  // namespace
}  // namespace sbft::crypto
