#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"

namespace sbft::crypto {
namespace {

TEST(Sha256, EmptyVector) {
  EXPECT_EQ(sha256({}).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
  EXPECT_EQ(sha256(to_bytes("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockVector) {
  // FIPS 180-4 two-block message test.
  const auto msg =
      to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(sha256(msg).hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, StreamingMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<std::uint8_t>(i));
  const Digest expected = sha256(data);

  // Feed in awkward chunk sizes crossing block boundaries.
  for (const std::size_t chunk : {1u, 3u, 63u, 64u, 65u, 127u, 129u}) {
    Sha256 h;
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t take = std::min(chunk, data.size() - off);
      h.update(ByteView{data.data() + off, take});
      off += take;
    }
    EXPECT_EQ(h.finalize(), expected) << "chunk=" << chunk;
  }
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes exercise all padding paths.
  for (const std::size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    Bytes data(n, 0x61);
    Sha256 h;
    h.update(data);
    EXPECT_EQ(h.finalize(), sha256(data)) << "n=" << n;
  }
}

TEST(Sha256, ConcatHelper) {
  const Bytes a = to_bytes("hello ");
  const Bytes b = to_bytes("world");
  Bytes joined = a;
  append(joined, b);
  EXPECT_EQ(sha256_concat(a, b), sha256(joined));
}

TEST(Sha256, ResetReuses) {
  Sha256 h;
  h.update(to_bytes("abc"));
  (void)h.finalize();
  h.reset();
  h.update(to_bytes("abc"));
  EXPECT_EQ(h.finalize().hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, DifferentInputsDiffer) {
  EXPECT_NE(sha256(to_bytes("a")), sha256(to_bytes("b")));
  EXPECT_NE(sha256(to_bytes("")), sha256(Bytes{0}));
}

TEST(Sha512, EmptyVector) {
  const Digest64 d = sha512({});
  EXPECT_EQ(to_hex(ByteView{d.data(), d.size()}),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, AbcVector) {
  const Digest64 d = sha512(to_bytes("abc"));
  EXPECT_EQ(to_hex(ByteView{d.data(), d.size()}),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, StreamingMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 3000; ++i) data.push_back(static_cast<std::uint8_t>(i));
  const Digest64 expected = sha512(data);
  for (const std::size_t chunk : {1u, 7u, 127u, 128u, 129u, 255u}) {
    Sha512 h;
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t take = std::min(chunk, data.size() - off);
      h.update(ByteView{data.data() + off, take});
      off += take;
    }
    EXPECT_EQ(h.finalize(), expected) << "chunk=" << chunk;
  }
}

TEST(Sha512, PaddingBoundaries) {
  for (const std::size_t n : {111u, 112u, 127u, 128u, 129u, 240u}) {
    Bytes data(n, 0x62);
    Sha512 h;
    h.update(data);
    EXPECT_EQ(h.finalize(), sha512(data)) << "n=" << n;
  }
}

}  // namespace
}  // namespace sbft::crypto
