#include <gtest/gtest.h>

#include "common/serde.hpp"
#include "tee/attestation.hpp"
#include "tee/cost_model.hpp"
#include "tee/enclave_host.hpp"
#include "tee/monotonic_counter.hpp"
#include "tee/protected_fs.hpp"
#include "tee/sealing.hpp"

namespace sbft::tee {
namespace {

/// Minimal enclave echoing its input, for host-layer tests.
class EchoEnclave final : public Enclave {
 public:
  [[nodiscard]] Digest measurement() const override {
    Digest d;
    d.bytes[0] = 0xec;
    return d;
  }
  [[nodiscard]] Bytes ecall(std::uint32_t fn, ByteView args) override {
    Bytes out;
    out.push_back(static_cast<std::uint8_t>(fn));
    append(out, args);
    return out;
  }
};

TEST(CostModel, SimulationModeIsFree) {
  const CostModel sim = CostModel::simulation();
  EXPECT_EQ(sim.crossing_cost(10'000, 10'000), 0u);
}

TEST(CostModel, SgxChargesTransitionAndCopy) {
  const CostModel sgx = CostModel::sgx();
  const Micros small = sgx.crossing_cost(16, 16);
  const Micros large = sgx.crossing_cost(64 * 1024, 0);
  EXPECT_GT(small, 0u);
  EXPECT_GT(large, small + 40);  // copying 64 KiB dominates
}

TEST(EnclaveHost, EcallRunsAndRecordsStats) {
  EnclaveHost host(std::make_unique<EchoEnclave>(), CostModel::simulation(),
                   /*charge_real_time=*/false);
  const Bytes args = to_bytes("hello");
  const Bytes result =
      host.ecall(static_cast<std::uint32_t>(EcallFn::DeliverMessage), args);
  ASSERT_EQ(result.size(), args.size() + 1);
  EXPECT_EQ(result[0], static_cast<std::uint8_t>(EcallFn::DeliverMessage));

  const auto stats =
      host.stats(static_cast<std::uint32_t>(EcallFn::DeliverMessage));
  EXPECT_EQ(stats.calls, 1u);
  EXPECT_EQ(stats.bytes_in, args.size());
  EXPECT_EQ(stats.bytes_out, result.size());
}

TEST(EnclaveHost, VirtualChargeAddsCrossingCost) {
  EnclaveHost host(std::make_unique<EchoEnclave>(), CostModel::sgx(),
                   /*charge_real_time=*/false);
  (void)host.ecall(1, Bytes(1024, 0));
  const auto stats = host.stats(1);
  // At least the two transitions (2 * 2.3 us) must be accounted.
  EXPECT_GE(stats.total_us, 4u);
}

TEST(EnclaveHost, TotalStatsAggregate) {
  EnclaveHost host(std::make_unique<EchoEnclave>(), CostModel::simulation(),
                   false);
  (void)host.ecall(1, {});
  (void)host.ecall(2, {});
  (void)host.ecall(2, {});
  EXPECT_EQ(host.total_stats().calls, 3u);
  host.reset_stats();
  EXPECT_EQ(host.total_stats().calls, 0u);
}

TEST(Attestation, QuoteVerifies) {
  const AttestationService service(42);
  Digest measurement;
  measurement.bytes[0] = 1;
  const Quote quote = service.issue(measurement, to_bytes("report"));
  EXPECT_TRUE(verify_quote(service.root_public_key(), quote));
  EXPECT_TRUE(verify_quote(service.root_public_key(), quote, measurement));
}

TEST(Attestation, RejectsWrongMeasurement) {
  const AttestationService service(42);
  Digest m1, m2;
  m1.bytes[0] = 1;
  m2.bytes[0] = 2;
  const Quote quote = service.issue(m1, to_bytes("r"));
  EXPECT_FALSE(verify_quote(service.root_public_key(), quote, m2));
}

TEST(Attestation, RejectsTamperedReportData) {
  const AttestationService service(42);
  Digest m;
  Quote quote = service.issue(m, to_bytes("data"));
  quote.report_data.push_back(0x42);
  EXPECT_FALSE(verify_quote(service.root_public_key(), quote));
}

TEST(Attestation, RejectsForeignRoot) {
  const AttestationService real(42);
  const AttestationService fake(43);
  Digest m;
  const Quote quote = fake.issue(m, to_bytes("d"));
  EXPECT_FALSE(verify_quote(real.root_public_key(), quote));
}

TEST(Attestation, QuoteSerializationRoundTrip) {
  const AttestationService service(7);
  Digest m;
  m.bytes[3] = 9;
  const Quote quote = service.issue(m, to_bytes("rd"));
  const auto decoded = Quote::deserialize(quote.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->measurement, m);
  EXPECT_EQ(decoded->report_data, to_bytes("rd"));
  EXPECT_TRUE(verify_quote(service.root_public_key(), *decoded));
}

TEST(Sealing, SealUnsealRoundTrip) {
  const SealingService platform(1);
  Digest m;
  m.bytes[0] = 5;
  const auto key = platform.sealing_key(m);
  const Bytes sealed = seal_data(key, 1, to_bytes("aad"), to_bytes("secret"));
  const auto opened = unseal_data(key, 1, to_bytes("aad"), sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, to_bytes("secret"));
}

TEST(Sealing, DifferentEnclaveCannotUnseal) {
  const SealingService platform(1);
  Digest m1, m2;
  m1.bytes[0] = 1;
  m2.bytes[0] = 2;
  const Bytes sealed =
      seal_data(platform.sealing_key(m1), 1, {}, to_bytes("secret"));
  EXPECT_FALSE(unseal_data(platform.sealing_key(m2), 1, {}, sealed).has_value());
}

TEST(Sealing, DifferentPlatformCannotUnseal) {
  const SealingService p1(1), p2(2);
  Digest m;
  const Bytes sealed = seal_data(p1.sealing_key(m), 1, {}, to_bytes("s"));
  EXPECT_FALSE(unseal_data(p2.sealing_key(m), 1, {}, sealed).has_value());
}

TEST(MonotonicCounter, IncrementsMonotonically) {
  MonotonicCounterService counters;
  EXPECT_EQ(counters.read(1), 0u);
  EXPECT_EQ(counters.increment(1), 1u);
  EXPECT_EQ(counters.increment(1), 2u);
  EXPECT_EQ(counters.read(1), 2u);
  EXPECT_EQ(counters.read(2), 0u);  // independent counters
}

TEST(MonotonicCounter, CorruptSetModelsRollback) {
  MonotonicCounterService counters;
  (void)counters.increment(1);
  (void)counters.increment(1);
  counters.corrupt_set(1, 0);
  EXPECT_EQ(counters.increment(1), 1u);  // counter was rolled back
}

TEST(ProtectedFs, WriteReadRoundTrip) {
  MemoryBlockStore store;
  crypto::Key32 key{};
  key[0] = 1;
  ProtectedFile file(key, store);
  EXPECT_EQ(file.append(to_bytes("block-0")), 0u);
  EXPECT_EQ(file.append(to_bytes("block-1")), 1u);

  const auto records = file.read_all();
  ASSERT_TRUE(records.has_value());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0], to_bytes("block-0"));
  EXPECT_EQ((*records)[1], to_bytes("block-1"));
}

TEST(ProtectedFs, DetectsTamperedBlock) {
  MemoryBlockStore store;
  crypto::Key32 key{};
  ProtectedFile file(key, store);
  (void)file.append(to_bytes("block-0"));
  store.corrupt(0, 3);
  EXPECT_FALSE(file.read_all().has_value());
}

TEST(ProtectedFs, DetectsTruncation) {
  MemoryBlockStore store;
  crypto::Key32 key{};
  ProtectedFile file(key, store);
  (void)file.append(to_bytes("a"));
  (void)file.append(to_bytes("b"));
  store.truncate(1);
  EXPECT_FALSE(file.read_all().has_value());
}

TEST(ProtectedFs, CiphertextHidesPlaintext) {
  MemoryBlockStore store;
  crypto::Key32 key{};
  ProtectedFile file(key, store);
  const Bytes secret = to_bytes("super-secret-transaction-data");
  (void)file.append(secret);
  const auto stored = store.read(0);
  ASSERT_TRUE(stored.has_value());
  // The stored bytes must not contain the plaintext.
  const std::string haystack(stored->begin(), stored->end());
  EXPECT_EQ(haystack.find("super-secret"), std::string::npos);
}

}  // namespace
}  // namespace sbft::tee
