#include <gtest/gtest.h>

#include "crypto/keyring.hpp"
#include "splitbft/messages.hpp"

namespace sbft::splitbft {
namespace {

[[nodiscard]] SplitPrePrepare sample_pp() {
  SplitPrePrepare pp;
  pp.view = 2;
  pp.seq = 9;
  pp.batch = to_bytes("serialized batch");
  pp.batch_digest.bytes[0] = 0xaa;
  pp.sender = 1;
  pp.has_batch = true;
  return pp;
}

TEST(SplitMessages, PrePrepareRoundTrip) {
  const SplitPrePrepare pp = sample_pp();
  const auto decoded = SplitPrePrepare::deserialize(pp.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->view, 2u);
  EXPECT_EQ(decoded->seq, 9u);
  EXPECT_EQ(decoded->batch, pp.batch);
  EXPECT_TRUE(decoded->has_batch);
}

TEST(SplitMessages, StrippingPreservesHeader) {
  const SplitPrePrepare pp = sample_pp();
  const SplitPrePrepare stripped = pp.stripped();
  EXPECT_FALSE(stripped.has_batch);
  EXPECT_TRUE(stripped.batch.empty());
  EXPECT_EQ(stripped.header_bytes(), pp.header_bytes());
}

TEST(SplitMessages, HeaderSignatureSurvivesStripping) {
  crypto::KeyRing ring(crypto::Scheme::HmacShared, 3);
  ring.add_principal(100);
  const auto signer = ring.signer(100);
  const auto verifier = ring.verifier();

  const SplitPrePrepare pp = sample_pp();
  const net::Envelope env = make_pre_prepare_envelope(pp, *signer, 0);
  EXPECT_TRUE(verify_pre_prepare_envelope(env, pp, *verifier, 100));

  // The untrusted broker strips the batch; the signature stays valid
  // because it covers only the header.
  net::Envelope stripped_env = env;
  const SplitPrePrepare stripped = pp.stripped();
  stripped_env.payload = stripped.serialize();
  EXPECT_TRUE(
      verify_pre_prepare_envelope(stripped_env, stripped, *verifier, 100));

  // Tampering with the digest breaks it.
  SplitPrePrepare forged = stripped;
  forged.batch_digest.bytes[0] ^= 1;
  EXPECT_FALSE(
      verify_pre_prepare_envelope(stripped_env, forged, *verifier, 100));
}

TEST(SplitMessages, AttestRoundTrips) {
  AttestRequest req;
  req.client = 1001;
  req.nonce = to_bytes("nonce123");
  const auto dreq = AttestRequest::deserialize(req.serialize());
  ASSERT_TRUE(dreq.has_value());
  EXPECT_EQ(dreq->nonce, req.nonce);

  AttestReport report;
  report.replica = 2;
  report.compartment = Compartment::Execution;
  report.quote = to_bytes("quote");
  const auto dreport = AttestReport::deserialize(report.serialize());
  ASSERT_TRUE(dreport.has_value());
  EXPECT_EQ(dreport->compartment, Compartment::Execution);

  ReportData rd;
  rd.signing_principal = 0x0207;
  rd.dh_public[0] = 9;
  rd.nonce = to_bytes("n");
  const auto drd = ReportData::deserialize(rd.serialize());
  ASSERT_TRUE(drd.has_value());
  EXPECT_EQ(drd->signing_principal, 0x0207u);
  EXPECT_EQ(drd->dh_public, rd.dh_public);
}

TEST(SplitMessages, SessionRoundTrips) {
  SessionInit init;
  init.client = 1001;
  init.client_dh_public[3] = 7;
  init.sealed_session_key = to_bytes("sealed");
  init.auth = to_bytes("mac");
  const auto dinit = SessionInit::deserialize(init.serialize());
  ASSERT_TRUE(dinit.has_value());
  EXPECT_EQ(dinit->sealed_session_key, to_bytes("sealed"));

  SessionAck ack;
  ack.client = 1001;
  ack.replica = 3;
  ack.auth = to_bytes("mac");
  const auto dack = SessionAck::deserialize(ack.serialize());
  ASSERT_TRUE(dack.has_value());
  EXPECT_EQ(dack->replica, 3u);
}

TEST(SplitMessages, OutboxRoundTrip) {
  std::vector<net::Envelope> envs(3);
  envs[0].type = 1;
  envs[1].payload = to_bytes("x");
  envs[2].dst = 42;
  const auto decoded = decode_outbox(encode_outbox(envs));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[1].payload, to_bytes("x"));
  EXPECT_EQ((*decoded)[2].dst, 42u);
}

TEST(SplitMessages, OutboxEmpty) {
  const auto decoded = decode_outbox(encode_outbox({}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(SplitMessages, OutboxRejectsGarbage) {
  EXPECT_FALSE(decode_outbox(to_bytes("zz")).has_value());
}

}  // namespace
}  // namespace sbft::splitbft
