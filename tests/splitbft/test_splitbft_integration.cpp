// End-to-end SplitBFT cluster tests on the deterministic simulator:
// session establishment, confidential execution, checkpoints, view changes,
// crash tolerance, state transfer.
#include <gtest/gtest.h>

#include "apps/counter_app.hpp"
#include "apps/kv_store.hpp"
#include "apps/ledger.hpp"
#include "common/serde.hpp"
#include "runtime/splitbft_cluster.hpp"

namespace sbft::runtime {
namespace {

using apps::CounterApp;
using apps::KvStore;

[[nodiscard]] SplitClusterOptions small_config(std::uint64_t seed) {
  SplitClusterOptions options;
  options.seed = seed;
  options.config.n = 4;
  options.config.f = 1;
  options.config.checkpoint_interval = 10;
  options.config.watermark_window = 40;
  options.config.batch_max = 1;
  return options;
}

[[nodiscard]] splitbft::ExecAppFactory counter_factory() {
  return splitbft::plain_app([] { return std::make_unique<CounterApp>(); });
}

[[nodiscard]] std::uint64_t counter_value(const Bytes& reply) {
  Reader r(reply);
  const std::uint64_t v = r.u64();
  EXPECT_TRUE(r.boolean());
  EXPECT_TRUE(r.done());
  return v;
}

TEST(SplitbftIntegration, SessionEstablishment) {
  SplitbftCluster cluster(small_config(1), counter_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());
  EXPECT_EQ(cluster.client(kFirstClientId).client().ack_count(), 4u);
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_TRUE(cluster.replica(r).exec().has_session(kFirstClientId));
  }
}

TEST(SplitbftIntegration, SingleRequestExecutesEverywhere) {
  SplitbftCluster cluster(small_config(2), counter_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  const auto result =
      cluster.execute(kFirstClientId, CounterApp::encode_add(7));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(counter_value(*result), 7u);

  cluster.harness().run_for(1'000'000);
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.replica(r).exec().last_executed(), 1u) << "r" << r;
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SplitbftIntegration, SequentialRequestsLinearize) {
  SplitbftCluster cluster(small_config(3), counter_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  std::uint64_t expected = 0;
  for (int i = 1; i <= 15; ++i) {
    expected += static_cast<std::uint64_t>(i);
    const auto result = cluster.execute(
        kFirstClientId, CounterApp::encode_add(static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(result.has_value()) << "request " << i;
    EXPECT_EQ(counter_value(*result), expected);
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SplitbftIntegration, KvStoreEndToEnd) {
  SplitbftCluster cluster(
      small_config(4),
      splitbft::plain_app([] { return std::make_unique<KvStore>(); }));
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  auto put = cluster.execute(
      kFirstClientId, apps::kv::encode_put(to_bytes("key"), to_bytes("val")));
  ASSERT_TRUE(put.has_value());
  EXPECT_EQ(apps::kv::decode_reply(*put)->status, apps::KvStatus::Ok);

  auto get =
      cluster.execute(kFirstClientId, apps::kv::encode_get(to_bytes("key")));
  ASSERT_TRUE(get.has_value());
  auto reply = apps::kv::decode_reply(*get);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->value, to_bytes("val"));
}

TEST(SplitbftIntegration, MultipleClients) {
  auto options = small_config(5);
  options.config.batch_max = 4;
  SplitbftCluster cluster(options, counter_factory());
  for (ClientId c = kFirstClientId; c < kFirstClientId + 4; ++c) {
    cluster.add_client(c);
  }
  ASSERT_TRUE(cluster.setup_sessions());

  for (ClientId c = kFirstClientId; c < kFirstClientId + 4; ++c) {
    cluster.harness().inject(cluster.client(c).client().submit(
        CounterApp::encode_add(1), cluster.harness().now()));
  }
  const bool done = cluster.harness().run_until(
      [&] {
        for (ClientId c = kFirstClientId; c < kFirstClientId + 4; ++c) {
          if (cluster.client(c).results().empty()) return false;
        }
        return true;
      },
      30'000'000);
  EXPECT_TRUE(done);
  EXPECT_TRUE(cluster.check_agreement());

  cluster.harness().run_for(2'000'000);
  const auto& app =
      dynamic_cast<const CounterApp&>(cluster.replica(0).exec().app());
  EXPECT_EQ(app.value(), 4u);
}

TEST(SplitbftIntegration, ConfidentialityFromEnvironment) {
  // The secret payload must never appear in any byte the untrusted
  // environment (network + brokers) sees.
  const std::string secret = "TOP-SECRET-PAYLOAD-0xDEADBEEF";
  std::vector<Bytes> observed;

  auto options = small_config(6);
  SplitbftCluster cluster(
      options,
      splitbft::plain_app([] { return std::make_unique<KvStore>(); }));
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  // Record every envelope the network carries from now on.
  cluster.harness().network().set_interceptor(
      [&observed](const net::Envelope& env)
          -> std::optional<
              std::vector<std::pair<net::Envelope, Micros>>> {
        observed.push_back(env.wire().to_bytes());
        return std::nullopt;  // deliver normally
      });

  const auto result = cluster.execute(
      kFirstClientId,
      apps::kv::encode_put(to_bytes("account"), to_bytes(secret)));
  ASSERT_TRUE(result.has_value());

  ASSERT_FALSE(observed.empty());
  for (const auto& bytes : observed) {
    const std::string haystack(bytes.begin(), bytes.end());
    EXPECT_EQ(haystack.find(secret), std::string::npos)
        << "confidential payload leaked into the untrusted environment";
  }

  // ...and the client still got the right data back.
  const auto get = cluster.execute(kFirstClientId,
                                   apps::kv::encode_get(to_bytes("account")));
  ASSERT_TRUE(get.has_value());
  EXPECT_EQ(apps::kv::decode_reply(*get)->value, to_bytes(secret));
}

TEST(SplitbftIntegration, CheckpointsAdvanceAndGc) {
  auto options = small_config(7);
  options.config.checkpoint_interval = 5;
  SplitbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value());
  }
  cluster.harness().run_for(2'000'000);
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_GE(cluster.replica(r).exec().last_stable(), 5u) << "r" << r;
    EXPECT_GE(cluster.replica(r).prep().last_stable(), 5u) << "r" << r;
    EXPECT_GE(cluster.replica(r).conf().last_stable(), 5u) << "r" << r;
  }
}

TEST(SplitbftIntegration, ToleratesCrashedBackup) {
  SplitbftCluster cluster(small_config(8), counter_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());
  cluster.crash_replica(2);

  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(
        cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value())
        << "request " << i;
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SplitbftIntegration, ViewChangeOnCrashedPrimary) {
  SplitbftCluster cluster(small_config(9), counter_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  ASSERT_TRUE(
      cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value());
  cluster.crash_replica(0);  // primary of view 0

  const auto result =
      cluster.execute(kFirstClientId, CounterApp::encode_add(2), 60'000'000);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(counter_value(*result), 3u);
  for (ReplicaId r = 1; r < 4; ++r) {
    EXPECT_GE(cluster.replica(r).conf().view(), 1u) << "r" << r;
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SplitbftIntegration, RecoveredReplicaCatchesUpViaStateTransfer) {
  auto options = small_config(10);
  options.config.checkpoint_interval = 5;
  SplitbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  cluster.crash_replica(3);
  for (int i = 0; i < 11; ++i) {
    ASSERT_TRUE(
        cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value());
  }
  cluster.restore_replica(3);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(
        cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value());
  }
  cluster.harness().run_for(5'000'000);
  EXPECT_GE(cluster.replica(3).exec().last_executed(), 10u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SplitbftIntegration, SurvivesLossyNetwork) {
  auto options = small_config(11);
  options.link_params.drop_prob = 0.04;
  SplitbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions(60'000'000));

  std::uint64_t expected = 0;
  for (int i = 1; i <= 8; ++i) {
    expected += 1;
    const auto result =
        cluster.execute(kFirstClientId, CounterApp::encode_add(1), 60'000'000);
    ASSERT_TRUE(result.has_value()) << "request " << i;
    EXPECT_EQ(counter_value(*result), expected);
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SplitbftIntegration, LedgerAppPersistsEncryptedBlocks) {
  auto options = small_config(12);
  options.config.batch_max = 1;
  SplitbftCluster cluster(
      options, [](splitbft::PersistHook persist) {
        return std::make_unique<apps::Ledger>(
            2, [persist](ByteView block) { persist(block); });
      });
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        cluster.execute(kFirstClientId, to_bytes("tx-" + std::to_string(i)))
            .has_value());
  }
  cluster.harness().run_for(2'000'000);

  // Two blocks persisted per replica, ciphertext only.
  for (ReplicaId r = 0; r < 4; ++r) {
    auto& store = cluster.replica(r).block_store();
    EXPECT_EQ(store.size(), 2u) << "r" << r;
    const auto block0 = store.read(0);
    ASSERT_TRUE(block0.has_value());
    const std::string haystack(block0->begin(), block0->end());
    EXPECT_EQ(haystack.find("tx-0"), std::string::npos)
        << "ledger block stored in plaintext";
  }
}

class SplitSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitSeedSweep, AgreementHoldsUnderRandomSchedules) {
  auto options = small_config(GetParam());
  options.link_params.drop_prob = 0.02;
  options.config.batch_max = 3;
  SplitbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);
  cluster.add_client(kFirstClientId + 1);
  ASSERT_TRUE(cluster.setup_sessions(60'000'000));

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster
                    .execute(kFirstClientId + (i % 2),
                             CounterApp::encode_add(1), 60'000'000)
                    .has_value());
  }
  EXPECT_TRUE(cluster.check_agreement());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitSeedSweep,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

TEST(SplitbftIntegration, BrokerIngressFilterDropsForgedEnvelopes) {
  SplitbftCluster cluster(small_config(31), counter_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());
  ASSERT_TRUE(
      cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value());

  // Opt in to the DoS defense on replica 0's (untrusted) broker.
  auto& broker = cluster.replica(0).broker();
  EXPECT_EQ(broker.ingress_cache(), nullptr);  // off by default
  broker.enable_ingress_filter(cluster.keyring().verifier());
  ASSERT_NE(broker.ingress_cache(), nullptr);

  // Forge a Prepare claiming to come from replica 1's Preparation enclave,
  // addressed at replica 0's Confirmation enclave, with a garbage
  // signature. The broker pre-verifies on public material and drops it
  // before paying an ecall.
  const net::VerifyStats before = broker.ingress_cache()->stats();

  pbft::Prepare prep;
  prep.view = 0;
  prep.seq = 999;
  prep.sender = 1;
  net::Envelope forged;
  forged.src = principal::enclave({1, Compartment::Preparation});
  forged.dst = principal::enclave({0, Compartment::Confirmation});
  forged.type = pbft::tag(pbft::MsgType::Prepare);
  forged.payload = prep.serialize();
  forged.signature = Bytes(64, 0x5a);
  cluster.harness().inject({forged});
  cluster.harness().run_for(100'000);

  const net::VerifyStats after = broker.ingress_cache()->stats();
  EXPECT_EQ(after.failures, before.failures + 1);
  // Honest traffic still flows and agreement is intact.
  ASSERT_TRUE(
      cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value());
  EXPECT_TRUE(cluster.check_agreement());
}

}  // namespace
}  // namespace sbft::runtime
