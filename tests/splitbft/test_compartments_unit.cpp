// Direct unit tests of individual compartment state machines (no cluster):
// input validation, quorum thresholds, GC, and the broker's routing rules.
#include <gtest/gtest.h>

#include "apps/counter_app.hpp"
#include "crypto/sha256.hpp"
#include "pbft/client_directory.hpp"
#include "splitbft/broker.hpp"
#include "splitbft/conf_compartment.hpp"
#include "splitbft/enclave_adapter.hpp"
#include "splitbft/prep_compartment.hpp"

namespace sbft::splitbft {
namespace {

struct Fixture {
  pbft::Config config;
  crypto::KeyRing ring{crypto::Scheme::HmacShared, 9};
  std::shared_ptr<const crypto::Verifier> verifier;
  pbft::ClientDirectory clients{0x5ec7e7};

  Fixture() {
    config.n = 4;
    config.f = 1;
    config.batch_max = 8;
    for (ReplicaId r = 0; r < 4; ++r) {
      for (const Compartment c :
           {Compartment::Preparation, Compartment::Confirmation,
            Compartment::Execution}) {
        ring.add_principal(principal::enclave({r, c}));
      }
    }
    verifier = ring.verifier();
  }

  [[nodiscard]] std::shared_ptr<const crypto::Signer> signer(ReplicaId r,
                                                             Compartment c) {
    return ring.signer(principal::enclave({r, c}));
  }

  [[nodiscard]] pbft::Request make_request(ClientId client, Timestamp ts) {
    pbft::Request req;
    req.client = client;
    req.timestamp = ts;
    req.payload = to_bytes("op");
    const crypto::Key32 key = clients.auth_key(client);
    const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                           req.auth_input());
    req.auth = Bytes(mac.bytes.begin(), mac.bytes.end());
    return req;
  }

  [[nodiscard]] net::Envelope local_batch(const pbft::RequestBatch& batch,
                                          ReplicaId r) {
    net::Envelope env;
    env.dst = principal::enclave({r, Compartment::Preparation});
    env.type = tag(LocalMsg::Batch);
    env.payload = batch.serialize();
    return env;
  }
};

TEST(PrepCompartmentUnit, PrimaryProposesAuthenticatedBatch) {
  Fixture fx;
  PrepCompartment prep(fx.config, 0, fx.signer(0, Compartment::Preparation),
                       fx.verifier, fx.clients, {});
  pbft::RequestBatch batch;
  batch.requests.push_back(fx.make_request(kFirstClientId, 1));

  const auto out = prep.deliver(fx.local_batch(batch, 0));
  // n-1 peer preps (full) + own conf (stripped) + own exec (full).
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(prep.next_seq(), 1u);

  // The copy for Confirmation must be stripped of the batch body.
  bool found_stripped = false;
  for (const auto& env : out) {
    if (env.dst == principal::enclave({0, Compartment::Confirmation})) {
      const auto pp = SplitPrePrepare::deserialize(env.payload);
      ASSERT_TRUE(pp.has_value());
      EXPECT_FALSE(pp->has_batch);
      found_stripped = true;
    }
  }
  EXPECT_TRUE(found_stripped);
}

// Pipelined batching: with pipeline_depth = D the Preparation enclave
// assigns at most checkpoint_interval + D sequence numbers past the stable
// checkpoint; authenticated overflow batches are DEFERRED (not dropped)
// and released when a checkpoint certificate advances the stable point.
TEST(PrepCompartmentUnit, PipelineDefersBatchesBeyondWindowAndReleasesOnCheckpoint) {
  Fixture fx;
  fx.config.checkpoint_interval = 2;
  fx.config.pipeline_depth = 1;  // window = interval + depth = 3 seqs
  PrepCompartment prep(fx.config, 0, fx.signer(0, Compartment::Preparation),
                       fx.verifier, fx.clients, {});

  for (Timestamp ts = 1; ts <= 5; ++ts) {
    pbft::RequestBatch batch;
    batch.requests.push_back(fx.make_request(kFirstClientId, ts));
    const auto out = prep.deliver(fx.local_batch(batch, 0));
    if (ts <= 3) {
      EXPECT_FALSE(out.empty()) << "batch " << ts << " fits the pipeline";
    } else {
      EXPECT_TRUE(out.empty()) << "batch " << ts << " must be deferred";
    }
  }
  EXPECT_EQ(prep.next_seq(), 3u);
  EXPECT_EQ(prep.deferred_batches(), 2u);

  // A 2f+1 checkpoint certificate at seq 2 advances the stable point;
  // both deferred batches now fit (window reaches seq 5) and are proposed.
  pbft::Checkpoint cp;
  cp.seq = 2;
  cp.state_digest = crypto::sha256(to_bytes("state@2"));
  std::vector<net::Envelope> released;
  for (ReplicaId r = 1; r <= 3; ++r) {
    cp.sender = r;
    net::Envelope env;
    env.src = principal::enclave({r, Compartment::Execution});
    env.dst = principal::enclave({0, Compartment::Preparation});
    env.type = pbft::tag(pbft::MsgType::Checkpoint);
    env.payload = cp.serialize();
    net::sign_envelope(env, *fx.signer(r, Compartment::Execution));
    auto out = prep.deliver(env);
    released.insert(released.end(), out.begin(), out.end());
  }
  EXPECT_EQ(prep.last_stable(), 2u);
  EXPECT_EQ(prep.deferred_batches(), 0u);
  EXPECT_EQ(prep.next_seq(), 5u);
  // Two proposals, 5 envelopes each (n-1 peers + own conf + own exec).
  EXPECT_EQ(released.size(), 10u);
  // Garbage collection freed the input log at or below the stable seq.
  EXPECT_EQ(prep.log_slots(), 3u);  // seqs 3, 4, 5
}

TEST(PrepCompartmentUnit, BackupIgnoresBatches) {
  Fixture fx;
  PrepCompartment prep(fx.config, 1, fx.signer(1, Compartment::Preparation),
                       fx.verifier, fx.clients, {});
  pbft::RequestBatch batch;
  batch.requests.push_back(fx.make_request(kFirstClientId, 1));
  EXPECT_TRUE(prep.deliver(fx.local_batch(batch, 1)).empty());
  EXPECT_EQ(prep.next_seq(), 0u);
}

TEST(PrepCompartmentUnit, RejectsBatchWithBadClientMac) {
  Fixture fx;
  PrepCompartment prep(fx.config, 0, fx.signer(0, Compartment::Preparation),
                       fx.verifier, fx.clients, {});
  pbft::RequestBatch batch;
  auto req = fx.make_request(kFirstClientId, 1);
  req.auth[0] ^= 1;  // forged
  batch.requests.push_back(std::move(req));
  EXPECT_TRUE(prep.deliver(fx.local_batch(batch, 0)).empty());
}

TEST(PrepCompartmentUnit, BackupPreparesValidPrePrepare) {
  Fixture fx;
  // Primary 0 creates; backup 1 validates.
  PrepCompartment primary(fx.config, 0, fx.signer(0, Compartment::Preparation),
                          fx.verifier, fx.clients, {});
  PrepCompartment backup(fx.config, 1, fx.signer(1, Compartment::Preparation),
                         fx.verifier, fx.clients, {});
  pbft::RequestBatch batch;
  batch.requests.push_back(fx.make_request(kFirstClientId, 1));
  const auto out = primary.deliver(fx.local_batch(batch, 0));

  // Find the copy addressed to backup 1's prep.
  const net::Envelope* to_backup = nullptr;
  for (const auto& env : out) {
    if (env.dst == principal::enclave({1, Compartment::Preparation})) {
      to_backup = &env;
    }
  }
  ASSERT_NE(to_backup, nullptr);
  const auto prepares = backup.deliver(*to_backup);
  // A Prepare to every Confirmation enclave.
  ASSERT_EQ(prepares.size(), 4u);
  for (const auto& env : prepares) {
    EXPECT_EQ(env.type, pbft::tag(pbft::MsgType::Prepare));
  }

  // Replay is ignored.
  EXPECT_TRUE(backup.deliver(*to_backup).empty());
}

TEST(PrepCompartmentUnit, RejectsPrePrepareFromNonPrimary) {
  Fixture fx;
  PrepCompartment backup(fx.config, 2, fx.signer(2, Compartment::Preparation),
                         fx.verifier, fx.clients, {});
  SplitPrePrepare pp;
  pp.view = 0;
  pp.seq = 1;
  pp.batch = pbft::RequestBatch{}.serialize();
  pp.batch_digest = crypto::sha256(pp.batch);
  pp.sender = 1;  // not the primary of view 0
  pp.has_batch = true;
  const auto env = make_pre_prepare_envelope(
      pp, *fx.signer(1, Compartment::Preparation),
      principal::enclave({2, Compartment::Preparation}));
  EXPECT_TRUE(backup.deliver(env).empty());
}

TEST(ConfCompartmentUnit, CommitRequiresHeaderPlusTwoFPrepares) {
  Fixture fx;
  ConfCompartment conf(fx.config, 3, fx.signer(3, Compartment::Confirmation),
                       fx.verifier);
  // Header from the primary's prep.
  SplitPrePrepare pp;
  pp.view = 0;
  pp.seq = 1;
  pp.batch_digest.bytes[0] = 7;
  pp.sender = 0;
  const auto header = make_pre_prepare_envelope(
      pp.stripped(), *fx.signer(0, Compartment::Preparation),
      principal::enclave({3, Compartment::Confirmation}));
  EXPECT_TRUE(conf.deliver(header).empty());

  // First backup prepare: still below quorum.
  const auto make_prep = [&](ReplicaId sender) {
    pbft::Prepare prep;
    prep.view = 0;
    prep.seq = 1;
    prep.batch_digest = pp.batch_digest;
    prep.sender = sender;
    net::Envelope env;
    env.dst = principal::enclave({3, Compartment::Confirmation});
    env.type = pbft::tag(pbft::MsgType::Prepare);
    env.payload = prep.serialize();
    net::sign_envelope(env, *fx.signer(sender, Compartment::Preparation));
    return env;
  };
  EXPECT_TRUE(conf.deliver(make_prep(1)).empty());

  // Second matching prepare completes the certificate: Commits to all
  // Execution enclaves.
  const auto commits = conf.deliver(make_prep(2));
  ASSERT_EQ(commits.size(), 4u);
  for (const auto& env : commits) {
    EXPECT_EQ(env.type, pbft::tag(pbft::MsgType::Commit));
  }
}

TEST(ConfCompartmentUnit, MismatchedDigestPreparesDoNotCount) {
  Fixture fx;
  ConfCompartment conf(fx.config, 3, fx.signer(3, Compartment::Confirmation),
                       fx.verifier);
  SplitPrePrepare pp;
  pp.view = 0;
  pp.seq = 1;
  pp.batch_digest.bytes[0] = 7;
  pp.sender = 0;
  (void)conf.deliver(make_pre_prepare_envelope(
      pp.stripped(), *fx.signer(0, Compartment::Preparation),
      principal::enclave({3, Compartment::Confirmation})));

  const auto make_prep = [&](ReplicaId sender, std::uint8_t digest_byte) {
    pbft::Prepare prep;
    prep.view = 0;
    prep.seq = 1;
    prep.batch_digest.bytes[0] = digest_byte;
    prep.sender = sender;
    net::Envelope env;
    env.dst = principal::enclave({3, Compartment::Confirmation});
    env.type = pbft::tag(pbft::MsgType::Prepare);
    env.payload = prep.serialize();
    net::sign_envelope(env, *fx.signer(sender, Compartment::Preparation));
    return env;
  };
  EXPECT_TRUE(conf.deliver(make_prep(1, 9)).empty());  // wrong digest
  EXPECT_TRUE(conf.deliver(make_prep(2, 9)).empty());  // wrong digest
  // Still no commit: only 0 matching prepares.
  EXPECT_TRUE(conf.deliver(make_prep(1, 7)).empty());  // 1 matching
  EXPECT_FALSE(conf.deliver(make_prep(2, 7)).empty());  // 2 matching -> commit
}

TEST(ConfCompartmentUnit, SuspicionTriggersViewChangeAndBlocksOldView) {
  Fixture fx;
  ConfCompartment conf(fx.config, 1, fx.signer(1, Compartment::Confirmation),
                       fx.verifier);
  net::Envelope suspect;
  suspect.dst = principal::enclave({1, Compartment::Confirmation});
  suspect.type = tag(LocalMsg::SuspectPrimary);
  const auto out = conf.deliver(suspect);
  // ViewChange to every Preparation enclave.
  ASSERT_EQ(out.size(), 4u);
  for (const auto& env : out) {
    EXPECT_EQ(env.type, pbft::tag(pbft::MsgType::ViewChange));
  }
  EXPECT_EQ(conf.view(), 1u);
  EXPECT_TRUE(conf.in_view_change());
}

TEST(EnclaveAdapter, MalformedEcallPayloadYieldsEmptyOutbox) {
  Fixture fx;
  auto logic = std::make_unique<ConfCompartment>(
      fx.config, 0, fx.signer(0, Compartment::Confirmation), fx.verifier);
  CompartmentEnclave enclave(std::move(logic));
  const Bytes result = enclave.ecall(
      static_cast<std::uint32_t>(tee::EcallFn::DeliverMessage),
      to_bytes("garbage"));
  const auto outbox = decode_outbox(result);
  ASSERT_TRUE(outbox.has_value());
  EXPECT_TRUE(outbox->empty());
}

TEST(EnclaveAdapter, MeasurementMatchesCompartmentType) {
  Fixture fx;
  auto logic = std::make_unique<ConfCompartment>(
      fx.config, 0, fx.signer(0, Compartment::Confirmation), fx.verifier);
  CompartmentEnclave enclave(std::move(logic));
  EXPECT_EQ(enclave.measurement(),
            compartment_measurement(Compartment::Confirmation));
  EXPECT_NE(compartment_measurement(Compartment::Preparation),
            compartment_measurement(Compartment::Execution));
}

}  // namespace
}  // namespace sbft::splitbft
