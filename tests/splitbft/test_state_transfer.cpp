// SplitBFT streaming state transfer: sealed chunk fetch between Execution
// enclaves, recovery under a withholding (compromised-host) peer, and
// re-crash during an in-flight transfer.
#include <gtest/gtest.h>

#include "apps/kv_store.hpp"
#include "faults/byzantine_env.hpp"
#include "pbft/messages.hpp"
#include "runtime/splitbft_cluster.hpp"

namespace sbft::runtime {
namespace {

using apps::KvStore;

[[nodiscard]] SplitClusterOptions transfer_config(std::uint64_t seed) {
  SplitClusterOptions options;
  options.seed = seed;
  options.config.n = 4;
  options.config.f = 1;
  options.config.checkpoint_interval = 5;
  options.config.watermark_window = 40;
  options.config.batch_max = 1;
  options.config.state_chunk_bytes = 1024;
  options.config.state_inflight_max_bytes = 4096;
  return options;
}

[[nodiscard]] splitbft::ExecAppFactory kv_factory() {
  return splitbft::plain_app([] { return std::make_unique<KvStore>(); });
}

[[nodiscard]] Bytes kv_put(std::uint64_t key, std::uint8_t salt) {
  Bytes value(700);
  for (std::size_t i = 0; i < value.size(); ++i) {
    value[i] = static_cast<std::uint8_t>(key * 17 + salt + i);
  }
  return apps::kv::encode_put(apps::kv::encode_key(key), value);
}

TEST(SplitbftStateTransfer, RecoveryStreamsSealedChunks) {
  SplitbftCluster cluster(transfer_config(51), kv_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  cluster.crash_replica(3);
  for (int i = 0; i < 11; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 0)).has_value());
  }
  cluster.restore_replica(3);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 1)).has_value());
  }
  ASSERT_TRUE(cluster.harness().run_until(
      [&] {
        return !cluster.replica(3).exec().awaiting_state() &&
               cluster.replica(3).exec().last_executed() >=
                   cluster.replica(0).exec().last_executed();
      },
      60'000'000));

  const pbft::StateTransferStats stats =
      cluster.replica(3).exec().state_transfer_stats();
  EXPECT_GE(stats.transfers_completed, 1u);
  EXPECT_GT(stats.chunks_accepted, 1u);
  // Chunks travel AEAD-sealed between Execution enclaves; honest traffic
  // unseals and verifies cleanly.
  EXPECT_EQ(stats.chunks_rejected, 0u);
  EXPECT_LE(stats.peak_inflight_bytes,
            transfer_config(51).config.state_inflight_max_bytes +
                transfer_config(51).config.state_chunk_bytes);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SplitbftStateTransfer, WithholdingHostCannotStallRecovery) {
  SplitbftCluster cluster(transfer_config(52), kv_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  cluster.crash_replica(3);
  for (int i = 0; i < 11; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 0)).has_value());
  }
  // Replica 1's compromised host swallows every chunk response its
  // Execution enclave serves (it cannot forge them — no enclave keys).
  cluster.interpose_env(1, [](std::shared_ptr<Actor> inner) {
    faults::EnvPolicy policy;
    policy.record_observed = false;
    policy.drop_outbound_if = [](const net::Envelope& env) {
      return env.type == pbft::tag(pbft::MsgType::StateChunkResponse);
    };
    return std::make_shared<faults::ByzantineEnv>(std::move(inner), policy,
                                                  /*seed=*/7);
  });
  cluster.restore_replica(3);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 1)).has_value());
  }
  ASSERT_TRUE(cluster.harness().run_until(
      [&] {
        return !cluster.replica(3).exec().awaiting_state() &&
               cluster.replica(3).exec().last_executed() >=
                   cluster.replica(0).exec().last_executed();
      },
      120'000'000));
  EXPECT_GE(cluster.replica(3).exec().state_transfer_stats().transfers_completed,
            1u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SplitbftStateTransfer, ReCrashDuringTransferStillConverges) {
  SplitbftCluster cluster(transfer_config(53), kv_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  cluster.crash_replica(3);
  for (int i = 0; i < 11; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 0)).has_value());
  }
  // Restore just long enough for the transfer to start, then crash again
  // mid-flight and recover for real.
  cluster.restore_replica(3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 1)).has_value());
  }
  cluster.harness().run_for(50'000);
  cluster.crash_replica(3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 2)).has_value());
  }
  cluster.restore_replica(3);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 3)).has_value());
  }
  ASSERT_TRUE(cluster.harness().run_until(
      [&] {
        return !cluster.replica(3).exec().awaiting_state() &&
               cluster.replica(3).exec().last_executed() >=
                   cluster.replica(0).exec().last_executed();
      },
      120'000'000));
  EXPECT_TRUE(cluster.check_agreement());
}

}  // namespace
}  // namespace sbft::runtime
