// Read fast path in SplitBFT: the broker routes tagged reads straight to
// the Execution compartment, which serves them under its last-executed
// state — no Preparation/Confirmation ecalls, no sequence numbers, and
// encrypted replies whose plaintext digests form the client's read quorum.
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "apps/kv_store.hpp"
#include "runtime/splitbft_cluster.hpp"

namespace sbft::runtime {
namespace {

[[nodiscard]] splitbft::ExecAppFactory kv_factory() {
  return splitbft::plain_app([] { return std::make_unique<apps::KvStore>(); });
}

TEST(SplitReadPath, FastReadsBypassOrderingEntirely) {
  SplitClusterOptions options;
  options.seed = 71;
  options.config.read_path = true;
  SplitbftCluster cluster(options, kv_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  ASSERT_TRUE(cluster
                  .execute(kFirstClientId,
                           apps::kv::encode_put(to_bytes("k"), to_bytes("v")))
                  .has_value());
  cluster.harness().run_for(2'000'000);

  std::array<SeqNum, 4> seq_before{};
  for (ReplicaId r = 0; r < 4; ++r) {
    seq_before[r] = cluster.replica(r).exec().last_executed();
  }

  constexpr int kReads = 5;
  for (int i = 0; i < kReads; ++i) {
    const auto got = cluster.execute_read(kFirstClientId,
                                          apps::kv::encode_get(to_bytes("k")));
    ASSERT_TRUE(got.has_value()) << "read " << i;
    const auto reply = apps::kv::decode_reply(*got);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->status, apps::KvStatus::Ok);
    EXPECT_EQ(reply->value, to_bytes("v"));
  }
  cluster.harness().run_for(2'000'000);

  // Exec-compartment bypass: reads consumed no sequence numbers anywhere
  // and were served by every Execution enclave.
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.replica(r).exec().last_executed(), seq_before[r])
        << "r" << r;
    EXPECT_EQ(cluster.replica(r).exec().reads_served(),
              static_cast<std::uint64_t>(kReads))
        << "r" << r;
  }
  EXPECT_EQ(cluster.client(kFirstClientId).client().fast_reads(),
            static_cast<std::uint64_t>(kReads));
  EXPECT_EQ(cluster.client(kFirstClientId).client().read_fallbacks(), 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SplitReadPath, EncryptedReadRepliesNeverLeakTheValue) {
  // The read quorum digests are keyed HMACs and the designated responder's
  // value is AEAD-sealed: nothing crossing the untrusted environments may
  // contain the plaintext.
  const std::string secret = "CONFIDENTIAL-READ-7";
  SplitClusterOptions options;
  options.seed = 72;
  options.config.read_path = true;
  SplitbftCluster cluster(options, kv_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());
  ASSERT_TRUE(
      cluster
          .execute(kFirstClientId,
                   apps::kv::encode_put(to_bytes("acct"), to_bytes(secret)))
          .has_value());
  cluster.harness().run_for(1'000'000);

  // Observe every envelope leaving replica 0's environment during the read.
  std::vector<Bytes> observed;
  class Tap final : public Actor {
   public:
    Tap(std::shared_ptr<Actor> inner, std::vector<Bytes>& sink)
        : inner_(std::move(inner)), sink_(sink) {}
    std::vector<net::Envelope> handle(const net::Envelope& env,
                                      Micros now) override {
      sink_.emplace_back(env.payload.begin(), env.payload.end());
      auto outs = inner_->handle(env, now);
      for (const auto& out : outs) {
        sink_.emplace_back(out.payload.begin(), out.payload.end());
      }
      return outs;
    }
    std::vector<net::Envelope> tick(Micros now) override {
      return inner_->tick(now);
    }

   private:
    std::shared_ptr<Actor> inner_;
    std::vector<Bytes>& sink_;
  };
  cluster.interpose_env(0, [&observed](std::shared_ptr<Actor> in) {
    return std::make_shared<Tap>(std::move(in), observed);
  });

  const auto got = cluster.execute_read(
      kFirstClientId, apps::kv::encode_get(to_bytes("acct")));
  ASSERT_TRUE(got.has_value());
  const auto reply = apps::kv::decode_reply(*got);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->value, to_bytes(secret));

  ASSERT_FALSE(observed.empty());
  for (const auto& bytes : observed) {
    const std::string haystack(bytes.begin(), bytes.end());
    EXPECT_EQ(haystack.find(secret), std::string::npos)
        << "read path leaked plaintext through an untrusted environment";
  }
}

}  // namespace
}  // namespace sbft::runtime
