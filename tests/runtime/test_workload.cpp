// Workload-engine tests: generator properties, determinism, and small
// end-to-end load points over both stacks and both drivers.
#include <gtest/gtest.h>

#include <map>

#include "apps/kv_store.hpp"
#include "runtime/workload/sharded_driver.hpp"
#include "runtime/workload/sim_driver.hpp"
#include "runtime/workload/thread_driver.hpp"

namespace sbft::runtime::workload {
namespace {

TEST(ZipfGenerator, UniformWhenThetaZero) {
  ZipfGenerator zipf(100, 0.0);
  Rng rng(1);
  std::map<std::uint64_t, std::uint64_t> counts;
  for (int i = 0; i < 20'000; ++i) ++counts[zipf.next(rng)];
  // Every rank in range, rough uniformity (each expected 200).
  for (const auto& [rank, count] : counts) {
    ASSERT_LT(rank, 100u);
    EXPECT_GT(count, 100u);
    EXPECT_LT(count, 400u);
  }
}

TEST(ZipfGenerator, SkewConcentratesOnHotKeys) {
  ZipfGenerator zipf(10'000, 0.99);
  Rng rng(2);
  std::map<std::uint64_t, std::uint64_t> counts;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t rank = zipf.next(rng);
    ASSERT_LT(rank, 10'000u);
    ++counts[rank];
  }
  // Rank 0 must be by far the hottest, and the top-10 ranks a large
  // fraction of all draws (YCSB-style head concentration).
  std::uint64_t top10 = 0;
  for (std::uint64_t r = 0; r < 10; ++r) {
    const auto it = counts.find(r);
    if (it != counts.end()) top10 += it->second;
  }
  EXPECT_GT(counts[0], static_cast<std::uint64_t>(kSamples) / 25);
  EXPECT_GT(top10, static_cast<std::uint64_t>(kSamples) / 5);
}

TEST(Workload, ExponentialHasRoughlyTheRequestedMean) {
  Rng rng(3);
  double sum = 0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(exponential_us(rng, 1'000));
  }
  const double mean = sum / kSamples;
  EXPECT_GT(mean, 900.0);
  EXPECT_LT(mean, 1'100.0);
  EXPECT_EQ(exponential_us(rng, 0), 0u);
}

TEST(Workload, OpStreamIsDeterministicPerSeed) {
  Options options;
  OpGenerator a(options, 77);
  OpGenerator b(options, 77);
  OpGenerator c(options, 78);
  bool diverged = false;
  for (int i = 0; i < 32; ++i) {
    const GeneratedOp oa = a.next();
    const GeneratedOp ob = b.next();
    EXPECT_EQ(oa.op, ob.op);
    EXPECT_EQ(oa.read_only, ob.read_only);
    // The tag must agree with the operation's own classification.
    EXPECT_EQ(oa.read_only, apps::kv::is_read_only(oa.op));
    if (oa.op != c.next().op) diverged = true;
  }
  EXPECT_TRUE(diverged);  // different seeds -> different streams
}

[[nodiscard]] Options small_point(Stack stack) {
  Options options;
  options.stack = stack;
  options.mode = LoadMode::Closed;
  options.clients = 24;
  options.protocol.n = 4;
  options.protocol.f = 1;
  options.protocol.batch_max = 8;
  options.protocol.pipeline_depth = 4;
  options.protocol.checkpoint_interval = 20;
  options.protocol.watermark_window = 100;
  options.protocol.request_timeout_us = 2'000'000;
  options.warmup_us = 50'000;
  options.measure_us = 200'000;
  options.seed = 9;
  return options;
}

TEST(SimWorkload, SustainsClosedLoopOnPbft) {
  const Report report = run_sim_workload(small_point(Stack::Pbft));
  EXPECT_GT(report.completed_ops, 0u);
  EXPECT_TRUE(report.sustained);
  EXPECT_GT(report.p99_us, 0u);
  EXPECT_GE(report.p99_us, report.p50_us);
  EXPECT_FALSE(report.histogram.empty());
}

TEST(SimWorkload, SustainsClosedLoopOnSplitbft) {
  const Report report = run_sim_workload(small_point(Stack::Splitbft));
  EXPECT_GT(report.completed_ops, 0u);
  EXPECT_TRUE(report.sustained);
}

TEST(SimWorkload, DeterministicFromSeed) {
  const Options options = small_point(Stack::Pbft);
  const Report a = run_sim_workload(options);
  const Report b = run_sim_workload(options);
  EXPECT_EQ(a.completed_ops, b.completed_ops);
  EXPECT_EQ(a.p50_us, b.p50_us);
  EXPECT_EQ(a.p95_us, b.p95_us);
  EXPECT_EQ(a.p99_us, b.p99_us);
  EXPECT_EQ(a.max_us, b.max_us);
}

TEST(SimWorkload, OpenLoopMeasuresFromArrival) {
  Options options = small_point(Stack::Pbft);
  options.mode = LoadMode::Open;
  options.clients = 32;
  options.interarrival_us = 20'000;
  const Report report = run_sim_workload(options);
  EXPECT_GT(report.completed_ops, 0u);
  EXPECT_TRUE(report.sustained);
}

TEST(SimWorkload, ThinkTimeLowersOfferedLoad) {
  Options busy = small_point(Stack::Pbft);
  const Report busy_report = run_sim_workload(busy);
  Options idle = small_point(Stack::Pbft);
  idle.think_time_us = 50'000;
  const Report idle_report = run_sim_workload(idle);
  EXPECT_GT(busy_report.completed_ops, idle_report.completed_ops);
  EXPECT_TRUE(idle_report.sustained);
}

// The real ThreadNetwork driver: short wall-clock runs, structure-only
// assertions (wall-clock throughput is runner noise).
TEST(ThreadWorkload, CompletesOnPbft) {
  Options options = small_point(Stack::Pbft);
  options.clients = 16;
  options.warmup_us = 50'000;
  options.measure_us = 100'000;
  const Report report = run_thread_workload(options);
  EXPECT_GT(report.completed_ops, 0u);
}

TEST(ThreadWorkload, CompletesOnSplitbft) {
  Options options = small_point(Stack::Splitbft);
  options.clients = 16;
  options.warmup_us = 50'000;
  options.measure_us = 100'000;
  const Report report = run_thread_workload(options);
  EXPECT_GT(report.completed_ops, 0u);
}

// --- mixed-op generator (CAS/DEL + whole-group MultiOps) ---

[[nodiscard]] Options mixed_options() {
  Options options;
  options.get_fraction = 0.3;
  options.cas_fraction = 0.2;
  options.del_fraction = 0.2;
  options.shards = 2;
  options.cross_shard_fraction = 0.25;
  options.multi_keys = 3;
  options.multi_groups = 8;
  options.key_space = 1024;
  return options;
}

TEST(Workload, MixedOpStreamCoversEveryKind) {
  OpGenerator gen(mixed_options(), 5);
  std::map<apps::KvOp, int> seen;
  for (int i = 0; i < 600; ++i) {
    const GeneratedOp op = gen.next();
    ASSERT_FALSE(op.op.empty());
    ++seen[static_cast<apps::KvOp>(op.op[0])];
    EXPECT_EQ(op.read_only, apps::kv::is_read_only(op.op));
  }
  EXPECT_GT(seen[apps::KvOp::Get], 0);
  EXPECT_GT(seen[apps::KvOp::Put], 0);
  EXPECT_GT(seen[apps::KvOp::Cas], 0);
  EXPECT_GT(seen[apps::KvOp::Del], 0);
  EXPECT_GT(seen[apps::KvOp::Multi], 0);
}

TEST(Workload, MultiOpsWriteWholeGroupsWithOneValue) {
  const Options options = mixed_options();
  OpGenerator gen(options, 6);
  int multis = 0;
  for (int i = 0; i < 600 && multis < 20; ++i) {
    const GeneratedOp op = gen.next();
    const auto multi = apps::kv::decode_multi(op.op);
    if (!multi) continue;
    ++multis;
    ASSERT_EQ(multi->subs.size(), options.multi_keys);
    for (std::size_t j = 0; j < multi->subs.size(); ++j) {
      EXPECT_EQ(multi->subs[j].op, apps::KvOp::Put);
      // Same (unique) value across the group: the atomicity invariant.
      EXPECT_EQ(multi->subs[j].value, multi->subs[0].value);
    }
    // The group lives above the single-key space and is one of the
    // configured groups, whole and aligned.
    bool found = false;
    for (std::uint64_t g = 0; g < options.multi_groups && !found; ++g) {
      found = group_keys(options, g) ==
              std::vector<Bytes>{multi->subs[0].key, multi->subs[1].key,
                                 multi->subs[2].key};
    }
    EXPECT_TRUE(found);
  }
  EXPECT_GE(multis, 20);
}

TEST(Workload, MixedOpStreamIsDeterministicPerSeed) {
  const Options options = mixed_options();
  OpGenerator a(options, 91);
  OpGenerator b(options, 91);
  OpGenerator c(options, 92);
  bool diverged = false;
  for (int i = 0; i < 128; ++i) {
    const GeneratedOp oa = a.next();
    EXPECT_EQ(oa.op, b.next().op);
    if (oa.op != c.next().op) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

// --- sharded simulator driver ---

[[nodiscard]] Options sharded_point(Stack stack, std::uint32_t shards) {
  Options options = small_point(stack);
  options.shards = shards;
  options.cross_shard_fraction = 0.2;
  options.multi_keys = 2;
  options.multi_groups = 12;
  options.clients = 16;
  return options;
}

TEST(ShardedSimWorkload, SustainsAndStaysAtomicOnPbft) {
  const Report report =
      run_sharded_sim_workload(sharded_point(Stack::Pbft, 2));
  EXPECT_GT(report.completed_ops, 0u);
  EXPECT_TRUE(report.sustained);
  EXPECT_GT(report.sharding.multi_ops, 0u);
  EXPECT_GT(report.sharding.tx_commits, 0u);
  EXPECT_EQ(report.sharding.groups_checked, 12u);
  EXPECT_EQ(report.sharding.torn_groups, 0u);
}

TEST(ShardedSimWorkload, SustainsAndStaysAtomicOnSplitbft) {
  Options options = sharded_point(Stack::Splitbft, 2);
  options.clients = 12;
  const Report report = run_sharded_sim_workload(options);
  EXPECT_GT(report.completed_ops, 0u);
  EXPECT_TRUE(report.sustained);
  EXPECT_GT(report.sharding.tx_commits, 0u);
  EXPECT_EQ(report.sharding.torn_groups, 0u);
}

TEST(ShardedSimWorkload, DeterministicFromSeed) {
  const Options options = sharded_point(Stack::Pbft, 2);
  const Report a = run_sharded_sim_workload(options);
  const Report b = run_sharded_sim_workload(options);
  EXPECT_EQ(a.completed_ops, b.completed_ops);
  EXPECT_EQ(a.sharding.tx_commits, b.sharding.tx_commits);
  EXPECT_EQ(a.sharding.cross_shard_tx, b.sharding.cross_shard_tx);
  EXPECT_EQ(a.p99_us, b.p99_us);
}

TEST(ShardedSimWorkload, SingleShardPathRunsTheSameDriver) {
  Options options = sharded_point(Stack::Pbft, 1);
  const Report report = run_sharded_sim_workload(options);
  EXPECT_GT(report.completed_ops, 0u);
  EXPECT_TRUE(report.sustained);
  // One group: every multi op executes as one ordered op, no 2PC.
  EXPECT_GT(report.sharding.single_shard_multi, 0u);
  EXPECT_EQ(report.sharding.cross_shard_tx, 0u);
  EXPECT_EQ(report.sharding.torn_groups, 0u);
}

TEST(Workload, ReportJsonContainsShardingCounters) {
  Options options;
  options.shards = 4;
  options.cross_shard_fraction = 0.1;
  Report report;
  report.sharding.tx_commits = 7;
  report.sharding.torn_groups = 0;
  const std::string json = report_json(options, report);
  EXPECT_NE(json.find("\"shards\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"cross_shard_fraction\": 0.1"), std::string::npos);
  EXPECT_NE(json.find("\"tx_commits\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"torn_groups\": 0"), std::string::npos);
}

TEST(Workload, ReportJsonContainsPercentiles) {
  Options options;
  Report report;
  report.completed_ops = 10;
  report.ops_per_sec = 100;
  report.p50_us = 1000;
  report.p95_us = 2000;
  report.p99_us = 3000;
  report.sustained = true;
  const std::string json = report_json(options, report);
  EXPECT_NE(json.find("\"p50_us\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"p95_us\": 2000"), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\": 3000"), std::string::npos);
  EXPECT_NE(json.find("\"sustained\": true"), std::string::npos);
}

}  // namespace
}  // namespace sbft::runtime::workload
