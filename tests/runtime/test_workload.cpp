// Workload-engine tests: generator properties, determinism, and small
// end-to-end load points over both stacks and both drivers.
#include <gtest/gtest.h>

#include <map>

#include "apps/kv_store.hpp"
#include "runtime/workload/sim_driver.hpp"
#include "runtime/workload/thread_driver.hpp"

namespace sbft::runtime::workload {
namespace {

TEST(ZipfGenerator, UniformWhenThetaZero) {
  ZipfGenerator zipf(100, 0.0);
  Rng rng(1);
  std::map<std::uint64_t, std::uint64_t> counts;
  for (int i = 0; i < 20'000; ++i) ++counts[zipf.next(rng)];
  // Every rank in range, rough uniformity (each expected 200).
  for (const auto& [rank, count] : counts) {
    ASSERT_LT(rank, 100u);
    EXPECT_GT(count, 100u);
    EXPECT_LT(count, 400u);
  }
}

TEST(ZipfGenerator, SkewConcentratesOnHotKeys) {
  ZipfGenerator zipf(10'000, 0.99);
  Rng rng(2);
  std::map<std::uint64_t, std::uint64_t> counts;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t rank = zipf.next(rng);
    ASSERT_LT(rank, 10'000u);
    ++counts[rank];
  }
  // Rank 0 must be by far the hottest, and the top-10 ranks a large
  // fraction of all draws (YCSB-style head concentration).
  std::uint64_t top10 = 0;
  for (std::uint64_t r = 0; r < 10; ++r) {
    const auto it = counts.find(r);
    if (it != counts.end()) top10 += it->second;
  }
  EXPECT_GT(counts[0], static_cast<std::uint64_t>(kSamples) / 25);
  EXPECT_GT(top10, static_cast<std::uint64_t>(kSamples) / 5);
}

TEST(Workload, ExponentialHasRoughlyTheRequestedMean) {
  Rng rng(3);
  double sum = 0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(exponential_us(rng, 1'000));
  }
  const double mean = sum / kSamples;
  EXPECT_GT(mean, 900.0);
  EXPECT_LT(mean, 1'100.0);
  EXPECT_EQ(exponential_us(rng, 0), 0u);
}

TEST(Workload, OpStreamIsDeterministicPerSeed) {
  Options options;
  OpGenerator a(options, 77);
  OpGenerator b(options, 77);
  OpGenerator c(options, 78);
  bool diverged = false;
  for (int i = 0; i < 32; ++i) {
    const GeneratedOp oa = a.next();
    const GeneratedOp ob = b.next();
    EXPECT_EQ(oa.op, ob.op);
    EXPECT_EQ(oa.read_only, ob.read_only);
    // The tag must agree with the operation's own classification.
    EXPECT_EQ(oa.read_only, apps::kv::is_read_only(oa.op));
    if (oa.op != c.next().op) diverged = true;
  }
  EXPECT_TRUE(diverged);  // different seeds -> different streams
}

[[nodiscard]] Options small_point(Stack stack) {
  Options options;
  options.stack = stack;
  options.mode = LoadMode::Closed;
  options.clients = 24;
  options.protocol.n = 4;
  options.protocol.f = 1;
  options.protocol.batch_max = 8;
  options.protocol.pipeline_depth = 4;
  options.protocol.checkpoint_interval = 20;
  options.protocol.watermark_window = 100;
  options.protocol.request_timeout_us = 2'000'000;
  options.warmup_us = 50'000;
  options.measure_us = 200'000;
  options.seed = 9;
  return options;
}

TEST(SimWorkload, SustainsClosedLoopOnPbft) {
  const Report report = run_sim_workload(small_point(Stack::Pbft));
  EXPECT_GT(report.completed_ops, 0u);
  EXPECT_TRUE(report.sustained);
  EXPECT_GT(report.p99_us, 0u);
  EXPECT_GE(report.p99_us, report.p50_us);
  EXPECT_FALSE(report.histogram.empty());
}

TEST(SimWorkload, SustainsClosedLoopOnSplitbft) {
  const Report report = run_sim_workload(small_point(Stack::Splitbft));
  EXPECT_GT(report.completed_ops, 0u);
  EXPECT_TRUE(report.sustained);
}

TEST(SimWorkload, DeterministicFromSeed) {
  const Options options = small_point(Stack::Pbft);
  const Report a = run_sim_workload(options);
  const Report b = run_sim_workload(options);
  EXPECT_EQ(a.completed_ops, b.completed_ops);
  EXPECT_EQ(a.p50_us, b.p50_us);
  EXPECT_EQ(a.p95_us, b.p95_us);
  EXPECT_EQ(a.p99_us, b.p99_us);
  EXPECT_EQ(a.max_us, b.max_us);
}

TEST(SimWorkload, OpenLoopMeasuresFromArrival) {
  Options options = small_point(Stack::Pbft);
  options.mode = LoadMode::Open;
  options.clients = 32;
  options.interarrival_us = 20'000;
  const Report report = run_sim_workload(options);
  EXPECT_GT(report.completed_ops, 0u);
  EXPECT_TRUE(report.sustained);
}

TEST(SimWorkload, ThinkTimeLowersOfferedLoad) {
  Options busy = small_point(Stack::Pbft);
  const Report busy_report = run_sim_workload(busy);
  Options idle = small_point(Stack::Pbft);
  idle.think_time_us = 50'000;
  const Report idle_report = run_sim_workload(idle);
  EXPECT_GT(busy_report.completed_ops, idle_report.completed_ops);
  EXPECT_TRUE(idle_report.sustained);
}

// The real ThreadNetwork driver: short wall-clock runs, structure-only
// assertions (wall-clock throughput is runner noise).
TEST(ThreadWorkload, CompletesOnPbft) {
  Options options = small_point(Stack::Pbft);
  options.clients = 16;
  options.warmup_us = 50'000;
  options.measure_us = 100'000;
  const Report report = run_thread_workload(options);
  EXPECT_GT(report.completed_ops, 0u);
}

TEST(ThreadWorkload, CompletesOnSplitbft) {
  Options options = small_point(Stack::Splitbft);
  options.clients = 16;
  options.warmup_us = 50'000;
  options.measure_us = 100'000;
  const Report report = run_thread_workload(options);
  EXPECT_GT(report.completed_ops, 0u);
}

TEST(Workload, ReportJsonContainsPercentiles) {
  Options options;
  Report report;
  report.completed_ops = 10;
  report.ops_per_sec = 100;
  report.p50_us = 1000;
  report.p95_us = 2000;
  report.p99_us = 3000;
  report.sustained = true;
  const std::string json = report_json(options, report);
  EXPECT_NE(json.find("\"p50_us\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"p95_us\": 2000"), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\": 3000"), std::string::npos);
  EXPECT_NE(json.find("\"sustained\": true"), std::string::npos);
}

}  // namespace
}  // namespace sbft::runtime::workload
