// Loopback cluster integration: 4 replica nodes + a loadgen over real
// sockets (in-process, but every byte crosses the kernel), with one
// replica killed and restarted mid-run to exercise reconnect/backoff.
//
// Unix-domain addressing keeps every node's address deterministic (no
// ephemeral-port discovery dance) and exercises the same-host deployment
// path; the TCP byte path itself is covered by tests/net.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "runtime/workload/tcp_cluster.hpp"

namespace sbft::runtime::workload {
namespace {

[[nodiscard]] Options cluster_options(Stack stack) {
  Options options;
  options.stack = stack;
  options.clients = 64;
  options.seed = 2024;
  options.workers = 2;
  options.warmup_us = 300'000;
  options.measure_us = 1'200'000;
  options.protocol.n = 4;
  options.protocol.f = 1;
  options.protocol.batch_max = 100;
  options.protocol.batch_timeout_us = 5'000;
  options.protocol.checkpoint_interval = 50;
  options.protocol.watermark_window = 400;
  options.protocol.pipeline_depth = 4;
  options.protocol.request_timeout_us = 2'000'000;
  return options;
}

[[nodiscard]] net::TcpTransport::Options fast_reconnect() {
  net::TcpTransport::Options options;
  options.reconnect_backoff_min_us = 5'000;
  options.reconnect_backoff_max_us = 100'000;
  return options;
}

class LoopbackCluster {
 public:
  LoopbackCluster(const Options& options, const std::string& tag)
      : options_(options) {
    topology_.replicas = 4;
    topology_.loadgens = 1;
    for (std::uint32_t node = 0; node < topology_.nodes(); ++node) {
      // Distinct per test AND per process: ctest runs suites concurrently.
      topology_.addrs.push_back("unix:/tmp/sbft_" + tag + "_" +
                                std::to_string(::getpid()) + "_" +
                                std::to_string(node) + ".sock");
    }
  }

  [[nodiscard]] bool start_replica(ReplicaId r) {
    nodes_[r] = std::make_unique<ReplicaNode>(options_, topology_, r,
                                              fast_reconnect());
    return nodes_[r]->start();
  }

  void stop_replica(ReplicaId r) { nodes_[r].reset(); }

  [[nodiscard]] Report run_loadgen() {
    return run_tcp_workload(options_, topology_, 0, fast_reconnect());
  }

 private:
  Options options_;
  ClusterTopology topology_;
  std::unique_ptr<ReplicaNode> nodes_[4];
};

void run_with_mid_run_restart(Stack stack, const std::string& tag) {
  LoopbackCluster cluster(cluster_options(stack), tag);
  for (ReplicaId r = 0; r < 4; ++r) {
    ASSERT_TRUE(cluster.start_replica(r));
  }

  // Kill replica 3 (never the view-0 primary) mid-warmup, restart it
  // mid-measurement: commits must continue on the remaining 3 = 2f+1
  // replicas, and every peer must reconnect to the revived node (same
  // socket address, as under a process supervisor).
  std::atomic<bool> done{false};
  std::atomic<bool> restart_ok{true};
  std::thread chaos([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    if (done.load()) return;
    cluster.stop_replica(3);
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    if (done.load()) return;
    restart_ok.store(cluster.start_replica(3));
  });

  const Report report = cluster.run_loadgen();
  done.store(true);
  chaos.join();
  EXPECT_TRUE(restart_ok.load());

  EXPECT_GT(report.completed_ops, 0u);
  EXPECT_TRUE(report.sustained);
  // The loadgen observed the outage: its egress connection to replica 3
  // broke and re-established at least once.
  EXPECT_GE(report.transport.reconnects, 1u);
  EXPECT_GT(report.transport.frames_out, 0u);
  EXPECT_GT(report.transport.bytes_in, 0u);
  EXPECT_GT(report.transport.frames_per_writev, 0.0);
}

TEST(TcpCluster, PbftSurvivesReplicaRestartMidRun) {
  run_with_mid_run_restart(Stack::Pbft, "pbft");
}

TEST(TcpCluster, SplitbftSurvivesReplicaRestartMidRun) {
  run_with_mid_run_restart(Stack::Splitbft, "split");
}

TEST(TcpCluster, RouteMapsEveryPrincipalToItsHost) {
  ClusterTopology topology;
  topology.replicas = 4;
  topology.loadgens = 2;
  const auto route = topology.route();
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_EQ(route(principal::pbft_replica(r)), r);
    EXPECT_EQ(route(principal::splitbft_env(r)), r);
    for (const Compartment c :
         {Compartment::Preparation, Compartment::Confirmation,
          Compartment::Execution}) {
      EXPECT_EQ(route(principal::enclave({r, c})), r);
    }
  }
  // Clients round-robin across the loadgen nodes.
  EXPECT_EQ(route(principal::client(kFirstClientId)), 4u);
  EXPECT_EQ(route(principal::client(kFirstClientId + 1)), 5u);
  EXPECT_EQ(route(principal::client(kFirstClientId + 2)), 4u);
}

}  // namespace
}  // namespace sbft::runtime::workload
