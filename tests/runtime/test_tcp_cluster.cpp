// Loopback cluster integration: 4 replica nodes + a loadgen over real
// sockets (in-process, but every byte crosses the kernel), with one
// replica killed and restarted mid-run to exercise reconnect/backoff.
//
// Unix-domain addressing keeps every node's address deterministic (no
// ephemeral-port discovery dance) and exercises the same-host deployment
// path; the TCP byte path itself is covered by tests/net.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/workload/tcp_cluster.hpp"

namespace sbft::runtime::workload {
namespace {

[[nodiscard]] Options cluster_options(Stack stack) {
  Options options;
  options.stack = stack;
  options.clients = 64;
  options.seed = 2024;
  options.workers = 2;
  options.warmup_us = 300'000;
  options.measure_us = 1'200'000;
  options.protocol.n = 4;
  options.protocol.f = 1;
  options.protocol.batch_max = 100;
  options.protocol.batch_timeout_us = 5'000;
  options.protocol.checkpoint_interval = 50;
  options.protocol.watermark_window = 400;
  options.protocol.pipeline_depth = 4;
  options.protocol.request_timeout_us = 2'000'000;
  return options;
}

[[nodiscard]] net::TcpTransport::Options fast_reconnect() {
  net::TcpTransport::Options options;
  options.reconnect_backoff_min_us = 5'000;
  options.reconnect_backoff_max_us = 100'000;
  return options;
}

class LoopbackCluster {
 public:
  LoopbackCluster(const Options& options, const std::string& tag)
      : options_(options) {
    topology_.replicas = 4;
    topology_.loadgens = 1;
    for (std::uint32_t node = 0; node < topology_.nodes(); ++node) {
      // Distinct per test AND per process: ctest runs suites concurrently.
      topology_.addrs.push_back("unix:/tmp/sbft_" + tag + "_" +
                                std::to_string(::getpid()) + "_" +
                                std::to_string(node) + ".sock");
    }
  }

  [[nodiscard]] bool start_replica(ReplicaId r) {
    nodes_[r] = std::make_unique<ReplicaNode>(options_, topology_, r,
                                              fast_reconnect());
    return nodes_[r]->start();
  }

  void stop_replica(ReplicaId r) { nodes_[r].reset(); }

  [[nodiscard]] ReplicaNode& node(ReplicaId r) { return *nodes_[r]; }

  [[nodiscard]] Report run_loadgen() {
    return run_tcp_workload(options_, topology_, 0, fast_reconnect());
  }

 private:
  Options options_;
  ClusterTopology topology_;
  std::unique_ptr<ReplicaNode> nodes_[4];
};

void run_with_mid_run_restart(Stack stack, const std::string& tag) {
  LoopbackCluster cluster(cluster_options(stack), tag);
  for (ReplicaId r = 0; r < 4; ++r) {
    ASSERT_TRUE(cluster.start_replica(r));
  }

  // Kill replica 3 (never the view-0 primary) mid-warmup, restart it
  // mid-measurement: commits must continue on the remaining 3 = 2f+1
  // replicas, and every peer must reconnect to the revived node (same
  // socket address, as under a process supervisor).
  std::atomic<bool> done{false};
  std::atomic<bool> restart_ok{true};
  std::thread chaos([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    if (done.load()) return;
    cluster.stop_replica(3);
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    if (done.load()) return;
    restart_ok.store(cluster.start_replica(3));
  });

  const Report report = cluster.run_loadgen();
  done.store(true);
  chaos.join();
  EXPECT_TRUE(restart_ok.load());

  EXPECT_GT(report.completed_ops, 0u);
  EXPECT_TRUE(report.sustained);
  // The loadgen observed the outage: its egress connection to replica 3
  // broke and re-established at least once.
  EXPECT_GE(report.transport.reconnects, 1u);
  EXPECT_GT(report.transport.frames_out, 0u);
  EXPECT_GT(report.transport.bytes_in, 0u);
  EXPECT_GT(report.transport.frames_per_writev, 0.0);
}

TEST(TcpCluster, PbftSurvivesReplicaRestartMidRun) {
  run_with_mid_run_restart(Stack::Pbft, "pbft");
}

TEST(TcpCluster, SplitbftSurvivesReplicaRestartMidRun) {
  run_with_mid_run_restart(Stack::Splitbft, "split");
}

/// Wall-clock poll (10ms) until `pred` holds or `timeout_ms` elapses.
[[nodiscard]] bool wait_for(const std::function<bool()>& pred,
                            int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 10) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// Streaming state transfer under process churn: replica 3 falls behind a
// checkpoint and recovers over real sockets while (a) a serving peer is
// killed out from under the in-flight transfer and (b) the recovering
// replica itself is killed and restarted from nothing. Both casualties
// must converge back to the healthy frontier.
void run_with_mid_transfer_kills(Stack stack, const std::string& tag) {
  Options options = cluster_options(stack);
  options.measure_us = 8'000'000;
  // Write-heavy with fat values so recovery is a genuine multi-chunk
  // streaming transfer; small chunks + a tight in-flight budget stretch
  // the transfer window the kills land in.
  options.get_fraction = 0.1;
  options.value_min_bytes = 512;
  options.value_max_bytes = 512;
  options.key_space = 4096;
  options.protocol.checkpoint_interval = 10;
  options.protocol.state_chunk_bytes = 8 * 1024;
  options.protocol.state_inflight_max_bytes = 32 * 1024;
  options.protocol.state_chunk_timeout_us = 100'000;

  LoopbackCluster cluster(options, tag);
  for (ReplicaId r = 0; r < 4; ++r) {
    ASSERT_TRUE(cluster.start_replica(r));
  }

  std::atomic<bool> chaos_ok{true};
  std::thread chaos([&] {
    // Let the healthy cluster commit past a checkpoint boundary before the
    // first kill, so every rebooted incarnation (a fresh process with empty
    // state) has a stable snapshot it *must* stream. Condition-driven, not
    // sleep-driven: sanitizer builds run an order of magnitude slower and
    // fixed sleeps would land the kills before any checkpoint exists.
    const SeqNum boundary = 2 * options.protocol.checkpoint_interval;
    if (!wait_for([&] { return cluster.node(0).last_executed() >= boundary; },
                  30'000)) {
      chaos_ok.store(false);
      return;
    }
    cluster.stop_replica(3);  // misses >= 1 checkpoint while down
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    if (!cluster.start_replica(3)) {
      chaos_ok.store(false);
      return;
    }
    // Once the transfer is verifiably in flight, kill a serving peer out
    // from under it: its outstanding ranges must time out and refetch.
    (void)wait_for(
        [&] { return cluster.node(3).state_transfer_stats().chunks_accepted > 0; },
        15'000);
    cluster.stop_replica(2);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    if (!cluster.start_replica(2)) {
      chaos_ok.store(false);
      return;
    }
    // Kill the recovering replica itself (mid-transfer or just after: a
    // fresh process must redo the verified fetch from scratch either way).
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    cluster.stop_replica(3);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (!cluster.start_replica(3)) {
      chaos_ok.store(false);
    }
  });

  const Report report = cluster.run_loadgen();
  chaos.join();
  ASSERT_TRUE(chaos_ok.load());
  // No `sustained` assertion: while replica 2 is down AND replica 3 is
  // still behind, only 2 < 2f+1 current replicas remain and commits may
  // legitimately stall until recovery completes.
  EXPECT_GT(report.completed_ops, 0u);

  // Once traffic stops, sequence numbers committed above the newest stable
  // checkpoint are not retransmitted to a late joiner (the frontier can run
  // up to the watermark window past the stable point with only two replicas
  // executing), so the guaranteed recovery property is convergence to the
  // newest *stable* checkpoint: a verified streaming transfer must carry
  // every casualty at least that far, and it must not be stuck fetching.
  const bool converged = wait_for(
      [&] {
        const SeqNum stable = std::max(cluster.node(0).last_stable(),
                                       cluster.node(1).last_stable());
        return stable > 0 && !cluster.node(2).awaiting_state() &&
               !cluster.node(3).awaiting_state() &&
               cluster.node(2).last_executed() >= stable &&
               cluster.node(3).last_executed() >= stable;
      },
      // Generous: under a sanitizer with the full suite competing for
      // cores, the five processes of this cluster run heavily starved.
      120'000);
  EXPECT_TRUE(converged)
      << "frontier=" << cluster.node(0).last_executed()
      << " stable=" << cluster.node(0).last_stable()
      << " r2=" << cluster.node(2).last_executed()
      << " r2_awaiting=" << cluster.node(2).awaiting_state()
      << " r2_accepted=" << cluster.node(2).state_transfer_stats().chunks_accepted
      << " r3=" << cluster.node(3).last_executed()
      << " r3_awaiting=" << cluster.node(3).awaiting_state()
      << " r3_accepted=" << cluster.node(3).state_transfer_stats().chunks_accepted;
  EXPECT_GT(cluster.node(0).last_executed(), 0u);

  // Replica 3's final incarnation started from an empty state mid-run: it
  // must have streamed a verified snapshot, not replayed from seq 1.
  const pbft::StateTransferStats stats = cluster.node(3).state_transfer_stats();
  EXPECT_GE(stats.transfers_completed, 1u);
  EXPECT_GT(stats.chunks_accepted, 0u);
  EXPECT_GT(cluster.node(3).transport().stats().state_frames_in, 0u);
  EXPECT_GT(cluster.node(0).transport().stats().state_frames_out +
                cluster.node(1).transport().stats().state_frames_out,
            0u);
}

TEST(TcpCluster, PbftRecoversThroughMidTransferKills) {
  run_with_mid_transfer_kills(Stack::Pbft, "pbft_xfer");
}

TEST(TcpCluster, SplitbftRecoversThroughMidTransferKills) {
  run_with_mid_transfer_kills(Stack::Splitbft, "split_xfer");
}

// Sharded loopback: two independent 4-replica groups + one loadgen whose
// clients are shard routers, over real unix-domain sockets. A replica of
// shard 1 is killed and restarted mid-run (2PC participants keep voting
// on the remaining 2f+1), and the run ends with the torn-write audit
// reading every multi-op group back through the protocol.
void run_sharded_loopback(Stack stack, const std::string& tag) {
  Options options = cluster_options(stack);
  options.clients = 32;
  options.shards = 2;
  options.cross_shard_fraction = 0.2;
  options.multi_keys = 2;
  options.multi_groups = 12;
  options.key_space = 512;

  std::vector<std::string> flat_addrs;
  for (std::uint32_t node = 0; node < options.shards * 5; ++node) {
    flat_addrs.push_back("unix:/tmp/sbft_" + tag + "_" +
                         std::to_string(::getpid()) + "_" +
                         std::to_string(node) + ".sock");
  }
  const auto topologies =
      sharded_topologies(options.shards, 4, 1, flat_addrs);

  // nodes[s][r]: each shard's replicas run from that shard's derived
  // seed, exactly as separate processes launched by run_cluster.py would.
  std::vector<std::vector<std::unique_ptr<ReplicaNode>>> nodes(
      options.shards);
  const auto start_replica = [&](std::uint32_t s, ReplicaId r) {
    nodes[s][r] = std::make_unique<ReplicaNode>(
        shard_options(options, s), topologies[s], r, fast_reconnect());
    return nodes[s][r]->start();
  };
  for (std::uint32_t s = 0; s < options.shards; ++s) {
    nodes[s].resize(4);
    for (ReplicaId r = 0; r < 4; ++r) {
      ASSERT_TRUE(start_replica(s, r));
    }
  }

  std::atomic<bool> done{false};
  std::atomic<bool> restart_ok{true};
  std::thread chaos([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    if (done.load()) return;
    nodes[1][3].reset();
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    if (done.load()) return;
    restart_ok.store(start_replica(1, 3));
  });

  const Report report =
      run_sharded_tcp_workload(options, topologies, 0, fast_reconnect());
  done.store(true);
  chaos.join();
  EXPECT_TRUE(restart_ok.load());

  EXPECT_GT(report.completed_ops, 0u);
  EXPECT_TRUE(report.sustained);
  EXPECT_GT(report.sharding.multi_ops, 0u);
  EXPECT_GT(report.sharding.cross_shard_tx, 0u);
  EXPECT_GT(report.sharding.tx_commits, 0u);
  // The audit read every group back over the sockets: no torn writes.
  EXPECT_EQ(report.sharding.groups_checked, options.multi_groups);
  EXPECT_EQ(report.sharding.torn_groups, 0u);
  EXPECT_GT(report.transport.frames_out, 0u);
}

TEST(TcpShardedCluster, PbftCrossShardLoadStaysAtomicThroughRestart) {
  run_sharded_loopback(Stack::Pbft, "shpbft");
}

TEST(TcpShardedCluster, SplitbftCrossShardLoadStaysAtomicThroughRestart) {
  run_sharded_loopback(Stack::Splitbft, "shsplit");
}

TEST(TcpShardedCluster, TopologySlicingAndShardSeeds) {
  std::vector<std::string> flat_addrs;
  for (int node = 0; node < 12; ++node) {
    flat_addrs.push_back("host:" + std::to_string(18000 + node));
  }
  const auto topologies = sharded_topologies(2, 4, 2, flat_addrs);
  ASSERT_EQ(topologies.size(), 2u);
  for (std::uint32_t s = 0; s < 2; ++s) {
    EXPECT_EQ(topologies[s].replicas, 4u);
    EXPECT_EQ(topologies[s].loadgens, 2u);
    ASSERT_EQ(topologies[s].addrs.size(), 6u);
    for (std::uint32_t node = 0; node < 6; ++node) {
      EXPECT_EQ(topologies[s].addrs[node], flat_addrs[s * 6 + node]);
    }
  }

  Options options;
  options.seed = 42;
  const Options s0 = shard_options(options, 0);
  const Options s1 = shard_options(options, 1);
  EXPECT_NE(s0.seed, s1.seed);
  EXPECT_NE(s0.seed, options.seed);  // shard 0 is not the raw seed
  EXPECT_EQ(s0.seed, shard_options(options, 0).seed);  // deterministic
}

TEST(TcpCluster, RouteMapsEveryPrincipalToItsHost) {
  ClusterTopology topology;
  topology.replicas = 4;
  topology.loadgens = 2;
  const auto route = topology.route();
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_EQ(route(principal::pbft_replica(r)), r);
    EXPECT_EQ(route(principal::splitbft_env(r)), r);
    for (const Compartment c :
         {Compartment::Preparation, Compartment::Confirmation,
          Compartment::Execution}) {
      EXPECT_EQ(route(principal::enclave({r, c})), r);
    }
  }
  // Clients round-robin across the loadgen nodes.
  EXPECT_EQ(route(principal::client(kFirstClientId)), 4u);
  EXPECT_EQ(route(principal::client(kFirstClientId + 1)), 5u);
  EXPECT_EQ(route(principal::client(kFirstClientId + 2)), 4u);
}

}  // namespace
}  // namespace sbft::runtime::workload
