// Unit tests for the virtual-time performance model.
#include <gtest/gtest.h>

#include "runtime/bench_harness.hpp"
#include "runtime/perf_model.hpp"

namespace sbft::runtime {
namespace {

TEST(Resource, BooksSequentially) {
  Resource r;
  EXPECT_EQ(r.book(100, 50), 150u);   // idle: starts at ready time
  EXPECT_EQ(r.book(120, 30), 180u);   // busy: queues behind prior work
  EXPECT_EQ(r.book(500, 10), 510u);   // idle again
  EXPECT_EQ(r.total_busy_us, 90u);
}

TEST(Resource, ZeroServiceIsFree) {
  Resource r;
  EXPECT_EQ(r.book(100, 0), 100u);
  EXPECT_EQ(r.total_busy_us, 0u);
}

TEST(CostProfile, SimulationModeRemovesCrossings) {
  CostProfile p;
  EXPECT_GT(p.sgx.crossing_cost(1024, 1024), 0u);
  p.sgx = tee::CostModel::simulation();
  EXPECT_EQ(p.sgx.crossing_cost(1024, 1024), 0u);
}

TEST(BenchHarness, SmallPointsProduceThroughput) {
  // Tiny smoke points — full sweeps live in bench/.
  for (const System system :
       {System::Pbft, System::Splitbft, System::SplitbftSingle}) {
    BenchPoint point;
    point.system = system;
    point.workload = Workload::KvStore;
    point.clients = 4;
    point.batched = false;
    point.warmup_us = 30'000;
    point.measure_us = 80'000;
    const BenchResult result = run_bench_point(point);
    EXPECT_GT(result.ops_per_sec, 100.0) << to_string(system);
    EXPECT_GT(result.mean_latency_ms, 0.0) << to_string(system);
  }
}

TEST(BenchHarness, SplitbftSlowerThanPbftAndSimFaster) {
  const auto run = [](System system) {
    BenchPoint point;
    point.system = system;
    point.workload = Workload::KvStore;
    point.clients = 20;
    point.batched = false;
    point.warmup_us = 50'000;
    point.measure_us = 150'000;
    return run_bench_point(point).ops_per_sec;
  };
  const double pbft = run(System::Pbft);
  const double split = run(System::Splitbft);
  const double sim = run(System::SplitbftSim);
  const double single = run(System::SplitbftSingle);

  // The paper's ordering: PBFT > SplitBFT-sim > SplitBFT > single-thread.
  EXPECT_GT(pbft, split);
  EXPECT_GT(sim, split);
  EXPECT_GT(split, single);
  // And the ratio lands in the paper's reported band (43-74%).
  EXPECT_GT(split / pbft, 0.40);
  EXPECT_LT(split / pbft, 0.80);
}

TEST(BenchHarness, BlockchainSlowerThanKvOnSplitbft) {
  const auto run = [](Workload workload) {
    BenchPoint point;
    point.system = System::Splitbft;
    point.workload = workload;
    point.clients = 20;
    point.batched = false;
    point.warmup_us = 50'000;
    point.measure_us = 150'000;
    return run_bench_point(point).ops_per_sec;
  };
  EXPECT_GT(run(Workload::KvStore), run(Workload::Blockchain));
}

TEST(BenchHarness, EcallBreakdownPopulatedForSplitbft) {
  BenchPoint point;
  point.system = System::Splitbft;
  point.workload = Workload::KvStore;
  point.clients = 8;
  point.batched = false;
  point.warmup_us = 30'000;
  point.measure_us = 100'000;
  const BenchResult result = run_bench_point(point);
  EXPECT_GT(result.leader_ecalls.prep_us_per_req, 0.0);
  EXPECT_GT(result.leader_ecalls.conf_us_per_req, 0.0);
  EXPECT_GT(result.leader_ecalls.exec_us_per_req, 0.0);
}

}  // namespace
}  // namespace sbft::runtime
