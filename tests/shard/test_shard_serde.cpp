// Wire hardening for the sharding/2PC types: plausibility bounds before
// any allocation, truncation-at-every-byte, and the routing helpers
// (key_of / shard_of / classify / plan_multi) everything above relies on.
#include <gtest/gtest.h>

#include "apps/kv_store.hpp"
#include "common/serde.hpp"
#include "shard/router.hpp"

namespace sbft::apps {
namespace {

using kv::SubOp;
using kv::TxId;

[[nodiscard]] Bytes key(std::uint64_t i) { return kv::encode_key(i); }

[[nodiscard]] kv::MultiOp sample_multi() {
  kv::MultiOp multi;
  multi.subs = {SubOp{KvOp::Put, key(1), {}, Bytes{0xaa, 0xbb}},
                SubOp{KvOp::Cas, key(2), Bytes{0x01}, Bytes{0x02}},
                SubOp{KvOp::Del, key(3), {}, {}}};
  return multi;
}

TEST(ShardSerde, MultiRoundTrip) {
  const auto multi = sample_multi();
  const auto decoded = kv::decode_multi(kv::encode_multi(multi));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->subs.size(), multi.subs.size());
  for (std::size_t i = 0; i < multi.subs.size(); ++i) {
    EXPECT_EQ(decoded->subs[i], multi.subs[i]);
  }
}

TEST(ShardSerde, MultiTruncationAtEveryByteIsRejected) {
  const Bytes full = kv::encode_multi(sample_multi());
  for (std::size_t len = 0; len < full.size(); ++len) {
    const ByteView view{full.data(), len};
    EXPECT_FALSE(kv::decode_multi(view).has_value()) << "len=" << len;
    KvStore store;
    const auto reply = kv::decode_reply(store.execute(view));
    ASSERT_TRUE(reply.has_value()) << "len=" << len;
    EXPECT_EQ(reply->status, KvStatus::BadRequest) << "len=" << len;
  }
}

TEST(ShardSerde, PrepareTruncationAtEveryByteIsRejected) {
  const Bytes full = kv::encode_tx_prepare(TxId{7, 9}, 2, true, 100,
                                           sample_multi().subs);
  for (std::size_t len = 0; len < full.size(); ++len) {
    KvStore store;
    const auto reply =
        kv::decode_reply(store.execute(ByteView{full.data(), len}));
    ASSERT_TRUE(reply.has_value()) << "len=" << len;
    EXPECT_EQ(reply->status, KvStatus::BadRequest) << "len=" << len;
    // A rejected prepare must leave no partial locks behind.
    EXPECT_EQ(store.tx_footprint().locks, 0u) << "len=" << len;
  }
}

TEST(ShardSerde, TxRefTruncationAtEveryByteIsRejected) {
  for (const auto& full :
       {kv::encode_tx_commit(TxId{1, 2}), kv::encode_tx_abort(TxId{1, 2}),
        kv::encode_tx_resolve(TxId{1, 2})}) {
    for (std::size_t len = 0; len < full.size(); ++len) {
      KvStore store;
      const auto reply =
          kv::decode_reply(store.execute(ByteView{full.data(), len}));
      ASSERT_TRUE(reply.has_value());
      EXPECT_EQ(reply->status, KvStatus::BadRequest) << "len=" << len;
    }
  }
}

TEST(ShardSerde, BusyInfoTruncationAtEveryByteIsRejected) {
  const Bytes full = kv::encode_busy_info(kv::BusyInfo{TxId{3, 4}, 2});
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(kv::decode_busy_info(ByteView{full.data(), len}).has_value())
        << "len=" << len;
  }
  EXPECT_TRUE(kv::decode_busy_info(full).has_value());
}

TEST(ShardSerde, HostileSubCountCannotDriveAllocation) {
  // Claim 2^32-1 subs: the bound check must fire before any reserve.
  Writer w;
  w.u8(static_cast<std::uint8_t>(KvOp::Multi));
  w.u32(0xffffffffu);
  const Bytes op = std::move(w).take();
  EXPECT_FALSE(kv::decode_multi(op).has_value());
  KvStore store;
  const auto reply = kv::decode_reply(store.execute(op));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, KvStatus::BadRequest);
}

TEST(ShardSerde, OversizedAndEmptyBatchesAreRejected) {
  kv::MultiOp multi;
  EXPECT_FALSE(kv::decode_multi(kv::encode_multi(multi)).has_value());
  for (std::uint64_t i = 0; i <= kv::kMaxMultiSubs; ++i) {
    multi.subs.push_back(SubOp{KvOp::Put, key(i), {}, {}});
  }
  EXPECT_FALSE(kv::decode_multi(kv::encode_multi(multi)).has_value());
  EXPECT_FALSE(shard::plan_multi(multi, 4).has_value());
}

TEST(ShardSerde, SubOpKindIsValidated) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(KvOp::Multi));
  w.u32(1);
  w.u8(static_cast<std::uint8_t>(KvOp::Get));  // reads don't belong here
  w.bytes(key(1));
  w.bytes({});
  w.bytes({});
  EXPECT_FALSE(kv::decode_multi(std::move(w).take()).has_value());
}

TEST(ShardSerde, KeyOfExtractsSingleKeyOps) {
  const Bytes k = key(42);
  for (const auto& op :
       {kv::encode_put(k, Bytes{0x01}), kv::encode_get(k), kv::encode_del(k),
        kv::encode_cas(k, Bytes{0x01}, Bytes{0x02})}) {
    const auto view = kv::key_of(op);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(Bytes(view->begin(), view->end()), k);
  }
  EXPECT_FALSE(kv::key_of(kv::encode_multi(sample_multi())).has_value());
  EXPECT_FALSE(kv::key_of(kv::encode_tx_commit(TxId{1, 1})).has_value());
  EXPECT_FALSE(kv::key_of(Bytes{}).has_value());
}

TEST(ShardSerde, ClassifyPartitionsTheOpSpace) {
  EXPECT_EQ(kv::classify(kv::encode_get(key(1))), kv::OpKind::SingleKey);
  EXPECT_EQ(kv::classify(kv::encode_multi(sample_multi())),
            kv::OpKind::Multi);
  EXPECT_EQ(kv::classify(kv::encode_tx_resolve(TxId{1, 1})), kv::OpKind::Tx);
  EXPECT_EQ(kv::classify(Bytes{}), kv::OpKind::Invalid);
  EXPECT_EQ(kv::classify(Bytes{0x7f}), kv::OpKind::Invalid);
}

TEST(ShardSerde, ShardOfIsDeterministicAndCoversAllShards) {
  // Pinned values: the partition map is a wire-compatibility surface
  // (run_cluster.py and every process must agree).
  EXPECT_EQ(kv::shard_of(key(0), 4), kv::shard_of(key(0), 4));
  EXPECT_EQ(kv::shard_of(key(123), 1), 0u);
  std::vector<std::uint64_t> hits(4, 0);
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const auto s = kv::shard_of(key(i), 4);
    ASSERT_LT(s, 4u);
    ++hits[s];
  }
  for (const auto h : hits) {
    EXPECT_GT(h, 4096 / 8) << "suspiciously unbalanced partition";
  }
}

TEST(ShardSerde, PlanMultiSplitsByShardWithLowestHome) {
  kv::MultiOp multi;
  for (std::uint64_t i = 0; i < 16; ++i) {
    multi.subs.push_back(SubOp{KvOp::Put, key(i), {}, Bytes{0x01}});
  }
  const auto plan = shard::plan_multi(multi, 4);
  ASSERT_TRUE(plan.has_value());
  std::size_t total = 0;
  for (const auto& [shard, subs] : plan->by_shard) {
    ASSERT_LT(shard, 4u);
    for (const auto& sub : subs) {
      EXPECT_EQ(kv::shard_of(sub.key, 4), shard);
    }
    total += subs.size();
  }
  EXPECT_EQ(total, multi.subs.size());
  EXPECT_EQ(plan->home, plan->by_shard.begin()->first);
}

TEST(ShardSerde, ShardSeedSeparatesGroups) {
  EXPECT_NE(shard::shard_seed(42, 0), shard::shard_seed(42, 1));
  EXPECT_NE(shard::shard_seed(42, 0), shard::shard_seed(43, 0));
  EXPECT_EQ(shard::shard_seed(42, 3), shard::shard_seed(42, 3));
}

}  // namespace
}  // namespace sbft::apps
