// 2PC participant engine inside apps::KvStore: locks, pending
// transactions, deterministic home-lease expiry, idempotent decisions,
// and snapshot coverage of all of it.
#include <gtest/gtest.h>

#include "apps/kv_store.hpp"

namespace sbft::apps {
namespace {

using kv::SubOp;
using kv::TxId;

[[nodiscard]] Bytes key(std::uint64_t i) { return kv::encode_key(i); }
[[nodiscard]] Bytes val(const char* s) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(s);
  return Bytes(p, p + std::char_traits<char>::length(s));
}

[[nodiscard]] kv::Reply exec(KvStore& store, const Bytes& op) {
  const auto reply = kv::decode_reply(store.execute(op));
  EXPECT_TRUE(reply.has_value());
  return reply.value_or(kv::Reply{});
}

[[nodiscard]] std::vector<SubOp> puts(std::initializer_list<std::uint64_t> ks,
                                      const Bytes& value) {
  std::vector<SubOp> subs;
  for (const auto k : ks) subs.push_back(SubOp{KvOp::Put, key(k), {}, value});
  return subs;
}

TEST(KvTx, PrepareCommitAppliesAtomically) {
  KvStore store;
  const TxId tx{1000, 1};
  auto reply = exec(store, kv::encode_tx_prepare(tx, 0, true, 100,
                                                 puts({1, 2}, val("v"))));
  EXPECT_EQ(reply.status, KvStatus::Ok);
  // Locked, not yet applied.
  EXPECT_EQ(exec(store, kv::encode_get(key(1))).status, KvStatus::NotFound);
  EXPECT_EQ(store.tx_footprint().locks, 2u);
  EXPECT_EQ(store.tx_footprint().pending, 1u);
  EXPECT_EQ(store.tx_footprint().expiry_entries, 1u);

  reply = exec(store, kv::encode_tx_commit(tx));
  EXPECT_EQ(reply.status, KvStatus::TxCommitted);
  EXPECT_EQ(exec(store, kv::encode_get(key(1))).value, val("v"));
  EXPECT_EQ(exec(store, kv::encode_get(key(2))).value, val("v"));
  // Everything freed except the bounded decision record.
  const auto fp = store.tx_footprint();
  EXPECT_EQ(fp.locks, 0u);
  EXPECT_EQ(fp.pending, 0u);
  EXPECT_EQ(fp.expiry_entries, 0u);
  EXPECT_EQ(fp.decisions, 1u);
}

TEST(KvTx, AbortDiscardsAndFrees) {
  KvStore store;
  const TxId tx{1000, 1};
  EXPECT_EQ(exec(store, kv::encode_tx_prepare(tx, 0, true, 100,
                                              puts({7}, val("x"))))
                .status,
            KvStatus::Ok);
  EXPECT_EQ(exec(store, kv::encode_tx_abort(tx)).status, KvStatus::TxAborted);
  EXPECT_EQ(exec(store, kv::encode_get(key(7))).status, KvStatus::NotFound);
  const auto fp = store.tx_footprint();
  EXPECT_EQ(fp.locks, 0u);
  EXPECT_EQ(fp.pending, 0u);
  EXPECT_EQ(fp.expiry_entries, 0u);
}

TEST(KvTx, DecisionsAreIdempotent) {
  KvStore store;
  const TxId tx{1000, 1};
  EXPECT_EQ(exec(store, kv::encode_tx_prepare(tx, 0, true, 100,
                                              puts({1}, val("a"))))
                .status,
            KvStatus::Ok);
  EXPECT_EQ(exec(store, kv::encode_tx_commit(tx)).status,
            KvStatus::TxCommitted);
  // Replays answer the recorded decision without re-applying.
  EXPECT_EQ(exec(store, kv::encode_put(key(1), val("b"))).status,
            KvStatus::Ok);
  EXPECT_EQ(exec(store, kv::encode_tx_commit(tx)).status,
            KvStatus::TxCommitted);
  EXPECT_EQ(exec(store, kv::encode_get(key(1))).value, val("b"));
  // A late duplicate prepare is answered by the decision too.
  EXPECT_EQ(exec(store, kv::encode_tx_prepare(tx, 0, true, 100,
                                              puts({1}, val("a"))))
                .status,
            KvStatus::TxCommitted);
  // An abort for an unknown txid records presumed-abort; a later commit
  // for it is refused.
  const TxId tx2{1000, 2};
  EXPECT_EQ(exec(store, kv::encode_tx_abort(tx2)).status, KvStatus::TxAborted);
  EXPECT_EQ(exec(store, kv::encode_tx_commit(tx2)).status,
            KvStatus::TxAborted);
}

TEST(KvTx, CommitForUnknownTxIsRefused) {
  KvStore store;
  EXPECT_EQ(exec(store, kv::encode_tx_commit(TxId{9, 9})).status,
            KvStatus::BadRequest);
}

TEST(KvTx, LocksBlockConflictingWrites) {
  KvStore store;
  EXPECT_EQ(exec(store, kv::encode_put(key(1), val("old"))).status,
            KvStatus::Ok);
  const TxId tx{1000, 1};
  EXPECT_EQ(exec(store, kv::encode_tx_prepare(tx, 3, false, 100,
                                              puts({1}, val("new"))))
                .status,
            KvStatus::Ok);
  // Single-key writes bounce with the blocker's identity + home shard.
  auto reply = exec(store, kv::encode_put(key(1), val("z")));
  ASSERT_EQ(reply.status, KvStatus::TxBusy);
  const auto busy = kv::decode_busy_info(reply.value);
  ASSERT_TRUE(busy.has_value());
  EXPECT_EQ(busy->blocker, tx);
  EXPECT_EQ(busy->home_shard, 3u);
  // Batches and competing prepares bounce the same way.
  kv::MultiOp multi;
  multi.subs = puts({1, 2}, val("m"));
  EXPECT_EQ(exec(store, kv::encode_multi(multi)).status, KvStatus::TxBusy);
  EXPECT_EQ(exec(store, kv::encode_tx_prepare(TxId{1001, 1}, 0, true, 100,
                                              puts({1}, val("w"))))
                .status,
            KvStatus::TxBusy);
  // Reads stay lock-free (read-committed).
  EXPECT_EQ(exec(store, kv::encode_get(key(1))).value, val("old"));
}

TEST(KvTx, CasValidatesAtPrepare) {
  KvStore store;
  EXPECT_EQ(exec(store, kv::encode_put(key(1), val("a"))).status,
            KvStatus::Ok);
  std::vector<SubOp> subs{SubOp{KvOp::Cas, key(1), val("b"), val("c")}};
  auto reply = exec(store, kv::encode_tx_prepare(TxId{1000, 1}, 0, true, 100,
                                                 subs));
  EXPECT_EQ(reply.status, KvStatus::CasMismatch);
  EXPECT_EQ(reply.value, val("a"));
  // A failed vote leaves nothing behind.
  EXPECT_EQ(store.tx_footprint().locks, 0u);
  EXPECT_EQ(store.tx_footprint().pending, 0u);
  // Cas against a missing key votes NotFound.
  std::vector<SubOp> missing{SubOp{KvOp::Cas, key(9), val("b"), val("c")}};
  EXPECT_EQ(exec(store, kv::encode_tx_prepare(TxId{1000, 2}, 0, true, 100,
                                              missing))
                .status,
            KvStatus::NotFound);
}

TEST(KvTx, HomeLeaseExpiresDeterministically) {
  KvStore store;
  const TxId tx{1000, 1};
  EXPECT_EQ(exec(store, kv::encode_tx_prepare(tx, 0, true, 3,
                                              puts({1}, val("v"))))
                .status,
            KvStatus::Ok);
  // Two more ops: lease (3 ops) not yet expired.
  EXPECT_EQ(exec(store, kv::encode_get(key(5))).status, KvStatus::NotFound);
  EXPECT_EQ(exec(store, kv::encode_tx_resolve(tx)).status,
            KvStatus::TxUndecided);
  // Third op after the prepare crosses the deadline: presumed abort.
  EXPECT_EQ(exec(store, kv::encode_get(key(5))).status, KvStatus::NotFound);
  EXPECT_EQ(exec(store, kv::encode_tx_resolve(tx)).status,
            KvStatus::TxAborted);
  // The late commit finds the abort decision — no torn write.
  EXPECT_EQ(exec(store, kv::encode_tx_commit(tx)).status, KvStatus::TxAborted);
  EXPECT_EQ(exec(store, kv::encode_get(key(1))).status, KvStatus::NotFound);
  const auto fp = store.tx_footprint();
  EXPECT_EQ(fp.locks, 0u);
  EXPECT_EQ(fp.pending, 0u);
  EXPECT_EQ(fp.expiry_entries, 0u);
}

TEST(KvTx, NonHomeNeverExpires) {
  KvStore store;
  const TxId tx{1000, 1};
  EXPECT_EQ(exec(store, kv::encode_tx_prepare(tx, 2, false, 3,
                                              puts({1}, val("v"))))
                .status,
            KvStatus::Ok);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(exec(store, kv::encode_get(key(5))).status, KvStatus::NotFound);
  }
  // Still pending: only the home shard may presume-abort.
  EXPECT_EQ(store.tx_footprint().pending, 1u);
  EXPECT_EQ(store.tx_footprint().expiry_entries, 0u);
  EXPECT_EQ(exec(store, kv::encode_tx_commit(tx)).status,
            KvStatus::TxCommitted);
  EXPECT_EQ(exec(store, kv::encode_get(key(1))).value, val("v"));
}

TEST(KvTx, ResolveUnknownRecordsPresumedAbort) {
  KvStore store;
  const TxId tx{42, 7};
  EXPECT_EQ(exec(store, kv::encode_tx_resolve(tx)).status,
            KvStatus::TxAborted);
  // The recorded presumed-abort refuses a later prepare of the same txid.
  EXPECT_EQ(exec(store, kv::encode_tx_prepare(tx, 0, true, 100,
                                              puts({1}, val("v"))))
                .status,
            KvStatus::TxAborted);
}

TEST(KvTx, DecisionTableIsFifoBounded) {
  KvStore store;
  store.set_decision_cap(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(exec(store, kv::encode_tx_abort(TxId{1, i})).status,
              KvStatus::TxAborted);
  }
  EXPECT_EQ(store.tx_footprint().decisions, 4u);
}

TEST(KvTx, MultiAppliesAtomicallyOrNotAtAll) {
  KvStore store;
  EXPECT_EQ(exec(store, kv::encode_put(key(1), val("a"))).status,
            KvStatus::Ok);
  kv::MultiOp bad;
  bad.subs = {SubOp{KvOp::Put, key(2), {}, val("x")},
              SubOp{KvOp::Cas, key(1), val("wrong"), val("y")}};
  EXPECT_EQ(exec(store, kv::encode_multi(bad)).status, KvStatus::CasMismatch);
  EXPECT_EQ(exec(store, kv::encode_get(key(2))).status, KvStatus::NotFound);

  kv::MultiOp good;
  good.subs = {SubOp{KvOp::Put, key(2), {}, val("x")},
               SubOp{KvOp::Cas, key(1), val("a"), val("y")},
               SubOp{KvOp::Del, key(1), {}, {}}};
  EXPECT_EQ(exec(store, kv::encode_multi(good)).status, KvStatus::Ok);
  EXPECT_EQ(exec(store, kv::encode_get(key(2))).value, val("x"));
  EXPECT_EQ(exec(store, kv::encode_get(key(1))).status, KvStatus::NotFound);
}

TEST(KvTx, SnapshotCoversTransactionState) {
  KvStore store;
  EXPECT_EQ(exec(store, kv::encode_put(key(1), val("committed"))).status,
            KvStatus::Ok);
  const TxId tx{1000, 1};
  EXPECT_EQ(exec(store, kv::encode_tx_prepare(tx, 0, true, 50,
                                              puts({2, 3}, val("pending"))))
                .status,
            KvStatus::Ok);
  EXPECT_EQ(exec(store, kv::encode_tx_abort(TxId{1000, 2})).status,
            KvStatus::TxAborted);

  // Restore into a fresh store: digest, locks and decisions must carry.
  KvStore copy;
  ASSERT_TRUE(copy.restore(store.snapshot()));
  EXPECT_EQ(copy.state_digest(), store.state_digest());
  EXPECT_EQ(copy.tx_footprint().locks, 2u);
  EXPECT_EQ(copy.tx_footprint().pending, 1u);
  EXPECT_EQ(copy.tx_footprint().expiry_entries, 1u);
  EXPECT_EQ(copy.tx_footprint().decisions, 1u);
  // Leases travel as ops-remaining: the restored clock restarts at zero
  // and expiry depends only on further ops, never on how many the source
  // had executed (which would leak op counts into the state digest).
  EXPECT_EQ(copy.executed_ops(), 0u);
  // The recovered replica enforces the same locks...
  EXPECT_EQ(exec(copy, kv::encode_put(key(2), val("z"))).status,
            KvStatus::TxBusy);
  // ...and can still commit the pending transaction.
  EXPECT_EQ(exec(copy, kv::encode_tx_commit(tx)).status,
            KvStatus::TxCommitted);
  EXPECT_EQ(exec(copy, kv::encode_get(key(3))).value, val("pending"));
}

TEST(KvTx, SnapshotWithoutTxStateKeepsLegacyFormat) {
  KvStore store;
  // Hand-built legacy snapshot (count + records, no tx section).
  Writer w;
  w.u64(1);
  w.bytes(key(1));
  w.bytes(val("v"));
  KvStore restored;
  ASSERT_TRUE(restored.restore(std::move(w).take()));
  EXPECT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored.tx_footprint().pending, 0u);
}

TEST(KvTx, StreamingSnapshotCarriesTxSection) {
  KvStore store;
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(exec(store, kv::encode_put(key(i), val("v"))).status,
              KvStatus::Ok);
  }
  const TxId tx{1000, 1};
  EXPECT_EQ(exec(store, kv::encode_tx_prepare(tx, 1, true, 50,
                                              puts({100, 101}, val("p"))))
                .status,
            KvStatus::Ok);

  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{7}, std::size_t{64}, std::size_t{1000},
        std::size_t{1} << 20}) {
    KvStore target;
    target.apply_begin(0);
    bool ok = true;
    store.snapshot_chunks(chunk, [&](ByteView data) {
      if (ok) ok = target.apply_chunk(data);
    });
    ASSERT_TRUE(ok) << "chunk=" << chunk;
    ASSERT_TRUE(target.apply_end()) << "chunk=" << chunk;
    EXPECT_EQ(target.state_digest(), store.state_digest());
    EXPECT_EQ(target.tx_footprint().locks, 2u);
    EXPECT_EQ(target.tx_footprint().pending, 1u);
  }
}

TEST(KvTx, StreamingApplyRejectsCorruptTxSection) {
  KvStore store;
  const TxId tx{1000, 1};
  EXPECT_EQ(exec(store, kv::encode_tx_prepare(tx, 0, true, 50,
                                              puts({1}, val("p"))))
                .status,
            KvStatus::Ok);
  Bytes snapshot = store.snapshot();
  // Truncating the tx section must fail apply_end, not corrupt state.
  snapshot.pop_back();
  KvStore target;
  target.apply_begin(0);
  (void)target.apply_chunk(snapshot);
  EXPECT_FALSE(target.apply_end());
  EXPECT_FALSE(target.restore(snapshot));
}

}  // namespace
}  // namespace sbft::apps
