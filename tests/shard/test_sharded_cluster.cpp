// End-to-end sharded cluster tests: routing, 2PC commit/abort atomicity,
// contention, coordinator crashes (timeout-abort and decision-replay),
// a Byzantine participant, and replica recovery with pending tx state.
#include <gtest/gtest.h>

#include <string>

#include "apps/kv_store.hpp"
#include "faults/shard_attack.hpp"
#include "runtime/sharded_cluster.hpp"

namespace sbft::runtime {
namespace {

namespace kv = apps::kv;
using apps::KvOp;
using apps::KvStatus;
using PbftPhase = shard::Router<pbft::Client>::Phase;

constexpr ClientId kClientA = kFirstClientId;
constexpr ClientId kClientB = kFirstClientId + 1;

[[nodiscard]] Bytes val(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

/// i-th distinct key (by search order) living on `target` of `shards`.
[[nodiscard]] Bytes key_on_shard(std::uint32_t shards, std::uint32_t target,
                                 std::uint64_t skip = 0) {
  for (std::uint64_t i = 0;; ++i) {
    Bytes k = kv::encode_key(i);
    if (kv::shard_of(k, shards) != target) continue;
    if (skip == 0) return k;
    --skip;
  }
}

[[nodiscard]] kv::MultiOp multi_put(std::vector<Bytes> keys,
                                    const Bytes& value) {
  kv::MultiOp multi;
  for (auto& k : keys) {
    multi.subs.push_back(kv::SubOp{KvOp::Put, std::move(k), {}, value});
  }
  return multi;
}

[[nodiscard]] std::optional<KvStatus> status_of(
    const std::optional<Bytes>& result) {
  if (!result) return std::nullopt;
  const auto reply = kv::decode_reply(*result);
  if (!reply) return std::nullopt;
  return reply->status;
}

[[nodiscard]] const apps::KvStore& store_of(ShardedPbftCluster& cluster,
                                            std::uint32_t shard, ReplicaId r) {
  return dynamic_cast<const apps::KvStore&>(
      cluster.group(shard).replica(r).app());
}

/// Every replica of every shard must hold zero locks and zero pending
/// transactions — the quiescent-state invariant after all 2PC traffic
/// has drained.
void expect_tx_quiescent(ShardedPbftCluster& cluster) {
  for (std::uint32_t s = 0; s < cluster.shards(); ++s) {
    for (ReplicaId r = 0; r < cluster.group(s).config().n; ++r) {
      const auto fp = store_of(cluster, s, r).tx_footprint();
      EXPECT_EQ(fp.locks, 0u) << "shard " << s << " replica " << r;
      EXPECT_EQ(fp.pending, 0u) << "shard " << s << " replica " << r;
    }
  }
}

/// Re-submits `op` until it lands TxCommitted (lock contention surfaces
/// as a TxBusy failure the caller retries as new work).
[[nodiscard]] bool drive_to_commit(ShardedPbftCluster& cluster, ClientId id,
                                   const Bytes& op, int max_attempts = 20) {
  for (int i = 0; i < max_attempts; ++i) {
    if (status_of(cluster.execute(id, op)) == KvStatus::TxCommitted) {
      return true;
    }
  }
  return false;
}

TEST(ShardedPbft, SingleKeyOpsRouteToTheirShardWithFastReads) {
  ShardedClusterOptions options;
  options.shards = 4;
  options.seed = 11;
  options.config.read_path = true;
  ShardedPbftCluster cluster(options);
  auto& router = cluster.add_client(kClientA);

  // A put routed to the wrong group would make the (always key-routed)
  // get come back NotFound — round-tripping every key is the routing
  // proof, no store introspection needed.
  for (std::uint64_t i = 0; i < 8; ++i) {
    const Bytes k = kv::encode_key(i);
    ASSERT_EQ(cluster.put(kClientA, k, kv::encode_key(i * 7)), KvStatus::Ok);
  }
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto got = cluster.get(kClientA, kv::encode_key(i));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->status, KvStatus::Ok);
    EXPECT_EQ(got->value, kv::encode_key(i * 7));
  }
  EXPECT_EQ(router.stats().single_key_ops, 16u);
  EXPECT_EQ(router.stats().multi_ops, 0u);

  // The PR-5 read fast path survives the routing layer.
  const auto read = cluster.execute_read(kClientA, kv::encode_get(
                                                       kv::encode_key(3)));
  ASSERT_TRUE(read.has_value());
  EXPECT_GE(router.fast_reads(), 1u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(ShardedPbft, CrossShardMultiCommitsAtomically) {
  ShardedClusterOptions options;
  options.shards = 2;
  options.seed = 12;
  ShardedPbftCluster cluster(options);
  auto& router = cluster.add_client(kClientA);

  const Bytes k0 = key_on_shard(2, 0);
  const Bytes k1 = key_on_shard(2, 1);
  const auto status = status_of(
      cluster.execute(kClientA, kv::encode_multi(multi_put({k0, k1},
                                                           val("atomic")))));
  ASSERT_EQ(status, KvStatus::TxCommitted);
  for (const auto& k : {k0, k1}) {
    const auto got = cluster.get(kClientA, k);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->value, val("atomic"));
  }
  EXPECT_EQ(router.stats().cross_shard_tx, 1u);
  EXPECT_EQ(router.stats().tx_commits, 1u);
  const auto fp = router.gc_footprint();
  EXPECT_EQ(fp.active_tx, 0u);
  EXPECT_EQ(fp.waiting_shards, 0u);
  EXPECT_EQ(fp.prepared_shards, 0u);
  expect_tx_quiescent(cluster);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(ShardedPbft, SingleShardMultiBypassesTwoPhaseCommit) {
  ShardedClusterOptions options;
  options.shards = 2;
  options.seed = 13;
  ShardedPbftCluster cluster(options);
  auto& router = cluster.add_client(kClientA);

  const Bytes k0 = key_on_shard(2, 1, 0);
  const Bytes k1 = key_on_shard(2, 1, 1);
  const auto status = status_of(
      cluster.execute(kClientA, kv::encode_multi(multi_put({k0, k1},
                                                           val("local")))));
  ASSERT_EQ(status, KvStatus::Ok);  // one ordered op, no 2PC vocabulary
  EXPECT_EQ(router.stats().single_shard_multi, 1u);
  EXPECT_EQ(router.stats().cross_shard_tx, 0u);
  for (const auto& k : {k0, k1}) {
    const auto got = cluster.get(kClientA, k);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->value, val("local"));
  }
  expect_tx_quiescent(cluster);
}

TEST(ShardedPbft, CasVoteFailureAbortsEveryParticipant) {
  ShardedClusterOptions options;
  options.shards = 2;
  options.seed = 14;
  ShardedPbftCluster cluster(options);
  auto& router = cluster.add_client(kClientA);

  const Bytes k0 = key_on_shard(2, 0);
  const Bytes k1 = key_on_shard(2, 1);
  ASSERT_EQ(cluster.put(kClientA, k1, val("actual")), KvStatus::Ok);

  kv::MultiOp multi;
  multi.subs.push_back(kv::SubOp{KvOp::Put, k0, {}, val("torn?")});
  multi.subs.push_back(kv::SubOp{KvOp::Cas, k1, val("stale"), val("new")});
  const auto status =
      status_of(cluster.execute(kClientA, kv::encode_multi(multi)));
  ASSERT_EQ(status, KvStatus::CasMismatch);

  // Nothing was applied anywhere: the Put participant voted yes but the
  // coordinator unwound it before any apply.
  const auto got0 = cluster.get(kClientA, k0);
  ASSERT_TRUE(got0.has_value());
  EXPECT_EQ(got0->status, KvStatus::NotFound);
  const auto got1 = cluster.get(kClientA, k1);
  ASSERT_TRUE(got1.has_value());
  EXPECT_EQ(got1->value, val("actual"));
  EXPECT_EQ(router.stats().tx_aborts_vote, 1u);
  EXPECT_EQ(router.stats().tx_commits, 0u);
  expect_tx_quiescent(cluster);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(ShardedPbft, ContendingCoordinatorsSerialize) {
  ShardedClusterOptions options;
  options.shards = 2;
  options.seed = 15;
  options.router.busy_retries = 8;
  ShardedPbftCluster cluster(options);
  cluster.add_client(kClientA);
  cluster.add_client(kClientB);

  const Bytes k0 = key_on_shard(2, 0);
  const Bytes k1 = key_on_shard(2, 1);
  const Bytes op_a = kv::encode_multi(multi_put({k0, k1}, val("AAAA")));
  const Bytes op_b = kv::encode_multi(multi_put({k0, k1}, val("BBBB")));

  // Race the two prepares, then retry whichever coordinator lost.
  cluster.submit(kClientA, op_a);
  cluster.submit(kClientB, op_b);
  ASSERT_TRUE(cluster.run_until(
      [&] {
        return !cluster.router(kClientA).in_flight() &&
               !cluster.router(kClientB).in_flight();
      },
      20'000'000));
  if (status_of(cluster.results(kClientA).back()) != KvStatus::TxCommitted) {
    ASSERT_TRUE(drive_to_commit(cluster, kClientA, op_a));
  }
  if (status_of(cluster.results(kClientB).back()) != KvStatus::TxCommitted) {
    ASSERT_TRUE(drive_to_commit(cluster, kClientB, op_b));
  }

  // Serializability: whatever order they landed in, the two keys carry
  // the SAME value — a torn interleaving would mix AAAA and BBBB.
  const auto got0 = cluster.get(kClientA, k0);
  const auto got1 = cluster.get(kClientA, k1);
  ASSERT_TRUE(got0.has_value() && got1.has_value());
  EXPECT_EQ(got0->value, got1->value);
  expect_tx_quiescent(cluster);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(ShardedPbft, CoordinatorCrashBeforeDecisionAbortsEverywhere) {
  ShardedClusterOptions options;
  options.shards = 2;
  options.seed = 16;
  options.router.tx_expiry_ops = 3;  // lease expires under B's own traffic
  options.router.busy_retries = 8;
  ShardedPbftCluster cluster(options);
  cluster.add_client(kClientA);
  auto& router_b = cluster.add_client(kClientB);

  const Bytes k0 = key_on_shard(2, 0);
  const Bytes k1 = key_on_shard(2, 1);
  const Bytes k2 = key_on_shard(2, 1, 1);  // only in A's write set

  // A locks both shards, then dies before ever learning its votes. The
  // prepares are already ordered — the locks are durable server state.
  cluster.submit(kClientA,
                 kv::encode_multi(multi_put({k0, k1, k2}, val("AAAA"))));
  cluster.crash_client(kClientA);
  cluster.run_for(5'000'000);

  // B's conflicting transaction runs the termination protocol: resolve
  // at A's home answers TxUndecided until the lease expires, then the
  // presumed abort is replayed wherever B still hits A's locks.
  ASSERT_TRUE(drive_to_commit(
      cluster, kClientB, kv::encode_multi(multi_put({k0, k1}, val("BBBB")))));
  EXPECT_GE(router_b.stats().resolves, 1u);

  const auto got0 = cluster.get(kClientB, k0);
  const auto got1 = cluster.get(kClientB, k1);
  const auto got2 = cluster.get(kClientB, k2);
  ASSERT_TRUE(got0.has_value() && got1.has_value() && got2.has_value());
  EXPECT_EQ(got0->value, val("BBBB"));
  EXPECT_EQ(got1->value, val("BBBB"));
  // A's abort was atomic: no key of its write set survives, including
  // the one B never touched.
  EXPECT_EQ(got2->status, KvStatus::NotFound);
  expect_tx_quiescent(cluster);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(ShardedPbft, CoordinatorCrashAfterDecisionReplaysCommit) {
  ShardedClusterOptions options;
  options.shards = 2;
  options.seed = 17;
  ShardedPbftCluster cluster(options);
  cluster.add_client(kClientA);
  auto& router_b = cluster.add_client(kClientB);

  const Bytes kh = key_on_shard(2, 0);     // home-shard key
  const Bytes k1 = key_on_shard(2, 1, 0);  // B will contend here
  const Bytes k2 = key_on_shard(2, 1, 1);  // nobody else touches this

  // Crash the coordinator the moment its TxCommit is in flight at the
  // home shard: the decision gets ordered (and is durable), but the
  // fanout to shard 1 never happens — shard 1 stays locked.
  cluster.submit(kClientA,
                 kv::encode_multi(multi_put({kh, k1, k2}, val("AAAA"))));
  ASSERT_TRUE(cluster.run_until(
      [&] {
        return cluster.router(kClientA).phase() == PbftPhase::DecideHome;
      },
      10'000'000));
  cluster.crash_client(kClientA);
  cluster.run_for(10'000'000);

  // B's single-key write hits the stale lock, resolves at the home
  // shard, learns TxCommitted, and must finish A's commit — not abort
  // it — before taking the lock itself.
  ASSERT_EQ(cluster.put(kClientB, k1, val("BBBB")), KvStatus::Ok);
  EXPECT_EQ(router_b.stats().blocker_commit_replays, 1u);

  const auto goth = cluster.get(kClientB, kh);
  const auto got1 = cluster.get(kClientB, k1);
  const auto got2 = cluster.get(kClientB, k2);
  ASSERT_TRUE(goth.has_value() && got1.has_value() && got2.has_value());
  EXPECT_EQ(goth->value, val("AAAA"));  // applied at the decision
  EXPECT_EQ(got1->value, val("BBBB"));  // A's value, then B's overwrite
  EXPECT_EQ(got2->value, val("AAAA"));  // applied by B's replay
  expect_tx_quiescent(cluster);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(ShardedPbft, ByzantineParticipantVoteIsOutvoted) {
  ShardedClusterOptions options;
  options.shards = 2;
  options.seed = 18;
  ShardedPbftCluster cluster(options);
  auto& router = cluster.add_client(kClientA);

  // Replica 3 of shard 1 forges every failed vote into prepare-ok (with
  // a valid client MAC). The per-shard f+1 matching-reply quorum must
  // keep the honest outcome.
  auto& group = cluster.group(1);
  auto forger = std::make_shared<faults::KvReplyForger>(
      group.replica_actor(3), group.directory());
  group.harness().replace_actor(principal::pbft_replica(3), forger);

  const Bytes k0 = key_on_shard(2, 0);
  const Bytes k1 = key_on_shard(2, 1);
  ASSERT_EQ(cluster.put(kClientA, k1, val("actual")), KvStatus::Ok);

  kv::MultiOp multi;
  multi.subs.push_back(kv::SubOp{KvOp::Put, k0, {}, val("torn?")});
  multi.subs.push_back(kv::SubOp{KvOp::Cas, k1, val("stale"), val("new")});
  const auto status =
      status_of(cluster.execute(kClientA, kv::encode_multi(multi)));
  ASSERT_EQ(status, KvStatus::CasMismatch);
  EXPECT_GT(forger->forged(), 0u);

  const auto got0 = cluster.get(kClientA, k0);
  ASSERT_TRUE(got0.has_value());
  EXPECT_EQ(got0->status, KvStatus::NotFound);  // no torn write
  EXPECT_EQ(router.stats().tx_commits, 0u);

  // And with the liar still wired in, an honest transaction commits.
  ASSERT_EQ(status_of(cluster.execute(
                kClientA, kv::encode_multi(multi_put({k0, k1}, val("ok"))))),
            KvStatus::TxCommitted);
  expect_tx_quiescent(cluster);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(ShardedPbft, ReplicaRestoreCarriesPendingTxState) {
  ShardedClusterOptions options;
  options.shards = 2;
  options.seed = 19;
  options.config.checkpoint_interval = 5;
  options.config.batch_max = 1;
  options.router.tx_expiry_ops = 500;  // outlives the checkpoint traffic
  ShardedPbftCluster cluster(options);
  cluster.add_client(kClientA);
  cluster.add_client(kClientB);

  const Bytes k0 = key_on_shard(2, 0);
  const Bytes k1 = key_on_shard(2, 1);

  // Replica 3 of shard 0 is down while a coordinator locks the shard
  // and dies: the pending transaction exists only in its peers' state.
  cluster.crash_replica(0, 3);
  cluster.submit(kClientA, kv::encode_multi(multi_put({k0, k1}, val("AA"))));
  cluster.crash_client(kClientA);
  cluster.run_for(5'000'000);
  ASSERT_EQ(store_of(cluster, 0, 0).tx_footprint().pending, 1u);

  // Push shard 0 past a checkpoint so recovery must go through state
  // transfer — and the snapshot must carry the lock table with it. The
  // post-restore puts give the victim fresh checkpoint evidence.
  for (std::uint64_t i = 0; i < 12; ++i) {
    const Bytes k = key_on_shard(2, 0, 2 + i);
    ASSERT_EQ(cluster.put(kClientB, k, val("fill")), KvStatus::Ok);
  }
  cluster.restore_replica(0, 3);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const Bytes k = key_on_shard(2, 0, 20 + i);
    ASSERT_EQ(cluster.put(kClientB, k, val("fill")), KvStatus::Ok);
  }
  ASSERT_TRUE(cluster.run_until(
      [&] {
        return cluster.group(0).replica(3).last_executed() >=
               cluster.group(0).replica(0).last_executed();
      },
      60'000'000));

  const auto fp = store_of(cluster, 0, 3).tx_footprint();
  EXPECT_EQ(fp.pending, 1u);
  EXPECT_GE(fp.locks, 1u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(ShardedSplitbft, CrossShardCommitAndSingleKeyRouting) {
  ShardedClusterOptions options;
  options.shards = 2;
  options.seed = 20;
  ShardedSplitbftCluster cluster(options);
  auto& router = cluster.add_client(kClientA);

  const Bytes k0 = key_on_shard(2, 0);
  const Bytes k1 = key_on_shard(2, 1);
  ASSERT_EQ(status_of(cluster.execute(
                kClientA, kv::encode_multi(multi_put({k0, k1}, val("sb"))))),
            KvStatus::TxCommitted);
  for (const auto& k : {k0, k1}) {
    const auto got = cluster.get(kClientA, k);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->status, KvStatus::Ok);
    EXPECT_EQ(got->value, val("sb"));
  }
  EXPECT_EQ(router.stats().tx_commits, 1u);
  ASSERT_EQ(cluster.put(kClientA, k0, val("single")), KvStatus::Ok);
  const auto got = cluster.get(kClientA, k0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->value, val("single"));
  EXPECT_TRUE(cluster.check_agreement());
}

}  // namespace
}  // namespace sbft::runtime
