// Hybrid (MinBFT-style) baseline tests: normal operation, crash tolerance,
// USIG properties, and the compromised-TEE equivocation attack that breaks
// its safety (Table 1, hybrid row).
#include <gtest/gtest.h>

#include "apps/counter_app.hpp"
#include "common/serde.hpp"
#include "crypto/sha256.hpp"
#include "faults/hybrid_attack.hpp"
#include "runtime/hybrid_cluster.hpp"

namespace sbft::runtime {
namespace {

using apps::CounterApp;

[[nodiscard]] apps::AppFactory counter_factory() {
  return [] { return std::make_unique<CounterApp>(); };
}

[[nodiscard]] std::uint64_t counter_value(const Bytes& reply) {
  Reader r(reply);
  const std::uint64_t v = r.u64();
  EXPECT_TRUE(r.boolean());
  return v;
}

TEST(Usig, CreateVerifyRoundTrip) {
  crypto::KeyRing ring(crypto::Scheme::HmacShared, 1);
  ring.add_principal(principal::hybrid_replica(0));
  tee::MonotonicCounterService counters;
  hybrid::Usig usig(ring.signer(principal::hybrid_replica(0)), counters, 0);

  Digest d;
  d.bytes[0] = 1;
  const hybrid::UI ui1 = usig.create(d);
  const hybrid::UI ui2 = usig.create(d);
  EXPECT_EQ(ui1.counter, 1u);
  EXPECT_EQ(ui2.counter, 2u);  // strictly monotonic
  EXPECT_TRUE(hybrid::Usig::verify(*ring.verifier(),
                                   principal::hybrid_replica(0), d, ui1));

  // Wrong digest / wrong principal / tampered counter all fail.
  Digest other;
  other.bytes[0] = 2;
  EXPECT_FALSE(hybrid::Usig::verify(*ring.verifier(),
                                    principal::hybrid_replica(0), other, ui1));
  EXPECT_FALSE(hybrid::Usig::verify(*ring.verifier(),
                                    principal::hybrid_replica(1), d, ui1));
  hybrid::UI bad = ui1;
  bad.counter = 99;
  EXPECT_FALSE(hybrid::Usig::verify(*ring.verifier(),
                                    principal::hybrid_replica(0), d, bad));
}

TEST(Usig, IntactTeeRefusesToForge) {
  crypto::KeyRing ring(crypto::Scheme::HmacShared, 2);
  ring.add_principal(principal::hybrid_replica(0));
  tee::MonotonicCounterService counters;
  hybrid::Usig usig(ring.signer(principal::hybrid_replica(0)), counters, 0);

  Digest d;
  const hybrid::UI forged = usig.forge(d, 7);
  EXPECT_TRUE(forged.signature.empty());  // no signature without compromise
  EXPECT_FALSE(hybrid::Usig::verify(*ring.verifier(),
                                    principal::hybrid_replica(0), d, forged));

  usig.compromise();
  const hybrid::UI evil = usig.forge(d, 7);
  EXPECT_TRUE(hybrid::Usig::verify(*ring.verifier(),
                                   principal::hybrid_replica(0), d, evil));
}

TEST(Usig, UiSerializationRoundTrip) {
  hybrid::UI ui;
  ui.counter = 42;
  ui.signature = to_bytes("sig");
  const auto decoded = hybrid::UI::deserialize(ui.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->counter, 42u);
  EXPECT_EQ(decoded->signature, to_bytes("sig"));
}

TEST(HybridMessages, PrepareCommitRoundTrip) {
  hybrid::HybridPrepare prep;
  prep.view = 1;
  prep.request.client = 1001;
  prep.request.timestamp = 3;
  prep.request.payload = to_bytes("op");
  prep.ui.counter = 5;
  prep.ui.signature = to_bytes("s");
  prep.sender = 0;
  const auto dprep = hybrid::HybridPrepare::deserialize(prep.serialize());
  ASSERT_TRUE(dprep.has_value());
  EXPECT_EQ(dprep->ui.counter, 5u);
  EXPECT_EQ(dprep->ui_digest(), prep.ui_digest());

  hybrid::HybridCommit commit;
  commit.prepare = prep;
  commit.ui.counter = 9;
  commit.sender = 1;
  const auto dcommit = hybrid::HybridCommit::deserialize(commit.serialize());
  ASSERT_TRUE(dcommit.has_value());
  EXPECT_EQ(dcommit->prepare.ui.counter, 5u);
  EXPECT_EQ(dcommit->ui.counter, 9u);
}

TEST(HybridIntegration, NormalOperation) {
  HybridClusterOptions options;
  options.seed = 1;
  HybridCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);

  std::uint64_t expected = 0;
  for (int i = 1; i <= 10; ++i) {
    expected += 1;
    const auto result = cluster.execute(kFirstClientId, CounterApp::encode_add(1));
    ASSERT_TRUE(result.has_value()) << "request " << i;
    EXPECT_EQ(counter_value(*result), expected);
  }
  EXPECT_TRUE(cluster.check_agreement());
  // All replicas executed everything (2f+1 = 3 replicas).
  for (ReplicaId r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster.replica(r).last_executed_counter(), 10u) << "r" << r;
  }
}

TEST(HybridIntegration, UsesOnlyTwoFPlusOneReplicas) {
  HybridClusterOptions options;
  options.f = 1;
  HybridCluster cluster(options, counter_factory());
  EXPECT_EQ(cluster.config().n, 3u);
}

TEST(HybridIntegration, ToleratesCrashedBackup) {
  HybridClusterOptions options;
  options.seed = 2;
  HybridCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);
  cluster.crash_replica(2);  // one backup

  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(
        cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value())
        << "request " << i;
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(HybridIntegration, MultipleClients) {
  HybridClusterOptions options;
  options.seed = 3;
  HybridCluster cluster(options, counter_factory());
  for (ClientId c = kFirstClientId; c < kFirstClientId + 3; ++c) {
    cluster.add_client(c);
  }
  for (ClientId c = kFirstClientId; c < kFirstClientId + 3; ++c) {
    ASSERT_TRUE(
        cluster.execute(c, CounterApp::encode_add(1)).has_value());
  }
  cluster.harness().run_for(1'000'000);
  const auto& app =
      dynamic_cast<const CounterApp&>(cluster.replica(0).app());
  EXPECT_EQ(app.value(), 3u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(HybridAttack, CompromisedUsigBreaksAgreement) {
  // Table 1, hybrid row: ONE compromised TEE costs integrity.
  HybridClusterOptions options;
  options.seed = 4;
  HybridCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);

  // Compromise the primary's USIG and hand it to the attack controller
  // that replaces the primary.
  auto usig = cluster.replica(0).usig();
  usig->compromise();
  auto attack = std::make_shared<faults::HybridUsigAttack>(
      cluster.config(), 0, usig, cluster.directory());
  cluster.harness().replace_actor(principal::hybrid_replica(0), attack);

  // The client request triggers the double-signed counter.
  cluster.harness().inject(cluster.client(kFirstClientId)
                               .client()
                               .submit(CounterApp::encode_add(1),
                                       cluster.harness().now()));
  cluster.harness().run_for(5'000'000);

  EXPECT_TRUE(attack->attack_launched());
  // The two correct backups executed DIFFERENT requests at counter 1:
  // safety is gone with a single broken trusted component.
  EXPECT_FALSE(cluster.check_agreement());
}

TEST(HybridAttack, IntactUsigDefeatsSameAttack) {
  // The identical attack WITHOUT compromising the TEE: forged UIs carry no
  // valid signature, backups reject them, and no divergence occurs.
  HybridClusterOptions options;
  options.seed = 5;
  HybridCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);

  auto usig = cluster.replica(0).usig();  // NOT compromised
  auto attack = std::make_shared<faults::HybridUsigAttack>(
      cluster.config(), 0, usig, cluster.directory());
  cluster.harness().replace_actor(principal::hybrid_replica(0), attack);

  cluster.harness().inject(cluster.client(kFirstClientId)
                               .client()
                               .submit(CounterApp::encode_add(1),
                                       cluster.harness().now()));
  cluster.harness().run_for(5'000'000);

  EXPECT_TRUE(attack->attack_launched());
  EXPECT_TRUE(cluster.check_agreement());
  for (ReplicaId r = 1; r < 3; ++r) {
    EXPECT_EQ(cluster.replica(r).last_executed_counter(), 0u) << "r" << r;
  }
}

}  // namespace
}  // namespace sbft::runtime
