#include <gtest/gtest.h>

#include "sim/scheduler.hpp"
#include "sim/sim_network.hpp"

namespace sbft::sim {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.at(300, [&] { order.push_back(3); });
  sched.at(100, [&] { order.push_back(1); });
  sched.at(200, [&] { order.push_back(2); });
  EXPECT_EQ(sched.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 300u);
}

TEST(Scheduler, SameTimeIsFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.at(100, [&order, i] { order.push_back(i); });
  }
  (void)sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, AfterIsRelative) {
  Scheduler sched;
  Micros fired_at = 0;
  sched.at(100, [&] { sched.after(50, [&] { fired_at = sched.now(); }); });
  (void)sched.run();
  EXPECT_EQ(fired_at, 150u);
}

TEST(Scheduler, PastEventsClampToNow) {
  Scheduler sched;
  bool fired = false;
  sched.at(100, [&] {
    sched.at(10, [&] { fired = true; });  // in the past
  });
  (void)sched.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sched.now(), 100u);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler sched;
  int count = 0;
  sched.at(100, [&] { ++count; });
  sched.at(200, [&] { ++count; });
  sched.at(300, [&] { ++count; });
  (void)sched.run_until(250);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sched.now(), 250u);
  EXPECT_EQ(sched.pending(), 1u);
}

TEST(Scheduler, MaxEventsBound) {
  Scheduler sched;
  // Self-perpetuating event chain.
  std::function<void()> loop = [&] { sched.after(1, loop); };
  sched.after(1, loop);
  EXPECT_EQ(sched.run(100), 100u);
}

[[nodiscard]] net::Envelope make_env(principal::Id src, principal::Id dst) {
  net::Envelope env;
  env.src = src;
  env.dst = dst;
  env.type = 1;
  env.payload = to_bytes("x");
  return env;
}

TEST(SimNetwork, DeliversWithinDelayBounds) {
  Scheduler sched;
  LinkParams params;
  params.min_delay_us = 100;
  params.max_delay_us = 200;
  SimNetwork net(sched, Rng(1), params);

  Micros delivered_at = 0;
  net.register_endpoint(2, [&](net::Envelope) { delivered_at = sched.now(); });
  net.send(make_env(1, 2));
  (void)sched.run();
  EXPECT_GE(delivered_at, 100u);
  EXPECT_LE(delivered_at, 200u);
  EXPECT_EQ(net.delivered(), 1u);
}

TEST(SimNetwork, DropsToUnknownEndpoints) {
  Scheduler sched;
  SimNetwork net(sched, Rng(1));
  net.send(make_env(1, 99));
  (void)sched.run();
  EXPECT_EQ(net.dropped(), 1u);
}

TEST(SimNetwork, DropProbabilityDropsRoughlyThatShare) {
  Scheduler sched;
  LinkParams params;
  params.drop_prob = 0.5;
  SimNetwork net(sched, Rng(7), params);
  int received = 0;
  net.register_endpoint(2, [&](net::Envelope) { ++received; });
  for (int i = 0; i < 1000; ++i) net.send(make_env(1, 2));
  (void)sched.run();
  EXPECT_GT(received, 350);
  EXPECT_LT(received, 650);
}

TEST(SimNetwork, DuplicateProbability) {
  Scheduler sched;
  LinkParams params;
  params.duplicate_prob = 1.0;  // always duplicate
  SimNetwork net(sched, Rng(9), params);
  int received = 0;
  net.register_endpoint(2, [&](net::Envelope) { ++received; });
  net.send(make_env(1, 2));
  (void)sched.run();
  EXPECT_EQ(received, 2);
}

TEST(SimNetwork, PartitionBlocksCrossGroupTraffic) {
  Scheduler sched;
  SimNetwork net(sched, Rng(2));
  int received = 0;
  net.register_endpoint(1, [&](net::Envelope) { ++received; });
  net.register_endpoint(2, [&](net::Envelope) { ++received; });
  net.register_endpoint(3, [&](net::Envelope) { ++received; });
  net.set_partition({{1, 2}, {3}});

  net.send(make_env(1, 2));  // same group: delivered
  net.send(make_env(1, 3));  // cross group: dropped
  (void)sched.run();
  EXPECT_EQ(received, 1);

  net.heal_partition();
  net.send(make_env(1, 3));
  (void)sched.run();
  EXPECT_EQ(received, 2);
}

TEST(SimNetwork, PerLinkOverride) {
  Scheduler sched;
  SimNetwork net(sched, Rng(3));
  int received = 0;
  net.register_endpoint(2, [&](net::Envelope) { ++received; });
  LinkParams dead;
  dead.drop_prob = 1.0;
  net.set_link(1, 2, dead);
  net.send(make_env(1, 2));
  net.send(make_env(5, 2));  // other links unaffected
  (void)sched.run();
  EXPECT_EQ(received, 1);
}

TEST(SimNetwork, InterceptorControlsDelivery) {
  Scheduler sched;
  SimNetwork net(sched, Rng(4));
  std::vector<principal::Id> deliveries;
  net.register_endpoint(2, [&](net::Envelope e) { deliveries.push_back(e.dst); });
  net.register_endpoint(3, [&](net::Envelope e) { deliveries.push_back(e.dst); });

  // Adversary: redirect everything to endpoint 3 and duplicate it.
  net.set_interceptor([](const net::Envelope& env)
                          -> std::optional<std::vector<
                              std::pair<net::Envelope, Micros>>> {
    net::Envelope redirected = env;
    redirected.dst = 3;
    return std::vector<std::pair<net::Envelope, Micros>>{
        {redirected, 0}, {redirected, 10}};
  });
  net.send(make_env(1, 2));
  (void)sched.run();
  EXPECT_EQ(deliveries, (std::vector<principal::Id>{3, 3}));

  net.set_interceptor(nullptr);
  net.send(make_env(1, 2));
  (void)sched.run();
  EXPECT_EQ(deliveries.size(), 3u);
}

TEST(SimNetwork, DeterministicGivenSeed) {
  const auto run_once = [](std::uint64_t seed) {
    Scheduler sched;
    LinkParams params;
    params.drop_prob = 0.3;
    SimNetwork net(sched, Rng(seed), params);
    std::vector<Micros> times;
    net.register_endpoint(2, [&](net::Envelope) { times.push_back(sched.now()); });
    for (int i = 0; i < 50; ++i) net.send(make_env(1, 2));
    (void)sched.run();
    return times;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

}  // namespace
}  // namespace sbft::sim
