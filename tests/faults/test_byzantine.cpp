// Byzantine fault-injection suite — the empirical backbone of the Table-1
// fault-model comparison:
//  * plain PBFT loses integrity with f+1 compromised replicas;
//  * SplitBFT keeps safety with an attacker on ALL hosts plus f faulty
//    enclaves of EACH compartment type;
//  * confidentiality survives full environment compromise but falls with a
//    faulty Execution enclave.
#include <gtest/gtest.h>

#include "apps/counter_app.hpp"
#include "apps/kv_store.hpp"
#include "faults/byzantine_compartments.hpp"
#include "faults/byzantine_env.hpp"
#include "faults/pbft_attack.hpp"
#include "runtime/pbft_cluster.hpp"
#include "runtime/splitbft_cluster.hpp"

namespace sbft::runtime {
namespace {

using apps::CounterApp;

[[nodiscard]] splitbft::ExecAppFactory counter_factory() {
  return splitbft::plain_app([] { return std::make_unique<CounterApp>(); });
}

// ---------------------------------------------------------------- PBFT

// n=4, f=1, attacker controls primary + one backup (f+1 = 2 faults):
// two honest replicas commit DIFFERENT batches at sequence 1.
class PbftEquivocation : public ::testing::Test {
 protected:
  void run_attack(bool expect_divergence) {
    PbftClusterOptions options;
    options.seed = 32;
    options.config.batch_max = 1;
    PbftCluster cluster(options,
                        [] { return std::make_unique<CounterApp>(); });
    cluster.add_client(kFirstClientId);

    // Attacker with the keys of replicas 0 (primary) and 1.
    auto attack = std::make_shared<faults::PbftEquivocationAttack>(
        cluster.config(), cluster.keyring().signer(principal::pbft_replica(0)),
        cluster.keyring().signer(principal::pbft_replica(1)), 0, 1);
    cluster.harness().replace_actor(principal::pbft_replica(0), attack);
    cluster.harness().replace_actor(principal::pbft_replica(1), attack);

    cluster.harness().inject(cluster.client(kFirstClientId)
                                 .client()
                                 .submit(CounterApp::encode_add(1),
                                         cluster.harness().now()));
    cluster.harness().run_for(5'000'000);

    EXPECT_TRUE(attack->attack_launched());
    EXPECT_EQ(cluster.check_agreement(), !expect_divergence);
  }
};

TEST_F(PbftEquivocation, TwoColludingReplicasSplitTheHonestOnes) {
  run_attack(/*expect_divergence=*/true);
}

// -------------------------------------------------------------- SplitBFT

TEST(SplitByzantine, EquivocatingPrepPrimaryCannotBreakAgreement) {
  SplitClusterOptions options;
  options.seed = 41;
  options.config.batch_max = 1;
  // Replica 0's Preparation enclave is compromised and equivocates.
  options.compartment_faults[0] = [](ReplicaId r,
                                     const crypto::KeyRing& keyring) {
    return [r, &keyring](Compartment type,
                         std::unique_ptr<splitbft::CompartmentLogic> inner)
               -> std::unique_ptr<splitbft::CompartmentLogic> {
      if (type != Compartment::Preparation) return inner;
      pbft::Config config;  // defaults match the cluster (n=4, f=1)
      return std::make_unique<faults::EquivocatingPrep>(
          std::move(inner), config, r,
          keyring.signer(principal::enclave({r, type})));
    };
  };
  SplitbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  // The request runs into the equivocation; whatever happens (view change,
  // eventual execution) agreement must hold.
  const auto result =
      cluster.execute(kFirstClientId, CounterApp::encode_add(1), 60'000'000);
  cluster.harness().run_for(5'000'000);
  EXPECT_TRUE(cluster.check_agreement());
  // With 2f+1 correct Preparation enclaves no two conflicting prepare
  // certificates can form; the view change even restores liveness.
  EXPECT_TRUE(result.has_value());
}

TEST(SplitByzantine, SilentConfEnclaveTolerated) {
  SplitClusterOptions options;
  options.seed = 42;
  options.config.batch_max = 1;
  options.compartment_faults[1] = [](ReplicaId,
                                     const crypto::KeyRing&) {
    return [](Compartment type,
              std::unique_ptr<splitbft::CompartmentLogic> inner)
               -> std::unique_ptr<splitbft::CompartmentLogic> {
      if (type != Compartment::Confirmation) return inner;
      return std::make_unique<faults::SilentCompartment>(std::move(inner));
    };
  };
  SplitbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(
        cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value())
        << "request " << i;
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SplitByzantine, CorruptCheckpointExecCannotForgeStableCheckpoint) {
  SplitClusterOptions options;
  options.seed = 43;
  options.config.batch_max = 1;
  options.config.checkpoint_interval = 5;
  options.compartment_faults[2] = [](ReplicaId r,
                                     const crypto::KeyRing& keyring) {
    return [r, &keyring](Compartment type,
                         std::unique_ptr<splitbft::CompartmentLogic> inner)
               -> std::unique_ptr<splitbft::CompartmentLogic> {
      if (type != Compartment::Execution) return inner;
      return std::make_unique<faults::CorruptCheckpointExec>(
          std::move(inner), keyring.signer(principal::enclave({r, type})));
    };
  };
  SplitbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value());
  }
  cluster.harness().run_for(3'000'000);

  // Correct replicas reach stable checkpoints (quorum of matching digests
  // exists without the liar) and agreement holds.
  for (const ReplicaId r : {0u, 1u, 3u}) {
    EXPECT_GE(cluster.replica(r).exec().last_stable(), 5u) << "r" << r;
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SplitByzantine, ForgedRepliesRejectedByClient) {
  SplitClusterOptions options;
  options.seed = 44;
  options.config.batch_max = 1;
  options.compartment_faults[0] = [](ReplicaId,
                                     const crypto::KeyRing&) {
    return [](Compartment type,
              std::unique_ptr<splitbft::CompartmentLogic> inner)
               -> std::unique_ptr<splitbft::CompartmentLogic> {
      if (type != Compartment::Execution) return inner;
      return std::make_unique<faults::ForgingReplyExec>(
          std::move(inner), pbft::ClientDirectory(0x5ec7e7),
          to_bytes("forged-result"));
    };
  };
  SplitbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  const auto result =
      cluster.execute(kFirstClientId, CounterApp::encode_add(5));
  ASSERT_TRUE(result.has_value());
  // f+1 matching protects the client: the honest majority's answer wins.
  Reader r(*result);
  EXPECT_EQ(r.u64(), 5u);
}

TEST(SplitByzantine, SafetyWithFFaultyEnclavesOfEachTypePlusHostileHosts) {
  // The paper's headline scenario (Table 1, SplitBFT row): an attacker on
  // every machine (byzantine environments dropping 5% of traffic in each
  // direction) AND one faulty enclave of EACH compartment type, each on a
  // different replica. Liveness may degrade; safety must not.
  SplitClusterOptions options;
  options.seed = 45;
  options.config.batch_max = 1;
  options.config.checkpoint_interval = 10;
  options.compartment_faults[0] = [](ReplicaId r,
                                     const crypto::KeyRing& keyring) {
    return [r, &keyring](Compartment type,
                         std::unique_ptr<splitbft::CompartmentLogic> inner)
               -> std::unique_ptr<splitbft::CompartmentLogic> {
      if (type != Compartment::Preparation) return inner;
      pbft::Config config;
      return std::make_unique<faults::EquivocatingPrep>(
          std::move(inner), config, r,
          keyring.signer(principal::enclave({r, type})));
    };
  };
  options.compartment_faults[1] = [](ReplicaId,
                                     const crypto::KeyRing&) {
    return [](Compartment type,
              std::unique_ptr<splitbft::CompartmentLogic> inner)
               -> std::unique_ptr<splitbft::CompartmentLogic> {
      if (type != Compartment::Confirmation) return inner;
      return std::make_unique<faults::SilentCompartment>(std::move(inner));
    };
  };
  options.compartment_faults[2] = [](ReplicaId r,
                                     const crypto::KeyRing& keyring) {
    return [r, &keyring](Compartment type,
                         std::unique_ptr<splitbft::CompartmentLogic> inner)
               -> std::unique_ptr<splitbft::CompartmentLogic> {
      if (type != Compartment::Execution) return inner;
      return std::make_unique<faults::CorruptCheckpointExec>(
          std::move(inner), keyring.signer(principal::enclave({r, type})));
    };
  };
  SplitbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);

  // Compromise every environment.
  for (ReplicaId r = 0; r < 4; ++r) {
    cluster.interpose_env(r, [r](std::shared_ptr<Actor> inner) {
      faults::EnvPolicy policy;
      policy.drop_inbound = 0.05;
      policy.drop_outbound = 0.05;
      policy.record_observed = false;
      return std::make_shared<faults::ByzantineEnv>(std::move(inner), policy,
                                                    1000 + r);
    });
  }

  (void)cluster.setup_sessions(60'000'000);
  // Drive traffic; completion is NOT required (liveness may be lost), but
  // every executed sequence number must agree across replicas.
  for (int i = 0; i < 5; ++i) {
    (void)cluster.execute(kFirstClientId, CounterApp::encode_add(1),
                          20'000'000);
  }
  cluster.harness().run_for(10'000'000);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SplitByzantine, ConfidentialityUnderFullEnvironmentCompromise) {
  const std::string secret = "CONFIDENTIAL-BALANCE-42";
  SplitClusterOptions options;
  options.seed = 46;
  SplitbftCluster cluster(
      options,
      splitbft::plain_app([] { return std::make_unique<apps::KvStore>(); }));
  cluster.add_client(kFirstClientId);

  std::vector<std::shared_ptr<faults::ByzantineEnv>> envs;
  for (ReplicaId r = 0; r < 4; ++r) {
    cluster.interpose_env(r, [&envs, r](std::shared_ptr<Actor> inner) {
      faults::EnvPolicy policy;  // observe-only adversary
      auto env = std::make_shared<faults::ByzantineEnv>(std::move(inner),
                                                        policy, 2000 + r);
      envs.push_back(env);
      return env;
    });
  }
  ASSERT_TRUE(cluster.setup_sessions());
  const auto result = cluster.execute(
      kFirstClientId,
      apps::kv::encode_put(to_bytes("acct"), to_bytes(secret)));
  ASSERT_TRUE(result.has_value());

  std::size_t total_observed = 0;
  for (const auto& env : envs) {
    total_observed += env->observed().size();
    for (const auto& bytes : env->observed()) {
      const std::string haystack(bytes.begin(), bytes.end());
      EXPECT_EQ(haystack.find(secret), std::string::npos)
          << "plaintext leaked to a compromised host";
    }
  }
  EXPECT_GT(total_observed, 0u);
}

TEST(SplitByzantine, FaultyExecutionEnclaveLosesConfidentiality) {
  // Table 1: confidentiality is 0_exec — one compromised Execution enclave
  // reads plaintext (it legitimately decrypts). Model: the compromised
  // enclave's application leaks every operation to the attacker.
  const std::string secret = "LEAK-ME-PLEASE";
  auto leaked = std::make_shared<std::vector<Bytes>>();

  SplitClusterOptions options;
  options.seed = 47;
  SplitbftCluster cluster(options, [leaked](splitbft::PersistHook) {
    class LeakyKv final : public apps::Application {
     public:
      explicit LeakyKv(std::shared_ptr<std::vector<Bytes>> sink)
          : sink_(std::move(sink)) {}
      Bytes execute(ByteView op) override {
        sink_->emplace_back(op.begin(), op.end());  // exfiltrate plaintext
        return inner_.execute(op);
      }
      Bytes snapshot() const override { return inner_.snapshot(); }
      bool restore(ByteView s) override { return inner_.restore(s); }
      Digest state_digest() const override { return inner_.state_digest(); }

     private:
      std::shared_ptr<std::vector<Bytes>> sink_;
      apps::KvStore inner_;
    };
    return std::make_unique<LeakyKv>(leaked);
  });
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());
  ASSERT_TRUE(cluster
                  .execute(kFirstClientId,
                           apps::kv::encode_put(to_bytes("k"), to_bytes(secret)))
                  .has_value());

  bool found = false;
  for (const auto& op : *leaked) {
    const std::string haystack(op.begin(), op.end());
    if (haystack.find(secret) != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << "a compromised Execution enclave sees plaintext";
}

// ------------------------------------------------- read fast path faults

TEST(ReadPathByzantine, PbftForgedReadRepliesAreOutvoted) {
  PbftClusterOptions options;
  options.seed = 48;
  options.config.read_path = true;
  PbftCluster cluster(options,
                      [] { return std::make_unique<apps::KvStore>(); });
  cluster.add_client(kFirstClientId);

  // Replica 3 serves consistently forged read replies (valid client MAC,
  // attacker value + matching digest). ts=2 designates replica 2 (honest),
  // so the honest quorum {0, 1, 2} completes the fast read and outvotes it.
  auto forger = std::make_shared<faults::ReadReplyForger>(
      cluster.replica_actor(3), cluster.directory(), to_bytes("forged!"));
  cluster.harness().replace_actor(principal::pbft_replica(3), forger);

  ASSERT_TRUE(cluster
                  .execute(kFirstClientId,
                           apps::kv::encode_put(to_bytes("k"), to_bytes("v")))
                  .has_value());
  cluster.harness().run_for(1'000'000);
  const auto got =
      cluster.execute_read(kFirstClientId, apps::kv::encode_get(to_bytes("k")));
  ASSERT_TRUE(got.has_value());
  const auto reply = apps::kv::decode_reply(*got);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->value, to_bytes("v"));  // honest value wins
  EXPECT_GT(forger->forged(), 0u);
  EXPECT_EQ(cluster.client(kFirstClientId).client().fast_reads(), 1u);
}

TEST(ReadPathByzantine, PbftByzantineDesignatedResponderForcesFallback) {
  PbftClusterOptions options;
  options.seed = 49;
  options.config.read_path = true;
  PbftCluster cluster(options,
                      [] { return std::make_unique<apps::KvStore>(); });
  cluster.add_client(kFirstClientId);

  // ts=2 designates replica (1000 + 2) % 4 = 2 — the forger. The honest
  // quorum forms but its full value is missing/forged, so the client must
  // fall back to the ordered path and still read the honest value.
  auto forger = std::make_shared<faults::ReadReplyForger>(
      cluster.replica_actor(2), cluster.directory(), to_bytes("forged!"));
  cluster.harness().replace_actor(principal::pbft_replica(2), forger);

  ASSERT_TRUE(cluster
                  .execute(kFirstClientId,
                           apps::kv::encode_put(to_bytes("k"), to_bytes("v")))
                  .has_value());
  cluster.harness().run_for(1'000'000);
  const auto got =
      cluster.execute_read(kFirstClientId, apps::kv::encode_get(to_bytes("k")));
  ASSERT_TRUE(got.has_value());
  const auto reply = apps::kv::decode_reply(*got);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->value, to_bytes("v"));
  EXPECT_GT(forger->forged(), 0u);
  EXPECT_EQ(cluster.client(kFirstClientId).client().read_fallbacks(), 1u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(ReadPathByzantine, SplitForgedReadRepliesAreOutvoted) {
  SplitClusterOptions options;
  options.seed = 50;
  options.config.read_path = true;
  // Replica 1's Execution enclave serves stale/forged read votes; ts=2
  // designates replica 2 (honest), so {0, 2, 3} outvote it in one round.
  options.compartment_faults[1] = [](ReplicaId,
                                     const crypto::KeyRing&) {
    return [](Compartment type,
              std::unique_ptr<splitbft::CompartmentLogic> inner)
               -> std::unique_ptr<splitbft::CompartmentLogic> {
      if (type != Compartment::Execution) return inner;
      return std::make_unique<faults::ForgingReadExec>(
          std::move(inner), pbft::ClientDirectory(0x5ec7e7),
          to_bytes("forged-read"));
    };
  };
  SplitbftCluster cluster(
      options,
      splitbft::plain_app([] { return std::make_unique<apps::KvStore>(); }));
  cluster.add_client(kFirstClientId);
  ASSERT_TRUE(cluster.setup_sessions());

  ASSERT_TRUE(cluster
                  .execute(kFirstClientId,
                           apps::kv::encode_put(to_bytes("k"), to_bytes("v")))
                  .has_value());
  cluster.harness().run_for(2'000'000);
  const auto got =
      cluster.execute_read(kFirstClientId, apps::kv::encode_get(to_bytes("k")));
  ASSERT_TRUE(got.has_value());
  const auto reply = apps::kv::decode_reply(*got);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->value, to_bytes("v"));  // honest value wins
  EXPECT_EQ(cluster.client(kFirstClientId).client().fast_reads(), 1u);
  EXPECT_TRUE(cluster.check_agreement());
}

}  // namespace
}  // namespace sbft::runtime
