// Byzantine serving peers against streaming state transfer: forged chunks
// with valid MACs, withholding/slow-drip, and stale-root replay. In every
// scenario the recovering replica must catch up off the honest peers and
// never install an unverified byte (agreement holds throughout).
#include "faults/state_transfer_faults.hpp"

#include <gtest/gtest.h>

#include "apps/kv_store.hpp"
#include "runtime/pbft_cluster.hpp"

namespace sbft::faults {
namespace {

using runtime::PbftCluster;
using runtime::PbftClusterOptions;

[[nodiscard]] PbftClusterOptions recovery_config(std::uint64_t seed) {
  PbftClusterOptions options;
  options.seed = seed;
  options.config.checkpoint_interval = 5;
  options.config.batch_max = 1;
  options.config.state_chunk_bytes = 2048;
  options.config.state_inflight_max_bytes = 8192;
  options.config.state_chunk_timeout_us = 100'000;
  return options;
}

[[nodiscard]] apps::AppFactory kv_factory() {
  return [] { return std::make_unique<apps::KvStore>(); };
}

[[nodiscard]] Bytes kv_put(std::uint64_t key, std::uint8_t salt) {
  Bytes value(1500);
  for (std::size_t i = 0; i < value.size(); ++i) {
    value[i] = static_cast<std::uint8_t>(key * 31 + salt + i);
  }
  return apps::kv::encode_put(apps::kv::encode_key(key), value);
}

/// Crashes replica 3 past a checkpoint it missed; leaves it restored and
/// the cluster ready for the recovery phase.
void fall_behind(PbftCluster& cluster) {
  cluster.add_client(kFirstClientId);
  cluster.crash_replica(3);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 0)).has_value());
  }
  cluster.restore_replica(3);
}

/// Drives traffic until replica 3 has caught up with replica 0.
[[nodiscard]] bool recover(PbftCluster& cluster, std::uint8_t salt) {
  for (int i = 0; i < 8; ++i) {
    if (!cluster.execute(kFirstClientId, kv_put(i, salt)).has_value()) {
      return false;
    }
  }
  return cluster.harness().run_until(
      [&] {
        return !cluster.replica(3).awaiting_state() &&
               cluster.replica(3).last_executed() >=
                   cluster.replica(0).last_executed();
      },
      120'000'000);
}

TEST(StateTransferFaults, ForgedChunksAreRejectedAndRecoveryCompletes) {
  PbftCluster cluster(recovery_config(31), kv_factory());
  fall_behind(cluster);

  auto forger = std::make_shared<ChunkForger>(
      cluster.replica_actor(1),
      cluster.keyring().signer(principal::pbft_replica(1)));
  cluster.harness().replace_actor(principal::pbft_replica(1), forger);

  ASSERT_TRUE(recover(cluster, 1));
  const pbft::StateTransferStats stats =
      cluster.replica(3).state_transfer_stats();
  EXPECT_GE(stats.transfers_completed, 1u);
  // The forger was asked at least once, rejected every time, and the
  // ranges were refetched from honest peers.
  EXPECT_GT(forger->forged(), 0u);
  EXPECT_GT(stats.chunks_rejected, 0u);
  EXPECT_GE(stats.refetches, stats.chunks_rejected);
  EXPECT_TRUE(cluster.check_agreement());
  // No forged byte installed: the recovered state digest matches.
  EXPECT_EQ(cluster.replica(3).app().state_digest(),
            cluster.replica(0).app().state_digest());
}

TEST(StateTransferFaults, WithholdingPeerTimesOutAndRecoveryCompletes) {
  PbftCluster cluster(recovery_config(32), kv_factory());
  fall_behind(cluster);

  auto withholder = std::make_shared<ChunkWithholder>(
      cluster.replica_actor(1),
      ChunkWithholder::Policy{/*serve_first=*/1, /*drip_interval_us=*/0});
  cluster.harness().replace_actor(principal::pbft_replica(1), withholder);

  ASSERT_TRUE(recover(cluster, 1));
  const pbft::StateTransferStats stats =
      cluster.replica(3).state_transfer_stats();
  EXPECT_GE(stats.transfers_completed, 1u);
  if (withholder->withheld() > 0) {
    EXPECT_GT(stats.refetches, 0u);
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(StateTransferFaults, SlowDripLosesRaceAgainstChunkTimeout) {
  PbftCluster cluster(recovery_config(33), kv_factory());
  fall_behind(cluster);

  // Drip an order of magnitude slower than the fetcher's patience.
  auto withholder = std::make_shared<ChunkWithholder>(
      cluster.replica_actor(1),
      ChunkWithholder::Policy{/*serve_first=*/1,
                              /*drip_interval_us=*/1'000'000});
  cluster.harness().replace_actor(principal::pbft_replica(1), withholder);

  ASSERT_TRUE(recover(cluster, 1));
  EXPECT_GE(cluster.replica(3).state_transfer_stats().transfers_completed, 1u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(StateTransferFaults, StaleRootReplayIsRejectedByCommitmentGate) {
  PbftCluster cluster(recovery_config(34), kv_factory());
  fall_behind(cluster);

  auto replayer = std::make_shared<StaleRootReplayer>(
      cluster.replica_actor(1),
      cluster.keyring().signer(principal::pbft_replica(1)));
  cluster.harness().replace_actor(principal::pbft_replica(1), replayer);

  // First recovery: the replayer serves honestly and captures the template.
  ASSERT_TRUE(recover(cluster, 1));
  ASSERT_TRUE(replayer->armed());

  // Fall behind again past NEWER checkpoints: now every chunk response
  // replica 1 serves carries the stale root under the current seq.
  cluster.crash_replica(3);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 2)).has_value());
  }
  cluster.restore_replica(3);
  ASSERT_TRUE(recover(cluster, 3));

  const pbft::StateTransferStats stats =
      cluster.replica(3).state_transfer_stats();
  EXPECT_GE(stats.transfers_completed, 2u);
  if (replayer->replayed() > 0) {
    // Every replayed response failed the manifest-vs-certificate gate.
    EXPECT_GT(stats.chunks_rejected, 0u);
  }
  EXPECT_TRUE(cluster.check_agreement());
  EXPECT_EQ(cluster.replica(3).app().state_digest(),
            cluster.replica(0).app().state_digest());
}

}  // namespace
}  // namespace sbft::faults
