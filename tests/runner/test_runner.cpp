// Staged ordered-execution runner: ordering and drain guarantees of the
// serial reference and the parallel spin implementation, backpressure when
// the slot ring fills, observability counters, the Gauge primitive, and
// the AutoTuner's windowed grow/shrink controller.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "runtime/runner/runner.hpp"
#include "runtime/runner/tuning.hpp"

namespace sbft::runtime::runner {
namespace {

/// Submits `n` units whose prologues record concurrent activity and whose
/// epilogues append their index; returns the epilogue order.
[[nodiscard]] std::vector<std::size_t> run_indexed(OrderedRunner& runner,
                                                   std::size_t n) {
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    runner.submit([i, &order]() -> Epilogue {
      // Uneven prologue work so parallel workers finish out of order.
      volatile std::uint64_t sink = 0;
      for (std::size_t k = 0; k < (i % 7) * 97; ++k) sink = sink + k;
      return [i, &order] { order.push_back(i); };
    });
  }
  runner.drain();
  return order;
}

[[nodiscard]] std::vector<std::size_t> iota(std::size_t n) {
  std::vector<std::size_t> v(n);
  std::iota(v.begin(), v.end(), std::size_t{0});
  return v;
}

TEST(SyncRunner, RunsInlineInSubmissionOrder) {
  SyncOrderedRunner runner;
  EXPECT_EQ(runner.workers(), 0u);
  EXPECT_EQ(run_indexed(runner, 100), iota(100));
  EXPECT_EQ(runner.queue_depth(), 0u);

  const RunnerStats stats = runner.stats();
  EXPECT_EQ(stats.submitted, 100u);
  EXPECT_EQ(stats.drained, 100u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.prologue_us.count, 100u);
  EXPECT_EQ(stats.epilogue_us.count, 100u);

  runner.reset_stats();
  EXPECT_EQ(runner.stats().submitted, 0u);
}

TEST(SpinRunner, EpiloguesInSubmissionOrderAtEveryWorkerCount) {
  for (const std::size_t workers : {1u, 4u, 8u}) {
    SpinOrderedRunner runner(workers);
    EXPECT_EQ(runner.workers(), workers);
    EXPECT_EQ(run_indexed(runner, 2'000), iota(2'000)) << workers;
    EXPECT_EQ(runner.queue_depth(), 0u) << workers;
  }
}

TEST(SpinRunner, EpiloguesRunOnTheDrainingThread) {
  SpinOrderedRunner runner(4);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> on_caller{0};
  for (int i = 0; i < 64; ++i) {
    runner.submit([caller, &on_caller]() -> Epilogue {
      return [caller, &on_caller] {
        if (std::this_thread::get_id() == caller) ++on_caller;
      };
    });
  }
  runner.drain();
  EXPECT_EQ(on_caller.load(), 64);
}

TEST(SpinRunner, ProloguesLeaveTheSubmittingThread) {
  // With workers present, at least one prologue must run off-thread (all of
  // them, unless backpressure forces inline draining — the ring is large
  // enough here that it never does).
  SpinOrderedRunner runner(2);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> off_caller{0};
  for (int i = 0; i < 32; ++i) {
    runner.submit([caller, &off_caller]() -> Epilogue {
      if (std::this_thread::get_id() != caller) ++off_caller;
      return [] {};
    });
  }
  runner.drain();
  EXPECT_GT(off_caller.load(), 0);
}

TEST(SpinRunner, TinyRingBackpressuresWithoutDeadlockOrReordering) {
  // Capacity far below the submission count: submit() must retire finished
  // slots inline (in order) instead of deadlocking or dropping work.
  SpinOrderedRunner runner(3, /*capacity=*/4);
  EXPECT_EQ(run_indexed(runner, 500), iota(500));
  const RunnerStats stats = runner.stats();
  EXPECT_EQ(stats.submitted, 500u);
  EXPECT_EQ(stats.drained, 500u);
  EXPECT_LE(stats.queue_peak, 4u);
}

TEST(SpinRunner, StatsCountAndDrainToZero) {
  SpinOrderedRunner runner(4);
  (void)run_indexed(runner, 300);
  const RunnerStats stats = runner.stats();
  EXPECT_EQ(stats.submitted, 300u);
  EXPECT_EQ(stats.drained, 300u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GE(stats.queue_peak, 1u);
  EXPECT_EQ(stats.prologue_us.count, 300u);
  EXPECT_EQ(stats.epilogue_us.count, 300u);
  runner.reset_stats();
  EXPECT_EQ(runner.stats().submitted, 0u);
  EXPECT_EQ(runner.stats().queue_peak, 0u);
}

TEST(SpinRunner, DrainOnEmptyQueueIsANoop) {
  SpinOrderedRunner runner(2);
  runner.drain();
  runner.drain();
  EXPECT_EQ(runner.stats().drained, 0u);
}

TEST(MakeRunner, ZeroMeansSerialOtherwiseSpin) {
  EXPECT_EQ(make_runner(0)->workers(), 0u);
  EXPECT_NE(dynamic_cast<SyncOrderedRunner*>(make_runner(0).get()), nullptr);
  EXPECT_EQ(make_runner(3)->workers(), 3u);
  EXPECT_NE(dynamic_cast<SpinOrderedRunner*>(make_runner(3).get()), nullptr);
}

// -------------------------------------------------------------- Gauge

TEST(Gauge, TracksValueAndPeak) {
  Gauge g;
  EXPECT_EQ(g.value(), 0u);
  g.add(5);
  g.add(7);
  EXPECT_EQ(g.value(), 12u);
  EXPECT_EQ(g.peak(), 12u);
  g.sub(10);
  EXPECT_EQ(g.value(), 2u);
  EXPECT_EQ(g.peak(), 12u);  // peak is sticky
  g.set(40);
  EXPECT_EQ(g.value(), 40u);
  EXPECT_EQ(g.peak(), 40u);
  g.reset();
  EXPECT_EQ(g.value(), 0u);
  EXPECT_EQ(g.peak(), 0u);
}

TEST(Gauge, PeakSurvivesConcurrentUpdates) {
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 10'000; ++i) {
        g.add(3);
        g.sub(3);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(g.value(), 0u);
  EXPECT_GE(g.peak(), 3u);
  EXPECT_LE(g.peak(), 12u);
}

// ---------------------------------------------------------- AutoTuner

TEST(AutoTuner, GrowsTowardThroughputRegimeUnderBacklog) {
  TuningLimits limits;
  AutoTuner tuner(limits, /*batch0=*/64, /*depth0=*/1, /*read_batch0=*/16);
  Micros now = 0;
  // Sustained backlog above the high watermark: every window closes with a
  // grow until all knobs pin at their maxima.
  bool changed = false;
  for (int w = 0; w < 10; ++w) {
    now += limits.interval_us;
    changed = tuner.observe(/*backlog=*/limits.high_watermark + 100, now);
  }
  EXPECT_EQ(tuner.batch_max(), limits.batch_max);
  EXPECT_EQ(tuner.pipeline_depth(), limits.depth_max);
  EXPECT_EQ(tuner.read_batch_max(), limits.read_batch_max);
  EXPECT_FALSE(changed);  // pinned at the clamp: no further change
  EXPECT_GE(tuner.stats().grows, 4u);
  EXPECT_EQ(tuner.stats().shrinks, 0u);
}

TEST(AutoTuner, ShrinksTowardLatencyRegimeWhenIdle) {
  TuningLimits limits;
  AutoTuner tuner(limits, /*batch0=*/800, /*depth0=*/8, /*read_batch0=*/128);
  Micros now = 0;
  for (int w = 0; w < 10; ++w) {
    now += limits.interval_us;
    (void)tuner.observe(/*backlog=*/0, now);
  }
  EXPECT_EQ(tuner.batch_max(), limits.batch_min);
  EXPECT_EQ(tuner.pipeline_depth(), limits.depth_min);
  EXPECT_EQ(tuner.read_batch_max(), limits.read_batch_min);
  EXPECT_GE(tuner.stats().shrinks, 4u);
}

TEST(AutoTuner, HoldsSteadyBetweenWatermarks) {
  TuningLimits limits;
  AutoTuner tuner(limits, /*batch0=*/200, /*depth0=*/4, /*read_batch0=*/32);
  Micros now = 0;
  for (int w = 0; w < 6; ++w) {
    now += limits.interval_us;
    EXPECT_FALSE(tuner.observe(
        (limits.low_watermark + limits.high_watermark) / 2, now));
  }
  EXPECT_EQ(tuner.batch_max(), 200u);
  EXPECT_EQ(tuner.pipeline_depth(), 4u);
  EXPECT_EQ(tuner.read_batch_max(), 32u);
  EXPECT_EQ(tuner.stats().grows, 0u);
  EXPECT_EQ(tuner.stats().shrinks, 0u);
}

TEST(AutoTuner, ReactsToPeakNotWindowEndBacklog) {
  // A burst in the middle of the window must trigger the grow even if the
  // backlog drains to zero by window end (peak controller, not sampling).
  TuningLimits limits;
  AutoTuner tuner(limits, /*batch0=*/64, /*depth0=*/2, /*read_batch0=*/16);
  EXPECT_FALSE(tuner.observe(0, 1));  // anchors the first window
  (void)tuner.observe(limits.high_watermark + 50, limits.interval_us / 2);
  EXPECT_TRUE(tuner.observe(0, limits.interval_us + 1));
  EXPECT_EQ(tuner.batch_max(), 128u);
  EXPECT_EQ(tuner.pipeline_depth(), 3u);
}

TEST(AutoTuner, WindowsAreVirtualTime) {
  TuningLimits limits;
  AutoTuner tuner(limits, 64, 2, 16);
  // The first observation anchors the window; the flood of observations
  // inside it closes nothing, and the first observation past the end
  // closes it exactly once.
  for (Micros t = 1; t <= limits.interval_us; t += 1'000) {
    EXPECT_FALSE(tuner.observe(limits.high_watermark + 1, t));
  }
  EXPECT_TRUE(
      tuner.observe(limits.high_watermark + 1, limits.interval_us + 1));
  EXPECT_EQ(tuner.stats().windows, 1u);
}

}  // namespace
}  // namespace sbft::runtime::runner
