// State-equivalence of the staged parallel runner: for every worker count
// and pipeline depth, a cluster running SpinOrderedRunner must produce
// byte-identical checkpoint digests, execution histories, application
// state and client-visible results to the serial SyncOrderedRunner
// reference — on both stacks, and with the read fast path under byzantine
// fault injectors (ReadReplyForger, ForgingReadExec) in the mix.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "apps/kv_store.hpp"
#include "faults/byzantine_compartments.hpp"
#include "faults/pbft_attack.hpp"
#include "runtime/pbft_cluster.hpp"
#include "runtime/splitbft_cluster.hpp"

namespace sbft::runtime {
namespace {

constexpr std::size_t kWorkerCounts[] = {1, 4, 8};
constexpr std::size_t kDepths[] = {1, 4};

[[nodiscard]] apps::AppFactory kv_factory() {
  return [] { return std::make_unique<apps::KvStore>(); };
}

/// Everything the serial and parallel runs must agree on, byte for byte.
struct Fingerprint {
  std::vector<std::map<SeqNum, Digest>> histories;  // per replica
  std::vector<Digest> app_digests;                  // per replica
  std::vector<SeqNum> last_stable;                  // per replica
  std::vector<std::optional<Bytes>> results;        // per client op

  bool operator==(const Fingerprint&) const = default;
};

[[nodiscard]] std::map<SeqNum, Digest> replica_history(PbftCluster& c,
                                                       ReplicaId r) {
  return c.replica(r).execution_history();
}
[[nodiscard]] Digest replica_app_digest(PbftCluster& c, ReplicaId r) {
  return c.replica(r).app().state_digest();
}
[[nodiscard]] SeqNum replica_last_stable(PbftCluster& c, ReplicaId r) {
  return c.replica(r).last_stable();
}

[[nodiscard]] std::map<SeqNum, Digest> replica_history(SplitbftCluster& c,
                                                       ReplicaId r) {
  return c.replica(r).exec().execution_history();
}
[[nodiscard]] Digest replica_app_digest(SplitbftCluster& c, ReplicaId r) {
  return c.replica(r).exec().app().state_digest();
}
[[nodiscard]] SeqNum replica_last_stable(SplitbftCluster& c, ReplicaId r) {
  return c.replica(r).exec().last_stable();
}

/// "k3"-style keys/values; built via += because GCC 12 emits a bogus
/// -Wrestrict for operator+(const char*, std::string&&) when fully inlined.
[[nodiscard]] Bytes tag_bytes(char tag, std::size_t n) {
  std::string s(1, tag);
  s += std::to_string(n);
  return to_bytes(s);
}

/// Mixed PUT/GET workload over three clients; reads exercise the fast path
/// when the config enables it.
template <typename Cluster>
[[nodiscard]] Fingerprint run_workload(Cluster& cluster, std::size_t n) {
  Fingerprint fp;
  const ClientId clients[] = {kFirstClientId, kFirstClientId + 1,
                              kFirstClientId + 2};
  for (std::size_t i = 0; i < 60; ++i) {
    const ClientId c = clients[i % 3];
    const Bytes key = tag_bytes('k', i % 7);
    if (i % 4 == 3) {
      fp.results.push_back(
          cluster.execute_read(c, apps::kv::encode_get(key)));
    } else {
      fp.results.push_back(cluster.execute(
          c, apps::kv::encode_put(key, tag_bytes('v', i))));
    }
  }
  cluster.harness().run_for(2'000'000);  // quiesce: checkpoints stabilize
  for (ReplicaId r = 0; r < static_cast<ReplicaId>(n); ++r) {
    fp.histories.push_back(replica_history(cluster, r));
    fp.app_digests.push_back(replica_app_digest(cluster, r));
    fp.last_stable.push_back(replica_last_stable(cluster, r));
  }
  return fp;
}

[[nodiscard]] Fingerprint run_pbft(std::size_t workers, std::size_t depth,
                                   bool inject_forger) {
  PbftClusterOptions options;
  options.seed = 1337;  // identical seed across worker counts
  options.config.read_path = true;
  options.config.pipeline_depth = depth;
  options.config.checkpoint_interval = 10;
  options.exec_workers = workers;
  PbftCluster cluster(options, kv_factory());
  if (inject_forger) {
    // Replica 3 forges read replies (valid client MACs, attacker value).
    // The honest quorum outvotes it; the staged runner must not change a
    // byte of that outcome.
    auto forger = std::make_shared<faults::ReadReplyForger>(
        cluster.replica_actor(3), cluster.directory(), to_bytes("forged!"));
    cluster.harness().replace_actor(principal::pbft_replica(3), forger);
  }
  for (ClientId c = kFirstClientId; c < kFirstClientId + 3; ++c) {
    cluster.add_client(c);
  }
  return run_workload(cluster, options.config.n);
}

[[nodiscard]] Fingerprint run_splitbft(std::size_t workers, std::size_t depth,
                                       bool inject_forger) {
  SplitClusterOptions options;
  options.seed = 4242;
  options.config.read_path = true;
  options.config.pipeline_depth = depth;
  options.config.checkpoint_interval = 10;
  options.exec_workers = workers;
  if (inject_forger) {
    // Replica 1's Execution enclave serves forged read votes.
    options.compartment_faults[1] = [](ReplicaId, const crypto::KeyRing&) {
      return [](Compartment type,
                std::unique_ptr<splitbft::CompartmentLogic> inner)
                 -> std::unique_ptr<splitbft::CompartmentLogic> {
        if (type != Compartment::Execution) return inner;
        return std::make_unique<faults::ForgingReadExec>(
            std::move(inner), pbft::ClientDirectory(0x5ec7e7),
            to_bytes("forged-read"));
      };
    };
  }
  SplitbftCluster cluster(options, splitbft::plain_app(kv_factory()));
  for (ClientId c = kFirstClientId; c < kFirstClientId + 3; ++c) {
    cluster.add_client(c);
  }
  EXPECT_TRUE(cluster.setup_sessions());
  return run_workload(cluster, options.config.n);
}

TEST(RunnerDeterminism, PbftParallelMatchesSerialReference) {
  for (const std::size_t depth : kDepths) {
    const Fingerprint serial =
        run_pbft(/*workers=*/0, depth, /*inject_forger=*/false);
    ASSERT_FALSE(serial.histories.empty());
    ASSERT_GT(serial.histories[0].size(), 0u) << "workload must execute";
    for (const std::size_t workers : kWorkerCounts) {
      const Fingerprint parallel =
          run_pbft(workers, depth, /*inject_forger=*/false);
      EXPECT_EQ(parallel, serial)
          << "workers=" << workers << " depth=" << depth;
    }
  }
}

TEST(RunnerDeterminism, SplitbftParallelMatchesSerialReference) {
  for (const std::size_t depth : kDepths) {
    const Fingerprint serial =
        run_splitbft(/*workers=*/0, depth, /*inject_forger=*/false);
    ASSERT_FALSE(serial.histories.empty());
    ASSERT_GT(serial.histories[0].size(), 0u) << "workload must execute";
    for (const std::size_t workers : kWorkerCounts) {
      const Fingerprint parallel =
          run_splitbft(workers, depth, /*inject_forger=*/false);
      EXPECT_EQ(parallel, serial)
          << "workers=" << workers << " depth=" << depth;
    }
  }
}

TEST(RunnerDeterminism, PbftMatchesSerialUnderReadReplyForger) {
  const Fingerprint serial =
      run_pbft(/*workers=*/0, /*depth=*/4, /*inject_forger=*/true);
  ASSERT_GT(serial.histories[0].size(), 0u);
  for (const std::size_t workers : kWorkerCounts) {
    const Fingerprint parallel =
        run_pbft(workers, /*depth=*/4, /*inject_forger=*/true);
    EXPECT_EQ(parallel, serial) << "workers=" << workers;
  }
}

TEST(RunnerDeterminism, SplitbftMatchesSerialUnderForgingReadExec) {
  const Fingerprint serial =
      run_splitbft(/*workers=*/0, /*depth=*/4, /*inject_forger=*/true);
  ASSERT_GT(serial.histories[0].size(), 0u);
  for (const std::size_t workers : kWorkerCounts) {
    const Fingerprint parallel =
        run_splitbft(workers, /*depth=*/4, /*inject_forger=*/true);
    EXPECT_EQ(parallel, serial) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace sbft::runtime
