// Runner-pipeline memory bounds under sustained overload: the staged
// runner's queue and the staged-reply buffer must read 0 between engine
// calls (the drain-before-return contract), and admission control must
// bound the admitted-but-unexecuted backlog while retransmissions of
// already-admitted requests keep flowing.
#include <gtest/gtest.h>

#include <memory>

#include "apps/counter_app.hpp"
#include "apps/kv_store.hpp"
#include "crypto/hmac.hpp"
#include "runtime/pbft_cluster.hpp"
#include "runtime/runner/runner.hpp"
#include "runtime/splitbft_cluster.hpp"

namespace sbft::runtime {
namespace {

using apps::CounterApp;

[[nodiscard]] net::Envelope request_envelope(
    const pbft::ClientDirectory& directory, ClientId client, Timestamp ts,
    Bytes payload, ReplicaId dst) {
  pbft::Request req;
  req.client = client;
  req.timestamp = ts;
  req.payload = std::move(payload);
  const crypto::Key32 key = directory.auth_key(client);
  const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                         req.auth_input());
  req.auth = Bytes(mac.bytes.begin(), mac.bytes.end());
  net::Envelope env;
  env.src = principal::client(client);
  env.dst = principal::pbft_replica(dst);
  env.type = pbft::tag(pbft::MsgType::Request);
  env.payload = req.serialize();
  return env;
}

// A backup that never sees PrePrepares accumulates pending requests
// forever; the admission cap must bound that backlog, shed only FRESH
// keys, and leave the runner drained after every call.
TEST(RunnerOverload, AdmissionCapBoundsBackupBacklog) {
  pbft::Config config;
  config.n = 4;
  config.f = 1;
  config.admission_queue_cap = 64;

  crypto::KeyRing ring(crypto::Scheme::HmacShared, 7);
  for (ReplicaId r = 0; r < config.n; ++r) {
    ring.add_principal(principal::pbft_replica(r));
  }
  const pbft::ClientDirectory directory(0x5ec7e7);
  pbft::Replica replica(
      config, /*id=*/1, ring.signer(principal::pbft_replica(1)),
      ring.verifier(), directory, [] { return std::make_unique<CounterApp>(); },
      /*auth=*/nullptr, runner::make_runner(4));

  constexpr std::size_t kFlood = 500;
  for (std::size_t i = 0; i < kFlood; ++i) {
    const ClientId client = kFirstClientId + static_cast<ClientId>(i);
    const auto out = replica.handle(
        request_envelope(directory, client, /*ts=*/1, CounterApp::encode_add(1),
                         /*dst=*/1),
        static_cast<Micros>(1'000 + i));
    EXPECT_TRUE(out.empty());
    const auto fp = replica.gc_footprint();
    ASSERT_EQ(fp.runner_queue, 0u) << "runner not drained after handle()";
    ASSERT_EQ(fp.staged_replies, 0u);
    ASSERT_LE(fp.pending_requests, config.admission_queue_cap);
  }
  EXPECT_EQ(replica.gc_footprint().pending_requests,
            config.admission_queue_cap);
  EXPECT_EQ(replica.admission_rejects(), kFlood - config.admission_queue_cap);

  // Retransmission of an ADMITTED request is not fresh: it must pass the
  // admission check even with the queue pinned at the cap.
  const std::uint64_t rejects_before = replica.admission_rejects();
  (void)replica.handle(request_envelope(directory, kFirstClientId, 1,
                                        CounterApp::encode_add(1), 1),
                       2'000'000);
  EXPECT_EQ(replica.admission_rejects(), rejects_before);
}

// Cluster-level overload on the primary with the parallel runner: a
// 600-request flood against a 128-cap primary executes what it admits,
// sheds the rest, and every replica's runner reads empty between calls
// while its stats prove the pipeline actually carried the reply work.
TEST(RunnerOverload, PrimaryFloodKeepsRunnerDrainedAndBacklogBounded) {
  PbftClusterOptions options;
  options.seed = 77;
  options.config.admission_queue_cap = 128;
  options.config.batch_max = 16;
  options.config.pipeline_depth = 2;
  options.config.request_timeout_us = 60'000'000;  // no VCs mid-flood
  options.exec_workers = 4;
  PbftCluster cluster(options,
                      [] { return std::make_unique<apps::KvStore>(); });

  constexpr std::size_t kFlood = 600;
  std::vector<net::Envelope> envs;
  envs.reserve(kFlood);
  for (std::size_t i = 0; i < kFlood; ++i) {
    const ClientId client = kFirstClientId + static_cast<ClientId>(i);
    envs.push_back(request_envelope(
        cluster.directory(), client, /*ts=*/1,
        apps::kv::encode_put(to_bytes("k"), to_bytes("v")), /*dst=*/0));
  }
  cluster.harness().inject(envs);
  cluster.harness().run_for(5'000'000);

  const std::uint64_t executed = cluster.replica(0).executed_requests();
  EXPECT_GT(executed, 0u);
  EXPECT_LT(executed, kFlood);  // the cap really shed load
  EXPECT_GT(cluster.replica(0).admission_rejects(), 0u);
  EXPECT_EQ(executed + cluster.replica(0).admission_rejects(), kFlood);
  EXPECT_TRUE(cluster.check_agreement());

  for (ReplicaId r = 0; r < options.config.n; ++r) {
    const auto fp = cluster.replica(r).gc_footprint();
    EXPECT_EQ(fp.runner_queue, 0u) << "replica " << r;
    EXPECT_EQ(fp.staged_replies, 0u) << "replica " << r;
    EXPECT_LE(fp.pending_requests, options.config.admission_queue_cap)
        << "replica " << r;
    const auto stats = cluster.replica(r).runner_stats();
    EXPECT_EQ(stats.submitted, stats.drained) << "replica " << r;
    EXPECT_GT(stats.submitted, 0u) << "replica " << r;
    EXPECT_EQ(stats.queue_depth, 0u) << "replica " << r;
  }
}

// SplitBFT equivalent: the Execution compartment's staged runner must be
// empty between ecalls even while serving a large committed batch stream.
TEST(RunnerOverload, SplitbftExecRunnerDrainsBetweenEcalls) {
  SplitClusterOptions options;
  options.seed = 78;
  options.config.batch_max = 8;
  options.exec_workers = 4;
  SplitbftCluster cluster(
      options,
      splitbft::plain_app([] { return std::make_unique<apps::KvStore>(); }));
  for (ClientId c = kFirstClientId; c < kFirstClientId + 4; ++c) {
    cluster.add_client(c);
  }
  ASSERT_TRUE(cluster.setup_sessions());
  for (int i = 0; i < 10; ++i) {
    for (ClientId c = kFirstClientId; c < kFirstClientId + 4; ++c) {
      ASSERT_TRUE(
          cluster
              .execute(c, apps::kv::encode_put(to_bytes("k"), to_bytes("v")))
              .has_value());
    }
  }
  cluster.harness().run_for(1'000'000);
  for (ReplicaId r = 0; r < options.config.n; ++r) {
    const auto& exec = cluster.replica(r).exec();
    EXPECT_EQ(exec.runner_queue(), 0u) << "replica " << r;
    EXPECT_EQ(exec.staged_replies(), 0u) << "replica " << r;
    const auto stats = exec.runner_stats();
    EXPECT_EQ(stats.submitted, stats.drained) << "replica " << r;
    EXPECT_GT(stats.submitted, 0u) << "replica " << r;
  }
  EXPECT_TRUE(cluster.check_agreement());
}

}  // namespace
}  // namespace sbft::runtime
