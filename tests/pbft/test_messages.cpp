#include <gtest/gtest.h>

#include "pbft/messages.hpp"

namespace sbft::pbft {
namespace {

[[nodiscard]] Request sample_request() {
  Request req;
  req.client = 1001;
  req.timestamp = 7;
  req.payload = to_bytes("operation");
  req.auth = Bytes(32, 0xaa);
  return req;
}

TEST(PbftMessages, RequestRoundTrip) {
  const Request req = sample_request();
  const auto decoded = Request::deserialize(req.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->client, req.client);
  EXPECT_EQ(decoded->timestamp, req.timestamp);
  EXPECT_EQ(decoded->payload, req.payload);
  EXPECT_EQ(decoded->auth, req.auth);
}

TEST(PbftMessages, RequestAuthInputExcludesAuth) {
  Request a = sample_request();
  Request b = sample_request();
  b.auth = Bytes(32, 0xbb);
  EXPECT_EQ(a.auth_input(), b.auth_input());
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(PbftMessages, RequestDeserializeRejectsTrailingGarbage) {
  Bytes data = sample_request().serialize();
  data.push_back(0);
  EXPECT_FALSE(Request::deserialize(data).has_value());
}

TEST(PbftMessages, BatchRoundTrip) {
  RequestBatch batch;
  batch.requests.push_back(sample_request());
  Request second = sample_request();
  second.client = 1002;
  batch.requests.push_back(second);

  const auto decoded = RequestBatch::deserialize(batch.serialize());
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->requests.size(), 2u);
  EXPECT_EQ(decoded->requests[1].client, 1002u);
  EXPECT_EQ(decoded->digest(), batch.digest());
}

TEST(PbftMessages, EmptyBatchIsValid) {
  const RequestBatch batch;
  const auto decoded = RequestBatch::deserialize(batch.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(PbftMessages, PrePrepareRoundTrip) {
  PrePrepare pp;
  pp.view = 3;
  pp.seq = 42;
  pp.batch = RequestBatch{}.serialize();
  pp.batch_digest = RequestBatch{}.digest();
  pp.sender = 2;
  const auto decoded = PrePrepare::deserialize(pp.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->view, 3u);
  EXPECT_EQ(decoded->seq, 42u);
  EXPECT_EQ(decoded->batch_digest, pp.batch_digest);
  EXPECT_EQ(decoded->sender, 2u);
}

TEST(PbftMessages, PrepareCommitRoundTrip) {
  Prepare prep;
  prep.view = 1;
  prep.seq = 5;
  prep.batch_digest.bytes[0] = 9;
  prep.sender = 3;
  const auto dp = Prepare::deserialize(prep.serialize());
  ASSERT_TRUE(dp.has_value());
  EXPECT_EQ(dp->seq, 5u);

  Commit commit;
  commit.view = 1;
  commit.seq = 5;
  commit.batch_digest.bytes[1] = 8;
  commit.sender = 0;
  const auto dc = Commit::deserialize(commit.serialize());
  ASSERT_TRUE(dc.has_value());
  EXPECT_EQ(dc->batch_digest, commit.batch_digest);
}

TEST(PbftMessages, ReplyRoundTripAndAuthInput) {
  Reply reply;
  reply.view = 2;
  reply.timestamp = 10;
  reply.client = 1001;
  reply.sender = 1;
  reply.result = to_bytes("result");
  reply.auth = Bytes(32, 1);
  const auto decoded = Reply::deserialize(reply.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->result, reply.result);

  Reply other = reply;
  other.auth = Bytes(32, 2);
  EXPECT_EQ(reply.auth_input(), other.auth_input());
}

TEST(PbftMessages, CheckpointRoundTrip) {
  Checkpoint cp;
  cp.seq = 100;
  cp.state_digest.bytes[5] = 7;
  cp.sender = 3;
  const auto decoded = Checkpoint::deserialize(cp.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 100u);
  EXPECT_EQ(decoded->state_digest, cp.state_digest);
}

TEST(PbftMessages, PreparedProofRoundTrip) {
  PreparedProof proof;
  proof.pre_prepare.src = 1;
  proof.pre_prepare.type = tag(MsgType::PrePrepare);
  proof.pre_prepare.payload = to_bytes("pp");
  net::Envelope prep;
  prep.type = tag(MsgType::Prepare);
  prep.payload = to_bytes("p1");
  proof.prepares.push_back(prep);
  prep.payload = to_bytes("p2");
  proof.prepares.push_back(prep);

  const auto decoded = PreparedProof::deserialize(proof.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->prepares.size(), 2u);
  EXPECT_EQ(decoded->pre_prepare.payload, to_bytes("pp"));
}

TEST(PbftMessages, ViewChangeRoundTrip) {
  ViewChange vc;
  vc.new_view = 4;
  vc.last_stable = 50;
  net::Envelope cp;
  cp.type = tag(MsgType::Checkpoint);
  cp.payload = to_bytes("cp");
  vc.checkpoint_proof.push_back(cp);
  PreparedProof proof;
  proof.pre_prepare.payload = to_bytes("pp");
  vc.prepared.push_back(proof);
  vc.sender = 2;

  const auto decoded = ViewChange::deserialize(vc.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->new_view, 4u);
  EXPECT_EQ(decoded->last_stable, 50u);
  EXPECT_EQ(decoded->checkpoint_proof.size(), 1u);
  EXPECT_EQ(decoded->prepared.size(), 1u);
  EXPECT_EQ(decoded->sender, 2u);
}

TEST(PbftMessages, NewViewRoundTrip) {
  NewView nv;
  nv.new_view = 4;
  net::Envelope vce;
  vce.payload = to_bytes("vc");
  nv.view_changes.push_back(vce);
  net::Envelope ppe;
  ppe.payload = to_bytes("pp");
  nv.pre_prepares.push_back(ppe);
  nv.sender = 0;

  const auto decoded = NewView::deserialize(nv.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->view_changes.size(), 1u);
  EXPECT_EQ(decoded->pre_prepares.size(), 1u);
}

TEST(PbftMessages, StateTransferRoundTrip) {
  StateRequest sr;
  sr.seq = 100;
  sr.sender = 1;
  const auto dsr = StateRequest::deserialize(sr.serialize());
  ASSERT_TRUE(dsr.has_value());
  EXPECT_EQ(dsr->seq, 100u);

  StateResponse resp;
  resp.seq = 100;
  resp.snapshot = to_bytes("snapshot");
  resp.sender = 2;
  const auto dresp = StateResponse::deserialize(resp.serialize());
  ASSERT_TRUE(dresp.has_value());
  EXPECT_EQ(dresp->snapshot, to_bytes("snapshot"));
}

TEST(PbftMessages, MalformedInputsRejected) {
  EXPECT_FALSE(Request::deserialize(to_bytes("x")).has_value());
  EXPECT_FALSE(PrePrepare::deserialize({}).has_value());
  EXPECT_FALSE(ViewChange::deserialize(to_bytes("junk")).has_value());
  EXPECT_FALSE(NewView::deserialize(to_bytes("{}")).has_value());
}

}  // namespace
}  // namespace sbft::pbft
