#include <gtest/gtest.h>

#include "common/serde.hpp"
#include "pbft/messages.hpp"

namespace sbft::pbft {
namespace {

[[nodiscard]] Request sample_request() {
  Request req;
  req.client = 1001;
  req.timestamp = 7;
  req.payload = to_bytes("operation");
  req.auth = Bytes(32, 0xaa);
  return req;
}

TEST(PbftMessages, RequestRoundTrip) {
  const Request req = sample_request();
  const auto decoded = Request::deserialize(req.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->client, req.client);
  EXPECT_EQ(decoded->timestamp, req.timestamp);
  EXPECT_EQ(decoded->payload, req.payload);
  EXPECT_EQ(decoded->auth, req.auth);
}

TEST(PbftMessages, RequestAuthInputExcludesAuth) {
  Request a = sample_request();
  Request b = sample_request();
  b.auth = Bytes(32, 0xbb);
  EXPECT_EQ(a.auth_input(), b.auth_input());
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(PbftMessages, RequestDeserializeRejectsTrailingGarbage) {
  Bytes data = sample_request().serialize();
  data.push_back(0);
  EXPECT_FALSE(Request::deserialize(data).has_value());
}

TEST(PbftMessages, BatchRoundTrip) {
  RequestBatch batch;
  batch.requests.push_back(sample_request());
  Request second = sample_request();
  second.client = 1002;
  batch.requests.push_back(second);

  const auto decoded = RequestBatch::deserialize(batch.serialize());
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->requests.size(), 2u);
  EXPECT_EQ(decoded->requests[1].client, 1002u);
  EXPECT_EQ(decoded->digest(), batch.digest());
}

TEST(PbftMessages, EmptyBatchIsValid) {
  const RequestBatch batch;
  const auto decoded = RequestBatch::deserialize(batch.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(PbftMessages, PrePrepareRoundTrip) {
  PrePrepare pp;
  pp.view = 3;
  pp.seq = 42;
  pp.batch = RequestBatch{}.serialize();
  pp.batch_digest = RequestBatch{}.digest();
  pp.sender = 2;
  const auto decoded = PrePrepare::deserialize(pp.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->view, 3u);
  EXPECT_EQ(decoded->seq, 42u);
  EXPECT_EQ(decoded->batch_digest, pp.batch_digest);
  EXPECT_EQ(decoded->sender, 2u);
}

TEST(PbftMessages, PrepareCommitRoundTrip) {
  Prepare prep;
  prep.view = 1;
  prep.seq = 5;
  prep.batch_digest.bytes[0] = 9;
  prep.sender = 3;
  const auto dp = Prepare::deserialize(prep.serialize());
  ASSERT_TRUE(dp.has_value());
  EXPECT_EQ(dp->seq, 5u);

  Commit commit;
  commit.view = 1;
  commit.seq = 5;
  commit.batch_digest.bytes[1] = 8;
  commit.sender = 0;
  const auto dc = Commit::deserialize(commit.serialize());
  ASSERT_TRUE(dc.has_value());
  EXPECT_EQ(dc->batch_digest, commit.batch_digest);
}

TEST(PbftMessages, ReplyRoundTripAndAuthInput) {
  Reply reply;
  reply.view = 2;
  reply.timestamp = 10;
  reply.client = 1001;
  reply.sender = 1;
  reply.result = to_bytes("result");
  reply.auth = Bytes(32, 1);
  const auto decoded = Reply::deserialize(reply.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->result, reply.result);

  Reply other = reply;
  other.auth = Bytes(32, 2);
  EXPECT_EQ(reply.auth_input(), other.auth_input());
}

TEST(PbftMessages, CheckpointRoundTrip) {
  Checkpoint cp;
  cp.seq = 100;
  cp.state_digest.bytes[5] = 7;
  cp.sender = 3;
  const auto decoded = Checkpoint::deserialize(cp.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 100u);
  EXPECT_EQ(decoded->state_digest, cp.state_digest);
}

TEST(PbftMessages, PreparedProofRoundTrip) {
  PreparedProof proof;
  proof.pre_prepare.src = 1;
  proof.pre_prepare.type = tag(MsgType::PrePrepare);
  proof.pre_prepare.payload = to_bytes("pp");
  net::Envelope prep;
  prep.type = tag(MsgType::Prepare);
  prep.payload = to_bytes("p1");
  proof.prepares.push_back(prep);
  prep.payload = to_bytes("p2");
  proof.prepares.push_back(prep);

  const auto decoded = PreparedProof::deserialize(proof.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->prepares.size(), 2u);
  EXPECT_EQ(decoded->pre_prepare.payload, to_bytes("pp"));
}

TEST(PbftMessages, ViewChangeRoundTrip) {
  ViewChange vc;
  vc.new_view = 4;
  vc.last_stable = 50;
  net::Envelope cp;
  cp.type = tag(MsgType::Checkpoint);
  cp.payload = to_bytes("cp");
  vc.checkpoint_proof.push_back(cp);
  PreparedProof proof;
  proof.pre_prepare.payload = to_bytes("pp");
  vc.prepared.push_back(proof);
  vc.sender = 2;

  const auto decoded = ViewChange::deserialize(vc.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->new_view, 4u);
  EXPECT_EQ(decoded->last_stable, 50u);
  EXPECT_EQ(decoded->checkpoint_proof.size(), 1u);
  EXPECT_EQ(decoded->prepared.size(), 1u);
  EXPECT_EQ(decoded->sender, 2u);
}

TEST(PbftMessages, NewViewRoundTrip) {
  NewView nv;
  nv.new_view = 4;
  net::Envelope vce;
  vce.payload = to_bytes("vc");
  nv.view_changes.push_back(vce);
  net::Envelope ppe;
  ppe.payload = to_bytes("pp");
  nv.pre_prepares.push_back(ppe);
  nv.sender = 0;

  const auto decoded = NewView::deserialize(nv.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->view_changes.size(), 1u);
  EXPECT_EQ(decoded->pre_prepares.size(), 1u);
}

TEST(PbftMessages, StateTransferRoundTrip) {
  StateRequest sr;
  sr.seq = 100;
  sr.sender = 1;
  const auto dsr = StateRequest::deserialize(sr.serialize());
  ASSERT_TRUE(dsr.has_value());
  EXPECT_EQ(dsr->seq, 100u);

  StateResponse resp;
  resp.seq = 100;
  resp.snapshot = to_bytes("snapshot");
  resp.sender = 2;
  const auto dresp = StateResponse::deserialize(resp.serialize());
  ASSERT_TRUE(dresp.has_value());
  EXPECT_EQ(dresp->snapshot, to_bytes("snapshot"));
}

TEST(PbftMessages, MalformedInputsRejected) {
  EXPECT_FALSE(Request::deserialize(to_bytes("x")).has_value());
  EXPECT_FALSE(PrePrepare::deserialize({}).has_value());
  EXPECT_FALSE(ViewChange::deserialize(to_bytes("junk")).has_value());
  EXPECT_FALSE(NewView::deserialize(to_bytes("{}")).has_value());
}

namespace {

/// A deep certificate-carrying structure exercising every nested parse
/// layer: an Envelope wrapping a ViewChange, whose checkpoint proof and
/// PreparedProofs embed further complete envelopes (the PR 3
/// Reader::view/skip/position zero-copy paths).
[[nodiscard]] net::Envelope nested_proof_envelope() {
  const auto make_env = [](MsgType type, Bytes payload) {
    net::Envelope env;
    env.src = principal::pbft_replica(2);
    env.dst = principal::pbft_replica(1);
    env.type = tag(type);
    env.payload = std::move(payload);
    env.signature = SharedBytes(Bytes(32, 0x5c));
    return env;
  };

  ViewChange vc;
  vc.new_view = 3;
  vc.last_stable = 10;
  Checkpoint cp;
  cp.seq = 10;
  cp.state_digest.bytes.fill(0xcd);
  for (ReplicaId r = 0; r < 3; ++r) {
    cp.sender = r;
    vc.checkpoint_proof.push_back(
        make_env(MsgType::Checkpoint, cp.serialize()));
  }
  PrePrepare pp;
  pp.view = 2;
  pp.seq = 11;
  pp.batch = RequestBatch{{sample_request()}}.serialize();
  pp.batch_digest.bytes.fill(0xab);
  pp.sender = 2;
  PreparedProof proof;
  proof.pre_prepare = make_env(MsgType::PrePrepare, pp.serialize());
  Prepare prep;
  prep.view = 2;
  prep.seq = 11;
  prep.batch_digest = pp.batch_digest;
  for (ReplicaId r = 0; r < 2; ++r) {
    prep.sender = r;
    proof.prepares.push_back(make_env(MsgType::Prepare, prep.serialize()));
  }
  vc.prepared.push_back(std::move(proof));
  vc.sender = 1;
  return make_env(MsgType::ViewChange, vc.serialize());
}

}  // namespace

// Exhaustive truncation hardening: for EVERY strict prefix of the wire
// image of an envelope embedding a proof embedding envelopes, parsing must
// fail cleanly — no out-of-bounds read (the ASan job enforces that), no
// silent success on a shorter input. Only the full image parses.
TEST(PbftMessages, NestedProofTruncatedAtEveryByteIsRejected) {
  const net::Envelope env = nested_proof_envelope();
  const Bytes wire = env.wire().to_bytes();
  ASSERT_GT(wire.size(), 100u);

  for (std::size_t len = 0; len < wire.size(); ++len) {
    const ByteView prefix{wire.data(), len};
    EXPECT_FALSE(net::Envelope::deserialize(prefix).has_value())
        << "prefix of " << len << " bytes parsed as a complete envelope";
  }
  const auto full = net::Envelope::deserialize(wire);
  ASSERT_TRUE(full.has_value());
  ASSERT_TRUE(ViewChange::deserialize(full->payload).has_value());

  // Same property one layer down: every strict prefix of the ViewChange
  // payload (the layer whose parse walks nested envelope views) fails.
  const Bytes payload = full->payload.to_bytes();
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const ByteView prefix{payload.data(), len};
    EXPECT_FALSE(ViewChange::deserialize(prefix).has_value())
        << "ViewChange prefix of " << len << " bytes parsed";
  }

  // And for the PreparedProof layer inside it.
  const auto vc = ViewChange::deserialize(payload);
  ASSERT_TRUE(vc.has_value());
  const Bytes proof_bytes = vc->prepared.at(0).serialize();
  for (std::size_t len = 0; len < proof_bytes.size(); ++len) {
    const ByteView prefix{proof_bytes.data(), len};
    EXPECT_FALSE(PreparedProof::deserialize(prefix).has_value())
        << "PreparedProof prefix of " << len << " bytes parsed";
  }
}

// Hostile counts must not command allocations the input cannot back: a
// tiny message claiming millions of entries is rejected before reserve.
TEST(PbftMessages, ImplausibleCountsRejectedBeforeAllocation) {
  {
    Writer w;
    w.u32(99'999);  // batch "contains" 99,999 requests... in 4 more bytes
    w.u32(0);
    EXPECT_FALSE(RequestBatch::deserialize(std::move(w).take()).has_value());
  }
  {
    Writer w;
    w.u64(1);    // new_view
    w.u64(0);    // last_stable
    w.u32(900);  // 900 checkpoint envelopes claimed, no bytes behind them
    EXPECT_FALSE(ViewChange::deserialize(std::move(w).take()).has_value());
  }
}

}  // namespace
}  // namespace sbft::pbft
