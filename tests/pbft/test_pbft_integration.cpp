// End-to-end PBFT cluster tests on the deterministic simulator.
#include <gtest/gtest.h>

#include "apps/counter_app.hpp"
#include "apps/kv_store.hpp"
#include "common/serde.hpp"
#include "runtime/pbft_cluster.hpp"

namespace sbft::runtime {
namespace {

using apps::CounterApp;
using apps::KvStore;

[[nodiscard]] PbftClusterOptions small_config(std::uint64_t seed) {
  PbftClusterOptions options;
  options.seed = seed;
  options.config.n = 4;
  options.config.f = 1;
  options.config.checkpoint_interval = 10;
  options.config.watermark_window = 40;
  options.config.batch_max = 1;  // unbatched unless overridden
  return options;
}

[[nodiscard]] apps::AppFactory counter_factory() {
  return [] { return std::make_unique<CounterApp>(); };
}

[[nodiscard]] std::uint64_t counter_value(const Bytes& reply) {
  Reader r(reply);
  const std::uint64_t v = r.u64();
  EXPECT_TRUE(r.boolean());
  EXPECT_TRUE(r.done());
  return v;
}

// A VerifyCache shared between the transport-level VerifierPool and the
// replica makes "verify once per replica" hold end-to-end: the pool's
// ingress verification is the only full signature check; the engine's own
// validation of the same envelope is a cache hit.
TEST(PbftIntegration, SharedAuthCacheVerifiesIngressEnvelopesOnce) {
  pbft::Config config;
  config.n = 4;
  config.f = 1;

  crypto::KeyRing ring(crypto::Scheme::Ed25519, 77);
  for (ReplicaId r = 0; r < config.n; ++r) {
    ring.add_principal(principal::pbft_replica(r));
  }
  const pbft::ClientDirectory directory(0x5ec7e7);
  auto cache = std::make_shared<net::VerifyCache>(ring.verifier());

  // Replica 1 (a backup in view 0) shares its cache with the ingress pool.
  pbft::Replica replica(config, 1, ring.signer(principal::pbft_replica(1)),
                        ring.verifier(), directory, counter_factory(), cache);

  // Primary's signed PrePrepare for one authenticated request.
  pbft::Request req;
  req.client = kFirstClientId;
  req.timestamp = 1;
  req.payload = CounterApp::encode_add(1);
  const crypto::Key32 key = directory.auth_key(req.client);
  const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                         req.auth_input());
  req.auth = Bytes(mac.bytes.begin(), mac.bytes.end());
  pbft::PrePrepare pp;
  pp.view = 0;
  pp.seq = 1;
  pp.batch = pbft::RequestBatch{{req}}.serialize();
  pp.batch_digest = crypto::sha256(pp.batch);
  pp.sender = 0;
  net::Envelope env;
  env.src = principal::pbft_replica(0);
  env.dst = principal::pbft_replica(1);
  env.type = pbft::tag(pbft::MsgType::PrePrepare);
  env.payload = pp.serialize();
  net::sign_envelope(env, *ring.signer(principal::pbft_replica(0)));

  // Ingress pre-verification (synchronous pool mode, as the simulator
  // would use) pays the one full verification...
  net::VerifierPool pool(cache, /*workers=*/0);
  auto results = pool.verify_batch({{env, env.src}});
  ASSERT_TRUE(results.at(0).has_value());
  EXPECT_EQ(cache->stats().misses, 1u);

  // ...and the replica's own validation of the delivered envelope hits.
  const auto out = replica.handle(env, /*now=*/1);
  EXPECT_FALSE(out.empty());  // the PrePrepare was accepted: Prepares emitted
  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_GE(cache->stats().hits, 1u);
  EXPECT_EQ(cache->stats().failures, 0u);
}

TEST(PbftIntegration, SingleRequestExecutesEverywhere) {
  PbftCluster cluster(small_config(1), counter_factory());
  cluster.add_client(kFirstClientId);

  const auto result =
      cluster.execute(kFirstClientId, CounterApp::encode_add(5));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(counter_value(*result), 5u);

  // Let stragglers finish, then all replicas must have executed seq 1.
  cluster.harness().run_for(1'000'000);
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.replica(r).last_executed(), 1u) << "replica " << r;
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(PbftIntegration, SequentialRequestsLinearize) {
  PbftCluster cluster(small_config(2), counter_factory());
  cluster.add_client(kFirstClientId);

  std::uint64_t expected = 0;
  for (int i = 1; i <= 20; ++i) {
    expected += static_cast<std::uint64_t>(i);
    const auto result = cluster.execute(
        kFirstClientId, CounterApp::encode_add(static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(result.has_value()) << "request " << i;
    EXPECT_EQ(counter_value(*result), expected);
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(PbftIntegration, KvStoreEndToEnd) {
  PbftCluster cluster(small_config(3),
                      [] { return std::make_unique<KvStore>(); });
  cluster.add_client(kFirstClientId);

  auto put = cluster.execute(kFirstClientId,
                             apps::kv::encode_put(to_bytes("k"), to_bytes("v")));
  ASSERT_TRUE(put.has_value());
  auto put_reply = apps::kv::decode_reply(*put);
  ASSERT_TRUE(put_reply.has_value());
  EXPECT_EQ(put_reply->status, apps::KvStatus::Ok);

  auto get = cluster.execute(kFirstClientId, apps::kv::encode_get(to_bytes("k")));
  ASSERT_TRUE(get.has_value());
  auto get_reply = apps::kv::decode_reply(*get);
  ASSERT_TRUE(get_reply.has_value());
  EXPECT_EQ(get_reply->status, apps::KvStatus::Ok);
  EXPECT_EQ(get_reply->value, to_bytes("v"));

  auto del = cluster.execute(kFirstClientId, apps::kv::encode_del(to_bytes("k")));
  ASSERT_TRUE(del.has_value());
  auto get2 = cluster.execute(kFirstClientId, apps::kv::encode_get(to_bytes("k")));
  ASSERT_TRUE(get2.has_value());
  EXPECT_EQ(apps::kv::decode_reply(*get2)->status, apps::KvStatus::NotFound);
}

TEST(PbftIntegration, MultipleClientsAllComplete) {
  auto options = small_config(4);
  options.config.batch_max = 8;
  PbftCluster cluster(options, counter_factory());
  for (ClientId c = kFirstClientId; c < kFirstClientId + 5; ++c) {
    cluster.add_client(c);
  }
  // All five submit concurrently; each gets a reply.
  for (ClientId c = kFirstClientId; c < kFirstClientId + 5; ++c) {
    cluster.harness().inject(
        cluster.client(c).client().submit(CounterApp::encode_add(1),
                                          cluster.harness().now()));
  }
  const bool done = cluster.harness().run_until(
      [&] {
        for (ClientId c = kFirstClientId; c < kFirstClientId + 5; ++c) {
          if (cluster.client(c).results().empty()) return false;
        }
        return true;
      },
      20'000'000);
  EXPECT_TRUE(done);
  EXPECT_TRUE(cluster.check_agreement());

  // Counter saw all 5 increments exactly once.
  cluster.harness().run_for(2'000'000);
  const auto& app = dynamic_cast<const CounterApp&>(cluster.replica(0).app());
  EXPECT_EQ(app.value(), 5u);
}

TEST(PbftIntegration, DuplicateTimestampGetsCachedReply) {
  PbftCluster cluster(small_config(5), counter_factory());
  cluster.add_client(kFirstClientId);
  auto first = cluster.execute(kFirstClientId, CounterApp::encode_add(3));
  ASSERT_TRUE(first.has_value());

  // Re-broadcasting the identical request must not re-execute: the counter
  // stays at 3 (replicas resend the cached reply).
  auto& client = cluster.client(kFirstClientId).client();
  (void)client;  // the engine dedups by timestamp internally on replicas
  cluster.harness().run_for(1'000'000);
  const auto& app = dynamic_cast<const CounterApp&>(cluster.replica(0).app());
  EXPECT_EQ(app.value(), 3u);
  EXPECT_EQ(cluster.replica(0).executed_requests(), 1u);
}

TEST(PbftIntegration, CheckpointsAdvanceAndGarbageCollect) {
  auto options = small_config(6);
  options.config.checkpoint_interval = 5;
  PbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value());
  }
  cluster.harness().run_for(2'000'000);
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_GE(cluster.replica(r).last_stable(), 5u) << "replica " << r;
    EXPECT_EQ(cluster.replica(r).last_executed(), 12u);
  }
}

TEST(PbftIntegration, ToleratesCrashedBackup) {
  PbftCluster cluster(small_config(7), counter_factory());
  cluster.add_client(kFirstClientId);
  cluster.crash_replica(3);  // a backup

  for (int i = 1; i <= 5; ++i) {
    const auto result = cluster.execute(kFirstClientId, CounterApp::encode_add(1));
    ASSERT_TRUE(result.has_value()) << "request " << i;
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(PbftIntegration, ViewChangeOnCrashedPrimary) {
  PbftCluster cluster(small_config(8), counter_factory());
  cluster.add_client(kFirstClientId);

  // Request 1 in view 0 proves liveness before the crash.
  ASSERT_TRUE(
      cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value());

  cluster.crash_replica(0);  // primary of view 0
  const auto result =
      cluster.execute(kFirstClientId, CounterApp::encode_add(2), 30'000'000);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(counter_value(*result), 3u);

  // Survivors moved past view 0.
  for (ReplicaId r = 1; r < 4; ++r) {
    EXPECT_GE(cluster.replica(r).view(), 1u) << "replica " << r;
  }
  EXPECT_TRUE(cluster.check_agreement());

  // The view-change and new-view proofs embed prepare/checkpoint envelopes
  // the survivors already verified (or signed) during normal operation —
  // with the VerifyCache those re-validations are hits, so no envelope is
  // verified twice per replica in steady state.
  std::uint64_t hits = 0;
  for (ReplicaId r = 1; r < 4; ++r) {
    const net::VerifyStats stats = cluster.replica(r).auth().stats();
    hits += stats.hits;
    EXPECT_EQ(stats.failures, 0u) << "replica " << r;
  }
  EXPECT_GT(hits, 0u);
}

TEST(PbftIntegration, RecoveredReplicaCatchesUpViaStateTransfer) {
  auto options = small_config(9);
  options.config.checkpoint_interval = 5;
  PbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);

  cluster.crash_replica(3);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value());
  }
  cluster.restore_replica(3);
  // More traffic → checkpoints → replica 3 learns it is behind and fetches
  // the snapshot.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value());
  }
  cluster.harness().run_for(5'000'000);
  EXPECT_GE(cluster.replica(3).last_executed(), 15u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(PbftIntegration, SurvivesLossyNetwork) {
  auto options = small_config(10);
  options.link_params.drop_prob = 0.05;
  options.link_params.duplicate_prob = 0.02;
  PbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);

  std::uint64_t expected = 0;
  for (int i = 1; i <= 10; ++i) {
    expected += 1;
    const auto result =
        cluster.execute(kFirstClientId, CounterApp::encode_add(1), 60'000'000);
    ASSERT_TRUE(result.has_value()) << "request " << i;
    EXPECT_EQ(counter_value(*result), expected);
  }
  EXPECT_TRUE(cluster.check_agreement());
}

class PbftSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PbftSeedSweep, AgreementHoldsUnderRandomSchedules) {
  auto options = small_config(GetParam());
  options.link_params.drop_prob = 0.03;
  options.config.batch_max = 4;
  PbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);
  cluster.add_client(kFirstClientId + 1);

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster
                    .execute(kFirstClientId + (i % 2),
                             CounterApp::encode_add(1), 60'000'000)
                    .has_value());
  }
  EXPECT_TRUE(cluster.check_agreement());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PbftSeedSweep,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

}  // namespace
}  // namespace sbft::runtime
