// End-to-end PBFT cluster tests on the deterministic simulator.
#include <gtest/gtest.h>

#include "apps/counter_app.hpp"
#include "apps/kv_store.hpp"
#include "common/serde.hpp"
#include "runtime/pbft_cluster.hpp"

namespace sbft::runtime {
namespace {

using apps::CounterApp;
using apps::KvStore;

[[nodiscard]] PbftClusterOptions small_config(std::uint64_t seed) {
  PbftClusterOptions options;
  options.seed = seed;
  options.config.n = 4;
  options.config.f = 1;
  options.config.checkpoint_interval = 10;
  options.config.watermark_window = 40;
  options.config.batch_max = 1;  // unbatched unless overridden
  return options;
}

[[nodiscard]] apps::AppFactory counter_factory() {
  return [] { return std::make_unique<CounterApp>(); };
}

[[nodiscard]] std::uint64_t counter_value(const Bytes& reply) {
  Reader r(reply);
  const std::uint64_t v = r.u64();
  EXPECT_TRUE(r.boolean());
  EXPECT_TRUE(r.done());
  return v;
}

// A VerifyCache shared between the transport-level VerifierPool and the
// replica makes "verify once per replica" hold end-to-end: the pool's
// ingress verification is the only full signature check; the engine's own
// validation of the same envelope is a cache hit.
TEST(PbftIntegration, SharedAuthCacheVerifiesIngressEnvelopesOnce) {
  pbft::Config config;
  config.n = 4;
  config.f = 1;

  crypto::KeyRing ring(crypto::Scheme::Ed25519, 77);
  for (ReplicaId r = 0; r < config.n; ++r) {
    ring.add_principal(principal::pbft_replica(r));
  }
  const pbft::ClientDirectory directory(0x5ec7e7);
  auto cache = std::make_shared<net::VerifyCache>(ring.verifier());

  // Replica 1 (a backup in view 0) shares its cache with the ingress pool.
  pbft::Replica replica(config, 1, ring.signer(principal::pbft_replica(1)),
                        ring.verifier(), directory, counter_factory(), cache);

  // Primary's signed PrePrepare for one authenticated request.
  pbft::Request req;
  req.client = kFirstClientId;
  req.timestamp = 1;
  req.payload = CounterApp::encode_add(1);
  const crypto::Key32 key = directory.auth_key(req.client);
  const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                         req.auth_input());
  req.auth = Bytes(mac.bytes.begin(), mac.bytes.end());
  pbft::PrePrepare pp;
  pp.view = 0;
  pp.seq = 1;
  pp.batch = pbft::RequestBatch{{req}}.serialize();
  pp.batch_digest = crypto::sha256(pp.batch);
  pp.sender = 0;
  net::Envelope env;
  env.src = principal::pbft_replica(0);
  env.dst = principal::pbft_replica(1);
  env.type = pbft::tag(pbft::MsgType::PrePrepare);
  env.payload = pp.serialize();
  net::sign_envelope(env, *ring.signer(principal::pbft_replica(0)));

  // Ingress pre-verification (synchronous pool mode, as the simulator
  // would use) pays the one full verification...
  net::VerifierPool pool(cache, /*workers=*/0);
  auto results = pool.verify_batch({{env, env.src}});
  ASSERT_TRUE(results.at(0).has_value());
  EXPECT_EQ(cache->stats().misses, 1u);

  // ...and the replica's own validation of the delivered envelope hits.
  const auto out = replica.handle(env, /*now=*/1);
  EXPECT_FALSE(out.empty());  // the PrePrepare was accepted: Prepares emitted
  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_GE(cache->stats().hits, 1u);
  EXPECT_EQ(cache->stats().failures, 0u);
}

TEST(PbftIntegration, SingleRequestExecutesEverywhere) {
  PbftCluster cluster(small_config(1), counter_factory());
  cluster.add_client(kFirstClientId);

  const auto result =
      cluster.execute(kFirstClientId, CounterApp::encode_add(5));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(counter_value(*result), 5u);

  // Let stragglers finish, then all replicas must have executed seq 1.
  cluster.harness().run_for(1'000'000);
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.replica(r).last_executed(), 1u) << "replica " << r;
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(PbftIntegration, SequentialRequestsLinearize) {
  PbftCluster cluster(small_config(2), counter_factory());
  cluster.add_client(kFirstClientId);

  std::uint64_t expected = 0;
  for (int i = 1; i <= 20; ++i) {
    expected += static_cast<std::uint64_t>(i);
    const auto result = cluster.execute(
        kFirstClientId, CounterApp::encode_add(static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(result.has_value()) << "request " << i;
    EXPECT_EQ(counter_value(*result), expected);
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(PbftIntegration, KvStoreEndToEnd) {
  PbftCluster cluster(small_config(3),
                      [] { return std::make_unique<KvStore>(); });
  cluster.add_client(kFirstClientId);

  auto put = cluster.execute(kFirstClientId,
                             apps::kv::encode_put(to_bytes("k"), to_bytes("v")));
  ASSERT_TRUE(put.has_value());
  auto put_reply = apps::kv::decode_reply(*put);
  ASSERT_TRUE(put_reply.has_value());
  EXPECT_EQ(put_reply->status, apps::KvStatus::Ok);

  auto get = cluster.execute(kFirstClientId, apps::kv::encode_get(to_bytes("k")));
  ASSERT_TRUE(get.has_value());
  auto get_reply = apps::kv::decode_reply(*get);
  ASSERT_TRUE(get_reply.has_value());
  EXPECT_EQ(get_reply->status, apps::KvStatus::Ok);
  EXPECT_EQ(get_reply->value, to_bytes("v"));

  auto del = cluster.execute(kFirstClientId, apps::kv::encode_del(to_bytes("k")));
  ASSERT_TRUE(del.has_value());
  auto get2 = cluster.execute(kFirstClientId, apps::kv::encode_get(to_bytes("k")));
  ASSERT_TRUE(get2.has_value());
  EXPECT_EQ(apps::kv::decode_reply(*get2)->status, apps::KvStatus::NotFound);
}

TEST(PbftIntegration, MultipleClientsAllComplete) {
  auto options = small_config(4);
  options.config.batch_max = 8;
  PbftCluster cluster(options, counter_factory());
  for (ClientId c = kFirstClientId; c < kFirstClientId + 5; ++c) {
    cluster.add_client(c);
  }
  // All five submit concurrently; each gets a reply.
  for (ClientId c = kFirstClientId; c < kFirstClientId + 5; ++c) {
    cluster.harness().inject(
        cluster.client(c).client().submit(CounterApp::encode_add(1),
                                          cluster.harness().now()));
  }
  const bool done = cluster.harness().run_until(
      [&] {
        for (ClientId c = kFirstClientId; c < kFirstClientId + 5; ++c) {
          if (cluster.client(c).results().empty()) return false;
        }
        return true;
      },
      20'000'000);
  EXPECT_TRUE(done);
  EXPECT_TRUE(cluster.check_agreement());

  // Counter saw all 5 increments exactly once.
  cluster.harness().run_for(2'000'000);
  const auto& app = dynamic_cast<const CounterApp&>(cluster.replica(0).app());
  EXPECT_EQ(app.value(), 5u);
}

TEST(PbftIntegration, DuplicateTimestampGetsCachedReply) {
  PbftCluster cluster(small_config(5), counter_factory());
  cluster.add_client(kFirstClientId);
  auto first = cluster.execute(kFirstClientId, CounterApp::encode_add(3));
  ASSERT_TRUE(first.has_value());

  // Re-broadcasting the identical request must not re-execute: the counter
  // stays at 3 (replicas resend the cached reply).
  auto& client = cluster.client(kFirstClientId).client();
  (void)client;  // the engine dedups by timestamp internally on replicas
  cluster.harness().run_for(1'000'000);
  const auto& app = dynamic_cast<const CounterApp&>(cluster.replica(0).app());
  EXPECT_EQ(app.value(), 3u);
  EXPECT_EQ(cluster.replica(0).executed_requests(), 1u);
}

TEST(PbftIntegration, CheckpointsAdvanceAndGarbageCollect) {
  auto options = small_config(6);
  options.config.checkpoint_interval = 5;
  PbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value());
  }
  cluster.harness().run_for(2'000'000);
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_GE(cluster.replica(r).last_stable(), 5u) << "replica " << r;
    EXPECT_EQ(cluster.replica(r).last_executed(), 12u);
  }
}

// Pipelined batching, gate level: with pipeline_depth = 1 the primary is
// stop-and-wait — a second request must NOT produce a second PrePrepare
// while the first batch is unexecuted; depth 2 starts both instances.
TEST(PbftIntegration, PipelineDepthGatesConcurrentBatches) {
  const auto count_pre_prepares = [](std::size_t depth) {
    pbft::Config config;
    config.n = 4;
    config.f = 1;
    config.batch_max = 1;
    config.pipeline_depth = depth;
    crypto::KeyRing ring(crypto::Scheme::HmacShared, 21);
    for (ReplicaId r = 0; r < config.n; ++r) {
      ring.add_principal(principal::pbft_replica(r));
    }
    const pbft::ClientDirectory directory(0x5ec7e7);
    pbft::Replica primary(config, 0, ring.signer(principal::pbft_replica(0)),
                          ring.verifier(), directory, counter_factory());

    std::size_t pre_prepares = 0;
    for (ClientId c = kFirstClientId; c < kFirstClientId + 2; ++c) {
      pbft::Request req;
      req.client = c;
      req.timestamp = 1;
      req.payload = CounterApp::encode_add(1);
      const crypto::Key32 key = directory.auth_key(c);
      const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                             req.auth_input());
      req.auth = Bytes(mac.bytes.begin(), mac.bytes.end());
      net::Envelope env;
      env.src = principal::client(c);
      env.dst = principal::pbft_replica(0);
      env.type = pbft::tag(pbft::MsgType::Request);
      env.payload = req.serialize();
      for (const auto& out : primary.handle(env, /*now=*/1'000)) {
        if (out.type == pbft::tag(pbft::MsgType::PrePrepare)) ++pre_prepares;
      }
    }
    return pre_prepares;
  };
  // One broadcast = n-1 = 3 PrePrepare copies.
  EXPECT_EQ(count_pre_prepares(1), 3u);  // second batch gated
  EXPECT_EQ(count_pre_prepares(2), 6u);  // both instances in flight
  EXPECT_EQ(count_pre_prepares(0), 6u);  // unbounded legacy behaviour
}

// Pipelined batching, safety level: depths 1 and 4 must drive the cluster
// to the SAME application state for the same client workload (execution
// stays sequence-ordered no matter how many instances run concurrently),
// and agreement must hold within each run.
TEST(PbftIntegration, PipelineDepthsProduceIdenticalKvState) {
  constexpr int kClients = 8;
  constexpr int kRounds = 3;
  std::vector<Digest> state_digests;
  std::vector<std::uint64_t> executed;
  for (const std::size_t depth : {std::size_t{1}, std::size_t{4}}) {
    auto options = small_config(11);
    options.config.batch_max = 4;
    options.config.pipeline_depth = depth;
    PbftCluster cluster(options, [] { return std::make_unique<KvStore>(); });
    for (int c = 0; c < kClients; ++c) {
      cluster.add_client(kFirstClientId + static_cast<ClientId>(c));
    }
    for (int round = 1; round <= kRounds; ++round) {
      // All clients submit concurrently: with depth 4 several batches are
      // in flight at once; with depth 1 they serialize.
      for (int c = 0; c < kClients; ++c) {
        const ClientId id = kFirstClientId + static_cast<ClientId>(c);
        auto& actor = cluster.client(id);
        cluster.harness().inject(actor.client().submit(
            apps::kv::encode_put(apps::kv::encode_key(id),
                                 CounterApp::encode_add(
                                     static_cast<std::uint64_t>(round))),
            cluster.harness().now()));
      }
      const bool done = cluster.harness().run_until(
          [&] {
            for (int c = 0; c < kClients; ++c) {
              const ClientId id = kFirstClientId + static_cast<ClientId>(c);
              if (cluster.client(id).results().size() <
                  static_cast<std::size_t>(round)) {
                return false;
              }
            }
            return true;
          },
          cluster.harness().now() + 30'000'000);
      ASSERT_TRUE(done) << "depth " << depth << " round " << round;
    }
    cluster.harness().run_for(2'000'000);
    EXPECT_TRUE(cluster.check_agreement()) << "depth " << depth;
    // Every replica converged to the same state within the run...
    const Digest d0 = cluster.replica(0).app().state_digest();
    for (ReplicaId r = 1; r < 4; ++r) {
      EXPECT_EQ(cluster.replica(r).app().state_digest(), d0)
          << "depth " << depth << " replica " << r;
    }
    state_digests.push_back(d0);
    executed.push_back(cluster.replica(0).executed_requests());
  }
  // ...and across depths the final state and executed-op count agree.
  ASSERT_EQ(state_digests.size(), 2u);
  EXPECT_EQ(state_digests[0], state_digests[1]);
  EXPECT_EQ(executed[0], executed[1]);
  EXPECT_EQ(executed[0],
            static_cast<std::uint64_t>(kClients) * kRounds);
}

// Pipelined batching + view change: a primary crash with several instances
// in flight must still recover into a consistent new view.
TEST(PbftIntegration, ViewChangeWithPipelinedBatchesRecovers) {
  auto options = small_config(12);
  options.config.batch_max = 2;
  options.config.pipeline_depth = 4;
  PbftCluster cluster(options, counter_factory());
  constexpr int kClients = 4;
  for (int c = 0; c < kClients; ++c) {
    cluster.add_client(kFirstClientId + static_cast<ClientId>(c));
  }
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(cluster
                    .execute(kFirstClientId + static_cast<ClientId>(c),
                             CounterApp::encode_add(1))
                    .has_value());
  }

  cluster.crash_replica(0);
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(cluster
                    .execute(kFirstClientId + static_cast<ClientId>(c),
                             CounterApp::encode_add(1), 30'000'000)
                    .has_value());
  }
  EXPECT_TRUE(cluster.check_agreement());
  for (ReplicaId r = 1; r < 4; ++r) {
    EXPECT_GE(cluster.replica(r).view(), 1u);
    // View-change bookkeeping for installed views was garbage-collected
    // (the sent-NewView marker map used to grow forever).
    const auto fp = cluster.replica(r).gc_footprint();
    EXPECT_EQ(fp.new_view_markers, 0u) << "replica " << r;
    EXPECT_TRUE(fp.view_change_views == 0 ||
                fp.min_view_change_view > cluster.replica(r).view())
        << "replica " << r;
  }
}

// Checkpoint garbage collection stays bounded under pipelining: after
// stabilization nothing seq-keyed survives at or below last_stable.
TEST(PbftIntegration, CheckpointGcBoundsUnderPipelining) {
  auto options = small_config(13);
  options.config.checkpoint_interval = 5;
  options.config.watermark_window = 40;
  options.config.batch_max = 2;
  options.config.pipeline_depth = 4;
  PbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(
        cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value());
  }
  cluster.harness().run_for(2'000'000);

  for (ReplicaId r = 0; r < 4; ++r) {
    const SeqNum stable = cluster.replica(r).last_stable();
    EXPECT_GE(stable, 20u) << "replica " << r;
    const auto fp = cluster.replica(r).gc_footprint();
    EXPECT_TRUE(fp.log_slots == 0 || fp.min_log_seq > stable)
        << "replica " << r << ": log slot at/below stable retained";
    EXPECT_TRUE(fp.checkpoint_seqs == 0 || fp.min_checkpoint_seq > stable)
        << "replica " << r << ": checkpoint certificate below stable";
    // The previous stable snapshot is deliberately retained (serving
    // hysteresis for peers mid-fetch); anything older must be gone.
    EXPECT_TRUE(fp.snapshots == 0 ||
                fp.min_snapshot_seq + options.config.checkpoint_interval >=
                    stable)
        << "replica " << r << ": snapshot older than the previous stable";
    EXPECT_LE(fp.snapshots, 3u) << "replica " << r;
    EXPECT_LE(fp.log_slots,
              static_cast<std::size_t>(options.config.watermark_window))
        << "replica " << r;
    EXPECT_EQ(fp.view_change_views, 0u) << "replica " << r;
    EXPECT_EQ(fp.new_view_markers, 0u) << "replica " << r;
    EXPECT_EQ(fp.pending_requests, 0u) << "replica " << r;
  }
}

// Regression: a commit quorum for a LATER sequence number (the next one to
// execute still missing) is not progress — it must not push the request
// suspicion timer, or a primary censoring one client while serving others
// would never be suspected.
TEST(PbftIntegration, RequestTimerSurvivesCommitsWithoutProgress) {
  pbft::Config config;
  config.n = 4;
  config.f = 1;
  config.batch_max = 1;
  crypto::KeyRing ring(crypto::Scheme::HmacShared, 31);
  for (ReplicaId r = 0; r < config.n; ++r) {
    ring.add_principal(principal::pbft_replica(r));
  }
  const pbft::ClientDirectory directory(0x5ec7e7);
  // Replica 1: a backup in view 0.
  pbft::Replica backup(config, 1, ring.signer(principal::pbft_replica(1)),
                       ring.verifier(), directory, counter_factory());

  const auto signed_from = [&](ReplicaId sender, pbft::MsgType type,
                               Bytes payload) {
    net::Envelope env;
    env.src = principal::pbft_replica(sender);
    env.dst = principal::pbft_replica(1);
    env.type = pbft::tag(type);
    env.payload = std::move(payload);
    net::sign_envelope(env, *ring.signer(principal::pbft_replica(sender)));
    return env;
  };

  // A censored client's request arms the suspicion timer at t=1000.
  pbft::Request censored;
  censored.client = kFirstClientId;
  censored.timestamp = 1;
  censored.payload = CounterApp::encode_add(1);
  {
    const crypto::Key32 key = directory.auth_key(censored.client);
    const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                           censored.auth_input());
    censored.auth = Bytes(mac.bytes.begin(), mac.bytes.end());
  }
  net::Envelope req_env;
  req_env.src = principal::client(censored.client);
  req_env.dst = principal::pbft_replica(1);
  req_env.type = pbft::tag(pbft::MsgType::Request);
  req_env.payload = censored.serialize();
  (void)backup.handle(req_env, 1'000);
  const Micros armed = 1'000 + config.request_timeout_us;
  ASSERT_EQ(backup.next_deadline(), std::optional<Micros>(armed));

  // The byzantine primary orders a DIFFERENT client at seq 2 and never
  // proposes seq 1. The backup prepares, commits — and cannot execute.
  pbft::Request other;
  other.client = kFirstClientId + 1;
  other.timestamp = 1;
  other.payload = CounterApp::encode_add(1);
  {
    const crypto::Key32 key = directory.auth_key(other.client);
    const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                           other.auth_input());
    other.auth = Bytes(mac.bytes.begin(), mac.bytes.end());
  }
  pbft::PrePrepare pp;
  pp.view = 0;
  pp.seq = 2;
  pp.batch = pbft::RequestBatch{{other}}.serialize();
  pp.batch_digest = crypto::sha256(pp.batch);
  pp.sender = 0;
  (void)backup.handle(
      signed_from(0, pbft::MsgType::PrePrepare, pp.serialize()), 2'000);
  for (const ReplicaId sender : {ReplicaId{2}, ReplicaId{3}}) {
    pbft::Prepare prep;
    prep.view = 0;
    prep.seq = 2;
    prep.batch_digest = pp.batch_digest;
    prep.sender = sender;
    (void)backup.handle(
        signed_from(sender, pbft::MsgType::Prepare, prep.serialize()), 3'000);
  }
  for (const ReplicaId sender : {ReplicaId{0}, ReplicaId{2}}) {
    pbft::Commit commit;
    commit.view = 0;
    commit.seq = 2;
    commit.batch_digest = pp.batch_digest;
    commit.sender = sender;
    (void)backup.handle(
        signed_from(sender, pbft::MsgType::Commit, commit.serialize()),
        4'000);
  }
  EXPECT_EQ(backup.last_executed(), 0u);  // seq 1 is still missing

  // No execution progress happened: the censored request's deadline must
  // be untouched (before the fix it was pushed to 4'000 + timeout).
  EXPECT_EQ(backup.next_deadline(), std::optional<Micros>(armed));

  // And at the deadline the backup suspects the primary.
  bool view_change_sent = false;
  for (const auto& out : backup.tick(armed)) {
    if (out.type == pbft::tag(pbft::MsgType::ViewChange)) {
      view_change_sent = true;
    }
  }
  EXPECT_TRUE(view_change_sent);
  EXPECT_TRUE(backup.in_view_change());
}

// Stronger censorship case: the primary keeps EXECUTING other clients'
// requests. That progress must not refresh the starved request's deadline
// either — the timer anchors to the oldest still-pending arrival.
TEST(PbftIntegration, RequestTimerSurvivesProgressOnOtherClients) {
  pbft::Config config;
  config.n = 4;
  config.f = 1;
  config.batch_max = 1;
  crypto::KeyRing ring(crypto::Scheme::HmacShared, 32);
  for (ReplicaId r = 0; r < config.n; ++r) {
    ring.add_principal(principal::pbft_replica(r));
  }
  const pbft::ClientDirectory directory(0x5ec7e7);
  pbft::Replica backup(config, 1, ring.signer(principal::pbft_replica(1)),
                       ring.verifier(), directory, counter_factory());

  const auto authed_request = [&](ClientId client) {
    pbft::Request req;
    req.client = client;
    req.timestamp = 1;
    req.payload = CounterApp::encode_add(1);
    const crypto::Key32 key = directory.auth_key(client);
    const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                           req.auth_input());
    req.auth = Bytes(mac.bytes.begin(), mac.bytes.end());
    return req;
  };
  const auto signed_from = [&](ReplicaId sender, pbft::MsgType type,
                               Bytes payload) {
    net::Envelope env;
    env.src = principal::pbft_replica(sender);
    env.dst = principal::pbft_replica(1);
    env.type = pbft::tag(type);
    env.payload = std::move(payload);
    net::sign_envelope(env, *ring.signer(principal::pbft_replica(sender)));
    return env;
  };

  // The censored client's request arrives first.
  net::Envelope censored_env;
  censored_env.src = principal::client(kFirstClientId);
  censored_env.dst = principal::pbft_replica(1);
  censored_env.type = pbft::tag(pbft::MsgType::Request);
  censored_env.payload = authed_request(kFirstClientId).serialize();
  (void)backup.handle(censored_env, 1'000);
  const Micros armed = 1'000 + config.request_timeout_us;
  ASSERT_EQ(backup.next_deadline(), std::optional<Micros>(armed));

  // The primary orders and the cluster EXECUTES three other clients'
  // requests (seqs 1-3) while the censored one stays unordered.
  for (SeqNum seq = 1; seq <= 3; ++seq) {
    const Micros t = 2'000 * seq;
    pbft::PrePrepare pp;
    pp.view = 0;
    pp.seq = seq;
    pp.batch = pbft::RequestBatch{
        {authed_request(kFirstClientId + static_cast<ClientId>(seq))}}
        .serialize();
    pp.batch_digest = crypto::sha256(pp.batch);
    pp.sender = 0;
    (void)backup.handle(
        signed_from(0, pbft::MsgType::PrePrepare, pp.serialize()), t);
    for (const ReplicaId sender : {ReplicaId{2}, ReplicaId{3}}) {
      pbft::Prepare prep;
      prep.view = 0;
      prep.seq = seq;
      prep.batch_digest = pp.batch_digest;
      prep.sender = sender;
      (void)backup.handle(
          signed_from(sender, pbft::MsgType::Prepare, prep.serialize()), t);
    }
    for (const ReplicaId sender : {ReplicaId{0}, ReplicaId{2}}) {
      pbft::Commit commit;
      commit.view = 0;
      commit.seq = seq;
      commit.batch_digest = pp.batch_digest;
      commit.sender = sender;
      (void)backup.handle(
          signed_from(sender, pbft::MsgType::Commit, commit.serialize()), t);
    }
    ASSERT_EQ(backup.last_executed(), seq);
  }

  // Real execution progress happened — but not for the censored client:
  // its deadline must be exactly where it was armed.
  EXPECT_EQ(backup.next_deadline(), std::optional<Micros>(armed));
  bool view_change_sent = false;
  for (const auto& out : backup.tick(armed)) {
    if (out.type == pbft::tag(pbft::MsgType::ViewChange)) {
      view_change_sent = true;
    }
  }
  EXPECT_TRUE(view_change_sent);
}

TEST(PbftIntegration, ToleratesCrashedBackup) {
  PbftCluster cluster(small_config(7), counter_factory());
  cluster.add_client(kFirstClientId);
  cluster.crash_replica(3);  // a backup

  for (int i = 1; i <= 5; ++i) {
    const auto result = cluster.execute(kFirstClientId, CounterApp::encode_add(1));
    ASSERT_TRUE(result.has_value()) << "request " << i;
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(PbftIntegration, ViewChangeOnCrashedPrimary) {
  PbftCluster cluster(small_config(8), counter_factory());
  cluster.add_client(kFirstClientId);

  // Request 1 in view 0 proves liveness before the crash.
  ASSERT_TRUE(
      cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value());

  cluster.crash_replica(0);  // primary of view 0
  const auto result =
      cluster.execute(kFirstClientId, CounterApp::encode_add(2), 30'000'000);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(counter_value(*result), 3u);

  // Survivors moved past view 0.
  for (ReplicaId r = 1; r < 4; ++r) {
    EXPECT_GE(cluster.replica(r).view(), 1u) << "replica " << r;
  }
  EXPECT_TRUE(cluster.check_agreement());

  // The view-change and new-view proofs embed prepare/checkpoint envelopes
  // the survivors already verified (or signed) during normal operation —
  // with the VerifyCache those re-validations are hits, so no envelope is
  // verified twice per replica in steady state.
  std::uint64_t hits = 0;
  for (ReplicaId r = 1; r < 4; ++r) {
    const net::VerifyStats stats = cluster.replica(r).auth().stats();
    hits += stats.hits;
    EXPECT_EQ(stats.failures, 0u) << "replica " << r;
  }
  EXPECT_GT(hits, 0u);
}

TEST(PbftIntegration, RecoveredReplicaCatchesUpViaStateTransfer) {
  auto options = small_config(9);
  options.config.checkpoint_interval = 5;
  PbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);

  cluster.crash_replica(3);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value());
  }
  cluster.restore_replica(3);
  // More traffic → checkpoints → replica 3 learns it is behind and fetches
  // the snapshot.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        cluster.execute(kFirstClientId, CounterApp::encode_add(1)).has_value());
  }
  cluster.harness().run_for(5'000'000);
  EXPECT_GE(cluster.replica(3).last_executed(), 15u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(PbftIntegration, SurvivesLossyNetwork) {
  auto options = small_config(10);
  options.link_params.drop_prob = 0.05;
  options.link_params.duplicate_prob = 0.02;
  PbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);

  std::uint64_t expected = 0;
  for (int i = 1; i <= 10; ++i) {
    expected += 1;
    const auto result =
        cluster.execute(kFirstClientId, CounterApp::encode_add(1), 60'000'000);
    ASSERT_TRUE(result.has_value()) << "request " << i;
    EXPECT_EQ(counter_value(*result), expected);
  }
  EXPECT_TRUE(cluster.check_agreement());
}

class PbftSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PbftSeedSweep, AgreementHoldsUnderRandomSchedules) {
  auto options = small_config(GetParam());
  options.link_params.drop_prob = 0.03;
  options.config.batch_max = 4;
  PbftCluster cluster(options, counter_factory());
  cluster.add_client(kFirstClientId);
  cluster.add_client(kFirstClientId + 1);

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster
                    .execute(kFirstClientId + (i % 2),
                             CounterApp::encode_add(1), 60'000'000)
                    .has_value());
  }
  EXPECT_TRUE(cluster.check_agreement());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PbftSeedSweep,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

}  // namespace
}  // namespace sbft::runtime
