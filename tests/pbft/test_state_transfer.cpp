// Streaming state transfer: ChunkedSnapshot/ChunkFetcher units, wire
// bounds, and end-to-end recovery on the deterministic simulator.
#include "pbft/state_transfer.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "apps/kv_store.hpp"
#include "faults/byzantine_env.hpp"
#include "runtime/pbft_cluster.hpp"

namespace sbft::pbft {
namespace {

[[nodiscard]] Bytes pattern(std::size_t n, std::uint8_t salt = 0) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(i * 31 + salt);
  }
  return b;
}

// ------------------------------------------------------- ChunkedSnapshot

TEST(ChunkedSnapshot, FillsVerifiableResponses) {
  const Bytes snapshot = pattern(300);
  const ChunkedSnapshot chunked(snapshot, 64);
  EXPECT_EQ(chunked.manifest().chunk_count(), 5u);
  EXPECT_EQ(chunked.commitment(), snapshot_commitment(snapshot, 64));

  Bytes reassembled;
  for (std::uint64_t i = 0; i < chunked.manifest().chunk_count(); ++i) {
    StateChunkResponse resp;
    ASSERT_TRUE(chunked.fill(i, resp));
    EXPECT_EQ(resp.manifest(), chunked.manifest());
    EXPECT_EQ(resp.index, i);
    EXPECT_TRUE(crypto::MerkleTree::verify(
        resp.root, resp.index, chunked.manifest().chunk_count(), resp.chunk,
        resp.proof));
    reassembled.insert(reassembled.end(), resp.chunk.begin(), resp.chunk.end());
  }
  EXPECT_EQ(reassembled, snapshot);

  StateChunkResponse out_of_range;
  EXPECT_FALSE(chunked.fill(5, out_of_range));
}

TEST(ChunkedSnapshot, CommitmentDependsOnChunkGeometry) {
  const Bytes snapshot = pattern(300);
  EXPECT_NE(snapshot_commitment(snapshot, 64), snapshot_commitment(snapshot, 128));
}

// ---------------------------------------------------------- ChunkFetcher

constexpr std::uint64_t kChunk = 64;

[[nodiscard]] ChunkFetcher::Config fetcher_config() {
  ChunkFetcher::Config c;
  c.n = 4;
  c.self = 3;
  c.chunks_per_request = 2;
  c.inflight_max_bytes = 4 * kChunk;
  c.chunk_timeout_us = 1'000;
  return c;
}

/// Serves requests from a ChunkedSnapshot as peer `peer` would.
[[nodiscard]] std::vector<StateChunkResponse> serve(
    const ChunkedSnapshot& chunked, const ChunkFetcher::Request& req,
    SeqNum seq) {
  std::vector<StateChunkResponse> out;
  for (std::uint64_t i = req.first_chunk; i < req.first_chunk + req.count;
       ++i) {
    StateChunkResponse resp;
    if (!chunked.fill(i, resp)) break;
    resp.seq = seq;
    resp.sender = req.peer;
    out.push_back(std::move(resp));
  }
  return out;
}

TEST(ChunkFetcher, FetchesAcrossPeersAndDrainsInOrder) {
  const Bytes snapshot = pattern(kChunk * 9 + 13);
  const ChunkedSnapshot chunked(snapshot, kChunk);
  ChunkFetcher fetcher(fetcher_config(), /*seq=*/50, chunked.commitment(), 0);

  Micros now = 0;
  Bytes reassembled;
  std::set<ReplicaId> peers_used;
  std::uint64_t guard = 0;
  while (!fetcher.complete()) {
    ASSERT_LT(++guard, 1000u);
    now += 10;
    for (const auto& req : fetcher.pump(now)) {
      EXPECT_NE(req.peer, fetcher_config().self);
      peers_used.insert(req.peer);
      for (const auto& resp : serve(chunked, req, 50)) {
        EXPECT_NE(fetcher.on_chunk(resp, now), ChunkFetcher::ChunkResult::Rejected);
      }
    }
    for (const auto& chunk : fetcher.take_ready()) {
      reassembled.insert(reassembled.end(), chunk.begin(), chunk.end());
    }
  }
  EXPECT_EQ(reassembled, snapshot);
  // Disjoint ranges went to multiple peers, not one favourite.
  EXPECT_GT(peers_used.size(), 1u);
  EXPECT_EQ(fetcher.stats().chunks_accepted, 10u);
  EXPECT_LE(fetcher.stats().peak_inflight_bytes,
            fetcher_config().inflight_max_bytes + kChunk);
}

TEST(ChunkFetcher, RejectsForgedChunkAndRefetchesElsewhere) {
  const Bytes snapshot = pattern(kChunk * 4);
  const ChunkedSnapshot chunked(snapshot, kChunk);
  ChunkFetcher fetcher(fetcher_config(), 50, chunked.commitment(), 0);

  auto reqs = fetcher.pump(0);
  ASSERT_FALSE(reqs.empty());
  const ReplicaId forger = reqs[0].peer;
  auto responses = serve(chunked, reqs[0], 50);
  ASSERT_FALSE(responses.empty());
  responses[0].chunk[5] ^= 0xFF;
  EXPECT_EQ(fetcher.on_chunk(responses[0], 0),
            ChunkFetcher::ChunkResult::Rejected);
  EXPECT_EQ(fetcher.stats().chunks_rejected, 1u);

  // The re-assignment must avoid the peer that just lied.
  bool refetched = false;
  for (const auto& req : fetcher.pump(1)) {
    if (req.first_chunk <= responses[0].index &&
        responses[0].index < req.first_chunk + req.count) {
      refetched = true;
      EXPECT_NE(req.peer, forger);
    }
  }
  EXPECT_TRUE(refetched);
  EXPECT_GE(fetcher.stats().refetches, 1u);
}

TEST(ChunkFetcher, RejectsManifestNotMatchingCommitment) {
  const Bytes snapshot = pattern(kChunk * 4);
  const ChunkedSnapshot chunked(snapshot, kChunk);
  // Commitment for a DIFFERENT geometry: same bytes, other chunk size.
  ChunkFetcher fetcher(fetcher_config(), 50,
                       snapshot_commitment(snapshot, kChunk * 2), 0);
  auto reqs = fetcher.pump(0);
  ASSERT_FALSE(reqs.empty());
  const auto responses = serve(chunked, reqs[0], 50);
  ASSERT_FALSE(responses.empty());
  EXPECT_EQ(fetcher.on_chunk(responses[0], 0),
            ChunkFetcher::ChunkResult::Rejected);
  EXPECT_FALSE(fetcher.manifest_known());
}

TEST(ChunkFetcher, TimeoutReassignsToDifferentPeer) {
  const Bytes snapshot = pattern(kChunk * 4);
  const ChunkedSnapshot chunked(snapshot, kChunk);
  ChunkFetcher fetcher(fetcher_config(), 50, chunked.commitment(), 0);

  auto reqs = fetcher.pump(0);
  ASSERT_FALSE(reqs.empty());
  // Answer only the probe so the manifest is known, then go silent.
  const auto first = serve(chunked, reqs[0], 50);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(fetcher.on_chunk(first[0], 0), ChunkFetcher::ChunkResult::Accepted);
  reqs = fetcher.pump(0);
  ASSERT_FALSE(reqs.empty());
  const ReplicaId silent = reqs[0].peer;
  const std::uint64_t stalled = reqs[0].first_chunk;

  const Micros late = fetcher_config().chunk_timeout_us + 10;
  bool reassigned = false;
  for (const auto& req : fetcher.pump(late)) {
    if (req.first_chunk <= stalled && stalled < req.first_chunk + req.count) {
      reassigned = true;
      EXPECT_NE(req.peer, silent);
    }
  }
  EXPECT_TRUE(reassigned);
  EXPECT_GE(fetcher.stats().refetches, 1u);
  EXPECT_TRUE(fetcher.next_deadline().has_value());
}

TEST(ChunkFetcher, DuplicateAndWrongSeqChunks) {
  const Bytes snapshot = pattern(kChunk * 2);
  const ChunkedSnapshot chunked(snapshot, kChunk);
  ChunkFetcher fetcher(fetcher_config(), 50, chunked.commitment(), 0);

  const auto reqs = fetcher.pump(0);
  ASSERT_FALSE(reqs.empty());
  const auto responses = serve(chunked, {reqs[0].peer, 0, 2}, 50);
  ASSERT_EQ(responses.size(), 2u);

  StateChunkResponse wrong_seq = responses[0];
  wrong_seq.seq = 49;
  EXPECT_EQ(fetcher.on_chunk(wrong_seq, 0), ChunkFetcher::ChunkResult::Ignored);

  EXPECT_EQ(fetcher.on_chunk(responses[0], 0),
            ChunkFetcher::ChunkResult::Accepted);
  EXPECT_EQ(fetcher.on_chunk(responses[0], 0),
            ChunkFetcher::ChunkResult::Duplicate);
  EXPECT_EQ(fetcher.stats().chunks_duplicate, 1u);
}

TEST(ChunkFetcher, ResumesFromProgressWithoutRefetchingAppliedPrefix) {
  const Bytes snapshot = pattern(kChunk * 6);
  const ChunkedSnapshot chunked(snapshot, kChunk);
  auto config = fetcher_config();
  config.chunks_per_request = 1;
  ChunkFetcher first(config, 50, chunked.commitment(), 0);

  // Fetch and drain the first couple of chunks, then "crash".
  Bytes applied;
  std::uint64_t guard = 0;
  while (first.progress().next_index < 2) {
    ASSERT_LT(++guard, 1000u);
    for (const auto& req : first.pump(guard)) {
      for (const auto& resp : serve(chunked, req, 50)) {
        (void)first.on_chunk(resp, guard);
      }
    }
    for (const auto& chunk : first.take_ready()) {
      applied.insert(applied.end(), chunk.begin(), chunk.end());
    }
  }
  const ChunkFetcher::Progress progress = first.progress();
  EXPECT_EQ(progress.seq, 50u);
  EXPECT_EQ(progress.commitment, chunked.commitment());

  ChunkFetcher resumed(config, progress, 1'000'000);
  guard = 0;
  while (!resumed.complete()) {
    ASSERT_LT(++guard, 1000u);
    const Micros now = 1'000'000 + guard;
    for (const auto& req : resumed.pump(now)) {
      // Until the geometry is re-learned the fetcher probes chunk 0; every
      // post-manifest request must skip the already-applied prefix.
      if (resumed.manifest_known()) {
        EXPECT_GE(req.first_chunk, progress.next_index);
      }
      for (const auto& resp : serve(chunked, req, 50)) {
        (void)resumed.on_chunk(resp, now);
      }
    }
    for (const auto& chunk : resumed.take_ready()) {
      applied.insert(applied.end(), chunk.begin(), chunk.end());
    }
  }
  EXPECT_EQ(applied, snapshot);
}

// ------------------------------------------------------------ wire bounds

TEST(StateChunkWire, RequestRoundtripAndBounds) {
  StateChunkRequest req;
  req.seq = 50;
  req.first_chunk = 7;
  req.count = 16;
  req.sender = 2;
  const auto back = StateChunkRequest::deserialize(req.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->first_chunk, 7u);
  EXPECT_EQ(back->count, 16u);

  req.count = kMaxChunksPerRequest + 1;
  EXPECT_FALSE(StateChunkRequest::deserialize(req.serialize()).has_value());
  req.count = 0;
  EXPECT_FALSE(StateChunkRequest::deserialize(req.serialize()).has_value());
}

TEST(StateChunkWire, ResponseRoundtripAndBounds) {
  const Bytes snapshot = pattern(300);
  const ChunkedSnapshot chunked(snapshot, 64);
  StateChunkResponse resp;
  ASSERT_TRUE(chunked.fill(1, resp));
  resp.seq = 50;
  resp.sender = 1;
  const auto back = StateChunkResponse::deserialize(resp.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->manifest(), chunked.manifest());
  EXPECT_EQ(back->chunk, resp.chunk);
  EXPECT_EQ(back->proof.size(), resp.proof.size());

  // Chunk larger than the claimed geometry (plus seal slack): rejected
  // before any plausibility-unchecked reserve.
  StateChunkResponse fat = resp;
  fat.chunk = pattern(64 + kStateChunkSealOverhead + 1);
  EXPECT_FALSE(StateChunkResponse::deserialize(fat.serialize()).has_value());

  StateChunkResponse huge = resp;
  huge.chunk_bytes = kMaxStateChunkBytes + 1;
  EXPECT_FALSE(StateChunkResponse::deserialize(huge.serialize()).has_value());

  StateChunkResponse zero = resp;
  zero.chunk_bytes = 0;
  EXPECT_FALSE(StateChunkResponse::deserialize(zero.serialize()).has_value());

  // Implausibly deep Merkle path: rejected before the reserve.
  StateChunkResponse deep = resp;
  deep.proof.resize(crypto::kMaxMerkleProofLen + 1);
  EXPECT_FALSE(StateChunkResponse::deserialize(deep.serialize()).has_value());

  // Truncation at every prefix either fails or parses — never crashes.
  const Bytes wire = resp.serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        StateChunkResponse::deserialize(ByteView{wire.data(), len}).has_value())
        << "len=" << len;
  }
}

// --------------------------------------------------- simulated recovery

using runtime::PbftCluster;
using runtime::PbftClusterOptions;

[[nodiscard]] PbftClusterOptions recovery_config(std::uint64_t seed) {
  PbftClusterOptions options;
  options.seed = seed;
  options.config.checkpoint_interval = 5;
  options.config.batch_max = 1;
  options.config.state_chunk_bytes = 2048;
  options.config.state_inflight_max_bytes = 8192;
  return options;
}

[[nodiscard]] apps::AppFactory kv_factory() {
  return [] { return std::make_unique<apps::KvStore>(); };
}

/// PUT of a `bytes`-sized deterministic value.
[[nodiscard]] Bytes kv_put(std::uint64_t key, std::size_t bytes,
                           std::uint8_t salt) {
  return apps::kv::encode_put(apps::kv::encode_key(key), pattern(bytes, salt));
}

TEST(StateTransferSim, StreamingRecoveryCatchesUpWithBoundedInflight) {
  PbftCluster cluster(recovery_config(21), kv_factory());
  cluster.add_client(kFirstClientId);

  cluster.crash_replica(3);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 1500, 0)).has_value());
  }
  cluster.restore_replica(3);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 1500, 1)).has_value());
  }
  ASSERT_TRUE(cluster.harness().run_until(
      [&] {
        return cluster.replica(3).last_executed() >=
               cluster.replica(0).last_executed();
      },
      60'000'000));

  const StateTransferStats stats = cluster.replica(3).state_transfer_stats();
  EXPECT_GE(stats.transfers_completed, 1u);
  EXPECT_GT(stats.chunks_accepted, 1u);
  EXPECT_EQ(stats.chunks_rejected, 0u);
  // The whole point: recovery never buffers anywhere near the snapshot.
  const std::uint64_t snapshot_bytes =
      cluster.replica(0).app().snapshot().size();
  EXPECT_GT(snapshot_bytes, 15'000u);
  EXPECT_LE(stats.peak_inflight_bytes,
            recovery_config(21).config.state_inflight_max_bytes +
                recovery_config(21).config.state_chunk_bytes);
  EXPECT_FALSE(cluster.replica(3).awaiting_state());
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(StateTransferSim, ServingPeerCrashMidTransferReassigns) {
  PbftCluster cluster(recovery_config(22), kv_factory());
  cluster.add_client(kFirstClientId);

  cluster.crash_replica(3);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 1500, 0)).has_value());
  }
  cluster.restore_replica(3);
  // Nudge the victim into the transfer, then kill one serving peer. The
  // remaining two replicas + victim keep a quorum, and the fetcher's
  // timeouts must steer every range away from the dead peer.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 1500, 1)).has_value());
  }
  cluster.crash_replica(1);
  ASSERT_TRUE(cluster.harness().run_until(
      [&] {
        return !cluster.replica(3).awaiting_state() &&
               cluster.replica(3).last_executed() >= 15;
      },
      120'000'000));
  EXPECT_GE(cluster.replica(3).state_transfer_stats().transfers_completed, 1u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(StateTransferSim, LegacyMonolithicPathStillRecovers) {
  auto options = recovery_config(23);
  options.config.streaming_state = false;
  PbftCluster cluster(options, kv_factory());
  cluster.add_client(kFirstClientId);

  cluster.crash_replica(3);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 1500, 0)).has_value());
  }
  cluster.restore_replica(3);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 1500, 1)).has_value());
  }
  ASSERT_TRUE(cluster.harness().run_until(
      [&] {
        return cluster.replica(3).last_executed() >=
               cluster.replica(0).last_executed();
      },
      60'000'000));
  const StateTransferStats stats = cluster.replica(3).state_transfer_stats();
  EXPECT_EQ(stats.chunk_requests_sent, 0u);
  EXPECT_EQ(stats.transfers_completed, 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(StateTransferSim, StateRequestRebroadcastIsBackoffLimited) {
  auto options = recovery_config(24);
  // Legacy mode: recovery hinges on the StateRequest -> StateResponse
  // round-trip, so an unanswered replica re-broadcasts — with backoff.
  // (Streaming mode reads the commitment straight out of the checkpoint
  // certificate and retries at the chunk level instead.)
  options.config.streaming_state = false;
  options.config.state_request_backoff_min_us = 100'000;
  options.config.state_request_backoff_max_us = 1'000'000;
  PbftCluster cluster(options, kv_factory());
  cluster.add_client(kFirstClientId);

  cluster.crash_replica(3);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 1500, 0)).has_value());
  }
  // Reattach replica 3 behind an environment that eats every state-transfer
  // response: it keeps re-broadcasting StateRequest but can never restore.
  cluster.restore_replica(3);
  faults::EnvPolicy policy;
  policy.record_observed = false;
  policy.drop_inbound_if = [](const net::Envelope& env) {
    return env.type == tag(MsgType::StateResponse) ||
           env.type == tag(MsgType::StateChunkResponse);
  };
  auto muzzled = std::make_shared<faults::ByzantineEnv>(
      cluster.replica_actor(3), policy, /*seed=*/9);
  cluster.harness().replace_actor(principal::pbft_replica(3), muzzled);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cluster.execute(kFirstClientId, kv_put(i, 1500, 1)).has_value());
  }
  const std::uint64_t before =
      cluster.replica(3).state_transfer_stats().state_requests_sent;
  cluster.harness().run_for(5'000'000);
  const std::uint64_t sent =
      cluster.replica(3).state_transfer_stats().state_requests_sent - before;
  // 5 s at 100 ms..1 s exponential backoff: a handful of requests, not one
  // per 1 ms tick (which would be 5000).
  EXPECT_GE(sent, 2u);
  EXPECT_LE(sent, 20u);
  EXPECT_TRUE(cluster.replica(3).awaiting_state());
}

}  // namespace
}  // namespace sbft::pbft
