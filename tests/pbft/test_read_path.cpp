// Read fast-path correctness (PBFT): read-your-writes, single-round
// service without sequence numbers, ordered fallback on vote mismatch and
// timeout, identical application state under fast and ordered read
// configurations, and the bounded per-client reply cache.
#include <gtest/gtest.h>

#include "apps/kv_store.hpp"
#include "common/serde.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "runtime/pbft_cluster.hpp"

namespace sbft::runtime {
namespace {

[[nodiscard]] apps::AppFactory kv_factory() {
  return [] { return std::make_unique<apps::KvStore>(); };
}

[[nodiscard]] Bytes kv_ok(ByteView value) {
  // encode_reply(Ok, value) is private to the app; rebuild the wire form.
  Writer w;
  w.u8(static_cast<std::uint8_t>(apps::KvStatus::Ok));
  w.bytes(value);
  return std::move(w).take();
}

TEST(ReadPath, ReadYourWritesAfterCommittedPut) {
  PbftClusterOptions options;
  options.seed = 91;
  options.config.read_path = true;
  PbftCluster cluster(options, kv_factory());
  cluster.add_client(kFirstClientId);

  ASSERT_TRUE(cluster
                  .execute(kFirstClientId,
                           apps::kv::encode_put(to_bytes("k"), to_bytes("v1")))
                  .has_value());
  // Quiesce so every replica has executed the PUT — the read quorum then
  // deterministically reflects it.
  cluster.harness().run_for(1'000'000);

  const SeqNum seq_before = cluster.replica(0).last_executed();
  const auto got =
      cluster.execute_read(kFirstClientId, apps::kv::encode_get(to_bytes("k")));
  ASSERT_TRUE(got.has_value());
  const auto reply = apps::kv::decode_reply(*got);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, apps::KvStatus::Ok);
  EXPECT_EQ(reply->value, to_bytes("v1"));

  // Single round: no fallback, and no sequence number was consumed.
  auto& client = cluster.client(kFirstClientId).client();
  EXPECT_EQ(client.fast_reads(), 1u);
  EXPECT_EQ(client.read_fallbacks(), 0u);
  cluster.harness().run_for(1'000'000);
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.replica(r).last_executed(), seq_before) << "r" << r;
    EXPECT_EQ(cluster.replica(r).reads_served(), 1u) << "r" << r;
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(ReadPath, DisabledConfigServesReadsThroughOrdering) {
  PbftClusterOptions options;
  options.seed = 92;
  options.config.read_path = false;
  PbftCluster cluster(options, kv_factory());
  cluster.add_client(kFirstClientId);

  ASSERT_TRUE(cluster
                  .execute(kFirstClientId,
                           apps::kv::encode_put(to_bytes("k"), to_bytes("v")))
                  .has_value());
  const auto got =
      cluster.execute_read(kFirstClientId, apps::kv::encode_get(to_bytes("k")));
  ASSERT_TRUE(got.has_value());
  const auto reply = apps::kv::decode_reply(*got);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->value, to_bytes("v"));
  auto& client = cluster.client(kFirstClientId).client();
  EXPECT_EQ(client.fast_reads(), 0u);  // went through the ordered path
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.replica(r).reads_served(), 0u);
  }
}

// ------------------------------------------------- client fallback logic

class ReadFallback : public ::testing::Test {
 protected:
  ReadFallback()
      : directory_(0x5ec7e7), client_(config(), kFirstClientId, directory_) {}

  [[nodiscard]] static pbft::Config config() {
    pbft::Config c;
    c.read_path = true;
    return c;
  }

  /// A validly-MACed ReadReply from `sender` voting (digest(result), seq).
  [[nodiscard]] net::Envelope read_reply(ReplicaId sender, SeqNum exec_seq,
                                         const Bytes& result,
                                         bool include_result) const {
    pbft::ReadReply rr;
    rr.timestamp = client_.current_timestamp();
    rr.client = kFirstClientId;
    rr.sender = sender;
    rr.exec_seq = exec_seq;
    rr.result_digest = crypto::sha256(result);
    if (include_result) {
      rr.has_result = true;
      rr.result = result;
    }
    const crypto::Key32 key = directory_.auth_key(kFirstClientId);
    const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                           rr.auth_input());
    rr.auth = Bytes(mac.bytes.begin(), mac.bytes.end());

    net::Envelope env;
    env.src = principal::pbft_replica(sender);
    env.dst = principal::client(kFirstClientId);
    env.type = pbft::tag(pbft::MsgType::ReadReply);
    env.payload = rr.serialize();
    return env;
  }

  pbft::ClientDirectory directory_;
  pbft::Client client_;
};

TEST_F(ReadFallback, AcceptsQuorumWithDesignatedValue) {
  auto sent = client_.submit(apps::kv::encode_get(to_bytes("k")), 0, true);
  ASSERT_EQ(sent.size(), 4u);
  for (const auto& env : sent) {
    EXPECT_EQ(env.type, pbft::tag(pbft::MsgType::ReadRequest));
  }
  // ts=1 -> designated responder is (1000 + 1) % 4 = 1.
  const Bytes result = to_bytes("value");
  std::vector<net::Envelope> out;
  EXPECT_FALSE(client_.on_reply(read_reply(0, 7, result, false), 0, out));
  EXPECT_FALSE(client_.on_reply(read_reply(1, 7, result, true), 0, out));
  const auto got = client_.on_reply(read_reply(2, 7, result, false), 0, out);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, result);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(client_.fast_reads(), 1u);
  EXPECT_FALSE(client_.in_flight());
}

TEST_F(ReadFallback, MismatchedVotesFallBackToOrderedPath) {
  (void)client_.submit(apps::kv::encode_get(to_bytes("k")), 0, true);
  // Concurrent writes: every replica answers from a different executed
  // state, so no (digest, seq) pair can reach 2f+1.
  const Bytes stale = to_bytes("old");
  const Bytes fresh = to_bytes("new");
  std::vector<net::Envelope> out;
  EXPECT_FALSE(client_.on_reply(read_reply(0, 5, stale, false), 0, out));
  EXPECT_FALSE(client_.on_reply(read_reply(1, 6, fresh, true), 0, out));
  EXPECT_FALSE(client_.on_reply(read_reply(2, 6, stale, false), 0, out));
  EXPECT_TRUE(out.empty());
  // The fourth (last) reply proves no quorum can form: the client
  // immediately re-broadcasts the identical request through ordering.
  EXPECT_FALSE(client_.on_reply(read_reply(3, 7, fresh, false), 0, out));
  ASSERT_EQ(out.size(), 4u);
  for (const auto& env : out) {
    EXPECT_EQ(env.type, pbft::tag(pbft::MsgType::Request));
  }
  EXPECT_EQ(client_.read_fallbacks(), 1u);
  EXPECT_TRUE(client_.in_flight());

  // The ordered path completes with 2f+1 matching Replies (the read-path
  // configuration strengthens the ordered quorum so fast reads can never
  // miss an acknowledged write).
  const auto make_ordered_reply = [&](ReplicaId sender) {
    pbft::Reply reply;
    reply.view = 0;
    reply.timestamp = client_.current_timestamp();
    reply.client = kFirstClientId;
    reply.sender = sender;
    reply.result = fresh;
    const crypto::Key32 key = directory_.auth_key(kFirstClientId);
    const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                           reply.auth_input());
    reply.auth = Bytes(mac.bytes.begin(), mac.bytes.end());
    net::Envelope env;
    env.src = principal::pbft_replica(sender);
    env.dst = principal::client(kFirstClientId);
    env.type = pbft::tag(pbft::MsgType::Reply);
    env.payload = reply.serialize();
    return env;
  };
  EXPECT_FALSE(client_.on_reply(make_ordered_reply(0), 0, out));
  EXPECT_FALSE(client_.on_reply(make_ordered_reply(1), 0, out));
  const auto got = client_.on_reply(make_ordered_reply(2), 0, out);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, fresh);
}

TEST_F(ReadFallback, TimeoutFallsBackToOrderedPath) {
  (void)client_.submit(apps::kv::encode_get(to_bytes("k")), 0, true);
  ASSERT_TRUE(client_.next_deadline().has_value());
  const Micros deadline = *client_.next_deadline();
  EXPECT_EQ(deadline, config().read_fallback_timeout_us);
  EXPECT_TRUE(client_.tick(deadline - 1).empty());
  const auto out = client_.tick(deadline);
  ASSERT_EQ(out.size(), 4u);
  for (const auto& env : out) {
    EXPECT_EQ(env.type, pbft::tag(pbft::MsgType::Request));
  }
  EXPECT_EQ(client_.read_fallbacks(), 1u);
}

// ------------------------------------------------- state equivalence

struct SequenceResult {
  Digest app_digest;
  std::uint64_t fast_reads{0};
};

[[nodiscard]] SequenceResult run_sequence(bool read_path) {
  PbftClusterOptions options;
  options.seed = 93;
  options.config.read_path = read_path;
  options.config.batch_max = 4;
  PbftCluster cluster(options, kv_factory());
  cluster.add_client(kFirstClientId);

  for (int i = 0; i < 6; ++i) {
    const Bytes key = apps::kv::encode_key(static_cast<std::uint64_t>(i % 3));
    const Bytes value = to_bytes("value-" + std::to_string(i));
    EXPECT_TRUE(cluster
                    .execute(kFirstClientId,
                             apps::kv::encode_put(key, value))
                    .has_value());
    cluster.harness().run_for(500'000);
    const auto got =
        cluster.execute_read(kFirstClientId, apps::kv::encode_get(key));
    EXPECT_TRUE(got.has_value());
    if (got) {
      EXPECT_EQ(*got, kv_ok(value));
    }
  }
  cluster.harness().run_for(1'000'000);

  SequenceResult result;
  result.app_digest = cluster.replica(0).app().state_digest();
  for (ReplicaId r = 1; r < 4; ++r) {
    EXPECT_EQ(cluster.replica(r).app().state_digest(), result.app_digest)
        << "replica state diverged within one configuration";
  }
  result.fast_reads = cluster.client(kFirstClientId).client().fast_reads();
  EXPECT_TRUE(cluster.check_agreement());
  return result;
}

// Acceptance criterion: the fast-read and ordered-read configurations
// observe identical application state over the same operation sequence.
TEST(ReadPath, FastAndOrderedConfigurationsObserveIdenticalState) {
  const SequenceResult fast = run_sequence(/*read_path=*/true);
  const SequenceResult ordered = run_sequence(/*read_path=*/false);
  EXPECT_EQ(fast.app_digest, ordered.app_digest);
  EXPECT_GT(fast.fast_reads, 0u);   // the fast config really used the path
  EXPECT_EQ(ordered.fast_reads, 0u);
}

// ------------------------------------------------- client-record bounds

TEST(ClientRecordCache, BoundedByCapAndReadsDoNotGrowIt) {
  PbftClusterOptions options;
  options.seed = 94;
  options.config.read_path = true;
  options.config.client_record_cap = 8;
  options.config.batch_max = 1;
  PbftCluster cluster(options, kv_factory());

  constexpr std::uint32_t kClients = 16;
  for (std::uint32_t i = 0; i < kClients; ++i) {
    cluster.add_client(kFirstClientId + i);
  }
  for (std::uint32_t i = 0; i < kClients; ++i) {
    const Bytes key = apps::kv::encode_key(i);
    ASSERT_TRUE(cluster
                    .execute(kFirstClientId + i,
                             apps::kv::encode_put(key, to_bytes("x")))
                    .has_value());
  }
  cluster.harness().run_for(1'000'000);
  for (ReplicaId r = 0; r < 4; ++r) {
    const auto fp = cluster.replica(r).gc_footprint();
    // Cached reply BODIES are bounded by the cap; the records themselves
    // survive as an at-most-once floor (old timestamps must never
    // re-execute).
    EXPECT_LE(fp.cached_replies, 8u) << "r" << r;
    EXPECT_GT(fp.cached_replies, 0u) << "r" << r;
    EXPECT_EQ(fp.client_records, kClients) << "r" << r;
  }
  // Checkpoint digests stayed aligned through the stripping.
  EXPECT_TRUE(cluster.check_agreement());

  // Fast reads must not create records or cached replies.
  const auto before = cluster.replica(0).gc_footprint();
  ASSERT_TRUE(cluster
                  .execute_read(kFirstClientId + kClients - 1,
                                apps::kv::encode_get(apps::kv::encode_key(0)))
                  .has_value());
  cluster.harness().run_for(500'000);
  const auto after = cluster.replica(0).gc_footprint();
  EXPECT_EQ(after.client_records, before.client_records);
  EXPECT_EQ(after.cached_replies, before.cached_replies);
}

}  // namespace
}  // namespace sbft::runtime
