// Table 1 — empirical fault-model comparison.
//
// The paper's Table 1 is analytic; this binary reproduces it EMPIRICALLY by
// running each system against scripted adversaries and checking, per
// scenario, whether liveness / integrity (agreement) / confidentiality
// actually held:
//
//   PBFT    n=3f+1 : f crash faults tolerated; f+1 byzantine replicas
//                    (equivocation) destroy integrity; no confidentiality.
//   Hybrid  n=2f+1 : f crash faults tolerated; ONE compromised TEE
//                    (counter reuse) destroys integrity.
//   SplitBFT n=3f+1: f crash faults tolerated (liveness); safety holds with
//                    an attacker on ALL hosts plus f faulty enclaves of
//                    EACH compartment type; confidentiality survives full
//                    environment compromise and falls only with a faulty
//                    Execution enclave.
#include <cstdio>

#include "apps/counter_app.hpp"
#include "apps/kv_store.hpp"
#include "faults/byzantine_compartments.hpp"
#include "faults/byzantine_env.hpp"
#include "faults/hybrid_attack.hpp"
#include "faults/pbft_attack.hpp"
#include "runtime/hybrid_cluster.hpp"
#include "runtime/pbft_cluster.hpp"
#include "runtime/splitbft_cluster.hpp"

using namespace sbft;
using namespace sbft::runtime;
using apps::CounterApp;

namespace {

const char* mark(bool ok) { return ok ? "yes" : "NO"; }

void row(const char* system, const char* scenario, bool live, bool integrity,
         bool confidential, const char* note) {
  std::printf("%-9s %-46s %6s %10s %14s  %s\n", system, scenario, mark(live),
              mark(integrity), mark(confidential), note);
}

apps::AppFactory counter() {
  return [] { return std::make_unique<CounterApp>(); };
}

// ------------------------------------------------------------------ PBFT

void pbft_crash_fault() {
  PbftClusterOptions options;
  options.seed = 101;
  options.config.batch_max = 1;
  PbftCluster cluster(options, counter());
  cluster.add_client(kFirstClientId);
  cluster.crash_replica(3);
  bool live = true;
  for (int i = 0; i < 3; ++i) {
    live = live &&
           cluster.execute(kFirstClientId, CounterApp::encode_add(1), 30'000'000)
               .has_value();
  }
  row("PBFT", "f crash faults (1 of 4 down)", live,
      cluster.check_agreement(), false, "3f+1, no TEE");
}

void pbft_equivocation() {
  PbftClusterOptions options;
  options.seed = 102;
  options.config.batch_max = 1;
  PbftCluster cluster(options, counter());
  cluster.add_client(kFirstClientId);
  auto attack = std::make_shared<faults::PbftEquivocationAttack>(
      cluster.config(), cluster.keyring().signer(principal::pbft_replica(0)),
      cluster.keyring().signer(principal::pbft_replica(1)), 0, 1);
  cluster.harness().replace_actor(principal::pbft_replica(0), attack);
  cluster.harness().replace_actor(principal::pbft_replica(1), attack);
  cluster.harness().inject(cluster.client(kFirstClientId)
                               .client()
                               .submit(CounterApp::encode_add(1),
                                       cluster.harness().now()));
  cluster.harness().run_for(5'000'000);
  row("PBFT", "f+1 byzantine replicas (equivocation)", false,
      cluster.check_agreement(), false, "integrity lost beyond f");
}

// ---------------------------------------------------------------- Hybrid

void hybrid_crash_fault() {
  HybridClusterOptions options;
  options.seed = 103;
  HybridCluster cluster(options, counter());
  cluster.add_client(kFirstClientId);
  cluster.crash_replica(2);
  bool live = true;
  for (int i = 0; i < 3; ++i) {
    live = live &&
           cluster.execute(kFirstClientId, CounterApp::encode_add(1), 10'000'000)
               .has_value();
  }
  row("Hybrid", "f crash faults (1 of 3 down)", live,
      cluster.check_agreement(), false, "2f+1 via trusted counter");
}

void hybrid_compromised_tee() {
  HybridClusterOptions options;
  options.seed = 104;
  HybridCluster cluster(options, counter());
  cluster.add_client(kFirstClientId);
  auto usig = cluster.replica(0).usig();
  usig->compromise();
  auto attack = std::make_shared<faults::HybridUsigAttack>(
      cluster.config(), 0, usig, cluster.directory());
  cluster.harness().replace_actor(principal::hybrid_replica(0), attack);
  cluster.harness().inject(cluster.client(kFirstClientId)
                               .client()
                               .submit(CounterApp::encode_add(1),
                                       cluster.harness().now()));
  cluster.harness().run_for(5'000'000);
  row("Hybrid", "ONE compromised TEE (counter reuse)", false,
      cluster.check_agreement(), false, "single TEE breaks safety");
}

// -------------------------------------------------------------- SplitBFT

splitbft::ExecAppFactory split_counter() {
  return splitbft::plain_app([] { return std::make_unique<CounterApp>(); });
}

void split_crash_fault() {
  SplitClusterOptions options;
  options.seed = 105;
  options.config.batch_max = 1;
  SplitbftCluster cluster(options, split_counter());
  cluster.add_client(kFirstClientId);
  bool live = cluster.setup_sessions();
  cluster.crash_replica(3);
  for (int i = 0; i < 3 && live; ++i) {
    live = cluster.execute(kFirstClientId, CounterApp::encode_add(1), 30'000'000)
               .has_value();
  }
  row("SplitBFT", "f crash faults (1 of 4 down)", live,
      cluster.check_agreement(), true, "liveness as PBFT");
}

void split_hostile_hosts_plus_enclaves() {
  SplitClusterOptions options;
  options.seed = 106;
  options.config.batch_max = 1;
  // f faulty enclaves of EACH type, on different replicas.
  options.compartment_faults[0] = [](ReplicaId r,
                                     const crypto::KeyRing& keyring) {
    return [r, &keyring](Compartment type,
                         std::unique_ptr<splitbft::CompartmentLogic> inner)
               -> std::unique_ptr<splitbft::CompartmentLogic> {
      if (type != Compartment::Preparation) return inner;
      pbft::Config config;
      return std::make_unique<faults::EquivocatingPrep>(
          std::move(inner), config, r,
          keyring.signer(principal::enclave({r, type})));
    };
  };
  options.compartment_faults[1] = [](ReplicaId, const crypto::KeyRing&) {
    return [](Compartment type,
              std::unique_ptr<splitbft::CompartmentLogic> inner)
               -> std::unique_ptr<splitbft::CompartmentLogic> {
      if (type != Compartment::Confirmation) return inner;
      return std::make_unique<faults::SilentCompartment>(std::move(inner));
    };
  };
  options.compartment_faults[2] = [](ReplicaId r,
                                     const crypto::KeyRing& keyring) {
    return [r, &keyring](Compartment type,
                         std::unique_ptr<splitbft::CompartmentLogic> inner)
               -> std::unique_ptr<splitbft::CompartmentLogic> {
      if (type != Compartment::Execution) return inner;
      return std::make_unique<faults::CorruptCheckpointExec>(
          std::move(inner), keyring.signer(principal::enclave({r, type})));
    };
  };
  SplitbftCluster cluster(options, split_counter());
  cluster.add_client(kFirstClientId);
  // Attacker on every host.
  for (ReplicaId r = 0; r < 4; ++r) {
    cluster.interpose_env(r, [r](std::shared_ptr<Actor> inner) {
      faults::EnvPolicy policy;
      policy.drop_inbound = 0.05;
      policy.drop_outbound = 0.05;
      policy.record_observed = false;
      return std::make_shared<faults::ByzantineEnv>(std::move(inner), policy,
                                                    9000 + r);
    });
  }
  (void)cluster.setup_sessions(60'000'000);
  bool live = true;
  for (int i = 0; i < 3; ++i) {
    live = cluster.execute(kFirstClientId, CounterApp::encode_add(1), 30'000'000)
               .has_value() &&
           live;
  }
  row("SplitBFT", "attacker on ALL n hosts + f faulty enclaves/type",
      live, cluster.check_agreement(), true,
      "safety beyond f (Table 1 headline)");
}

void split_confidentiality() {
  const std::string secret = "TABLE1-SECRET-PAYLOAD";
  SplitClusterOptions options;
  options.seed = 107;
  SplitbftCluster cluster(
      options,
      splitbft::plain_app([] { return std::make_unique<apps::KvStore>(); }));
  cluster.add_client(kFirstClientId);
  std::vector<std::shared_ptr<faults::ByzantineEnv>> envs;
  for (ReplicaId r = 0; r < 4; ++r) {
    cluster.interpose_env(r, [&envs, r](std::shared_ptr<Actor> inner) {
      faults::EnvPolicy policy;
      auto env = std::make_shared<faults::ByzantineEnv>(std::move(inner),
                                                        policy, 9100 + r);
      envs.push_back(env);
      return env;
    });
  }
  bool live = cluster.setup_sessions();
  live = live && cluster
                     .execute(kFirstClientId,
                              apps::kv::encode_put(to_bytes("k"),
                                                   to_bytes(secret)))
                     .has_value();
  bool confidential = true;
  for (const auto& env : envs) {
    for (const auto& bytes : env->observed()) {
      const std::string haystack(bytes.begin(), bytes.end());
      if (haystack.find(secret) != std::string::npos) confidential = false;
    }
  }
  row("SplitBFT", "attacker observes ALL n hosts (confidentiality)", live,
      cluster.check_agreement(), confidential,
      "requests encrypted end-to-end");
}

void split_faulty_exec_confidentiality() {
  // A compromised Execution enclave legitimately decrypts: 0_exec.
  const std::string secret = "EXEC-LEAK";
  auto leaked = std::make_shared<std::vector<Bytes>>();
  SplitClusterOptions options;
  options.seed = 108;
  SplitbftCluster cluster(options, [leaked](splitbft::PersistHook) {
    class LeakyKv final : public apps::Application {
     public:
      explicit LeakyKv(std::shared_ptr<std::vector<Bytes>> sink)
          : sink_(std::move(sink)) {}
      Bytes execute(ByteView op) override {
        sink_->emplace_back(op.begin(), op.end());
        return inner_.execute(op);
      }
      Bytes snapshot() const override { return inner_.snapshot(); }
      bool restore(ByteView s) override { return inner_.restore(s); }
      Digest state_digest() const override { return inner_.state_digest(); }

     private:
      std::shared_ptr<std::vector<Bytes>> sink_;
      apps::KvStore inner_;
    };
    return std::make_unique<LeakyKv>(leaked);
  });
  cluster.add_client(kFirstClientId);
  bool live = cluster.setup_sessions();
  live = live &&
         cluster
             .execute(kFirstClientId,
                      apps::kv::encode_put(to_bytes("k"), to_bytes(secret)))
             .has_value();
  bool confidential = true;
  for (const auto& op : *leaked) {
    const std::string haystack(op.begin(), op.end());
    if (haystack.find(secret) != std::string::npos) confidential = false;
  }
  row("SplitBFT", "ONE faulty Execution enclave (confidentiality)", live,
      cluster.check_agreement(), confidential, "0_exec: plaintext in exec");
}

}  // namespace

int main() {
  std::printf("Table 1 — empirical fault-model comparison "
              "(each row is a live adversarial run)\n\n");
  std::printf("%-9s %-46s %6s %10s %14s  %s\n", "system", "scenario", "live",
              "integrity", "confidential", "notes");
  std::printf("%s\n", std::string(110, '-').c_str());
  pbft_crash_fault();
  pbft_equivocation();
  hybrid_crash_fault();
  hybrid_compromised_tee();
  split_crash_fault();
  split_hostile_hosts_plus_enclaves();
  split_confidentiality();
  split_faulty_exec_confidentiality();
  std::printf(
      "\nExpected per the paper: PBFT loses integrity beyond f; the hybrid "
      "protocol loses\nintegrity with one broken TEE; SplitBFT keeps "
      "integrity with an attacker on all n\nhosts plus f faulty enclaves "
      "per compartment type, and confidentiality falls only\nwith a faulty "
      "Execution enclave.\n");
  return 0;
}
