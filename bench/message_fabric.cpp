// Zero-copy message-fabric benchmark.
//
// Quantifies what the SharedBytes/frame-backed-envelope fabric saves on the
// broker/replica hot path relative to the seed representation (envelopes
// with owning std::vector payloads that deep-copy per broadcast recipient):
//
//   broadcast  — payload allocations and bytes copied for an N-way fan-out:
//                the frame path performs O(1) allocations total where the
//                seed path performed O(N) (one deep copy per recipient);
//   digest     — the envelope SHA-256 digest is computed at most once per
//                message no matter how many consumers (VerifyCache key,
//                batch path, checkpoint proofs) ask for it;
//   ingest     — parsing a received wire image allocates no frame buffer
//                and copies no bytes (payload, signature and signing input
//                alias the frame; only the envelope's memo control block
//                is heap-allocated).
//
// The structural properties (alloc counts, digest counts) are deterministic
// and hard-asserted — this binary exits nonzero if broadcast is not O(1)
// allocations or a digest is recomputed. Wall-clock throughput numbers are
// reported for trajectory only. Emits machine-readable JSON to the first
// non-flag argument (default BENCH_message_fabric.json).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/frame.hpp"
#include "common/rng.hpp"
#include "crypto/keyring.hpp"
#include "net/auth.hpp"
#include "net/message.hpp"

namespace {

using namespace sbft;

constexpr std::size_t kRecipients = 100;
constexpr std::size_t kPayloadBytes = 4096;
constexpr double kMinSeconds = 0.2;

[[nodiscard]] double now_seconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// The seed-era envelope shape: owning vectors, deep-copied per recipient.
struct LegacyEnvelope {
  principal::Id src{0};
  principal::Id dst{0};
  std::uint32_t type{0};
  Bytes payload;
  Bytes signature;
};

struct Throughput {
  std::uint64_t ops{0};
  double seconds{0};
  [[nodiscard]] double ops_per_sec() const {
    return seconds > 0 ? static_cast<double>(ops) / seconds : 0;
  }
};

template <typename Fn>
[[nodiscard]] Throughput measure(std::size_t ops_per_round, Fn&& round) {
  Throughput t;
  const double start = now_seconds();
  do {
    round();
    t.ops += ops_per_round;
    t.seconds = now_seconds() - start;
  } while (t.seconds < kMinSeconds);
  return t;
}

int failures = 0;

void expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_message_fabric.json";
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') json_path = argv[i];
  }

  crypto::KeyRing ring(crypto::Scheme::Ed25519, 0xfab);
  ring.add_principal(1);
  Rng rng(7);

  // One signed proto envelope, as a replica's broadcast() would build it.
  net::Envelope proto;
  proto.src = 1;
  proto.type = 3;
  proto.payload = rng.bytes(kPayloadBytes);
  net::sign_envelope(proto, *ring.signer(1));
  const std::size_t sig_bytes = proto.signature.size();

  // ---- broadcast: allocations + bytes copied per N-way fan-out ----------
  const auto alloc_before = SharedBytes::alloc_stats();
  std::vector<net::Envelope> fanout;
  fanout.reserve(kRecipients);
  for (std::size_t r = 0; r < kRecipients; ++r) {
    net::Envelope copy = proto;
    copy.dst = static_cast<principal::Id>(r + 2);
    fanout.push_back(std::move(copy));
  }
  const auto alloc_after = SharedBytes::alloc_stats();
  const std::uint64_t frame_allocs =
      alloc_after.allocations - alloc_before.allocations;
  const std::uint64_t frame_bytes_copied =
      alloc_after.bytes - alloc_before.bytes;
  // Seed behaviour, for the reported comparison: one deep payload+signature
  // copy per recipient.
  const std::uint64_t legacy_bytes_copied =
      kRecipients * (kPayloadBytes + sig_bytes);
  expect(frame_allocs == 0,
         "broadcast fan-out must perform O(1) payload allocations");
  for (const auto& env : fanout) {
    expect(env.payload.same_buffer(proto.payload),
           "every recipient must observe the same payload frame");
  }

  // ---- digest: computed at most once per message per replica ------------
  const std::uint64_t digests_before = net::envelope_digests_computed();
  Digest d = proto.digest();  // e.g. the VerifyCache key derivation
  for (const auto& env : fanout) {
    // ... and every downstream consumer of any broadcast copy.
    if (env.digest() != d) expect(false, "copies must share the digest");
  }
  const std::uint64_t digest_computations =
      net::envelope_digests_computed() - digests_before;
  expect(digest_computations <= 1,
         "envelope digest must be computed at most once per message");

  // ---- ingest: zero-allocation parse of a received wire image -----------
  SharedBytes wire_frame(proto.wire().to_bytes());  // "received" bytes
  const auto ingest_before = SharedBytes::alloc_stats();
  auto received = net::Envelope::from_frame(wire_frame);
  expect(received.has_value(), "wire image must parse");
  const std::uint64_t ingest_allocs =
      SharedBytes::alloc_stats().allocations - ingest_before.allocations;
  expect(ingest_allocs == 0, "from_frame must not allocate frame buffers");
  expect(received->wire().same_buffer(wire_frame),
         "relay must reuse the received frame");

  // ---- throughput: frame fan-out vs seed deep-copy fan-out --------------
  const Throughput frame_tp = measure(kRecipients, [&] {
    std::vector<net::Envelope> out;
    out.reserve(kRecipients);
    for (std::size_t r = 0; r < kRecipients; ++r) {
      net::Envelope copy = proto;
      copy.dst = static_cast<principal::Id>(r + 2);
      out.push_back(std::move(copy));
    }
  });
  LegacyEnvelope legacy;
  legacy.src = 1;
  legacy.type = 3;
  legacy.payload = proto.payload.to_bytes();
  legacy.signature = proto.signature.to_bytes();
  const Throughput legacy_tp = measure(kRecipients, [&] {
    std::vector<LegacyEnvelope> out;
    out.reserve(kRecipients);
    for (std::size_t r = 0; r < kRecipients; ++r) {
      LegacyEnvelope copy = legacy;  // deep copy, as at seed
      copy.dst = static_cast<principal::Id>(r + 2);
      out.push_back(std::move(copy));
    }
  });
  const double speedup = legacy_tp.ops_per_sec() > 0
                             ? frame_tp.ops_per_sec() / legacy_tp.ops_per_sec()
                             : 0;

  // ---- warm verify path: repeated proof re-checks allocate nothing ------
  net::VerifyCache cache(ring.verifier());
  expect(cache.check(*received, 1), "received envelope must verify");
  const auto warm_before = SharedBytes::alloc_stats();
  for (int i = 0; i < 64; ++i) {
    if (!cache.check(*received, 1)) expect(false, "warm check failed");
  }
  const std::uint64_t warm_allocs =
      SharedBytes::alloc_stats().allocations - warm_before.allocations;
  expect(warm_allocs == 0, "warm re-checks must not allocate frames");

  std::printf(
      "message_fabric: %zu-byte payload, %zu-way broadcast\n"
      "  frame allocations per broadcast   %llu   (seed: %zu deep copies)\n"
      "  payload bytes copied per broadcast %llu   (seed: %llu)\n"
      "  digest computations per message    %llu\n"
      "  ingest allocations per message     %llu\n"
      "  fan-out throughput  frame %12.0f copies/s\n"
      "                      seed  %12.0f copies/s  (%.1fx)\n",
      kPayloadBytes, kRecipients,
      static_cast<unsigned long long>(frame_allocs), kRecipients,
      static_cast<unsigned long long>(frame_bytes_copied),
      static_cast<unsigned long long>(legacy_bytes_copied),
      static_cast<unsigned long long>(digest_computations),
      static_cast<unsigned long long>(ingest_allocs), frame_tp.ops_per_sec(),
      legacy_tp.ops_per_sec(), speedup);

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"message_fabric\",\n"
       << "  \"recipients\": " << kRecipients << ",\n"
       << "  \"payload_bytes\": " << kPayloadBytes << ",\n"
       << "  \"frame_allocs_per_broadcast\": " << frame_allocs << ",\n"
       << "  \"seed_allocs_per_broadcast\": " << kRecipients << ",\n"
       << "  \"frame_bytes_copied_per_broadcast\": " << frame_bytes_copied
       << ",\n"
       << "  \"seed_bytes_copied_per_broadcast\": " << legacy_bytes_copied
       << ",\n"
       << "  \"digest_computations_per_message\": " << digest_computations
       << ",\n"
       << "  \"ingest_allocs_per_message\": " << ingest_allocs << ",\n"
       << "  \"warm_recheck_allocs\": " << warm_allocs << ",\n"
       << "  \"fanout_frame_copies_per_sec\": " << frame_tp.ops_per_sec()
       << ",\n"
       << "  \"fanout_seed_copies_per_sec\": " << legacy_tp.ops_per_sec()
       << ",\n"
       << "  \"fanout_speedup\": " << speedup << ",\n"
       << "  \"structural_failures\": " << failures << "\n"
       << "}\n";
  json.close();
  std::printf("wrote %s\n", json_path.c_str());

  return failures == 0 ? 0 : 1;
}
