// Microbenchmarks for the from-scratch crypto substrate (google-benchmark).
//
// These are the primitive costs behind the CostProfile; on the paper's
// hardware the ring/SGX equivalents are faster (the virtual-time model uses
// calibrated constants, not these measurements — see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "crypto/x25519.hpp"

namespace {

using namespace sbft;
using namespace sbft::crypto;

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Sha512(benchmark::State& state) {
  Rng rng(2);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha512(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(3);
  const Bytes key = rng.bytes(32);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_AeadSealFixed(benchmark::State& state) {
  Rng rng(4);
  Key32 key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  const Bytes plaintext = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const Nonce12 nonce = make_nonce(1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead_seal(key, nonce, {}, plaintext));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AeadSealFixed)->Arg(16)->Arg(256)->Arg(4096);

void BM_AeadOpen(benchmark::State& state) {
  Rng rng(5);
  Key32 key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  const Bytes plaintext = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const Nonce12 nonce = make_nonce(1, 1);
  const Bytes sealed = aead_seal(key, nonce, {}, plaintext);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead_open(key, nonce, {}, sealed));
  }
}
BENCHMARK(BM_AeadOpen)->Arg(16)->Arg(256)->Arg(4096);

void BM_Ed25519Sign(benchmark::State& state) {
  Rng rng(6);
  const auto key = Ed25519SecretKey::generate(rng);
  const Bytes msg = rng.bytes(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign(msg));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  Rng rng(7);
  const auto key = Ed25519SecretKey::generate(rng);
  const Bytes msg = rng.bytes(128);
  const auto sig = key.sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed25519_verify(key.public_key(), msg, sig));
  }
}
BENCHMARK(BM_Ed25519Verify);

void BM_X25519(benchmark::State& state) {
  Rng rng(8);
  const Key32 secret = x25519_keygen(rng);
  const Key32 peer = x25519_base(x25519_keygen(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(x25519(secret, peer));
  }
}
BENCHMARK(BM_X25519);

}  // namespace

BENCHMARK_MAIN();
