// Verify-path throughput microbenchmark (the auth-layer counterpart of
// crypto_micro).
//
// Measures the three regimes of the net::auth subsystem over real Ed25519
// envelopes:
//   serial — eager per-call-site verify_envelope (the pre-auth-layer code),
//   pool   — a VerifierPool with N workers batch-verifying cold envelopes,
//   cached — a warm VerifyCache answering repeated certificate re-checks.
//
// Emits a human-readable summary on stdout and machine-readable JSON to the
// first non-flag argument (default BENCH_verify_path.json) so CI can archive
// the numbers as a bench trajectory. With --enforce, exit status is nonzero
// if the parallel pool fails to reach 2x serial throughput on a machine
// with >= 4 cores (the acceptance bar); without it the shortfall is only
// warned about, since shared CI runners make wall-clock ratios noisy.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "crypto/keyring.hpp"
#include "net/auth.hpp"
#include "net/message.hpp"

namespace {

using namespace sbft;

constexpr std::size_t kSigners = 8;
constexpr std::size_t kEnvelopes = 256;
constexpr std::size_t kPayloadBytes = 256;
constexpr double kMinSeconds = 0.3;

[[nodiscard]] double now_seconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

struct Measurement {
  std::uint64_t ops{0};
  double seconds{0};
  [[nodiscard]] double ops_per_sec() const {
    return seconds > 0 ? static_cast<double>(ops) / seconds : 0;
  }
};

/// Runs `round` (which performs `ops_per_round` verifications) until the
/// measurement window is filled.
template <typename Fn>
[[nodiscard]] Measurement measure(std::size_t ops_per_round, Fn&& round) {
  Measurement m;
  const double start = now_seconds();
  do {
    round();
    m.ops += ops_per_round;
    m.seconds = now_seconds() - start;
  } while (m.seconds < kMinSeconds);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_verify_path.json";
  bool enforce = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--enforce") {
      enforce = true;
    } else {
      json_path = argv[i];
    }
  }
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t pool_workers = std::min<std::size_t>(cores, 8);

  crypto::KeyRing ring(crypto::Scheme::Ed25519, 0xbe9c);
  for (std::size_t s = 0; s < kSigners; ++s) {
    ring.add_principal(static_cast<principal::Id>(s + 1));
  }
  const auto verifier = ring.verifier();

  Rng rng(42);
  std::vector<net::VerifierPool::Job> jobs;
  jobs.reserve(kEnvelopes);
  for (std::size_t i = 0; i < kEnvelopes; ++i) {
    const auto signer_id = static_cast<principal::Id>(i % kSigners + 1);
    net::Envelope env;
    env.src = signer_id;
    env.dst = 1;
    env.type = static_cast<std::uint32_t>(3 + i % 4);
    env.payload = rng.bytes(kPayloadBytes);
    net::sign_envelope(env, *ring.signer(signer_id));
    jobs.push_back({std::move(env), signer_id});
  }

  // --- serial baseline: eager verify_envelope, no cache, one thread ---
  const Measurement serial = measure(kEnvelopes, [&] {
    for (const auto& job : jobs) {
      if (!net::verify_envelope(job.env, *verifier, job.claimed_signer)) {
        std::fprintf(stderr, "serial verification failed\n");
        std::exit(2);
      }
    }
  });

  // --- parallel pool, cold cache (capacity 1 => every round re-verifies) ---
  auto cold_cache = std::make_shared<net::VerifyCache>(verifier, 1);
  net::VerifierPool pool(cold_cache, pool_workers);
  const Measurement pooled = measure(kEnvelopes, [&] {
    const auto results = pool.verify_batch(jobs);
    for (const auto& r : results) {
      if (!r) {
        std::fprintf(stderr, "pooled verification failed\n");
        std::exit(2);
      }
    }
  });

  // --- warm cache: repeated certificate re-checks become hash lookups ---
  net::VerifyCache warm(verifier, 2 * kEnvelopes);
  for (const auto& job : jobs) {
    if (!warm.check(job.env, job.claimed_signer)) {
      std::fprintf(stderr, "warm-up verification failed\n");
      return 2;
    }
  }
  const Measurement cached = measure(kEnvelopes, [&] {
    for (const auto& job : jobs) {
      if (!warm.check(job.env, job.claimed_signer)) {
        std::fprintf(stderr, "cached verification failed\n");
        std::exit(2);
      }
    }
  });
  const net::VerifyStats warm_stats = warm.stats();

  const double speedup =
      serial.ops_per_sec() > 0 ? pooled.ops_per_sec() / serial.ops_per_sec()
                               : 0;
  const double cache_speedup =
      serial.ops_per_sec() > 0 ? cached.ops_per_sec() / serial.ops_per_sec()
                               : 0;

  std::printf("verify_path: %zu envelopes x %zu-byte payloads, %zu signers, "
              "%u core(s)\n",
              kEnvelopes, kPayloadBytes, kSigners, cores);
  std::printf("  %-28s %12.0f ops/s\n", "serial verify_envelope",
              serial.ops_per_sec());
  std::printf("  %-28s %12.0f ops/s  (%zu workers, %.2fx serial)\n",
              "VerifierPool (cold cache)", pooled.ops_per_sec(), pool_workers,
              speedup);
  std::printf("  %-28s %12.0f ops/s  (%.0fx serial, %llu hits)\n",
              "VerifyCache (warm)", cached.ops_per_sec(), cache_speedup,
              static_cast<unsigned long long>(warm_stats.hits));

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"verify_path\",\n"
       << "  \"cores\": " << cores << ",\n"
       << "  \"pool_workers\": " << pool_workers << ",\n"
       << "  \"envelopes\": " << kEnvelopes << ",\n"
       << "  \"payload_bytes\": " << kPayloadBytes << ",\n"
       << "  \"serial_ops_per_sec\": " << serial.ops_per_sec() << ",\n"
       << "  \"pool_ops_per_sec\": " << pooled.ops_per_sec() << ",\n"
       << "  \"pool_speedup\": " << speedup << ",\n"
       << "  \"cached_ops_per_sec\": " << cached.ops_per_sec() << ",\n"
       << "  \"cached_speedup\": " << cache_speedup << ",\n"
       << "  \"cache_hits\": " << warm_stats.hits << ",\n"
       << "  \"cache_misses\": " << warm_stats.misses << "\n"
       << "}\n";
  json.close();
  std::printf("wrote %s\n", json_path.c_str());

  if (cores >= 4 && speedup < 2.0) {
    std::fprintf(stderr, "%s: pool speedup %.2fx < 2x serial on %u cores\n",
                 enforce ? "FAIL" : "WARN", speedup, cores);
    return enforce ? 1 : 0;
  }
  return 0;
}
