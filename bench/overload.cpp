// Overload benchmark — the staged execution runner under saturation.
//
// Two experiments over the virtual-time simulator (perf-modeled replicas,
// deterministic from the seed; the numbers are machine-independent):
//
//  1. Worker scaling (closed loop, 4000 clients): ordered throughput with
//     the staged runner at workers ∈ {1, 4} on both stacks. The PBFT
//     comparison is hard-asserted: workers=4 must deliver at least 1.5x
//     the workers=1 throughput — the pipeline's reply MAC/serialize stage
//     must actually come off the critical path.
//
//  2. Offered-load sweep (open loop, latency from arrival): fixed client
//     population, per-client Poisson arrival rate swept from well below
//     the knee to ~4x past it, with self-tuning (Config::auto_tune) and
//     admission control (Config::admission_queue_cap) enabled. Charts the
//     latency cliff: p99 is flat below the knee and explodes past it,
//     while admission control sheds fresh requests instead of letting the
//     backlog grow without bound.
//
// Structural properties are hard-asserted (exit != 0):
//   * PBFT closed-loop throughput: workers=4 >= 1.5x workers=1;
//   * every sweep point completes operations;
//   * past the knee, admission control actually sheds load.
// Absolute numbers are trajectory-only. Emits machine-readable JSON to the
// first non-flag argument (default BENCH_overload.json).
//
//   --smoke   CI configuration: shorter windows, sweep trimmed.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/workload/sim_driver.hpp"

using namespace sbft;
using namespace sbft::runtime;
using workload::LoadMode;
using workload::Options;
using workload::Report;
using workload::Stack;

namespace {

int failures = 0;

void expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

[[nodiscard]] pbft::Config protocol_config() {
  pbft::Config config;
  config.n = 4;
  config.f = 1;
  config.batch_max = 200;
  config.batch_timeout_us = 10'000;
  config.checkpoint_interval = 50;
  config.watermark_window = 400;
  config.pipeline_depth = 8;
  config.request_timeout_us = 2'000'000;  // saturation must not trigger VCs
  return config;
}

void print_row(const char* label, const Options& options,
               const Report& report) {
  std::printf(
      "%-10s %-9s %-7s %7u %3zu %12.0f %9.2f %9.2f %9.2f %10llu  %s\n", label,
      to_string(options.stack), to_string(options.mode), options.clients,
      options.workers, report.ops_per_sec, report.mean_latency_ms,
      static_cast<double>(report.p50_us) / 1000.0,
      static_cast<double>(report.p99_us) / 1000.0,
      static_cast<unsigned long long>(report.admission_rejects),
      report.sustained ? "sustained" : "STALLED");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_overload.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (argv[i][0] != '-') {
      json_path = argv[i];
    }
  }

  const Micros warmup = smoke ? 100'000 : 150'000;
  const Micros measure = smoke ? 200'000 : 400'000;

  std::printf("overload / staged-runner benchmark — %s configuration\n",
              smoke ? "smoke" : "full");
  std::printf("%-10s %-9s %-7s %7s %3s %12s %9s %9s %9s %10s\n", "phase",
              "stack", "mode", "clients", "wrk", "ops/s", "mean-ms", "p50-ms",
              "p99-ms", "rejects");

  std::vector<std::string> json_runs;
  const auto run_sim = [&](const char* label, const Options& options) {
    const Report report = workload::run_sim_workload(options);
    print_row(label, options, report);
    json_runs.push_back(workload::report_json(options, report));
    return report;
  };

  // ---- 1. worker scaling: closed loop, 4000 clients --------------------
  // The hard acceptance bar lives on PBFT, where reply MAC + serialization
  // for every committed request lands on the staged runner; SplitBFT's
  // scaling is reported as trajectory (its reply stage is a smaller slice
  // of the per-op budget next to ecall crossings and broker routing).
  double pbft_ops[2] = {0, 0};
  for (const Stack stack : {Stack::Pbft, Stack::Splitbft}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      Options options;
      options.stack = stack;
      options.mode = LoadMode::Closed;
      options.clients = 4000;
      options.workers = workers;
      options.protocol = protocol_config();
      options.warmup_us = warmup;
      options.measure_us = measure;
      const Report report = run_sim("scaling", options);
      expect(report.completed_ops > 0, "scaling point must complete ops");
      expect(report.sustained, "scaling point must sustain traffic");
      if (stack == Stack::Pbft) pbft_ops[workers == 4] = report.ops_per_sec;
    }
  }
  std::printf("pbft worker scaling: %.0f -> %.0f ops/s (%.2fx)\n",
              pbft_ops[0], pbft_ops[1],
              pbft_ops[0] > 0 ? pbft_ops[1] / pbft_ops[0] : 0.0);
  expect(pbft_ops[1] >= 1.5 * pbft_ops[0],
         "pbft ordered throughput at workers=4 must be >= 1.5x workers=1");

  // ---- 2. offered-load sweep: open loop, auto-tune + admission ---------
  // 1000 clients, per-client Poisson arrivals; offered load doubles per
  // point. Capacity at workers=4 sits a little past the middle of the
  // sweep, so the JSON charts flat p99 below the knee and the cliff (plus
  // admission shedding) beyond it.
  std::vector<Micros> interarrival_sweep = {20'000, 10'000, 5'000, 2'500,
                                            1'250};
  if (smoke) interarrival_sweep = {20'000, 5'000, 1'250};
  Report first_point;
  Report last_point;
  for (std::size_t i = 0; i < interarrival_sweep.size(); ++i) {
    Options options;
    options.stack = Stack::Pbft;
    options.mode = LoadMode::Open;
    options.clients = 1000;
    options.workers = 4;
    options.interarrival_us = interarrival_sweep[i];
    options.protocol = protocol_config();
    options.protocol.auto_tune = true;
    // Each open-loop client keeps at most one request in flight, so the
    // replica-side backlog is bounded by the client count; the cap must sit
    // below it for overload to reach the admission controller.
    options.protocol.admission_queue_cap = 512;
    options.warmup_us = warmup;
    options.measure_us = measure;
    const Report report = run_sim("sweep", options);
    expect(report.completed_ops > 0, "sweep point must complete ops");
    if (i == 0) first_point = report;
    if (i + 1 == interarrival_sweep.size()) last_point = report;
  }
  // Below the knee the system keeps up; past it, queueing delay dominates
  // open-loop latency and the admission controller sheds fresh requests.
  expect(first_point.sustained, "below-knee point must sustain traffic");
  expect(first_point.admission_rejects == 0,
         "below-knee point must not shed load");
  expect(last_point.admission_rejects > 0,
         "past-knee point must shed load via admission control");
  expect(last_point.p99_us > first_point.p99_us,
         "p99 latency must climb past the knee");

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"overload\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"pbft_worker_scaling\": {"
       << "\"workers1_ops_per_sec\": " << pbft_ops[0] << ", "
       << "\"workers4_ops_per_sec\": " << pbft_ops[1] << ", "
       << "\"speedup\": " << (pbft_ops[0] > 0 ? pbft_ops[1] / pbft_ops[0] : 0)
       << ", \"required_speedup\": 1.5},\n  \"runs\": [\n";
  for (std::size_t i = 0; i < json_runs.size(); ++i) {
    json << "    " << json_runs[i] << (i + 1 < json_runs.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n  \"structural_failures\": " << failures << "\n}\n";
  json.close();
  std::printf("wrote %s\n", json_path.c_str());

  return failures == 0 ? 0 : 1;
}
