// Ablation B — batch size sweep: how request batching amortizes enclave
// crossings and signatures (the lever behind the Figure 3a -> 3b jump).
#include <cstdio>
#include <vector>

#include "runtime/bench_harness.hpp"

using namespace sbft;
using namespace sbft::runtime;

int main() {
  std::printf("Ablation — throughput vs batch size "
              "(40 clients x 40 outstanding, KVS)\n");
  std::printf("%10s %-12s %12s %11s\n", "batch", "system", "ops/s", "mean-ms");

  // The bench harness exposes batched/unbatched; for the sweep we run the
  // batched configuration with modified batch_max via the profile hook:
  // the protocol config is derived inside, so emulate sizes via the two
  // supported modes plus intermediate outstanding scaling.
  for (const bool batched : {false, true}) {
    for (const System system : {System::Splitbft, System::Pbft}) {
      BenchPoint point;
      point.system = system;
      point.workload = Workload::KvStore;
      point.clients = 40;
      point.outstanding = batched ? 40 : 1;
      point.batched = batched;
      point.warmup_us = 150'000;
      point.measure_us = 400'000;
      const BenchResult result = run_bench_point(point);
      std::printf("%10s %-12s %12.0f %11.2f\n", batched ? "200" : "1",
                  to_string(system), result.ops_per_sec,
                  result.mean_latency_ms);
      std::fflush(stdout);
    }
  }
  std::printf("\nBatching amortizes one set of signatures + crossings over "
              "200 requests —\nthe throughput multiplier is the paper's "
              "core Figure 3a->3b result.\n");
  return 0;
}
