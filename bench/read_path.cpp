// Read-path benchmark — ordered vs single-round authenticated reads.
//
// GET-fraction sweep (0.5 / 0.9 / 0.99) at 1000 closed-loop clients on
// BOTH stacks (virtual-time simulator, perf-modeled replicas,
// deterministic from the seed), each load point run twice: once with every
// operation ordered through the full three-phase pipeline, once with
// Config::read_path on so GETs are served by replicas (PBFT) or the
// Execution compartments alone (SplitBFT) in a single round.
//
// The sweep shows the crossover honestly: at write-heavy mixes (0.5) the
// fallback tax of the strict (digest, exec-seq) quorum rule can exceed the
// win on the PBFT stack, at 0.9 both stacks win, and at 0.99 reads almost
// never fall back.
//
// Structural properties are hard-asserted (exit != 0):
//   * at GET fraction 0.9 the fast read path must BEAT the ordered path
//     in throughput on both stacks (the acceptance bar);
//   * every run must complete operations, and the 0.9 fast runs must
//     sustain traffic across the whole measurement window;
//   * fast runs must actually use the fast path, and the fallback share
//     stays bounded where reads dominate (<= 20% at 0.9, <= 4% at 0.99).
// Absolute numbers are trajectory-only. Emits machine-readable JSON to the
// first non-flag argument (default BENCH_read_path.json).
//
//   --smoke   CI configuration: shorter windows, 0.9 fraction only.
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "runtime/workload/sim_driver.hpp"

using namespace sbft;
using namespace sbft::runtime;
using workload::LoadMode;
using workload::Options;
using workload::Report;
using workload::Stack;

namespace {

int failures = 0;

void expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

[[nodiscard]] pbft::Config protocol_config(bool read_path) {
  pbft::Config config;
  config.n = 4;
  config.f = 1;
  config.batch_max = 200;
  config.batch_timeout_us = 10'000;
  config.checkpoint_interval = 50;
  config.watermark_window = 400;
  config.pipeline_depth = 8;
  config.request_timeout_us = 2'000'000;  // saturation must not trigger VCs
  config.read_path = read_path;
  return config;
}

void print_row(const Options& options, const Report& report) {
  std::printf("%-9s %5.2f %-7s %12.0f %9.2f %9.2f %9.2f %10llu %9llu  %s\n",
              to_string(options.stack), options.get_fraction,
              options.protocol.read_path ? "fast" : "ordered",
              report.ops_per_sec, report.mean_latency_ms,
              static_cast<double>(report.p50_us) / 1000.0,
              static_cast<double>(report.p99_us) / 1000.0,
              static_cast<unsigned long long>(report.fast_reads),
              static_cast<unsigned long long>(report.read_fallbacks),
              report.sustained ? "sustained" : "STALLED");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_read_path.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (argv[i][0] != '-') {
      json_path = argv[i];
    }
  }

  const Micros warmup = smoke ? 100'000 : 150'000;
  const Micros measure = smoke ? 200'000 : 400'000;
  std::vector<double> fractions = smoke ? std::vector<double>{0.9}
                                        : std::vector<double>{0.5, 0.9, 0.99};

  std::printf("read path — %s configuration, 1000 closed-loop clients\n",
              smoke ? "smoke" : "full");
  std::printf("%-9s %5s %-7s %12s %9s %9s %9s %10s %9s\n", "stack", "get",
              "mode", "ops/s", "mean-ms", "p50-ms", "p99-ms", "fast", "fallbk");

  std::vector<std::string> json_runs;
  // (stack, fraction) -> ops/s per mode; [0] = ordered, [1] = fast.
  std::map<std::pair<int, double>, std::array<double, 2>> ops;

  for (const Stack stack : {Stack::Pbft, Stack::Splitbft}) {
    for (const double fraction : fractions) {
      for (const bool fast : {false, true}) {
        Options options;
        options.stack = stack;
        options.mode = LoadMode::Closed;
        options.clients = 1000;
        options.get_fraction = fraction;
        options.protocol = protocol_config(fast);
        options.warmup_us = warmup;
        options.measure_us = measure;
        const Report report = workload::run_sim_workload(options);
        print_row(options, report);
        json_runs.push_back(workload::report_json(options, report));
        ops[{static_cast<int>(stack), fraction}][fast ? 1 : 0] =
            report.ops_per_sec;

        expect(report.completed_ops > 0, "every run must complete ops");
        if (fast) {
          expect(report.fast_reads > 0,
                 "fast configuration must use the fast path");
          // The fallback is a correctness valve, not the common case —
          // but under write-heavy interleavings the strict
          // (digest, exec-seq) rule falls back legitimately, so the bar
          // tightens as reads dominate (0.5 is trajectory-only).
          if (fraction == 0.9) {
            expect(report.fast_reads >= 5 * report.read_fallbacks,
                   "at most ~20% of fast reads may fall back at get=0.9");
            expect(report.sustained, "0.9 fast run must sustain traffic");
          } else if (fraction == 0.99) {
            expect(report.fast_reads >= 25 * report.read_fallbacks,
                   "at most ~4% of fast reads may fall back at get=0.99");
          }
        }
      }
    }
  }

  // The acceptance bar: single-round reads beat the ordered path on the
  // GET-heavy (0.9) 1000-client run for BOTH stacks.
  double speedup_pbft = 0;
  double speedup_split = 0;
  {
    const auto& p = ops[{static_cast<int>(Stack::Pbft), 0.9}];
    const auto& s = ops[{static_cast<int>(Stack::Splitbft), 0.9}];
    speedup_pbft = p[0] > 0 ? p[1] / p[0] : 0;
    speedup_split = s[0] > 0 ? s[1] / s[0] : 0;
    std::printf("\nget=0.9 fast-vs-ordered speedup: PBFT %.2fx, "
                "SplitBFT %.2fx\n",
                speedup_pbft, speedup_split);
    expect(speedup_pbft > 1.0,
           "PBFT fast read path must beat the ordered path at get=0.9");
    expect(speedup_split > 1.0,
           "SplitBFT fast read path must beat the ordered path at get=0.9");
  }

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"read_path\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"speedup_get09_pbft\": "
       << speedup_pbft << ",\n  \"speedup_get09_splitbft\": " << speedup_split
       << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < json_runs.size(); ++i) {
    json << "    " << json_runs[i] << (i + 1 < json_runs.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n  \"structural_failures\": " << failures << "\n}\n";
  json.close();
  std::printf("wrote %s\n", json_path.c_str());

  return failures == 0 ? 0 : 1;
}
