// Figure 3b — throughput (ops/s) and latency (ms) vs number of clients,
// WITH batching: batches close at 200 requests or a 10 ms timeout, and
// every client keeps 40 requests outstanding (modeled as 40 independent
// closed-loop clients per nominal client).
//
// Paper shapes to check: batched SplitBFT reaches ~64% of PBFT for the
// KVS and ~55% for the blockchain; the KVS beats the blockchain by up to
// 4.6x (one protected-FS ocall per 5-transaction block).
#include <cstdio>
#include <vector>

#include "runtime/bench_harness.hpp"

using namespace sbft;
using namespace sbft::runtime;

int main() {
  const std::vector<std::uint32_t> client_counts = {10, 40, 80, 120, 150};
  struct Series {
    System system;
    Workload workload;
  };
  const std::vector<Series> series = {
      {System::Splitbft, Workload::KvStore},
      {System::Pbft, Workload::KvStore},
      {System::Splitbft, Workload::Blockchain},
      {System::Pbft, Workload::Blockchain},
  };

  std::printf("Figure 3b — batched (200 req / 10 ms, 40 outstanding per "
              "client) throughput/latency vs clients\n");
  std::printf("%-24s %-11s %8s %12s %11s %9s\n", "system", "workload",
              "clients", "ops/s", "mean-ms", "p99-ms");

  for (const auto& s : series) {
    for (const std::uint32_t clients : client_counts) {
      BenchPoint point;
      point.system = s.system;
      point.workload = s.workload;
      point.clients = clients;
      point.outstanding = 40;
      point.batched = true;
      point.warmup_us = 150'000;
      point.measure_us = 400'000;
      const BenchResult result = run_bench_point(point);
      std::printf("%s\n", bench_row(point, result).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
