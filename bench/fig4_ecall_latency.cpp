// Figure 4 — average time spent inside each compartment's enclave during
// the processing of one request (unbatched) or one batch (batched),
// measured on the leader with 40 clients, KVS application.
//
// Paper numbers to compare: unbatched ecalls sum to ~841 µs per request
// with Execution the largest (~343 µs); batched runs are dominated by the
// Preparation ecall (batch authentication + copy-in), while Confirmation
// stays flat since it only ever handles the batch hash.
#include <cstdio>

#include "runtime/bench_harness.hpp"

using namespace sbft;
using namespace sbft::runtime;

namespace {

void run_mode(bool batched) {
  BenchPoint point;
  point.system = System::Splitbft;
  point.workload = Workload::KvStore;
  point.clients = 40;
  point.outstanding = batched ? 40 : 1;
  point.batched = batched;
  point.warmup_us = 150'000;
  point.measure_us = 400'000;
  const BenchResult result = run_bench_point(point);

  const auto& e = result.leader_ecalls;
  const char* mode = batched ? "Batched" : "Not Batched";
  std::printf("%-12s per-%s enclave time on the leader:\n", mode,
              batched ? "batch " : "request");
  const double unit = batched ? 200.0 : 1.0;  // per batch vs per request
  std::printf("  Preparation  : %9.1f us\n", e.prep_us_per_req * unit);
  std::printf("  Confirmation : %9.1f us\n", e.conf_us_per_req * unit);
  std::printf("  Execution    : %9.1f us\n", e.exec_us_per_req * unit);
  std::printf("  total        : %9.1f us\n",
              (e.prep_us_per_req + e.conf_us_per_req + e.exec_us_per_req) *
                  unit);
  std::printf("  mean single ecall: prep=%.1f us conf=%.1f us exec=%.1f us\n",
              e.prep_mean_ecall_us, e.conf_mean_ecall_us,
              e.exec_mean_ecall_us);
  std::printf("  (throughput at this point: %.0f ops/s)\n\n",
              result.ops_per_sec);
}

}  // namespace

int main() {
  std::printf("Figure 4 — mean ecall latency per compartment "
              "(leader, 40 clients, KVS)\n\n");
  run_mode(/*batched=*/false);
  run_mode(/*batched=*/true);
  std::printf("Paper reference: unbatched ecalls sum to ~841 us/request "
              "(Execution ~343 us);\nbatched mode is dominated by the "
              "Preparation ecall; Confirmation is unaffected\nby batching "
              "(hash-only input).\n");
  return 0;
}
