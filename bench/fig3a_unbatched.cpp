// Figure 3a — throughput (ops/s) and latency (ms) vs number of clients,
// WITHOUT batching, for the paper's six series: SplitBFT KVS, PBFT KVS,
// SplitBFT KVS Simulation(-mode), SplitBFT KVS Single Thread, SplitBFT
// Blockchain, PBFT Blockchain. 10-byte payloads, closed-loop clients.
//
// Paper shapes to check: SplitBFT reaches ~43-74% of PBFT throughput (KVS)
// and ~38-59% (blockchain); simulation mode recovers ~20% of the gap;
// the single-thread variant caps around 1.2k ops/s.
#include <cstdio>
#include <vector>

#include "runtime/bench_harness.hpp"

using namespace sbft;
using namespace sbft::runtime;

int main() {
  const std::vector<std::uint32_t> client_counts = {1, 5, 10, 20, 40, 80, 120, 150};
  struct Series {
    System system;
    Workload workload;
  };
  const std::vector<Series> series = {
      {System::Splitbft, Workload::KvStore},
      {System::Pbft, Workload::KvStore},
      {System::SplitbftSim, Workload::KvStore},
      {System::SplitbftSingle, Workload::KvStore},
      {System::Splitbft, Workload::Blockchain},
      {System::Pbft, Workload::Blockchain},
  };

  std::printf("Figure 3a — unbatched throughput/latency vs clients "
              "(virtual-time model)\n");
  std::printf("%-24s %-11s %8s %12s %11s %9s\n", "system", "workload",
              "clients", "ops/s", "mean-ms", "p99-ms");

  for (const auto& s : series) {
    for (const std::uint32_t clients : client_counts) {
      BenchPoint point;
      point.system = s.system;
      point.workload = s.workload;
      point.clients = clients;
      point.outstanding = 1;
      point.batched = false;
      point.warmup_us = 200'000;
      point.measure_us = 600'000;
      const BenchResult result = run_bench_point(point);
      std::printf("%s\n", bench_row(point, result).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
