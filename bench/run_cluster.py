#!/usr/bin/env python3
"""Multi-process cluster benchmark: real TCP transport end to end.

Brings up an n-replica localhost cluster (separate OS processes, real
sockets) plus a load generator for each protocol stack, runs a closed-loop
sweep, and collects wall-clock throughput/latency plus transport counters
into BENCH_transport.json.

Hard assertions (exit nonzero on violation):
  * the loadgen sustained traffic through every measurement quarter and
    completed > 0 operations;
  * every replica averaged >= 2 envelopes per writev syscall on the
    broadcast path (scatter-gather batching actually engaged);
  * no decode errors on any node.

With --shards N > 1 the deployment becomes N independent replica groups
over one flat port plan (shard s, node k -> base_port + s*(replicas+1)+k);
every replica process joins one shard with shard-derived keys, the loadgen
routes per key and runs cross-shard multi-ops as 2PC-over-BFT. A nonzero
--cross-fraction adds the torn-write audit: the run fails if any multi-op
key group reads back inconsistent.

Usage:
  python3 bench/run_cluster.py [--build-dir build] [--smoke]
                               [--clients N] [--replicas N]
                               [--shards N] [--cross-fraction F]
                               [--out BENCH_transport.json]
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent


def parse_args():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--build-dir", default="build")
    p.add_argument("--smoke", action="store_true",
                   help="fast CI variant: fewer clients, shorter measure")
    p.add_argument("--clients", type=int, default=None)
    p.add_argument("--replicas", type=int, default=4)
    p.add_argument("--shards", type=int, default=1)
    p.add_argument("--cross-fraction", type=float, default=0.0,
                   dest="cross_fraction",
                   help="fraction of ops issued as multi-key transactions "
                        "(enables the torn-write audit when > 0)")
    p.add_argument("--base-port", type=int, default=18100)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--out", default="BENCH_transport.json")
    return p.parse_args()


def run_stack(stack, args, base_port, tmp):
    """Launches replicas + loadgen for one stack; returns the result dict."""
    build = REPO / args.build_dir
    replica_bin = build / "examples" / "bft_replica"
    loadgen_bin = build / "examples" / "bft_loadgen"
    clients = args.clients or (200 if args.smoke else 1000)
    warmup_ms = 500 if args.smoke else 1000
    measure_ms = 1500 if args.smoke else 4000
    # Replicas self-terminate (and write their stats) shortly after the
    # loadgen's window closes; generous margin for process startup, plus
    # room for the post-run torn-write audit when one is requested.
    audit_secs = 10 if args.cross_fraction > 0 else 0
    run_secs = (warmup_ms + measure_ms) // 1000 + (4 if args.smoke else 6) \
        + audit_secs

    common = ["--stack", stack, "--replicas", str(args.replicas),
              "--loadgens", "1", "--clients", str(clients),
              "--base-port", str(base_port), "--seed", str(args.seed),
              "--shards", str(args.shards)]

    replicas = []
    stats_paths = []
    for s in range(args.shards):
        for r in range(args.replicas):
            stats = tmp / f"{stack}_s{s}_replica{r}.json"
            stats_paths.append(stats)
            log = open(tmp / f"{stack}_s{s}_replica{r}.log", "w")
            replicas.append(subprocess.Popen(
                [str(replica_bin), "--replica", str(r),
                 "--shard-index", str(s),
                 "--run-secs", str(run_secs), "--stats-out", str(stats)]
                + common,
                stdout=log, stderr=log))
    time.sleep(0.5)  # let every replica bind before the loadgen dials

    print(f"[{stack}] {args.shards} shard(s) x {args.replicas} replicas up, "
          f"driving {clients} closed-loop clients for {measure_ms} ms ...",
          flush=True)
    loadgen = subprocess.run(
        [str(loadgen_bin), "--loadgen", "0", "--mode", "closed",
         "--warmup-ms", str(warmup_ms), "--measure-ms", str(measure_ms),
         "--cross-fraction", str(args.cross_fraction),
         "--multi-groups", "64" if args.smoke else "256"]
        + common,
        capture_output=True, text=True, timeout=run_secs + audit_secs + 60)

    failures = []
    if loadgen.returncode != 0:
        failures.append(f"loadgen exit {loadgen.returncode}: "
                        f"{loadgen.stderr.strip()[-500:]}")
    try:
        report = json.loads(loadgen.stdout)
    except json.JSONDecodeError:
        failures.append(f"loadgen emitted no JSON: {loadgen.stdout[:200]!r}")
        report = None

    replica_stats = []
    for r, (proc, stats) in enumerate(zip(replicas, stats_paths)):
        try:
            proc.wait(timeout=run_secs + 30)
        except subprocess.TimeoutExpired:
            proc.kill()
            failures.append(f"replica {r} hung past its run window")
            continue
        if proc.returncode != 0:
            failures.append(f"replica {r} exit {proc.returncode}")
        if not stats.exists():
            failures.append(f"replica {r} wrote no stats file")
            continue
        s = json.loads(stats.read_text())
        replica_stats.append(s)
        if s["writev_calls"] and s["frames_out"] / s["writev_calls"] < 2.0:
            failures.append(
                f"replica {r} frames/writev "
                f"{s['frames_out'] / s['writev_calls']:.2f} < 2 — "
                "scatter-gather batching not engaged")
        if s["decode_errors"]:
            failures.append(f"replica {r} decode_errors={s['decode_errors']}")

    if report is not None:
        if not report.get("sustained"):
            failures.append("run did not sustain through every quarter")
        if not report.get("completed_ops"):
            failures.append("zero completed operations")
        if args.cross_fraction > 0:
            sharding = report.get("sharding", {})
            if not sharding.get("groups_checked"):
                failures.append("torn-write audit checked zero groups")
            if sharding.get("torn_groups"):
                failures.append(
                    f"torn multi-op groups: {sharding['torn_groups']}")
            if args.shards > 1 and not sharding.get("cross_shard_tx"):
                failures.append("no cross-shard transactions were driven")
        print(f"[{stack}] {report.get('ops_per_sec', 0):.0f} ops/s, "
              f"p50 {report.get('p50_us', 0) / 1000:.1f} ms, "
              f"replica frames/writev "
              + ", ".join(f"{s['frames_per_writev']:.1f}"
                          for s in replica_stats),
              flush=True)

    for f in failures:
        print(f"[{stack}] FAIL: {f}", file=sys.stderr, flush=True)
    return {"report": report, "replicas": replica_stats,
            "failures": failures}


def main():
    args = parse_args()
    results = {}
    with tempfile.TemporaryDirectory(prefix="sbft_cluster_") as td:
        tmp = pathlib.Path(td)
        for i, stack in enumerate(("pbft", "splitbft")):
            # Distinct port range per stack: no TIME_WAIT collisions.
            results[stack] = run_stack(stack, args, args.base_port + i * 100,
                                       tmp)

    out = {
        "bench": "transport",
        "smoke": args.smoke,
        "replicas": args.replicas,
        "shards": args.shards,
        "cross_fraction": args.cross_fraction,
        "clients": args.clients or (200 if args.smoke else 1000),
        "stacks": results,
    }
    pathlib.Path(args.out).write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {args.out}", flush=True)

    failed = [s for s, r in results.items() if r["failures"]]
    if failed:
        print(f"FAILED stacks: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("cluster bench OK", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
