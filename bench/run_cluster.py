#!/usr/bin/env python3
"""Multi-process cluster benchmark: real TCP transport end to end.

Brings up an n-replica localhost cluster (separate OS processes, real
sockets) plus a load generator for each protocol stack, runs a closed-loop
sweep, and collects wall-clock throughput/latency plus transport counters
into BENCH_transport.json.

Hard assertions (exit nonzero on violation):
  * the loadgen sustained traffic through every measurement quarter and
    completed > 0 operations;
  * every replica averaged >= 2 envelopes per writev syscall on the
    broadcast path (scatter-gather batching actually engaged);
  * no decode errors on any node.

Usage:
  python3 bench/run_cluster.py [--build-dir build] [--smoke]
                               [--clients N] [--replicas N]
                               [--out BENCH_transport.json]
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent


def parse_args():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--build-dir", default="build")
    p.add_argument("--smoke", action="store_true",
                   help="fast CI variant: fewer clients, shorter measure")
    p.add_argument("--clients", type=int, default=None)
    p.add_argument("--replicas", type=int, default=4)
    p.add_argument("--base-port", type=int, default=18100)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--out", default="BENCH_transport.json")
    return p.parse_args()


def run_stack(stack, args, base_port, tmp):
    """Launches replicas + loadgen for one stack; returns the result dict."""
    build = REPO / args.build_dir
    replica_bin = build / "examples" / "bft_replica"
    loadgen_bin = build / "examples" / "bft_loadgen"
    clients = args.clients or (200 if args.smoke else 1000)
    warmup_ms = 500 if args.smoke else 1000
    measure_ms = 1500 if args.smoke else 4000
    # Replicas self-terminate (and write their stats) shortly after the
    # loadgen's window closes; generous margin for process startup.
    run_secs = (warmup_ms + measure_ms) // 1000 + (4 if args.smoke else 6)

    common = ["--stack", stack, "--replicas", str(args.replicas),
              "--loadgens", "1", "--clients", str(clients),
              "--base-port", str(base_port), "--seed", str(args.seed)]

    replicas = []
    stats_paths = []
    for r in range(args.replicas):
        stats = tmp / f"{stack}_replica{r}.json"
        stats_paths.append(stats)
        log = open(tmp / f"{stack}_replica{r}.log", "w")
        replicas.append(subprocess.Popen(
            [str(replica_bin), "--replica", str(r),
             "--run-secs", str(run_secs), "--stats-out", str(stats)] + common,
            stdout=log, stderr=log))
    time.sleep(0.5)  # let every replica bind before the loadgen dials

    print(f"[{stack}] {args.replicas} replicas up, driving {clients} "
          f"closed-loop clients for {measure_ms} ms ...", flush=True)
    loadgen = subprocess.run(
        [str(loadgen_bin), "--loadgen", "0", "--mode", "closed",
         "--warmup-ms", str(warmup_ms), "--measure-ms", str(measure_ms)]
        + common,
        capture_output=True, text=True, timeout=run_secs + 60)

    failures = []
    if loadgen.returncode != 0:
        failures.append(f"loadgen exit {loadgen.returncode}: "
                        f"{loadgen.stderr.strip()[-500:]}")
    try:
        report = json.loads(loadgen.stdout)
    except json.JSONDecodeError:
        failures.append(f"loadgen emitted no JSON: {loadgen.stdout[:200]!r}")
        report = None

    replica_stats = []
    for r, (proc, stats) in enumerate(zip(replicas, stats_paths)):
        try:
            proc.wait(timeout=run_secs + 30)
        except subprocess.TimeoutExpired:
            proc.kill()
            failures.append(f"replica {r} hung past its run window")
            continue
        if proc.returncode != 0:
            failures.append(f"replica {r} exit {proc.returncode}")
        if not stats.exists():
            failures.append(f"replica {r} wrote no stats file")
            continue
        s = json.loads(stats.read_text())
        replica_stats.append(s)
        if s["writev_calls"] and s["frames_out"] / s["writev_calls"] < 2.0:
            failures.append(
                f"replica {r} frames/writev "
                f"{s['frames_out'] / s['writev_calls']:.2f} < 2 — "
                "scatter-gather batching not engaged")
        if s["decode_errors"]:
            failures.append(f"replica {r} decode_errors={s['decode_errors']}")

    if report is not None:
        if not report.get("sustained"):
            failures.append("run did not sustain through every quarter")
        if not report.get("completed_ops"):
            failures.append("zero completed operations")
        print(f"[{stack}] {report.get('ops_per_sec', 0):.0f} ops/s, "
              f"p50 {report.get('p50_us', 0) / 1000:.1f} ms, "
              f"replica frames/writev "
              + ", ".join(f"{s['frames_per_writev']:.1f}"
                          for s in replica_stats),
              flush=True)

    for f in failures:
        print(f"[{stack}] FAIL: {f}", file=sys.stderr, flush=True)
    return {"report": report, "replicas": replica_stats,
            "failures": failures}


def main():
    args = parse_args()
    results = {}
    with tempfile.TemporaryDirectory(prefix="sbft_cluster_") as td:
        tmp = pathlib.Path(td)
        for i, stack in enumerate(("pbft", "splitbft")):
            # Distinct port range per stack: no TIME_WAIT collisions.
            results[stack] = run_stack(stack, args, args.base_port + i * 100,
                                       tmp)

    out = {
        "bench": "transport",
        "smoke": args.smoke,
        "replicas": args.replicas,
        "clients": args.clients or (200 if args.smoke else 1000),
        "stacks": results,
    }
    pathlib.Path(args.out).write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {args.out}", flush=True)

    failed = [s for s, r in results.items() if r["failures"]]
    if failed:
        print(f"FAILED stacks: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("cluster bench OK", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
