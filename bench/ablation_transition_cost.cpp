// Ablation A — sensitivity of SplitBFT throughput to the enclave
// transition cost (the §6 discussion attributes ~20% of the overhead to
// transitions; this sweep shows the full curve from free transitions to 4x
// the SGX cost).
#include <cstdio>
#include <vector>

#include "runtime/bench_harness.hpp"

using namespace sbft;
using namespace sbft::runtime;

int main() {
  std::printf("Ablation — SplitBFT KVS throughput vs enclave transition "
              "cost (40 clients, unbatched)\n");
  std::printf("%14s %12s %11s\n", "transition-us", "ops/s", "mean-ms");

  for (const double transition : {0.0, 1.0, 2.3, 4.0, 8.0, 16.0}) {
    BenchPoint point;
    point.system = System::Splitbft;
    point.workload = Workload::KvStore;
    point.clients = 40;
    point.batched = false;
    point.warmup_us = 150'000;
    point.measure_us = 400'000;
    point.profile.sgx.transition_us = transition;
    const BenchResult result = run_bench_point(point);
    std::printf("%14.1f %12.0f %11.2f\n", transition, result.ops_per_sec,
                result.mean_latency_ms);
    std::fflush(stdout);
  }

  std::printf("\nFor reference, PBFT (no enclaves) at the same load:\n");
  BenchPoint pbft;
  pbft.system = System::Pbft;
  pbft.workload = Workload::KvStore;
  pbft.clients = 40;
  pbft.batched = false;
  pbft.warmup_us = 150'000;
  pbft.measure_us = 400'000;
  const BenchResult base = run_bench_point(pbft);
  std::printf("%14s %12.0f %11.2f\n", "PBFT", base.ops_per_sec,
              base.mean_latency_ms);
  return 0;
}
