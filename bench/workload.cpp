// Scale-out workload benchmark — the first harness that drives the stacks
// with a realistic traffic shape instead of replaying paper figures.
//
// Closed-loop sweeps at N ∈ {100, 1000, 4000} concurrent clients against
// BOTH the PBFT baseline and the SplitBFT stack (virtual-time simulator,
// perf-modeled replicas, deterministic from the seed), a pipeline-depth
// comparison at 1000 clients, an open-loop point (latency measured from
// arrival — queueing under overload stays visible), and two wall-clock
// spot checks over the real ThreadNetwork runtime.
//
// Structural properties are hard-asserted (exit != 0):
//   * the 1000-client closed-loop run must SUSTAIN traffic on both stacks
//     (completions in every quarter of the measurement window);
//   * deterministic-sim runs must complete operations at every N.
// Throughput/latency numbers are trajectory-only. Emits machine-readable
// JSON to the first non-flag argument (default BENCH_workload.json).
//
//   --smoke   CI configuration: shorter windows, 4000-client point skipped.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/workload/sim_driver.hpp"
#include "runtime/workload/thread_driver.hpp"

using namespace sbft;
using namespace sbft::runtime;
using workload::LoadMode;
using workload::Options;
using workload::Report;
using workload::Stack;

namespace {

int failures = 0;

void expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

[[nodiscard]] pbft::Config protocol_config(std::size_t pipeline_depth) {
  pbft::Config config;
  config.n = 4;
  config.f = 1;
  config.batch_max = 200;
  config.batch_timeout_us = 10'000;
  config.checkpoint_interval = 50;
  config.watermark_window = 400;
  config.pipeline_depth = pipeline_depth;
  config.request_timeout_us = 2'000'000;  // saturation must not trigger VCs
  return config;
}

void print_row(const char* driver, const Options& options,
               const Report& report) {
  std::printf("%-7s %-9s %-7s %7u %5zu %12.0f %9.2f %9.2f %9.2f %9.2f  %s\n",
              driver, to_string(options.stack), to_string(options.mode),
              options.clients, options.protocol.pipeline_depth,
              report.ops_per_sec, report.mean_latency_ms,
              static_cast<double>(report.p50_us) / 1000.0,
              static_cast<double>(report.p95_us) / 1000.0,
              static_cast<double>(report.p99_us) / 1000.0,
              report.sustained ? "sustained" : "STALLED");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_workload.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (argv[i][0] != '-') {
      json_path = argv[i];
    }
  }

  const Micros warmup = smoke ? 100'000 : 150'000;
  const Micros measure = smoke ? 200'000 : 400'000;

  std::printf("workload engine — %s configuration\n",
              smoke ? "smoke" : "full");
  std::printf("%-7s %-9s %-7s %7s %5s %12s %9s %9s %9s %9s\n", "driver",
              "stack", "mode", "clients", "depth", "ops/s", "mean-ms",
              "p50-ms", "p95-ms", "p99-ms");

  std::vector<std::string> json_runs;
  const auto run_sim = [&](const Options& options) {
    const Report report = workload::run_sim_workload(options);
    print_row("sim", options, report);
    json_runs.push_back(workload::report_json(options, report));
    return report;
  };

  // ---- closed-loop client sweep, both stacks ---------------------------
  std::vector<std::uint32_t> sweep = {100, 1000};
  if (!smoke) sweep.push_back(4000);
  for (const Stack stack : {Stack::Pbft, Stack::Splitbft}) {
    for (const std::uint32_t clients : sweep) {
      Options options;
      options.stack = stack;
      options.mode = LoadMode::Closed;
      options.clients = clients;
      options.protocol = protocol_config(/*pipeline_depth=*/8);
      options.warmup_us = warmup;
      options.measure_us = measure;
      const Report report = run_sim(options);
      expect(report.completed_ops > 0, "sim sweep point must complete ops");
      if (clients == 1000) {
        // The acceptance bar: a 1000-client closed-loop run sustains
        // traffic across the whole measurement window on this stack.
        expect(report.sustained,
               "1000-client closed-loop run must sustain traffic");
      }
    }
  }

  // ---- pipeline-depth comparison at 1000 clients (PBFT) ----------------
  for (const std::size_t depth : {std::size_t{1}, std::size_t{8}}) {
    Options options;
    options.stack = Stack::Pbft;
    options.mode = LoadMode::Closed;
    options.clients = 1000;
    options.protocol = protocol_config(depth);
    options.warmup_us = warmup;
    options.measure_us = measure;
    const Report report = run_sim(options);
    expect(report.completed_ops > 0, "pipeline comparison must complete ops");
  }

  // ---- open-loop point: latency from arrival ---------------------------
  {
    Options options;
    options.stack = Stack::Pbft;
    options.mode = LoadMode::Open;
    options.clients = smoke ? 200 : 500;
    options.interarrival_us = 50'000;  // 20 req/s per client offered
    options.protocol = protocol_config(/*pipeline_depth=*/8);
    options.warmup_us = warmup;
    options.measure_us = measure;
    const Report report = run_sim(options);
    expect(report.completed_ops > 0, "open-loop point must complete ops");
  }

  // ---- wall-clock spot checks over the real ThreadNetwork --------------
  for (const Stack stack : {Stack::Pbft, Stack::Splitbft}) {
    Options options;
    options.stack = stack;
    options.mode = LoadMode::Closed;
    options.clients = smoke ? 100 : 200;
    // A touch of think time keeps the wall-clock run off the CPU redline
    // so the trajectory numbers are comparable between runners.
    options.think_time_us = 1'000;
    options.protocol = protocol_config(/*pipeline_depth=*/8);
    options.warmup_us = smoke ? 100'000 : 150'000;
    options.measure_us = smoke ? 200'000 : 400'000;
    const Report report = workload::run_thread_workload(options);
    print_row("thread", options, report);
    json_runs.push_back(workload::report_json(options, report));
    expect(report.completed_ops > 0,
           "thread-runtime spot check must complete ops");
  }

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"workload\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < json_runs.size(); ++i) {
    json << "    " << json_runs[i] << (i + 1 < json_runs.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n  \"structural_failures\": " << failures << "\n}\n";
  json.close();
  std::printf("wrote %s\n", json_path.c_str());

  return failures == 0 ? 0 : 1;
}
