// Streaming vs. monolithic state transfer under crash and Byzantine peers.
//
// A 4-replica PBFT cluster is filled with a large KV state (default 64 MiB,
// --smoke drops to 4 MiB), replica 3 is crashed past a stable checkpoint it
// missed and then restored, and the recovery is measured four ways:
//
//   monolithic          legacy single-envelope StateResponse baseline
//   streaming           chunked multi-peer fetch (Merkle-verified)
//   streaming_withhold  one serving peer answers the announce then stalls
//   streaming_forge     one serving peer corrupts chunk bytes (valid MAC)
//
// Hard-asserted (exit != 0):
//   * every scenario catches the replica up — including both faulty ones;
//   * streaming peak in-flight bytes stay under the configured budget and
//     well below the monolithic peak (the full snapshot in one buffer);
//   * the withholding peer forces refetches, the forging peer forces
//     Merkle rejections — and no forged byte is ever installed (agreement).
//
// Recovery times are trajectory-only. JSON: BENCH_state_transfer.json.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/kv_store.hpp"
#include "faults/state_transfer_faults.hpp"
#include "runtime/pbft_cluster.hpp"

using namespace sbft;
using namespace sbft::runtime;

namespace {

constexpr std::uint64_t kValueBytes = 64u << 10;

enum class Fault { None, Withhold, Forge };

struct Scenario {
  const char* name;
  bool streaming;
  Fault fault;
};

struct Result {
  bool caught_up{false};
  Micros recovery_us{0};
  std::uint64_t snapshot_bytes{0};
  std::uint64_t peak_transfer_bytes{0};
  bool agreement{false};
  std::uint64_t fault_events{0};  // withheld or forged responses
  pbft::StateTransferStats stats;
};

[[nodiscard]] bool put(PbftCluster& cluster, std::uint64_t key,
                       std::uint64_t salt) {
  // Distinct value bytes per key/round so snapshots cannot dedupe.
  Bytes value(kValueBytes);
  for (std::size_t i = 0; i < value.size(); ++i) {
    value[i] = static_cast<std::uint8_t>(key * 131 + salt + i);
  }
  return cluster
      .execute(kFirstClientId,
               apps::kv::encode_put(apps::kv::encode_key(key), value),
               60'000'000)
      .has_value();
}

Result run_recovery(const Scenario& scenario, std::uint64_t target_bytes,
                    std::uint64_t seed) {
  PbftClusterOptions options;
  options.seed = seed;
  options.config.batch_max = 1;
  options.config.checkpoint_interval = 32;
  options.config.streaming_state = scenario.streaming;
  options.config.state_chunk_bytes = 64u << 10;
  options.config.state_inflight_max_bytes = 1u << 20;
  options.config.state_chunk_timeout_us = 250'000;
  PbftCluster cluster(options, [] { return std::make_unique<apps::KvStore>(); });
  cluster.add_client(kFirstClientId);

  Result result;
  const std::uint64_t keys = target_bytes / kValueBytes;
  for (std::uint64_t k = 0; k < keys; ++k) {
    if (!put(cluster, k, 0)) return result;
  }

  // Crash, then advance past at least one checkpoint the victim missed.
  cluster.crash_replica(3);
  for (std::uint64_t i = 0; i < options.config.checkpoint_interval + 2; ++i) {
    if (!put(cluster, i % keys, 1)) return result;
  }

  cluster.restore_replica(3);
  // A faulty scenario turns replica 1 adversarial exactly when recovery
  // begins: it still runs the honest engine (the group stays live) but
  // sabotages the chunk responses it serves.
  std::shared_ptr<faults::ChunkWithholder> withholder;
  std::shared_ptr<faults::ChunkForger> forger;
  if (scenario.fault == Fault::Withhold) {
    withholder = std::make_shared<faults::ChunkWithholder>(
        cluster.replica_actor(1),
        faults::ChunkWithholder::Policy{/*serve_first=*/2,
                                        /*drip_interval_us=*/0});
    cluster.harness().replace_actor(principal::pbft_replica(1), withholder);
  } else if (scenario.fault == Fault::Forge) {
    forger = std::make_shared<faults::ChunkForger>(
        cluster.replica_actor(1),
        cluster.keyring().signer(principal::pbft_replica(1)));
    cluster.harness().replace_actor(principal::pbft_replica(1), forger);
  }
  const Micros t0 = cluster.harness().now();

  // Fresh traffic so the victim notices it is behind, then let the
  // transfer run: caught up = executed everything the group has.
  for (std::uint64_t i = 0; i < options.config.checkpoint_interval + 2; ++i) {
    if (!put(cluster, i % keys, 2)) return result;
  }
  result.caught_up = cluster.harness().run_until(
      [&] {
        return cluster.replica(3).last_executed() >=
               cluster.replica(0).last_executed();
      },
      /*max_sim_time=*/600'000'000);
  result.recovery_us = cluster.harness().now() - t0;
  result.snapshot_bytes = cluster.replica(0).app().snapshot().size();
  result.stats = cluster.replica(3).state_transfer_stats();
  result.peak_transfer_bytes = scenario.streaming
                                   ? result.stats.peak_inflight_bytes
                                   : result.snapshot_bytes;
  result.agreement = cluster.check_agreement();
  if (withholder) result.fault_events = withholder->withheld();
  if (forger) result.fault_events = forger->forged();
  return result;
}

void print_stats_json(std::FILE* f, const pbft::StateTransferStats& s) {
  std::fprintf(f,
               "{\"state_requests_sent\": %" PRIu64
               ", \"chunk_requests_sent\": %" PRIu64
               ", \"chunks_served\": %" PRIu64
               ", \"chunks_accepted\": %" PRIu64
               ", \"chunks_rejected\": %" PRIu64
               ", \"chunks_duplicate\": %" PRIu64
               ", \"refetches\": %" PRIu64
               ", \"chunk_bytes_received\": %" PRIu64
               ", \"peak_inflight_bytes\": %" PRIu64
               ", \"transfers_completed\": %" PRIu64 "}",
               s.state_requests_sent, s.chunk_requests_sent, s.chunks_served,
               s.chunks_accepted, s.chunks_rejected, s.chunks_duplicate,
               s.refetches, s.chunk_bytes_received, s.peak_inflight_bytes,
               s.transfers_completed);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::uint64_t target_bytes = 64u << 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      target_bytes = 4u << 20;
    } else if (std::strcmp(argv[i], "--bytes") == 0 && i + 1 < argc) {
      target_bytes = std::strtoull(argv[++i], nullptr, 10);
    }
  }

  const Scenario scenarios[] = {
      {"monolithic", false, Fault::None},
      {"streaming", true, Fault::None},
      {"streaming_withhold", true, Fault::Withhold},
      {"streaming_forge", true, Fault::Forge},
  };

  std::printf("state transfer recovery, %.1f MiB KV state\n",
              static_cast<double>(target_bytes) / (1u << 20));
  std::printf("%-20s %9s %12s %14s %10s %10s %10s\n", "scenario", "caught_up",
              "recovery_ms", "peak_xfer_KiB", "accepted", "rejected",
              "refetches");

  Result results[4];
  bool ok = true;
  for (int i = 0; i < 4; ++i) {
    results[i] = run_recovery(scenarios[i], target_bytes, 42 + i);
    const Result& r = results[i];
    std::printf("%-20s %9s %12.1f %14" PRIu64 " %10" PRIu64 " %10" PRIu64
                " %10" PRIu64 "\n",
                scenarios[i].name, r.caught_up ? "yes" : "NO",
                static_cast<double>(r.recovery_us) / 1000.0,
                r.peak_transfer_bytes >> 10, r.stats.chunks_accepted,
                r.stats.chunks_rejected, r.stats.refetches);
    if (!r.caught_up || !r.agreement) {
      std::printf("FAIL: %s did not recover with agreement\n",
                  scenarios[i].name);
      ok = false;
    }
  }

  const Result& mono = results[0];
  const Result& stream = results[1];
  const Result& withhold = results[2];
  const Result& forge = results[3];
  if (stream.caught_up) {
    if (stream.stats.transfers_completed == 0) {
      std::printf("FAIL: streaming recovery made no chunked transfer\n");
      ok = false;
    }
    // The headline claim: chunked recovery never materializes the snapshot.
    // Peak un-applied+in-flight bytes stay within the configured budget,
    // which is a small fraction of the monolithic peak (the whole
    // snapshot buffered in one envelope).
    if (stream.peak_transfer_bytes * 4 >= mono.peak_transfer_bytes) {
      std::printf("FAIL: streaming peak %" PRIu64
                  " not well under monolithic peak %" PRIu64 "\n",
                  stream.peak_transfer_bytes, mono.peak_transfer_bytes);
      ok = false;
    }
  }
  if (withhold.caught_up && withhold.stats.refetches == 0) {
    std::printf("FAIL: withholding peer forced no refetch\n");
    ok = false;
  }
  if (forge.caught_up && forge.stats.chunks_rejected == 0) {
    std::printf("FAIL: forging peer forced no chunk rejection\n");
    ok = false;
  }

  std::FILE* f = std::fopen("BENCH_state_transfer.json", "w");
  if (f) {
    std::fprintf(f,
                 "{\"bench\": \"state_transfer\", \"smoke\": %s, "
                 "\"target_bytes\": %" PRIu64 ", \"value_bytes\": %" PRIu64
                 ", \"chunk_bytes\": %u, \"scenarios\": [",
                 smoke ? "true" : "false", target_bytes, kValueBytes,
                 64u << 10);
    for (int i = 0; i < 4; ++i) {
      const Result& r = results[i];
      std::fprintf(f,
                   "%s{\"name\": \"%s\", \"caught_up\": %s, \"agreement\": "
                   "%s, \"recovery_us\": %" PRIu64
                   ", \"snapshot_bytes\": %" PRIu64
                   ", \"peak_transfer_bytes\": %" PRIu64
                   ", \"fault_events\": %" PRIu64 ", \"stats\": ",
                   i ? ", " : "", scenarios[i].name,
                   r.caught_up ? "true" : "false",
                   r.agreement ? "true" : "false", r.recovery_us,
                   r.snapshot_bytes, r.peak_transfer_bytes, r.fault_events);
      print_stats_json(f, r.stats);
      std::fprintf(f, "}");
    }
    std::fprintf(f, "], \"pass\": %s}\n", ok ? "true" : "false");
    std::fclose(f);
  }

  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
