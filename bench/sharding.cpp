// Sharded keyspace benchmark — multi-group scale-out and 2PC overhead.
//
// Sweep: shards {1, 2, 4} x cross-shard fraction {0, 0.01, 0.1} at 1000
// closed-loop clients on BOTH stacks (virtual-time simulator, perf-modeled
// replicas, deterministic from the seed). `shards == 1` runs the same
// router code path, so the shard-count comparison is like-for-like; every
// cross > 0 run ends with the torn-write audit (load drains, a verifier
// reads every multi-op key group back through the protocol).
//
// Structural properties are hard-asserted (exit != 0):
//   * 4-shard throughput >= 2x 1-shard at cross=0 on both stacks — the
//     scale-out acceptance bar;
//   * every cross > 0 run checks > 0 groups and finds ZERO torn groups;
//   * every run completes operations; cross=0 runs sustain traffic;
//   * cross-shard runs actually commit distributed transactions;
//   * atomicity under faults, replayed as deterministic sim scenarios:
//     a coordinator crash before its commit decision (timeout-abort), a
//     coordinator crash after the decision is ordered (commit replay via
//     the termination protocol), and a Byzantine participant forging
//     prepare-ok votes with valid client MACs (outvoted by the f+1 rule).
// Absolute numbers are trajectory-only. Emits machine-readable JSON to the
// first non-flag argument (default BENCH_sharding.json).
//
//   --smoke   CI configuration: PBFT only, shards {1,4}, cross {0, 0.1},
//             shorter windows.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "faults/shard_attack.hpp"
#include "runtime/sharded_cluster.hpp"
#include "runtime/workload/sharded_driver.hpp"

using namespace sbft;
using namespace sbft::runtime;
using workload::LoadMode;
using workload::Options;
using workload::Report;
using workload::Stack;

namespace {

namespace kv = apps::kv;
using apps::KvOp;
using apps::KvStatus;

int failures = 0;

void expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

[[nodiscard]] pbft::Config protocol_config() {
  pbft::Config config;
  config.n = 4;
  config.f = 1;
  // Small batches + a tight timeout: batch-fill wait would otherwise
  // scale inversely with per-shard client count and mask the scale-out
  // (4 shards see 250 clients each, not 1000).
  config.batch_max = 100;
  config.batch_timeout_us = 2'000;
  config.checkpoint_interval = 50;
  config.watermark_window = 400;
  config.pipeline_depth = 8;
  config.request_timeout_us = 2'000'000;  // saturation must not trigger VCs
  return config;
}

void print_row(const Options& options, const Report& report) {
  std::printf(
      "%-9s %3u %5.2f %12.0f %9.2f %9.2f %8llu %8llu %8llu %6llu/%llu  %s\n",
      to_string(options.stack), options.shards, options.cross_shard_fraction,
      report.ops_per_sec, report.mean_latency_ms,
      static_cast<double>(report.p99_us) / 1000.0,
      static_cast<unsigned long long>(report.sharding.cross_shard_tx),
      static_cast<unsigned long long>(report.sharding.tx_commits),
      static_cast<unsigned long long>(report.sharding.tx_aborts),
      static_cast<unsigned long long>(report.sharding.torn_groups),
      static_cast<unsigned long long>(report.sharding.groups_checked),
      report.sustained ? "sustained" : "STALLED");
  std::fflush(stdout);
}

// --------------------------------------------------- fault scenarios
//
// Deterministic single-transaction replays of the coordinator-crash and
// Byzantine-participant cases on a 2-shard sim cluster: the sweep above
// proves atomicity under load, these prove it at exact protocol points.

[[nodiscard]] Bytes val(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

/// i-th distinct key (by search order) living on `target` of `shards`.
[[nodiscard]] Bytes key_on_shard(std::uint32_t shards, std::uint32_t target,
                                 std::uint64_t skip = 0) {
  for (std::uint64_t i = 0;; ++i) {
    Bytes k = kv::encode_key(i);
    if (kv::shard_of(k, shards) != target) continue;
    if (skip == 0) return k;
    --skip;
  }
}

[[nodiscard]] kv::MultiOp multi_put(std::vector<Bytes> keys,
                                    const Bytes& value) {
  kv::MultiOp multi;
  for (auto& k : keys) {
    multi.subs.push_back(kv::SubOp{KvOp::Put, std::move(k), {}, value});
  }
  return multi;
}

[[nodiscard]] std::optional<KvStatus> status_of(
    const std::optional<Bytes>& result) {
  if (!result) return std::nullopt;
  const auto reply = kv::decode_reply(*result);
  if (!reply) return std::nullopt;
  return reply->status;
}

/// Whole-group value agreement: both keys must read back `want` (the
/// sharded torn-write criterion, applied to one known group).
[[nodiscard]] bool reads_back(ShardedPbftCluster& cluster, ClientId id,
                              const Bytes& key, const Bytes& want) {
  const auto got = cluster.get(id, key);
  return got.has_value() && got->status == KvStatus::Ok && got->value == want;
}

constexpr ClientId kClientA = kFirstClientId;
constexpr ClientId kClientB = kFirstClientId + 1;

/// Coordinator dies with its prepares ordered but no decision: the home
/// lease must presume-abort and a contending client's termination
/// protocol must unwind every lock — no key of the dead transaction's
/// write set may survive anywhere.
[[nodiscard]] bool coordinator_crash_before_decision() {
  ShardedClusterOptions options;
  options.shards = 2;
  options.seed = 16;
  options.router.tx_expiry_ops = 3;
  options.router.busy_retries = 8;
  ShardedPbftCluster cluster(options);
  cluster.add_client(kClientA);
  cluster.add_client(kClientB);

  const Bytes k0 = key_on_shard(2, 0);
  const Bytes k1 = key_on_shard(2, 1);
  const Bytes k2 = key_on_shard(2, 1, 1);  // only in A's write set

  cluster.submit(kClientA,
                 kv::encode_multi(multi_put({k0, k1, k2}, val("AAAA"))));
  cluster.crash_client(kClientA);
  cluster.run_for(5'000'000);

  bool committed = false;
  for (int i = 0; i < 20 && !committed; ++i) {
    committed = status_of(cluster.execute(
                    kClientB,
                    kv::encode_multi(multi_put({k0, k1}, val("BBBB"))))) ==
                KvStatus::TxCommitted;
  }
  if (!committed) return false;
  const auto got2 = cluster.get(kClientB, k2);
  return reads_back(cluster, kClientB, k0, val("BBBB")) &&
         reads_back(cluster, kClientB, k1, val("BBBB")) &&
         got2.has_value() && got2->status == KvStatus::NotFound &&
         cluster.check_agreement();
}

/// Coordinator dies right after TxCommit is ordered at home (the commit
/// point): a blocked client must replay the durable decision at the
/// other participant — the transaction completes, not unwinds.
[[nodiscard]] bool coordinator_crash_after_decision() {
  using PbftPhase = shard::Router<pbft::Client>::Phase;
  ShardedClusterOptions options;
  options.shards = 2;
  options.seed = 17;
  options.router.busy_retries = 8;
  ShardedPbftCluster cluster(options);
  auto& router_a = cluster.add_client(kClientA);
  auto& router_b = cluster.add_client(kClientB);

  const Bytes kh = key_on_shard(2, 0);
  const Bytes k1 = key_on_shard(2, 1);
  const Bytes k2 = key_on_shard(2, 1, 1);

  cluster.submit(kClientA,
                 kv::encode_multi(multi_put({kh, k1, k2}, val("AAAA"))));
  if (!cluster.run_until(
          [&] { return router_a.phase() == PbftPhase::DecideHome; },
          10'000'000)) {
    return false;
  }
  cluster.crash_client(kClientA);
  cluster.run_for(10'000'000);

  bool committed = false;
  for (int i = 0; i < 20 && !committed; ++i) {
    committed = status_of(cluster.execute(kClientB,
                                          kv::encode_put(k1, val("BBBB")))) ==
                KvStatus::Ok;
  }
  return committed && router_b.stats().blocker_commit_replays >= 1 &&
         reads_back(cluster, kClientB, kh, val("AAAA")) &&
         reads_back(cluster, kClientB, k2, val("AAAA")) &&
         reads_back(cluster, kClientB, k1, val("BBBB")) &&
         cluster.check_agreement();
}

/// One participant replica forges every failed vote into prepare-ok
/// (valid client MAC): the per-shard f+1 matching-reply quorum must keep
/// the honest CasMismatch outcome, and honest commits must still work.
[[nodiscard]] bool byzantine_participant_outvoted() {
  ShardedClusterOptions options;
  options.shards = 2;
  options.seed = 18;
  ShardedPbftCluster cluster(options);
  cluster.add_client(kClientA);

  auto& group = cluster.group(1);
  auto forger = std::make_shared<faults::KvReplyForger>(
      group.replica_actor(3), group.directory());
  group.harness().replace_actor(principal::pbft_replica(3), forger);

  const Bytes k0 = key_on_shard(2, 0);
  const Bytes k1 = key_on_shard(2, 1);
  if (cluster.put(kClientA, k1, val("actual")) != KvStatus::Ok) return false;

  kv::MultiOp multi;
  multi.subs.push_back(kv::SubOp{KvOp::Put, k0, {}, val("torn?")});
  multi.subs.push_back(kv::SubOp{KvOp::Cas, k1, val("stale"), val("new")});
  if (status_of(cluster.execute(kClientA, kv::encode_multi(multi))) !=
      KvStatus::CasMismatch) {
    return false;
  }
  const auto got0 = cluster.get(kClientA, k0);
  const bool no_torn_write =
      got0.has_value() && got0->status == KvStatus::NotFound;

  return forger->forged() > 0 && no_torn_write &&
         status_of(cluster.execute(
             kClientA, kv::encode_multi(multi_put({k0, k1}, val("ok"))))) ==
             KvStatus::TxCommitted &&
         cluster.check_agreement();
}

struct FaultScenario {
  const char* name;
  bool (*run)();
  bool passed{false};
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sharding.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (argv[i][0] != '-') {
      json_path = argv[i];
    }
  }

  const Micros warmup = smoke ? 100'000 : 150'000;
  const Micros measure = smoke ? 200'000 : 400'000;
  const std::vector<Stack> stacks =
      smoke ? std::vector<Stack>{Stack::Pbft}
            : std::vector<Stack>{Stack::Pbft, Stack::Splitbft};
  const std::vector<std::uint32_t> shard_counts =
      smoke ? std::vector<std::uint32_t>{1, 4}
            : std::vector<std::uint32_t>{1, 2, 4};
  const std::vector<double> cross_fractions =
      smoke ? std::vector<double>{0.0, 0.1}
            : std::vector<double>{0.0, 0.01, 0.1};

  std::printf("sharding — %s configuration, 1000 closed-loop clients\n",
              smoke ? "smoke" : "full");
  std::printf("%-9s %3s %5s %12s %9s %9s %8s %8s %8s %8s\n", "stack", "sh",
              "cross", "ops/s", "mean-ms", "p99-ms", "xtx", "commits",
              "aborts", "torn");

  std::vector<std::string> json_runs;
  // (stack, shards, cross*100) -> ops/s
  std::map<std::tuple<int, std::uint32_t, int>, double> ops;

  for (const Stack stack : stacks) {
    for (const std::uint32_t shards : shard_counts) {
      for (const double cross : cross_fractions) {
        Options options;
        options.stack = stack;
        options.mode = LoadMode::Closed;
        options.clients = 1000;
        options.shards = shards;
        options.cross_shard_fraction = cross;
        options.multi_keys = 2;
        options.multi_groups = smoke ? 64 : 256;
        // Fat values push one group deep into saturation (per-KiB
        // hash/serde/AEAD perf-model costs dominate): the sweep then
        // measures group capacity, not the closed-loop latency floor.
        options.value_min_bytes = 4096;
        options.value_max_bytes = 4096;
        options.protocol = protocol_config();
        options.warmup_us = warmup;
        options.measure_us = measure;
        const Report report = workload::run_sharded_sim_workload(options);
        print_row(options, report);
        json_runs.push_back(workload::report_json(options, report));
        ops[{static_cast<int>(stack), shards,
             static_cast<int>(cross * 100)}] = report.ops_per_sec;

        expect(report.completed_ops > 0, "every run must complete ops");
        if (cross == 0.0) {
          expect(report.sustained, "cross=0 runs must sustain traffic");
          expect(report.sharding.cross_shard_tx == 0,
                 "cross=0 must drive no distributed transactions");
        } else {
          expect(report.sharding.groups_checked > 0,
                 "the torn-write audit must check groups");
          expect(report.sharding.torn_groups == 0,
                 "no multi-op group may read back torn");
          if (shards > 1) {
            expect(report.sharding.cross_shard_tx > 0,
                   "cross>0 on >1 shard must drive distributed txs");
            expect(report.sharding.tx_commits > 0,
                   "distributed transactions must commit under load");
          } else {
            expect(report.sharding.single_shard_multi > 0,
                   "1-shard multis must bypass 2PC");
          }
        }
      }
    }
  }

  // The acceptance bar: 4 independent groups must scale the disjoint
  // workload by at least 2x over one group, same driver, same clients.
  double speedup_pbft = 0;
  double speedup_split = 0;
  for (const Stack stack : stacks) {
    const double one = ops[{static_cast<int>(stack), 1, 0}];
    const double four = ops[{static_cast<int>(stack), 4, 0}];
    const double speedup = one > 0 ? four / one : 0;
    (stack == Stack::Pbft ? speedup_pbft : speedup_split) = speedup;
    std::printf("%s 4-shard vs 1-shard speedup at cross=0: %.2fx\n",
                workload::to_string(stack), speedup);
    expect(speedup >= 2.0,
           "4 shards must deliver >= 2x the 1-shard throughput at cross=0");
  }

  // Fault replays: atomicity at exact protocol points.
  FaultScenario scenarios[] = {
      {"coordinator_crash_before_decision", coordinator_crash_before_decision},
      {"coordinator_crash_after_decision", coordinator_crash_after_decision},
      {"byzantine_participant_outvoted", byzantine_participant_outvoted},
  };
  for (auto& scenario : scenarios) {
    scenario.passed = scenario.run();
    std::printf("fault scenario %-36s %s\n", scenario.name,
                scenario.passed ? "ok" : "FAILED");
    expect(scenario.passed, scenario.name);
  }

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"sharding\",\n  \"smoke\": "
       << (smoke ? "true" : "false")
       << ",\n  \"speedup_4shard_pbft\": " << speedup_pbft
       << ",\n  \"speedup_4shard_splitbft\": " << speedup_split
       << ",\n  \"fault_scenarios\": {";
  for (std::size_t i = 0; i < std::size(scenarios); ++i) {
    json << (i ? ", " : "") << "\"" << scenarios[i].name
         << "\": " << (scenarios[i].passed ? "true" : "false");
  }
  json << "},\n  \"runs\": [\n";
  for (std::size_t i = 0; i < json_runs.size(); ++i) {
    json << "    " << json_runs[i] << (i + 1 < json_runs.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n  \"structural_failures\": " << failures << "\n}\n";
  json.close();
  std::printf("wrote %s\n", json_path.c_str());

  return failures == 0 ? 0 : 1;
}
