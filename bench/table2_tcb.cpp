// Table 2 — TCB size per enclave: lines of code shared by all enclaves
// (message/type definitions), per-compartment logic, and the untrusted
// environment, plus the hybrid trusted counter for comparison.
//
// Counts this repository's sources the same way the paper counts its Rust
// crates with tokei (non-blank, non-comment-only lines), and prints the
// paper's numbers alongside.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Count {
  std::size_t lines{0};
  std::size_t files{0};
};

[[nodiscard]] bool is_code_line(const std::string& line) {
  for (const char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    // Treat pure comment lines like tokei does (approximation: leading //).
    if (c == '/') return line.find("//") != line.find_first_not_of(" \t");
    return true;
  }
  return false;
}

[[nodiscard]] Count count_files(const std::vector<std::string>& paths) {
  Count total;
  const fs::path root = SPLITBFT_SOURCE_DIR;
  for (const auto& rel : paths) {
    const fs::path path = root / rel;
    std::ifstream in(path);
    if (!in) continue;
    total.files += 1;
    std::string line;
    while (std::getline(in, line)) {
      if (is_code_line(line)) total.lines += 1;
    }
  }
  return total;
}

void row(const char* component, Count shared, Count logic, int paper_shared,
         int paper_logic) {
  const std::size_t total = shared.lines + logic.lines;
  std::printf("%-22s %8zu %8zu %8zu   (paper: %5d %6d %6d)\n", component,
              shared.lines, logic.lines, total, paper_shared, paper_logic,
              paper_shared + paper_logic);
}

}  // namespace

int main() {
  // Types/messages shared by all three enclaves (the paper's "Shared types"
  // column: 2430 LOC per enclave).
  const std::vector<std::string> shared_sources = {
      "src/pbft/messages.hpp",        "src/pbft/messages.cpp",
      "src/splitbft/messages.hpp",    "src/splitbft/messages.cpp",
      "src/splitbft/compartment.hpp", "src/splitbft/compartment.cpp",
      "src/common/types.hpp",         "src/common/bytes.hpp",
      "src/common/serde.hpp",
  };
  const Count shared = count_files(shared_sources);

  const Count prep = count_files({"src/splitbft/prep_compartment.hpp",
                                  "src/splitbft/prep_compartment.cpp"});
  const Count conf = count_files({"src/splitbft/conf_compartment.hpp",
                                  "src/splitbft/conf_compartment.cpp"});
  const Count exec = count_files({"src/splitbft/exec_compartment.hpp",
                                  "src/splitbft/exec_compartment.cpp",
                                  "src/apps/kv_store.hpp",
                                  "src/apps/kv_store.cpp"});
  const Count untrusted = count_files({
      "src/splitbft/broker.hpp",
      "src/splitbft/broker.cpp",
      "src/splitbft/replica.hpp",
      "src/splitbft/replica.cpp",
      "src/net/message.hpp",
      "src/net/message.cpp",
      "src/net/thread_net.hpp",
      "src/net/thread_net.cpp",
      "src/net/transport.hpp",
      "src/runtime/sim_harness.hpp",
      "src/runtime/sim_harness.cpp",
  });
  const Count counter = count_files(
      {"src/hybrid/usig.hpp", "src/hybrid/usig.cpp",
       "src/tee/monotonic_counter.hpp", "src/tee/monotonic_counter.cpp"});

  std::printf("Table 2 — TCB sizes (lines of code, this reproduction vs "
              "paper's Rust implementation)\n\n");
  std::printf("%-22s %8s %8s %8s\n", "component", "shared", "logic", "total");
  std::printf("%s\n", std::string(88, '-').c_str());
  row("Preparation enclave", shared, prep, 2430, 487);
  row("Confirmation enclave", shared, conf, 2430, 458);
  row("Execution enclave", shared, exec, 2430, 579);
  std::printf("%-22s %8s %8zu %8zu   (paper: %5s %6d %6d)\n",
              "Untrusted environment", "-", untrusted.lines, untrusted.lines,
              "-", 12565, 12565);
  std::printf("%-22s %8s %8zu %8zu   (paper: %5s %6d %6d)\n",
              "Trusted counter", "-", counter.lines, counter.lines, "-", 439,
              439);
  std::printf(
      "\nThe structural claim reproduced: each enclave's unique logic is a "
      "small fraction\nof the codebase; the untrusted environment dwarfs any "
      "single compartment, and the\ncompartments hold only hundreds of "
      "lines each — the diversification unit the\npaper argues for.\n");
  return 0;
}
