// Simulated unreliable network (paper §2.1: messages may be dropped,
// reordered and delayed, but not indefinitely).
//
// Built on the deterministic scheduler. Supports per-link parameters,
// partitions, and an interceptor hook powerful enough to express a byzantine
// network-level adversary (selective delivery, duplication, reordering —
// but NOT forging: signatures are checked by receivers).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "net/transport.hpp"
#include "sim/scheduler.hpp"

namespace sbft::sim {

struct LinkParams {
  double drop_prob{0.0};
  double duplicate_prob{0.0};
  Micros min_delay_us{80};
  Micros max_delay_us{200};
};

class SimNetwork final : public net::Transport {
 public:
  /// An interceptor sees each send and returns the deliveries to perform
  /// as (envelope, extra-delay) pairs. Returning an empty vector drops the
  /// message. nullopt = "no opinion, apply normal link behaviour".
  using Interceptor = std::function<std::optional<
      std::vector<std::pair<net::Envelope, Micros>>>(const net::Envelope&)>;

  SimNetwork(Scheduler& scheduler, Rng rng, LinkParams defaults = {});

  void send(net::Envelope env) override;
  void register_endpoint(principal::Id id, net::DeliveryFn handler) override;

  /// Overrides parameters for a specific (src, dst) pair.
  void set_link(principal::Id src, principal::Id dst, LinkParams params);

  /// Drops all traffic between different groups. Endpoints not listed are
  /// unrestricted.
  void set_partition(std::vector<std::set<principal::Id>> groups);
  void heal_partition();

  /// Installs an adversarial interceptor (nullptr to remove).
  void set_interceptor(Interceptor interceptor);

  /// Delivery statistics (dropped counts messages killed by link faults,
  /// partitions or interceptors).
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  void deliver_after(net::Envelope env, Micros delay);
  [[nodiscard]] bool crosses_partition(principal::Id a, principal::Id b) const;
  [[nodiscard]] const LinkParams& params_for(principal::Id src,
                                             principal::Id dst) const;

  Scheduler& scheduler_;
  Rng rng_;
  LinkParams defaults_;
  // Handlers are held behind shared_ptr so a scheduled delivery captures a
  // refcount bump, not a deep copy of the std::function (one per delivered
  // message otherwise). In-flight messages keep the handler that was
  // registered when they were sent — re-registration (crash/restore) only
  // affects later sends, exactly as before.
  std::unordered_map<principal::Id, std::shared_ptr<net::DeliveryFn>>
      endpoints_;
  std::map<std::pair<principal::Id, principal::Id>, LinkParams> links_;
  std::vector<std::set<principal::Id>> partition_;
  Interceptor interceptor_;
  std::uint64_t delivered_{0};
  std::uint64_t dropped_{0};
};

}  // namespace sbft::sim
