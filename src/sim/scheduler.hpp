// Deterministic discrete-event scheduler.
//
// All correctness tests run protocol clusters on this scheduler: given the
// same seed, every message delivery, timer expiry and fault fires in the
// same order, so failing schedules replay exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.hpp"

namespace sbft::sim {

class Scheduler {
 public:
  using Action = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Schedules `action` at absolute time `t` (clamped to now).
  void at(Micros t, Action action);

  /// Schedules `action` `delay` microseconds from now.
  void after(Micros delay, Action action) { at(now_ + delay, std::move(action)); }

  [[nodiscard]] Micros now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Runs the next event; false if none pending.
  bool step();

  /// Runs events until the queue empties or `max_events` executed.
  /// Returns the number of events run.
  std::size_t run(std::size_t max_events = 10'000'000);

  /// Runs events with time <= deadline.
  std::size_t run_until(Micros deadline);

 private:
  struct Event {
    Micros time;
    std::uint64_t seq;  // FIFO tie-break for same-time events
    Action action;
  };
  struct Later {
    [[nodiscard]] bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Micros now_{0};
  std::uint64_t next_seq_{0};
};

}  // namespace sbft::sim
