#include "sim/sim_network.hpp"

namespace sbft::sim {

SimNetwork::SimNetwork(Scheduler& scheduler, Rng rng, LinkParams defaults)
    : scheduler_(scheduler), rng_(std::move(rng)), defaults_(defaults) {}

void SimNetwork::register_endpoint(principal::Id id, net::DeliveryFn handler) {
  endpoints_[id] = std::make_shared<net::DeliveryFn>(std::move(handler));
}

void SimNetwork::set_link(principal::Id src, principal::Id dst,
                          LinkParams params) {
  links_[{src, dst}] = params;
}

void SimNetwork::set_partition(std::vector<std::set<principal::Id>> groups) {
  partition_ = std::move(groups);
}

void SimNetwork::heal_partition() { partition_.clear(); }

void SimNetwork::set_interceptor(Interceptor interceptor) {
  interceptor_ = std::move(interceptor);
}

bool SimNetwork::crosses_partition(principal::Id a, principal::Id b) const {
  if (partition_.empty()) return false;
  int group_a = -1;
  int group_b = -1;
  for (std::size_t g = 0; g < partition_.size(); ++g) {
    if (partition_[g].contains(a)) group_a = static_cast<int>(g);
    if (partition_[g].contains(b)) group_b = static_cast<int>(g);
  }
  // Unlisted endpoints communicate freely.
  if (group_a < 0 || group_b < 0) return false;
  return group_a != group_b;
}

const LinkParams& SimNetwork::params_for(principal::Id src,
                                         principal::Id dst) const {
  const auto it = links_.find({src, dst});
  return it == links_.end() ? defaults_ : it->second;
}

void SimNetwork::deliver_after(net::Envelope env, Micros delay) {
  const auto it = endpoints_.find(env.dst);
  if (it == endpoints_.end()) {
    ++dropped_;
    return;
  }
  // Capturing the shared_ptr (refcount bump) instead of the std::function
  // (deep copy) makes a scheduled delivery O(1) regardless of handler size;
  // the envelope itself is frame-backed, so the capture copies no payload.
  std::shared_ptr<net::DeliveryFn> handler = it->second;
  scheduler_.after(delay,
                   [this, handler = std::move(handler),
                    env = std::move(env)]() mutable {
                     ++delivered_;
                     (*handler)(std::move(env));
                   });
}

void SimNetwork::send(net::Envelope env) {
  if (interceptor_) {
    if (auto plan = interceptor_(env)) {
      if (plan->empty()) ++dropped_;
      for (auto& [e, extra] : *plan) {
        const LinkParams& p = params_for(e.src, e.dst);
        const Micros jitter =
            p.min_delay_us +
            rng_.below(p.max_delay_us - p.min_delay_us + 1);
        deliver_after(std::move(e), jitter + extra);
      }
      return;
    }
  }

  if (crosses_partition(env.src, env.dst)) {
    ++dropped_;
    return;
  }

  const LinkParams& p = params_for(env.src, env.dst);
  if (p.drop_prob > 0 && rng_.chance(p.drop_prob)) {
    ++dropped_;
    return;
  }
  const bool duplicate = p.duplicate_prob > 0 && rng_.chance(p.duplicate_prob);
  const Micros jitter =
      p.min_delay_us + rng_.below(p.max_delay_us - p.min_delay_us + 1);
  if (duplicate) {
    const Micros jitter2 =
        p.min_delay_us + rng_.below(p.max_delay_us - p.min_delay_us + 1);
    deliver_after(env, jitter2);
  }
  deliver_after(std::move(env), jitter);
}

}  // namespace sbft::sim
