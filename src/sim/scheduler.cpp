#include "sim/scheduler.hpp"

#include <utility>

namespace sbft::sim {

void Scheduler::at(Micros t, Action action) {
  queue_.push(Event{t < now_ ? now_ : t, next_seq_++, std::move(action)});
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the action must be moved out before
  // pop, so copy the metadata and steal the closure.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.time;
  event.action();
  return true;
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

std::size_t Scheduler::run_until(Micros deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    (void)step();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

}  // namespace sbft::sim
