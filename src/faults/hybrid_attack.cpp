#include "faults/hybrid_attack.hpp"

#include "crypto/hmac.hpp"

namespace sbft::faults {

std::vector<net::Envelope> HybridUsigAttack::handle(const net::Envelope& env,
                                                    Micros) {
  if (launched_ || env.type != pbft::tag(pbft::MsgType::Request)) return {};
  auto req = pbft::Request::deserialize(env.payload);
  if (!req) return {};
  launched_ = true;

  // Proposal A: the client's real request. Proposal B: a forged request
  // from the same client (replicas hold client MAC keys, so the forgery
  // authenticates — PBFT's original MAC-vector scheme has the same
  // property).
  pbft::Request forged;
  forged.client = req->client;
  forged.timestamp = req->timestamp;
  forged.payload = to_bytes("attacker-op");
  const crypto::Key32 key = directory_.auth_key(forged.client);
  const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                         forged.auth_input());
  forged.auth = Bytes(mac.bytes.begin(), mac.bytes.end());

  // The compromised TEE signs counter value 1 TWICE.
  hybrid::HybridPrepare prep_a;
  prep_a.view = 0;
  prep_a.request = std::move(*req);
  prep_a.sender = primary_id_;
  prep_a.ui = usig_->forge(prep_a.ui_digest(), 1);

  hybrid::HybridPrepare prep_b;
  prep_b.view = 0;
  prep_b.request = std::move(forged);
  prep_b.sender = primary_id_;
  prep_b.ui = usig_->forge(prep_b.ui_digest(), 1);

  std::vector<net::Envelope> out;
  std::vector<ReplicaId> backups;
  for (ReplicaId r = 0; r < config_.n; ++r) {
    if (r != primary_id_) backups.push_back(r);
  }
  for (std::size_t i = 0; i < backups.size(); ++i) {
    const auto& prep = (i % 2 == 0) ? prep_a : prep_b;
    net::Envelope msg;
    msg.src = principal::hybrid_replica(primary_id_);
    msg.dst = principal::hybrid_replica(backups[i]);
    msg.type = hybrid::tag(hybrid::HybridMsg::Prepare);
    msg.payload = prep.serialize();
    out.push_back(std::move(msg));
  }
  return out;
}

}  // namespace sbft::faults
