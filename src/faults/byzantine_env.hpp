// Byzantine environment (compromised replica host).
//
// Wraps a replica actor and gives the adversary full control over the
// untrusted side: drop, delay, reorder, selectively deliver, duplicate and
// observe every byte entering or leaving the machine. It cannot forge
// enclave messages (no enclave keys) — exactly the paper's model where an
// attacker is present on all n hosts but the enclaves stay intact.
#pragma once

#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "runtime/actor.hpp"

namespace sbft::faults {

struct EnvPolicy {
  /// Random drop probabilities for inbound/outbound envelopes.
  double drop_inbound{0.0};
  double drop_outbound{0.0};
  /// Selective delivery: returning true kills the envelope.
  std::function<bool(const net::Envelope&)> drop_inbound_if{};
  std::function<bool(const net::Envelope&)> drop_outbound_if{};
  /// Duplicate every surviving outbound envelope.
  bool duplicate_outbound{false};
  /// Record every byte seen (confidentiality checker input).
  bool record_observed{true};
};

class ByzantineEnv final : public runtime::Actor {
 public:
  ByzantineEnv(std::shared_ptr<runtime::Actor> inner, EnvPolicy policy,
               std::uint64_t seed)
      : inner_(std::move(inner)), policy_(std::move(policy)), rng_(seed) {}

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override {
    observe(env);
    if (should_drop(env, policy_.drop_inbound, policy_.drop_inbound_if)) {
      ++dropped_inbound_;
      return {};
    }
    return filter_out(inner_->handle(env, now));
  }

  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override {
    return filter_out(inner_->tick(now));
  }

  /// Every envelope wire frame this host observed (in either direction).
  /// Stored as SharedBytes: recording an observation bumps a refcount on
  /// the message's memoized wire image instead of copying the bytes.
  [[nodiscard]] const std::vector<SharedBytes>& observed() const noexcept {
    return observed_;
  }
  [[nodiscard]] std::uint64_t dropped_inbound() const noexcept {
    return dropped_inbound_;
  }
  [[nodiscard]] std::uint64_t dropped_outbound() const noexcept {
    return dropped_outbound_;
  }

 private:
  void observe(const net::Envelope& env) {
    if (policy_.record_observed) observed_.push_back(env.wire());
  }

  [[nodiscard]] bool should_drop(
      const net::Envelope& env, double prob,
      const std::function<bool(const net::Envelope&)>& pred) {
    if (pred && pred(env)) return true;
    return prob > 0 && rng_.chance(prob);
  }

  [[nodiscard]] std::vector<net::Envelope> filter_out(
      std::vector<net::Envelope> outputs) {
    std::vector<net::Envelope> kept;
    kept.reserve(outputs.size());
    for (auto& env : outputs) {
      observe(env);
      if (should_drop(env, policy_.drop_outbound, policy_.drop_outbound_if)) {
        ++dropped_outbound_;
        continue;
      }
      if (policy_.duplicate_outbound) kept.push_back(env);
      kept.push_back(std::move(env));
    }
    return kept;
  }

  std::shared_ptr<runtime::Actor> inner_;
  EnvPolicy policy_;
  Rng rng_;
  std::vector<SharedBytes> observed_;
  std::uint64_t dropped_inbound_{0};
  std::uint64_t dropped_outbound_{0};
};

}  // namespace sbft::faults
