// Byzantine compartment wrappers (compromised enclaves).
//
// Each wrapper models an exploited enclave of one compartment type: it
// holds the enclave's signing key and may emit arbitrary validly-signed
// messages, stay silent, or corrupt its outputs. SplitBFT must keep safety
// with up to f faulty enclaves of EACH type (paper Table 1).
#pragma once

#include <memory>

#include "crypto/sha256.hpp"
#include "pbft/client_directory.hpp"
#include "pbft/config.hpp"
#include "splitbft/compartment.hpp"

namespace sbft::faults {

/// Unresponsive enclave: processes inputs (state advances) but emits
/// nothing. Indistinguishable from a crash to the rest of the system.
class SilentCompartment final : public splitbft::CompartmentLogic {
 public:
  explicit SilentCompartment(std::unique_ptr<splitbft::CompartmentLogic> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::vector<net::Envelope> deliver(
      const net::Envelope& env) override {
    (void)inner_->deliver(env);
    return {};
  }
  [[nodiscard]] Digest measurement() const override {
    return inner_->measurement();
  }

 private:
  std::unique_ptr<splitbft::CompartmentLogic> inner_;
};

/// Arbitrary output mutation (building block for custom attacks).
class MutatingCompartment final : public splitbft::CompartmentLogic {
 public:
  using Mutator = std::function<std::vector<net::Envelope>(
      const net::Envelope& input, std::vector<net::Envelope> honest_outputs)>;

  MutatingCompartment(std::unique_ptr<splitbft::CompartmentLogic> inner,
                      Mutator mutator)
      : inner_(std::move(inner)), mutator_(std::move(mutator)) {}

  [[nodiscard]] std::vector<net::Envelope> deliver(
      const net::Envelope& env) override {
    return mutator_(env, inner_->deliver(env));
  }
  [[nodiscard]] Digest measurement() const override {
    return inner_->measurement();
  }

 private:
  std::unique_ptr<splitbft::CompartmentLogic> inner_;
  Mutator mutator_;
};

/// Equivocating Preparation enclave at the primary: assigns the SAME
/// sequence number to two different batches and shows each half of the
/// group a different one. With 2f+1 correct Preparation enclaves no two
/// conflicting prepare certificates can form, so agreement must survive.
class EquivocatingPrep final : public splitbft::CompartmentLogic {
 public:
  EquivocatingPrep(std::unique_ptr<splitbft::CompartmentLogic> inner,
                   pbft::Config config, ReplicaId self,
                   std::shared_ptr<const crypto::Signer> signer)
      : inner_(std::move(inner)),
        config_(config),
        self_(self),
        signer_(std::move(signer)) {}

  [[nodiscard]] std::vector<net::Envelope> deliver(
      const net::Envelope& env) override;
  [[nodiscard]] Digest measurement() const override {
    return inner_->measurement();
  }

  [[nodiscard]] std::uint64_t equivocations() const noexcept {
    return equivocations_;
  }

 private:
  std::unique_ptr<splitbft::CompartmentLogic> inner_;
  pbft::Config config_;
  ReplicaId self_;
  std::shared_ptr<const crypto::Signer> signer_;
  SeqNum next_seq_{0};
  std::uint64_t equivocations_{0};
};

/// Execution enclave emitting checkpoints with corrupted state digests.
/// Correct compartments must never reach a bogus stable checkpoint from
/// f such enclaves.
class CorruptCheckpointExec final : public splitbft::CompartmentLogic {
 public:
  CorruptCheckpointExec(std::unique_ptr<splitbft::CompartmentLogic> inner,
                        std::shared_ptr<const crypto::Signer> signer)
      : inner_(std::move(inner)), signer_(std::move(signer)) {}

  [[nodiscard]] std::vector<net::Envelope> deliver(
      const net::Envelope& env) override;
  [[nodiscard]] Digest measurement() const override {
    return inner_->measurement();
  }

 private:
  std::unique_ptr<splitbft::CompartmentLogic> inner_;
  std::shared_ptr<const crypto::Signer> signer_;
};

/// Execution enclave forging reply contents (it legitimately holds the
/// client auth keys, so the MACs verify — only f+1 matching protects the
/// client).
class ForgingReplyExec final : public splitbft::CompartmentLogic {
 public:
  ForgingReplyExec(std::unique_ptr<splitbft::CompartmentLogic> inner,
                   pbft::ClientDirectory directory, Bytes forged_result)
      : inner_(std::move(inner)),
        directory_(directory),
        forged_result_(std::move(forged_result)) {}

  [[nodiscard]] std::vector<net::Envelope> deliver(
      const net::Envelope& env) override;
  [[nodiscard]] Digest measurement() const override {
    return inner_->measurement();
  }

 private:
  std::unique_ptr<splitbft::CompartmentLogic> inner_;
  pbft::ClientDirectory directory_;
  Bytes forged_result_;
};

/// Execution enclave serving stale/forged fast-path read replies: every
/// ReadReply it emits gets a corrupted result digest (and a forged value
/// when it is the designated responder), re-MACed with the client auth key
/// it legitimately holds. A single such enclave (f=1) can never assemble a
/// 2f+1 read quorum: the client either accepts the honest quorum or falls
/// back to the ordered path.
class ForgingReadExec final : public splitbft::CompartmentLogic {
 public:
  ForgingReadExec(std::unique_ptr<splitbft::CompartmentLogic> inner,
                  pbft::ClientDirectory directory, Bytes forged_result)
      : inner_(std::move(inner)),
        directory_(directory),
        forged_result_(std::move(forged_result)) {}

  [[nodiscard]] std::vector<net::Envelope> deliver(
      const net::Envelope& env) override;
  [[nodiscard]] Digest measurement() const override {
    return inner_->measurement();
  }

  [[nodiscard]] std::uint64_t forged() const noexcept { return forged_; }

 private:
  std::unique_ptr<splitbft::CompartmentLogic> inner_;
  pbft::ClientDirectory directory_;
  Bytes forged_result_;
  std::uint64_t forged_{0};
};

}  // namespace sbft::faults
