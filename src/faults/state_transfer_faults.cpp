#include "faults/state_transfer_faults.hpp"

namespace sbft::faults {

namespace {

[[nodiscard]] bool is_chunk_response(const net::Envelope& env) noexcept {
  return env.type == pbft::tag(pbft::MsgType::StateChunkResponse);
}

}  // namespace

// -------------------------------------------------------------- forgery

ChunkForger::ChunkForger(std::shared_ptr<runtime::Actor> inner,
                         std::shared_ptr<const crypto::Signer> signer)
    : inner_(std::move(inner)), signer_(std::move(signer)) {}

void ChunkForger::forge(std::vector<net::Envelope>& envs) {
  for (auto& e : envs) {
    if (!is_chunk_response(e)) continue;
    auto resp = pbft::StateChunkResponse::deserialize(e.payload);
    if (!resp || resp->chunk.empty()) continue;
    // Flip one byte mid-chunk: geometry, root and proof stay truthful, so
    // only leaf hashing can notice — the strongest position for a forger
    // whose envelope MAC is genuinely valid.
    resp->chunk[resp->chunk.size() / 2] ^= 0xFF;
    e.payload = resp->serialize();
    net::sign_envelope(e, *signer_);
    ++forged_;
  }
}

std::vector<net::Envelope> ChunkForger::handle(const net::Envelope& env,
                                               Micros now) {
  std::vector<net::Envelope> out = inner_->handle(env, now);
  forge(out);
  return out;
}

std::vector<net::Envelope> ChunkForger::tick(Micros now) {
  std::vector<net::Envelope> out = inner_->tick(now);
  forge(out);
  return out;
}

// ---------------------------------------------------------- withholding

ChunkWithholder::ChunkWithholder(std::shared_ptr<runtime::Actor> inner,
                                 Policy policy)
    : inner_(std::move(inner)), policy_(policy) {}

void ChunkWithholder::filter(std::vector<net::Envelope>& envs) {
  std::vector<net::Envelope> kept;
  kept.reserve(envs.size());
  for (auto& e : envs) {
    if (!is_chunk_response(e)) {
      kept.push_back(std::move(e));
      continue;
    }
    if (served_ < policy_.serve_first) {
      ++served_;
      kept.push_back(std::move(e));
      continue;
    }
    ++withheld_;
    if (policy_.drip_interval_us > 0) queue_.push_back(std::move(e));
  }
  envs = std::move(kept);
}

void ChunkWithholder::drip(std::vector<net::Envelope>& out, Micros now) {
  if (policy_.drip_interval_us == 0) return;
  while (!queue_.empty() && now >= next_release_) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
    ++dripped_;
    next_release_ = now + policy_.drip_interval_us;
  }
}

std::vector<net::Envelope> ChunkWithholder::handle(const net::Envelope& env,
                                                   Micros now) {
  std::vector<net::Envelope> out = inner_->handle(env, now);
  filter(out);
  drip(out, now);
  return out;
}

std::vector<net::Envelope> ChunkWithholder::tick(Micros now) {
  std::vector<net::Envelope> out = inner_->tick(now);
  filter(out);
  drip(out, now);
  return out;
}

// --------------------------------------------------------- stale replay

StaleRootReplayer::StaleRootReplayer(
    std::shared_ptr<runtime::Actor> inner,
    std::shared_ptr<const crypto::Signer> signer)
    : inner_(std::move(inner)), signer_(std::move(signer)) {}

void StaleRootReplayer::rewrite(std::vector<net::Envelope>& envs) {
  for (auto& e : envs) {
    if (!is_chunk_response(e)) continue;
    auto resp = pbft::StateChunkResponse::deserialize(e.payload);
    if (!resp) continue;
    if (!stale_) {
      // First checkpoint this replica ever serves becomes the stale
      // template; it is still served honestly.
      stale_ = *resp;
      continue;
    }
    if (resp->seq <= stale_->seq) continue;  // not yet superseded
    // Replay: the requested (seq, sender, checkpoint proof) with the OLD
    // snapshot's geometry, chunk bytes and Merkle path. Internally the
    // proof verifies against the stale root; the receiver's certificate
    // binds `seq` to the NEW commitment, so manifest().commitment() must
    // mismatch before any chunk byte is inspected.
    resp->total_bytes = stale_->total_bytes;
    resp->chunk_bytes = stale_->chunk_bytes;
    resp->root = stale_->root;
    resp->index = stale_->index;
    resp->chunk = stale_->chunk;
    resp->proof = stale_->proof;
    e.payload = resp->serialize();
    net::sign_envelope(e, *signer_);
    ++replayed_;
  }
}

std::vector<net::Envelope> StaleRootReplayer::handle(const net::Envelope& env,
                                                     Micros now) {
  std::vector<net::Envelope> out = inner_->handle(env, now);
  rewrite(out);
  return out;
}

std::vector<net::Envelope> StaleRootReplayer::tick(Micros now) {
  std::vector<net::Envelope> out = inner_->tick(now);
  rewrite(out);
  return out;
}

}  // namespace sbft::faults
