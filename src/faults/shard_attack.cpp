#include "faults/shard_attack.hpp"

#include "apps/kv_store.hpp"
#include "crypto/hmac.hpp"
#include "pbft/messages.hpp"

namespace sbft::faults {

KvReplyForger::KvReplyForger(std::shared_ptr<runtime::Actor> inner,
                             pbft::ClientDirectory directory)
    : inner_(std::move(inner)), directory_(directory) {}

void KvReplyForger::forge(std::vector<net::Envelope>& envs) {
  for (auto& e : envs) {
    if (e.type != pbft::tag(pbft::MsgType::Reply)) continue;
    auto reply = pbft::Reply::deserialize(e.payload);
    if (!reply) continue;
    const auto kv_reply = apps::kv::decode_reply(reply->result);
    if (!kv_reply || kv_reply->status == apps::KvStatus::Ok) continue;
    // Lie: every failed vote (CasMismatch, NotFound, TxBusy, ...) becomes
    // a prepare-ok with a VALID client MAC. The vote verifies in
    // isolation — only the per-shard f+1 matching-reply rule defeats it.
    reply->result = apps::kv::encode_reply(apps::KvStatus::Ok);
    const crypto::Key32 key = directory_.auth_key(reply->client);
    const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                           reply->auth_input());
    reply->auth = Bytes(mac.bytes.begin(), mac.bytes.end());
    e.payload = reply->serialize();
    ++forged_;
  }
}

std::vector<net::Envelope> KvReplyForger::handle(const net::Envelope& env,
                                                 Micros now) {
  std::vector<net::Envelope> out = inner_->handle(env, now);
  forge(out);
  return out;
}

std::vector<net::Envelope> KvReplyForger::tick(Micros now) {
  std::vector<net::Envelope> out = inner_->tick(now);
  forge(out);
  return out;
}

}  // namespace sbft::faults
