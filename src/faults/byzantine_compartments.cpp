#include "faults/byzantine_compartments.hpp"

#include "pbft/client_directory.hpp"
#include "pbft/messages.hpp"
#include "splitbft/messages.hpp"

namespace sbft::faults {

std::vector<net::Envelope> EquivocatingPrep::deliver(const net::Envelope& env) {
  if (env.type != splitbft::tag(splitbft::LocalMsg::Batch)) {
    return inner_->deliver(env);
  }
  auto batch = pbft::RequestBatch::deserialize(env.payload);
  if (!batch || batch->empty()) return {};

  // Two conflicting proposals for the same sequence number: the real batch
  // and the empty batch (no client-MAC forgery needed).
  const SeqNum seq = ++next_seq_;
  ++equivocations_;

  splitbft::SplitPrePrepare pp_a;
  pp_a.view = 0;
  pp_a.seq = seq;
  pp_a.batch = batch->serialize();
  pp_a.batch_digest = crypto::sha256(pp_a.batch);
  pp_a.sender = self_;
  pp_a.has_batch = true;

  splitbft::SplitPrePrepare pp_b;
  pp_b.view = 0;
  pp_b.seq = seq;
  pp_b.batch = pbft::RequestBatch{}.serialize();
  pp_b.batch_digest = crypto::sha256(pp_b.batch);
  pp_b.sender = self_;
  pp_b.has_batch = true;

  std::vector<net::Envelope> out;
  for (ReplicaId r = 0; r < config_.n; ++r) {
    if (r == self_) continue;
    const auto& pp = (r % 2 == 0) ? pp_a : pp_b;
    out.push_back(splitbft::make_pre_prepare_envelope(
        pp, *signer_, principal::enclave({r, Compartment::Preparation})));
  }
  // Own compartments get proposal A.
  out.push_back(splitbft::make_pre_prepare_envelope(
      pp_a.stripped(), *signer_,
      principal::enclave({self_, Compartment::Confirmation})));
  out.push_back(splitbft::make_pre_prepare_envelope(
      pp_a, *signer_, principal::enclave({self_, Compartment::Execution})));
  return out;
}

std::vector<net::Envelope> CorruptCheckpointExec::deliver(
    const net::Envelope& env) {
  std::vector<net::Envelope> out = inner_->deliver(env);
  for (auto& e : out) {
    if (e.type != pbft::tag(pbft::MsgType::Checkpoint)) continue;
    auto cp = pbft::Checkpoint::deserialize(e.payload);
    if (!cp) continue;
    // Lie about the state digest (and re-sign: the enclave key is ours).
    cp->state_digest.bytes[0] ^= 0xff;
    cp->state_digest.bytes[31] ^= 0xff;
    e.payload = cp->serialize();
    net::sign_envelope(e, *signer_);
  }
  return out;
}

std::vector<net::Envelope> ForgingReplyExec::deliver(const net::Envelope& env) {
  std::vector<net::Envelope> out = inner_->deliver(env);
  for (auto& e : out) {
    if (e.type != pbft::tag(pbft::MsgType::Reply)) continue;
    auto reply = pbft::Reply::deserialize(e.payload);
    if (!reply) continue;
    reply->result = forged_result_;
    // The Execution enclave holds the client auth key: the forged reply
    // carries a VALID Mac. Only f+1 matching protects the client.
    const crypto::Key32 key = directory_.auth_key(reply->client);
    const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                           reply->auth_input());
    reply->auth = Bytes(mac.bytes.begin(), mac.bytes.end());
    e.payload = reply->serialize();
  }
  return out;
}

std::vector<net::Envelope> ForgingReadExec::deliver(const net::Envelope& env) {
  std::vector<net::Envelope> out = inner_->deliver(env);
  for (auto& e : out) {
    if (e.type != pbft::tag(pbft::MsgType::ReadReply)) continue;
    auto rr = pbft::ReadReply::deserialize(e.payload);
    if (!rr) continue;
    // A stale/forged vote: corrupted digest, attacker value in place of
    // the honest one. The client auth key is enclave-held, so the MAC
    // verifies — only the 2f+1 (digest, seq) quorum protects the client.
    rr->result_digest.bytes[0] ^= 0xff;
    rr->result_digest.bytes[31] ^= 0xff;
    if (rr->has_result) rr->result = forged_result_;
    const crypto::Key32 key = directory_.auth_key(rr->client);
    const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                           rr->auth_input());
    rr->auth = Bytes(mac.bytes.begin(), mac.bytes.end());
    e.payload = rr->serialize();
    ++forged_;
  }
  return out;
}

}  // namespace sbft::faults
