// Hybrid-protocol TEE-compromise attack (Table 1, hybrid row).
//
// A hybrid (MinBFT-style) primary whose trusted counter has been
// compromised can re-issue the SAME counter value for two different
// requests — one per backup — and the two correct backups execute divergent
// histories. This is the single point of failure SplitBFT removes: in the
// hybrid fault model one broken TEE costs safety.
#pragma once

#include <memory>

#include "hybrid/minbft.hpp"
#include "pbft/client_directory.hpp"
#include "runtime/actor.hpp"

namespace sbft::faults {

class HybridUsigAttack final : public runtime::Actor {
 public:
  /// `usig` must be the (compromised) USIG of the controlled primary.
  /// `directory` provides client keys — replicas legitimately hold them in
  /// the shared-MAC authentication model.
  HybridUsigAttack(pbft::Config config, ReplicaId primary_id,
                   std::shared_ptr<hybrid::Usig> usig,
                   pbft::ClientDirectory directory)
      : config_(config),
        primary_id_(primary_id),
        usig_(std::move(usig)),
        directory_(directory) {}

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override;
  [[nodiscard]] std::vector<net::Envelope> tick(Micros) override { return {}; }

  [[nodiscard]] bool attack_launched() const noexcept { return launched_; }

 private:
  pbft::Config config_;
  ReplicaId primary_id_;
  std::shared_ptr<hybrid::Usig> usig_;
  pbft::ClientDirectory directory_;
  bool launched_{false};
};

}  // namespace sbft::faults
