#include "faults/pbft_attack.hpp"

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace sbft::faults {

PbftEquivocationAttack::PbftEquivocationAttack(
    pbft::Config config, std::shared_ptr<const crypto::Signer> primary_signer,
    std::shared_ptr<const crypto::Signer> backup_signer, ReplicaId primary_id,
    ReplicaId backup_id)
    : config_(config),
      primary_signer_(std::move(primary_signer)),
      backup_signer_(std::move(backup_signer)),
      primary_id_(primary_id),
      backup_id_(backup_id) {}

void PbftEquivocationAttack::craft_certificate(const pbft::RequestBatch& batch,
                                               SeqNum seq, ReplicaId victim,
                                               std::vector<net::Envelope>& out) {
  const principal::Id dst = principal::pbft_replica(victim);

  pbft::PrePrepare pp;
  pp.view = 0;
  pp.seq = seq;
  pp.batch = batch.serialize();
  pp.batch_digest = crypto::sha256(pp.batch);
  pp.sender = primary_id_;
  {
    net::Envelope env;
    env.src = principal::pbft_replica(primary_id_);
    env.dst = dst;
    env.type = pbft::tag(pbft::MsgType::PrePrepare);
    env.payload = pp.serialize();
    net::sign_envelope(env, *primary_signer_);
    out.push_back(std::move(env));
  }

  pbft::Prepare prep;
  prep.view = 0;
  prep.seq = seq;
  prep.batch_digest = pp.batch_digest;
  prep.sender = backup_id_;
  {
    net::Envelope env;
    env.src = principal::pbft_replica(backup_id_);
    env.dst = dst;
    env.type = pbft::tag(pbft::MsgType::Prepare);
    env.payload = prep.serialize();
    net::sign_envelope(env, *backup_signer_);
    out.push_back(std::move(env));
  }

  for (const auto& [sender, signer] :
       {std::pair{primary_id_, primary_signer_.get()},
        std::pair{backup_id_, backup_signer_.get()}}) {
    pbft::Commit commit;
    commit.view = 0;
    commit.seq = seq;
    commit.batch_digest = pp.batch_digest;
    commit.sender = sender;
    net::Envelope env;
    env.src = principal::pbft_replica(sender);
    env.dst = dst;
    env.type = pbft::tag(pbft::MsgType::Commit);
    env.payload = commit.serialize();
    net::sign_envelope(env, *signer);
    out.push_back(std::move(env));
  }
}

std::vector<net::Envelope> PbftEquivocationAttack::handle(
    const net::Envelope& env, Micros) {
  if (launched_ || env.type != pbft::tag(pbft::MsgType::Request)) return {};
  auto req = pbft::Request::deserialize(env.payload);
  if (!req) return {};
  launched_ = true;

  // Proposal A: the real request; proposal B: the empty batch.
  pbft::RequestBatch batch_a;
  batch_a.requests.push_back(std::move(*req));
  const pbft::RequestBatch batch_b;

  std::vector<net::Envelope> out;
  // Victims: the two correct replicas (everyone we don't control).
  std::vector<ReplicaId> victims;
  for (ReplicaId r = 0; r < config_.n; ++r) {
    if (r != primary_id_ && r != backup_id_) victims.push_back(r);
  }
  for (std::size_t i = 0; i < victims.size(); ++i) {
    craft_certificate(i % 2 == 0 ? batch_a : batch_b, 1, victims[i], out);
  }
  return out;
}

// ---------------------------------------------------------- read forgery

ReadReplyForger::ReadReplyForger(std::shared_ptr<runtime::Actor> inner,
                                 pbft::ClientDirectory directory,
                                 Bytes forged_result)
    : inner_(std::move(inner)),
      directory_(directory),
      forged_result_(std::move(forged_result)) {}

void ReadReplyForger::forge(std::vector<net::Envelope>& envs) {
  for (auto& e : envs) {
    if (e.type != pbft::tag(pbft::MsgType::ReadReply)) continue;
    auto rr = pbft::ReadReply::deserialize(e.payload);
    if (!rr) continue;
    // Consistent forgery: attacker value with its matching digest and a
    // VALID client MAC (replicas hold the shared client auth keys). The
    // vote verifies in isolation — only the 2f+1 quorum rule defeats it.
    rr->result_digest = crypto::sha256(forged_result_);
    rr->has_result = true;
    rr->result = forged_result_;
    const crypto::Key32 key = directory_.auth_key(rr->client);
    const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                           rr->auth_input());
    rr->auth = Bytes(mac.bytes.begin(), mac.bytes.end());
    e.payload = rr->serialize();
    ++forged_;
  }
}

std::vector<net::Envelope> ReadReplyForger::handle(const net::Envelope& env,
                                                   Micros now) {
  std::vector<net::Envelope> out = inner_->handle(env, now);
  forge(out);
  return out;
}

std::vector<net::Envelope> ReadReplyForger::tick(Micros now) {
  std::vector<net::Envelope> out = inner_->tick(now);
  forge(out);
  return out;
}

}  // namespace sbft::faults
