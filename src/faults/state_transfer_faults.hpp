// Streaming state-transfer fault injection.
//
// Three adversaries against the chunked snapshot fetch (pbft/state_transfer):
//
//  * ChunkForger — a compromised serving peer that corrupts chunk bytes but
//    re-signs the envelope with its own (legitimate) key: the MAC verifies,
//    the Merkle path does not. The fetcher must reject the chunk, strike the
//    peer and refetch from another one; no forged byte may ever be installed.
//  * ChunkWithholder — a peer that answers the announce but then withholds
//    (or slow-drips) chunk responses, modelling a slow-loris serving peer.
//    The fetcher's per-chunk timeout must reassign the range elsewhere.
//  * StaleRootReplayer — a peer that serves chunks and Merkle proofs from an
//    OLDER checkpoint under the current sequence number (valid signature,
//    stale root). The manifest-vs-certificate commitment check must reject
//    the response before any chunk bytes are trusted.
//
// All three follow the wrapper idiom of ReadReplyForger: they process
// traffic through the wrapped honest engine (keeping the group live) and
// rewrite/suppress only the state-transfer envelopes it emits. They speak
// the PBFT wire format; for SplitBFT the equivalent network-level behaviour
// (withholding) is expressed with ByzantineEnv drop predicates, since a
// compromised host cannot forge enclave-authenticated chunks at all.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "crypto/keyring.hpp"
#include "pbft/messages.hpp"
#include "runtime/actor.hpp"

namespace sbft::faults {

/// Corrupts every outbound StateChunkResponse's chunk bytes, then re-signs
/// the envelope so it passes authentication and fails Merkle verification.
class ChunkForger final : public runtime::Actor {
 public:
  ChunkForger(std::shared_ptr<runtime::Actor> inner,
              std::shared_ptr<const crypto::Signer> signer);

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override;
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override;

  /// Chunk responses corrupted and re-signed.
  [[nodiscard]] std::uint64_t forged() const noexcept { return forged_; }

 private:
  void forge(std::vector<net::Envelope>& envs);

  std::shared_ptr<runtime::Actor> inner_;
  std::shared_ptr<const crypto::Signer> signer_;
  std::uint64_t forged_{0};
};

/// Withholds outbound StateChunkResponses after serving the first
/// `serve_first`. With `drip_interval_us == 0` the responses are dropped
/// outright; otherwise they are queued and released one per interval — the
/// slow-drip that must lose the race against the fetcher's chunk timeout.
class ChunkWithholder final : public runtime::Actor {
 public:
  struct Policy {
    /// Responses served honestly before withholding begins. The announce
    /// (chunk 0 + checkpoint proof) counts, so 1 = "advertise, then stall".
    std::uint64_t serve_first{1};
    /// 0 = drop withheld responses; >0 = release one per this many µs.
    Micros drip_interval_us{0};
  };

  ChunkWithholder(std::shared_ptr<runtime::Actor> inner, Policy policy);

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override;
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override;

  /// Responses diverted from immediate delivery (dropped or queued).
  [[nodiscard]] std::uint64_t withheld() const noexcept { return withheld_; }
  /// Queued responses eventually released by the drip.
  [[nodiscard]] std::uint64_t dripped() const noexcept { return dripped_; }

 private:
  void filter(std::vector<net::Envelope>& envs);
  void drip(std::vector<net::Envelope>& out, Micros now);

  std::shared_ptr<runtime::Actor> inner_;
  Policy policy_;
  std::uint64_t served_{0};
  std::uint64_t withheld_{0};
  std::uint64_t dripped_{0};
  std::deque<net::Envelope> queue_;
  Micros next_release_{0};
};

/// Records the snapshot geometry of an early checkpoint and replays it:
/// once the wrapped replica starts serving a LATER checkpoint, every
/// outbound chunk response is rewritten to carry the recorded stale root,
/// chunk bytes and Merkle proof — internally consistent (the proof verifies
/// against the stale root) and validly signed, so only the binding between
/// the checkpoint certificate and the manifest commitment can reject it.
class StaleRootReplayer final : public runtime::Actor {
 public:
  StaleRootReplayer(std::shared_ptr<runtime::Actor> inner,
                    std::shared_ptr<const crypto::Signer> signer);

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override;
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override;

  /// True once a stale template has been captured.
  [[nodiscard]] bool armed() const noexcept { return stale_.has_value(); }
  /// Responses rewritten to the stale root.
  [[nodiscard]] std::uint64_t replayed() const noexcept { return replayed_; }

 private:
  void rewrite(std::vector<net::Envelope>& envs);

  std::shared_ptr<runtime::Actor> inner_;
  std::shared_ptr<const crypto::Signer> signer_;
  std::optional<pbft::StateChunkResponse> stale_;
  std::uint64_t replayed_{0};
};

}  // namespace sbft::faults
