// Byzantine 2PC participant: a replica that lies about its vote.
//
// Wraps one replica of a shard group and rewrites the ordered Replies it
// emits: any KV reply whose status signals a failed prepare (CAS
// mismatch, missing key, busy lock) is replaced with a forged
// "prepare-ok" carrying a VALID client MAC (replicas hold the shared
// per-client auth keys). The replica's local protocol state keeps
// running honestly underneath, so the group stays live — the forgery is
// exactly "votes prepare-ok then diverges from the honest outcome".
// The client's per-shard reply quorum (f+1 matching results) must
// outvote it; with at most f such replicas a coordinator can never act
// on the forged vote.
#pragma once

#include <memory>

#include "pbft/client_directory.hpp"
#include "runtime/actor.hpp"

namespace sbft::faults {

class KvReplyForger final : public runtime::Actor {
 public:
  KvReplyForger(std::shared_ptr<runtime::Actor> inner,
                pbft::ClientDirectory directory);

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override;
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override;

  /// Replies rewritten so far.
  [[nodiscard]] std::uint64_t forged() const noexcept { return forged_; }

 private:
  void forge(std::vector<net::Envelope>& envs);

  std::shared_ptr<runtime::Actor> inner_;
  pbft::ClientDirectory directory_;
  std::uint64_t forged_{0};
};

}  // namespace sbft::faults
