// Scripted PBFT equivocation attack.
//
// Demonstrates the classic integrity loss of plain PBFT once MORE than f
// replicas are compromised (Table 1, first row): with n=4 (f=1) the
// attacker controlling replicas {0 (primary), 1} fabricates two complete
// commit certificates for the same sequence number — the real batch for one
// honest replica, the empty batch for the other — and the two correct
// replicas execute divergent histories.
#pragma once

#include <memory>
#include <set>

#include "crypto/keyring.hpp"
#include "pbft/client_directory.hpp"
#include "pbft/config.hpp"
#include "pbft/messages.hpp"
#include "runtime/actor.hpp"

namespace sbft::faults {

class PbftEquivocationAttack final : public runtime::Actor {
 public:
  /// `signers` are the keys of the two controlled replicas (primary first).
  PbftEquivocationAttack(pbft::Config config,
                         std::shared_ptr<const crypto::Signer> primary_signer,
                         std::shared_ptr<const crypto::Signer> backup_signer,
                         ReplicaId primary_id, ReplicaId backup_id);

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override;
  [[nodiscard]] std::vector<net::Envelope> tick(Micros) override { return {}; }

  [[nodiscard]] bool attack_launched() const noexcept { return launched_; }

 private:
  void craft_certificate(const pbft::RequestBatch& batch, SeqNum seq,
                         ReplicaId victim, std::vector<net::Envelope>& out);

  pbft::Config config_;
  std::shared_ptr<const crypto::Signer> primary_signer_;
  std::shared_ptr<const crypto::Signer> backup_signer_;
  ReplicaId primary_id_;
  ReplicaId backup_id_;
  bool launched_{false};
};

/// Byzantine PBFT replica serving stale/forged fast-path read replies: it
/// processes traffic honestly (the wrapped engine keeps the group live)
/// but rewrites every ReadReply it emits — attacker-chosen value, matching
/// forged digest, valid client MAC (replicas hold the client auth keys).
/// The read quorum rule (2f+1 matching digest+seq votes plus a value that
/// hashes to the quorum digest) must outvote it.
class ReadReplyForger final : public runtime::Actor {
 public:
  ReadReplyForger(std::shared_ptr<runtime::Actor> inner,
                  pbft::ClientDirectory directory, Bytes forged_result);

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override;
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override;

  [[nodiscard]] std::uint64_t forged() const noexcept { return forged_; }

 private:
  void forge(std::vector<net::Envelope>& envs);

  std::shared_ptr<runtime::Actor> inner_;
  pbft::ClientDirectory directory_;
  Bytes forged_result_;
  std::uint64_t forged_{0};
};

}  // namespace sbft::faults
