// PBFT replica engine (the paper's baseline system).
//
// Sans-I/O design: the engine consumes envelopes and timer ticks and returns
// envelopes to transmit. It never touches sockets, threads or clocks, so the
// identical engine runs under the deterministic simulator (correctness
// tests), the virtual-time performance model (benchmarks) and the threaded
// runtime (examples).
//
// Implements the complete protocol: request batching, the three-phase
// normal case, reply caching / at-most-once execution, periodic
// checkpointing with garbage collection, view change + new view, and
// checkpoint-proof-validated state transfer for lagging replicas.
//
// All signature checks go through a net::VerifyCache, and every stored
// quorum message (pre-prepares, prepare/commit votes, checkpoint and
// view-change certificates) is held as a net::VerifiedEnvelope — proof of
// verification travels in the type system, and re-validating proofs that
// embed already-seen envelopes costs a cache hit instead of an Ed25519
// verification.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "apps/app.hpp"
#include "common/serde.hpp"
#include "common/types.hpp"
#include "crypto/keyring.hpp"
#include "net/auth.hpp"
#include "net/message.hpp"
#include "pbft/client_directory.hpp"
#include "pbft/config.hpp"
#include "pbft/messages.hpp"
#include "pbft/state_transfer.hpp"
#include "runtime/runner/runner.hpp"
#include "runtime/runner/tuning.hpp"

namespace sbft::pbft {

class Replica {
 public:
  /// `auth` (optional) is the signature-verification cache; pass the cache
  /// a ThreadNetwork ingress VerifierPool shares so envelopes pre-verified
  /// at the transport are cache hits here (verify once per replica).
  /// Defaults to a private cache over `verifier`.
  ///
  /// `runner` (optional) is the staged execution pipeline: reply
  /// MAC/serialize and fast-path read service run as prologues on its
  /// workers while state mutations stay ordered on the engine thread.
  /// Defaults to the serial SyncOrderedRunner. Always drained before
  /// handle()/tick() returns, preserving the sans-I/O contract.
  Replica(Config config, ReplicaId id,
          std::shared_ptr<const crypto::Signer> signer,
          std::shared_ptr<const crypto::Verifier> verifier,
          ClientDirectory clients, apps::AppFactory app_factory,
          std::shared_ptr<net::VerifyCache> auth = nullptr,
          std::shared_ptr<runtime::runner::OrderedRunner> runner = nullptr);

  /// Processes one incoming envelope; returns envelopes to transmit.
  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now);

  /// Fires any expired timers (batch cut, view change).
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now);

  /// Earliest pending timer deadline, if any.
  [[nodiscard]] std::optional<Micros> next_deadline() const;

  // ---- introspection (tests, benchmarks, safety checkers) ----
  [[nodiscard]] ReplicaId id() const noexcept { return id_; }
  [[nodiscard]] View view() const noexcept { return view_; }
  [[nodiscard]] bool in_view_change() const noexcept { return in_view_change_; }
  [[nodiscard]] SeqNum last_executed() const noexcept { return last_executed_; }
  [[nodiscard]] SeqNum last_stable() const noexcept { return last_stable_; }
  [[nodiscard]] const apps::Application& app() const noexcept { return *app_; }
  [[nodiscard]] std::uint64_t executed_requests() const noexcept {
    return executed_requests_;
  }
  /// Read-only requests served via the fast path (no sequence number).
  [[nodiscard]] std::uint64_t reads_served() const noexcept {
    return reads_served_;
  }
  /// Batch digest executed at `seq` (zero digest if not executed) — the
  /// cross-replica agreement checker compares these.
  [[nodiscard]] Digest executed_digest(SeqNum seq) const;
  [[nodiscard]] const std::map<SeqNum, Digest>& execution_history()
      const noexcept {
    return executed_digests_;
  }
  /// Signature-verification cache (hit/miss counters for tests and the
  /// performance model).
  [[nodiscard]] const net::VerifyCache& auth() const noexcept {
    return *auth_;
  }
  /// Fresh requests shed by admission control (Config::admission_queue_cap).
  [[nodiscard]] std::uint64_t admission_rejects() const noexcept {
    return admission_rejects_;
  }
  /// State-transfer traffic counters (see pbft/state_transfer.hpp).
  using StateTransferStats = ::sbft::pbft::StateTransferStats;
  [[nodiscard]] StateTransferStats state_transfer_stats() const;
  /// StateRequest broadcasts actually sent (backoff-limited) — the
  /// regression counter for the re-broadcast storm fix.
  [[nodiscard]] std::uint64_t state_requests_sent() const noexcept {
    return xfer_stats_.state_requests_sent;
  }
  /// True while recovering via state transfer (execution is paused).
  [[nodiscard]] bool awaiting_state() const noexcept {
    return awaiting_state_;
  }
  /// Staged-pipeline observability (queue gauge + stage latencies).
  [[nodiscard]] runtime::runner::RunnerStats runner_stats() const {
    return runner_->stats();
  }
  /// Live view of the (possibly auto-tuned) protocol knobs.
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const runtime::runner::AutoTuner* tuner() const noexcept {
    return tuner_.get();
  }

  /// Bookkeeping footprint, for garbage-collection bounds tests: after a
  /// checkpoint stabilizes, every seq-keyed structure must hold nothing at
  /// or below last_stable(), and view-change bookkeeping nothing at or
  /// below view().
  struct GcFootprint {
    std::size_t log_slots{0};
    SeqNum min_log_seq{0};  // 0 when the log is empty
    std::size_t checkpoint_seqs{0};
    SeqNum min_checkpoint_seq{0};  // 0 when no pending certificates
    std::size_t snapshots{0};
    SeqNum min_snapshot_seq{0};  // 0 when none retained
    std::size_t view_change_views{0};
    View min_view_change_view{0};  // 0 when none retained
    std::size_t new_view_markers{0};
    std::size_t pending_requests{0};
    std::size_t client_records{0};
    /// Records still holding a cached reply body — the quantity
    /// Config::client_record_cap bounds (records themselves are only
    /// stripped, never erased, preserving the at-most-once floor).
    std::size_t cached_replies{0};
    /// Runner-pipeline memory: work units in the staged runner and reply
    /// envelopes awaiting flush. Both are drained before handle()/tick()
    /// returns, so they must read 0 between engine calls — even under
    /// sustained overload.
    std::size_t runner_queue{0};
    std::size_t staged_replies{0};
  };
  [[nodiscard]] GcFootprint gc_footprint() const;

 private:
  struct Slot {
    std::optional<PrePrepare> pre_prepare;
    std::optional<net::VerifiedEnvelope> pre_prepare_env;
    // Votes keyed by sender, with the digest each vote is for.
    std::map<ReplicaId, std::pair<Digest, net::VerifiedEnvelope>> prepares;
    std::map<ReplicaId, std::pair<Digest, net::VerifiedEnvelope>> commits;
    bool prepared{false};
    bool committed{false};
  };

  struct ClientRecord {
    Timestamp last_ts{0};
    Bytes last_result;
    View last_view{0};
    bool has_reply{false};
  };

  using Out = std::vector<net::Envelope>;

  // -- event handlers --
  void on_request(const net::Envelope& env, Micros now, Out& out);
  void on_read_request(const net::Envelope& env, Micros now, Out& out);
  void on_pre_prepare(const net::Envelope& env, Micros now, Out& out);
  void on_prepare(const net::Envelope& env, Micros now, Out& out);
  void on_commit(const net::Envelope& env, Micros now, Out& out);
  void on_checkpoint(const net::Envelope& env, Micros now, Out& out);
  void on_view_change(const net::Envelope& env, Micros now, Out& out);
  void on_new_view(const net::Envelope& env, Micros now, Out& out);
  void on_state_request(const net::Envelope& env, Out& out);
  void on_state_response(const net::Envelope& env, Micros now, Out& out);
  void on_state_chunk_request(const net::Envelope& env, Out& out);
  void on_state_chunk_response(const net::Envelope& env, Micros now, Out& out);

  // -- streaming state transfer (fetch side) --
  /// Starts (or retargets) recovery toward stable checkpoint `seq`, whose
  /// certificate is already in stable_proof_.
  void begin_state_fetch(SeqNum seq, Micros now, Out& out);
  /// Signs and emits StateChunkRequest envelopes planned by the fetcher.
  void emit_chunk_requests(const std::vector<ChunkFetcher::Request>& requests,
                           Out& out);
  /// Streams newly contiguous verified chunks into the applier; finishes
  /// the restore when the fetch completes.
  void drain_fetcher(Micros now, Out& out);
  void finish_streaming_restore(Micros now, Out& out);
  /// Tears down a wedged transfer and re-arms the StateRequest backoff so
  /// recovery restarts from a fresh announce.
  void abandon_transfer(Micros now);
  /// Broadcasts one StateRequest and arms the exponential-backoff timer
  /// (satellite fix: no more unbounded re-broadcast storms).
  void send_state_request(Micros now, Out& out);
  /// Folds a finished/discarded fetcher's counters into xfer_stats_.
  void accumulate_fetcher_stats();
  /// Parses the protocol tail (client-record table) of a snapshot.
  [[nodiscard]] bool parse_client_records(
      Reader& r, std::unordered_map<ClientId, ClientRecord>& records) const;

  // -- normal operation helpers --
  void cut_batch(Micros now, Out& out);
  void check_prepared(SeqNum seq, Micros now, Out& out);
  void check_committed(SeqNum seq, Micros now, Out& out);
  void try_execute(Micros now, Out& out);
  void execute_batch(SeqNum seq, const RequestBatch& batch, Micros now,
                     Out& out);
  void maybe_checkpoint(SeqNum seq, Micros now, Out& out);
  /// Deterministic stripping keeping cached reply bodies under
  /// Config::client_record_cap. Runs only at execution points, so every
  /// replica prunes the identical set and checkpoint digests stay aligned.
  void gc_client_records();
  void process_own_checkpoint(SeqNum seq, const net::Envelope& env, Micros now,
                              Out& out);
  void make_stable(SeqNum seq, std::vector<net::VerifiedEnvelope> proof,
                   Micros now, Out& out);

  // -- view change helpers --
  void start_view_change(View target, Micros now, Out& out);
  void maybe_send_new_view(View target, Micros now, Out& out);
  void enter_view(View v,
                  const std::vector<net::VerifiedEnvelope>& new_pre_prepares,
                  SeqNum min_s, Micros now, Out& out);
  /// Collects the verified, sender-deduplicated subset of a checkpoint
  /// certificate for `seq` (cache hits when the quorum was already
  /// established). With no `expected_digest` the digest latches to the
  /// first verifying entry; with one, only matching entries count.
  [[nodiscard]] std::vector<net::VerifiedEnvelope> verified_checkpoint_proof(
      const std::vector<net::Envelope>& proof, SeqNum seq,
      std::optional<Digest> expected_digest = std::nullopt) const;
  /// Returns the verified envelope (for storing in view_changes_) on
  /// success, filling `out_vc` with the parsed message.
  [[nodiscard]] std::optional<net::VerifiedEnvelope> validate_view_change(
      const net::Envelope& env, ViewChange& out_vc) const;
  [[nodiscard]] bool validate_prepared_proof(const PreparedProof& proof,
                                             SeqNum& seq, View& view,
                                             Digest& digest,
                                             Bytes& batch) const;

  struct NewViewPlan {
    SeqNum min_s{0};
    SeqNum max_s{0};
    // seq -> (digest, batch bytes) to re-propose.
    std::map<SeqNum, std::pair<Digest, Bytes>> proposals;
  };
  [[nodiscard]] std::optional<NewViewPlan> compute_new_view_plan(
      const std::vector<net::Envelope>& view_change_envs) const;

  // -- state snapshot (app + client table, checkpointed together) --
  [[nodiscard]] Bytes protocol_snapshot() const;
  [[nodiscard]] bool restore_protocol_snapshot(ByteView data);
  [[nodiscard]] Digest snapshot_digest(ByteView snapshot) const;

  // -- plumbing --
  /// Builds and signs an envelope around a payload frame. The frame is
  /// moved, not copied — callers serialize a message body exactly once and
  /// every copy of the envelope shares that one allocation.
  [[nodiscard]] net::Envelope make_signed(MsgType type, SharedBytes payload,
                                          principal::Id dst) const;
  void broadcast(MsgType type, SharedBytes payload, Out& out) const;
  /// Addresses a copy of an already-signed envelope to every other replica.
  /// Copies are frame-backed: O(1) refcount bumps per recipient, no payload
  /// duplication.
  void broadcast_env(const net::Envelope& env, Out& out) const;
  [[nodiscard]] bool in_window(SeqNum seq) const noexcept;
  /// Batches assigned a sequence number but not yet executed locally —
  /// the quantity Config::pipeline_depth bounds on the primary.
  [[nodiscard]] SeqNum in_flight_batches() const noexcept;
  [[nodiscard]] bool is_primary() const noexcept {
    return config_.primary(view_) == id_;
  }
  [[nodiscard]] Slot& slot(SeqNum seq) { return log_[seq]; }
  void update_request_timer(Micros now);
  /// Stages the build/MAC/serialize of one reply on the runner; the
  /// epilogue queues the envelope on staged_out_ in submission order.
  void stage_reply(ClientId client, Timestamp ts, View view, Bytes result);
  /// Drains the runner and appends staged envelopes to `out` — the last
  /// step of handle()/tick(), restoring the sans-I/O contract.
  void flush_runner(Out& out);
  /// Feeds the AutoTuner (when Config::auto_tune) and applies knob changes.
  void observe_tuner(Micros now);

  Config config_;
  ReplicaId id_;
  std::shared_ptr<const crypto::Signer> signer_;
  // Possibly shared with the transport's ingress VerifierPool.
  std::shared_ptr<net::VerifyCache> auth_;
  ClientDirectory clients_;
  std::unique_ptr<apps::Application> app_;
  // Staged pipeline: prologues run on runner workers and may only touch
  // captured copies plus the thread-safe clients_ key cache; epilogues run
  // in submission order on the engine thread, pushing into staged_out_.
  std::shared_ptr<runtime::runner::OrderedRunner> runner_;
  std::unique_ptr<runtime::runner::AutoTuner> tuner_;
  Out staged_out_;

  View view_{0};
  SeqNum next_seq_{0};      // last assigned (primary)
  SeqNum last_executed_{0};
  SeqNum last_stable_{0};
  std::map<SeqNum, Slot> log_;

  // Checkpoints: seq -> digest -> (sender -> verified envelope).
  std::map<SeqNum,
           std::map<Digest, std::map<ReplicaId, net::VerifiedEnvelope>>>
      checkpoints_;
  // Own snapshots (pending + stable), pre-chunked under the Merkle
  // commitment their checkpoint certificates sign.
  std::map<SeqNum, ChunkedSnapshot> snapshots_;
  std::vector<net::VerifiedEnvelope> stable_proof_;

  std::unordered_map<ClientId, ClientRecord> client_records_;
  std::map<std::pair<ClientId, Timestamp>, Request> pending_requests_;
  // First-arrival times of pending requests, in arrival order, pruned
  // lazily: the front entry still present in pending_requests_ is the
  // oldest starving request and anchors the suspicion deadline.
  std::deque<std::pair<Micros, std::pair<ClientId, Timestamp>>>
      pending_arrivals_;
  Micros batch_deadline_{0};       // 0 = no batch pending
  Micros request_timer_{0};        // 0 = not armed
  Micros view_change_timer_{0};    // 0 = not armed
  // True when cut_batch was held back by the watermark window or the
  // pipeline depth; execution/stability progress retries the cut.
  bool batch_gated_{false};

  bool in_view_change_{false};
  View pending_view_{0};
  // view -> sender -> validated ViewChange envelope.
  std::map<View, std::map<ReplicaId, net::VerifiedEnvelope>> view_changes_;
  std::map<View, bool> new_view_sent_;

  bool awaiting_state_{false};
  SeqNum awaited_state_seq_{0};
  // One-shot startup probe: a rebooted replica has no way to learn the
  // group moved past it until a fresh checkpoint certificate happens to
  // arrive — ask once; any peer ahead answers with its stable certificate
  // (the announce), which make_stable turns into a fetch.
  bool boot_probe_sent_{false};
  // Streaming fetch machinery (non-null only while recovering).
  std::unique_ptr<ChunkFetcher> fetcher_;
  std::unique_ptr<SnapshotApplier> applier_;
  // StateRequest re-broadcast rate limiting (satellite fix): one timer,
  // exponential backoff between config_.state_request_backoff_min/max.
  Micros state_request_timer_{0};    // 0 = not armed
  Micros state_request_backoff_{0};  // current interval
  StateTransferStats xfer_stats_;

  std::map<SeqNum, Digest> executed_digests_;
  std::uint64_t executed_requests_{0};
  std::uint64_t reads_served_{0};
  std::uint64_t admission_rejects_{0};
};

}  // namespace sbft::pbft
