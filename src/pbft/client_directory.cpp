#include "pbft/client_directory.hpp"

namespace sbft::pbft {

ClientDirectory::ClientDirectory(std::uint64_t master_secret)
    : master_secret_(master_secret),
      shards_(std::make_shared<std::array<Shard, kShards>>()) {}

crypto::Key32 ClientDirectory::derive(ClientId client) const {
  Bytes context;
  for (int i = 0; i < 4; ++i) {
    context.push_back(static_cast<std::uint8_t>(client >> (8 * i)));
  }
  Bytes master(8);
  for (int i = 0; i < 8; ++i) {
    master[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(master_secret_ >> (8 * i));
  }
  return crypto::derive_key(master, "client-auth", context);
}

crypto::Key32 ClientDirectory::auth_key(ClientId client) const {
  Shard& shard = shard_for(client);
  {
    const std::scoped_lock lock(shard.mutex);
    const auto it = shard.keys.find(client);
    if (it != shard.keys.end()) return it->second;
  }
  // Derive outside the lock: HMAC work never blocks other lookups that
  // hash to the same shard. A racing deriver computes the same key.
  const crypto::Key32 key = derive(client);
  const std::scoped_lock lock(shard.mutex);
  shard.keys.emplace(client, key);
  return key;
}

std::size_t ClientDirectory::cached_keys() const {
  std::size_t total = 0;
  for (const Shard& shard : *shards_) {
    const std::scoped_lock lock(shard.mutex);
    total += shard.keys.size();
  }
  return total;
}

}  // namespace sbft::pbft
