#include "pbft/replica.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "pbft/reply_cache.hpp"
#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace sbft::pbft {

namespace {
const Logger& logger() {
  static const Logger log{"pbft"};
  return log;
}
}  // namespace

Replica::Replica(Config config, ReplicaId id,
                 std::shared_ptr<const crypto::Signer> signer,
                 std::shared_ptr<const crypto::Verifier> verifier,
                 ClientDirectory clients, apps::AppFactory app_factory,
                 std::shared_ptr<net::VerifyCache> auth,
                 std::shared_ptr<runtime::runner::OrderedRunner> runner)
    : config_(config),
      id_(id),
      signer_(std::move(signer)),
      auth_(auth ? std::move(auth)
                 : std::make_shared<net::VerifyCache>(std::move(verifier))),
      clients_(clients),
      app_(app_factory()),
      runner_(runner ? std::move(runner)
                     : std::make_shared<runtime::runner::SyncOrderedRunner>()) {
  if (config_.auto_tune) {
    tuner_ = std::make_unique<runtime::runner::AutoTuner>(
        runtime::runner::TuningLimits{}, config_.batch_max,
        config_.pipeline_depth, config_.read_batch_max);
    config_.batch_max = tuner_->batch_max();
    config_.pipeline_depth = tuner_->pipeline_depth();
    config_.read_batch_max = tuner_->read_batch_max();
  }
}

// --------------------------------------------------------------- plumbing

net::Envelope Replica::make_signed(MsgType type, SharedBytes payload,
                                   principal::Id dst) const {
  net::Envelope env;
  env.src = principal::pbft_replica(id_);
  env.dst = dst;
  env.type = tag(type);
  env.payload = std::move(payload);
  net::sign_envelope(env, *signer_);
  return env;
}

void Replica::broadcast(MsgType type, SharedBytes payload, Out& out) const {
  // Sign once, then address a copy to every other replica.
  broadcast_env(make_signed(type, std::move(payload), 0), out);
}

void Replica::broadcast_env(const net::Envelope& env, Out& out) const {
  net::Envelope copy = env;
  for (ReplicaId r = 0; r < config_.n; ++r) {
    if (r == id_) continue;
    copy.dst = principal::pbft_replica(r);
    out.push_back(copy);
  }
}

bool Replica::in_window(SeqNum seq) const noexcept {
  return seq > last_stable_ && seq <= last_stable_ + config_.watermark_window;
}

void Replica::update_request_timer(Micros now) {
  (void)now;
  // The suspicion deadline tracks the OLDEST still-pending request, not
  // "time since last progress": a primary that keeps serving other clients
  // must still be suspected when one client's request starves. Arrivals
  // are recorded in order, so the front of the queue (skipping entries
  // whose request has since executed or been superseded) is the oldest.
  while (!pending_arrivals_.empty() &&
         !pending_requests_.contains(pending_arrivals_.front().second)) {
    pending_arrivals_.pop_front();
  }
  request_timer_ = pending_arrivals_.empty()
                       ? 0
                       : pending_arrivals_.front().first +
                             config_.request_timeout_us;
}

Digest Replica::executed_digest(SeqNum seq) const {
  const auto it = executed_digests_.find(seq);
  return it == executed_digests_.end() ? Digest{} : it->second;
}

Replica::GcFootprint Replica::gc_footprint() const {
  GcFootprint fp;
  fp.log_slots = log_.size();
  if (!log_.empty()) fp.min_log_seq = log_.begin()->first;
  fp.checkpoint_seqs = checkpoints_.size();
  if (!checkpoints_.empty()) fp.min_checkpoint_seq = checkpoints_.begin()->first;
  fp.snapshots = snapshots_.size();
  if (!snapshots_.empty()) fp.min_snapshot_seq = snapshots_.begin()->first;
  fp.view_change_views = view_changes_.size();
  if (!view_changes_.empty()) {
    fp.min_view_change_view = view_changes_.begin()->first;
  }
  fp.new_view_markers = new_view_sent_.size();
  fp.pending_requests = pending_requests_.size();
  fp.client_records = client_records_.size();
  for (const auto& [client, record] : client_records_) {
    if (record.has_reply) ++fp.cached_replies;
  }
  fp.runner_queue = runner_->queue_depth();
  fp.staged_replies = staged_out_.size();
  return fp;
}

// ---------------------------------------------------------- staged runner

void Replica::stage_reply(ClientId client, Timestamp ts, View view,
                          Bytes result) {
  // Parallel stage: build + MAC + serialize from captured copies only.
  // clients_.auth_key is a thread-safe sharded cache; nothing here may
  // reference client_records_ (gc_client_records strips bodies while work
  // is still in flight within the same engine call).
  runner_->submit([this, client, ts, view, result = std::move(result)]() mutable
                  -> runtime::runner::Epilogue {
    Reply reply;
    reply.view = view;
    reply.timestamp = ts;
    reply.client = client;
    reply.sender = id_;
    reply.result = std::move(result);
    const crypto::Key32 key = clients_.auth_key(client);
    const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                           reply.auth_input());
    reply.auth = Bytes(mac.bytes.begin(), mac.bytes.end());

    net::Envelope env;
    env.src = principal::pbft_replica(id_);
    env.dst = principal::client(client);
    env.type = tag(MsgType::Reply);
    env.payload = reply.serialize();
    // Ordered stage: queue in submission order on the engine thread.
    return [this, env = std::move(env)]() mutable {
      staged_out_.push_back(std::move(env));
    };
  });
}

void Replica::flush_runner(Out& out) {
  runner_->drain();
  if (staged_out_.empty()) return;
  out.insert(out.end(), std::make_move_iterator(staged_out_.begin()),
             std::make_move_iterator(staged_out_.end()));
  staged_out_.clear();
}

void Replica::observe_tuner(Micros now) {
  if (!tuner_) return;
  if (tuner_->observe(pending_requests_.size(), now)) {
    config_.batch_max = tuner_->batch_max();
    config_.pipeline_depth = tuner_->pipeline_depth();
    config_.read_batch_max = tuner_->read_batch_max();
  }
}

// ------------------------------------------------------------ entry points

std::vector<net::Envelope> Replica::handle(const net::Envelope& env,
                                           Micros now) {
  Out out;
  switch (static_cast<MsgType>(env.type)) {
    case MsgType::Request:
      on_request(env, now, out);
      break;
    case MsgType::ReadRequest:
      on_read_request(env, now, out);
      break;
    case MsgType::PrePrepare:
      on_pre_prepare(env, now, out);
      break;
    case MsgType::Prepare:
      on_prepare(env, now, out);
      break;
    case MsgType::Commit:
      on_commit(env, now, out);
      break;
    case MsgType::Checkpoint:
      on_checkpoint(env, now, out);
      break;
    case MsgType::ViewChange:
      on_view_change(env, now, out);
      break;
    case MsgType::NewView:
      on_new_view(env, now, out);
      break;
    case MsgType::StateRequest:
      on_state_request(env, out);
      break;
    case MsgType::StateResponse:
      on_state_response(env, now, out);
      break;
    case MsgType::StateChunkRequest:
      on_state_chunk_request(env, out);
      break;
    case MsgType::StateChunkResponse:
      on_state_chunk_response(env, now, out);
      break;
    default:
      break;  // unknown type: drop
  }
  flush_runner(out);
  return out;
}

std::vector<net::Envelope> Replica::tick(Micros now) {
  Out out;
  observe_tuner(now);
  if (!boot_probe_sent_) {
    boot_probe_sent_ = true;
    // Rebooted with no state: probe for the group's stable checkpoint.
    // Peers still at seq 0 ignore it; a peer ahead answers with its
    // certificate and the fetch starts. One shot — re-broadcasts are only
    // armed while a transfer is actually pending.
    if (last_stable_ == 0 && last_executed_ == 0 && !awaiting_state_) {
      send_state_request(now, out);
    }
  }
  if (batch_deadline_ != 0 && now >= batch_deadline_) {
    batch_deadline_ = 0;
    if (is_primary() && !in_view_change_) cut_batch(now, out);
  }
  if (!in_view_change_ && request_timer_ != 0 && now >= request_timer_) {
    request_timer_ = 0;
    logger().info() << "r" << id_ << " request timeout, view change to "
                    << (view_ + 1);
    start_view_change(view_ + 1, now, out);
  }
  if (in_view_change_ && view_change_timer_ != 0 &&
      now >= view_change_timer_) {
    start_view_change(pending_view_ + 1, now, out);
  }
  if (awaiting_state_) {
    if (fetcher_) {
      // Chunk-level retry/backoff lives in the fetcher: expired
      // assignments move to other peers here.
      emit_chunk_requests(fetcher_->pump(now), out);
    } else if (state_request_timer_ != 0 && now >= state_request_timer_) {
      send_state_request(now, out);
    }
  }
  flush_runner(out);
  return out;
}

std::optional<Micros> Replica::next_deadline() const {
  std::optional<Micros> next;
  const auto consider = [&next](Micros t) {
    if (t != 0 && (!next || t < *next)) next = t;
  };
  consider(batch_deadline_);
  if (!in_view_change_) consider(request_timer_);
  if (in_view_change_) consider(view_change_timer_);
  if (awaiting_state_) {
    if (fetcher_) {
      if (const auto d = fetcher_->next_deadline()) consider(*d);
    } else {
      consider(state_request_timer_);
    }
  }
  return next;
}

// ----------------------------------------------------------------- request

void Replica::on_request(const net::Envelope& env, Micros now, Out& out) {
  auto req = Request::deserialize(env.payload);
  if (!req) return;
  const crypto::Key32 key = clients_.auth_key(req->client);
  if (!crypto::hmac_verify(ByteView{key.data(), key.size()},
                           req->auth_input(), req->auth)) {
    return;  // unauthenticated client
  }

  // Lookup only — records are created at EXECUTION, never on arrival:
  // arrival-time creation would leak timing-dependent entries into the
  // checkpointed client table (and grow it without bound for clients whose
  // requests never commit).
  const auto rec_it = client_records_.find(req->client);
  if (rec_it != client_records_.end() &&
      req->timestamp <= rec_it->second.last_ts) {
    const ClientRecord& record = rec_it->second;
    // At-most-once: retransmit the cached reply for the latest request.
    // MAC + serialize run on the runner (copies captured — records may be
    // stripped before the prologue runs).
    if (req->timestamp == record.last_ts && record.has_reply) {
      stage_reply(req->client, record.last_ts, record.last_view,
                  record.last_result);
    }
    return;
  }

  const auto pending_key = std::make_pair(req->client, req->timestamp);
  const bool fresh = !pending_requests_.contains(pending_key);
  // Admission control: shed FRESH work past the cap before it creates
  // protocol state or arms a suspicion timer. Silence is the backpressure
  // signal — the client retransmits and retries admission. Retransmits of
  // already-admitted requests always pass (dropping those would turn
  // overload into a liveness failure).
  if (fresh && config_.admission_queue_cap != 0 &&
      pending_requests_.size() >= config_.admission_queue_cap) {
    ++admission_rejects_;
    return;
  }
  pending_requests_[pending_key] = *req;
  // Record the FIRST arrival only: a retransmit of a still-pending request
  // must not refresh its suspicion deadline (nor grow the queue).
  if (fresh) pending_arrivals_.emplace_back(now, pending_key);
  update_request_timer(now);
  observe_tuner(now);

  if (is_primary() && !in_view_change_) {
    if (pending_requests_.size() >= config_.batch_max) {
      cut_batch(now, out);
    } else if (config_.batch_max <= 1) {
      cut_batch(now, out);
    } else if (batch_deadline_ == 0) {
      batch_deadline_ = now + config_.batch_timeout_us;
    }
  }
}

void Replica::on_read_request(const net::Envelope& env, Micros now, Out& out) {
  if (!config_.read_path) {
    // Fast path disabled on this replica: the payload is a regular
    // serialized Request, so serve it through ordering instead. The client
    // accepts ordered Replies for an in-flight read, so mixed
    // configurations stay live.
    on_request(env, now, out);
    return;
  }
  auto req = Request::deserialize(env.payload);
  if (!req) return;
  const crypto::Key32 key = clients_.auth_key(req->client);
  if (!crypto::hmac_verify(ByteView{key.data(), key.size()},
                           req->auth_input(), req->auth)) {
    return;  // unauthenticated client
  }
  // Only operations the app declares read-only may bypass ordering; for
  // anything else the client's fallback timeout re-submits through the
  // ordered path.
  if (!app_->is_read_only(req->payload)) return;

  // Serve the read on the runner: execute_read is const against
  // last-executed state, which is stable for the rest of this engine call
  // (ordered mutations only happen on the engine thread, and the runner is
  // drained before handle() returns). No sequence number, no client record
  // (reads must not grow the at-most-once table), no timers.
  const ClientId client = req->client;
  const Timestamp ts = req->timestamp;
  const SeqNum exec_seq = last_executed_;
  const bool responder = config_.read_responder(client, ts) == id_;
  runner_->submit([this, client, ts, exec_seq, key, responder,
                   payload = req->payload]() -> runtime::runner::Epilogue {
    Bytes result = app_->execute_read(payload);
    ReadReply rr;
    rr.timestamp = ts;
    rr.client = client;
    rr.sender = id_;
    rr.exec_seq = exec_seq;
    rr.result_digest = crypto::sha256(result);
    if (responder) {
      rr.has_result = true;
      rr.result = std::move(result);
    }
    const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                           rr.auth_input());
    rr.auth = Bytes(mac.bytes.begin(), mac.bytes.end());

    net::Envelope renv;
    renv.src = principal::pbft_replica(id_);
    renv.dst = principal::client(client);
    renv.type = tag(MsgType::ReadReply);
    renv.payload = rr.serialize();
    return [this, renv = std::move(renv)]() mutable {
      ++reads_served_;
      staged_out_.push_back(std::move(renv));
    };
  });
}

SeqNum Replica::in_flight_batches() const noexcept {
  // Sequence numbers assigned but not yet executed locally. Saturating:
  // a state transfer can move last_executed_ past a backup's stale
  // next_seq_ before it ever leads a view.
  return next_seq_ > last_executed_ ? next_seq_ - last_executed_ : 0;
}

void Replica::cut_batch(Micros now, Out& out) {
  if (!is_primary() || in_view_change_ || pending_requests_.empty()) return;
  if (!in_window(next_seq_ + 1) ||
      !config_.pipeline_open(in_flight_batches())) {
    // Window full or pipeline at depth: requests stay buffered and the
    // gate flag re-triggers cutting on execution/stability progress.
    batch_gated_ = true;
    return;
  }
  batch_gated_ = false;
  RequestBatch batch;
  auto it = pending_requests_.begin();
  while (it != pending_requests_.end() &&
         batch.requests.size() < config_.batch_max) {
    const auto rec_it = client_records_.find(it->second.client);
    if (rec_it != client_records_.end() &&
        it->second.timestamp <= rec_it->second.last_ts) {
      it = pending_requests_.erase(it);  // stale
      continue;
    }
    batch.requests.push_back(it->second);
    it = pending_requests_.erase(it);
  }
  if (batch.empty()) return;

  PrePrepare pp;
  pp.view = view_;
  pp.seq = ++next_seq_;
  pp.batch = batch.serialize();
  pp.batch_digest = crypto::sha256(pp.batch);
  pp.sender = id_;

  Slot& s = slot(pp.seq);
  // Sign once; the stored copy is attested (we are the signer) and the
  // broadcast copies reuse the signature.
  net::Envelope ppe =
      make_signed(MsgType::PrePrepare, SharedBytes(pp.serialize()), 0);
  s.pre_prepare = pp;
  broadcast_env(ppe, out);
  s.pre_prepare_env = auth_->attest_own(std::move(ppe), *signer_);

  // Keep batching if more requests are queued and the pipeline has room.
  if (!pending_requests_.empty()) {
    if (pending_requests_.size() >= config_.batch_max ||
        config_.batch_max <= 1) {
      cut_batch(now, out);
    } else if (batch_deadline_ == 0) {
      batch_deadline_ = now + config_.batch_timeout_us;
    }
  }
  check_prepared(pp.seq, now, out);
}

// ------------------------------------------------------------- pre-prepare

void Replica::on_pre_prepare(const net::Envelope& env, Micros now, Out& out) {
  if (in_view_change_) return;
  auto pp = PrePrepare::deserialize(env.payload);
  if (!pp) return;
  if (pp->view != view_ || pp->sender != config_.primary(view_) ||
      pp->sender == id_ || !in_window(pp->seq)) {
    return;
  }
  auto verified = auth_->verify(env, principal::pbft_replica(pp->sender));
  if (!verified) return;
  if (crypto::sha256(pp->batch) != pp->batch_digest) return;
  auto batch = RequestBatch::deserialize(pp->batch);
  if (!batch) return;
  for (const auto& req : batch->requests) {
    const crypto::Key32 key = clients_.auth_key(req.client);
    if (!crypto::hmac_verify(ByteView{key.data(), key.size()},
                             req.auth_input(), req.auth)) {
      return;  // batch smuggles an unauthenticated request
    }
  }

  Slot& s = slot(pp->seq);
  if (s.pre_prepare) {
    // Conflicting pre-prepare from the primary is byzantine behaviour;
    // keep the first, the view-change timer handles the rest.
    return;
  }
  s.pre_prepare = *pp;
  s.pre_prepare_env = std::move(*verified);
  // Drop buffered prepares that do not match the accepted digest.
  std::erase_if(s.prepares, [&](const auto& kv) {
    return kv.second.first != pp->batch_digest;
  });

  Prepare prep;
  prep.view = pp->view;
  prep.seq = pp->seq;
  prep.batch_digest = pp->batch_digest;
  prep.sender = id_;
  // Serialize and sign the prepare once: the broadcast copies and the
  // stored own-vote all share the same frames.
  net::Envelope my_prepare =
      make_signed(MsgType::Prepare, SharedBytes(prep.serialize()), 0);
  broadcast_env(my_prepare, out);
  s.prepares.try_emplace(id_, prep.batch_digest,
                         auth_->attest_own(std::move(my_prepare), *signer_));

  check_prepared(pp->seq, now, out);
}

// ----------------------------------------------------------------- prepare

void Replica::on_prepare(const net::Envelope& env, Micros now, Out& out) {
  if (in_view_change_) return;
  auto prep = Prepare::deserialize(env.payload);
  if (!prep) return;
  if (prep->view != view_ || !in_window(prep->seq) ||
      prep->sender == config_.primary(view_) || prep->sender == id_ ||
      prep->sender >= config_.n) {
    return;
  }
  auto verified = auth_->verify(env, principal::pbft_replica(prep->sender));
  if (!verified) return;
  Slot& s = slot(prep->seq);
  if (s.pre_prepare && s.pre_prepare->batch_digest != prep->batch_digest) {
    return;  // vote for a different proposal
  }
  s.prepares.try_emplace(prep->sender, prep->batch_digest,
                         std::move(*verified));
  check_prepared(prep->seq, now, out);
}

void Replica::check_prepared(SeqNum seq, Micros now, Out& out) {
  Slot& s = slot(seq);
  if (s.prepared || !s.pre_prepare) return;
  const Digest& digest = s.pre_prepare->batch_digest;
  std::uint32_t matching = 0;
  for (const auto& [sender, vote] : s.prepares) {
    if (vote.first == digest) ++matching;
  }
  if (matching < config_.prepared_quorum()) return;
  s.prepared = true;

  Commit commit;
  commit.view = s.pre_prepare->view;
  commit.seq = seq;
  commit.batch_digest = digest;
  commit.sender = id_;
  // One serialization + one signature for own vote and broadcast alike.
  net::Envelope my_commit =
      make_signed(MsgType::Commit, SharedBytes(commit.serialize()), 0);
  broadcast_env(my_commit, out);
  s.commits.try_emplace(id_, digest,
                        auth_->attest_own(std::move(my_commit), *signer_));

  check_committed(seq, now, out);
}

// ------------------------------------------------------------------ commit

void Replica::on_commit(const net::Envelope& env, Micros now, Out& out) {
  if (in_view_change_) return;
  auto commit = Commit::deserialize(env.payload);
  if (!commit) return;
  if (commit->view != view_ || !in_window(commit->seq) ||
      commit->sender == id_ || commit->sender >= config_.n) {
    return;
  }
  auto verified = auth_->verify(env, principal::pbft_replica(commit->sender));
  if (!verified) return;
  Slot& s = slot(commit->seq);
  s.commits.try_emplace(commit->sender, commit->batch_digest,
                        std::move(*verified));
  check_committed(commit->seq, now, out);
}

void Replica::check_committed(SeqNum seq, Micros now, Out& out) {
  Slot& s = slot(seq);
  if (s.committed || !s.prepared || !s.pre_prepare) return;
  const Digest& digest = s.pre_prepare->batch_digest;
  std::uint32_t matching = 0;
  for (const auto& [sender, vote] : s.commits) {
    if (vote.first == digest) ++matching;
  }
  if (matching < config_.quorum()) return;
  s.committed = true;
  try_execute(now, out);
}

// --------------------------------------------------------------- execution

void Replica::try_execute(Micros now, Out& out) {
  const SeqNum executed_before = last_executed_;
  while (!awaiting_state_) {
    const SeqNum seq = last_executed_ + 1;
    const auto it = log_.find(seq);
    if (it == log_.end() || !it->second.committed || !it->second.pre_prepare) {
      break;
    }
    auto batch = RequestBatch::deserialize(it->second.pre_prepare->batch);
    if (!batch) break;  // cannot happen for validated slots
    execute_batch(seq, *batch, now, out);
    // Prune the at-most-once table at the execution point only: every
    // replica has executed the identical prefix here, so they evict the
    // identical records and checkpoint digests stay aligned.
    gc_client_records();
    executed_digests_[seq] = it->second.pre_prepare->batch_digest;
    last_executed_ = seq;
    maybe_checkpoint(seq, now, out);
  }
  // An execution slot freed: cut the next pipelined batch immediately.
  if (last_executed_ != executed_before && batch_gated_) {
    cut_batch(now, out);
  }
  // Recompute the suspicion deadline from the oldest STILL-pending
  // request: progress on other clients' batches must not shield a primary
  // that censors one client (the deadline moves only when the starved
  // request itself executes or is superseded).
  update_request_timer(now);
}

void Replica::execute_batch(SeqNum seq, const RequestBatch& batch, Micros now,
                            Out& out) {
  (void)seq;
  (void)now;
  (void)out;
  // Ordered-commit stage, inline on the engine thread: app mutations and
  // reply-cache updates happen in sequence order so checkpoint digests are
  // byte-identical to the serial path. Reply MAC/serialize — the dominant
  // per-request cost after execution — is staged on the runner, so request
  // i+1 executes here while request i's reply is MAC'd on a worker.
  for (const auto& req : batch.requests) {
    auto& record = client_records_[req.client];
    Bytes result;
    if (req.timestamp > record.last_ts) {
      result = app_->execute(req.payload);
      record.last_ts = req.timestamp;
      record.last_result = result;
      record.last_view = view_;
      record.has_reply = true;
      ++executed_requests_;
    } else if (req.timestamp == record.last_ts && record.has_reply) {
      result = record.last_result;  // duplicate: re-reply
    } else {
      continue;  // stale duplicate
    }
    pending_requests_.erase({req.client, req.timestamp});

    stage_reply(req.client, req.timestamp, view_, std::move(result));
  }
}

void Replica::gc_client_records() {
  strip_reply_cache(client_records_, config_.client_record_cap);
}

// -------------------------------------------------------------- checkpoint

Bytes Replica::protocol_snapshot() const {
  Writer w;
  w.bytes(app_->snapshot());
  w.u32(static_cast<std::uint32_t>(client_records_.size()));
  // std::map view of the unordered table for canonical ordering.
  std::map<ClientId, const ClientRecord*> ordered;
  for (const auto& [client, record] : client_records_) {
    ordered.emplace(client, &record);
  }
  for (const auto& [client, record] : ordered) {
    w.u32(client);
    w.u64(record->last_ts);
    w.bytes(record->last_result);
    w.u64(record->last_view);
    w.boolean(record->has_reply);
  }
  return std::move(w).take();
}

bool Replica::parse_client_records(
    Reader& r, std::unordered_map<ClientId, ClientRecord>& records) const {
  const std::uint32_t count = r.u32();
  if (r.failed() || count > 1'000'000) return false;
  for (std::uint32_t i = 0; i < count; ++i) {
    const ClientId client = r.u32();
    ClientRecord record;
    record.last_ts = r.u64();
    record.last_result = r.bytes();
    record.last_view = r.u64();
    record.has_reply = r.boolean();
    records.emplace(client, std::move(record));
  }
  return r.done();
}

bool Replica::restore_protocol_snapshot(ByteView data) {
  Reader r(data);
  const Bytes app_snapshot = r.bytes();
  if (r.failed()) return false;
  std::unordered_map<ClientId, ClientRecord> records;
  if (!parse_client_records(r, records)) return false;
  if (!app_->restore(app_snapshot)) return false;
  client_records_ = std::move(records);
  return true;
}

Digest Replica::snapshot_digest(ByteView snapshot) const {
  return snapshot_commitment(snapshot, config_.state_chunk_bytes);
}

void Replica::maybe_checkpoint(SeqNum seq, Micros now, Out& out) {
  if (config_.checkpoint_interval == 0 ||
      seq % config_.checkpoint_interval != 0) {
    return;
  }
  // Chunk + tree once; the certificate digest and every future chunk
  // response come from the same ChunkedSnapshot.
  ChunkedSnapshot snapshot(
      protocol_snapshot(),
      std::max<std::uint64_t>(config_.state_chunk_bytes, 1));
  Checkpoint cp;
  cp.seq = seq;
  cp.state_digest = snapshot.commitment();
  cp.sender = id_;
  snapshots_[seq] = std::move(snapshot);

  // Sign the checkpoint once; broadcast copies and the locally-processed
  // own vote share the frames and the memoized digest.
  const net::Envelope my_cp =
      make_signed(MsgType::Checkpoint, SharedBytes(cp.serialize()), 0);
  broadcast_env(my_cp, out);
  process_own_checkpoint(seq, my_cp, now, out);
}

void Replica::process_own_checkpoint(SeqNum seq, const net::Envelope& env,
                                     Micros now, Out& out) {
  auto cp = Checkpoint::deserialize(env.payload);
  if (!cp) return;
  auto& by_digest = checkpoints_[seq][cp->state_digest];
  by_digest.insert_or_assign(id_, auth_->attest_own(env, *signer_));
  if (by_digest.size() >= config_.quorum()) {
    std::vector<net::VerifiedEnvelope> proof;
    for (const auto& [sender, e] : by_digest) proof.push_back(e.clone());
    make_stable(seq, std::move(proof), now, out);
  }
}

void Replica::on_checkpoint(const net::Envelope& env, Micros now, Out& out) {
  auto cp = Checkpoint::deserialize(env.payload);
  if (!cp) return;
  if (cp->seq <= last_stable_ || cp->sender == id_ ||
      cp->sender >= config_.n) {
    return;
  }
  auto verified = auth_->verify(env, principal::pbft_replica(cp->sender));
  if (!verified) return;
  auto& by_digest = checkpoints_[cp->seq][cp->state_digest];
  by_digest.try_emplace(cp->sender, std::move(*verified));
  if (by_digest.size() >= config_.quorum()) {
    std::vector<net::VerifiedEnvelope> proof;
    for (const auto& [sender, e] : by_digest) proof.push_back(e.clone());
    make_stable(cp->seq, std::move(proof), now, out);
  }
}

void Replica::make_stable(SeqNum seq, std::vector<net::VerifiedEnvelope> proof,
                          Micros now, Out& out) {
  if (seq <= last_stable_) return;
  const SeqNum prev_stable = last_stable_;
  last_stable_ = seq;
  stable_proof_ = std::move(proof);

  log_.erase(log_.begin(), log_.upper_bound(seq));
  checkpoints_.erase(checkpoints_.begin(), checkpoints_.upper_bound(seq));
  // Retain the PREVIOUS stable snapshot alongside the new one: a peer
  // mid-fetch of it gets one checkpoint interval of hysteresis to finish
  // instead of restarting from chunk 0 every time the group checkpoints —
  // without this, recovery livelocks whenever a transfer takes longer
  // than one checkpoint period.
  for (auto it = snapshots_.begin(); it != snapshots_.end();) {
    if (it->first < prev_stable) {
      it = snapshots_.erase(it);
    } else {
      ++it;
    }
  }

  if (last_executed_ < seq &&
      (!awaiting_state_ || (fetcher_ && fetcher_->seq() < prev_stable) ||
       (awaiting_state_ && !fetcher_ && config_.streaming_state))) {
    // The group moved past us — fetch the newer checkpointed state. An
    // active fetch is retargeted only once its snapshot ages out of the
    // peers' retention window (older than the previous stable seq);
    // inside the window it completes, and finish_streaming_restore
    // chains the follow-up fetch if we are still behind.
    begin_state_fetch(seq, now, out);
  }
  // The watermark window advanced: release a batch the window was gating.
  if (batch_gated_) cut_batch(now, out);
}

// ------------------------------------------------------------ state trans.

void Replica::begin_state_fetch(SeqNum seq, Micros now, Out& out) {
  awaiting_state_ = true;
  awaited_state_seq_ = seq;
  if (!config_.streaming_state) {
    state_request_backoff_ = 0;
    send_state_request(now, out);
    return;
  }
  // The expected manifest commitment comes from our own stable
  // certificate — 2f+1 signatures strong before any peer is consulted.
  Digest commitment;
  if (!stable_proof_.empty()) {
    if (const auto cp =
            Checkpoint::deserialize(stable_proof_.front().envelope().payload)) {
      commitment = cp->state_digest;
    }
  }
  if (commitment.is_zero()) {
    // No usable certificate (cannot happen for quorum-made checkpoints) —
    // fall back to the announce path.
    state_request_backoff_ = 0;
    send_state_request(now, out);
    return;
  }
  if (fetcher_) accumulate_fetcher_stats();
  ChunkFetcher::Config fc;
  fc.n = config_.n;
  fc.self = id_;
  fc.chunks_per_request = config_.state_chunks_per_request;
  fc.inflight_max_bytes = config_.state_inflight_max_bytes;
  fc.chunk_timeout_us = config_.state_chunk_timeout_us;
  fetcher_ = std::make_unique<ChunkFetcher>(fc, seq, commitment, now);
  applier_ = std::make_unique<SnapshotApplier>(app_.get());
  state_request_timer_ = 0;
  logger().info() << "r" << id_ << " streaming state fetch toward seq "
                  << seq;
  emit_chunk_requests(fetcher_->pump(now), out);
}

void Replica::send_state_request(Micros now, Out& out) {
  StateRequest sr;
  sr.seq = awaited_state_seq_;
  sr.sender = id_;
  broadcast(MsgType::StateRequest, SharedBytes(sr.serialize()), out);
  ++xfer_stats_.state_requests_sent;
  // Exponential backoff between re-broadcasts: a replica stuck behind a
  // stable checkpoint asks again, but never storms the group.
  const Micros min_b = std::max<Micros>(config_.state_request_backoff_min_us, 1);
  state_request_backoff_ =
      state_request_backoff_ == 0
          ? min_b
          : std::min(state_request_backoff_ * 2,
                     std::max<Micros>(config_.state_request_backoff_max_us,
                                      min_b));
  state_request_timer_ = now + state_request_backoff_;
}

void Replica::emit_chunk_requests(
    const std::vector<ChunkFetcher::Request>& requests, Out& out) {
  for (const auto& req : requests) {
    StateChunkRequest cr;
    cr.seq = fetcher_->seq();
    cr.first_chunk = req.first_chunk;
    cr.count = req.count;
    cr.sender = id_;
    out.push_back(make_signed(MsgType::StateChunkRequest,
                              SharedBytes(cr.serialize()),
                              principal::pbft_replica(req.peer)));
    ++xfer_stats_.chunk_requests_sent;
  }
}

void Replica::accumulate_fetcher_stats() {
  if (!fetcher_) return;
  const auto& s = fetcher_->stats();
  xfer_stats_.chunks_accepted += s.chunks_accepted;
  xfer_stats_.chunks_rejected += s.chunks_rejected;
  xfer_stats_.chunks_duplicate += s.chunks_duplicate;
  xfer_stats_.refetches += s.refetches;
  xfer_stats_.chunk_bytes_received += s.bytes_received;
  xfer_stats_.peak_inflight_bytes =
      std::max(xfer_stats_.peak_inflight_bytes, s.peak_inflight_bytes);
}

Replica::StateTransferStats Replica::state_transfer_stats() const {
  StateTransferStats stats = xfer_stats_;
  if (fetcher_) {
    const auto& s = fetcher_->stats();
    stats.chunks_accepted += s.chunks_accepted;
    stats.chunks_rejected += s.chunks_rejected;
    stats.chunks_duplicate += s.chunks_duplicate;
    stats.refetches += s.refetches;
    stats.chunk_bytes_received += s.bytes_received;
    stats.peak_inflight_bytes =
        std::max(stats.peak_inflight_bytes, s.peak_inflight_bytes);
  }
  return stats;
}

void Replica::abandon_transfer(Micros now) {
  accumulate_fetcher_stats();
  if (applier_) applier_->abort();
  fetcher_.reset();
  applier_.reset();
  // Still behind: fall back to a fresh announce (rate-limited).
  state_request_backoff_ = 0;
  state_request_timer_ = now + 1;
}

void Replica::drain_fetcher(Micros now, Out& out) {
  for (Bytes& chunk : fetcher_->take_ready()) {
    if (!applier_->feed(chunk)) {
      logger().info() << "r" << id_ << " snapshot apply failed, restarting";
      abandon_transfer(now);
      return;
    }
  }
  if (fetcher_->complete()) {
    finish_streaming_restore(now, out);
  } else {
    emit_chunk_requests(fetcher_->pump(now), out);
  }
}

void Replica::finish_streaming_restore(Micros now, Out& out) {
  const SeqNum seq = fetcher_->seq();
  // Validate the protocol tail BEFORE committing the app: a malformed
  // tail must not leave the app restored but the client table stale.
  std::unordered_map<ClientId, ClientRecord> records;
  Reader tail(applier_->tail());
  if (!applier_->app_complete() || !parse_client_records(tail, records) ||
      !applier_->finish()) {
    logger().info() << "r" << id_ << " streaming restore failed at seq "
                    << seq;
    abandon_transfer(now);
    return;
  }
  client_records_ = std::move(records);
  last_executed_ = seq;
  log_.erase(log_.begin(), log_.upper_bound(seq));
  awaiting_state_ = false;
  // Deliberately NOT materializing snapshots_[seq]: the transfer streamed
  // into the app precisely to avoid holding snapshot-sized buffers; this
  // replica serves peers from its next own checkpoint.
  accumulate_fetcher_stats();
  ++xfer_stats_.transfers_completed;
  fetcher_.reset();
  applier_.reset();
  state_request_timer_ = 0;
  logger().info() << "r" << id_ << " streaming state transfer to seq "
                  << seq;
  try_execute(now, out);
  if (last_executed_ < last_stable_) {
    // The group checkpointed again while we streamed: chain straight into
    // a fetch of the newer stable state instead of waiting for the next
    // certificate to arrive (it may never, once traffic quiesces).
    begin_state_fetch(last_stable_, now, out);
  }
}

void Replica::on_state_request(const net::Envelope& env, Out& out) {
  auto sr = StateRequest::deserialize(env.payload);
  if (!sr || sr->sender >= config_.n || sr->sender == id_) return;
  if (!auth_->check(env, principal::pbft_replica(sr->sender))) return;
  // Serve our latest stable state whenever it would help the requester
  // (sr->seq may trail last_stable_: the requester learns the newer
  // checkpoint from the attached certificate).
  if (last_stable_ == 0 || sr->seq > last_stable_) return;
  const auto it = snapshots_.find(last_stable_);
  if (it == snapshots_.end()) return;

  if (config_.streaming_state) {
    // Announce: chunk 0 plus the checkpoint certificate. The requester
    // adopts the checkpoint, verifies the manifest commitment against it,
    // and fetches the rest in ranges from everyone.
    StateChunkResponse resp;
    resp.seq = last_stable_;
    if (!it->second.fill(0, resp)) return;
    resp.checkpoint_proof = net::unwrap(stable_proof_);
    resp.sender = id_;
    ++xfer_stats_.chunks_served;
    out.push_back(make_signed(MsgType::StateChunkResponse,
                              SharedBytes(resp.serialize()),
                              principal::pbft_replica(sr->sender)));
    return;
  }
  StateResponse resp;
  resp.seq = last_stable_;
  resp.snapshot = it->second.data();
  resp.checkpoint_proof = net::unwrap(stable_proof_);
  resp.sender = id_;
  out.push_back(make_signed(MsgType::StateResponse,
                            SharedBytes(resp.serialize()),
                            principal::pbft_replica(sr->sender)));
}

void Replica::on_state_chunk_request(const net::Envelope& env, Out& out) {
  if (!config_.streaming_state) return;
  auto cr = StateChunkRequest::deserialize(env.payload);
  if (!cr || cr->sender >= config_.n || cr->sender == id_) return;
  if (!auth_->check(env, principal::pbft_replica(cr->sender))) return;
  // Serve any retained snapshot (the latest stable and, for hysteresis,
  // the previous one) — never anything claiming to be ahead of us.
  if (cr->seq > last_stable_) return;
  const auto it = snapshots_.find(cr->seq);
  if (it == snapshots_.end()) return;
  const std::uint64_t chunk_count = it->second.manifest().chunk_count();
  const std::uint64_t end =
      std::min<std::uint64_t>(cr->first_chunk + cr->count, chunk_count);
  for (std::uint64_t index = cr->first_chunk; index < end; ++index) {
    StateChunkResponse resp;
    resp.seq = cr->seq;
    if (!it->second.fill(index, resp)) break;
    resp.sender = id_;
    ++xfer_stats_.chunks_served;
    out.push_back(make_signed(MsgType::StateChunkResponse,
                              SharedBytes(resp.serialize()),
                              principal::pbft_replica(cr->sender)));
  }
}

void Replica::on_state_chunk_response(const net::Envelope& env, Micros now,
                                      Out& out) {
  if (!config_.streaming_state) return;
  auto resp = StateChunkResponse::deserialize(env.payload);
  if (!resp || resp->sender >= config_.n || resp->sender == id_) return;
  if (!auth_->check(env, principal::pbft_replica(resp->sender))) return;

  // Announce adoption: a certificate for a checkpoint ahead of ours lets
  // a rebooted replica (or one whose target went stale) latch on. The
  // proof is validated against the manifest commitment — the usual
  // make_stable path then starts/retargets the fetch.
  if (!resp->checkpoint_proof.empty() && resp->seq > last_stable_ &&
      last_executed_ < resp->seq) {
    std::vector<net::VerifiedEnvelope> proof = verified_checkpoint_proof(
        resp->checkpoint_proof, resp->seq, resp->manifest().commitment());
    if (proof.size() >= config_.quorum()) {
      make_stable(resp->seq, std::move(proof), now, out);
    }
  }

  if (!awaiting_state_ || !fetcher_ || resp->seq != fetcher_->seq()) return;
  switch (fetcher_->on_chunk(*resp, now)) {
    case ChunkFetcher::ChunkResult::Accepted:
      drain_fetcher(now, out);
      break;
    case ChunkFetcher::ChunkResult::Rejected:
      // The fetcher struck the sender; re-plan (possibly re-assigning the
      // poisoned range to another peer right away).
      emit_chunk_requests(fetcher_->pump(now), out);
      break;
    case ChunkFetcher::ChunkResult::Duplicate:
    case ChunkFetcher::ChunkResult::Ignored:
      break;
  }
}

void Replica::on_state_response(const net::Envelope& env, Micros now,
                                Out& out) {
  if (!awaiting_state_) return;
  // The streaming path never installs monolithic snapshots — a Byzantine
  // peer must not be able to bypass chunked verification (and its bounded
  // memory) by volunteering a full StateResponse.
  if (config_.streaming_state) return;
  auto resp = StateResponse::deserialize(env.payload);
  if (!resp || resp->sender >= config_.n) return;
  if (!auth_->check(env, principal::pbft_replica(resp->sender))) return;
  if (resp->seq < awaited_state_seq_ || resp->seq <= last_executed_) return;

  // Validate the checkpoint certificate against the snapshot digest,
  // keeping only the envelopes that actually verify.
  std::vector<net::VerifiedEnvelope> proof = verified_checkpoint_proof(
      resp->checkpoint_proof, resp->seq, snapshot_digest(resp->snapshot));
  if (proof.size() < config_.quorum()) return;

  if (!restore_protocol_snapshot(resp->snapshot)) return;
  last_executed_ = resp->seq;
  if (resp->seq > last_stable_) {
    last_stable_ = resp->seq;
    stable_proof_ = std::move(proof);
  }
  snapshots_[resp->seq] = ChunkedSnapshot(
      std::move(resp->snapshot),
      std::max<std::uint64_t>(config_.state_chunk_bytes, 1));
  log_.erase(log_.begin(), log_.upper_bound(resp->seq));
  awaiting_state_ = false;
  state_request_timer_ = 0;
  state_request_backoff_ = 0;
  logger().info() << "r" << id_ << " state transfer to seq " << resp->seq;
  try_execute(now, out);
}

// ------------------------------------------------------------- view change

void Replica::start_view_change(View target, Micros now, Out& out) {
  if (target <= view_) return;
  in_view_change_ = true;
  pending_view_ = target;
  view_change_timer_ = now + config_.view_change_retry_us;
  batch_deadline_ = 0;

  ViewChange vc;
  vc.new_view = target;
  vc.last_stable = last_stable_;
  vc.checkpoint_proof = net::unwrap(stable_proof_);
  for (const auto& [seq, s] : log_) {
    if (!s.prepared || !s.pre_prepare || seq <= last_stable_) continue;
    PreparedProof proof;
    proof.pre_prepare = s.pre_prepare_env->envelope();
    for (const auto& [sender, vote] : s.prepares) {
      if (vote.first != s.pre_prepare->batch_digest) continue;
      proof.prepares.push_back(vote.second.envelope());
      if (proof.prepares.size() >= config_.prepared_quorum()) break;
    }
    vc.prepared.push_back(std::move(proof));
  }
  vc.sender = id_;

  // Serialize and sign the view change once for broadcast + own record.
  net::Envelope my_vc =
      make_signed(MsgType::ViewChange, SharedBytes(vc.serialize()), 0);
  broadcast_env(my_vc, out);
  view_changes_[target].insert_or_assign(
      id_, auth_->attest_own(std::move(my_vc), *signer_));
  maybe_send_new_view(target, now, out);
}

bool Replica::validate_prepared_proof(const PreparedProof& proof, SeqNum& seq,
                                      View& view, Digest& digest,
                                      Bytes& batch) const {
  auto pp = PrePrepare::deserialize(proof.pre_prepare.payload);
  if (!pp || pp->sender != config_.primary(pp->view) ||
      pp->sender >= config_.n) {
    return false;
  }
  if (!auth_->check(proof.pre_prepare, principal::pbft_replica(pp->sender))) {
    return false;
  }
  if (crypto::sha256(pp->batch) != pp->batch_digest) return false;
  if (!RequestBatch::deserialize(pp->batch)) return false;

  std::map<ReplicaId, bool> distinct;
  for (const auto& pe : proof.prepares) {
    auto prep = Prepare::deserialize(pe.payload);
    if (!prep || prep->view != pp->view || prep->seq != pp->seq ||
        prep->batch_digest != pp->batch_digest ||
        prep->sender == pp->sender || prep->sender >= config_.n) {
      continue;
    }
    if (!auth_->check(pe, principal::pbft_replica(prep->sender))) continue;
    distinct[prep->sender] = true;
  }
  if (distinct.size() < config_.prepared_quorum()) return false;

  seq = pp->seq;
  view = pp->view;
  digest = pp->batch_digest;
  batch = pp->batch;
  return true;
}

std::optional<net::VerifiedEnvelope> Replica::validate_view_change(
    const net::Envelope& env, ViewChange& out_vc) const {
  auto vc = ViewChange::deserialize(env.payload);
  if (!vc || vc->sender >= config_.n) return std::nullopt;
  auto verified = auth_->verify(env, principal::pbft_replica(vc->sender));
  if (!verified) return std::nullopt;
  if (vc->last_stable > 0 &&
      verified_checkpoint_proof(vc->checkpoint_proof, vc->last_stable)
              .size() < config_.quorum()) {
    return std::nullopt;
  }
  for (const auto& proof : vc->prepared) {
    SeqNum seq{};
    View view{};
    Digest digest;
    Bytes batch;
    if (!validate_prepared_proof(proof, seq, view, digest, batch)) {
      return std::nullopt;
    }
    if (seq <= vc->last_stable ||
        seq > vc->last_stable + config_.watermark_window) {
      return std::nullopt;
    }
  }
  out_vc = std::move(*vc);
  return verified;
}

void Replica::on_view_change(const net::Envelope& env, Micros now, Out& out) {
  ViewChange vc;
  auto verified = validate_view_change(env, vc);
  if (!verified) return;
  if (vc.new_view <= view_) return;
  view_changes_[vc.new_view].insert_or_assign(vc.sender,
                                              std::move(*verified));

  // Liveness rule: if f+1 replicas are already ahead, join the smallest
  // such view even without a local timeout.
  if (!in_view_change_ || vc.new_view > pending_view_) {
    std::map<ReplicaId, View> ahead;
    for (const auto& [target, senders] : view_changes_) {
      if (target <= view_) continue;
      for (const auto& [sender, e] : senders) {
        const auto it = ahead.find(sender);
        if (it == ahead.end() || target < it->second) {
          ahead[sender] = target;
        }
      }
    }
    if (ahead.size() >= config_.f + 1) {
      View smallest = 0;
      for (const auto& [sender, target] : ahead) {
        if (smallest == 0 || target < smallest) smallest = target;
      }
      if (!in_view_change_ || smallest > pending_view_) {
        const View base = in_view_change_ ? pending_view_ : view_;
        if (smallest > base) start_view_change(smallest, now, out);
      }
    }
  }
  maybe_send_new_view(vc.new_view, now, out);
}

std::optional<Replica::NewViewPlan> Replica::compute_new_view_plan(
    const std::vector<net::Envelope>& view_change_envs) const {
  NewViewPlan plan;
  struct Best {
    View view;
    Digest digest;
    Bytes batch;
  };
  std::map<SeqNum, Best> best;
  for (const auto& env : view_change_envs) {
    auto vc = ViewChange::deserialize(env.payload);
    if (!vc) return std::nullopt;
    plan.min_s = std::max(plan.min_s, vc->last_stable);
    for (const auto& proof : vc->prepared) {
      auto pp = PrePrepare::deserialize(proof.pre_prepare.payload);
      if (!pp) return std::nullopt;
      plan.max_s = std::max(plan.max_s, pp->seq);
      const auto it = best.find(pp->seq);
      if (it == best.end() || pp->view > it->second.view) {
        best[pp->seq] = Best{pp->view, pp->batch_digest, pp->batch};
      }
    }
  }
  if (plan.max_s < plan.min_s) plan.max_s = plan.min_s;
  const Bytes null_batch = RequestBatch{}.serialize();
  const Digest null_digest = crypto::sha256(null_batch);
  for (SeqNum seq = plan.min_s + 1; seq <= plan.max_s; ++seq) {
    const auto it = best.find(seq);
    if (it != best.end()) {
      plan.proposals[seq] = {it->second.digest, it->second.batch};
    } else {
      plan.proposals[seq] = {null_digest, null_batch};
    }
  }
  return plan;
}

void Replica::maybe_send_new_view(View target, Micros now, Out& out) {
  if (config_.primary(target) != id_ || new_view_sent_[target]) return;
  const auto it = view_changes_.find(target);
  if (it == view_changes_.end() || it->second.size() < config_.quorum()) {
    return;
  }
  std::vector<net::Envelope> vc_envs;
  for (const auto& [sender, env] : it->second) {
    vc_envs.push_back(env.envelope());
    if (vc_envs.size() >= config_.quorum()) break;
  }
  auto plan = compute_new_view_plan(vc_envs);
  if (!plan) return;
  new_view_sent_[target] = true;

  NewView nv;
  nv.new_view = target;
  nv.view_changes = vc_envs;
  for (const auto& [seq, proposal] : plan->proposals) {
    PrePrepare pp;
    pp.view = target;
    pp.seq = seq;
    pp.batch_digest = proposal.first;
    pp.batch = proposal.second;
    pp.sender = id_;
    nv.pre_prepares.push_back(
        make_signed(MsgType::PrePrepare, SharedBytes(pp.serialize()), 0));
  }
  nv.sender = id_;
  broadcast(MsgType::NewView, SharedBytes(nv.serialize()), out);
  logger().info() << "r" << id_ << " sends NewView " << target;
  std::vector<net::VerifiedEnvelope> own_pps;
  own_pps.reserve(nv.pre_prepares.size());
  for (const auto& ppe : nv.pre_prepares) {
    own_pps.push_back(auth_->attest_own(ppe, *signer_));
  }
  enter_view(target, own_pps, plan->min_s, now, out);
}

void Replica::on_new_view(const net::Envelope& env, Micros now, Out& out) {
  auto nv = NewView::deserialize(env.payload);
  if (!nv) return;
  if (nv->new_view <= view_ || nv->sender != config_.primary(nv->new_view)) {
    return;
  }
  if (!auth_->check(env, principal::pbft_replica(nv->sender))) return;
  // Validate the 2f+1 view-change certificate.
  std::map<ReplicaId, bool> distinct;
  for (const auto& vce : nv->view_changes) {
    ViewChange vc;
    if (!validate_view_change(vce, vc)) return;
    if (vc.new_view != nv->new_view) return;
    distinct[vc.sender] = true;
  }
  if (distinct.size() < config_.quorum()) return;

  // Recompute the new-view proposals and insist on an exact match.
  auto plan = compute_new_view_plan(nv->view_changes);
  if (!plan) return;
  if (nv->pre_prepares.size() != plan->proposals.size()) return;
  std::vector<net::VerifiedEnvelope> new_pps;
  new_pps.reserve(nv->pre_prepares.size());
  for (const auto& ppe : nv->pre_prepares) {
    auto pp = PrePrepare::deserialize(ppe.payload);
    if (!pp || pp->view != nv->new_view || pp->sender != nv->sender) return;
    auto verified = auth_->verify(ppe, principal::pbft_replica(pp->sender));
    if (!verified) return;
    const auto it = plan->proposals.find(pp->seq);
    if (it == plan->proposals.end() || it->second.first != pp->batch_digest) {
      return;
    }
    if (crypto::sha256(pp->batch) != pp->batch_digest) return;
    new_pps.push_back(std::move(*verified));
  }

  // Adopt the highest stable checkpoint proven inside the view changes.
  if (plan->min_s > last_stable_) {
    for (const auto& vce : nv->view_changes) {
      auto vc = ViewChange::deserialize(vce.payload);
      if (vc && vc->last_stable == plan->min_s) {
        make_stable(plan->min_s,
                    verified_checkpoint_proof(vc->checkpoint_proof,
                                              plan->min_s),
                    now, out);
        break;
      }
    }
  }
  enter_view(nv->new_view, new_pps, plan->min_s, now, out);
}

std::vector<net::VerifiedEnvelope> Replica::verified_checkpoint_proof(
    const std::vector<net::Envelope>& proof, SeqNum seq,
    std::optional<Digest> expected_digest) const {
  std::vector<net::VerifiedEnvelope> out;
  std::optional<Digest> digest = expected_digest;
  std::map<ReplicaId, bool> seen;
  for (const auto& cpe : proof) {
    auto cp = Checkpoint::deserialize(cpe.payload);
    if (!cp || cp->seq != seq || cp->sender >= config_.n) continue;
    if (digest && cp->state_digest != *digest) continue;
    auto verified = auth_->verify(cpe, principal::pbft_replica(cp->sender));
    if (!verified) continue;
    digest = cp->state_digest;
    if (seen.emplace(cp->sender, true).second) {
      out.push_back(std::move(*verified));
    }
  }
  return out;
}

void Replica::enter_view(
    View v, const std::vector<net::VerifiedEnvelope>& new_pre_prepares,
    SeqNum min_s, Micros now, Out& out) {
  view_ = v;
  in_view_change_ = false;
  pending_view_ = v;
  view_change_timer_ = 0;
  batch_gated_ = false;
  // PBFT restarts request timers when a view installs: every pending
  // request gets a fresh grant measured from the new view's start (or an
  // installed view would instantly re-expire on old arrivals).
  pending_arrivals_.clear();
  for (const auto& [key, req] : pending_requests_) {
    pending_arrivals_.emplace_back(now, key);
  }
  update_request_timer(now);
  log_.clear();
  // Drop view-change bookkeeping for views at or below the one installed —
  // on_view_change ignores targets <= view_, so these entries (including
  // the sent-NewView markers) can never be consulted again.
  view_changes_.erase(view_changes_.begin(),
                      view_changes_.upper_bound(v));
  new_view_sent_.erase(new_view_sent_.begin(), new_view_sent_.upper_bound(v));

  SeqNum max_seq = std::max(min_s, last_stable_);
  for (const auto& ppe : new_pre_prepares) {
    auto pp = PrePrepare::deserialize(ppe.envelope().payload);
    if (!pp) continue;
    max_seq = std::max(max_seq, pp->seq);
    if (pp->seq <= last_stable_) continue;

    Slot& s = slot(pp->seq);
    s.pre_prepare = *pp;
    s.pre_prepare_env = ppe.clone();
    if (!is_primary()) {
      Prepare prep;
      prep.view = v;
      prep.seq = pp->seq;
      prep.batch_digest = pp->batch_digest;
      prep.sender = id_;
      net::Envelope my_prepare =
          make_signed(MsgType::Prepare, SharedBytes(prep.serialize()), 0);
      broadcast_env(my_prepare, out);
      s.prepares.try_emplace(
          id_, prep.batch_digest,
          auth_->attest_own(std::move(my_prepare), *signer_));
    }
    check_prepared(pp->seq, now, out);
  }
  next_seq_ = max_seq;
  logger().info() << "r" << id_ << " entered view " << v << " (min_s=" << min_s
                  << ", next_seq=" << next_seq_ << ")";

  // Re-propose buffered client requests in the new view.
  if (is_primary() && !pending_requests_.empty()) {
    cut_batch(now, out);
  }
}

}  // namespace sbft::pbft
