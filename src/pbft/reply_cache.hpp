// Bounded per-client reply-cache maintenance, shared by the PBFT replica
// and the SplitBFT Execution compartment (both keep a ClientRecord-shaped
// at-most-once table with `last_ts`, `last_result`, `has_reply`).
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace sbft::pbft {

/// Strips cached reply BODIES down to `cap` retained replies, oldest
/// timestamps first (ties by client id — a total order, so every replica
/// prunes the identical set at the same execution point and checkpoint
/// digests stay aligned). Records themselves are never erased: the
/// (client, last_ts) at-most-once floor survives stripping, so an old
/// timestamp can never re-execute — which would both break exactly-once
/// semantics and, in SplitBFT, re-seal a different result under an
/// already-used reply AEAD nonce. A stale retransmit of a stripped reply
/// simply goes unanswered; the client's retry machinery owns recovery.
/// `cap` = 0 disables stripping.
template <typename RecordMap>
void strip_reply_cache(RecordMap& records, std::size_t cap) {
  if (cap == 0) return;
  std::vector<std::pair<Timestamp, ClientId>> cached;
  cached.reserve(records.size());
  for (const auto& [client, record] : records) {
    if (record.has_reply) cached.emplace_back(record.last_ts, client);
  }
  if (cached.size() <= cap) return;
  std::sort(cached.begin(), cached.end());
  const std::size_t excess = cached.size() - cap;
  for (std::size_t i = 0; i < excess; ++i) {
    auto& record = records.at(cached[i].second);
    record.has_reply = false;
    record.last_result.clear();
    record.last_result.shrink_to_fit();
  }
}

}  // namespace sbft::pbft
