// PBFT client engine (closed-loop, one outstanding request).
//
// Broadcasts authenticated requests to all replicas, accepts a result once
// f+1 replicas returned matching authenticated replies, and retransmits on
// timeout (which is also what eventually triggers a view change when the
// primary is faulty).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/types.hpp"
#include "net/message.hpp"
#include "pbft/client_directory.hpp"
#include "pbft/config.hpp"
#include "pbft/messages.hpp"

namespace sbft::pbft {

class Client {
 public:
  /// Maps a replica index to the principal requests are addressed to —
  /// lets the same client engine drive PBFT and the hybrid baseline.
  using ReplicaPrincipalFn = principal::Id (*)(ReplicaId);

  Client(Config config, ClientId id, const ClientDirectory& directory,
         Micros retry_timeout_us = 1'000'000,
         ReplicaPrincipalFn replica_principal = &principal::pbft_replica);

  /// Starts a new operation. Returns the Request envelopes to broadcast.
  /// Must not be called while another operation is in flight.
  [[nodiscard]] std::vector<net::Envelope> submit(Bytes operation, Micros now);

  /// Processes a Reply. Returns the result once f+1 matching replies arrived
  /// for the in-flight request (exactly once per operation).
  [[nodiscard]] std::optional<Bytes> on_reply(const net::Envelope& env);

  /// Retransmits the in-flight request if the retry timer expired.
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now);

  [[nodiscard]] std::optional<Micros> next_deadline() const;
  [[nodiscard]] bool in_flight() const noexcept { return in_flight_; }
  [[nodiscard]] ClientId id() const noexcept { return id_; }
  [[nodiscard]] Timestamp current_timestamp() const noexcept {
    return timestamp_;
  }

 private:
  [[nodiscard]] std::vector<net::Envelope> broadcast_request() const;

  Config config_;
  ClientId id_;
  crypto::Key32 auth_key_;
  Micros retry_timeout_us_;
  ReplicaPrincipalFn replica_principal_;

  Timestamp timestamp_{0};
  Bytes operation_;
  Request request_;
  bool in_flight_{false};
  Micros retry_deadline_{0};
  // result bytes -> replicas that returned it.
  std::map<Bytes, std::set<ReplicaId>> votes_;
};

}  // namespace sbft::pbft
