// PBFT client engine (closed-loop, one outstanding request).
//
// Broadcasts authenticated requests to all replicas, accepts a result once
// f+1 replicas returned matching authenticated replies, and retransmits on
// timeout (which is also what eventually triggers a view change when the
// primary is faulty).
//
// Read fast path (Config::read_path): read-only operations are broadcast
// as ReadRequest and served by every replica against its last-executed
// state in a single round. The client accepts once 2f+1 replies match on
// (result digest, executed sequence number) AND the designated responder's
// full value hashes to that digest. On a mismatch among all n replies or
// on the fallback timeout the identical request bytes are re-broadcast
// through the ordered path. Ordered operations wait for 2f+1 matching
// replies (instead of f+1) while the read path is on, so an acknowledged
// write is always visible to at least one correct voter of any read
// quorum — linearizability survives concurrent writes, view changes and
// byzantine read replies.
//
// Authenticator caveat (inherited from the MAC model): replies carry HMACs
// under the per-CLIENT key that every replica shares (ClientDirectory), so
// reply votes distinguish senders by the claimed sender field, checked
// against the envelope source. As at seed for ordered replies, a transport
// that lets a replica spoof another replica's source identity weakens the
// reply/read quorums to what per-(client, replica) keys would restore.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/types.hpp"
#include "net/message.hpp"
#include "pbft/client_directory.hpp"
#include "pbft/config.hpp"
#include "pbft/messages.hpp"

namespace sbft::pbft {

class Client {
 public:
  /// Maps a replica index to the principal requests are addressed to —
  /// lets the same client engine drive PBFT and the hybrid baseline.
  using ReplicaPrincipalFn = principal::Id (*)(ReplicaId);

  Client(Config config, ClientId id, const ClientDirectory& directory,
         Micros retry_timeout_us = 1'000'000,
         ReplicaPrincipalFn replica_principal = &principal::pbft_replica);

  /// Starts a new operation. Returns the Request envelopes to broadcast.
  /// Must not be called while another operation is in flight. With
  /// `read_only` set (and Config::read_path on) the operation takes the
  /// single-round read fast path first.
  [[nodiscard]] std::vector<net::Envelope> submit(Bytes operation, Micros now,
                                                  bool read_only = false);

  /// Processes a Reply or ReadReply. Returns the result once the in-flight
  /// request completed (exactly once per operation). `out` receives any
  /// envelopes to transmit — the ordered re-broadcast when a fast read
  /// falls back on a reply mismatch.
  [[nodiscard]] std::optional<Bytes> on_reply(const net::Envelope& env,
                                              Micros now,
                                              std::vector<net::Envelope>& out);

  /// Retransmits the in-flight request if the retry timer expired, and
  /// falls the fast read back to the ordered path after its deadline.
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now);

  [[nodiscard]] std::optional<Micros> next_deadline() const;
  [[nodiscard]] bool in_flight() const noexcept { return in_flight_; }
  [[nodiscard]] ClientId id() const noexcept { return id_; }
  [[nodiscard]] Timestamp current_timestamp() const noexcept {
    return timestamp_;
  }
  /// Reads completed via the fast path / reads that fell back to ordering.
  [[nodiscard]] std::uint64_t fast_reads() const noexcept {
    return fast_reads_;
  }
  [[nodiscard]] std::uint64_t read_fallbacks() const noexcept {
    return read_fallbacks_;
  }

 private:
  [[nodiscard]] std::vector<net::Envelope> broadcast_request() const;
  [[nodiscard]] std::optional<Bytes> on_read_reply(
      const net::Envelope& env, Micros now, std::vector<net::Envelope>& out);
  void fall_back(Micros now, std::vector<net::Envelope>& out);
  void finish() noexcept;

  Config config_;
  ClientId id_;
  crypto::Key32 auth_key_;
  Micros retry_timeout_us_;
  ReplicaPrincipalFn replica_principal_;

  Timestamp timestamp_{0};
  Bytes operation_;
  Request request_;
  bool in_flight_{false};
  Micros retry_deadline_{0};
  // result bytes -> replicas that returned it (ordered path, f+1).
  std::map<Bytes, std::set<ReplicaId>> votes_;

  // --- read fast path ---
  bool fast_read_{false};       // in-flight request is on the fast path
  Micros read_deadline_{0};     // fallback deadline while fast_read_
  using ReadKey = std::pair<Digest, SeqNum>;  // (result digest, exec seq)
  std::map<ReadKey, std::set<ReplicaId>> read_votes_;
  std::map<ReadKey, Bytes> read_results_;  // digest-verified full values
  std::set<ReplicaId> read_replied_;       // distinct responders this read
  std::uint64_t fast_reads_{0};
  std::uint64_t read_fallbacks_{0};
};

}  // namespace sbft::pbft
