#include "pbft/client.hpp"

#include "crypto/hmac.hpp"

namespace sbft::pbft {

Client::Client(Config config, ClientId id, const ClientDirectory& directory,
               Micros retry_timeout_us, ReplicaPrincipalFn replica_principal)
    : config_(config),
      id_(id),
      auth_key_(directory.auth_key(id)),
      retry_timeout_us_(retry_timeout_us),
      replica_principal_(replica_principal) {}

std::vector<net::Envelope> Client::broadcast_request() const {
  std::vector<net::Envelope> out;
  net::Envelope env;
  env.src = principal::client(id_);
  env.type = tag(MsgType::Request);
  env.payload = request_.serialize();
  for (ReplicaId r = 0; r < config_.n; ++r) {
    env.dst = replica_principal_(r);
    out.push_back(env);
  }
  return out;
}

std::vector<net::Envelope> Client::submit(Bytes operation, Micros now) {
  in_flight_ = true;
  votes_.clear();
  operation_ = std::move(operation);
  ++timestamp_;

  request_ = Request{};
  request_.client = id_;
  request_.timestamp = timestamp_;
  request_.payload = operation_;
  const Digest mac = crypto::hmac_sha256(
      ByteView{auth_key_.data(), auth_key_.size()}, request_.auth_input());
  request_.auth = Bytes(mac.bytes.begin(), mac.bytes.end());

  retry_deadline_ = now + retry_timeout_us_;
  return broadcast_request();
}

std::optional<Bytes> Client::on_reply(const net::Envelope& env) {
  if (!in_flight_ || env.type != tag(MsgType::Reply)) return std::nullopt;
  auto reply = Reply::deserialize(env.payload);
  if (!reply || reply->client != id_ || reply->timestamp != timestamp_ ||
      reply->sender >= config_.n) {
    return std::nullopt;
  }
  if (!crypto::hmac_verify(ByteView{auth_key_.data(), auth_key_.size()},
                           reply->auth_input(), reply->auth)) {
    return std::nullopt;  // forged reply
  }
  auto& senders = votes_[reply->result];
  senders.insert(reply->sender);
  if (senders.size() >= config_.f + 1) {
    in_flight_ = false;
    retry_deadline_ = 0;
    return reply->result;
  }
  return std::nullopt;
}

std::vector<net::Envelope> Client::tick(Micros now) {
  if (!in_flight_ || retry_deadline_ == 0 || now < retry_deadline_) return {};
  retry_deadline_ = now + retry_timeout_us_;
  return broadcast_request();
}

std::optional<Micros> Client::next_deadline() const {
  if (!in_flight_ || retry_deadline_ == 0) return std::nullopt;
  return retry_deadline_;
}

}  // namespace sbft::pbft
