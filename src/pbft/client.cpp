#include "pbft/client.hpp"

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace sbft::pbft {

Client::Client(Config config, ClientId id, const ClientDirectory& directory,
               Micros retry_timeout_us, ReplicaPrincipalFn replica_principal)
    : config_(config),
      id_(id),
      auth_key_(directory.auth_key(id)),
      retry_timeout_us_(retry_timeout_us),
      replica_principal_(replica_principal) {}

std::vector<net::Envelope> Client::broadcast_request() const {
  std::vector<net::Envelope> out;
  net::Envelope env;
  env.src = principal::client(id_);
  env.type = tag(fast_read_ ? MsgType::ReadRequest : MsgType::Request);
  env.payload = request_.serialize();
  for (ReplicaId r = 0; r < config_.n; ++r) {
    env.dst = replica_principal_(r);
    out.push_back(env);
  }
  return out;
}

std::vector<net::Envelope> Client::submit(Bytes operation, Micros now,
                                          bool read_only) {
  in_flight_ = true;
  votes_.clear();
  read_votes_.clear();
  read_results_.clear();
  read_replied_.clear();
  operation_ = std::move(operation);
  ++timestamp_;

  request_ = Request{};
  request_.client = id_;
  request_.timestamp = timestamp_;
  request_.payload = operation_;
  const Digest mac = crypto::hmac_sha256(
      ByteView{auth_key_.data(), auth_key_.size()}, request_.auth_input());
  request_.auth = Bytes(mac.bytes.begin(), mac.bytes.end());

  fast_read_ = read_only && config_.read_path;
  if (fast_read_) {
    // The fallback deadline covers loss and silent replicas; a mismatch
    // among all n replies falls back immediately from on_reply. The
    // ordered retry timer only arms once we fall back.
    read_deadline_ = now + config_.read_fallback_timeout_us;
    retry_deadline_ = 0;
  } else {
    read_deadline_ = 0;
    retry_deadline_ = now + retry_timeout_us_;
  }
  return broadcast_request();
}

void Client::finish() noexcept {
  in_flight_ = false;
  fast_read_ = false;
  retry_deadline_ = 0;
  read_deadline_ = 0;
}

void Client::fall_back(Micros now, std::vector<net::Envelope>& out) {
  if (!fast_read_) return;
  fast_read_ = false;
  read_deadline_ = 0;
  ++read_fallbacks_;
  // Same request bytes, ordered path: replicas never updated their
  // at-most-once state for the fast attempt, so the timestamp is still
  // fresh and the ordered execution is the operation's one linearization.
  retry_deadline_ = now + retry_timeout_us_;
  for (auto& env : broadcast_request()) out.push_back(std::move(env));
}

std::optional<Bytes> Client::on_read_reply(const net::Envelope& env,
                                           Micros now,
                                           std::vector<net::Envelope>& out) {
  auto rr = ReadReply::deserialize(env.payload);
  if (!rr || rr->client != id_ || rr->timestamp != timestamp_ ||
      rr->sender >= config_.n) {
    return std::nullopt;
  }
  if (!crypto::hmac_verify(ByteView{auth_key_.data(), auth_key_.size()},
                           rr->auth_input(), rr->auth)) {
    return std::nullopt;  // forged read reply
  }
  if (env.src != replica_principal_(rr->sender)) {
    return std::nullopt;  // vote misattributed to another replica
  }
  if (!read_replied_.insert(rr->sender).second) {
    return std::nullopt;  // one vote per replica
  }

  const ReadKey key{rr->result_digest, rr->exec_seq};
  read_votes_[key].insert(rr->sender);
  if (rr->has_result && crypto::sha256(rr->result) == rr->result_digest) {
    read_results_.emplace(key, std::move(rr->result));
  }

  // Accept: 2f+1 matching (digest, exec_seq) votes plus a full value that
  // hashes to the quorum digest.
  const auto votes = read_votes_.find(key);
  if (votes->second.size() >= config_.quorum()) {
    const auto full = read_results_.find(key);
    if (full != read_results_.end()) {
      Bytes result = full->second;
      finish();
      ++fast_reads_;
      return result;
    }
  }
  // Every replica answered and no acceptable quorum formed (writes moved
  // the state between replies, or byzantine digests): order the read.
  if (read_replied_.size() >= config_.n) fall_back(now, out);
  return std::nullopt;
}

std::optional<Bytes> Client::on_reply(const net::Envelope& env, Micros now,
                                      std::vector<net::Envelope>& out) {
  if (!in_flight_) return std::nullopt;
  if (fast_read_ && env.type == tag(MsgType::ReadReply)) {
    return on_read_reply(env, now, out);
  }
  if (env.type != tag(MsgType::Reply)) return std::nullopt;
  // Ordered replies are accepted even while the fast read is pending:
  // replicas with the read path disabled serve reads through ordering, and
  // the two vote sets must not block each other.
  auto reply = Reply::deserialize(env.payload);
  if (!reply || reply->client != id_ || reply->timestamp != timestamp_ ||
      reply->sender >= config_.n) {
    return std::nullopt;
  }
  if (!crypto::hmac_verify(ByteView{auth_key_.data(), auth_key_.size()},
                           reply->auth_input(), reply->auth)) {
    return std::nullopt;  // forged reply
  }
  auto& senders = votes_[reply->result];
  senders.insert(reply->sender);
  // With the read path on, ordered operations wait for 2f+1 matching
  // replies instead of f+1: every acknowledged write is then executed by
  // at least f+1 CORRECT replicas, so no later fast-read quorum can be
  // assembled purely from execution-lagging honest replicas plus f
  // byzantine echoes — the classic stale-read caveat of the PBFT
  // read-only optimization.
  const std::uint32_t needed =
      config_.read_path ? config_.quorum() : config_.f + 1;
  if (senders.size() >= needed) {
    finish();
    return reply->result;
  }
  return std::nullopt;
}

std::vector<net::Envelope> Client::tick(Micros now) {
  std::vector<net::Envelope> out;
  if (!in_flight_) return out;
  if (fast_read_) {
    if (read_deadline_ != 0 && now >= read_deadline_) fall_back(now, out);
    return out;
  }
  if (retry_deadline_ != 0 && now >= retry_deadline_) {
    retry_deadline_ = now + retry_timeout_us_;
    for (auto& env : broadcast_request()) out.push_back(std::move(env));
  }
  return out;
}

std::optional<Micros> Client::next_deadline() const {
  if (!in_flight_) return std::nullopt;
  if (fast_read_) {
    return read_deadline_ == 0 ? std::nullopt
                               : std::optional<Micros>(read_deadline_);
  }
  if (retry_deadline_ == 0) return std::nullopt;
  return retry_deadline_;
}

}  // namespace sbft::pbft
