// Streaming, verifiable state transfer (sans-I/O core, shared by the PBFT
// replica and the SplitBFT Execution compartment).
//
// A checkpoint's state digest is the COMMITMENT of a SnapshotManifest
// (crypto/merkle.hpp): H(domain || total_bytes || chunk_bytes || root).
// The 2f+1 checkpoint certificate therefore authenticates the transfer
// geometry and, transitively, every chunk — a recovering replica trusts
// nothing a responder says until it checks out against that commitment.
//
// Three pieces:
//  * ChunkedSnapshot — serving side: snapshot bytes + Merkle tree, fills
//    StateChunkResponse messages with chunk + inclusion proof.
//  * ChunkFetcher   — fetching side: multi-peer parallel range fetch with
//    a per-peer scoreboard (strikes + backoff bans), per-chunk timeouts
//    that re-assign to a DIFFERENT peer, bounded in-flight bytes, and an
//    in-order drain (take_ready) so the caller streams chunks into the
//    application without materializing the snapshot. Resumable: progress()
//    exports the applied prefix, a new fetcher picks up from it.
//  * SnapshotApplier — streams the protocol-snapshot framing
//    (u32 app_len | app bytes | tail) into Application::apply_chunk,
//    buffering only the small tail (client-record table) for the caller.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "apps/app.hpp"
#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/types.hpp"
#include "crypto/merkle.hpp"
#include "pbft/messages.hpp"

namespace sbft::pbft {

/// Serving side of a checkpointed snapshot: owns the bytes and the Merkle
/// tree, answers chunk queries with inclusion proofs.
class ChunkedSnapshot {
 public:
  ChunkedSnapshot() = default;
  ChunkedSnapshot(Bytes snapshot, std::uint64_t chunk_bytes);

  [[nodiscard]] const Bytes& data() const noexcept { return data_; }
  [[nodiscard]] const crypto::SnapshotManifest& manifest() const noexcept {
    return manifest_;
  }
  /// The digest the checkpoint certificate signs for this snapshot.
  [[nodiscard]] Digest commitment() const noexcept {
    return manifest_.commitment();
  }

  /// Fills geometry, chunk bytes and proof for `index` into `resp`
  /// (seq/sender left to the caller). False when out of range.
  [[nodiscard]] bool fill(std::uint64_t index, StateChunkResponse& resp) const;

  /// The plaintext slice of chunk `index` (for callers that seal it).
  [[nodiscard]] ByteView chunk_view(std::uint64_t index) const;

 private:
  Bytes data_;
  crypto::SnapshotManifest manifest_;
  std::optional<crypto::MerkleTree> tree_;
};

/// The checkpoint digest for `snapshot` under chunking geometry
/// `chunk_bytes`: the SnapshotManifest commitment (see crypto/merkle.hpp),
/// NOT a flat hash — the same 2f+1 certificate that proves the state also
/// proves the chunk geometry and Merkle root every streamed chunk verifies
/// against.
[[nodiscard]] Digest snapshot_commitment(ByteView snapshot,
                                         std::uint64_t chunk_bytes);

/// State-transfer traffic counters (both roles), shared by the PBFT
/// replica and the SplitBFT Execution compartment. Fetch-side counters
/// fold in the live transfer, so mid-recovery reads are accurate.
struct StateTransferStats {
  std::uint64_t state_requests_sent{0};  // rate-limited re-broadcasts
  std::uint64_t chunk_requests_sent{0};
  std::uint64_t chunks_served{0};  // serving side
  std::uint64_t chunks_accepted{0};
  std::uint64_t chunks_rejected{0};
  std::uint64_t chunks_duplicate{0};
  std::uint64_t refetches{0};
  std::uint64_t chunk_bytes_received{0};
  std::uint64_t peak_inflight_bytes{0};
  std::uint64_t transfers_completed{0};
};

/// Fetching side: drives a chunked transfer toward a proven commitment.
class ChunkFetcher {
 public:
  struct Config {
    std::uint32_t n{4};
    ReplicaId self{0};
    std::uint32_t chunks_per_request{16};
    std::uint64_t inflight_max_bytes{1u << 20};
    Micros chunk_timeout_us{250'000};
  };

  /// One request the caller should send (sans-I/O: the fetcher never
  /// touches the network).
  struct Request {
    ReplicaId peer{0};
    std::uint64_t first_chunk{0};
    std::uint32_t count{1};
  };

  enum class ChunkResult {
    Accepted,   // verified and buffered (or duplicate-free re-fetch)
    Duplicate,  // already have it — harmless
    Rejected,   // failed commitment or Merkle verification — peer struck
    Ignored,    // wrong seq / not fetching
  };

  struct Stats {
    std::uint64_t requests_sent{0};
    std::uint64_t chunks_accepted{0};
    std::uint64_t chunks_duplicate{0};
    std::uint64_t chunks_rejected{0};
    /// Chunk assignments re-issued after a timeout or rejection.
    std::uint64_t refetches{0};
    std::uint64_t bytes_received{0};
    /// High-water mark of buffered-verified + requested-in-flight bytes —
    /// the transfer's memory footprint, hard-asserted against the full
    /// snapshot size in BENCH_state_transfer.json.
    std::uint64_t peak_inflight_bytes{0};
  };

  /// Resumable progress: chunks below `next_index` were verified AND
  /// handed to the caller (applied); a fetcher constructed with a
  /// Progress re-requests only the rest.
  struct Progress {
    SeqNum seq{0};
    Digest commitment;
    std::uint64_t next_index{0};
  };

  ChunkFetcher(Config config, SeqNum seq, Digest commitment, Micros now);
  ChunkFetcher(Config config, const Progress& resume_from, Micros now);

  [[nodiscard]] SeqNum seq() const noexcept { return seq_; }
  [[nodiscard]] const Digest& commitment() const noexcept {
    return commitment_;
  }
  [[nodiscard]] bool manifest_known() const noexcept {
    return manifest_.has_value();
  }
  [[nodiscard]] const crypto::SnapshotManifest& manifest() const {
    return *manifest_;
  }

  /// Expires timed-out assignments (striking their peers) and plans the
  /// next requests under the in-flight budget. Call after construction,
  /// after every on_chunk, and on timer ticks.
  [[nodiscard]] std::vector<Request> pump(Micros now);

  /// Feeds one response. Accepted chunks buffer until take_ready drains
  /// them in order.
  [[nodiscard]] ChunkResult on_chunk(const StateChunkResponse& resp,
                                     Micros now);

  /// Drains verified chunks contiguous from the applied prefix, in index
  /// order. The caller must apply (and, if it wants crash-resume, persist)
  /// them before the next progress() snapshot.
  [[nodiscard]] std::vector<Bytes> take_ready();

  /// All chunks verified and drained.
  [[nodiscard]] bool complete() const noexcept {
    return manifest_.has_value() && next_to_take_ == chunk_count_;
  }

  /// Earliest pending timeout (nullopt when nothing is outstanding and no
  /// peer ban is pending expiry).
  [[nodiscard]] std::optional<Micros> next_deadline() const;

  [[nodiscard]] Progress progress() const noexcept {
    return {seq_, commitment_, next_to_take_};
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  enum class ChunkState : std::uint8_t { Needed, Requested, Ready, Taken };

  struct PeerScore {
    std::uint32_t strikes{0};
    Micros banned_until{0};
  };

  void adopt_manifest(const crypto::SnapshotManifest& manifest);
  void strike(ReplicaId peer, Micros now);
  /// Picks the next eligible peer (round-robin, skipping bans and
  /// `avoid`); falls back to the least-banned peer so the fetch can
  /// always make progress against f faulty peers.
  [[nodiscard]] ReplicaId pick_peer(Micros now, ReplicaId avoid);
  void note_inflight(std::uint64_t delta_up, std::uint64_t delta_down);

  Config config_;
  SeqNum seq_;
  Digest commitment_;
  std::optional<crypto::SnapshotManifest> manifest_;
  std::uint64_t chunk_count_{0};

  std::vector<ChunkState> state_;
  // Requested chunks: index -> (peer, deadline). Also used for the
  // pre-manifest probe (index 0).
  struct Assignment {
    ReplicaId peer{0};
    Micros deadline{0};
    /// Whether this assignment's size estimate entered inflight_bytes_
    /// (false for the pre-manifest probe, whose size is unknown).
    bool counted{false};
  };
  std::map<std::uint64_t, Assignment> assigned_;
  // Last peer that failed to deliver each chunk (re-assign elsewhere).
  std::map<std::uint64_t, ReplicaId> last_failed_peer_;
  std::map<std::uint64_t, Bytes> ready_;
  std::uint64_t next_to_take_{0};

  std::vector<PeerScore> peers_;
  ReplicaId rotor_{0};

  std::uint64_t inflight_bytes_{0};  // requested estimate + buffered ready
  Stats stats_;
};

/// Streams the protocol-snapshot framing into an Application. Both stacks
/// serialize checkpoints as `Writer::bytes(app snapshot)` followed by a
/// protocol tail, i.e. u32 app_len | app bytes | tail.
class SnapshotApplier {
 public:
  explicit SnapshotApplier(apps::Application* app) : app_(app) {}
  ~SnapshotApplier();
  SnapshotApplier(const SnapshotApplier&) = delete;
  SnapshotApplier& operator=(const SnapshotApplier&) = delete;

  /// Feeds the next contiguous snapshot bytes. False on framing overrun
  /// or application rejection (the applier is then failed and must be
  /// abandoned; live application state is untouched).
  [[nodiscard]] bool feed(ByteView data);

  /// True when exactly the advertised app bytes were fed.
  [[nodiscard]] bool app_complete() const noexcept {
    return header_.size() == 4 && app_fed_ == app_len_;
  }
  /// The buffered protocol tail (valid once feeding is done). The caller
  /// validates it BEFORE finish() so a bad tail never half-installs.
  [[nodiscard]] const Bytes& tail() const noexcept { return tail_; }

  /// Commits the staged application state (Application::apply_end).
  [[nodiscard]] bool finish();

  /// Discards staged state without touching the live application.
  void abort();

 private:
  apps::Application* app_;
  Bytes header_;  // the 4-byte app length prefix, accumulated
  std::uint64_t app_len_{0};
  std::uint64_t app_fed_{0};
  bool begun_{false};
  bool failed_{false};
  Bytes tail_;
};

}  // namespace sbft::pbft
