// Shared protocol configuration for PBFT and SplitBFT clusters.
#pragma once

#include <cstdint>

#include "common/clock.hpp"
#include "common/types.hpp"

namespace sbft::pbft {

struct Config {
  std::uint32_t n{4};
  std::uint32_t f{1};

  /// Checkpoint every K sequence numbers.
  SeqNum checkpoint_interval{50};
  /// Log window L: accept sequence numbers in (h, h+L].
  SeqNum watermark_window{200};

  /// Maximum requests per batch (1 = unbatched mode).
  std::size_t batch_max{200};
  /// Cut a partial batch after this long (paper: 10 ms).
  Micros batch_timeout_us{10'000};
  /// Pipelined batching: maximum number of batches the primary keeps in
  /// flight (assigned a sequence number but not yet executed locally).
  /// 1 = stop-and-wait (cut the next batch only after the previous one
  /// executed); D > 1 = up to D concurrent instances inside the watermark
  /// window; 0 = unbounded (limited by the window alone).
  ///
  /// The SplitBFT Preparation compartment applies the same knob, but its
  /// only execution-progress signal inside the enclave is the checkpoint
  /// certificate, so its effective bound is checkpoint_interval +
  /// pipeline_depth sequence numbers past the stable checkpoint (see
  /// pipeline_window()).
  std::size_t pipeline_depth{0};

  /// Enables the single-round read-only fast path: clients broadcast
  /// read-only operations as ReadRequest, replicas execute them against
  /// last-executed state without assigning a sequence number, and the
  /// client accepts on 2f+1 matching (result-digest, exec-seq) replies.
  /// Timeout or mismatch falls back to the ordered path, so linearizable
  /// semantics survive concurrent writes and view changes.
  bool read_path{false};
  /// Client-side deadline before a pending fast read gives up and falls
  /// back to the ordered path (mismatch among n replies falls back
  /// immediately; this bound covers loss and silent replicas).
  Micros read_fallback_timeout_us{200'000};
  /// SplitBFT broker-side read coalescing: up to this many fast-path reads
  /// are delivered per Execution ecall, amortizing the enclave-crossing
  /// cost the same way request batching amortizes it for ordering
  /// (1 = one ecall per read).
  std::size_t read_batch_max{32};
  /// Longest a queued fast-path read may wait for coalescing before the
  /// broker cuts a partial read batch.
  Micros read_batch_delay_us{500};
  /// Bound on RETAINED reply bodies in the per-client last-reply cache.
  /// When more than this many records hold a cached result after a batch
  /// executes, the oldest-timestamp results are stripped deterministically
  /// (all replicas prune identically, keeping checkpoint digests aligned).
  /// The (client, last_ts) at-most-once floor is never dropped, so old
  /// timestamps can never re-execute. Should exceed the number of
  /// concurrently active clients; 0 = unbounded.
  std::size_t client_record_cap{65'536};

  /// Self-tuning (runtime/runner AutoTuner): when set, the replica/broker
  /// adjusts batch_max, pipeline_depth and read_batch_max from the observed
  /// admitted-but-unexecuted backlog. Tuned knobs only shape proposals on
  /// the primary — they are consensus-ordered, so replicas never diverge.
  bool auto_tune{false};
  /// Admission control: a FRESH request arriving while this many are
  /// already pending is shed before it creates protocol state or arms a
  /// suspicion timer (silence = backpressure; the client retransmits).
  /// Retransmits of already-admitted requests always pass. 0 = unlimited.
  std::size_t admission_queue_cap{0};

  /// Client-request timeout before suspecting the primary.
  Micros request_timeout_us{400'000};
  /// Escalation timeout while waiting for a NewView.
  Micros view_change_retry_us{800'000};

  // --- Streaming state transfer -----------------------------------------
  /// When true (default), a lagging replica recovers via chunked
  /// multi-peer fetch (StateChunkRequest/StateChunkResponse) under the
  /// Merkle commitment in the checkpoint certificate. False restores the
  /// legacy single-envelope StateResponse path.
  bool streaming_state{true};
  /// Snapshot chunk size. Every replica of a group must agree on it: the
  /// value is bound into the checkpoint digest via the manifest.
  std::uint64_t state_chunk_bytes{64u << 10};
  /// Chunks asked of one peer per StateChunkRequest (wire-capped by
  /// kMaxChunksPerRequest).
  std::uint32_t state_chunks_per_request{16};
  /// Bound on un-applied verified + in-flight requested bytes during a
  /// transfer — the knob that keeps recovery inside the transport's
  /// backpressure budget instead of materializing the whole snapshot.
  std::uint64_t state_inflight_max_bytes{1u << 20};
  /// Re-request a chunk range from a different peer after this long.
  Micros state_chunk_timeout_us{250'000};
  /// StateRequest re-broadcast backoff while behind a stable checkpoint:
  /// doubles from min to max per retry, resetting when a transfer starts.
  Micros state_request_backoff_min_us{100'000};
  Micros state_request_backoff_max_us{2'000'000};

  [[nodiscard]] constexpr std::uint32_t quorum() const noexcept {
    return 2 * f + 1;
  }
  /// Prepares needed in addition to the PrePrepare.
  [[nodiscard]] constexpr std::uint32_t prepared_quorum() const noexcept {
    return 2 * f;
  }
  [[nodiscard]] constexpr ReplicaId primary(View v) const noexcept {
    return static_cast<ReplicaId>(v % n);
  }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return n >= 3 * f + 1 && n > 0;
  }
  /// Designated full-value responder for a read (reply-digest
  /// suppression): rotates with the timestamp so the full-reply bandwidth
  /// spreads across the group.
  [[nodiscard]] constexpr ReplicaId read_responder(ClientId c,
                                                   Timestamp t) const noexcept {
    return static_cast<ReplicaId>((c + t) % n);
  }
  /// True when a primary with `in_flight` unexecuted batches may start
  /// another protocol instance under this pipeline depth.
  [[nodiscard]] constexpr bool pipeline_open(SeqNum in_flight) const noexcept {
    return pipeline_depth == 0 || in_flight < pipeline_depth;
  }
  /// Checkpoint-granular pipeline bound for components whose only progress
  /// signal is the stable checkpoint (SplitBFT Preparation): how far past
  /// last_stable sequence assignment may run. Never below one checkpoint
  /// interval + depth (or assignment would stall waiting for a checkpoint
  /// that can no longer form), never above the watermark window.
  [[nodiscard]] constexpr SeqNum pipeline_window() const noexcept {
    if (pipeline_depth == 0) return watermark_window;
    const SeqNum w = checkpoint_interval + pipeline_depth;
    return w < watermark_window ? w : watermark_window;
  }
};

}  // namespace sbft::pbft
