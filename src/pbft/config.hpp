// Shared protocol configuration for PBFT and SplitBFT clusters.
#pragma once

#include <cstdint>

#include "common/clock.hpp"
#include "common/types.hpp"

namespace sbft::pbft {

struct Config {
  std::uint32_t n{4};
  std::uint32_t f{1};

  /// Checkpoint every K sequence numbers.
  SeqNum checkpoint_interval{50};
  /// Log window L: accept sequence numbers in (h, h+L].
  SeqNum watermark_window{200};

  /// Maximum requests per batch (1 = unbatched mode).
  std::size_t batch_max{200};
  /// Cut a partial batch after this long (paper: 10 ms).
  Micros batch_timeout_us{10'000};

  /// Client-request timeout before suspecting the primary.
  Micros request_timeout_us{400'000};
  /// Escalation timeout while waiting for a NewView.
  Micros view_change_retry_us{800'000};

  [[nodiscard]] constexpr std::uint32_t quorum() const noexcept {
    return 2 * f + 1;
  }
  /// Prepares needed in addition to the PrePrepare.
  [[nodiscard]] constexpr std::uint32_t prepared_quorum() const noexcept {
    return 2 * f;
  }
  [[nodiscard]] constexpr ReplicaId primary(View v) const noexcept {
    return static_cast<ReplicaId>(v % n);
  }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return n >= 3 * f + 1 && n > 0;
  }
};

}  // namespace sbft::pbft
