// Shared protocol configuration for PBFT and SplitBFT clusters.
#pragma once

#include <cstdint>

#include "common/clock.hpp"
#include "common/types.hpp"

namespace sbft::pbft {

struct Config {
  std::uint32_t n{4};
  std::uint32_t f{1};

  /// Checkpoint every K sequence numbers.
  SeqNum checkpoint_interval{50};
  /// Log window L: accept sequence numbers in (h, h+L].
  SeqNum watermark_window{200};

  /// Maximum requests per batch (1 = unbatched mode).
  std::size_t batch_max{200};
  /// Cut a partial batch after this long (paper: 10 ms).
  Micros batch_timeout_us{10'000};
  /// Pipelined batching: maximum number of batches the primary keeps in
  /// flight (assigned a sequence number but not yet executed locally).
  /// 1 = stop-and-wait (cut the next batch only after the previous one
  /// executed); D > 1 = up to D concurrent instances inside the watermark
  /// window; 0 = unbounded (limited by the window alone).
  ///
  /// The SplitBFT Preparation compartment applies the same knob, but its
  /// only execution-progress signal inside the enclave is the checkpoint
  /// certificate, so its effective bound is checkpoint_interval +
  /// pipeline_depth sequence numbers past the stable checkpoint (see
  /// pipeline_window()).
  std::size_t pipeline_depth{0};

  /// Client-request timeout before suspecting the primary.
  Micros request_timeout_us{400'000};
  /// Escalation timeout while waiting for a NewView.
  Micros view_change_retry_us{800'000};

  [[nodiscard]] constexpr std::uint32_t quorum() const noexcept {
    return 2 * f + 1;
  }
  /// Prepares needed in addition to the PrePrepare.
  [[nodiscard]] constexpr std::uint32_t prepared_quorum() const noexcept {
    return 2 * f;
  }
  [[nodiscard]] constexpr ReplicaId primary(View v) const noexcept {
    return static_cast<ReplicaId>(v % n);
  }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return n >= 3 * f + 1 && n > 0;
  }
  /// True when a primary with `in_flight` unexecuted batches may start
  /// another protocol instance under this pipeline depth.
  [[nodiscard]] constexpr bool pipeline_open(SeqNum in_flight) const noexcept {
    return pipeline_depth == 0 || in_flight < pipeline_depth;
  }
  /// Checkpoint-granular pipeline bound for components whose only progress
  /// signal is the stable checkpoint (SplitBFT Preparation): how far past
  /// last_stable sequence assignment may run. Never below one checkpoint
  /// interval + depth (or assignment would stall waiting for a checkpoint
  /// that can no longer form), never above the watermark window.
  [[nodiscard]] constexpr SeqNum pipeline_window() const noexcept {
    if (pipeline_depth == 0) return watermark_window;
    const SeqNum w = checkpoint_interval + pipeline_depth;
    return w < watermark_window ? w : watermark_window;
  }
};

}  // namespace sbft::pbft
