// Client authentication keys.
//
// The paper authenticates client requests and replies with HMAC-SHA2.
// Key distribution is out of band (registration); we model it as
// deterministic derivation from a deployment master secret, so replicas,
// enclaves and clients constructed with the same secret agree on per-client
// keys without a key-exchange protocol.
//
// Derivation (two HMAC-SHA256 invocations) sits on the per-message hot
// path — every request authentication and every reply MAC needs the
// client's key — so the directory memoizes derived keys in a sharded
// table: ClientId hashes to one of kShards independently-locked maps, so
// concurrent completions for different clients (the ThreadNetwork runtime
// delivers replica outputs from many consumer threads) never serialize on
// a single lock. Copies of a directory share the cache.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/types.hpp"
#include "crypto/hmac.hpp"

namespace sbft::pbft {

class ClientDirectory {
 public:
  explicit ClientDirectory(std::uint64_t master_secret);

  /// The client's HMAC key: derived on first use, cached thereafter.
  [[nodiscard]] crypto::Key32 auth_key(ClientId client) const;

  /// Cached-key count across all shards (tests / capacity planning).
  [[nodiscard]] std::size_t cached_keys() const;

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<ClientId, crypto::Key32> keys;
  };

  [[nodiscard]] crypto::Key32 derive(ClientId client) const;
  [[nodiscard]] Shard& shard_for(ClientId client) const noexcept {
    // Multiplicative hash so consecutive client ids (the common workload
    // allocation pattern) spread across shards instead of striding.
    const std::uint64_t h = client * 0x9e3779b97f4a7c15ULL;
    return (*shards_)[(h >> 32) % kShards];
  }

  std::uint64_t master_secret_;
  // shared_ptr: the directory is passed by value throughout (replicas,
  // compartments, clients); all copies feed one cache.
  std::shared_ptr<std::array<Shard, kShards>> shards_;
};

}  // namespace sbft::pbft
