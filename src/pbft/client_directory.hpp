// Client authentication keys.
//
// The paper authenticates client requests and replies with HMAC-SHA2.
// Key distribution is out of band (registration); we model it as
// deterministic derivation from a deployment master secret, so replicas,
// enclaves and clients constructed with the same secret agree on per-client
// keys without a key-exchange protocol.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "crypto/hmac.hpp"

namespace sbft::pbft {

class ClientDirectory {
 public:
  explicit ClientDirectory(std::uint64_t master_secret)
      : master_secret_(master_secret) {}

  [[nodiscard]] crypto::Key32 auth_key(ClientId client) const {
    Bytes context;
    for (int i = 0; i < 4; ++i) {
      context.push_back(static_cast<std::uint8_t>(client >> (8 * i)));
    }
    Bytes master(8);
    for (int i = 0; i < 8; ++i) {
      master[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(master_secret_ >> (8 * i));
    }
    return crypto::derive_key(master, "client-auth", context);
  }

 private:
  std::uint64_t master_secret_;
};

}  // namespace sbft::pbft
