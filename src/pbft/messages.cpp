#include "pbft/messages.hpp"

#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace sbft::pbft {

namespace {

void put_digest(Writer& w, const Digest& d) { w.raw(d.view()); }

[[nodiscard]] Digest get_digest(Reader& r) {
  const Bytes b = r.raw(32);
  Digest d;
  if (b.size() == 32) std::copy(b.begin(), b.end(), d.bytes.begin());
  return d;
}

void put_envelopes(Writer& w, const std::vector<net::Envelope>& envs) {
  w.u32(static_cast<std::uint32_t>(envs.size()));
  // wire() is the envelope's memoized single serialization — embedding a
  // stored quorum envelope in a proof re-uses it instead of re-encoding.
  for (const auto& e : envs) w.bytes(e.wire());
}

[[nodiscard]] std::optional<std::vector<net::Envelope>> get_envelopes(
    Reader& r, std::size_t max = 1024) {
  const std::uint32_t n = r.u32();
  if (n > max) return std::nullopt;
  // Plausibility bound before reserving: each entry costs at least its
  // 4-byte length prefix plus a minimal envelope, so a tiny message cannot
  // command a huge allocation just by writing a large count.
  if (n > r.remaining() / 8) return std::nullopt;
  std::vector<net::Envelope> envs;
  envs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t len = r.u32();
    const ByteView b = r.view(len);  // view, not copy; deserialize frames it
    if (r.failed()) return std::nullopt;
    auto env = net::Envelope::deserialize(b);
    if (!env) return std::nullopt;
    envs.push_back(std::move(*env));
  }
  return envs;
}

}  // namespace

// ---------------------------------------------------------------- Request

Bytes Request::serialize() const {
  Writer w;
  w.u32(client);
  w.u64(timestamp);
  w.bytes(payload);
  w.bytes(auth);
  return std::move(w).take();
}

std::optional<Request> Request::deserialize(ByteView data) {
  Reader r(data);
  Request req;
  req.client = r.u32();
  req.timestamp = r.u64();
  req.payload = r.bytes();
  req.auth = r.bytes();
  if (!r.done()) return std::nullopt;
  return req;
}

Bytes Request::auth_input() const {
  Writer w;
  w.u32(client);
  w.u64(timestamp);
  w.bytes(payload);
  return std::move(w).take();
}

Digest Request::digest() const { return crypto::sha256(auth_input()); }

// ----------------------------------------------------------- RequestBatch

Bytes RequestBatch::serialize() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(requests.size()));
  for (const auto& req : requests) w.bytes(req.serialize());
  return std::move(w).take();
}

std::optional<RequestBatch> RequestBatch::deserialize(ByteView data) {
  Reader r(data);
  const std::uint32_t n = r.u32();
  if (n > 100'000) return std::nullopt;
  // A serialized request is at least 20 bytes (length prefix + fixed
  // fields): bound the count by the remaining input before reserving.
  if (n > r.remaining() / 20) return std::nullopt;
  RequestBatch batch;
  batch.requests.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Bytes b = r.bytes();
    if (r.failed()) return std::nullopt;
    auto req = Request::deserialize(b);
    if (!req) return std::nullopt;
    batch.requests.push_back(std::move(*req));
  }
  if (!r.done()) return std::nullopt;
  return batch;
}

Digest RequestBatch::digest() const { return crypto::sha256(serialize()); }

// ------------------------------------------------------------- PrePrepare

Bytes PrePrepare::serialize() const {
  Writer w;
  w.u64(view);
  w.u64(seq);
  put_digest(w, batch_digest);
  w.bytes(batch);
  w.u32(sender);
  return std::move(w).take();
}

std::optional<PrePrepare> PrePrepare::deserialize(ByteView data) {
  Reader r(data);
  PrePrepare m;
  m.view = r.u64();
  m.seq = r.u64();
  m.batch_digest = get_digest(r);
  m.batch = r.bytes();
  m.sender = r.u32();
  if (!r.done()) return std::nullopt;
  return m;
}

// ---------------------------------------------------------------- Prepare

Bytes Prepare::serialize() const {
  Writer w;
  w.u64(view);
  w.u64(seq);
  put_digest(w, batch_digest);
  w.u32(sender);
  return std::move(w).take();
}

std::optional<Prepare> Prepare::deserialize(ByteView data) {
  Reader r(data);
  Prepare m;
  m.view = r.u64();
  m.seq = r.u64();
  m.batch_digest = get_digest(r);
  m.sender = r.u32();
  if (!r.done()) return std::nullopt;
  return m;
}

// ----------------------------------------------------------------- Commit

Bytes Commit::serialize() const {
  Writer w;
  w.u64(view);
  w.u64(seq);
  put_digest(w, batch_digest);
  w.u32(sender);
  return std::move(w).take();
}

std::optional<Commit> Commit::deserialize(ByteView data) {
  Reader r(data);
  Commit m;
  m.view = r.u64();
  m.seq = r.u64();
  m.batch_digest = get_digest(r);
  m.sender = r.u32();
  if (!r.done()) return std::nullopt;
  return m;
}

// ------------------------------------------------------------------ Reply

Bytes Reply::serialize() const {
  Writer w;
  w.u64(view);
  w.u64(timestamp);
  w.u32(client);
  w.u32(sender);
  w.bytes(result);
  w.bytes(auth);
  return std::move(w).take();
}

std::optional<Reply> Reply::deserialize(ByteView data) {
  Reader r(data);
  Reply m;
  m.view = r.u64();
  m.timestamp = r.u64();
  m.client = r.u32();
  m.sender = r.u32();
  m.result = r.bytes();
  m.auth = r.bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

Bytes Reply::auth_input() const {
  Writer w;
  w.u64(view);
  w.u64(timestamp);
  w.u32(client);
  w.u32(sender);
  w.bytes(result);
  return std::move(w).take();
}

// -------------------------------------------------------------- ReadReply

Bytes ReadReply::serialize() const {
  Writer w;
  w.u64(timestamp);
  w.u32(client);
  w.u32(sender);
  w.u64(exec_seq);
  put_digest(w, result_digest);
  w.boolean(has_result);
  w.bytes(result);
  w.bytes(auth);
  return std::move(w).take();
}

std::optional<ReadReply> ReadReply::deserialize(ByteView data) {
  Reader r(data);
  ReadReply m;
  m.timestamp = r.u64();
  m.client = r.u32();
  m.sender = r.u32();
  m.exec_seq = r.u64();
  m.result_digest = get_digest(r);
  m.has_result = r.boolean();
  m.result = r.bytes();
  m.auth = r.bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

Bytes ReadReply::auth_input() const {
  Writer w;
  w.u64(timestamp);
  w.u32(client);
  w.u32(sender);
  w.u64(exec_seq);
  put_digest(w, result_digest);
  w.boolean(has_result);
  w.bytes(result);
  return std::move(w).take();
}

// ------------------------------------------------------------- Checkpoint

Bytes Checkpoint::serialize() const {
  Writer w;
  w.u64(seq);
  put_digest(w, state_digest);
  w.u32(sender);
  return std::move(w).take();
}

std::optional<Checkpoint> Checkpoint::deserialize(ByteView data) {
  Reader r(data);
  Checkpoint m;
  m.seq = r.u64();
  m.state_digest = get_digest(r);
  m.sender = r.u32();
  if (!r.done()) return std::nullopt;
  return m;
}

// ---------------------------------------------------------- PreparedProof

Bytes PreparedProof::serialize() const {
  Writer w;
  w.bytes(pre_prepare.wire());
  put_envelopes(w, prepares);
  return std::move(w).take();
}

std::optional<PreparedProof> PreparedProof::deserialize(ByteView data) {
  Reader r(data);
  PreparedProof proof;
  const Bytes pp = r.bytes();
  if (r.failed()) return std::nullopt;
  auto env = net::Envelope::deserialize(pp);
  if (!env) return std::nullopt;
  proof.pre_prepare = std::move(*env);
  auto prepares = get_envelopes(r);
  if (!prepares || !r.done()) return std::nullopt;
  proof.prepares = std::move(*prepares);
  return proof;
}

// ------------------------------------------------------------- ViewChange

Bytes ViewChange::serialize() const {
  Writer w;
  w.u64(new_view);
  w.u64(last_stable);
  put_envelopes(w, checkpoint_proof);
  w.u32(static_cast<std::uint32_t>(prepared.size()));
  for (const auto& p : prepared) w.bytes(p.serialize());
  w.u32(sender);
  return std::move(w).take();
}

std::optional<ViewChange> ViewChange::deserialize(ByteView data) {
  Reader r(data);
  ViewChange m;
  m.new_view = r.u64();
  m.last_stable = r.u64();
  auto proof = get_envelopes(r);
  if (!proof) return std::nullopt;
  m.checkpoint_proof = std::move(*proof);
  const std::uint32_t n = r.u32();
  if (n > 4096) return std::nullopt;
  for (std::uint32_t i = 0; i < n; ++i) {
    const Bytes b = r.bytes();
    if (r.failed()) return std::nullopt;
    auto p = PreparedProof::deserialize(b);
    if (!p) return std::nullopt;
    m.prepared.push_back(std::move(*p));
  }
  m.sender = r.u32();
  if (!r.done()) return std::nullopt;
  return m;
}

// ---------------------------------------------------------------- NewView

Bytes NewView::serialize() const {
  Writer w;
  w.u64(new_view);
  put_envelopes(w, view_changes);
  put_envelopes(w, pre_prepares);
  w.u32(sender);
  return std::move(w).take();
}

std::optional<NewView> NewView::deserialize(ByteView data) {
  Reader r(data);
  NewView m;
  m.new_view = r.u64();
  auto vcs = get_envelopes(r);
  if (!vcs) return std::nullopt;
  m.view_changes = std::move(*vcs);
  auto pps = get_envelopes(r, 4096);
  if (!pps) return std::nullopt;
  m.pre_prepares = std::move(*pps);
  m.sender = r.u32();
  if (!r.done()) return std::nullopt;
  return m;
}

// ------------------------------------------------------------ State xfer

Bytes StateRequest::serialize() const {
  Writer w;
  w.u64(seq);
  w.u32(sender);
  return std::move(w).take();
}

std::optional<StateRequest> StateRequest::deserialize(ByteView data) {
  Reader r(data);
  StateRequest m;
  m.seq = r.u64();
  m.sender = r.u32();
  if (!r.done()) return std::nullopt;
  return m;
}

Bytes StateResponse::serialize() const {
  Writer w;
  w.u64(seq);
  w.bytes(snapshot);
  put_envelopes(w, checkpoint_proof);
  w.u32(sender);
  return std::move(w).take();
}

std::optional<StateResponse> StateResponse::deserialize(ByteView data) {
  Reader r(data);
  StateResponse m;
  m.seq = r.u64();
  // Reader::bytes() checks the length prefix against the remaining input
  // before allocating, so a hostile prefix cannot size a huge snapshot
  // buffer; the proof vector is bounded inside get_envelopes.
  m.snapshot = r.bytes();
  auto proof = get_envelopes(r);
  if (!proof) return std::nullopt;
  m.checkpoint_proof = std::move(*proof);
  m.sender = r.u32();
  if (!r.done()) return std::nullopt;
  return m;
}

Bytes StateChunkRequest::serialize() const {
  Writer w;
  w.u64(seq);
  w.u64(first_chunk);
  w.u32(count);
  w.u32(sender);
  return std::move(w).take();
}

std::optional<StateChunkRequest> StateChunkRequest::deserialize(
    ByteView data) {
  Reader r(data);
  StateChunkRequest m;
  m.seq = r.u64();
  m.first_chunk = r.u64();
  m.count = r.u32();
  m.sender = r.u32();
  if (!r.done()) return std::nullopt;
  if (m.count == 0 || m.count > kMaxChunksPerRequest) return std::nullopt;
  return m;
}

Bytes StateChunkResponse::serialize() const {
  Writer w;
  w.u64(seq);
  w.u64(total_bytes);
  w.u64(chunk_bytes);
  put_digest(w, root);
  w.u64(index);
  w.bytes(chunk);
  w.u32(static_cast<std::uint32_t>(proof.size()));
  for (const auto& step : proof) {
    put_digest(w, step.sibling);
    w.boolean(step.sibling_is_left);
  }
  put_envelopes(w, checkpoint_proof);
  w.u32(sender);
  return std::move(w).take();
}

std::optional<StateChunkResponse> StateChunkResponse::deserialize(
    ByteView data) {
  Reader r(data);
  StateChunkResponse m;
  m.seq = r.u64();
  m.total_bytes = r.u64();
  m.chunk_bytes = r.u64();
  m.root = get_digest(r);
  m.index = r.u64();
  // Bound the payload before it is framed: the wire length prefix must
  // agree with the manifest's chunk size, which is itself capped.
  if (m.chunk_bytes == 0 || m.chunk_bytes > kMaxStateChunkBytes) {
    return std::nullopt;
  }
  m.chunk = r.bytes();
  if (r.failed() || m.chunk.size() > m.chunk_bytes + kStateChunkSealOverhead) {
    return std::nullopt;
  }
  const std::uint32_t steps = r.u32();
  // A proof step costs 33 bytes on the wire; bound the count by both the
  // plausible tree depth and the input actually present.
  if (steps > crypto::kMaxMerkleProofLen) return std::nullopt;
  if (steps > r.remaining() / 33) return std::nullopt;
  m.proof.reserve(steps);
  for (std::uint32_t i = 0; i < steps; ++i) {
    crypto::MerkleStep step;
    step.sibling = get_digest(r);
    step.sibling_is_left = r.boolean();
    m.proof.push_back(step);
  }
  auto cert = get_envelopes(r);
  if (!cert) return std::nullopt;
  m.checkpoint_proof = std::move(*cert);
  m.sender = r.u32();
  if (!r.done()) return std::nullopt;
  return m;
}

}  // namespace sbft::pbft
