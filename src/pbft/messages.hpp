// PBFT message formats (Castro & Liskov, OSDI '99), shared with SplitBFT.
//
// Certificate-carrying messages (ViewChange, NewView) embed complete signed
// envelopes so any receiver can re-check every signature in a proof without
// trusting the relay.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "crypto/merkle.hpp"
#include "net/message.hpp"

namespace sbft::pbft {

/// Envelope `type` tags for PBFT and SplitBFT traffic.
enum class MsgType : std::uint32_t {
  Request = 1,
  PrePrepare = 2,
  Prepare = 3,
  Commit = 4,
  Reply = 5,
  Checkpoint = 6,
  ViewChange = 7,
  NewView = 8,
  StateRequest = 9,
  StateResponse = 10,
  // Read-only fast path (classic PBFT read optimization): the payload is a
  // regular serialized Request, but replicas execute it against committed
  // state and answer directly instead of ordering it. Falling back to the
  // ordered path re-broadcasts the identical Request bytes as Request.
  ReadRequest = 11,
  ReadReply = 12,
  // Streaming state transfer: chunked snapshot fetch under the Merkle
  // commitment the checkpoint certificate signs (see crypto/merkle.hpp).
  StateChunkRequest = 13,
  StateChunkResponse = 14,
  // SplitBFT-only client/session traffic.
  AttestRequest = 20,
  AttestReport = 21,
  SessionInit = 22,
  SessionAck = 23,
};

[[nodiscard]] constexpr std::uint32_t tag(MsgType t) noexcept {
  return static_cast<std::uint32_t>(t);
}

/// Client request. `payload` is the application operation — in SplitBFT it
/// is AEAD-encrypted for the Execution enclave; the agreement layers only
/// ever see ciphertext. `auth` is the client's HMAC.
struct Request {
  ClientId client{0};
  Timestamp timestamp{0};
  Bytes payload;
  Bytes auth;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<Request> deserialize(ByteView data);
  /// The byte string the client MAC covers.
  [[nodiscard]] Bytes auth_input() const;
  /// Digest identifying the request (client, timestamp, payload).
  [[nodiscard]] Digest digest() const;
};

/// Ordered batch of requests — the unit of agreement.
struct RequestBatch {
  std::vector<Request> requests;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<RequestBatch> deserialize(ByteView data);
  [[nodiscard]] Digest digest() const;
  [[nodiscard]] bool empty() const noexcept { return requests.empty(); }
};

struct PrePrepare {
  View view{0};
  SeqNum seq{0};
  Digest batch_digest;
  Bytes batch;  // serialized RequestBatch (full requests)
  ReplicaId sender{0};

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<PrePrepare> deserialize(ByteView data);
};

struct Prepare {
  View view{0};
  SeqNum seq{0};
  Digest batch_digest;
  ReplicaId sender{0};

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<Prepare> deserialize(ByteView data);
};

struct Commit {
  View view{0};
  SeqNum seq{0};
  Digest batch_digest;
  ReplicaId sender{0};

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<Commit> deserialize(ByteView data);
};

struct Reply {
  View view{0};
  Timestamp timestamp{0};
  ClientId client{0};
  ReplicaId sender{0};
  Bytes result;  // encrypted in SplitBFT
  Bytes auth;    // HMAC for the client

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<Reply> deserialize(ByteView data);
  [[nodiscard]] Bytes auth_input() const;
};

/// Answer to a ReadRequest, served from committed state without ordering.
/// Reply-digest suppression: only the designated responder for the read
/// (Config::read_responder) carries the full `result`; every other replica
/// votes with `result_digest` alone, cutting reply bandwidth to one value +
/// n-1 digests. The client accepts once 2f+1 replies match on
/// (result_digest, exec_seq) AND a full result hashing to that digest
/// arrived; anything else falls back to the ordered path.
struct ReadReply {
  Timestamp timestamp{0};
  ClientId client{0};
  ReplicaId sender{0};
  /// Last executed sequence number when the read was served — the state
  /// version the vote is for.
  SeqNum exec_seq{0};
  /// Digest of the (plaintext) result under the stack's read-digest rule:
  /// sha256(result) for PBFT, a session-keyed HMAC for SplitBFT.
  Digest result_digest;
  bool has_result{false};
  Bytes result;  // full value, designated responder only (encrypted in SplitBFT)
  Bytes auth;    // HMAC for the client

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<ReadReply> deserialize(ByteView data);
  [[nodiscard]] Bytes auth_input() const;
};

struct Checkpoint {
  SeqNum seq{0};
  Digest state_digest;
  ReplicaId sender{0};

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<Checkpoint> deserialize(ByteView data);
};

/// Prepared certificate: one PrePrepare plus 2f matching Prepare envelopes.
struct PreparedProof {
  net::Envelope pre_prepare;
  std::vector<net::Envelope> prepares;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<PreparedProof> deserialize(ByteView data);
};

struct ViewChange {
  View new_view{0};
  SeqNum last_stable{0};
  /// 2f+1 signed Checkpoint envelopes proving `last_stable` (empty at 0).
  std::vector<net::Envelope> checkpoint_proof;
  /// Prepared certificates for sequence numbers above `last_stable`.
  std::vector<PreparedProof> prepared;
  ReplicaId sender{0};

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<ViewChange> deserialize(ByteView data);
};

struct NewView {
  View new_view{0};
  /// 2f+1 signed ViewChange envelopes.
  std::vector<net::Envelope> view_changes;
  /// Re-issued PrePrepare envelopes for the new view.
  std::vector<net::Envelope> pre_prepares;
  ReplicaId sender{0};

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<NewView> deserialize(ByteView data);
};

struct StateRequest {
  SeqNum seq{0};
  ReplicaId sender{0};

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<StateRequest> deserialize(ByteView data);
};

struct StateResponse {
  SeqNum seq{0};
  Bytes snapshot;
  /// 2f+1 Checkpoint envelopes proving the snapshot digest at `seq`.
  std::vector<net::Envelope> checkpoint_proof;
  ReplicaId sender{0};

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<StateResponse> deserialize(ByteView data);
};

/// Upper bound on chunks one StateChunkRequest may name: keeps a forged
/// request from commanding an unbounded burst of responses, and lets the
/// fetcher's in-flight budget stay meaningful.
inline constexpr std::uint32_t kMaxChunksPerRequest = 256;

/// Hard plausibility cap on a single chunk's bytes (well above any sane
/// Config::state_chunk_bytes; deserialization rejects beyond it before
/// the payload is even framed).
inline constexpr std::uint64_t kMaxStateChunkBytes = 16u << 20;

/// Wire chunks may exceed the manifest chunk size by this much: SplitBFT
/// Execution compartments transfer chunks AEAD-sealed (ciphertext =
/// plaintext + 16-byte tag). The fetcher still checks the exact plaintext
/// size against the manifest after unsealing.
inline constexpr std::uint64_t kStateChunkSealOverhead = 16;

/// Asks `sender`'s peer for chunks [first_chunk, first_chunk + count) of
/// the snapshot at stable checkpoint `seq`.
struct StateChunkRequest {
  SeqNum seq{0};
  std::uint64_t first_chunk{0};
  std::uint32_t count{1};
  ReplicaId sender{0};

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<StateChunkRequest> deserialize(
      ByteView data);
};

/// One verified-transferable chunk. Carries the full manifest geometry
/// (total_bytes, chunk_bytes, root) so the receiver can check it against
/// the commitment its 2f+1 checkpoint certificate proved — a lying
/// responder is caught before any chunk bytes are trusted — plus the
/// Merkle path authenticating `chunk` at `index` under `root`.
struct StateChunkResponse {
  SeqNum seq{0};
  std::uint64_t total_bytes{0};
  std::uint64_t chunk_bytes{0};
  Digest root;
  std::uint64_t index{0};
  Bytes chunk;
  crypto::MerkleProof proof;
  /// Normally empty. A response to a StateRequest (the "announce" that
  /// bootstraps a rebooted replica) carries the 2f+1 Checkpoint envelopes
  /// proving the manifest commitment at `seq`, so the receiver can adopt
  /// the checkpoint and start fetching without any prior local state.
  std::vector<net::Envelope> checkpoint_proof;
  ReplicaId sender{0};

  [[nodiscard]] crypto::SnapshotManifest manifest() const noexcept {
    return {total_bytes, chunk_bytes, root};
  }

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<StateChunkResponse> deserialize(
      ByteView data);
};

}  // namespace sbft::pbft
