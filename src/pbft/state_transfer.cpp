#include "pbft/state_transfer.hpp"

#include <algorithm>

namespace sbft::pbft {

Digest snapshot_commitment(ByteView snapshot, std::uint64_t chunk_bytes) {
  crypto::SnapshotManifest manifest;
  manifest.total_bytes = snapshot.size();
  manifest.chunk_bytes = std::max<std::uint64_t>(chunk_bytes, 1);
  manifest.root =
      crypto::build_snapshot_tree(snapshot, manifest.chunk_bytes).root();
  return manifest.commitment();
}

// --------------------------------------------------------- ChunkedSnapshot

ChunkedSnapshot::ChunkedSnapshot(Bytes snapshot, std::uint64_t chunk_bytes)
    : data_(std::move(snapshot)) {
  if (chunk_bytes == 0) chunk_bytes = 1;
  manifest_.total_bytes = data_.size();
  manifest_.chunk_bytes = chunk_bytes;
  tree_.emplace(crypto::build_snapshot_tree(data_, chunk_bytes));
  manifest_.root = tree_->root();
}

ByteView ChunkedSnapshot::chunk_view(std::uint64_t index) const {
  if (!tree_ || index >= manifest_.chunk_count()) return {};
  const std::size_t off =
      static_cast<std::size_t>(index * manifest_.chunk_bytes);
  const std::size_t len = static_cast<std::size_t>(manifest_.chunk_size(index));
  return ByteView{data_.data() + off, len};
}

bool ChunkedSnapshot::fill(std::uint64_t index, StateChunkResponse& resp) const {
  if (!tree_ || index >= manifest_.chunk_count()) return false;
  resp.total_bytes = manifest_.total_bytes;
  resp.chunk_bytes = manifest_.chunk_bytes;
  resp.root = manifest_.root;
  resp.index = index;
  const ByteView chunk = chunk_view(index);
  resp.chunk.assign(chunk.begin(), chunk.end());
  resp.proof = tree_->proof(static_cast<std::size_t>(index));
  return true;
}

// ------------------------------------------------------------ ChunkFetcher

ChunkFetcher::ChunkFetcher(Config config, SeqNum seq, Digest commitment,
                           Micros now)
    : config_(config), seq_(seq), commitment_(commitment) {
  (void)now;
  if (config_.chunks_per_request == 0) config_.chunks_per_request = 1;
  config_.chunks_per_request =
      std::min(config_.chunks_per_request, kMaxChunksPerRequest);
  peers_.resize(config_.n);
  rotor_ = (config_.self + 1) % config_.n;
}

ChunkFetcher::ChunkFetcher(Config config, const Progress& resume_from,
                           Micros now)
    : ChunkFetcher(config, resume_from.seq, resume_from.commitment, now) {
  next_to_take_ = resume_from.next_index;
}

void ChunkFetcher::adopt_manifest(const crypto::SnapshotManifest& manifest) {
  manifest_ = manifest;
  chunk_count_ = manifest.chunk_count();
  // A resumed fetcher's applied prefix may already cover everything.
  next_to_take_ = std::min(next_to_take_, chunk_count_);
  state_.assign(static_cast<std::size_t>(chunk_count_), ChunkState::Needed);
  for (std::uint64_t i = 0; i < next_to_take_; ++i) {
    state_[static_cast<std::size_t>(i)] = ChunkState::Taken;
  }
}

void ChunkFetcher::strike(ReplicaId peer, Micros now) {
  if (peer >= peers_.size()) return;
  auto& score = peers_[peer];
  score.strikes = std::min<std::uint32_t>(score.strikes + 1, 16);
  // Exponential ban: a withholding or forging peer is consulted less and
  // less, but never permanently excluded (pick_peer falls back when every
  // peer is banned, preserving liveness against transient faults).
  const Micros ban =
      config_.chunk_timeout_us * (Micros{1} << std::min(score.strikes, 6u));
  score.banned_until = now + ban;
}

ReplicaId ChunkFetcher::pick_peer(Micros now, ReplicaId avoid) {
  ReplicaId best = config_.self;
  Micros best_ban = ~Micros{0};
  for (std::uint32_t step = 0; step < config_.n; ++step) {
    const ReplicaId candidate = rotor_;
    rotor_ = (rotor_ + 1) % config_.n;
    if (candidate == config_.self) continue;
    if (candidate == avoid && config_.n > 2) continue;
    if (peers_[candidate].banned_until <= now) return candidate;
    if (peers_[candidate].banned_until < best_ban) {
      best_ban = peers_[candidate].banned_until;
      best = candidate;
    }
  }
  if (best != config_.self) return best;  // least-banned fallback
  // Only `avoid` remains (n == 2 or everything else banned harder).
  return avoid == config_.self ? (config_.self + 1) % config_.n : avoid;
}

void ChunkFetcher::note_inflight(std::uint64_t delta_up,
                                 std::uint64_t delta_down) {
  inflight_bytes_ += delta_up;
  inflight_bytes_ -= std::min(inflight_bytes_, delta_down);
  stats_.peak_inflight_bytes =
      std::max(stats_.peak_inflight_bytes, inflight_bytes_);
}

std::vector<ChunkFetcher::Request> ChunkFetcher::pump(Micros now) {
  std::vector<Request> requests;
  if (complete()) return requests;

  // 1. Expire timed-out assignments: the chunk goes back to Needed, the
  //    peer takes a strike, and the re-assignment below avoids it.
  for (auto it = assigned_.begin(); it != assigned_.end();) {
    if (now < it->second.deadline) {
      ++it;
      continue;
    }
    const std::uint64_t index = it->first;
    strike(it->second.peer, now);
    last_failed_peer_[index] = it->second.peer;
    ++stats_.refetches;
    if (it->second.counted) note_inflight(0, manifest_->chunk_size(index));
    if (manifest_) state_[static_cast<std::size_t>(index)] = ChunkState::Needed;
    it = assigned_.erase(it);
  }

  // 2. Pre-manifest: probe one peer for chunk 0 (it carries the geometry).
  if (!manifest_) {
    if (assigned_.empty()) {
      ReplicaId avoid = config_.self;
      if (const auto it = last_failed_peer_.find(0);
          it != last_failed_peer_.end()) {
        avoid = it->second;
      }
      const ReplicaId peer = pick_peer(now, avoid);
      assigned_[0] = {peer, now + config_.chunk_timeout_us, false};
      requests.push_back({peer, 0, 1});
      ++stats_.requests_sent;
    }
    return requests;
  }

  // 3. Assign Needed chunks under the in-flight budget, grouping
  //    consecutive indices into per-peer range requests. Always allow at
  //    least one outstanding chunk so a budget smaller than one chunk
  //    cannot deadlock the transfer.
  std::uint64_t index = next_to_take_;
  while (index < chunk_count_) {
    if (state_[static_cast<std::size_t>(index)] != ChunkState::Needed) {
      ++index;
      continue;
    }
    // The head chunk (next_to_take_) is always requestable even over
    // budget: buffered out-of-order chunks may fill the budget while the
    // head is missing, and only the head's arrival can drain them.
    if (index != next_to_take_ &&
        inflight_bytes_ + manifest_->chunk_size(index) >
            config_.inflight_max_bytes) {
      break;
    }
    ReplicaId avoid = config_.self;
    if (const auto it = last_failed_peer_.find(index);
        it != last_failed_peer_.end()) {
      avoid = it->second;
    }
    const ReplicaId peer = pick_peer(now, avoid);
    Request req{peer, index, 0};
    while (index < chunk_count_ && req.count < config_.chunks_per_request &&
           state_[static_cast<std::size_t>(index)] == ChunkState::Needed) {
      if (req.count > 0 &&
          inflight_bytes_ + manifest_->chunk_size(index) >
              config_.inflight_max_bytes) {
        break;
      }
      state_[static_cast<std::size_t>(index)] = ChunkState::Requested;
      assigned_[index] = {peer, now + config_.chunk_timeout_us, true};
      note_inflight(manifest_->chunk_size(index), 0);
      ++req.count;
      ++index;
    }
    requests.push_back(req);
    ++stats_.requests_sent;
  }
  return requests;
}

ChunkFetcher::ChunkResult ChunkFetcher::on_chunk(const StateChunkResponse& resp,
                                                 Micros now) {
  if (resp.seq != seq_ || complete()) return ChunkResult::Ignored;

  // Commitment gate: the responder's claimed geometry must hash to the
  // digest 2f+1 checkpoint signatures vouched for. This is what defeats
  // stale-root replay and size lies before any chunk byte is considered.
  if (resp.manifest().commitment() != commitment_) {
    ++stats_.chunks_rejected;
    strike(resp.sender, now);
    return ChunkResult::Rejected;
  }
  if (!manifest_) adopt_manifest(resp.manifest());

  if (resp.index >= chunk_count_) {
    ++stats_.chunks_rejected;
    strike(resp.sender, now);
    return ChunkResult::Rejected;
  }
  const auto slot = static_cast<std::size_t>(resp.index);
  if (state_[slot] == ChunkState::Ready || state_[slot] == ChunkState::Taken) {
    ++stats_.chunks_duplicate;
    return ChunkResult::Duplicate;
  }

  // Byte-level verification: exact advertised size and a Merkle path from
  // this chunk to the proven root. A forged chunk (valid envelope MAC,
  // wrong bytes) dies here and strikes its sender.
  if (resp.chunk.size() != manifest_->chunk_size(resp.index) ||
      !crypto::MerkleTree::verify(manifest_->root,
                                  static_cast<std::size_t>(resp.index),
                                  static_cast<std::size_t>(chunk_count_),
                                  resp.chunk, resp.proof)) {
    ++stats_.chunks_rejected;
    strike(resp.sender, now);
    last_failed_peer_[resp.index] = resp.sender;
    if (const auto it = assigned_.find(resp.index);
        it != assigned_.end() && it->second.peer == resp.sender) {
      state_[slot] = ChunkState::Needed;
      if (it->second.counted) note_inflight(0, manifest_->chunk_size(resp.index));
      assigned_.erase(it);
      ++stats_.refetches;
    }
    return ChunkResult::Rejected;
  }

  // Accepted: the requested-estimate becomes buffered-actual (same size,
  // verified above). Unsolicited-but-valid chunks (the chunk-0 announce
  // that starts a transfer) enter the buffered budget here too.
  bool counted = false;
  if (const auto it = assigned_.find(resp.index); it != assigned_.end()) {
    counted = it->second.counted;
    assigned_.erase(it);
  }
  if (!counted) note_inflight(resp.chunk.size(), 0);
  state_[slot] = ChunkState::Ready;
  ready_[resp.index] = resp.chunk;
  ++stats_.chunks_accepted;
  stats_.bytes_received += resp.chunk.size();
  return ChunkResult::Accepted;
}

std::vector<Bytes> ChunkFetcher::take_ready() {
  std::vector<Bytes> chunks;
  while (next_to_take_ < chunk_count_) {
    const auto it = ready_.find(next_to_take_);
    if (it == ready_.end()) break;
    note_inflight(0, it->second.size());
    chunks.push_back(std::move(it->second));
    ready_.erase(it);
    state_[static_cast<std::size_t>(next_to_take_)] = ChunkState::Taken;
    ++next_to_take_;
  }
  return chunks;
}

std::optional<Micros> ChunkFetcher::next_deadline() const {
  if (complete()) return std::nullopt;
  std::optional<Micros> deadline;
  for (const auto& [index, a] : assigned_) {
    if (!deadline || a.deadline < *deadline) deadline = a.deadline;
  }
  if (!deadline) {
    // Nothing outstanding (budget exhausted waiting on take_ready, or all
    // peers banned): wake when the earliest ban lifts so pump can retry.
    for (ReplicaId p = 0; p < peers_.size(); ++p) {
      if (p == config_.self) continue;
      const Micros until = peers_[p].banned_until;
      if (until > 0 && (!deadline || until < *deadline)) deadline = until;
    }
  }
  return deadline;
}

// --------------------------------------------------------- SnapshotApplier

SnapshotApplier::~SnapshotApplier() { abort(); }

bool SnapshotApplier::feed(ByteView data) {
  if (failed_) return false;
  std::size_t off = 0;
  // Accumulate the 4-byte little-endian app length prefix.
  while (header_.size() < 4 && off < data.size()) {
    header_.push_back(data[off++]);
    if (header_.size() == 4) {
      app_len_ = static_cast<std::uint64_t>(header_[0]) |
                 static_cast<std::uint64_t>(header_[1]) << 8 |
                 static_cast<std::uint64_t>(header_[2]) << 16 |
                 static_cast<std::uint64_t>(header_[3]) << 24;
      app_->apply_begin(app_len_);
      begun_ = true;
    }
  }
  if (header_.size() < 4) return true;
  // Stream the app region straight into the application's staging.
  if (app_fed_ < app_len_) {
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(
            app_len_ - app_fed_, data.size() - off));
    if (!app_->apply_chunk(data.subspan(off, want))) {
      failed_ = true;
      app_->apply_abort();
      return false;
    }
    app_fed_ += want;
    off += want;
  }
  // Everything after the app region is the (small) protocol tail.
  if (off < data.size()) {
    tail_.insert(tail_.end(), data.begin() + static_cast<std::ptrdiff_t>(off),
                 data.end());
  }
  return true;
}

bool SnapshotApplier::finish() {
  if (failed_ || !app_complete() || !begun_) return false;
  if (!app_->apply_end()) {
    failed_ = true;
    return false;
  }
  begun_ = false;
  return true;
}

void SnapshotApplier::abort() {
  if (begun_) app_->apply_abort();
  begun_ = false;
  failed_ = true;
}

}  // namespace sbft::pbft
