// Shard router: N per-shard BFT client engines behind one submit().
//
// The keyspace is hash-partitioned over N independent BFT groups
// (`kv::shard_of`). Single-key ops go straight to their home shard
// through an unmodified `pbft::Client` / `splitbft::SplitClient`, so
// they keep every single-group optimization (batching, pipelining, the
// PR-5 read fast path). Multi-key `kv::MultiOp`s that span shards run a
// client-side two-phase commit whose prepare/commit/abort records are
// ordered ops inside each participant shard — every phase is
// BFT-replicated, so the protocol state survives replica faults and the
// per-shard reply cache makes retransmitted decisions idempotent.
//
// Commit protocol (home-shard decision authority):
//  1. Prepare: the write set is split per shard; each participant
//     validates + locks it. The lowest participant shard is the *home*;
//     its prepare carries the expiry lease.
//  2. Decide: if every vote is Ok, the coordinator orders TxCommit in
//     the home shard. That record IS the commit point — until it
//     executes, no shard has applied anything; after it, the decision
//     is durable in a BFT log and replayable.
//  3. Fanout: TxCommit (or TxAbort) to the remaining participants.
//
// A crashed coordinator cannot wedge the system: the home shard
// presume-aborts the transaction after `tx_expiry_ops` ordered ops
// (deterministic, so replicas agree), and any client blocked on a stale
// lock runs the termination protocol — TxResolve at the blocker's home,
// then replaying the decision at the shard holding the lock. Atomicity
// holds against crashed coordinators and (via each shard's vote quorum)
// up to f Byzantine replicas per shard; a Byzantine *client* can abort
// or stall only transactions it could already abort as a coordinator.
#pragma once

#include <cassert>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "apps/kv_store.hpp"
#include "common/clock.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace sbft::shard {

/// An envelope plus the shard group whose network must carry it. Shards
/// are fully independent networks (their principal id spaces coincide),
/// so the tag is load-bearing, not advisory.
struct Routed {
  std::uint32_t shard{0};
  net::Envelope env;
};

/// Seed-derived per-shard provisioning: every process (sim harness, TCP
/// replica, loadgen, run_cluster.py) derives shard `s`'s keys from
/// `shard_seed(deployment_seed, s)`, so groups have unrelated key
/// material without any distribution channel (splitmix64 finalizer).
[[nodiscard]] constexpr std::uint64_t shard_seed(std::uint64_t seed,
                                                 std::uint32_t shard) noexcept {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (shard + 1ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct RouterOptions {
  std::uint32_t shards{1};
  /// Home-shard lease: a prepared transaction is presume-aborted after
  /// this many further ordered ops execute at home.
  std::uint32_t tx_expiry_ops{2000};
  /// How often a TxBusy op is retried after resolving the blocker.
  std::uint32_t busy_retries{4};
};

/// Per-shard split of a multi-key batch. `home` is the decision
/// authority: the lowest participating shard, so every honest client
/// derives the same home for the same write set.
struct TxPlan {
  std::map<std::uint32_t, std::vector<apps::kv::SubOp>> by_shard;
  std::uint32_t home{0};
};
[[nodiscard]] std::optional<TxPlan> plan_multi(const apps::kv::MultiOp& multi,
                                               std::uint32_t shards);

struct RouterStats {
  std::uint64_t single_key_ops{0};
  std::uint64_t multi_ops{0};
  std::uint64_t single_shard_multi{0};  // executed as one ordered op
  std::uint64_t cross_shard_tx{0};
  std::uint64_t tx_commits{0};
  std::uint64_t tx_aborts_vote{0};     // CAS/NotFound vote failures
  std::uint64_t tx_aborts_busy{0};     // gave up on a contended lock
  std::uint64_t tx_aborts_expired{0};  // home lease expired before commit
  std::uint64_t busy_retries{0};
  std::uint64_t resolves{0};
  std::uint64_t blocker_commit_replays{0};
  std::uint64_t blocker_abort_replays{0};
};

/// One logical client over N shard groups. Engine is `pbft::Client` or
/// `splitbft::SplitClient` (same closed-loop surface); the router itself
/// is closed-loop: one submit() until the matching on_reply() result.
template <typename Engine>
class Router {
 public:
  /// Coordinator phase, exposed so fault tests can stage crashes at
  /// exact protocol points (e.g. after the home decision is ordered but
  /// before the commit fanout).
  enum class Phase : std::uint8_t {
    Idle,
    Single,       // single-key / opaque / single-shard-multi pass-through
    Prepare,      // 2PC phase 1 outstanding
    DecideHome,   // TxCommit ordering at home (the commit point)
    AbortHome,    // TxAbort ordering at home
    CommitFanout,
    AbortFanout,
    ResolveBlocker,   // TxResolve at the blocker's home shard
    CleanupBlocker,   // replay the blocker's decision where we hit it
  };

  Router(std::vector<std::unique_ptr<Engine>> engines, RouterOptions options)
      : options_(options), engines_(std::move(engines)) {
    assert(!engines_.empty());
    assert(engines_.size() == options_.shards);
    id_ = engines_[0]->id();
  }

  [[nodiscard]] ClientId id() const noexcept { return id_; }
  [[nodiscard]] Phase phase() const noexcept { return phase_; }
  [[nodiscard]] apps::kv::TxId current_txid() const noexcept { return txid_; }
  [[nodiscard]] bool in_flight() const noexcept {
    return phase_ != Phase::Idle;
  }
  [[nodiscard]] const RouterStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Engine& engine(std::uint32_t shard) { return *engines_[shard]; }
  [[nodiscard]] std::uint32_t shards() const noexcept {
    return static_cast<std::uint32_t>(engines_.size());
  }

  [[nodiscard]] std::uint64_t fast_reads() const noexcept {
    std::uint64_t total = 0;
    for (const auto& e : engines_) total += e->fast_reads();
    return total;
  }
  [[nodiscard]] std::uint64_t read_fallbacks() const noexcept {
    std::uint64_t total = 0;
    for (const auto& e : engines_) total += e->read_fallbacks();
    return total;
  }

  /// Coordinator-side 2PC state, for GC bounds tests: everything must
  /// return to zero once the in-flight operation completes.
  struct GcFootprint {
    std::size_t active_tx{0};
    std::size_t waiting_shards{0};
    std::size_t prepared_shards{0};
  };
  [[nodiscard]] GcFootprint gc_footprint() const noexcept {
    GcFootprint fp;
    fp.active_tx = phase_ == Phase::Idle ? 0 : 1;
    fp.waiting_shards = waiting_.size();
    fp.prepared_shards = prepared_.size();
    return fp;
  }

  /// Starts one operation (single-key, Multi, or anything else — opaque
  /// bytes fall through to shard 0). Must not be called while in flight.
  [[nodiscard]] std::vector<Routed> submit(Bytes operation, Micros now,
                                           bool read_only = false) {
    assert(phase_ == Phase::Idle);
    original_op_ = std::move(operation);
    original_read_only_ = read_only;
    busy_attempts_ = 0;
    switch (apps::kv::classify(original_op_)) {
      case apps::kv::OpKind::SingleKey:
        ++stats_.single_key_ops;
        break;
      case apps::kv::OpKind::Multi:
        ++stats_.multi_ops;
        break;
      default:
        ++stats_.single_key_ops;  // opaque pass-through
        break;
    }
    return start_op(now);
  }

  /// Feeds a reply that arrived on `shard`'s network. Returns the final
  /// result exactly once per submit(); `out` receives protocol traffic
  /// (engine retransmits/fallbacks and 2PC phase transitions).
  [[nodiscard]] std::optional<Bytes> on_reply(std::uint32_t shard,
                                              const net::Envelope& env,
                                              Micros now,
                                              std::vector<Routed>& out) {
    std::vector<net::Envelope> eng_out;
    auto result = engines_[shard]->on_reply(env, now, eng_out);
    for (auto& e : eng_out) out.push_back(Routed{shard, std::move(e)});
    if (!result) return std::nullopt;
    return on_engine_result(shard, *std::move(result), now, out);
  }

  /// Engine retransmission timers, all shards.
  [[nodiscard]] std::vector<Routed> tick(Micros now) {
    std::vector<Routed> out;
    for (std::uint32_t s = 0; s < engines_.size(); ++s) {
      for (auto& e : engines_[s]->tick(now)) {
        out.push_back(Routed{s, std::move(e)});
      }
    }
    return out;
  }

 private:
  using KvStatus = apps::KvStatus;
  using TxId = apps::kv::TxId;

  void submit_on(std::uint32_t shard, Bytes op, Micros now,
                 std::vector<Routed>& out, bool read_only = false) {
    for (auto& e : engines_[shard]->submit(std::move(op), now, read_only)) {
      out.push_back(Routed{shard, std::move(e)});
    }
  }

  [[nodiscard]] std::vector<Routed> start_op(Micros now) {
    std::vector<Routed> out;
    start_op(now, out);
    return out;
  }

  void start_op(Micros now, std::vector<Routed>& out) {
    const auto kind = apps::kv::classify(original_op_);
    if (kind == apps::kv::OpKind::Multi) {
      const auto multi = apps::kv::decode_multi(original_op_);
      auto plan = multi ? plan_multi(*multi, shards()) : std::nullopt;
      if (plan && plan->by_shard.size() > 1) {
        start_tx(*std::move(plan), now, out);
        return;
      }
      if (plan && busy_attempts_ == 0) ++stats_.single_shard_multi;
      phase_ = Phase::Single;
      single_shard_ = plan ? plan->home : 0;
      submit_on(single_shard_, original_op_, now, out);
      return;
    }
    std::uint32_t target = 0;
    if (const auto key = apps::kv::key_of(original_op_)) {
      target = apps::kv::shard_of(*key, shards());
    }
    phase_ = Phase::Single;
    single_shard_ = target;
    submit_on(target, original_op_, now, out, original_read_only_);
  }

  void start_tx(TxPlan plan, Micros now, std::vector<Routed>& out) {
    if (busy_attempts_ == 0) ++stats_.cross_shard_tx;
    plan_ = std::move(plan);
    // A retry after a busy-abort uses a fresh txid: the old one may have
    // an abort decision recorded anywhere.
    txid_ = TxId{id_, next_serial_++};
    phase_ = Phase::Prepare;
    waiting_.clear();
    prepared_.clear();
    failure_.reset();
    failure_value_.clear();
    blocker_.reset();
    for (const auto& [shard, subs] : plan_.by_shard) waiting_.insert(shard);
    for (const auto& [shard, subs] : plan_.by_shard) {
      submit_on(shard,
                apps::kv::encode_tx_prepare(txid_, plan_.home,
                                            shard == plan_.home,
                                            options_.tx_expiry_ops, subs),
                now, out);
    }
  }

  [[nodiscard]] std::optional<Bytes> on_engine_result(
      std::uint32_t shard, Bytes result, Micros now,
      std::vector<Routed>& out) {
    const auto reply = apps::kv::decode_reply(result);
    switch (phase_) {
      case Phase::Single: {
        if (reply && reply->status == KvStatus::TxBusy &&
            !original_read_only_ && busy_attempts_ < options_.busy_retries) {
          if (begin_resolve(shard, reply->value, result, now, out)) {
            return std::nullopt;
          }
        }
        return finish(std::move(result));
      }
      case Phase::Prepare: {
        waiting_.erase(shard);
        if (reply && reply->status == KvStatus::Ok) {
          prepared_.insert(shard);
        } else if (!failure_) {
          failure_ = reply ? reply->status : KvStatus::BadRequest;
          failure_value_ = reply ? reply->value : Bytes{};
          if (reply && reply->status == KvStatus::TxBusy) {
            blocker_ = apps::kv::decode_busy_info(reply->value);
            blocker_shard_ = shard;
          }
        }
        if (!waiting_.empty()) return std::nullopt;
        if (!failure_) {
          phase_ = Phase::DecideHome;
          submit_on(plan_.home, apps::kv::encode_tx_commit(txid_), now, out);
        } else {
          // The home shard always learns the abort (even if it voted
          // no and holds nothing): the recorded decision is what makes
          // TxResolve answers for this txid consistent.
          phase_ = Phase::AbortHome;
          submit_on(plan_.home, apps::kv::encode_tx_abort(txid_), now, out);
        }
        return std::nullopt;
      }
      case Phase::DecideHome: {
        if (reply && reply->status == KvStatus::TxCommitted) {
          ++stats_.tx_commits;
          return enter_fanout(/*commit=*/true, now, out);
        }
        // The home lease expired and presume-aborted before our commit
        // was ordered: nothing has been applied anywhere, unwind.
        ++stats_.tx_aborts_expired;
        failure_ = KvStatus::TxAborted;
        failure_value_.clear();
        return enter_fanout(/*commit=*/false, now, out);
      }
      case Phase::AbortHome:
        return enter_fanout(/*commit=*/false, now, out);
      case Phase::CommitFanout: {
        waiting_.erase(shard);
        if (!waiting_.empty()) return std::nullopt;
        return finish(apps::kv::encode_reply(KvStatus::TxCommitted));
      }
      case Phase::AbortFanout: {
        waiting_.erase(shard);
        if (!waiting_.empty()) return std::nullopt;
        if (failure_ == KvStatus::TxBusy && blocker_ &&
            busy_attempts_ < options_.busy_retries) {
          const Bytes saved = failure_value_;
          Bytes final_reply =
              apps::kv::encode_reply(*failure_, failure_value_);
          if (begin_resolve(blocker_shard_, saved, final_reply, now, out)) {
            return std::nullopt;
          }
        }
        return finish_failure();
      }
      case Phase::ResolveBlocker: {
        ++stats_.resolves;
        if (reply && (reply->status == KvStatus::TxCommitted ||
                      reply->status == KvStatus::TxAborted)) {
          const bool commit = reply->status == KvStatus::TxCommitted;
          if (resolve_target_ != blocker_->home_shard) {
            // Replay the durable decision at the shard still holding
            // the lock, then retry our own operation.
            (commit ? stats_.blocker_commit_replays
                    : stats_.blocker_abort_replays)++;
            phase_ = Phase::CleanupBlocker;
            submit_on(resolve_target_,
                      commit ? apps::kv::encode_tx_commit(blocker_->blocker)
                             : apps::kv::encode_tx_abort(blocker_->blocker),
                      now, out);
            return std::nullopt;
          }
          start_op(now, out);
          return std::nullopt;
        }
        // TxUndecided: the blocker's home lease is still live — the
        // coordinator may yet commit, so the lock must stand. Give up
        // with the original busy reply; the caller retries as new work.
        ++stats_.tx_aborts_busy;
        return finish(std::move(pending_failure_reply_));
      }
      case Phase::CleanupBlocker: {
        start_op(now, out);
        return std::nullopt;
      }
      case Phase::Idle:
        break;
    }
    return std::nullopt;
  }

  /// Arms the termination protocol for the blocker named in a TxBusy
  /// payload. False if the payload is malformed (caller fails the op).
  [[nodiscard]] bool begin_resolve(std::uint32_t observed_shard,
                                   const Bytes& busy_payload,
                                   Bytes failure_reply, Micros now,
                                   std::vector<Routed>& out) {
    auto info = apps::kv::decode_busy_info(busy_payload);
    if (!info || info->home_shard >= shards()) return false;
    blocker_ = info;
    ++busy_attempts_;
    ++stats_.busy_retries;
    pending_failure_reply_ = std::move(failure_reply);
    resolve_target_ = observed_shard;
    phase_ = Phase::ResolveBlocker;
    submit_on(info->home_shard,
              apps::kv::encode_tx_resolve(info->blocker), now, out);
    return true;
  }

  [[nodiscard]] std::optional<Bytes> enter_fanout(bool commit, Micros now,
                                                  std::vector<Routed>& out) {
    waiting_.clear();
    for (const auto shard : prepared_) {
      if (shard != plan_.home) waiting_.insert(shard);
    }
    if (waiting_.empty()) {
      if (commit) return finish(apps::kv::encode_reply(KvStatus::TxCommitted));
      if (failure_ == KvStatus::TxBusy && blocker_ &&
          busy_attempts_ < options_.busy_retries) {
        const Bytes saved = failure_value_;
        Bytes final_reply = apps::kv::encode_reply(*failure_, failure_value_);
        if (begin_resolve(blocker_shard_, saved, final_reply, now, out)) {
          return std::nullopt;
        }
      }
      return finish_failure();
    }
    phase_ = commit ? Phase::CommitFanout : Phase::AbortFanout;
    for (const auto shard : waiting_) {
      submit_on(shard,
                commit ? apps::kv::encode_tx_commit(txid_)
                       : apps::kv::encode_tx_abort(txid_),
                now, out);
    }
    return std::nullopt;
  }

  [[nodiscard]] Bytes finish_failure() {
    const KvStatus status = failure_.value_or(KvStatus::BadRequest);
    if (status == KvStatus::TxBusy) {
      ++stats_.tx_aborts_busy;
    } else if (status != KvStatus::TxAborted) {
      ++stats_.tx_aborts_vote;
    }
    return finish(apps::kv::encode_reply(status, failure_value_));
  }

  [[nodiscard]] Bytes finish(Bytes result) {
    phase_ = Phase::Idle;
    waiting_.clear();
    prepared_.clear();
    failure_.reset();
    failure_value_.clear();
    blocker_.reset();
    pending_failure_reply_.clear();
    original_op_.clear();
    return result;
  }

  RouterOptions options_;
  std::vector<std::unique_ptr<Engine>> engines_;
  ClientId id_{0};
  RouterStats stats_;

  Phase phase_{Phase::Idle};
  Bytes original_op_;
  bool original_read_only_{false};
  std::uint32_t single_shard_{0};
  std::uint32_t busy_attempts_{0};

  std::uint64_t next_serial_{1};
  TxId txid_{};
  TxPlan plan_;
  std::set<std::uint32_t> waiting_;
  std::set<std::uint32_t> prepared_;
  std::optional<KvStatus> failure_;
  Bytes failure_value_;
  std::optional<apps::kv::BusyInfo> blocker_;
  std::uint32_t blocker_shard_{0};
  std::uint32_t resolve_target_{0};
  Bytes pending_failure_reply_;
};

}  // namespace sbft::shard
