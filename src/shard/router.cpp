#include "shard/router.hpp"

namespace sbft::shard {

std::optional<TxPlan> plan_multi(const apps::kv::MultiOp& multi,
                                 std::uint32_t shards) {
  if (multi.subs.empty() || multi.subs.size() > apps::kv::kMaxMultiSubs) {
    return std::nullopt;
  }
  TxPlan plan;
  for (const auto& sub : multi.subs) {
    const auto shard = apps::kv::shard_of(sub.key, shards);
    plan.by_shard[shard].push_back(sub);
  }
  // Lowest participant shard is the decision authority — a pure function
  // of the write set, so every honest coordinator and recovery client
  // agrees where decisions live.
  plan.home = plan.by_shard.begin()->first;
  return plan;
}

}  // namespace sbft::shard
