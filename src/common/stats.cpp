#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>
#include <numeric>

namespace sbft {

LatencyRecorder::Summary LatencyRecorder::summarize() const {
  std::vector<Micros> copy;
  {
    const std::scoped_lock lock(mutex_);
    copy = samples_;
  }
  Summary s;
  s.count = copy.size();
  if (copy.empty()) return s;
  std::sort(copy.begin(), copy.end());
  const auto total =
      std::accumulate(copy.begin(), copy.end(), std::uint64_t{0});
  s.mean_us = static_cast<double>(total) / static_cast<double>(copy.size());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(copy.size() - 1) + 0.5);
    return copy[std::min(idx, copy.size() - 1)];
  };
  s.p50_us = at(0.50);
  s.p95_us = at(0.95);
  s.p99_us = at(0.99);
  s.max_us = copy.back();
  return s;
}

// ------------------------------------------------------- LatencyHistogram

LatencyHistogram::LatencyHistogram() : counts_(kBucketCount, 0) {}

std::size_t LatencyHistogram::bucket_index(Micros v) noexcept {
  if (v < kLinear) return static_cast<std::size_t>(v);
  const unsigned msb = 63 - static_cast<unsigned>(std::countl_zero(v));
  const std::uint64_t sub = (v >> (msb - 4)) & (kSubBuckets - 1);
  return static_cast<std::size_t>(kLinear + (msb - 7) * kSubBuckets + sub);
}

Micros LatencyHistogram::bucket_lower(std::size_t index) noexcept {
  if (index < kLinear) return static_cast<Micros>(index);
  const std::uint64_t i = index - kLinear;
  const unsigned msb = static_cast<unsigned>(7 + i / kSubBuckets);
  const std::uint64_t sub = i % kSubBuckets;
  return (Micros{1} << msb) + (sub << (msb - 4));
}

Micros LatencyHistogram::bucket_upper(std::size_t index) noexcept {
  if (index < kLinear) return static_cast<Micros>(index) + 1;
  const std::uint64_t i = index - kLinear;
  const unsigned msb = static_cast<unsigned>(7 + i / kSubBuckets);
  const Micros upper = bucket_lower(index) + (Micros{1} << (msb - 4));
  // The topmost bucket's exclusive upper bound is 2^64, which wraps to 0:
  // saturate so lower < upper holds for every bucket.
  return upper == 0 ? std::numeric_limits<Micros>::max() : upper;
}

void LatencyHistogram::record(Micros sample_us) {
  const std::size_t index = bucket_index(sample_us);
  const std::scoped_lock lock(mutex_);
  ++counts_[index];
  ++total_;
  sum_us_ += static_cast<double>(sample_us);
  if (sample_us > max_us_) max_us_ = sample_us;
}

Micros LatencyHistogram::quantile(double q) const {
  const std::scoped_lock lock(mutex_);
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (counts_[i] != 0 && seen > target) {
      // Midpoint without overflow: lower + upper can exceed 2^64 for the
      // high buckets even though each bound fits.
      const Micros lower = bucket_lower(i);
      const Micros upper = bucket_upper(i);
      return lower + (upper - lower - 1) / 2;
    }
  }
  return max_us_;
}

std::uint64_t LatencyHistogram::count() const {
  const std::scoped_lock lock(mutex_);
  return total_;
}

double LatencyHistogram::mean_us() const {
  const std::scoped_lock lock(mutex_);
  return total_ ? sum_us_ / static_cast<double>(total_) : 0.0;
}

Micros LatencyHistogram::max_us() const {
  const std::scoped_lock lock(mutex_);
  return max_us_;
}

std::vector<LatencyHistogram::Bucket> LatencyHistogram::buckets() const {
  const std::scoped_lock lock(mutex_);
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out.push_back(Bucket{bucket_lower(i), bucket_upper(i), counts_[i]});
  }
  return out;
}

LatencySummary LatencyHistogram::summarize() const {
  LatencySummary s;
  s.count = static_cast<std::size_t>(count());
  s.mean_us = mean_us();
  s.p50_us = quantile(0.50);
  s.p95_us = quantile(0.95);
  s.p99_us = quantile(0.99);
  s.max_us = max_us();
  return s;
}

void LatencyHistogram::reset() {
  const std::scoped_lock lock(mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_us_ = 0;
  max_us_ = 0;
}

std::string format_row(const std::string& label, int clients,
                       double ops_per_sec, double mean_lat_ms) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-32s %8d %14.1f %12.3f", label.c_str(),
                clients, ops_per_sec, mean_lat_ms);
  return std::string(buf);
}

}  // namespace sbft
