#include "common/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace sbft {

LatencyRecorder::Summary LatencyRecorder::summarize() const {
  std::vector<Micros> copy;
  {
    const std::scoped_lock lock(mutex_);
    copy = samples_;
  }
  Summary s;
  s.count = copy.size();
  if (copy.empty()) return s;
  std::sort(copy.begin(), copy.end());
  const auto total =
      std::accumulate(copy.begin(), copy.end(), std::uint64_t{0});
  s.mean_us = static_cast<double>(total) / static_cast<double>(copy.size());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(copy.size() - 1) + 0.5);
    return copy[std::min(idx, copy.size() - 1)];
  };
  s.p50_us = at(0.50);
  s.p95_us = at(0.95);
  s.p99_us = at(0.99);
  s.max_us = copy.back();
  return s;
}

std::string format_row(const std::string& label, int clients,
                       double ops_per_sec, double mean_lat_ms) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-32s %8d %14.1f %12.3f", label.c_str(),
                clients, ops_per_sec, mean_lat_ms);
  return std::string(buf);
}

}  // namespace sbft
