// Minimal bounds-checked binary serialization.
//
// All protocol messages are encoded with this codec: little-endian fixed
// width integers, length-prefixed byte strings, no implicit padding.
// Readers never trust their input: every accessor checks remaining length
// and flips a sticky error flag instead of reading out of bounds.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace sbft {

class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Length-prefixed (u32) byte string.
  void bytes(ByteView data);
  /// Raw bytes, no length prefix (caller knows the width, e.g. digests).
  void raw(ByteView data);
  void str(const std::string& s);
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Pre-sizes the buffer for `n` more bytes of writes. Hot paths that know
  /// their encoded size (envelope serialization, signing input) call this
  /// once instead of growing the vector byte by byte.
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  [[nodiscard]] const Bytes& data() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() && noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(ByteView data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] Bytes bytes();
  /// Reads exactly `n` raw bytes (no length prefix).
  [[nodiscard]] Bytes raw(std::size_t n);
  [[nodiscard]] std::string str();
  [[nodiscard]] bool boolean() { return u8() != 0; }

  /// Advances past `n` bytes without materializing them (zero-copy parsers
  /// that slice the underlying frame instead of copying out).
  void skip(std::size_t n) noexcept;
  /// Reads `n` raw bytes as a view into the input (no copy; valid only as
  /// long as the input buffer). Empty view + failed() on underrun.
  [[nodiscard]] ByteView view(std::size_t n) noexcept;
  /// Current read offset from the start of the input.
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  /// True if any read ran past the end of input.
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  /// True if the input was fully consumed without errors.
  [[nodiscard]] bool done() const noexcept {
    return !failed_ && pos_ == data_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return failed_ ? 0 : data_.size() - pos_;
  }

 private:
  [[nodiscard]] bool need(std::size_t n) noexcept;

  ByteView data_;
  std::size_t pos_{0};
  bool failed_{false};
};

}  // namespace sbft
