// Byte-buffer helpers: hex codecs, constant-time comparison, concatenation.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sbft {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Encodes `data` as lowercase hex.
[[nodiscard]] std::string to_hex(ByteView data);

/// Decodes hex (upper or lower case); nullopt on odd length or bad digit.
[[nodiscard]] std::optional<Bytes> from_hex(std::string_view hex);

/// Constant-time equality, suitable for MAC/digest comparison.
[[nodiscard]] bool ct_equal(ByteView a, ByteView b) noexcept;

/// Builds a Bytes from a string literal / view (no NUL terminator).
[[nodiscard]] Bytes to_bytes(std::string_view s);

/// Interprets bytes as text (for tests and app payloads).
[[nodiscard]] std::string to_string_view_copy(ByteView data);

/// Appends `src` to `dst`.
void append(Bytes& dst, ByteView src);

/// A fixed 32-byte value (digests, keys). Value-semantic, hashable.
struct Digest {
  std::array<std::uint8_t, 32> bytes{};

  [[nodiscard]] friend bool operator==(const Digest&, const Digest&) = default;
  [[nodiscard]] friend auto operator<=>(const Digest&, const Digest&) = default;

  [[nodiscard]] ByteView view() const noexcept {
    return ByteView{bytes.data(), bytes.size()};
  }
  [[nodiscard]] std::string hex() const { return to_hex(view()); }
  [[nodiscard]] std::string short_hex() const { return hex().substr(0, 8); }
  [[nodiscard]] bool is_zero() const noexcept {
    for (auto b : bytes) {
      if (b != 0) return false;
    }
    return true;
  }
};

}  // namespace sbft

template <>
struct std::hash<sbft::Digest> {
  std::size_t operator()(const sbft::Digest& d) const noexcept {
    std::size_t h = 0;
    for (std::size_t i = 0; i < sizeof(std::size_t); ++i) {
      h = (h << 8) | d.bytes[i];
    }
    return h;
  }
};
