// Thread-safe leveled logging. Silent (Warn) by default so benchmarks are
// not perturbed; tests raise the level when debugging a failure.
#pragma once

#include <sstream>
#include <string>

namespace sbft {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Off = 4 };

namespace log_detail {
void emit(LogLevel level, const std::string& component, const std::string& msg);
[[nodiscard]] LogLevel current_level() noexcept;
}  // namespace log_detail

void set_log_level(LogLevel level) noexcept;

/// Usage: Logger log{"pbft/r0"}; log.info() << "entered view " << v;
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  class Line {
   public:
    Line(LogLevel level, const std::string& component) noexcept
        : level_(level), component_(component),
          enabled_(level >= log_detail::current_level()) {}
    Line(const Line&) = delete;
    Line& operator=(const Line&) = delete;
    ~Line() {
      if (enabled_) log_detail::emit(level_, component_, stream_.str());
    }

    template <typename T>
    Line& operator<<(const T& v) {
      if (enabled_) stream_ << v;
      return *this;
    }

   private:
    LogLevel level_;
    const std::string& component_;
    bool enabled_;
    std::ostringstream stream_;
  };

  [[nodiscard]] Line trace() const { return Line(LogLevel::Trace, component_); }
  [[nodiscard]] Line debug() const { return Line(LogLevel::Debug, component_); }
  [[nodiscard]] Line info() const { return Line(LogLevel::Info, component_); }
  [[nodiscard]] Line warn() const { return Line(LogLevel::Warn, component_); }

 private:
  std::string component_;
};

}  // namespace sbft
