// Time abstraction: protocol code sees only microsecond timestamps, so the
// same engines run under the discrete-event simulator (virtual time) and the
// threaded runtime (steady_clock).
#pragma once

#include <chrono>
#include <cstdint>

namespace sbft {

/// Microseconds since an arbitrary epoch.
using Micros = std::uint64_t;

class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual Micros now() const = 0;
};

/// Wall-clock (steady) time for the threaded runtime.
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] Micros now() const override {
    const auto d = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<Micros>(
        std::chrono::duration_cast<std::chrono::microseconds>(d).count());
  }
};

/// Manually advanced time for the simulator.
class SimClock final : public Clock {
 public:
  [[nodiscard]] Micros now() const override { return now_; }
  void advance_to(Micros t) noexcept {
    if (t > now_) now_ = t;
  }

 private:
  Micros now_{0};
};

}  // namespace sbft
