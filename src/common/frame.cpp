#include "common/frame.hpp"

#include <algorithm>
#include <atomic>

namespace sbft {

namespace {
std::atomic<std::uint64_t> g_frame_allocations{0};
std::atomic<std::uint64_t> g_frame_bytes{0};
}  // namespace

SharedBytes::SharedBytes(Bytes&& owned)
    : owner_(std::make_shared<const Bytes>(std::move(owned))) {
  data_ = owner_->data();
  size_ = owner_->size();
  g_frame_allocations.fetch_add(1, std::memory_order_relaxed);
  g_frame_bytes.fetch_add(size_, std::memory_order_relaxed);
}

SharedBytes SharedBytes::copy_of(ByteView data) {
  return SharedBytes(Bytes(data.begin(), data.end()));
}

SharedBytes SharedBytes::slice(std::size_t offset, std::size_t length) const {
  SharedBytes out;
  if (offset >= size_) return out;
  out.owner_ = owner_;
  out.data_ = data_ + offset;
  out.size_ = std::min(length, size_ - offset);
  return out;
}

bool SharedBytes::view_equal(ByteView other) const noexcept {
  return size_ == other.size() && std::equal(begin(), end(), other.begin());
}

FrameAllocStats SharedBytes::alloc_stats() noexcept {
  FrameAllocStats s;
  s.allocations = g_frame_allocations.load(std::memory_order_relaxed);
  s.bytes = g_frame_bytes.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sbft
