// Deterministic random number generation.
//
// Every randomized component (simulated network, fault strategies, key
// generation in tests) draws from a seeded engine so that failures are
// reproducible from the seed alone.
#pragma once

#include <cstdint>
#include <random>

#include "common/bytes.hpp"

namespace sbft {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

  /// Uniform in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double unit() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  [[nodiscard]] bool chance(double p) { return unit() < p; }

  void fill(Bytes& out) {
    for (auto& b : out) b = static_cast<std::uint8_t>(engine_());
  }

  [[nodiscard]] Bytes bytes(std::size_t n) {
    Bytes out(n);
    fill(out);
    return out;
  }

  /// Derives an independent child generator (for per-node streams).
  [[nodiscard]] Rng fork() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sbft
