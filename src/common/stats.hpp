// Latency/throughput measurement used by the benchmark harness, plus the
// lightweight event counters exported by hot-path subsystems (e.g. the
// signature-verification cache).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace sbft {

/// One cache line, for padding hot atomics. Hardcoded rather than
/// std::hardware_destructive_interference_size: the standard constant is an
/// ABI hazard (GCC warns when it leaks into public headers) and 64 bytes is
/// correct for every x86-64 and the common AArch64 parts this targets.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Monotonic event counter. Thread-safe (relaxed atomics: counters are
/// statistics, not synchronization). Non-copyable, like the atomic it
/// wraps — snapshot value() into plain integers instead.
///
/// Cache-line aligned: the VerifyCache hit/miss/failure/eviction counters
/// and the VerifierPool workers bump these concurrently from every worker
/// thread; without the alignment, adjacent counters declared as consecutive
/// members share a line and every add() ping-pongs that line between cores
/// (false sharing). Padding each counter to its own line keeps the hot path
/// a local RMW.
class alignas(kCacheLineBytes) Counter {
 public:
  Counter() = default;

  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Collects individual latency samples (microseconds) and reports
/// mean/percentiles. Thread-safe recording.
class LatencyRecorder {
 public:
  void record(Micros sample) {
    const std::scoped_lock lock(mutex_);
    samples_.push_back(sample);
  }

  [[nodiscard]] std::size_t count() const {
    const std::scoped_lock lock(mutex_);
    return samples_.size();
  }

  struct Summary {
    std::size_t count{0};
    double mean_us{0.0};
    Micros p50_us{0};
    Micros p95_us{0};
    Micros p99_us{0};
    Micros max_us{0};
  };

  [[nodiscard]] Summary summarize() const;

  void reset() {
    const std::scoped_lock lock(mutex_);
    samples_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Micros> samples_;
};

/// Formats an ops/s + latency table row (fixed-width, benchmark output).
[[nodiscard]] std::string format_row(const std::string& label, int clients,
                                     double ops_per_sec, double mean_lat_ms);

}  // namespace sbft
