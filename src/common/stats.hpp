// Latency/throughput measurement used by the benchmark harness, plus the
// lightweight event counters exported by hot-path subsystems (e.g. the
// signature-verification cache).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace sbft {

/// One cache line, for padding hot atomics. Hardcoded rather than
/// std::hardware_destructive_interference_size: the standard constant is an
/// ABI hazard (GCC warns when it leaks into public headers) and 64 bytes is
/// correct for every x86-64 and the common AArch64 parts this targets.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Monotonic event counter. Thread-safe (relaxed atomics: counters are
/// statistics, not synchronization). Non-copyable, like the atomic it
/// wraps — snapshot value() into plain integers instead.
///
/// Cache-line aligned: the VerifyCache hit/miss/failure/eviction counters
/// and the VerifierPool workers bump these concurrently from every worker
/// thread; without the alignment, adjacent counters declared as consecutive
/// members share a line and every add() ping-pongs that line between cores
/// (false sharing). Padding each counter to its own line keeps the hot path
/// a local RMW.
class alignas(kCacheLineBytes) Counter {
 public:
  Counter() = default;

  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level with a high-water mark (queue depths, in-flight
/// work). Thread-safe; like Counter, the atomics are statistics, not
/// synchronization, except the peak update which uses a CAS loop so two
/// concurrent set() calls can never lose the larger observation.
class alignas(kCacheLineBytes) Gauge {
 public:
  Gauge() = default;

  void set(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (v > peak &&
           !peak_.compare_exchange_weak(peak, v, std::memory_order_relaxed)) {
    }
  }
  void add(std::uint64_t n = 1) noexcept {
    const std::uint64_t v =
        value_.fetch_add(n, std::memory_order_relaxed) + n;
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (v > peak &&
           !peak_.compare_exchange_weak(peak, v, std::memory_order_relaxed)) {
    }
  }
  void sub(std::uint64_t n = 1) noexcept {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
  std::atomic<std::uint64_t> peak_{0};
};

/// Latency summary (count/mean/percentiles) shared by both samplers:
/// LatencyRecorder computes it from raw samples, LatencyHistogram from its
/// fixed-memory buckets — consumers keep the same field names either way.
struct LatencySummary {
  std::size_t count{0};
  double mean_us{0.0};
  Micros p50_us{0};
  Micros p95_us{0};
  Micros p99_us{0};
  Micros max_us{0};
};

/// Collects individual latency samples (microseconds) and reports
/// mean/percentiles. Thread-safe recording. Memory grows with the sample
/// count — prefer LatencyHistogram for sustained workloads.
class LatencyRecorder {
 public:
  void record(Micros sample) {
    const std::scoped_lock lock(mutex_);
    samples_.push_back(sample);
  }

  [[nodiscard]] std::size_t count() const {
    const std::scoped_lock lock(mutex_);
    return samples_.size();
  }

  using Summary = LatencySummary;

  [[nodiscard]] Summary summarize() const;

  void reset() {
    const std::scoped_lock lock(mutex_);
    samples_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Micros> samples_;
};

/// Fixed-memory latency histogram: logarithmic buckets with ~4% relative
/// resolution, so a sustained workload run records millions of samples in
/// a few KiB where LatencyRecorder's sample vector would grow without
/// bound. Thread-safe recording (the threaded workload driver records from
/// many ThreadNetwork consumer threads).
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(Micros sample_us);

  /// Quantile in [0, 1]; returns the representative value (bucket
  /// midpoint) of the bucket containing it. 0 with no samples.
  [[nodiscard]] Micros quantile(double q) const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double mean_us() const;
  [[nodiscard]] Micros max_us() const;

  struct Bucket {
    Micros lower_us{0};  // inclusive
    Micros upper_us{0};  // exclusive
    std::uint64_t count{0};
  };
  /// Non-empty buckets in ascending order (JSON export).
  [[nodiscard]] std::vector<Bucket> buckets() const;

  /// Count/mean/percentile summary with the same fields LatencyRecorder
  /// reports (quantiles are bucket-resolution, ~4% relative error).
  [[nodiscard]] LatencySummary summarize() const;

  void reset();

 private:
  // Buckets: [0..kLinear) are exact 1 us bins; above that, kSubBuckets
  // log-spaced bins per power of two.
  static constexpr std::uint64_t kLinear = 128;
  static constexpr std::uint64_t kSubBuckets = 16;
  // 128 linear bins + 16 sub-buckets for each power of two from 2^7 up to
  // 2^63 — covers any Micros value without overflow or clamping surprises.
  static constexpr std::size_t kBucketCount = 128 + (63 - 7 + 1) * 16;

  [[nodiscard]] static std::size_t bucket_index(Micros v) noexcept;
  [[nodiscard]] static Micros bucket_lower(std::size_t index) noexcept;
  [[nodiscard]] static Micros bucket_upper(std::size_t index) noexcept;

  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_{0};
  double sum_us_{0};
  Micros max_us_{0};
};

/// Formats an ops/s + latency table row (fixed-width, benchmark output).
[[nodiscard]] std::string format_row(const std::string& label, int clients,
                                     double ops_per_sec, double mean_lat_ms);

}  // namespace sbft
