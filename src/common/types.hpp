// Strong identifier and protocol-scalar types shared by every module.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace sbft {

/// Index of a replica within the group, 0..n-1.
using ReplicaId = std::uint32_t;

/// Client identifiers live in a disjoint range from replica ids.
using ClientId = std::uint32_t;

/// First valid client id; everything below is reserved for replicas.
inline constexpr ClientId kFirstClientId = 1000;

/// PBFT view number. The primary of view v is replica (v mod n).
using View = std::uint64_t;

/// Agreement sequence number assigned by the primary.
using SeqNum = std::uint64_t;

/// Client-chosen request timestamp, monotonically increasing per client.
using Timestamp = std::uint64_t;

/// The three SplitBFT compartment types (paper §3.2, Figure 1).
enum class Compartment : std::uint8_t {
  Preparation = 0,
  Confirmation = 1,
  Execution = 2,
};

inline constexpr std::size_t kNumCompartments = 3;

[[nodiscard]] constexpr const char* to_string(Compartment c) noexcept {
  switch (c) {
    case Compartment::Preparation:
      return "preparation";
    case Compartment::Confirmation:
      return "confirmation";
    case Compartment::Execution:
      return "execution";
  }
  return "?";
}

/// Identifies one enclave: a compartment instance on a specific replica.
struct EnclaveId {
  ReplicaId replica{0};
  Compartment compartment{Compartment::Preparation};

  [[nodiscard]] friend constexpr bool operator==(const EnclaveId&,
                                                 const EnclaveId&) = default;
  [[nodiscard]] friend constexpr auto operator<=>(const EnclaveId&,
                                                  const EnclaveId&) = default;
};

[[nodiscard]] inline std::string to_string(const EnclaveId& id) {
  return std::string(to_string(id.compartment)) + "@r" +
         std::to_string(id.replica);
}

/// Principal-id namespace used by the KeyRing and message envelopes.
/// Each protocol entity signs under exactly one principal id.
namespace principal {

using Id = std::uint64_t;

/// PBFT baseline replica.
[[nodiscard]] constexpr Id pbft_replica(ReplicaId r) noexcept {
  return 0x0100 + r;
}

/// SplitBFT enclave (one per compartment per replica).
[[nodiscard]] constexpr Id enclave(EnclaveId e) noexcept {
  return 0x0200 + e.replica * kNumCompartments +
         static_cast<std::uint64_t>(e.compartment);
}

/// Hybrid (MinBFT-style) replica; its USIG signs under this id too.
[[nodiscard]] constexpr Id hybrid_replica(ReplicaId r) noexcept {
  return 0x0300 + r;
}

/// A SplitBFT replica's untrusted environment (the broker). Client requests
/// are addressed here; the broker never signs anything. The range must stay
/// below kFirstClientId — client ids start at 1000.
[[nodiscard]] constexpr Id splitbft_env(ReplicaId r) noexcept {
  return 0x0380 + r;
}

static_assert(splitbft_env(99) < kFirstClientId,
              "principal ranges must not overlap client ids");

/// Client principal (client ids start at kFirstClientId).
[[nodiscard]] constexpr Id client(ClientId c) noexcept { return c; }

}  // namespace principal

}  // namespace sbft

template <>
struct std::hash<sbft::EnclaveId> {
  std::size_t operator()(const sbft::EnclaveId& id) const noexcept {
    return (static_cast<std::size_t>(id.replica) << 2) |
           static_cast<std::size_t>(id.compartment);
  }
};
