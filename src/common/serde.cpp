#include "common/serde.hpp"

#include <limits>

namespace sbft {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::bytes(ByteView data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void Writer::raw(ByteView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Writer::str(const std::string& s) {
  bytes(ByteView{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

bool Reader::need(std::size_t n) noexcept {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::uint8_t Reader::u8() {
  if (!need(1)) return 0;
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  if (!need(2)) return 0;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  if (!need(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  if (!need(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Bytes Reader::bytes() {
  const std::uint32_t len = u32();
  return raw(len);
}

Bytes Reader::raw(std::size_t n) {
  if (!need(n)) return {};
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void Reader::skip(std::size_t n) noexcept {
  if (!need(n)) return;
  pos_ += n;
}

ByteView Reader::view(std::size_t n) noexcept {
  if (!need(n)) return {};
  const ByteView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string Reader::str() {
  const Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

}  // namespace sbft
