// SharedBytes: the zero-copy message-fabric frame.
//
// A ref-counted, immutable flat buffer plus an (offset, length) view into
// it. Copying a SharedBytes bumps a reference count instead of duplicating
// the bytes, and slice() carves sub-views that share the same allocation —
// so an envelope's payload, signature and signing input can all alias one
// wire image, and an N-way broadcast costs one payload allocation instead
// of N deep copies.
//
// Immutability is the load-bearing invariant: once bytes enter a frame they
// are never modified, which is what makes sharing across envelope copies,
// transport queues and worker threads safe, and what makes memoized digests
// over frame contents sound. There is deliberately no mutable access; to
// "change" a frame's bytes (tamper tests, attack code), copy them out with
// to_bytes(), edit, and build a new frame.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/bytes.hpp"

namespace sbft {

/// Fabric-wide allocation counters (bench/message_fabric reads these to
/// prove broadcast is O(1) allocations). Relaxed atomics, always on.
struct FrameAllocStats {
  std::uint64_t allocations{0};  // owning buffers created
  std::uint64_t bytes{0};        // total bytes those buffers hold
};

class SharedBytes {
 public:
  /// Empty frame; no allocation.
  SharedBytes() = default;

  /// Takes ownership of an existing buffer (no byte copy; one control-block
  /// allocation). The buffer must not be modified afterwards — the frame
  /// now owns it.
  explicit SharedBytes(Bytes&& owned);

  /// Copies `data` into a fresh owning buffer.
  [[nodiscard]] static SharedBytes copy_of(ByteView data);

  SharedBytes(const SharedBytes&) = default;             // refcount bump
  SharedBytes(SharedBytes&&) noexcept = default;
  SharedBytes& operator=(const SharedBytes&) = default;  // refcount bump
  SharedBytes& operator=(SharedBytes&&) noexcept = default;

  /// Rebinds this frame to own `b` (move, no byte copy).
  SharedBytes& operator=(Bytes&& b) {
    *this = SharedBytes(std::move(b));
    return *this;
  }

  /// Sub-view sharing the same underlying buffer (no copy). Clamps to the
  /// frame's bounds.
  [[nodiscard]] SharedBytes slice(std::size_t offset, std::size_t length) const;

  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] const std::uint8_t* begin() const noexcept { return data_; }
  [[nodiscard]] const std::uint8_t* end() const noexcept {
    return data_ + size_;
  }
  [[nodiscard]] ByteView view() const noexcept { return {data_, size_}; }
  /*implicit*/ operator ByteView() const noexcept { return view(); }

  /// Copies the viewed bytes out into a plain, mutable Bytes.
  [[nodiscard]] Bytes to_bytes() const { return Bytes(begin(), end()); }

  /// True iff both views alias the exact same bytes of the same buffer —
  /// the broadcast-identity property (content equality is operator==).
  [[nodiscard]] bool same_buffer(const SharedBytes& other) const noexcept {
    return data_ == other.data_ && size_ == other.size_ &&
           owner_ == other.owner_;
  }

  /// Owners (frames + slices) currently sharing this buffer; 0 for empty.
  [[nodiscard]] long use_count() const noexcept { return owner_.use_count(); }

  /// Content equality.
  [[nodiscard]] friend bool operator==(const SharedBytes& a,
                                       const SharedBytes& b) noexcept {
    return a.view_equal(b.view());
  }
  [[nodiscard]] friend bool operator==(const SharedBytes& a,
                                       ByteView b) noexcept {
    return a.view_equal(b);
  }

  /// Process-wide owning-buffer allocation counters.
  [[nodiscard]] static FrameAllocStats alloc_stats() noexcept;

 private:
  [[nodiscard]] bool view_equal(ByteView other) const noexcept;

  std::shared_ptr<const Bytes> owner_;
  const std::uint8_t* data_{nullptr};
  std::size_t size_{0};
};

}  // namespace sbft
