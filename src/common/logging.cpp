#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sbft {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_emit_mutex;

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace:
      return "TRACE";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO ";
    case LogLevel::Warn:
      return "WARN ";
    case LogLevel::Off:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace log_detail {

LogLevel current_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void emit(LogLevel level, const std::string& component,
          const std::string& msg) {
  const std::scoped_lock lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %-18s %s\n", level_name(level), component.c_str(),
               msg.c_str());
}

}  // namespace log_detail
}  // namespace sbft
