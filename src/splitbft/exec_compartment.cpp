#include "splitbft/exec_compartment.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "pbft/reply_cache.hpp"
#include "common/serde.hpp"
#include "crypto/aead.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"

namespace sbft::splitbft {

namespace {

const Logger& logger() {
  static const Logger log{"splitbft/exec"};
  return log;
}

constexpr std::uint32_t kRequestChannel = channels::kRequest;
constexpr std::uint32_t kReplyChannelBase = channels::kReplyBase;
constexpr std::uint32_t kSessionWrapChannel = channels::kSessionWrap;
constexpr std::uint32_t kStateChannel = channels::kState;
constexpr std::uint32_t kStateChunkChannel = channels::kStateChunk;

}  // namespace

ExecAppFactory plain_app(apps::AppFactory factory) {
  return [factory = std::move(factory)](PersistHook) { return factory(); };
}

ExecCompartment::ExecCompartment(pbft::Config config, ReplicaId self,
                                 std::shared_ptr<const crypto::Signer> signer,
                                 std::shared_ptr<const crypto::Verifier> verifier,
                                 pbft::ClientDirectory clients,
                                 ExecAppFactory app_factory,
                                 crypto::Key32 exec_group_key,
                                 crypto::Key32 dh_secret, crypto::Key32 fs_key,
                                 tee::BlockStore* block_store,
                                 std::shared_ptr<runtime::runner::OrderedRunner>
                                     runner)
    : config_(config),
      self_(self),
      signer_(std::move(signer)),
      auth_(std::move(verifier)),
      clients_(clients),
      exec_group_key_(exec_group_key),
      dh_secret_(dh_secret),
      dh_public_(crypto::x25519_base(dh_secret)),
      checkpoints_(config, self),
      null_batch_digest_(pbft::RequestBatch{}.digest()) {
  runner_ = runner ? std::move(runner)
                   : std::make_shared<runtime::runner::SyncOrderedRunner>();
  if (block_store != nullptr) {
    protected_file_.emplace(fs_key, *block_store);
  }
  // The persist hook seals each record in-enclave, then the ciphertext
  // leaves through the block-store ocall.
  app_ = app_factory([this](ByteView record) {
    if (protected_file_) (void)protected_file_->append(record);
  });
}

bool ExecCompartment::in_window(SeqNum seq) const noexcept {
  return seq > checkpoints_.last_stable() &&
         seq <= checkpoints_.last_stable() + config_.watermark_window;
}

std::vector<net::Envelope> ExecCompartment::deliver(const net::Envelope& env) {
  Out out;
  if (env.type == tag(LocalMsg::ReadBatch)) {
    // The coalesced batch fans its reads across the runner workers — the
    // per-ecall parallelism the broker's coalescing exists to expose.
    on_read_batch(env, out);
    flush_runner(out);
    return out;
  }
  if (env.type == tag(LocalMsg::StateTick)) {
    on_state_tick(env, out);
    flush_runner(out);
    return out;
  }
  switch (static_cast<pbft::MsgType>(env.type)) {
    case pbft::MsgType::PrePrepare:
      on_pre_prepare(env);
      try_execute(out);
      break;
    case pbft::MsgType::ReadRequest:
      on_read_request(env, out);
      break;
    case pbft::MsgType::Commit:
      on_commit(env, out);
      break;
    case pbft::MsgType::Checkpoint:
      on_checkpoint(env, out);
      break;
    case pbft::MsgType::NewView:
      on_new_view(env, out);
      break;
    case pbft::MsgType::AttestRequest:
      on_attest_request(env, out);
      break;
    case pbft::MsgType::SessionInit:
      on_session_init(env, out);
      break;
    case pbft::MsgType::StateRequest:
      on_state_request(env, out);
      break;
    case pbft::MsgType::StateResponse:
      on_state_response(env, out);
      break;
    case pbft::MsgType::StateChunkRequest:
      on_state_chunk_request(env, out);
      break;
    case pbft::MsgType::StateChunkResponse:
      on_state_chunk_response(env, out);
      break;
    default:
      break;
  }
  flush_runner(out);
  return out;
}

void ExecCompartment::flush_runner(Out& out) {
  runner_->drain();
  if (staged_out_.empty()) return;
  out.insert(out.end(), std::make_move_iterator(staged_out_.begin()),
             std::make_move_iterator(staged_out_.end()));
  staged_out_.clear();
}

// ------------------------------------------------------- duplicated inputs

void ExecCompartment::on_pre_prepare(const net::Envelope& env) {
  auto pp = SplitPrePrepare::deserialize(env.payload);
  if (!pp || !pp->has_batch || !in_window(pp->seq)) return;
  if (pp->sender != config_.primary(pp->view) || pp->sender >= config_.n) {
    return;
  }
  const principal::Id signer_id =
      principal::enclave({pp->sender, Compartment::Preparation});
  if (!verify_pre_prepare_envelope(env, *pp, auth_, signer_id)) return;
  if (crypto::sha256(pp->batch) != pp->batch_digest) return;
  log_[pp->seq].batches[pp->batch_digest] = pp->batch;
}

// --------------------------------------------------------- read fast path

void ExecCompartment::on_read_request(const net::Envelope& env, Out& out) {
  if (!config_.read_path) return;  // client falls back via its timeout
  auto req = pbft::Request::deserialize(env.payload);
  if (!req) return;
  serve_read(*req, out);
}

void ExecCompartment::on_read_batch(const net::Envelope& env, Out& out) {
  if (!config_.read_path) return;
  auto batch = pbft::RequestBatch::deserialize(env.payload);
  if (!batch) return;
  for (const auto& req : batch->requests) serve_read(req, out);
}

void ExecCompartment::serve_read(const pbft::Request& req, Out& out) {
  (void)out;  // staged replies leave via flush_runner
  // The whole read is parallelizable: authentication, decryption and
  // execute_read against last-executed state, which is stable for the rest
  // of this ecall (ordered mutations only happen on the ecall thread, and
  // the runner drains before deliver() returns). Each read of a coalesced
  // batch lands on a different worker.
  const auto session_it = sessions_.find(req.client);
  if (session_it == sessions_.end()) return;  // cannot serve: stay silent
  const crypto::Key32 session = session_it->second;
  const SeqNum exec_seq = last_executed_;
  const bool responder =
      config_.read_responder(req.client, req.timestamp) == self_;
  runner_->submit([this, req, session, exec_seq,
                   responder]() -> runtime::runner::Epilogue {
    const crypto::Key32 auth_key = clients_.auth_key(req.client);
    if (!crypto::hmac_verify(ByteView{auth_key.data(), auth_key.size()},
                             req.auth_input(), req.auth)) {
      return {};
    }
    // Decrypt with the client session; on a corrupted operation the read
    // cannot be served — stay silent, the client's fallback re-submits
    // through ordering.
    const auto op = crypto::aead_open(
        session, crypto::make_nonce(kRequestChannel, req.timestamp), {},
        req.payload);
    if (!op || !app_->is_read_only(*op)) return {};

    // Serve under the current stable (last-executed) state. No sequence
    // number, no client record, no Preparation/Confirmation ecalls.
    const Bytes result = app_->execute_read(*op);
    pbft::ReadReply rr;
    rr.timestamp = req.timestamp;
    rr.client = req.client;
    rr.sender = self_;
    rr.exec_seq = exec_seq;
    // Votes compare plaintext digests (ciphertexts are replica-specific);
    // the digest is keyed so it leaks nothing to the relaying environments.
    rr.result_digest = read_result_digest(session, req.timestamp, result);
    if (responder) {
      rr.has_result = true;
      // Seal under a key derived from (timestamp, state version, replica).
      // A read's plaintext is a pure function of (operation, exec_seq), so
      // re-serving the same (ts, exec_seq) re-seals identical bytes, while
      // a REPLAYED ReadRequest served after a state change derives a
      // different key — the deterministic nonce is never reused with
      // different plaintext, even with an untrusted broker redelivering.
      Writer ctx;
      ctx.u64(req.timestamp);
      ctx.u64(exec_seq);
      ctx.u32(self_);
      const crypto::Key32 seal_key = crypto::derive_key(
          ByteView{session.data(), session.size()}, "read-reply-seal",
          std::move(ctx).take());
      rr.result = crypto::aead_seal(
          seal_key,
          crypto::make_nonce(channels::kReadReplyBase + self_, req.timestamp),
          {}, result);
    }
    const Digest mac = crypto::hmac_sha256(
        ByteView{auth_key.data(), auth_key.size()}, rr.auth_input());
    rr.auth = Bytes(mac.bytes.begin(), mac.bytes.end());

    net::Envelope reply;
    reply.src = signer_->id();
    reply.dst = principal::client(req.client);
    reply.type = pbft::tag(pbft::MsgType::ReadReply);
    reply.payload = rr.serialize();
    return [this, reply = std::move(reply)]() mutable {
      ++reads_served_;
      staged_out_.push_back(std::move(reply));
    };
  });
}

// -------------------------------------------------------------- handler (4)

void ExecCompartment::on_commit(const net::Envelope& env, Out& out) {
  auto commit = pbft::Commit::deserialize(env.payload);
  if (!commit || commit->sender >= config_.n || !in_window(commit->seq)) {
    return;
  }
  if (commit->view < view_) return;  // stale view
  const principal::Id signer_id =
      principal::enclave({commit->sender, Compartment::Confirmation});
  if (!auth_.check(env, signer_id)) return;

  Slot& s = log_[commit->seq];
  // A sender's newer-view commit supersedes its older vote (after a view
  // change every Confirmation enclave re-commits in the new view).
  const auto existing = s.commits.find(commit->sender);
  if (existing == s.commits.end() ||
      commit->view > existing->second.first.first) {
    s.commits[commit->sender] = std::make_pair(
        std::make_pair(commit->view, commit->batch_digest), env);
  }

  if (!s.committed_digest) {
    // A commit certificate requires 2f+1 matching (view, digest) votes.
    std::map<std::pair<View, Digest>, std::uint32_t> counts;
    for (const auto& [sender, vote] : s.commits) counts[vote.first] += 1;
    for (const auto& [key, count] : counts) {
      if (count >= config_.quorum()) {
        s.committed_digest = key.second;
        break;
      }
    }
  }
  try_execute(out);
}

void ExecCompartment::try_execute(Out& out) {
  while (!awaiting_state_) {
    const SeqNum seq = last_executed_ + 1;
    const auto it = log_.find(seq);
    if (it == log_.end() || !it->second.committed_digest) break;
    const Digest digest = *it->second.committed_digest;

    pbft::RequestBatch batch;  // empty for null requests
    if (digest != null_batch_digest_) {
      const auto batch_it = it->second.batches.find(digest);
      if (batch_it == it->second.batches.end()) {
        // Commit certificate without the body (withheld by the broker):
        // cannot execute yet; state transfer will eventually heal us.
        break;
      }
      auto parsed = pbft::RequestBatch::deserialize(batch_it->second);
      if (!parsed) break;
      batch = std::move(*parsed);
    }
    for (const auto& req : batch.requests) execute_request(req, out);
    // Deterministic eviction point: every Execution enclave has executed
    // the identical prefix here, so the pruned tables (and checkpoint
    // digests over them) agree.
    gc_client_records();
    executed_digests_[seq] = digest;
    last_executed_ = seq;
    maybe_checkpoint(seq, out);
  }
}

void ExecCompartment::execute_request(const pbft::Request& req, Out& out) {
  (void)out;  // staged replies leave via flush_runner
  // Authenticate (defence in depth — Preparation already checked).
  const crypto::Key32 auth_key = clients_.auth_key(req.client);
  if (!crypto::hmac_verify(ByteView{auth_key.data(), auth_key.size()},
                           req.auth_input(), req.auth)) {
    return;
  }
  auto& record = client_records_[req.client];
  if (req.timestamp <= record.last_ts) {
    if (req.timestamp == record.last_ts && record.has_reply) {
      stage_client_reply(req.client, req.timestamp, record);
    }
    return;
  }
  record.last_ts = req.timestamp;

  // Decrypt the operation with the client session key; on any failure the
  // enclave executes a no-op instead (paper §4 step 1).
  record.no_op = true;
  record.last_result.clear();
  const auto session = sessions_.find(req.client);
  if (session != sessions_.end()) {
    const auto op = crypto::aead_open(
        session->second, crypto::make_nonce(kRequestChannel, req.timestamp),
        {}, req.payload);
    if (op) {
      record.last_result = app_->execute(*op);
      record.no_op = false;
      ++executed_requests_;
    }
  }
  record.has_reply = true;
  stage_client_reply(req.client, req.timestamp, record);
}

void ExecCompartment::stage_client_reply(ClientId client, Timestamp ts,
                                         const ClientRecord& record) {
  // Parallel stage: deterministic AEAD seal + MAC + serialize — the
  // dominant per-request cost inside the enclave after execution. The
  // record is captured BY COPY: gc_client_records may strip its body while
  // this batch's later requests still execute on the ecall thread.
  // reply_envelope itself only touches the copy, the session table (not
  // mutated during execution ecalls) and the thread-safe clients_ cache.
  runner_->submit(
      [this, client, ts, copy = record]() -> runtime::runner::Epilogue {
        net::Envelope env = reply_envelope(client, ts, copy);
        return [this, env = std::move(env)]() mutable {
          staged_out_.push_back(std::move(env));
        };
      });
}

net::Envelope ExecCompartment::reply_envelope(
    ClientId client, Timestamp ts, const ClientRecord& record) const {
  pbft::Reply reply;
  reply.view = view_;
  reply.timestamp = ts;
  reply.client = client;
  reply.sender = self_;
  const auto session = sessions_.find(client);
  if (record.no_op || session == sessions_.end()) {
    reply.result = no_op_marker();
  } else {
    reply.result = crypto::aead_seal(
        session->second, crypto::make_nonce(kReplyChannelBase + self_, ts), {},
        record.last_result);
  }
  const crypto::Key32 auth_key = clients_.auth_key(client);
  const Digest mac = crypto::hmac_sha256(
      ByteView{auth_key.data(), auth_key.size()}, reply.auth_input());
  reply.auth = Bytes(mac.bytes.begin(), mac.bytes.end());

  net::Envelope env;
  env.src = signer_->id();
  env.dst = principal::client(client);
  env.type = pbft::tag(pbft::MsgType::Reply);
  env.payload = reply.serialize();
  return env;
}

void ExecCompartment::gc_client_records() {
  // Stripping (not erasing) is what keeps the reply AEAD channels sound:
  // a record's (client, last_ts) floor outlives its cached result, so an
  // old timestamp can never re-execute and re-seal different plaintext
  // under the already-used (kReplyBase + self, ts) nonce.
  pbft::strip_reply_cache(client_records_, config_.client_record_cap);
}

// -------------------------------------------------------------- handler (8)

Bytes ExecCompartment::exec_snapshot() const {
  // Only deterministic, order-induced state enters the snapshot (and thus
  // the checkpoint digest): application state + client table with plaintext
  // results. Session keys are deliberately excluded — their installation is
  // not ordered by consensus, so including them would make checkpoint
  // digests of correct replicas race with SessionInit delivery.
  Writer w;
  w.bytes(app_->snapshot());
  std::map<ClientId, const ClientRecord*> records;
  for (const auto& [c, r] : client_records_) records.emplace(c, &r);
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const auto& [c, r] : records) {
    w.u32(c);
    w.u64(r->last_ts);
    w.bytes(r->last_result);
    w.boolean(r->no_op);
    w.boolean(r->has_reply);
  }
  return std::move(w).take();
}

bool ExecCompartment::parse_client_records(
    Reader& r, std::unordered_map<ClientId, ClientRecord>& records) const {
  const std::uint32_t n_records = r.u32();
  if (r.failed() || n_records > 1'000'000) return false;
  for (std::uint32_t i = 0; i < n_records; ++i) {
    const ClientId c = r.u32();
    ClientRecord rec;
    rec.last_ts = r.u64();
    rec.last_result = r.bytes();
    rec.no_op = r.boolean();
    rec.has_reply = r.boolean();
    records.emplace(c, std::move(rec));
  }
  return r.done();
}

bool ExecCompartment::restore_exec_snapshot(ByteView data) {
  Reader r(data);
  const Bytes app_snapshot = r.bytes();
  if (r.failed()) return false;
  std::unordered_map<ClientId, ClientRecord> records;
  if (!parse_client_records(r, records)) return false;
  if (!app_->restore(app_snapshot)) return false;
  client_records_ = std::move(records);
  return true;
}

void ExecCompartment::maybe_checkpoint(SeqNum seq, Out& out) {
  if (config_.checkpoint_interval == 0 ||
      seq % config_.checkpoint_interval != 0) {
    return;
  }
  // Chunk + tree once; the certificate digest (the manifest commitment,
  // see pbft/state_transfer.hpp) and every future chunk response come from
  // the same ChunkedSnapshot.
  pbft::ChunkedSnapshot snapshot(
      exec_snapshot(), std::max<std::uint64_t>(config_.state_chunk_bytes, 1));
  pbft::Checkpoint cp;
  cp.seq = seq;
  cp.state_digest = snapshot.commitment();
  cp.sender = self_;
  snapshots_[seq] = std::move(snapshot);

  // To peer Execution enclaves (their brokers fan out to all three
  // compartments) and to this replica's own Preparation/Confirmation.
  // Serialized and signed once; every copy below shares the frames.
  net::Envelope env = make_signed_proto(
      *signer_, pbft::tag(pbft::MsgType::Checkpoint),
      SharedBytes(cp.serialize()));
  for (ReplicaId r = 0; r < config_.n; ++r) {
    if (r == self_) continue;
    env.dst = principal::enclave({r, Compartment::Execution});
    out.push_back(env);
  }
  for (const Compartment c :
       {Compartment::Preparation, Compartment::Confirmation}) {
    env.dst = principal::enclave({self_, c});
    out.push_back(env);
  }
  if (auto stable = checkpoints_.add_own(env, cp, auth_, *signer_)) {
    garbage_collect(stable->seq);
  }
}

void ExecCompartment::on_checkpoint(const net::Envelope& env, Out& out) {
  if (auto stable = checkpoints_.add(env, auth_)) {
    garbage_collect(stable->seq);
    if (last_executed_ < stable->seq) request_state(stable->seq, out);
  }
}

void ExecCompartment::garbage_collect(SeqNum stable) {
  log_.erase(log_.begin(), log_.upper_bound(stable));
  // Retain the PREVIOUS stable snapshot alongside the new one: a peer
  // mid-fetch of it gets one checkpoint interval of hysteresis to finish
  // instead of restarting from chunk 0 every time the group checkpoints.
  if (stable > gc_stable_) {
    retain_floor_ = gc_stable_;
    gc_stable_ = stable;
  }
  for (auto it = snapshots_.begin(); it != snapshots_.end();) {
    it = it->first < retain_floor_ ? snapshots_.erase(it) : std::next(it);
  }
}

// ---------------------------------------------------------- state transfer

void ExecCompartment::request_state(SeqNum seq, Out& out) {
  if (awaiting_state_) {
    // Retarget a streaming fetch only once its target ages out of the
    // peers' retention window (older than the previous stable seq) — or
    // when it can now start, the announce having been adopted. Inside the
    // window the fetch completes and finish_streaming_restore chains the
    // follow-up; restarting on every new checkpoint would livelock
    // whenever a transfer outlasts one checkpoint period.
    const bool retarget =
        config_.streaming_state &&
        (!fetcher_ || fetcher_->seq() < retain_floor_);
    if (!retarget) return;
  }
  begin_state_fetch(seq, out);
}

void ExecCompartment::begin_state_fetch(SeqNum seq, Out& out) {
  awaiting_state_ = true;
  awaited_state_seq_ = seq;
  if (!config_.streaming_state) {
    state_request_backoff_ = 0;
    send_state_request(out);
    return;
  }
  // The expected manifest commitment comes from the adopted stable
  // certificate — 2f+1 Execution signatures strong before any peer is
  // consulted. Without one (reboot from nothing), announce via
  // StateRequest; the chunk-0 response carries the certificate.
  Digest commitment;
  if (checkpoints_.last_stable() == seq) {
    const auto proof = checkpoints_.stable_proof();
    if (!proof.empty()) {
      if (const auto cp = pbft::Checkpoint::deserialize(proof.front().payload)) {
        commitment = cp->state_digest;
      }
    }
  }
  if (commitment.is_zero()) {
    state_request_backoff_ = 0;
    send_state_request(out);
    return;
  }
  if (fetcher_) accumulate_fetcher_stats();
  pbft::ChunkFetcher::Config fc;
  fc.n = config_.n;
  fc.self = self_;
  fc.chunks_per_request = config_.state_chunks_per_request;
  fc.inflight_max_bytes = config_.state_inflight_max_bytes;
  fc.chunk_timeout_us = config_.state_chunk_timeout_us;
  fetcher_ = std::make_unique<pbft::ChunkFetcher>(fc, seq, commitment, now_);
  applier_ = std::make_unique<pbft::SnapshotApplier>(app_.get());
  state_request_deadline_ = 0;
  logger().info() << "exec@r" << self_ << " streaming state fetch toward "
                  << seq;
  emit_chunk_requests(fetcher_->pump(now_), out);
}

void ExecCompartment::send_state_request(Out& out) {
  pbft::StateRequest sr;
  sr.seq = awaited_state_seq_;
  sr.sender = self_;
  // Serialize + sign the state request once; copies share the frames.
  const net::Envelope proto = make_signed_proto(
      *signer_, pbft::tag(pbft::MsgType::StateRequest),
      SharedBytes(sr.serialize()));
  for (ReplicaId r = 0; r < config_.n; ++r) {
    if (r == self_) continue;
    net::Envelope env = proto;
    env.dst = principal::enclave({r, Compartment::Execution});
    out.push_back(std::move(env));
  }
  ++xfer_stats_.state_requests_sent;
  // Exponential backoff between re-broadcasts: ask again while stuck, but
  // never storm the group.
  const Micros min_b =
      std::max<Micros>(config_.state_request_backoff_min_us, 1);
  state_request_backoff_ =
      state_request_backoff_ == 0
          ? min_b
          : std::min(state_request_backoff_ * 2,
                     std::max<Micros>(config_.state_request_backoff_max_us,
                                      min_b));
  state_request_deadline_ = now_ + state_request_backoff_;
}

void ExecCompartment::emit_chunk_requests(
    const std::vector<pbft::ChunkFetcher::Request>& requests, Out& out) {
  for (const auto& req : requests) {
    pbft::StateChunkRequest cr;
    cr.seq = fetcher_->seq();
    cr.first_chunk = req.first_chunk;
    cr.count = req.count;
    cr.sender = self_;
    net::Envelope env;
    env.src = signer_->id();
    env.dst = principal::enclave({req.peer, Compartment::Execution});
    env.type = pbft::tag(pbft::MsgType::StateChunkRequest);
    env.payload = cr.serialize();
    net::sign_envelope(env, *signer_);
    out.push_back(std::move(env));
    ++xfer_stats_.chunk_requests_sent;
  }
}

void ExecCompartment::accumulate_fetcher_stats() {
  if (!fetcher_) return;
  const auto& s = fetcher_->stats();
  xfer_stats_.chunks_accepted += s.chunks_accepted;
  xfer_stats_.chunks_rejected += s.chunks_rejected;
  xfer_stats_.chunks_duplicate += s.chunks_duplicate;
  xfer_stats_.refetches += s.refetches;
  xfer_stats_.chunk_bytes_received += s.bytes_received;
  xfer_stats_.peak_inflight_bytes =
      std::max(xfer_stats_.peak_inflight_bytes, s.peak_inflight_bytes);
}

pbft::StateTransferStats ExecCompartment::state_transfer_stats() const {
  pbft::StateTransferStats stats = xfer_stats_;
  if (fetcher_) {
    const auto& s = fetcher_->stats();
    stats.chunks_accepted += s.chunks_accepted;
    stats.chunks_rejected += s.chunks_rejected;
    stats.chunks_duplicate += s.chunks_duplicate;
    stats.refetches += s.refetches;
    stats.chunk_bytes_received += s.bytes_received;
    stats.peak_inflight_bytes =
        std::max(stats.peak_inflight_bytes, s.peak_inflight_bytes);
  }
  return stats;
}

void ExecCompartment::abandon_transfer() {
  accumulate_fetcher_stats();
  if (applier_) applier_->abort();
  fetcher_.reset();
  applier_.reset();
  // Still behind: fall back to a fresh announce (rate-limited; fires on
  // the next StateTick).
  state_request_backoff_ = 0;
  state_request_deadline_ = now_ + 1;
}

void ExecCompartment::drain_fetcher(Out& out) {
  for (Bytes& chunk : fetcher_->take_ready()) {
    if (!applier_->feed(chunk)) {
      logger().info() << "exec@r" << self_
                      << " snapshot apply failed, restarting";
      abandon_transfer();
      return;
    }
  }
  if (fetcher_->complete()) {
    finish_streaming_restore(out);
  } else {
    emit_chunk_requests(fetcher_->pump(now_), out);
  }
}

void ExecCompartment::finish_streaming_restore(Out& out) {
  const SeqNum seq = fetcher_->seq();
  // Validate the protocol tail BEFORE committing the app: a malformed
  // tail must not leave the app restored but the client table stale.
  std::unordered_map<ClientId, ClientRecord> records;
  Reader tail(applier_->tail());
  if (!applier_->app_complete() || !parse_client_records(tail, records) ||
      !applier_->finish()) {
    logger().info() << "exec@r" << self_ << " streaming restore failed at "
                    << seq;
    abandon_transfer();
    return;
  }
  client_records_ = std::move(records);
  last_executed_ = seq;
  garbage_collect(seq);
  awaiting_state_ = false;
  // Deliberately NOT materializing snapshots_[seq]: the transfer streamed
  // into the app precisely to avoid snapshot-sized buffers; this enclave
  // serves peers from its next own checkpoint.
  accumulate_fetcher_stats();
  ++xfer_stats_.transfers_completed;
  fetcher_.reset();
  applier_.reset();
  state_request_deadline_ = 0;
  logger().info() << "exec@r" << self_ << " streaming state transfer to "
                  << seq;
  try_execute(out);
  if (last_executed_ < checkpoints_.last_stable()) {
    // The group checkpointed again while we streamed: chain straight into
    // a fetch of the newer stable state instead of waiting for the next
    // certificate to arrive (it may never, once traffic quiesces).
    begin_state_fetch(checkpoints_.last_stable(), out);
  }
}

void ExecCompartment::on_state_tick(const net::Envelope& env, Out& out) {
  Reader r(env.payload);
  const Micros now = r.u64();
  if (r.failed()) return;
  now_ = std::max(now_, now);
  if (!boot_probe_sent_) {
    boot_probe_sent_ = true;
    // Rebooted with no state: probe for the group's stable checkpoint.
    // Peers still at seq 0 ignore it; a peer ahead answers with its
    // certificate (the sealed chunk-0 announce) and the fetch starts.
    if (checkpoints_.last_stable() == 0 && last_executed_ == 0 &&
        !awaiting_state_) {
      send_state_request(out);
    }
  }
  if (!awaiting_state_) return;
  if (fetcher_) {
    emit_chunk_requests(fetcher_->pump(now_), out);
  } else if (state_request_deadline_ != 0 && now_ >= state_request_deadline_) {
    send_state_request(out);
  }
}

crypto::Key32 ExecCompartment::chunk_seal_key(SeqNum seq) const {
  Bytes ctx(8);
  for (int i = 0; i < 8; ++i) {
    ctx[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  return crypto::derive_key(
      ByteView{exec_group_key_.data(), exec_group_key_.size()},
      "state-chunk-seal", ctx);
}

Bytes ExecCompartment::seal_chunk(SeqNum seq, std::uint64_t index,
                                  ByteView chunk) const {
  return crypto::aead_seal(chunk_seal_key(seq),
                           crypto::make_nonce(kStateChunkChannel, index), {},
                           chunk);
}

std::optional<Bytes> ExecCompartment::open_chunk(SeqNum seq,
                                                 std::uint64_t index,
                                                 ByteView sealed) const {
  return crypto::aead_open(chunk_seal_key(seq),
                           crypto::make_nonce(kStateChunkChannel, index), {},
                           sealed);
}

void ExecCompartment::on_state_request(const net::Envelope& env, Out& out) {
  auto sr = pbft::StateRequest::deserialize(env.payload);
  if (!sr || sr->sender >= config_.n || sr->sender == self_) return;
  const principal::Id signer_id =
      principal::enclave({sr->sender, Compartment::Execution});
  if (!auth_.check(env, signer_id)) return;
  // Serve our latest stable state whenever it would help the requester
  // (sr->seq may trail it: the requester learns the newer checkpoint from
  // the attached certificate).
  const SeqNum stable = checkpoints_.last_stable();
  if (stable == 0 || sr->seq > stable) return;
  const auto it = snapshots_.find(stable);
  if (it == snapshots_.end()) return;

  if (config_.streaming_state) {
    // Announce: sealed chunk 0 plus the checkpoint certificate. The
    // requester adopts the checkpoint, verifies the manifest commitment
    // against it, and fetches the rest in ranges from everyone.
    pbft::StateChunkResponse resp;
    resp.seq = stable;
    if (!it->second.fill(0, resp)) return;
    resp.chunk = seal_chunk(stable, 0, it->second.chunk_view(0));
    resp.checkpoint_proof = checkpoints_.stable_proof();
    resp.sender = self_;
    ++xfer_stats_.chunks_served;
    net::Envelope out_env;
    out_env.src = signer_->id();
    out_env.dst = principal::enclave({sr->sender, Compartment::Execution});
    out_env.type = pbft::tag(pbft::MsgType::StateChunkResponse);
    out_env.payload = resp.serialize();
    net::sign_envelope(out_env, *signer_);
    out.push_back(std::move(out_env));
    return;
  }
  // Monolithic path: snapshots hold confidential state (app data, client
  // results), so encrypt under the execution-compartment group key before
  // it crosses the untrusted environment.
  pbft::StateResponse resp;
  resp.seq = stable;
  resp.snapshot = crypto::aead_seal(
      exec_group_key_, crypto::make_nonce(kStateChannel, stable), {},
      it->second.data());
  resp.checkpoint_proof = checkpoints_.stable_proof();
  resp.sender = self_;

  net::Envelope out_env;
  out_env.src = signer_->id();
  out_env.dst = principal::enclave({sr->sender, Compartment::Execution});
  out_env.type = pbft::tag(pbft::MsgType::StateResponse);
  out_env.payload = resp.serialize();
  net::sign_envelope(out_env, *signer_);
  out.push_back(std::move(out_env));
}

void ExecCompartment::on_state_chunk_request(const net::Envelope& env,
                                             Out& out) {
  if (!config_.streaming_state) return;
  auto cr = pbft::StateChunkRequest::deserialize(env.payload);
  if (!cr || cr->sender >= config_.n || cr->sender == self_) return;
  const principal::Id signer_id =
      principal::enclave({cr->sender, Compartment::Execution});
  if (!auth_.check(env, signer_id)) return;
  // Serve any retained snapshot (the latest stable and, for hysteresis,
  // the previous one) — never anything claiming to be ahead of us.
  if (cr->seq > checkpoints_.last_stable()) return;
  const auto it = snapshots_.find(cr->seq);
  if (it == snapshots_.end()) return;
  const std::uint64_t chunk_count = it->second.manifest().chunk_count();
  const std::uint64_t end =
      std::min<std::uint64_t>(cr->first_chunk + cr->count, chunk_count);
  for (std::uint64_t index = cr->first_chunk; index < end; ++index) {
    pbft::StateChunkResponse resp;
    resp.seq = cr->seq;
    if (!it->second.fill(index, resp)) break;
    resp.chunk = seal_chunk(cr->seq, index, it->second.chunk_view(index));
    resp.sender = self_;
    ++xfer_stats_.chunks_served;
    net::Envelope out_env;
    out_env.src = signer_->id();
    out_env.dst = principal::enclave({cr->sender, Compartment::Execution});
    out_env.type = pbft::tag(pbft::MsgType::StateChunkResponse);
    out_env.payload = resp.serialize();
    net::sign_envelope(out_env, *signer_);
    out.push_back(std::move(out_env));
  }
}

void ExecCompartment::on_state_chunk_response(const net::Envelope& env,
                                              Out& out) {
  if (!config_.streaming_state) return;
  auto resp = pbft::StateChunkResponse::deserialize(env.payload);
  if (!resp || resp->sender >= config_.n || resp->sender == self_) return;
  const principal::Id signer_id =
      principal::enclave({resp->sender, Compartment::Execution});
  if (!auth_.check(env, signer_id)) return;

  // Announce adoption: a certificate for a checkpoint ahead of ours lets
  // a rebooted enclave latch on. The proof is validated against the
  // manifest commitment before anything else is believed.
  if (!resp->checkpoint_proof.empty() &&
      resp->seq > checkpoints_.last_stable() && last_executed_ < resp->seq) {
    if (auto proof =
            verify_checkpoint_proof(resp->checkpoint_proof, resp->seq,
                                    resp->manifest().commitment(), config_,
                                    auth_)) {
      checkpoints_.adopt(resp->seq, std::move(*proof));
      garbage_collect(resp->seq);
      request_state(resp->seq, out);
    }
  }

  if (!awaiting_state_ || !fetcher_ || resp->seq != fetcher_->seq()) return;
  // Unseal before Merkle verification (the tree commits to plaintext). A
  // failed unseal clears the chunk so the fetcher rejects it and strikes
  // the sender, exactly like a forged chunk.
  if (auto opened = open_chunk(resp->seq, resp->index, resp->chunk)) {
    resp->chunk = std::move(*opened);
  } else {
    resp->chunk.clear();
  }
  switch (fetcher_->on_chunk(*resp, now_)) {
    case pbft::ChunkFetcher::ChunkResult::Accepted:
      drain_fetcher(out);
      break;
    case pbft::ChunkFetcher::ChunkResult::Rejected:
      emit_chunk_requests(fetcher_->pump(now_), out);
      break;
    case pbft::ChunkFetcher::ChunkResult::Duplicate:
    case pbft::ChunkFetcher::ChunkResult::Ignored:
      break;
  }
}

void ExecCompartment::on_state_response(const net::Envelope& env, Out& out) {
  if (!awaiting_state_) return;
  // The streaming path never installs monolithic snapshots — a Byzantine
  // peer must not bypass chunked verification (and its bounded memory) by
  // volunteering a full StateResponse.
  if (config_.streaming_state) return;
  auto resp = pbft::StateResponse::deserialize(env.payload);
  if (!resp || resp->sender >= config_.n) return;
  const principal::Id signer_id =
      principal::enclave({resp->sender, Compartment::Execution});
  if (!auth_.check(env, signer_id)) return;
  if (resp->seq < awaited_state_seq_ || resp->seq <= last_executed_) return;

  const auto snapshot = crypto::aead_open(
      exec_group_key_, crypto::make_nonce(kStateChannel, resp->seq), {},
      resp->snapshot);
  if (!snapshot) return;
  const Digest digest =
      pbft::snapshot_commitment(*snapshot, config_.state_chunk_bytes);
  auto proof = verify_checkpoint_proof(resp->checkpoint_proof, resp->seq,
                                       digest, config_, auth_);
  if (!proof) return;
  if (!restore_exec_snapshot(*snapshot)) return;
  last_executed_ = resp->seq;
  checkpoints_.adopt(resp->seq, std::move(*proof));
  snapshots_[resp->seq] = pbft::ChunkedSnapshot(
      *snapshot, std::max<std::uint64_t>(config_.state_chunk_bytes, 1));
  garbage_collect(resp->seq);
  awaiting_state_ = false;
  state_request_deadline_ = 0;
  state_request_backoff_ = 0;
  logger().info() << "exec@r" << self_ << " state transfer to " << resp->seq;
  try_execute(out);
}

// ------------------------------------------------------------- view change

void ExecCompartment::on_new_view(const net::Envelope& env, Out& out) {
  auto nv = pbft::NewView::deserialize(env.payload);
  if (!nv || nv->new_view <= view_) return;
  if (nv->sender != config_.primary(nv->new_view)) return;
  const principal::Id nv_signer =
      principal::enclave({nv->sender, Compartment::Preparation});
  if (!auth_.check(env, nv_signer)) return;

  // Execution validates/applies only the checkpoint part (paper §4) and
  // adopts the new view number.
  for (const auto& vce : nv->view_changes) {
    auto vc = pbft::ViewChange::deserialize(vce.payload);
    if (!vc || vc->last_stable <= checkpoints_.last_stable()) continue;
    if (auto proof =
            verify_checkpoint_proof(vc->checkpoint_proof, vc->last_stable,
                                    std::nullopt, config_, auth_)) {
      checkpoints_.adopt(vc->last_stable, std::move(*proof));
      garbage_collect(vc->last_stable);
      if (last_executed_ < vc->last_stable) {
        request_state(vc->last_stable, out);
      }
    }
  }
  view_ = nv->new_view;
  // Also pick up any full batches the new primary re-attached.
  for (const auto& ppe : nv->pre_prepares) on_pre_prepare(ppe);
  try_execute(out);
}

// ----------------------------------------------------- attestation/session

void ExecCompartment::on_attest_request(const net::Envelope& env, Out& out) {
  auto req = AttestRequest::deserialize(env.payload);
  if (!req || !quote_fn_) return;

  ReportData rd;
  rd.signing_principal = signer_->id();
  rd.dh_public = dh_public_;
  rd.nonce = req->nonce;

  AttestReport report;
  report.replica = self_;
  report.compartment = Compartment::Execution;
  report.quote = quote_fn_(rd.serialize());

  net::Envelope reply;
  reply.src = signer_->id();
  reply.dst = principal::client(req->client);
  reply.type = pbft::tag(pbft::MsgType::AttestReport);
  reply.payload = report.serialize();
  out.push_back(std::move(reply));
}

void ExecCompartment::on_session_init(const net::Envelope& env, Out& out) {
  auto init = SessionInit::deserialize(env.payload);
  if (!init) return;
  const crypto::Key32 auth_key = clients_.auth_key(init->client);
  if (!crypto::hmac_verify(ByteView{auth_key.data(), auth_key.size()},
                           init->auth_input(), init->auth)) {
    return;
  }
  const crypto::Key32 shared =
      crypto::x25519(dh_secret_, init->client_dh_public);
  const crypto::Key32 wrap_key = crypto::derive_key(
      ByteView{shared.data(), shared.size()}, "session-wrap");
  const auto session_key = crypto::aead_open(
      wrap_key, crypto::make_nonce(kSessionWrapChannel, init->client), {},
      init->sealed_session_key);
  if (!session_key || session_key->size() != 32) return;

  crypto::Key32 key{};
  std::copy(session_key->begin(), session_key->end(), key.begin());
  sessions_[init->client] = key;

  SessionAck ack;
  ack.client = init->client;
  ack.replica = self_;
  const Digest mac = crypto::hmac_sha256(ByteView{key.data(), key.size()},
                                         ack.auth_input());
  ack.auth = Bytes(mac.bytes.begin(), mac.bytes.end());

  net::Envelope reply;
  reply.src = signer_->id();
  reply.dst = principal::client(init->client);
  reply.type = pbft::tag(pbft::MsgType::SessionAck);
  reply.payload = ack.serialize();
  out.push_back(std::move(reply));
}

}  // namespace sbft::splitbft
