// Preparation compartment (paper §3.2, Figure 2 handlers 1, 2, 6, 7, 7', 9).
//
// Primary role: authenticate client request batches, assign sequence
// numbers, emit header-signed PrePrepares. Backup role: validate the
// primary's PrePrepare and emit Prepares to all Confirmation enclaves.
// Also creates and validates NewView messages (the complex re-proposal
// logic lives here, co-located with PrePrepare handling per principle P4),
// and garbage-collects its input log on checkpoint certificates (duplicated
// handler 9).
#pragma once

#include <deque>
#include <functional>
#include <set>

#include "pbft/client_directory.hpp"
#include "splitbft/compartment.hpp"

namespace sbft::splitbft {

class PrepCompartment final : public CompartmentLogic {
 public:
  PrepCompartment(pbft::Config config, ReplicaId self,
                  std::shared_ptr<const crypto::Signer> signer,
                  std::shared_ptr<const crypto::Verifier> verifier,
                  pbft::ClientDirectory clients, Bytes attestation_context);

  [[nodiscard]] std::vector<net::Envelope> deliver(
      const net::Envelope& env) override;
  [[nodiscard]] Digest measurement() const override {
    return compartment_measurement(Compartment::Preparation);
  }

  // Introspection (tests).
  [[nodiscard]] View view() const noexcept { return view_; }
  [[nodiscard]] SeqNum next_seq() const noexcept { return next_seq_; }
  [[nodiscard]] SeqNum last_stable() const noexcept {
    return checkpoints_.last_stable();
  }
  [[nodiscard]] const net::VerifyCache& auth() const noexcept { return auth_; }
  /// Batches authenticated but held back by the pipeline window (released
  /// when a checkpoint certificate advances the stable sequence number).
  [[nodiscard]] std::size_t deferred_batches() const noexcept {
    return deferred_.size();
  }
  /// Input-log size (garbage-collection bounds tests).
  [[nodiscard]] std::size_t log_slots() const noexcept { return log_.size(); }

  /// Callback used by the replica assembly to answer attestation requests;
  /// set once at construction time by the trusted platform glue.
  using QuoteFn = std::function<Bytes(ByteView report_data)>;
  void set_quote_fn(QuoteFn fn) { quote_fn_ = std::move(fn); }

 private:
  using Out = std::vector<net::Envelope>;

  void on_local_batch(const net::Envelope& env, Out& out);
  void on_pre_prepare(const net::Envelope& env, Out& out);
  void on_view_change(const net::Envelope& env, Out& out);
  void on_new_view(const net::Envelope& env, Out& out);
  void on_checkpoint(const net::Envelope& env, Out& out);
  void on_attest_request(const net::Envelope& env, Out& out);

  [[nodiscard]] bool in_window(SeqNum seq) const noexcept;
  /// Pipeline gate: may the primary assign next_seq_ + 1? The enclave's
  /// only execution-progress signal is the checkpoint certificate, so the
  /// bound is Config::pipeline_window() sequence numbers past the stable
  /// checkpoint (== the watermark window when pipeline_depth is 0).
  [[nodiscard]] bool pipeline_open() const noexcept;
  [[nodiscard]] bool is_primary() const noexcept {
    return config_.primary(view_) == self_;
  }
  void emit_prepare(const SplitPrePrepare& pp, Out& out);
  /// Assigns the next sequence number to an authenticated serialized batch
  /// and emits the PrePrepare fan-out.
  void propose_batch(Bytes batch_bytes, Out& out);
  /// Proposes deferred batches into freed pipeline slots.
  void release_deferred(Out& out);
  void garbage_collect(SeqNum stable);

  // View-change machinery.
  struct Plan {
    SeqNum min_s{0};
    SeqNum max_s{0};
    std::map<SeqNum, Digest> proposals;
  };
  [[nodiscard]] bool validate_view_change(const net::Envelope& env,
                                          pbft::ViewChange& out_vc) const;
  [[nodiscard]] bool validate_prepared_proof(const pbft::PreparedProof& proof,
                                             SeqNum& seq, View& view,
                                             Digest& digest) const;
  [[nodiscard]] std::optional<Plan> compute_plan(
      const std::vector<net::Envelope>& vc_envs) const;
  void maybe_send_new_view(View target, Out& out);
  void enter_view(View v, const std::vector<net::Envelope>& o_pre_prepares,
                  Out& out);

  pbft::Config config_;
  ReplicaId self_;
  std::shared_ptr<const crypto::Signer> signer_;
  // In-enclave verification cache; mutable because validation helpers are
  // const member functions.
  mutable net::VerifyCache auth_;
  pbft::ClientDirectory clients_;
  Bytes attestation_context_;
  QuoteFn quote_fn_;

  View view_{0};
  SeqNum next_seq_{0};
  /// Input log in_prep: accepted PrePrepares by sequence number.
  std::map<SeqNum, SplitPrePrepare> log_;
  CheckpointCollector checkpoints_;
  /// Authenticated batches awaiting a pipeline slot (bounded; overflow is
  /// dropped and re-proposed by the broker's liveness timers).
  std::deque<Bytes> deferred_;

  /// Collected ViewChange envelopes by target view (new-primary duty).
  std::map<View, std::map<ReplicaId, net::Envelope>> view_changes_;
  std::set<View> new_view_sent_;
};

}  // namespace sbft::splitbft
