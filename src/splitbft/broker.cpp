#include "splitbft/broker.hpp"

#include <algorithm>

#include "common/serde.hpp"

namespace sbft::splitbft {

Broker::Broker(pbft::Config config, ReplicaId self,
               std::unique_ptr<tee::EnclaveHost> prep,
               std::unique_ptr<tee::EnclaveHost> conf,
               std::unique_ptr<tee::EnclaveHost> exec)
    : config_(config),
      self_(self),
      prep_(std::move(prep)),
      conf_(std::move(conf)),
      exec_(std::move(exec)) {
  if (config_.auto_tune) {
    tuner_ = std::make_unique<runtime::runner::AutoTuner>(
        runtime::runner::TuningLimits{}, config_.batch_max,
        config_.pipeline_depth, config_.read_batch_max);
    config_.batch_max = tuner_->batch_max();
    config_.read_batch_max = tuner_->read_batch_max();
  }
}

void Broker::observe_tuner(Micros now) {
  if (!tuner_) return;
  // Backlog = admitted requests not yet answered by a Reply. The tuned
  // batch knobs only shape what this broker hands its own Preparation
  // enclave — proposals are then consensus-ordered, so replicas with
  // different tuner states never diverge.
  if (tuner_->observe(outstanding_.size(), now)) {
    config_.batch_max = tuner_->batch_max();
    config_.read_batch_max = tuner_->read_batch_max();
  }
}

tee::EnclaveHost& Broker::host(Compartment c) noexcept {
  switch (c) {
    case Compartment::Preparation:
      return *prep_;
    case Compartment::Confirmation:
      return *conf_;
    case Compartment::Execution:
      return *exec_;
  }
  return *prep_;
}

const tee::EnclaveHost& Broker::host(Compartment c) const noexcept {
  return const_cast<Broker*>(this)->host(c);
}

void Broker::enable_ingress_filter(
    std::shared_ptr<const crypto::Verifier> verifier) {
  ingress_ = std::make_unique<net::VerifyCache>(std::move(verifier));
}

bool Broker::passes_ingress_filter(const net::Envelope& env) {
  if (!ingress_) return true;
  // Map each signed wire type to the enclave principal the receiving
  // compartment will check (sender is taken from the payload, exactly as
  // the enclave does). Anything unparseable or not signature-carrying is
  // passed through: the enclaves are authoritative, this filter only
  // short-circuits provably invalid signatures before an ecall.
  const auto expect = [&](ReplicaId sender,
                          Compartment c) -> std::optional<principal::Id> {
    if (sender >= config_.n) return std::nullopt;
    return principal::enclave({sender, c});
  };
  switch (static_cast<pbft::MsgType>(env.type)) {
    case pbft::MsgType::PrePrepare: {
      const auto pp = SplitPrePrepare::deserialize(env.payload);
      if (!pp) return true;
      const auto signer = expect(pp->sender, Compartment::Preparation);
      if (!signer) return true;
      return ingress_->check_raw(*signer, pp->header_bytes(), env.signature);
    }
    case pbft::MsgType::Prepare: {
      const auto prep = pbft::Prepare::deserialize(env.payload);
      if (!prep) return true;
      const auto signer = expect(prep->sender, Compartment::Preparation);
      return !signer || ingress_->check(env, *signer);
    }
    case pbft::MsgType::Commit: {
      const auto commit = pbft::Commit::deserialize(env.payload);
      if (!commit) return true;
      const auto signer = expect(commit->sender, Compartment::Confirmation);
      return !signer || ingress_->check(env, *signer);
    }
    case pbft::MsgType::Checkpoint: {
      const auto cp = pbft::Checkpoint::deserialize(env.payload);
      if (!cp) return true;
      const auto signer = expect(cp->sender, Compartment::Execution);
      return !signer || ingress_->check(env, *signer);
    }
    case pbft::MsgType::ViewChange: {
      const auto vc = pbft::ViewChange::deserialize(env.payload);
      if (!vc) return true;
      const auto signer = expect(vc->sender, Compartment::Confirmation);
      return !signer || ingress_->check(env, *signer);
    }
    case pbft::MsgType::NewView: {
      const auto nv = pbft::NewView::deserialize(env.payload);
      if (!nv) return true;
      const auto signer = expect(nv->sender, Compartment::Preparation);
      return !signer || ingress_->check(env, *signer);
    }
    case pbft::MsgType::StateRequest: {
      const auto sr = pbft::StateRequest::deserialize(env.payload);
      if (!sr) return true;
      const auto signer = expect(sr->sender, Compartment::Execution);
      return !signer || ingress_->check(env, *signer);
    }
    case pbft::MsgType::StateResponse: {
      const auto resp = pbft::StateResponse::deserialize(env.payload);
      if (!resp) return true;
      const auto signer = expect(resp->sender, Compartment::Execution);
      return !signer || ingress_->check(env, *signer);
    }
    default:
      return true;  // client traffic / local messages: not our concern
  }
}

bool Broker::is_local(principal::Id id,
                      Compartment& out_compartment) const noexcept {
  for (const Compartment c :
       {Compartment::Preparation, Compartment::Confirmation,
        Compartment::Execution}) {
    if (id == principal::enclave({self_, c})) {
      out_compartment = c;
      return true;
    }
  }
  return false;
}

void Broker::deliver_to(Compartment c, const net::Envelope& env, Out& out) {
  // wire() is the envelope's memoized serialization: an envelope that
  // arrived off the wire crosses the ecall boundary as its received frame
  // (no re-encode); duplicated deliveries that rewrite dst re-encode once
  // per distinct destination, same as one send would.
  const Bytes result = host(c).ecall(
      static_cast<std::uint32_t>(tee::EcallFn::DeliverMessage),
      env.wire());
  auto outbox = decode_outbox(result);
  if (!outbox) return;
  for (auto& emitted : *outbox) {
    if (emitted.type == pbft::tag(pbft::MsgType::NewView)) {
      new_view_emitted_ = true;  // our Preparation enclave leads a new view
    }
    Compartment target{};
    if (is_local(emitted.dst, target)) {
      local_queue_.push_back(std::move(emitted));
    } else {
      // Replies pass the broker on their way out; clear suspicion timers
      // (pure liveness bookkeeping on untrusted data).
      if (emitted.type == pbft::tag(pbft::MsgType::Reply)) {
        if (auto reply = pbft::Reply::deserialize(emitted.payload)) {
          std::erase_if(outstanding_, [&reply](const auto& kv) {
            return kv.first.first == reply->client &&
                   kv.first.second <= reply->timestamp;
          });
        }
      }
      out.push_back(std::move(emitted));
    }
  }
}

void Broker::route(net::Envelope env, Out& out, Micros now) {
  (void)now;
  Compartment target{};
  if (!is_local(env.dst, target)) {
    out.push_back(std::move(env));  // pass-through (shouldn't happen)
    return;
  }

  const auto type = static_cast<pbft::MsgType>(env.type);
  if (type == pbft::MsgType::PrePrepare &&
      target == Compartment::Preparation) {
    // Duplicate into all three input logs (paper §3.2): full body for
    // Preparation and Execution, header-only for Confirmation.
    deliver_to(Compartment::Preparation, env, out);
    net::Envelope stripped = env;
    if (auto pp = SplitPrePrepare::deserialize(env.payload)) {
      stripped.payload = pp->stripped().serialize();
    }
    stripped.dst = principal::enclave({self_, Compartment::Confirmation});
    deliver_to(Compartment::Confirmation, stripped, out);
    net::Envelope full = env;
    full.dst = principal::enclave({self_, Compartment::Execution});
    deliver_to(Compartment::Execution, full, out);
    return;
  }
  if (type == pbft::MsgType::Checkpoint && target == Compartment::Execution) {
    for (const Compartment c :
         {Compartment::Preparation, Compartment::Confirmation,
          Compartment::Execution}) {
      net::Envelope copy = env;
      copy.dst = principal::enclave({self_, c});
      deliver_to(c, copy, out);
    }
    return;
  }
  if (type == pbft::MsgType::NewView && target == Compartment::Preparation) {
    for (const Compartment c :
         {Compartment::Preparation, Compartment::Confirmation,
          Compartment::Execution}) {
      net::Envelope copy = env;
      copy.dst = principal::enclave({self_, c});
      deliver_to(c, copy, out);
    }
    // A new view just started: hand any still-outstanding requests to the
    // Preparation enclave (only the new primary's will act). Pure liveness.
    requeue_outstanding(now, out);
    return;
  }
  deliver_to(target, env, out);
}

void Broker::on_client_request(const net::Envelope& env, Micros now,
                               Out& out) {
  auto req = pbft::Request::deserialize(env.payload);
  if (!req) return;
  const auto key = std::make_pair(req->client, req->timestamp);
  // Admission control: shed FRESH requests past the cap before they arm a
  // suspicion timer or enter the batch buffer (silence = backpressure, the
  // client retransmits). Retransmits of admitted requests pass — dropping
  // those would turn overload into a liveness failure.
  const bool fresh = !outstanding_.contains(key);
  if (fresh && config_.admission_queue_cap != 0 &&
      outstanding_.size() >= config_.admission_queue_cap) {
    ++admission_rejects_;
    return;
  }
  observe_tuner(now);
  // Arm the suspicion timer — liveness only; the enclaves re-check
  // authenticity themselves.
  Outstanding tracked;
  tracked.request = *req;
  tracked.deadline = now + config_.request_timeout_us;
  outstanding_.emplace(std::make_pair(req->client, req->timestamp),
                       std::move(tracked));
  pending_batch_[{req->client, req->timestamp}] = std::move(*req);
  if (pending_batch_.size() >= config_.batch_max || config_.batch_max <= 1) {
    cut_batch(now, out);
  } else if (batch_deadline_ == 0) {
    batch_deadline_ = now + config_.batch_timeout_us;
  }
}

void Broker::cut_batch(Micros now, Out& out) {
  (void)now;
  batch_deadline_ = 0;
  if (pending_batch_.empty()) return;
  pbft::RequestBatch batch;
  auto it = pending_batch_.begin();
  while (it != pending_batch_.end() &&
         batch.requests.size() < config_.batch_max) {
    batch.requests.push_back(it->second);
    it = pending_batch_.erase(it);
  }
  net::Envelope env;
  env.src = 0;  // local, unauthenticated (the enclave re-checks everything)
  env.dst = principal::enclave({self_, Compartment::Preparation});
  env.type = tag(LocalMsg::Batch);
  env.payload = batch.serialize();
  deliver_to(Compartment::Preparation, env, out);

  if (!pending_batch_.empty() && batch_deadline_ == 0) {
    batch_deadline_ = now + config_.batch_timeout_us;
  }
}

void Broker::on_read_request(const net::Envelope& env, Micros now, Out& out) {
  // Read fast path: queue for the Execution compartment alone — no
  // ordering, no Preparation/Confirmation ecalls, and no suspicion timer
  // (a read that goes unanswered falls back to ordering client-side).
  // Reads are coalesced so one ecall serves up to read_batch_max of them;
  // like request batching, this amortizes the enclave-crossing cost.
  auto req = pbft::Request::deserialize(env.payload);
  if (!req) return;
  pending_reads_.push_back(std::move(*req));
  if (pending_reads_.size() >= config_.read_batch_max ||
      config_.read_batch_max <= 1) {
    cut_read_batch(now, out);
  } else if (read_batch_deadline_ == 0) {
    read_batch_deadline_ = now + config_.read_batch_delay_us;
  }
}

void Broker::cut_read_batch(Micros now, Out& out) {
  (void)now;
  read_batch_deadline_ = 0;
  while (!pending_reads_.empty()) {
    pbft::RequestBatch batch;
    while (!pending_reads_.empty() &&
           batch.requests.size() < std::max<std::size_t>(
                                       config_.read_batch_max, 1)) {
      batch.requests.push_back(std::move(pending_reads_.front()));
      pending_reads_.pop_front();
    }
    net::Envelope env;
    env.src = 0;  // local hand-off; the enclave re-checks every read
    env.dst = principal::enclave({self_, Compartment::Execution});
    env.type = tag(LocalMsg::ReadBatch);
    env.payload = batch.serialize();
    deliver_to(Compartment::Execution, env, out);
  }
}

void Broker::requeue_outstanding(Micros now, Out& out) {
  if (outstanding_.empty()) return;
  for (const auto& [key, tracked] : outstanding_) {
    if (!pending_batch_.contains(key)) {
      pending_batch_[key] = tracked.request;
    }
  }
  cut_batch(now, out);
}

std::vector<net::Envelope> Broker::handle(const net::Envelope& env,
                                          Micros now) {
  Out out;
  if (env.type == pbft::tag(pbft::MsgType::Request)) {
    on_client_request(env, now, out);
  } else if (env.type == pbft::tag(pbft::MsgType::ReadRequest)) {
    on_read_request(env, now, out);
  } else if (passes_ingress_filter(env)) {
    route(env, out, now);
  }
  // Drain cascaded local deliveries (enclave → enclave via the broker).
  while (!local_queue_.empty()) {
    net::Envelope next = std::move(local_queue_.front());
    local_queue_.pop_front();
    route(std::move(next), out, now);
  }
  if (new_view_emitted_) {
    new_view_emitted_ = false;
    requeue_outstanding(now, out);
    while (!local_queue_.empty()) {
      net::Envelope next = std::move(local_queue_.front());
      local_queue_.pop_front();
      route(std::move(next), out, now);
    }
  }
  return out;
}

std::vector<net::Envelope> Broker::tick(Micros now) {
  Out out;
  observe_tuner(now);
  // Execution owns no clock (compartments are deliver-only): forward the
  // tick so its streaming state transfer can expire chunk assignments and
  // pace StateRequest re-broadcasts.
  {
    Writer w;
    w.u64(now);
    net::Envelope env;
    env.dst = principal::enclave({self_, Compartment::Execution});
    env.type = tag(LocalMsg::StateTick);
    env.payload = std::move(w).take();
    deliver_to(Compartment::Execution, env, out);
  }
  if (batch_deadline_ != 0 && now >= batch_deadline_) {
    cut_batch(now, out);
  }
  if (read_batch_deadline_ != 0 && now >= read_batch_deadline_) {
    cut_read_batch(now, out);
  }
  // Fire at most one suspicion per sweep, with exponential backoff (the
  // PBFT view-change timeout doubling), and re-queue expired requests for
  // the (possibly new) primary to propose.
  bool suspected = false;
  bool requeued = false;
  for (auto& [key, tracked] : outstanding_) {
    if (now < tracked.deadline) continue;
    tracked.backoff = std::min<std::uint32_t>(tracked.backoff * 2, 64);
    tracked.deadline =
        now + config_.request_timeout_us * tracked.backoff;
    if (!pending_batch_.contains(key)) {
      pending_batch_[key] = tracked.request;
      requeued = true;
    }
    if (suspected) continue;
    suspected = true;
    net::Envelope env;
    env.dst = principal::enclave({self_, Compartment::Confirmation});
    env.type = tag(LocalMsg::SuspectPrimary);
    deliver_to(Compartment::Confirmation, env, out);
  }
  if (requeued) cut_batch(now, out);
  while (!local_queue_.empty()) {
    net::Envelope next = std::move(local_queue_.front());
    local_queue_.pop_front();
    route(std::move(next), out, now);
  }
  return out;
}

}  // namespace sbft::splitbft
