// Execution compartment (paper §3.2, Figure 2 handlers 4, 8, 9).
//
// Holds the application state. Collects commit certificates (2f+1 Commits
// from distinct Confirmation enclaves), matches them with the full request
// batches duplicated into its input log, executes operations in sequence
// order, and answers clients with encrypted, authenticated replies.
// Also: session establishment (attestation + X25519 key provisioning),
// periodic checkpoints with snapshots, garbage collection, and encrypted
// state transfer between Execution enclaves.
#pragma once

#include <functional>
#include <unordered_map>

#include "apps/app.hpp"
#include "common/serde.hpp"
#include "pbft/client_directory.hpp"
#include "pbft/state_transfer.hpp"
#include "runtime/runner/runner.hpp"
#include "splitbft/compartment.hpp"
#include "tee/protected_fs.hpp"

namespace sbft::splitbft {

/// Persist hook handed to the application: blocks written through it are
/// encrypted + MAC-chained inside the enclave (protected FS) and then leave
/// through an ocall to untrusted storage — the paper's per-block cost.
using PersistHook = std::function<void(ByteView record)>;

/// App factory variant receiving the persist hook (the ledger uses it as
/// its BlockSink; the KVS ignores it).
using ExecAppFactory =
    std::function<std::unique_ptr<apps::Application>(PersistHook)>;

/// Adapts a plain AppFactory (apps that never persist).
[[nodiscard]] ExecAppFactory plain_app(apps::AppFactory factory);

class ExecCompartment final : public CompartmentLogic {
 public:
  /// `block_store` is the UNTRUSTED storage behind the protected FS; may be
  /// nullptr for apps that never persist.
  ///
  /// `runner` is the staged execution pipeline (in-enclave worker threads
  /// in a deployment): reply AEAD-seal/MAC and fast-path read service run
  /// as prologues while state mutations stay ordered. Defaults to the
  /// serial SyncOrderedRunner; always drained before deliver() returns.
  ExecCompartment(pbft::Config config, ReplicaId self,
                  std::shared_ptr<const crypto::Signer> signer,
                  std::shared_ptr<const crypto::Verifier> verifier,
                  pbft::ClientDirectory clients, ExecAppFactory app_factory,
                  crypto::Key32 exec_group_key, crypto::Key32 dh_secret,
                  crypto::Key32 fs_key = {},
                  tee::BlockStore* block_store = nullptr,
                  std::shared_ptr<runtime::runner::OrderedRunner> runner =
                      nullptr);

  [[nodiscard]] std::vector<net::Envelope> deliver(
      const net::Envelope& env) override;
  [[nodiscard]] Digest measurement() const override {
    return compartment_measurement(Compartment::Execution);
  }

  using QuoteFn = std::function<Bytes(ByteView report_data)>;
  void set_quote_fn(QuoteFn fn) { quote_fn_ = std::move(fn); }

  // Introspection (tests, safety checkers).
  [[nodiscard]] View view() const noexcept { return view_; }
  [[nodiscard]] SeqNum last_executed() const noexcept {
    return last_executed_;
  }
  [[nodiscard]] SeqNum last_stable() const noexcept {
    return checkpoints_.last_stable();
  }
  [[nodiscard]] const apps::Application& app() const noexcept { return *app_; }
  [[nodiscard]] std::uint64_t executed_requests() const noexcept {
    return executed_requests_;
  }
  /// Read-only requests served via the fast path (no sequence number, no
  /// Preparation/Confirmation involvement).
  [[nodiscard]] std::uint64_t reads_served() const noexcept {
    return reads_served_;
  }
  /// Client-record count (GC bounds tests).
  [[nodiscard]] std::size_t client_record_count() const noexcept {
    return client_records_.size();
  }
  /// Records still holding a cached reply body — what client_record_cap
  /// bounds (the at-most-once floor itself is never dropped).
  [[nodiscard]] std::size_t cached_reply_count() const noexcept {
    std::size_t n = 0;
    for (const auto& [client, record] : client_records_) {
      if (record.has_reply) ++n;
    }
    return n;
  }
  [[nodiscard]] const std::map<SeqNum, Digest>& execution_history()
      const noexcept {
    return executed_digests_;
  }
  [[nodiscard]] bool has_session(ClientId c) const {
    return sessions_.contains(c);
  }
  [[nodiscard]] const net::VerifyCache& auth() const noexcept { return auth_; }
  /// Runner-pipeline memory (the splitbft half of the GC bounds tests):
  /// both must read 0 between deliver() calls, even under overload.
  [[nodiscard]] std::size_t runner_queue() const noexcept {
    return runner_->queue_depth();
  }
  [[nodiscard]] std::size_t staged_replies() const noexcept {
    return staged_out_.size();
  }
  /// Staged-pipeline observability (queue gauge + stage latencies).
  [[nodiscard]] runtime::runner::RunnerStats runner_stats() const {
    return runner_->stats();
  }
  /// State-transfer traffic counters (both roles, live transfer folded in).
  [[nodiscard]] pbft::StateTransferStats state_transfer_stats() const;
  /// StateRequest broadcasts actually sent (backoff-limited).
  [[nodiscard]] std::uint64_t state_requests_sent() const noexcept {
    return xfer_stats_.state_requests_sent;
  }
  /// True while recovering via state transfer (execution is paused).
  [[nodiscard]] bool awaiting_state() const noexcept {
    return awaiting_state_;
  }

  /// Out-of-band session provisioning: installs a pre-established client
  /// session key, as a deployment would after offline attestation. The
  /// benchmark harness uses this to skip the per-client handshake, exactly
  /// like the paper's measurements which attest once before the runs.
  void install_session(ClientId client, const crypto::Key32& key) {
    sessions_[client] = key;
  }

 private:
  struct Slot {
    // Commit votes keyed by sender: (view, digest) they vote for.
    std::map<ReplicaId, std::pair<std::pair<View, Digest>, net::Envelope>>
        commits;
    // Full batches keyed by digest (from duplicated PrePrepares).
    std::map<Digest, Bytes> batches;
    std::optional<Digest> committed_digest;
  };

  // Client table entries cache the PLAINTEXT result: ciphertexts are
  // replica-specific (per-replica reply nonces), so only plaintext state is
  // deterministic across replicas and may enter the checkpoint digest.
  // Replies are re-encrypted deterministically on retransmission.
  struct ClientRecord {
    Timestamp last_ts{0};
    Bytes last_result;  // plaintext result
    bool no_op{false};
    bool has_reply{false};
  };

  using Out = std::vector<net::Envelope>;

  void on_pre_prepare(const net::Envelope& env);
  void on_read_request(const net::Envelope& env, Out& out);
  void on_read_batch(const net::Envelope& env, Out& out);
  /// Serves one authenticated read-only request against last-executed
  /// state (shared by the single-read and coalesced-batch entry points).
  void serve_read(const pbft::Request& req, Out& out);
  void on_commit(const net::Envelope& env, Out& out);
  void on_checkpoint(const net::Envelope& env, Out& out);
  void on_new_view(const net::Envelope& env, Out& out);
  void on_attest_request(const net::Envelope& env, Out& out);
  void on_session_init(const net::Envelope& env, Out& out);
  void on_state_request(const net::Envelope& env, Out& out);
  void on_state_response(const net::Envelope& env, Out& out);
  void on_state_chunk_request(const net::Envelope& env, Out& out);
  void on_state_chunk_response(const net::Envelope& env, Out& out);
  /// Broker-forwarded clock tick (LocalMsg::StateTick): pumps chunk
  /// re-request timeouts and the StateRequest re-broadcast backoff.
  void on_state_tick(const net::Envelope& env, Out& out);

  void try_execute(Out& out);
  void execute_request(const pbft::Request& req, Out& out);
  /// Stages the seal/MAC/serialize of one client reply on the runner from
  /// captured copies of the record (the record itself may be stripped by
  /// gc_client_records before the prologue runs).
  void stage_client_reply(ClientId client, Timestamp ts,
                          const ClientRecord& record);
  /// Drains the runner and appends staged envelopes to `out` — the last
  /// step of deliver().
  void flush_runner(Out& out);
  void maybe_checkpoint(SeqNum seq, Out& out);
  /// Deterministic reply-body stripping keeping the cache under
  /// Config::client_record_cap (see pbft::strip_reply_cache).
  void gc_client_records();
  void garbage_collect(SeqNum stable);
  /// Starts (or retargets) recovery toward stable checkpoint `seq`.
  void request_state(SeqNum seq, Out& out);
  void begin_state_fetch(SeqNum seq, Out& out);
  /// Rate-limited StateRequest broadcast to peer Execution enclaves.
  void send_state_request(Out& out);
  void emit_chunk_requests(
      const std::vector<pbft::ChunkFetcher::Request>& requests, Out& out);
  void drain_fetcher(Out& out);
  void finish_streaming_restore(Out& out);
  void abandon_transfer();
  /// Folds a finished/discarded fetcher's counters into xfer_stats_.
  void accumulate_fetcher_stats();
  /// Per-checkpoint chunk sealing key: chunks cross the untrusted
  /// environment AEAD-sealed under a key derived from the Execution group
  /// key and `seq`, nonce = (kStateChunk, chunk index) — unique per
  /// (key, nonce) even across checkpoints.
  [[nodiscard]] crypto::Key32 chunk_seal_key(SeqNum seq) const;
  [[nodiscard]] Bytes seal_chunk(SeqNum seq, std::uint64_t index,
                                 ByteView chunk) const;
  [[nodiscard]] std::optional<Bytes> open_chunk(SeqNum seq,
                                                std::uint64_t index,
                                                ByteView sealed) const;
  /// Parses the client-record table (the protocol tail of exec_snapshot).
  [[nodiscard]] bool parse_client_records(
      Reader& r, std::unordered_map<ClientId, ClientRecord>& records) const;

  [[nodiscard]] Bytes exec_snapshot() const;
  [[nodiscard]] bool restore_exec_snapshot(ByteView data);
  [[nodiscard]] bool in_window(SeqNum seq) const noexcept;
  /// Builds the (deterministically encrypted) reply for a client record.
  [[nodiscard]] net::Envelope reply_envelope(ClientId client, Timestamp ts,
                                             const ClientRecord& record) const;

  pbft::Config config_;
  ReplicaId self_;
  std::shared_ptr<const crypto::Signer> signer_;
  net::VerifyCache auth_;
  pbft::ClientDirectory clients_;
  crypto::Key32 exec_group_key_;
  crypto::Key32 dh_secret_;
  crypto::Key32 dh_public_;
  std::optional<tee::ProtectedFile> protected_file_;
  std::unique_ptr<apps::Application> app_;
  QuoteFn quote_fn_;
  // Staged pipeline: prologues may only touch captured copies, the
  // thread-safe clients_ key cache, and const app reads; epilogues run in
  // submission order on the ecall thread, pushing into staged_out_.
  std::shared_ptr<runtime::runner::OrderedRunner> runner_;
  Out staged_out_;

  View view_{0};
  SeqNum last_executed_{0};
  /// Input log in_exec.
  std::map<SeqNum, Slot> log_;
  CheckpointCollector checkpoints_;
  std::map<SeqNum, pbft::ChunkedSnapshot> snapshots_;

  std::unordered_map<ClientId, crypto::Key32> sessions_;
  std::unordered_map<ClientId, ClientRecord> client_records_;

  bool awaiting_state_{false};
  SeqNum awaited_state_seq_{0};
  // One-shot startup probe: a rebooted enclave cannot learn the group
  // moved past it until a fresh checkpoint certificate happens to arrive —
  // ask once; any Execution peer ahead answers with its stable
  // certificate (the announce), which request_state turns into a fetch.
  bool boot_probe_sent_{false};
  // Snapshot retention: snapshots at or above retain_floor_ (the stable
  // seq BEFORE the latest one) survive garbage collection — one
  // checkpoint interval of serving hysteresis for peers mid-fetch. A
  // fetch whose target drops below the floor is the one case worth
  // retargeting.
  SeqNum retain_floor_{0};
  SeqNum gc_stable_{0};  // latest stable seq garbage_collect ran at
  // Streaming fetch machinery (non-null only while recovering). The clock
  // is the broker's: now_ advances on every StateTick delivery.
  std::unique_ptr<pbft::ChunkFetcher> fetcher_;
  std::unique_ptr<pbft::SnapshotApplier> applier_;
  Micros now_{0};
  Micros state_request_deadline_{0};  // 0 = not armed
  Micros state_request_backoff_{0};   // current interval
  pbft::StateTransferStats xfer_stats_;

  std::map<SeqNum, Digest> executed_digests_;
  std::uint64_t executed_requests_{0};
  std::uint64_t reads_served_{0};
  Digest null_batch_digest_;
};

}  // namespace sbft::splitbft
