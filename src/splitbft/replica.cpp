#include "splitbft/replica.hpp"

namespace sbft::splitbft {

SplitbftReplica::SplitbftReplica(ReplicaOptions options, ReplicaId id,
                                 const crypto::KeyRing& keyring,
                                 const tee::AttestationService& attestation,
                                 const tee::SealingService& sealing,
                                 crypto::Key32 exec_group_key,
                                 crypto::Key32 dh_secret,
                                 ExecAppFactory app_factory)
    : id_(id) {
  const auto verifier = keyring.verifier();
  const pbft::ClientDirectory clients(options.client_master_secret);

  auto prep_logic = std::make_unique<PrepCompartment>(
      options.config, id,
      keyring.signer(principal::enclave({id, Compartment::Preparation})),
      verifier, clients, Bytes{});
  prep_ = prep_logic.get();
  {
    const Digest m = prep_logic->measurement();
    prep_logic->set_quote_fn([&attestation, m](ByteView report_data) {
      return attestation.issue(m, report_data).serialize();
    });
  }

  auto conf_logic = std::make_unique<ConfCompartment>(
      options.config, id,
      keyring.signer(principal::enclave({id, Compartment::Confirmation})),
      verifier);
  conf_ = conf_logic.get();

  const Digest exec_measurement =
      compartment_measurement(Compartment::Execution);
  auto exec_logic = std::make_unique<ExecCompartment>(
      options.config, id,
      keyring.signer(principal::enclave({id, Compartment::Execution})),
      verifier, clients, std::move(app_factory), exec_group_key, dh_secret,
      sealing.sealing_key(exec_measurement), &block_store_,
      runtime::runner::make_runner(options.exec_workers));
  exec_ = exec_logic.get();
  exec_logic->set_quote_fn(
      [&attestation, exec_measurement](ByteView report_data) {
        return attestation.issue(exec_measurement, report_data).serialize();
      });

  const auto make_host = [&](Compartment type,
                             std::unique_ptr<CompartmentLogic> logic) {
    if (options.decorate_logic) {
      logic = options.decorate_logic(type, std::move(logic));
    }
    return std::make_unique<tee::EnclaveHost>(
        std::make_unique<CompartmentEnclave>(std::move(logic)),
        options.cost_model, options.charge_real_time);
  };
  broker_ = std::make_unique<Broker>(
      options.config, id,
      make_host(Compartment::Preparation, std::move(prep_logic)),
      make_host(Compartment::Confirmation, std::move(conf_logic)),
      make_host(Compartment::Execution, std::move(exec_logic)));
  // Opt-in DoS defense: pre-filter provably invalid signatures so garbage
  // never pays an ecall. Off by default — on the honest path it re-verifies
  // traffic the enclaves check anyway (broker and enclave caches cannot be
  // shared across the trust boundary).
  if (options.broker_ingress_filter) broker_->enable_ingress_filter(verifier);
}

}  // namespace sbft::splitbft
