// SplitBFT client.
//
// Protocol (paper §4 step 1):
//  1. Attest the Execution (and Preparation) enclaves of every replica:
//     nonce-fresh quotes signed by the platform attestation root, carrying
//     the enclave's signing principal and X25519 key.
//  2. Provision one session key to all Execution enclaves, each copy sealed
//     under the pairwise X25519-derived wrap key.
//  3. Submit requests whose operation payload is AEAD-encrypted end-to-end
//     for the Execution compartment; the ordering layers and every
//     untrusted environment only ever see ciphertext.
//  4. Accept a result once f+1 replicas returned replies that decrypt to
//     the same plaintext (each replica encrypts under its own nonce
//     channel, so votes are compared after decryption).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/rng.hpp"
#include "crypto/ed25519.hpp"
#include "pbft/client_directory.hpp"
#include "pbft/config.hpp"
#include "pbft/messages.hpp"
#include "splitbft/messages.hpp"

namespace sbft::splitbft {

class SplitClient {
 public:
  struct TrustAnchors {
    crypto::Ed25519PublicKey attestation_root;
  };

  SplitClient(pbft::Config config, ClientId id,
              const pbft::ClientDirectory& directory, TrustAnchors anchors,
              std::uint64_t seed, Micros retry_timeout_us = 1'000'000);

  /// Starts session establishment: attestation requests to every replica's
  /// Execution enclave (and Preparation enclave, per the paper).
  [[nodiscard]] std::vector<net::Envelope> begin_session(Micros now);

  /// Feeds any non-Reply message (attestation reports, session acks).
  /// Returns follow-up envelopes (SessionInit after a valid report).
  [[nodiscard]] std::vector<net::Envelope> on_message(const net::Envelope& env,
                                                      Micros now);

  /// True once every Execution enclave acknowledged the session key.
  [[nodiscard]] bool session_ready() const noexcept {
    return acks_.size() >= config_.n;
  }

  /// Adopts a pre-established session (see ExecCompartment::install_session).
  void adopt_session(const crypto::Key32& key) {
    session_key_ = key;
    for (ReplicaId r = 0; r < config_.n; ++r) acks_.insert(r);
    session_retry_deadline_ = 0;
  }

  [[nodiscard]] const crypto::Key32& session_key() const noexcept {
    return session_key_;
  }
  [[nodiscard]] std::size_t ack_count() const noexcept { return acks_.size(); }

  /// Submits one operation (plaintext; encrypted internally). With
  /// `read_only` set (and Config::read_path on) the operation is broadcast
  /// as a ReadRequest served directly by the Execution compartments — a
  /// single round that bypasses the Preparation/Confirmation enclaves.
  [[nodiscard]] std::vector<net::Envelope> submit(Bytes operation, Micros now,
                                                  bool read_only = false);

  /// Feeds a Reply or ReadReply; returns the decrypted result once the
  /// in-flight operation completed (ordered: f+1 matching plaintexts;
  /// fast read: 2f+1 matching (digest, exec-seq) votes plus the designated
  /// responder's value). `out` receives the ordered re-broadcast when a
  /// fast read falls back on a reply mismatch.
  [[nodiscard]] std::optional<Bytes> on_reply(const net::Envelope& env,
                                              Micros now,
                                              std::vector<net::Envelope>& out);

  [[nodiscard]] std::vector<net::Envelope> tick(Micros now);
  [[nodiscard]] std::optional<Micros> next_deadline() const;
  [[nodiscard]] bool in_flight() const noexcept { return in_flight_; }
  [[nodiscard]] ClientId id() const noexcept { return id_; }
  /// Reads completed via the fast path / reads that fell back to ordering.
  [[nodiscard]] std::uint64_t fast_reads() const noexcept {
    return fast_reads_;
  }
  [[nodiscard]] std::uint64_t read_fallbacks() const noexcept {
    return read_fallbacks_;
  }

 private:
  [[nodiscard]] std::vector<net::Envelope> broadcast_request() const;
  [[nodiscard]] std::optional<Bytes> on_read_reply(
      const net::Envelope& env, Micros now, std::vector<net::Envelope>& out);
  void fall_back(Micros now, std::vector<net::Envelope>& out);
  void finish() noexcept;
  void handle_attest_report(const net::Envelope& env,
                            std::vector<net::Envelope>& out);
  void handle_session_ack(const net::Envelope& env);

  pbft::Config config_;
  ClientId id_;
  crypto::Key32 auth_key_;
  TrustAnchors anchors_;
  Rng rng_;
  Micros retry_timeout_us_;

  crypto::Key32 session_key_{};
  crypto::Key32 dh_secret_{};
  crypto::Key32 dh_public_{};
  bool dh_public_ready_{false};
  Bytes attest_nonce_;
  std::set<ReplicaId> session_inits_sent_;
  std::set<ReplicaId> acks_;
  Micros session_retry_deadline_{0};

  Timestamp timestamp_{0};
  pbft::Request request_;
  bool in_flight_{false};
  Micros retry_deadline_{0};
  // Decrypted result -> voting replicas.
  std::map<Bytes, std::set<ReplicaId>> votes_;

  // --- read fast path ---
  bool fast_read_{false};
  Micros read_deadline_{0};
  using ReadKey = std::pair<Digest, SeqNum>;  // (plaintext digest, exec seq)
  std::map<ReadKey, std::set<ReplicaId>> read_votes_;
  std::map<ReadKey, Bytes> read_results_;  // digest-verified plaintexts
  std::set<ReplicaId> read_replied_;
  std::uint64_t fast_reads_{0};
  std::uint64_t read_fallbacks_{0};
};

}  // namespace sbft::splitbft
