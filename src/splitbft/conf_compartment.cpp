#include "splitbft/conf_compartment.hpp"

#include "common/logging.hpp"

namespace sbft::splitbft {

namespace {
const Logger& logger() {
  static const Logger log{"splitbft/conf"};
  return log;
}
}  // namespace

ConfCompartment::ConfCompartment(pbft::Config config, ReplicaId self,
                                 std::shared_ptr<const crypto::Signer> signer,
                                 std::shared_ptr<const crypto::Verifier> verifier)
    : config_(config),
      self_(self),
      signer_(std::move(signer)),
      auth_(std::move(verifier)),
      checkpoints_(config, self) {}

bool ConfCompartment::in_window(SeqNum seq) const noexcept {
  return seq > checkpoints_.last_stable() &&
         seq <= checkpoints_.last_stable() + config_.watermark_window;
}

std::vector<net::Envelope> ConfCompartment::deliver(const net::Envelope& env) {
  Out out;
  if (env.type == tag(LocalMsg::SuspectPrimary)) {
    on_suspect_primary(env, out);
    return out;
  }
  switch (static_cast<pbft::MsgType>(env.type)) {
    case pbft::MsgType::PrePrepare:
      on_pre_prepare(env, out);
      break;
    case pbft::MsgType::Prepare:
      on_prepare(env, out);
      break;
    case pbft::MsgType::NewView:
      on_new_view(env, out);
      break;
    case pbft::MsgType::Checkpoint:
      on_checkpoint(env, out);
      break;
    default:
      break;
  }
  return out;
}

bool ConfCompartment::accept_header(const net::Envelope& env,
                                    const SplitPrePrepare& pp) {
  if (pp.view != view_ || pp.sender != config_.primary(pp.view) ||
      !in_window(pp.seq)) {
    return false;
  }
  const principal::Id signer_id =
      principal::enclave({pp.sender, Compartment::Preparation});
  if (!verify_pre_prepare_envelope(env, pp, auth_, signer_id)) {
    return false;
  }
  Slot& s = log_[pp.seq];
  if (s.header) return s.header->batch_digest == pp.batch_digest;
  s.header = pp.stripped();
  s.header_env = env;
  // Purge buffered prepares for other digests.
  std::erase_if(s.prepares, [&](const auto& kv) {
    return kv.second.first != pp.batch_digest;
  });
  return true;
}

// -------------------------------------------------------------- handler (3)

void ConfCompartment::on_pre_prepare(const net::Envelope& env, Out& out) {
  if (in_view_change_) return;
  auto pp = SplitPrePrepare::deserialize(env.payload);
  if (!pp) return;
  if (accept_header(env, *pp)) check_prepared(pp->seq, out);
}

void ConfCompartment::on_prepare(const net::Envelope& env, Out& out) {
  auto prep = pbft::Prepare::deserialize(env.payload);
  if (!prep) return;
  if (prep->view != view_ || !in_window(prep->seq) ||
      prep->sender == config_.primary(view_) || prep->sender >= config_.n) {
    return;
  }
  const principal::Id signer_id =
      principal::enclave({prep->sender, Compartment::Preparation});
  if (!auth_.check(env, signer_id)) return;

  if (in_view_change_) {
    // New-view prepares may outrace the NewView itself; hold them until
    // the headers arrive.
    buffered_prepares_[prep->seq][prep->sender] =
        BufferedPrepare{prep->view, prep->batch_digest, env};
    return;
  }

  Slot& s = log_[prep->seq];
  if (s.header && s.header->batch_digest != prep->batch_digest) return;
  s.prepares.emplace(prep->sender,
                     std::make_pair(prep->batch_digest, env));
  check_prepared(prep->seq, out);
}

void ConfCompartment::check_prepared(SeqNum seq, Out& out) {
  Slot& s = log_[seq];
  if (s.commit_sent || !s.header) return;
  const Digest& digest = s.header->batch_digest;
  std::uint32_t matching = 0;
  for (const auto& [sender, vote] : s.prepares) {
    if (vote.first == digest) ++matching;
  }
  if (matching < config_.prepared_quorum()) return;

  // P5: the prepare certificate is complete — record it (for ViewChange)
  // and emit the Commit to every Execution enclave.
  s.commit_sent = true;
  pbft::PreparedProof proof;
  proof.pre_prepare = s.header_env;
  for (const auto& [sender, vote] : s.prepares) {
    if (vote.first != digest) continue;
    proof.prepares.push_back(vote.second);
    if (proof.prepares.size() >= config_.prepared_quorum()) break;
  }
  s.prepared_proof = std::move(proof);

  pbft::Commit commit;
  commit.view = s.header->view;
  commit.seq = seq;
  commit.batch_digest = digest;
  commit.sender = self_;
  // Serialize + sign the commit once; all Execution enclaves' copies share
  // the frames and the memoized digest.
  const net::Envelope proto = make_signed_proto(
      *signer_, pbft::tag(pbft::MsgType::Commit),
      SharedBytes(commit.serialize()));
  for (ReplicaId r = 0; r < config_.n; ++r) {
    net::Envelope env = proto;
    env.dst = principal::enclave({r, Compartment::Execution});
    out.push_back(std::move(env));
  }
}

// -------------------------------------------------------------- handler (5)

void ConfCompartment::on_suspect_primary(const net::Envelope& env, Out& out) {
  (void)env;  // content is untrusted; only the *event* matters
  const View target = view_ + 1;

  pbft::ViewChange vc;
  vc.new_view = target;
  vc.last_stable = checkpoints_.last_stable();
  vc.checkpoint_proof = checkpoints_.stable_proof();
  for (const auto& [seq, s] : log_) {
    if (s.prepared_proof && seq > vc.last_stable) {
      vc.prepared.push_back(*s.prepared_proof);
    }
  }
  vc.sender = self_;

  // Paper §4: upon sending the ViewChange the Confirmation enclave
  // increases its view and stops processing Prepares / sending Commits in
  // the old view.
  view_ = target;
  in_view_change_ = true;
  logger().info() << "conf@r" << self_ << " view change to " << target;

  // Serialize + sign the view change once; copies share the frames.
  const net::Envelope proto = make_signed_proto(
      *signer_, pbft::tag(pbft::MsgType::ViewChange),
      SharedBytes(vc.serialize()));
  for (ReplicaId r = 0; r < config_.n; ++r) {
    net::Envelope env = proto;
    env.dst = principal::enclave({r, Compartment::Preparation});
    out.push_back(std::move(env));
  }
}

// ----------------------------------------------------- handler (7') on conf

void ConfCompartment::on_new_view(const net::Envelope& env, Out& out) {
  auto nv = pbft::NewView::deserialize(env.payload);
  if (!nv) return;
  if (nv->new_view < view_ || (nv->new_view == view_ && !in_view_change_)) {
    return;
  }
  if (nv->sender != config_.primary(nv->new_view)) return;
  const principal::Id nv_signer =
      principal::enclave({nv->sender, Compartment::Preparation});
  if (!auth_.check(env, nv_signer)) return;

  // The Confirmation compartment does NOT validate the embedded
  // PrePrepares (paper §4); it validates and applies the checkpoint
  // certificates and updates its view.
  SeqNum min_s = 0;
  for (const auto& vce : nv->view_changes) {
    auto vc = pbft::ViewChange::deserialize(vce.payload);
    if (!vc) continue;
    if (vc->last_stable <= checkpoints_.last_stable() ||
        vc->last_stable <= min_s) {
      continue;
    }
    if (auto proof =
            verify_checkpoint_proof(vc->checkpoint_proof, vc->last_stable,
                                    std::nullopt, config_, auth_)) {
      min_s = vc->last_stable;
      checkpoints_.adopt(vc->last_stable, std::move(*proof));
    }
  }
  if (min_s > 0) garbage_collect(min_s);

  view_ = nv->new_view;
  in_view_change_ = false;
  log_.clear();

  // Store the new-view PrePrepare headers after a cheap signature check —
  // wrong ones can never gather 2f Prepares from correct Preparation
  // enclaves, so safety is unaffected (paper's corner-case argument).
  for (const auto& ppe : nv->pre_prepares) {
    auto pp = SplitPrePrepare::deserialize(ppe.payload);
    if (!pp || pp->view != nv->new_view || pp->sender != nv->sender) continue;
    if (!verify_pre_prepare_envelope(ppe, *pp, auth_, nv_signer)) {
      continue;
    }
    if (!in_window(pp->seq)) continue;
    Slot& s = log_[pp->seq];
    s.header = pp->stripped();
    s.header_env = ppe;
  }
  // Replay prepares that outraced this NewView (already signature-checked).
  for (auto& [seq, by_sender] : buffered_prepares_) {
    for (auto& [sender, buffered] : by_sender) {
      if (buffered.view != view_ || sender == config_.primary(view_)) {
        continue;
      }
      Slot& s = log_[seq];
      if (s.header && s.header->batch_digest != buffered.digest) continue;
      s.prepares.emplace(sender,
                         std::make_pair(buffered.digest, buffered.env));
    }
  }
  buffered_prepares_.clear();
  for (auto& [seq, s] : log_) check_prepared(seq, out);
  logger().info() << "conf@r" << self_ << " entered view " << view_;
}

// -------------------------------------------------------------- handler (9)

void ConfCompartment::on_checkpoint(const net::Envelope& env, Out& out) {
  (void)out;
  if (auto stable = checkpoints_.add(env, auth_)) {
    garbage_collect(stable->seq);
  }
}

void ConfCompartment::garbage_collect(SeqNum stable) {
  log_.erase(log_.begin(), log_.upper_bound(stable));
}

}  // namespace sbft::splitbft
