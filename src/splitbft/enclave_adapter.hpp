// Adapts a CompartmentLogic to the tee::Enclave byte-boundary interface.
//
// Everything entering or leaving the compartment is a serialized buffer —
// the moral equivalent of the SGX edger8r-generated bridge. The EnclaveHost
// wrapping this adapter charges transition + copy costs and records the
// per-ecall statistics behind Figure 4.
#pragma once

#include <memory>

#include "splitbft/compartment.hpp"
#include "splitbft/messages.hpp"
#include "tee/enclave.hpp"

namespace sbft::splitbft {

class CompartmentEnclave final : public tee::Enclave {
 public:
  explicit CompartmentEnclave(std::unique_ptr<CompartmentLogic> logic)
      : logic_(std::move(logic)) {}

  [[nodiscard]] Digest measurement() const override {
    return logic_->measurement();
  }

  [[nodiscard]] Bytes ecall(std::uint32_t fn, ByteView args) override {
    switch (static_cast<tee::EcallFn>(fn)) {
      case tee::EcallFn::DeliverMessage: {
        auto env = net::Envelope::deserialize(args);
        if (!env) return encode_outbox({});  // malformed input: ignore
        return encode_outbox(logic_->deliver(*env));
      }
      default:
        return encode_outbox({});
    }
  }

  /// Test-only introspection; a real enclave would never expose this.
  [[nodiscard]] CompartmentLogic& logic() noexcept { return *logic_; }

 private:
  std::unique_ptr<CompartmentLogic> logic_;
};

}  // namespace sbft::splitbft
