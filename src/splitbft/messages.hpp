// SplitBFT-specific message formats.
//
// SplitBFT reuses the PBFT message family (Prepare, Commit, Checkpoint,
// ViewChange, NewView, Reply — see pbft/messages.hpp) but replaces the
// PrePrepare with a *header-signed* variant: the Preparation enclave signs
// only (view, seq, digest, sender), and the batch body rides alongside,
// bound by the digest. This lets the untrusted broker forward the full
// message to Preparation/Execution but strip the body for Confirmation —
// the paper's "this compartment only handles a hash of the request batch" —
// without invalidating the signature.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "crypto/keyring.hpp"
#include "net/auth.hpp"
#include "net/message.hpp"
#include "pbft/messages.hpp"

namespace sbft::splitbft {

/// Envelope type tags local to a replica (broker <-> enclaves, never wire).
enum class LocalMsg : std::uint32_t {
  /// Broker delivers a cut request batch to the Preparation enclave.
  Batch = 40,
  /// Broker suspicion timer fired; Confirmation may start a view change.
  SuspectPrimary = 41,
  /// Broker delivers coalesced fast-path reads (a serialized RequestBatch)
  /// to the Execution enclave — one ecall for up to read_batch_max reads.
  ReadBatch = 42,
  /// Broker tick forwarded to the Execution enclave (payload: u64 now in
  /// µs). Compartments are deliver-only and own no clock; streaming state
  /// transfer needs one for chunk re-request timeouts and StateRequest
  /// re-broadcast backoff.
  StateTick = 43,
};

[[nodiscard]] constexpr std::uint32_t tag(LocalMsg t) noexcept {
  return static_cast<std::uint32_t>(t);
}

/// AEAD nonce channels — each (key, channel, seq) triple must be unique.
namespace channels {
/// Client request payloads, seq = client timestamp.
inline constexpr std::uint32_t kRequest = 0x7e90;
/// Replies, one channel per replica (seq = timestamp).
inline constexpr std::uint32_t kReplyBase = 0x5000;
/// Session-key wrapping during SessionInit (seq = client id).
inline constexpr std::uint32_t kSessionWrap = 0x5e55;
/// Encrypted state transfer between Execution enclaves (seq = seq number).
inline constexpr std::uint32_t kState = 0x57a7;
/// Streaming state-transfer chunks (seq = chunk index); the key is
/// per-checkpoint (derived from the group key and the checkpoint seq), so
/// (key, channel, index) never repeats across checkpoints.
inline constexpr std::uint32_t kStateChunk = 0x57c4;
/// Fast-path read replies, one channel per replica (seq = timestamp).
/// Distinct from kReplyBase: the ordered fallback of the same timestamp
/// re-encrypts a possibly different value, so the two paths must never
/// share a nonce. Additionally, read replies are sealed under a key
/// DERIVED from (timestamp, exec_seq, replica): an untrusted broker
/// replaying a ReadRequest across a state change makes the enclave derive
/// a fresh key, so the deterministic nonce is never reused with different
/// plaintext.
inline constexpr std::uint32_t kReadReplyBase = 0x6e00;
}  // namespace channels

/// Marker reply sent when the Execution enclave had to execute a no-op
/// (missing session or corrupted operation).
[[nodiscard]] inline Bytes no_op_marker() { return to_bytes("<no-op>"); }

/// Read-vote digest over a read result PLAINTEXT. Fast-path read replies
/// are compared across replicas, but each replica encrypts its reply under
/// its own nonce channel — so replicas vote with a digest of the plaintext
/// instead. The digest is keyed with the client session key (domain
/// separated from every other HMAC use) so it leaks nothing about the
/// value to the untrusted environments relaying it.
[[nodiscard]] Digest read_result_digest(const crypto::Key32& session_key,
                                        Timestamp timestamp,
                                        ByteView plaintext);

/// Header-signed pre-prepare.
struct SplitPrePrepare {
  View view{0};
  SeqNum seq{0};
  Digest batch_digest;
  ReplicaId sender{0};
  /// Serialized RequestBatch; empty when stripped for Confirmation.
  Bytes batch;
  bool has_batch{false};

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<SplitPrePrepare> deserialize(
      ByteView data);

  /// The byte string the Preparation enclave signs.
  [[nodiscard]] Bytes header_bytes() const;

  /// Returns a copy without the batch body (signature stays valid).
  [[nodiscard]] SplitPrePrepare stripped() const;
};

/// Builds the sign-once fan-out prototype: one envelope from this enclave,
/// signed over (type || payload), dst left 0. Broadcast loops copy it and
/// rewrite dst — every copy shares the payload/signature frames, so an
/// N-way enclave broadcast costs one signature and O(1) allocations.
[[nodiscard]] net::Envelope make_signed_proto(const crypto::Signer& signer,
                                              std::uint32_t type,
                                              SharedBytes payload);

/// Signs/verifies a SplitPrePrepare envelope (header-only signature).
[[nodiscard]] net::Envelope make_pre_prepare_envelope(
    const SplitPrePrepare& pp, const crypto::Signer& signer,
    principal::Id dst);
[[nodiscard]] bool verify_pre_prepare_envelope(
    const net::Envelope& env, const SplitPrePrepare& pp,
    const crypto::Verifier& verifier, principal::Id signer);
/// Cache-backed variant (header signatures recur across NewView proofs and
/// duplicated compartment inputs).
[[nodiscard]] bool verify_pre_prepare_envelope(const net::Envelope& env,
                                               const SplitPrePrepare& pp,
                                               net::VerifyCache& cache,
                                               principal::Id signer);

// ---------------------------------------------------------------- sessions

/// Client asks an enclave to prove its identity. The nonce prevents quote
/// replay.
struct AttestRequest {
  ClientId client{0};
  Bytes nonce;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<AttestRequest> deserialize(ByteView data);
};

/// Quote + the enclave's public keys, echoing the client nonce inside the
/// quote's report data.
struct AttestReport {
  ReplicaId replica{0};
  Compartment compartment{Compartment::Execution};
  Bytes quote;  // serialized tee::Quote

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<AttestReport> deserialize(ByteView data);
};

/// Report data embedded in a quote: signing key id + X25519 public key +
/// client nonce.
struct ReportData {
  principal::Id signing_principal{0};
  crypto::Key32 dh_public{};
  Bytes nonce;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<ReportData> deserialize(ByteView data);
};

/// Client provisions its session key to one Execution enclave: the key is
/// sealed under the X25519 shared secret of (client ephemeral, enclave).
struct SessionInit {
  ClientId client{0};
  crypto::Key32 client_dh_public{};
  Bytes sealed_session_key;  // AEAD under the derived pairwise key
  Bytes auth;                // client HMAC over the above

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<SessionInit> deserialize(ByteView data);
  [[nodiscard]] Bytes auth_input() const;
};

struct SessionAck {
  ClientId client{0};
  ReplicaId replica{0};
  Bytes auth;  // HMAC under the freshly installed session key

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<SessionAck> deserialize(ByteView data);
  [[nodiscard]] Bytes auth_input() const;
};

// ----------------------------------------------------------- outbox codec

/// Enclave ecall results are serialized envelope lists — everything crossing
/// the enclave boundary is bytes, as with the SGX SDK.
[[nodiscard]] Bytes encode_outbox(const std::vector<net::Envelope>& envs);
[[nodiscard]] std::optional<std::vector<net::Envelope>> decode_outbox(
    ByteView data);

}  // namespace sbft::splitbft
