#include "splitbft/messages.hpp"

#include "common/serde.hpp"
#include "crypto/hmac.hpp"

namespace sbft::splitbft {

namespace {

void put_digest(Writer& w, const Digest& d) { w.raw(d.view()); }

[[nodiscard]] Digest get_digest(Reader& r) {
  const Bytes b = r.raw(32);
  Digest d;
  if (b.size() == 32) std::copy(b.begin(), b.end(), d.bytes.begin());
  return d;
}

void put_key(Writer& w, const crypto::Key32& k) {
  w.raw(ByteView{k.data(), k.size()});
}

[[nodiscard]] crypto::Key32 get_key(Reader& r) {
  const Bytes b = r.raw(32);
  crypto::Key32 k{};
  if (b.size() == 32) std::copy(b.begin(), b.end(), k.begin());
  return k;
}

}  // namespace

// ---------------------------------------------------------- SplitPrePrepare

Bytes SplitPrePrepare::header_bytes() const {
  Writer w;
  w.u64(view);
  w.u64(seq);
  put_digest(w, batch_digest);
  w.u32(sender);
  return std::move(w).take();
}

Bytes SplitPrePrepare::serialize() const {
  Writer w;
  w.raw(header_bytes());
  w.boolean(has_batch);
  if (has_batch) w.bytes(batch);
  return std::move(w).take();
}

std::optional<SplitPrePrepare> SplitPrePrepare::deserialize(ByteView data) {
  Reader r(data);
  SplitPrePrepare pp;
  pp.view = r.u64();
  pp.seq = r.u64();
  pp.batch_digest = get_digest(r);
  pp.sender = r.u32();
  pp.has_batch = r.boolean();
  if (pp.has_batch) pp.batch = r.bytes();
  if (!r.done()) return std::nullopt;
  return pp;
}

SplitPrePrepare SplitPrePrepare::stripped() const {
  SplitPrePrepare copy = *this;
  copy.batch.clear();
  copy.has_batch = false;
  return copy;
}

Digest read_result_digest(const crypto::Key32& session_key,
                          Timestamp timestamp, ByteView plaintext) {
  Writer w;
  w.raw(to_bytes("read-digest"));  // domain separation from other HMAC uses
  w.u64(timestamp);
  w.bytes(plaintext);
  return crypto::hmac_sha256(
      ByteView{session_key.data(), session_key.size()}, std::move(w).take());
}

net::Envelope make_signed_proto(const crypto::Signer& signer,
                                std::uint32_t type, SharedBytes payload) {
  net::Envelope env;
  env.src = signer.id();
  env.type = type;
  env.payload = std::move(payload);
  net::sign_envelope(env, signer);
  return env;
}

net::Envelope make_pre_prepare_envelope(const SplitPrePrepare& pp,
                                        const crypto::Signer& signer,
                                        principal::Id dst) {
  net::Envelope env;
  env.src = signer.id();
  env.dst = dst;
  env.type = pbft::tag(pbft::MsgType::PrePrepare);
  env.payload = pp.serialize();
  env.signature = signer.sign(pp.header_bytes());
  return env;
}

bool verify_pre_prepare_envelope(const net::Envelope& env,
                                 const SplitPrePrepare& pp,
                                 const crypto::Verifier& verifier,
                                 principal::Id signer) {
  (void)env;
  return verifier.verify(signer, pp.header_bytes(), env.signature);
}

bool verify_pre_prepare_envelope(const net::Envelope& env,
                                 const SplitPrePrepare& pp,
                                 net::VerifyCache& cache,
                                 principal::Id signer) {
  return cache.check_raw(signer, pp.header_bytes(), env.signature);
}

// ----------------------------------------------------------------- attest

Bytes AttestRequest::serialize() const {
  Writer w;
  w.u32(client);
  w.bytes(nonce);
  return std::move(w).take();
}

std::optional<AttestRequest> AttestRequest::deserialize(ByteView data) {
  Reader r(data);
  AttestRequest m;
  m.client = r.u32();
  m.nonce = r.bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

Bytes AttestReport::serialize() const {
  Writer w;
  w.u32(replica);
  w.u8(static_cast<std::uint8_t>(compartment));
  w.bytes(quote);
  return std::move(w).take();
}

std::optional<AttestReport> AttestReport::deserialize(ByteView data) {
  Reader r(data);
  AttestReport m;
  m.replica = r.u32();
  m.compartment = static_cast<Compartment>(r.u8());
  m.quote = r.bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

Bytes ReportData::serialize() const {
  Writer w;
  w.u64(signing_principal);
  put_key(w, dh_public);
  w.bytes(nonce);
  return std::move(w).take();
}

std::optional<ReportData> ReportData::deserialize(ByteView data) {
  Reader r(data);
  ReportData m;
  m.signing_principal = r.u64();
  m.dh_public = get_key(r);
  m.nonce = r.bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

// ---------------------------------------------------------------- session

Bytes SessionInit::auth_input() const {
  Writer w;
  w.u32(client);
  put_key(w, client_dh_public);
  w.bytes(sealed_session_key);
  return std::move(w).take();
}

Bytes SessionInit::serialize() const {
  Writer w;
  w.raw(auth_input());
  w.bytes(auth);
  return std::move(w).take();
}

std::optional<SessionInit> SessionInit::deserialize(ByteView data) {
  Reader r(data);
  SessionInit m;
  m.client = r.u32();
  m.client_dh_public = get_key(r);
  m.sealed_session_key = r.bytes();
  m.auth = r.bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

Bytes SessionAck::auth_input() const {
  Writer w;
  w.u32(client);
  w.u32(replica);
  return std::move(w).take();
}

Bytes SessionAck::serialize() const {
  Writer w;
  w.raw(auth_input());
  w.bytes(auth);
  return std::move(w).take();
}

std::optional<SessionAck> SessionAck::deserialize(ByteView data) {
  Reader r(data);
  SessionAck m;
  m.client = r.u32();
  m.replica = r.u32();
  m.auth = r.bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

// ----------------------------------------------------------------- outbox

Bytes encode_outbox(const std::vector<net::Envelope>& envs) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(envs.size()));
  // Memoized wire images: an enclave's broadcast copies serialize once.
  for (const auto& env : envs) w.bytes(env.wire());
  return std::move(w).take();
}

std::optional<std::vector<net::Envelope>> decode_outbox(ByteView data) {
  Reader r(data);
  const std::uint32_t n = r.u32();
  if (n > 100'000) return std::nullopt;
  std::vector<net::Envelope> envs;
  envs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t len = r.u32();
    const ByteView b = r.view(len);  // view, not copy; deserialize frames it
    if (r.failed()) return std::nullopt;
    auto env = net::Envelope::deserialize(b);
    if (!env) return std::nullopt;
    envs.push_back(std::move(*env));
  }
  if (!r.done()) return std::nullopt;
  return envs;
}

}  // namespace sbft::splitbft
