// Confirmation compartment (paper §3.2, Figure 2 handlers 3, 5, 9).
//
// Confirms that a request was prepared by a quorum: collects one PrePrepare
// header plus 2f matching Prepares from distinct Preparation enclaves, then
// emits a signed Commit to all Execution enclaves. Only ever sees batch
// *hashes* — the broker strips request bodies (the header-only signature
// keeps verification possible). Starts view changes on (untrusted) broker
// suspicion, embedding its prepared certificates and the latest checkpoint
// certificate.
#pragma once

#include "splitbft/compartment.hpp"

namespace sbft::splitbft {

class ConfCompartment final : public CompartmentLogic {
 public:
  ConfCompartment(pbft::Config config, ReplicaId self,
                  std::shared_ptr<const crypto::Signer> signer,
                  std::shared_ptr<const crypto::Verifier> verifier);

  [[nodiscard]] std::vector<net::Envelope> deliver(
      const net::Envelope& env) override;
  [[nodiscard]] Digest measurement() const override {
    return compartment_measurement(Compartment::Confirmation);
  }

  [[nodiscard]] View view() const noexcept { return view_; }
  [[nodiscard]] bool in_view_change() const noexcept {
    return in_view_change_;
  }
  [[nodiscard]] SeqNum last_stable() const noexcept {
    return checkpoints_.last_stable();
  }
  [[nodiscard]] const net::VerifyCache& auth() const noexcept { return auth_; }

 private:
  struct Slot {
    std::optional<SplitPrePrepare> header;  // stripped pre-prepare
    net::Envelope header_env;
    std::map<ReplicaId, std::pair<Digest, net::Envelope>> prepares;
    bool commit_sent{false};
    std::optional<pbft::PreparedProof> prepared_proof;
  };

  using Out = std::vector<net::Envelope>;

  void on_pre_prepare(const net::Envelope& env, Out& out);
  void on_prepare(const net::Envelope& env, Out& out);
  void on_suspect_primary(const net::Envelope& env, Out& out);
  void on_new_view(const net::Envelope& env, Out& out);
  void on_checkpoint(const net::Envelope& env, Out& out);

  void check_prepared(SeqNum seq, Out& out);
  [[nodiscard]] bool in_window(SeqNum seq) const noexcept;
  void garbage_collect(SeqNum stable);
  [[nodiscard]] bool accept_header(const net::Envelope& env,
                                   const SplitPrePrepare& pp);

  pbft::Config config_;
  ReplicaId self_;
  std::shared_ptr<const crypto::Signer> signer_;
  net::VerifyCache auth_;

  View view_{0};
  bool in_view_change_{false};
  /// Input log in_conf: per-sequence agreement state.
  std::map<SeqNum, Slot> log_;
  /// Prepares for the pending view that arrived before its NewView
  /// (message reordering); replayed once the NewView installs headers.
  struct BufferedPrepare {
    View view{0};
    Digest digest;
    net::Envelope env;
  };
  std::map<SeqNum, std::map<ReplicaId, BufferedPrepare>> buffered_prepares_;
  CheckpointCollector checkpoints_;
};

}  // namespace sbft::splitbft
