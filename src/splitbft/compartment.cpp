#include "splitbft/compartment.hpp"

#include "crypto/sha256.hpp"

namespace sbft::splitbft {

Digest compartment_measurement(Compartment type) {
  const std::string tag =
      std::string("splitbft-enclave-v1:") + to_string(type);
  return crypto::sha256(to_bytes(tag));
}

CheckpointCollector::CheckpointCollector(pbft::Config config, ReplicaId self)
    : config_(config), self_(self) {}

std::optional<CheckpointCollector::Stable> CheckpointCollector::add(
    const net::Envelope& env, const crypto::Verifier& verifier) {
  auto cp = pbft::Checkpoint::deserialize(env.payload);
  if (!cp || cp->sender >= config_.n || cp->seq <= last_stable_) {
    return std::nullopt;
  }
  const principal::Id signer =
      principal::enclave({cp->sender, Compartment::Execution});
  if (!net::verify_envelope(env, verifier, signer)) return std::nullopt;
  return record(env, *cp);
}

std::optional<CheckpointCollector::Stable> CheckpointCollector::add_own(
    const net::Envelope& env, const pbft::Checkpoint& cp) {
  if (cp.seq <= last_stable_) return std::nullopt;
  return record(env, cp);
}

std::optional<CheckpointCollector::Stable> CheckpointCollector::record(
    const net::Envelope& env, const pbft::Checkpoint& cp) {
  auto& by_sender = pending_[cp.seq][cp.state_digest];
  by_sender.emplace(cp.sender, env);
  if (by_sender.size() < config_.quorum()) return std::nullopt;

  Stable stable;
  stable.seq = cp.seq;
  stable.digest = cp.state_digest;
  for (const auto& [sender, e] : by_sender) stable.proof.push_back(e);

  last_stable_ = cp.seq;
  stable_proof_ = stable.proof;
  pending_.erase(pending_.begin(), pending_.upper_bound(cp.seq));
  return stable;
}

void CheckpointCollector::adopt(SeqNum seq, std::vector<net::Envelope> proof) {
  if (seq <= last_stable_) return;
  last_stable_ = seq;
  stable_proof_ = std::move(proof);
  pending_.erase(pending_.begin(), pending_.upper_bound(seq));
}

bool verify_checkpoint_proof(const std::vector<net::Envelope>& proof,
                             SeqNum seq, std::optional<Digest> expected_digest,
                             const pbft::Config& config,
                             const crypto::Verifier& verifier) {
  std::map<ReplicaId, bool> distinct;
  std::optional<Digest> digest = expected_digest;
  for (const auto& env : proof) {
    auto cp = pbft::Checkpoint::deserialize(env.payload);
    if (!cp || cp->seq != seq || cp->sender >= config.n) continue;
    if (digest && cp->state_digest != *digest) continue;
    const principal::Id signer =
        principal::enclave({cp->sender, Compartment::Execution});
    if (!net::verify_envelope(env, verifier, signer)) continue;
    digest = cp->state_digest;
    distinct[cp->sender] = true;
  }
  return distinct.size() >= config.quorum();
}

std::optional<Digest> checkpoint_proof_digest(
    const std::vector<net::Envelope>& proof, SeqNum seq,
    const pbft::Config& config, const crypto::Verifier& verifier) {
  // Group by digest, return the digest achieving a quorum.
  std::map<Digest, std::map<ReplicaId, bool>> groups;
  for (const auto& env : proof) {
    auto cp = pbft::Checkpoint::deserialize(env.payload);
    if (!cp || cp->seq != seq || cp->sender >= config.n) continue;
    const principal::Id signer =
        principal::enclave({cp->sender, Compartment::Execution});
    if (!net::verify_envelope(env, verifier, signer)) continue;
    groups[cp->state_digest][cp->sender] = true;
  }
  for (const auto& [digest, senders] : groups) {
    if (senders.size() >= config.quorum()) return digest;
  }
  return std::nullopt;
}

}  // namespace sbft::splitbft
