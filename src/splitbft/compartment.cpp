#include "splitbft/compartment.hpp"

#include "crypto/sha256.hpp"

namespace sbft::splitbft {

Digest compartment_measurement(Compartment type) {
  const std::string tag =
      std::string("splitbft-enclave-v1:") + to_string(type);
  return crypto::sha256(to_bytes(tag));
}

CheckpointCollector::CheckpointCollector(pbft::Config config, ReplicaId self)
    : config_(config), self_(self) {}

std::optional<CheckpointCollector::Stable> CheckpointCollector::add(
    const net::Envelope& env, net::VerifyCache& auth) {
  auto cp = pbft::Checkpoint::deserialize(env.payload);
  if (!cp || cp->sender >= config_.n || cp->seq <= last_stable_) {
    return std::nullopt;
  }
  const principal::Id signer =
      principal::enclave({cp->sender, Compartment::Execution});
  auto verified = auth.verify(env, signer);
  if (!verified) return std::nullopt;
  return record(std::move(*verified), *cp);
}

std::optional<CheckpointCollector::Stable> CheckpointCollector::add_own(
    const net::Envelope& env, const pbft::Checkpoint& cp,
    net::VerifyCache& auth, const crypto::Signer& signer) {
  if (cp.seq <= last_stable_) return std::nullopt;
  return record(auth.attest_own(env, signer), cp);
}

std::optional<CheckpointCollector::Stable> CheckpointCollector::record(
    net::VerifiedEnvelope env, const pbft::Checkpoint& cp) {
  auto& by_sender = pending_[cp.seq][cp.state_digest];
  by_sender.try_emplace(cp.sender, std::move(env));
  if (by_sender.size() < config_.quorum()) return std::nullopt;

  Stable stable;
  stable.seq = cp.seq;
  stable.digest = cp.state_digest;

  stable_proof_.clear();
  for (const auto& [sender, e] : by_sender) stable_proof_.push_back(e.clone());
  last_stable_ = cp.seq;
  pending_.erase(pending_.begin(), pending_.upper_bound(cp.seq));
  return stable;
}

void CheckpointCollector::adopt(SeqNum seq,
                                std::vector<net::VerifiedEnvelope> proof) {
  if (seq <= last_stable_) return;
  last_stable_ = seq;
  stable_proof_ = std::move(proof);
  pending_.erase(pending_.begin(), pending_.upper_bound(seq));
}

std::optional<std::vector<net::VerifiedEnvelope>> verify_checkpoint_proof(
    const std::vector<net::Envelope>& proof, SeqNum seq,
    std::optional<Digest> expected_digest, const pbft::Config& config,
    net::VerifyCache& auth) {
  std::map<ReplicaId, bool> distinct;
  std::optional<Digest> digest = expected_digest;
  std::vector<net::VerifiedEnvelope> verified;
  for (const auto& env : proof) {
    auto cp = pbft::Checkpoint::deserialize(env.payload);
    if (!cp || cp->seq != seq || cp->sender >= config.n) continue;
    if (digest && cp->state_digest != *digest) continue;
    const principal::Id signer =
        principal::enclave({cp->sender, Compartment::Execution});
    auto ve = auth.verify(env, signer);
    if (!ve) continue;
    digest = cp->state_digest;
    if (distinct.emplace(cp->sender, true).second) {
      verified.push_back(std::move(*ve));
    }
  }
  if (distinct.size() < config.quorum()) return std::nullopt;
  return verified;
}

std::optional<Digest> checkpoint_proof_digest(
    const std::vector<net::Envelope>& proof, SeqNum seq,
    const pbft::Config& config, net::VerifyCache& auth) {
  // Group by digest, return the digest achieving a quorum.
  std::map<Digest, std::map<ReplicaId, bool>> groups;
  for (const auto& env : proof) {
    auto cp = pbft::Checkpoint::deserialize(env.payload);
    if (!cp || cp->seq != seq || cp->sender >= config.n) continue;
    const principal::Id signer =
        principal::enclave({cp->sender, Compartment::Execution});
    if (!auth.check(env, signer)) continue;
    groups[cp->state_digest][cp->sender] = true;
  }
  for (const auto& [digest, senders] : groups) {
    if (senders.size() >= config.quorum()) return digest;
  }
  return std::nullopt;
}

}  // namespace sbft::splitbft
