#include "splitbft/client.hpp"

#include "common/serde.hpp"
#include "crypto/aead.hpp"
#include "crypto/hmac.hpp"
#include "crypto/x25519.hpp"
#include "splitbft/compartment.hpp"
#include "tee/attestation.hpp"

namespace sbft::splitbft {

SplitClient::SplitClient(pbft::Config config, ClientId id,
                         const pbft::ClientDirectory& directory,
                         TrustAnchors anchors, std::uint64_t seed,
                         Micros retry_timeout_us)
    : config_(config),
      id_(id),
      auth_key_(directory.auth_key(id)),
      anchors_(anchors),
      rng_(seed ^ (0xc11e47ULL + id)),
      retry_timeout_us_(retry_timeout_us) {
  for (auto& b : session_key_) b = static_cast<std::uint8_t>(rng_.next_u64());
  dh_secret_ = crypto::x25519_keygen(rng_);
  // dh_public_ is derived lazily on first attestation: deriving it costs a
  // scalar multiplication, and benchmark runs with thousands of clients
  // pre-install sessions without ever attesting.
}

std::vector<net::Envelope> SplitClient::begin_session(Micros now) {
  session_retry_deadline_ = now + retry_timeout_us_;
  attest_nonce_ = rng_.bytes(16);
  AttestRequest req;
  req.client = id_;
  req.nonce = attest_nonce_;

  std::vector<net::Envelope> out;
  const SharedBytes payload(req.serialize());  // one frame for all copies
  for (ReplicaId r = 0; r < config_.n; ++r) {
    for (const Compartment c :
         {Compartment::Execution, Compartment::Preparation}) {
      net::Envelope env;
      env.src = principal::client(id_);
      env.dst = principal::enclave({r, c});
      env.type = pbft::tag(pbft::MsgType::AttestRequest);
      env.payload = payload;
      out.push_back(std::move(env));
    }
  }
  return out;
}

void SplitClient::handle_attest_report(const net::Envelope& env,
                                       std::vector<net::Envelope>& out) {
  auto report = AttestReport::deserialize(env.payload);
  if (!report || report->replica >= config_.n) return;
  auto quote = tee::Quote::deserialize(report->quote);
  if (!quote) return;

  // Pin the expected code identity for the claimed compartment type.
  const Digest expected = compartment_measurement(report->compartment);
  if (!tee::verify_quote(anchors_.attestation_root, *quote, expected)) return;

  auto rd = ReportData::deserialize(quote->report_data);
  if (!rd || rd->nonce != attest_nonce_) return;  // replayed quote
  const principal::Id expected_principal =
      principal::enclave({report->replica, report->compartment});
  if (rd->signing_principal != expected_principal) return;

  if (report->compartment != Compartment::Execution) return;  // verified only
  if (session_inits_sent_.contains(report->replica)) return;
  session_inits_sent_.insert(report->replica);
  if (!dh_public_ready_) {
    dh_public_ = crypto::x25519_base(dh_secret_);
    dh_public_ready_ = true;
  }

  // Wrap the session key for this Execution enclave.
  const crypto::Key32 shared = crypto::x25519(dh_secret_, rd->dh_public);
  const crypto::Key32 wrap_key = crypto::derive_key(
      ByteView{shared.data(), shared.size()}, "session-wrap");

  SessionInit init;
  init.client = id_;
  init.client_dh_public = dh_public_;
  init.sealed_session_key = crypto::aead_seal(
      wrap_key, crypto::make_nonce(channels::kSessionWrap, id_), {},
      ByteView{session_key_.data(), session_key_.size()});
  const Digest mac = crypto::hmac_sha256(
      ByteView{auth_key_.data(), auth_key_.size()}, init.auth_input());
  init.auth = Bytes(mac.bytes.begin(), mac.bytes.end());

  net::Envelope msg;
  msg.src = principal::client(id_);
  msg.dst = principal::enclave({report->replica, Compartment::Execution});
  msg.type = pbft::tag(pbft::MsgType::SessionInit);
  msg.payload = init.serialize();
  out.push_back(std::move(msg));
}

void SplitClient::handle_session_ack(const net::Envelope& env) {
  auto ack = SessionAck::deserialize(env.payload);
  if (!ack || ack->client != id_ || ack->replica >= config_.n) return;
  if (!crypto::hmac_verify(
          ByteView{session_key_.data(), session_key_.size()},
          ack->auth_input(), ack->auth)) {
    return;  // ack not under our fresh session key
  }
  acks_.insert(ack->replica);
  if (session_ready()) session_retry_deadline_ = 0;
}

std::vector<net::Envelope> SplitClient::on_message(const net::Envelope& env,
                                                   Micros now) {
  (void)now;
  std::vector<net::Envelope> out;
  switch (static_cast<pbft::MsgType>(env.type)) {
    case pbft::MsgType::AttestReport:
      handle_attest_report(env, out);
      break;
    case pbft::MsgType::SessionAck:
      handle_session_ack(env);
      break;
    default:
      break;
  }
  return out;
}

std::vector<net::Envelope> SplitClient::broadcast_request() const {
  std::vector<net::Envelope> out;
  net::Envelope env;
  env.src = principal::client(id_);
  env.type = pbft::tag(fast_read_ ? pbft::MsgType::ReadRequest
                                  : pbft::MsgType::Request);
  env.payload = request_.serialize();
  for (ReplicaId r = 0; r < config_.n; ++r) {
    env.dst = principal::splitbft_env(r);
    out.push_back(env);
  }
  return out;
}

std::vector<net::Envelope> SplitClient::submit(Bytes operation, Micros now,
                                               bool read_only) {
  in_flight_ = true;
  votes_.clear();
  read_votes_.clear();
  read_results_.clear();
  read_replied_.clear();
  ++timestamp_;

  request_ = pbft::Request{};
  request_.client = id_;
  request_.timestamp = timestamp_;
  // End-to-end encryption: only Execution enclaves hold the session key.
  // Fast reads seal under the same request channel — the ordered fallback
  // re-broadcasts these exact bytes, so the operation is encrypted once.
  request_.payload = crypto::aead_seal(
      session_key_, crypto::make_nonce(channels::kRequest, timestamp_), {},
      operation);
  const Digest mac = crypto::hmac_sha256(
      ByteView{auth_key_.data(), auth_key_.size()}, request_.auth_input());
  request_.auth = Bytes(mac.bytes.begin(), mac.bytes.end());

  fast_read_ = read_only && config_.read_path;
  if (fast_read_) {
    read_deadline_ = now + config_.read_fallback_timeout_us;
    retry_deadline_ = 0;
  } else {
    read_deadline_ = 0;
    retry_deadline_ = now + retry_timeout_us_;
  }
  return broadcast_request();
}

void SplitClient::finish() noexcept {
  in_flight_ = false;
  fast_read_ = false;
  retry_deadline_ = 0;
  read_deadline_ = 0;
}

void SplitClient::fall_back(Micros now, std::vector<net::Envelope>& out) {
  if (!fast_read_) return;
  fast_read_ = false;
  read_deadline_ = 0;
  ++read_fallbacks_;
  retry_deadline_ = now + retry_timeout_us_;
  for (auto& env : broadcast_request()) out.push_back(std::move(env));
}

std::optional<Bytes> SplitClient::on_read_reply(
    const net::Envelope& env, Micros now, std::vector<net::Envelope>& out) {
  auto rr = pbft::ReadReply::deserialize(env.payload);
  if (!rr || rr->client != id_ || rr->timestamp != timestamp_ ||
      rr->sender >= config_.n) {
    return std::nullopt;
  }
  if (!crypto::hmac_verify(ByteView{auth_key_.data(), auth_key_.size()},
                           rr->auth_input(), rr->auth)) {
    return std::nullopt;  // forged read reply
  }
  if (env.src != principal::enclave({rr->sender, Compartment::Execution})) {
    return std::nullopt;  // vote misattributed to another enclave
  }
  if (!read_replied_.insert(rr->sender).second) {
    return std::nullopt;  // one vote per replica
  }

  const ReadKey key{rr->result_digest, rr->exec_seq};
  read_votes_[key].insert(rr->sender);
  if (rr->has_result) {
    // The designated responder's value is encrypted for us under a key
    // derived from (timestamp, advertised state version, replica) — see
    // ExecCompartment::serve_read; it counts only if the decrypted
    // plaintext digests to the advertised vote.
    Writer ctx;
    ctx.u64(rr->timestamp);
    ctx.u64(rr->exec_seq);
    ctx.u32(rr->sender);
    const crypto::Key32 seal_key = crypto::derive_key(
        ByteView{session_key_.data(), session_key_.size()},
        "read-reply-seal", std::move(ctx).take());
    const auto plain = crypto::aead_open(
        seal_key,
        crypto::make_nonce(channels::kReadReplyBase + rr->sender,
                           rr->timestamp),
        {}, rr->result);
    if (plain && read_result_digest(session_key_, rr->timestamp, *plain) ==
                     rr->result_digest) {
      read_results_.emplace(key, std::move(*plain));
    }
  }

  const auto votes = read_votes_.find(key);
  if (votes->second.size() >= config_.quorum()) {
    const auto full = read_results_.find(key);
    if (full != read_results_.end()) {
      Bytes result = full->second;
      finish();
      ++fast_reads_;
      return result;
    }
  }
  if (read_replied_.size() >= config_.n) fall_back(now, out);
  return std::nullopt;
}

std::optional<Bytes> SplitClient::on_reply(const net::Envelope& env,
                                           Micros now,
                                           std::vector<net::Envelope>& out) {
  if (!in_flight_) return std::nullopt;
  if (fast_read_ && env.type == pbft::tag(pbft::MsgType::ReadReply)) {
    return on_read_reply(env, now, out);
  }
  if (env.type != pbft::tag(pbft::MsgType::Reply)) {
    return std::nullopt;
  }
  auto reply = pbft::Reply::deserialize(env.payload);
  if (!reply || reply->client != id_ || reply->timestamp != timestamp_ ||
      reply->sender >= config_.n) {
    return std::nullopt;
  }
  if (!crypto::hmac_verify(ByteView{auth_key_.data(), auth_key_.size()},
                           reply->auth_input(), reply->auth)) {
    return std::nullopt;
  }

  Bytes vote;
  if (reply->result == no_op_marker()) {
    vote = no_op_marker();  // replica executed a no-op
  } else {
    const auto plain = crypto::aead_open(
        session_key_,
        crypto::make_nonce(channels::kReplyBase + reply->sender,
                           reply->timestamp),
        {}, reply->result);
    if (!plain) return std::nullopt;  // not for us / corrupted
    vote = *plain;
  }
  auto& senders = votes_[vote];
  senders.insert(reply->sender);
  // See pbft::Client::on_reply: read_path strengthens the ordered reply
  // quorum to 2f+1 so fast reads can never miss an acknowledged write.
  const std::uint32_t needed =
      config_.read_path ? config_.quorum() : config_.f + 1;
  if (senders.size() >= needed) {
    finish();
    return vote;
  }
  return std::nullopt;
}

std::vector<net::Envelope> SplitClient::tick(Micros now) {
  std::vector<net::Envelope> out;
  // Session setup retransmission: lossy links may drop any handshake leg.
  if (!session_ready() && session_retry_deadline_ != 0 &&
      now >= session_retry_deadline_) {
    session_retry_deadline_ = now + retry_timeout_us_;
    AttestRequest req;
    req.client = id_;
    req.nonce = attest_nonce_;
    const SharedBytes payload(req.serialize());  // one frame for all copies
    for (ReplicaId r = 0; r < config_.n; ++r) {
      if (acks_.contains(r)) continue;
      session_inits_sent_.erase(r);  // allow a fresh SessionInit
      net::Envelope env;
      env.src = principal::client(id_);
      env.dst = principal::enclave({r, Compartment::Execution});
      env.type = pbft::tag(pbft::MsgType::AttestRequest);
      env.payload = payload;
      out.push_back(std::move(env));
    }
  }
  if (in_flight_ && fast_read_) {
    // Unanswered fast read: give up on the single-round path and order it.
    if (read_deadline_ != 0 && now >= read_deadline_) fall_back(now, out);
  } else if (in_flight_ && retry_deadline_ != 0 && now >= retry_deadline_) {
    retry_deadline_ = now + retry_timeout_us_;
    for (auto& env : broadcast_request()) out.push_back(std::move(env));
  }
  return out;
}

std::optional<Micros> SplitClient::next_deadline() const {
  std::optional<Micros> next;
  if (in_flight_ && fast_read_ && read_deadline_ != 0) next = read_deadline_;
  if (in_flight_ && !fast_read_ && retry_deadline_ != 0) {
    next = retry_deadline_;
  }
  if (!session_ready() && session_retry_deadline_ != 0 &&
      (!next || session_retry_deadline_ < *next)) {
    next = session_retry_deadline_;
  }
  return next;
}

}  // namespace sbft::splitbft
