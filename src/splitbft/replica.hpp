// SplitBFT replica assembly: three compartment enclaves + untrusted broker.
//
// This is the per-machine deployment unit. It provisions the enclaves
// (keys, attestation hooks, protected-FS key from the platform sealing
// service), wires them into EnclaveHosts with the configured SGX cost
// model, and exposes the whole thing as a single Actor (the environment's
// network face).
#pragma once

#include <memory>

#include "crypto/keyring.hpp"
#include "pbft/client_directory.hpp"
#include "splitbft/broker.hpp"
#include "splitbft/conf_compartment.hpp"
#include "splitbft/enclave_adapter.hpp"
#include "splitbft/exec_compartment.hpp"
#include "splitbft/prep_compartment.hpp"
#include "tee/attestation.hpp"
#include "tee/cost_model.hpp"
#include "tee/protected_fs.hpp"
#include "tee/sealing.hpp"

namespace sbft::splitbft {

/// Fault-injection hook: wraps a freshly constructed compartment logic.
/// Models a compromised enclave of the given type on this replica (the
/// wrapper holds the enclave's key material and full control of its I/O).
using LogicDecorator = std::function<std::unique_ptr<CompartmentLogic>(
    Compartment type, std::unique_ptr<CompartmentLogic> inner)>;

struct ReplicaOptions {
  pbft::Config config{};
  tee::CostModel cost_model{tee::CostModel::sgx()};
  /// true: burn crossing costs as real CPU time (threaded runtime);
  /// false: account them virtually (simulator / benchmarks).
  bool charge_real_time{false};
  std::uint64_t client_master_secret{0x5ec7e7};
  /// Optional byzantine-compartment injection (tests only).
  LogicDecorator decorate_logic{};
  /// Broker-side pre-verification of inbound wire signatures (DoS defense;
  /// costs one extra verification per honest message, so default off).
  bool broker_ingress_filter{false};
  /// Staged execution pipeline inside the Execution enclave: 0 = serial
  /// SyncOrderedRunner (deterministic reference), N >= 1 = N
  /// SpinOrderedRunner worker threads sealing/signing replies and serving
  /// coalesced reads in parallel.
  std::size_t exec_workers{0};
};

class SplitbftReplica final : public runtime::Actor {
 public:
  /// `keyring` must already contain principals for the three enclaves of
  /// this replica (modeling attested key provisioning at deployment).
  /// `attestation` and `sealing` model the platform's trusted services and
  /// must outlive the replica.
  SplitbftReplica(ReplicaOptions options, ReplicaId id,
                  const crypto::KeyRing& keyring,
                  const tee::AttestationService& attestation,
                  const tee::SealingService& sealing,
                  crypto::Key32 exec_group_key, crypto::Key32 dh_secret,
                  ExecAppFactory app_factory);

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override {
    return broker_->handle(env, now);
  }
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override {
    return broker_->tick(now);
  }

  [[nodiscard]] ReplicaId id() const noexcept { return id_; }
  [[nodiscard]] Broker& broker() noexcept { return *broker_; }

  // Test-only introspection into enclave state (impossible on real SGX).
  [[nodiscard]] const PrepCompartment& prep() const noexcept { return *prep_; }
  [[nodiscard]] const ConfCompartment& conf() const noexcept { return *conf_; }
  [[nodiscard]] const ExecCompartment& exec() const noexcept { return *exec_; }
  /// Provisioning access (session pre-installation in benchmarks).
  [[nodiscard]] ExecCompartment& exec_mutable() noexcept { return *exec_; }

  /// Untrusted persistent storage behind the protected FS (ledger blocks).
  [[nodiscard]] tee::MemoryBlockStore& block_store() noexcept {
    return block_store_;
  }

 private:
  ReplicaId id_;
  tee::MemoryBlockStore block_store_;
  // Non-owning views into the enclave-held logic (owned via the hosts).
  PrepCompartment* prep_{nullptr};
  ConfCompartment* conf_{nullptr};
  ExecCompartment* exec_{nullptr};
  std::unique_ptr<Broker> broker_;
};

}  // namespace sbft::splitbft
