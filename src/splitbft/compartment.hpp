// Compartment interface and shared in-enclave helpers.
//
// A compartment is the code of one SplitBFT enclave type (paper §3.2). It is
// a pure event-driven state machine: `deliver` consumes one envelope and
// returns the envelopes to emit. Everything else (threads, timers, sockets,
// persistence) lives in the untrusted environment.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "crypto/keyring.hpp"
#include "net/auth.hpp"
#include "net/message.hpp"
#include "pbft/config.hpp"
#include "pbft/messages.hpp"
#include "splitbft/messages.hpp"

namespace sbft::splitbft {

class CompartmentLogic {
 public:
  virtual ~CompartmentLogic() = default;

  /// Processes one delivered envelope, returns envelopes to emit.
  [[nodiscard]] virtual std::vector<net::Envelope> deliver(
      const net::Envelope& env) = 0;

  /// Code identity for attestation (MRENCLAVE equivalent).
  [[nodiscard]] virtual Digest measurement() const = 0;
};

/// Deterministic per-compartment-type measurement. In real SGX this is the
/// hash of the enclave binary; here it hashes the compartment type + ABI
/// version, which is what diversity-aware clients pin.
[[nodiscard]] Digest compartment_measurement(Compartment type);

/// Collects Execution-enclave Checkpoint messages; every compartment runs
/// one instance (the paper duplicates handler (9) across compartments).
/// Every recorded envelope is a net::VerifiedEnvelope — the collector never
/// stores an unchecked signature.
class CheckpointCollector {
 public:
  CheckpointCollector(pbft::Config config, ReplicaId self);

  struct Stable {
    SeqNum seq{0};
    Digest digest;
  };

  /// Validates (signature by the sender's Execution enclave, through the
  /// cache) and records a checkpoint message. Returns a newly reached
  /// stable checkpoint, if any.
  [[nodiscard]] std::optional<Stable> add(const net::Envelope& env,
                                          net::VerifyCache& auth);

  /// Records this replica's own Execution checkpoint, attested by the
  /// enclave's private signer instead of re-verified.
  [[nodiscard]] std::optional<Stable> add_own(const net::Envelope& env,
                                              const pbft::Checkpoint& cp,
                                              net::VerifyCache& auth,
                                              const crypto::Signer& signer);

  [[nodiscard]] SeqNum last_stable() const noexcept { return last_stable_; }
  /// Wire copy of the stable certificate (for ViewChange / StateResponse
  /// proof fields).
  [[nodiscard]] std::vector<net::Envelope> stable_proof() const {
    return net::unwrap(stable_proof_);
  }

  /// Adopts an externally proven stable checkpoint (from a NewView).
  void adopt(SeqNum seq, std::vector<net::VerifiedEnvelope> proof);

 private:
  [[nodiscard]] std::optional<Stable> record(net::VerifiedEnvelope env,
                                             const pbft::Checkpoint& cp);

  pbft::Config config_;
  ReplicaId self_;
  SeqNum last_stable_{0};
  std::vector<net::VerifiedEnvelope> stable_proof_;
  std::map<SeqNum,
           std::map<Digest, std::map<ReplicaId, net::VerifiedEnvelope>>>
      pending_;
};

/// Validates a checkpoint-proof certificate: at least 2f+1 Checkpoint
/// envelopes from distinct replicas' Execution enclaves for (seq, digest).
/// On success returns the verified quorum (ready for
/// CheckpointCollector::adopt); nullopt otherwise.
[[nodiscard]] std::optional<std::vector<net::VerifiedEnvelope>>
verify_checkpoint_proof(const std::vector<net::Envelope>& proof, SeqNum seq,
                        std::optional<Digest> expected_digest,
                        const pbft::Config& config, net::VerifyCache& auth);

/// Extracts the (seq, digest) a checkpoint proof certifies, if valid for
/// any digest.
[[nodiscard]] std::optional<Digest> checkpoint_proof_digest(
    const std::vector<net::Envelope>& proof, SeqNum seq,
    const pbft::Config& config, net::VerifyCache& auth);

}  // namespace sbft::splitbft
