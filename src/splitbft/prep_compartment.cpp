#include "splitbft/prep_compartment.hpp"

#include "common/logging.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace sbft::splitbft {

namespace {
const Logger& logger() {
  static const Logger log{"splitbft/prep"};
  return log;
}
}  // namespace

PrepCompartment::PrepCompartment(pbft::Config config, ReplicaId self,
                                 std::shared_ptr<const crypto::Signer> signer,
                                 std::shared_ptr<const crypto::Verifier> verifier,
                                 pbft::ClientDirectory clients,
                                 Bytes attestation_context)
    : config_(config),
      self_(self),
      signer_(std::move(signer)),
      auth_(std::move(verifier)),
      clients_(clients),
      attestation_context_(std::move(attestation_context)),
      checkpoints_(config, self) {}

bool PrepCompartment::in_window(SeqNum seq) const noexcept {
  return seq > checkpoints_.last_stable() &&
         seq <= checkpoints_.last_stable() + config_.watermark_window;
}

bool PrepCompartment::pipeline_open() const noexcept {
  return next_seq_ + 1 <=
         checkpoints_.last_stable() + config_.pipeline_window();
}

std::vector<net::Envelope> PrepCompartment::deliver(const net::Envelope& env) {
  Out out;
  if (env.type == tag(LocalMsg::Batch)) {
    on_local_batch(env, out);
  } else {
    switch (static_cast<pbft::MsgType>(env.type)) {
      case pbft::MsgType::PrePrepare:
        on_pre_prepare(env, out);
        break;
      case pbft::MsgType::ViewChange:
        on_view_change(env, out);
        break;
      case pbft::MsgType::NewView:
        on_new_view(env, out);
        break;
      case pbft::MsgType::Checkpoint:
        on_checkpoint(env, out);
        break;
      case pbft::MsgType::AttestRequest:
        on_attest_request(env, out);
        break;
      default:
        break;
    }
  }
  return out;
}

// -------------------------------------------------------------- handler (1)

void PrepCompartment::on_local_batch(const net::Envelope& env, Out& out) {
  if (!is_primary()) return;  // broker misrouted; liveness-only event
  auto batch = pbft::RequestBatch::deserialize(env.payload);
  if (!batch || batch->empty()) return;

  // Authenticate every client request before ordering (paper §4 step 2).
  for (const auto& req : batch->requests) {
    const crypto::Key32 key = clients_.auth_key(req.client);
    if (!crypto::hmac_verify(ByteView{key.data(), key.size()},
                             req.auth_input(), req.auth)) {
      return;  // reject the whole (untrusted broker-built) batch
    }
  }
  if (!pipeline_open()) {
    // Pipeline at depth (or watermark window full): hold the authenticated
    // batch until a checkpoint certificate frees a slot, instead of
    // dropping it and waiting for the broker's suspicion timer to fire.
    constexpr std::size_t kMaxDeferred = 128;
    if (deferred_.size() < kMaxDeferred) {
      deferred_.push_back(batch->serialize());
    }
    return;
  }
  propose_batch(batch->serialize(), out);
}

void PrepCompartment::propose_batch(Bytes batch_bytes, Out& out) {
  SplitPrePrepare pp;
  pp.view = view_;
  pp.seq = ++next_seq_;
  pp.batch = std::move(batch_bytes);
  pp.batch_digest = crypto::sha256(pp.batch);
  pp.sender = self_;
  pp.has_batch = true;
  log_[pp.seq] = pp;

  // Full copy to every backup Preparation enclave (their broker duplicates
  // to Confirmation/Execution); own Confirmation gets the stripped header,
  // own Execution the full body. The signature covers only the header, so
  // it is produced ONCE and shared by every copy — including the stripped
  // one — and all full copies share one payload frame.
  net::Envelope full = make_pre_prepare_envelope(
      pp, *signer_, principal::enclave({self_, Compartment::Execution}));
  for (ReplicaId r = 0; r < config_.n; ++r) {
    if (r == self_) continue;
    net::Envelope copy = full;
    copy.dst = principal::enclave({r, Compartment::Preparation});
    out.push_back(std::move(copy));
  }
  net::Envelope stripped = full;  // header signature still valid
  stripped.payload = SharedBytes(pp.stripped().serialize());
  stripped.dst = principal::enclave({self_, Compartment::Confirmation});
  out.push_back(std::move(stripped));
  out.push_back(std::move(full));
}

// -------------------------------------------------------------- handler (2)

void PrepCompartment::on_pre_prepare(const net::Envelope& env, Out& out) {
  auto pp = SplitPrePrepare::deserialize(env.payload);
  if (!pp || !pp->has_batch) return;
  if (pp->view != view_ || pp->sender != config_.primary(view_) ||
      pp->sender == self_ || !in_window(pp->seq)) {
    return;
  }
  const principal::Id signer_id =
      principal::enclave({pp->sender, Compartment::Preparation});
  if (!verify_pre_prepare_envelope(env, *pp, auth_, signer_id)) return;
  if (crypto::sha256(pp->batch) != pp->batch_digest) return;

  auto batch = pbft::RequestBatch::deserialize(pp->batch);
  if (!batch) return;
  for (const auto& req : batch->requests) {
    const crypto::Key32 key = clients_.auth_key(req.client);
    if (!crypto::hmac_verify(ByteView{key.data(), key.size()},
                             req.auth_input(), req.auth)) {
      return;  // primary smuggled an unauthenticated request
    }
  }

  const auto existing = log_.find(pp->seq);
  if (existing != log_.end()) {
    // Conflicting assignment from a byzantine primary: keep the first.
    if (existing->second.batch_digest != pp->batch_digest) return;
    return;  // duplicate
  }
  log_[pp->seq] = *pp;
  emit_prepare(*pp, out);
}

void PrepCompartment::emit_prepare(const SplitPrePrepare& pp, Out& out) {
  pbft::Prepare prep;
  prep.view = pp.view;
  prep.seq = pp.seq;
  prep.batch_digest = pp.batch_digest;
  prep.sender = self_;
  // Serialize and sign once; every Confirmation enclave's copy shares the
  // same payload/signature frames.
  const net::Envelope proto = make_signed_proto(
      *signer_, pbft::tag(pbft::MsgType::Prepare),
      SharedBytes(prep.serialize()));
  for (ReplicaId r = 0; r < config_.n; ++r) {
    net::Envelope env = proto;
    env.dst = principal::enclave({r, Compartment::Confirmation});
    out.push_back(std::move(env));
  }
}

// -------------------------------------------------------------- handler (9)

void PrepCompartment::on_checkpoint(const net::Envelope& env, Out& out) {
  if (auto stable = checkpoints_.add(env, auth_)) {
    garbage_collect(stable->seq);
    release_deferred(out);
  }
}

void PrepCompartment::garbage_collect(SeqNum stable) {
  log_.erase(log_.begin(), log_.upper_bound(stable));
  if (next_seq_ < stable) next_seq_ = stable;
}

void PrepCompartment::release_deferred(Out& out) {
  // A checkpoint certificate advanced the stable point: propose deferred
  // batches into the freed pipeline slots (primary only; backups never
  // defer). Never called mid-view-transition — a deferred batch must not
  // be proposed under a view the enclave is about to leave.
  while (is_primary() && !deferred_.empty() && pipeline_open()) {
    Bytes batch_bytes = std::move(deferred_.front());
    deferred_.pop_front();
    propose_batch(std::move(batch_bytes), out);
  }
}

// ---------------------------------------------------------- view change (6)

bool PrepCompartment::validate_prepared_proof(const pbft::PreparedProof& proof,
                                              SeqNum& seq, View& view,
                                              Digest& digest) const {
  auto pp = SplitPrePrepare::deserialize(proof.pre_prepare.payload);
  if (!pp || pp->sender != config_.primary(pp->view) ||
      pp->sender >= config_.n) {
    return false;
  }
  const principal::Id pp_signer =
      principal::enclave({pp->sender, Compartment::Preparation});
  if (!verify_pre_prepare_envelope(proof.pre_prepare, *pp, auth_,
                                   pp_signer)) {
    return false;
  }
  std::map<ReplicaId, bool> distinct;
  for (const auto& pe : proof.prepares) {
    auto prep = pbft::Prepare::deserialize(pe.payload);
    if (!prep || prep->view != pp->view || prep->seq != pp->seq ||
        prep->batch_digest != pp->batch_digest ||
        prep->sender == pp->sender || prep->sender >= config_.n) {
      continue;
    }
    const principal::Id p_signer =
        principal::enclave({prep->sender, Compartment::Preparation});
    if (!auth_.check(pe, p_signer)) continue;
    distinct[prep->sender] = true;
  }
  if (distinct.size() < config_.prepared_quorum()) return false;
  seq = pp->seq;
  view = pp->view;
  digest = pp->batch_digest;
  return true;
}

bool PrepCompartment::validate_view_change(const net::Envelope& env,
                                           pbft::ViewChange& out_vc) const {
  auto vc = pbft::ViewChange::deserialize(env.payload);
  if (!vc || vc->sender >= config_.n) return false;
  const principal::Id vc_signer =
      principal::enclave({vc->sender, Compartment::Confirmation});
  if (!auth_.check(env, vc_signer)) return false;
  if (vc->last_stable > 0 &&
      !verify_checkpoint_proof(vc->checkpoint_proof, vc->last_stable,
                               std::nullopt, config_, auth_)) {
    return false;
  }
  for (const auto& proof : vc->prepared) {
    SeqNum seq{};
    View view{};
    Digest digest;
    if (!validate_prepared_proof(proof, seq, view, digest)) return false;
    if (seq <= vc->last_stable ||
        seq > vc->last_stable + config_.watermark_window) {
      return false;
    }
  }
  out_vc = std::move(*vc);
  return true;
}

void PrepCompartment::on_view_change(const net::Envelope& env, Out& out) {
  pbft::ViewChange vc;
  if (!validate_view_change(env, vc)) return;
  if (vc.new_view <= view_) return;
  view_changes_[vc.new_view][vc.sender] = env;
  maybe_send_new_view(vc.new_view, out);
}

std::optional<PrepCompartment::Plan> PrepCompartment::compute_plan(
    const std::vector<net::Envelope>& vc_envs) const {
  Plan plan;
  struct Best {
    View view;
    Digest digest;
  };
  std::map<SeqNum, Best> best;
  for (const auto& env : vc_envs) {
    auto vc = pbft::ViewChange::deserialize(env.payload);
    if (!vc) return std::nullopt;
    plan.min_s = std::max(plan.min_s, vc->last_stable);
    for (const auto& proof : vc->prepared) {
      auto pp = SplitPrePrepare::deserialize(proof.pre_prepare.payload);
      if (!pp) return std::nullopt;
      plan.max_s = std::max(plan.max_s, pp->seq);
      const auto it = best.find(pp->seq);
      if (it == best.end() || pp->view > it->second.view) {
        best[pp->seq] = Best{pp->view, pp->batch_digest};
      }
    }
  }
  if (plan.max_s < plan.min_s) plan.max_s = plan.min_s;
  const Digest null_digest = pbft::RequestBatch{}.digest();
  for (SeqNum seq = plan.min_s + 1; seq <= plan.max_s; ++seq) {
    const auto it = best.find(seq);
    plan.proposals[seq] = it != best.end() ? it->second.digest : null_digest;
  }
  return plan;
}

void PrepCompartment::maybe_send_new_view(View target, Out& out) {
  if (config_.primary(target) != self_ || new_view_sent_.contains(target)) {
    return;
  }
  const auto it = view_changes_.find(target);
  if (it == view_changes_.end() || it->second.size() < config_.quorum()) {
    return;
  }
  std::vector<net::Envelope> vc_envs;
  for (const auto& [sender, env] : it->second) {
    vc_envs.push_back(env);
    if (vc_envs.size() >= config_.quorum()) break;
  }
  auto plan = compute_plan(vc_envs);
  if (!plan) return;
  new_view_sent_.insert(target);

  pbft::NewView nv;
  nv.new_view = target;
  nv.view_changes = vc_envs;
  for (const auto& [seq, digest] : plan->proposals) {
    SplitPrePrepare pp;
    pp.view = target;
    pp.seq = seq;
    pp.batch_digest = digest;
    pp.sender = self_;
    // Re-attach the batch body if our own log has it (so Execution enclaves
    // that missed the original full PrePrepare can still execute).
    for (const auto& [logged_seq, logged_pp] : log_) {
      if (logged_seq == seq && logged_pp.batch_digest == digest &&
          logged_pp.has_batch) {
        pp.batch = logged_pp.batch;
        pp.has_batch = true;
        break;
      }
    }
    nv.pre_prepares.push_back(make_pre_prepare_envelope(pp, *signer_, 0));
  }
  nv.sender = self_;

  // One serialization + one signature; all copies share the frames.
  const net::Envelope proto = make_signed_proto(
      *signer_, pbft::tag(pbft::MsgType::NewView), SharedBytes(nv.serialize()));
  for (ReplicaId r = 0; r < config_.n; ++r) {
    if (r == self_) continue;
    net::Envelope env = proto;
    env.dst = principal::enclave({r, Compartment::Preparation});
    out.push_back(std::move(env));
  }
  // Own Confirmation and Execution get the NewView directly.
  for (const Compartment c :
       {Compartment::Confirmation, Compartment::Execution}) {
    net::Envelope env = proto;
    env.dst = principal::enclave({self_, c});
    out.push_back(std::move(env));
  }
  logger().info() << "prep@r" << self_ << " sends NewView " << target;
  enter_view(target, nv.pre_prepares, out);
}

// -------------------------------------------------------- handler (7), (7')

void PrepCompartment::on_new_view(const net::Envelope& env, Out& out) {
  auto nv = pbft::NewView::deserialize(env.payload);
  if (!nv) return;
  if (nv->new_view <= view_ || nv->sender != config_.primary(nv->new_view)) {
    return;
  }
  const principal::Id nv_signer =
      principal::enclave({nv->sender, Compartment::Preparation});
  if (!auth_.check(env, nv_signer)) return;

  std::map<ReplicaId, bool> distinct;
  for (const auto& vce : nv->view_changes) {
    pbft::ViewChange vc;
    if (!validate_view_change(vce, vc)) return;
    if (vc.new_view != nv->new_view) return;
    distinct[vc.sender] = true;
  }
  if (distinct.size() < config_.quorum()) return;

  auto plan = compute_plan(nv->view_changes);
  if (!plan) return;
  if (nv->pre_prepares.size() != plan->proposals.size()) return;
  for (const auto& ppe : nv->pre_prepares) {
    auto pp = SplitPrePrepare::deserialize(ppe.payload);
    if (!pp || pp->view != nv->new_view || pp->sender != nv->sender) return;
    if (!verify_pre_prepare_envelope(ppe, *pp, auth_, nv_signer)) return;
    const auto it = plan->proposals.find(pp->seq);
    if (it == plan->proposals.end() || it->second != pp->batch_digest) return;
    if (pp->has_batch && crypto::sha256(pp->batch) != pp->batch_digest) {
      return;
    }
  }

  // Checkpoint part (handler 7'): adopt the proven stable checkpoint.
  if (plan->min_s > checkpoints_.last_stable()) {
    for (const auto& vce : nv->view_changes) {
      auto vc = pbft::ViewChange::deserialize(vce.payload);
      if (!vc || vc->last_stable != plan->min_s) continue;
      // validate_view_change already proved this certificate; re-wrapping
      // it is all cache hits.
      if (auto proof =
              verify_checkpoint_proof(vc->checkpoint_proof, plan->min_s,
                                      std::nullopt, config_, auth_)) {
        checkpoints_.adopt(plan->min_s, std::move(*proof));
        garbage_collect(plan->min_s);
      }
      break;
    }
  }
  enter_view(nv->new_view, nv->pre_prepares, out);
}

void PrepCompartment::enter_view(
    View v, const std::vector<net::Envelope>& o_pre_prepares, Out& out) {
  view_ = v;
  log_.clear();
  // Deferred batches die with the old view: the broker re-proposes every
  // still-outstanding request to the new primary right after the NewView,
  // so releasing them here would only double-propose.
  deferred_.clear();
  view_changes_.erase(view_changes_.begin(), view_changes_.upper_bound(v));
  new_view_sent_.erase(new_view_sent_.begin(), new_view_sent_.upper_bound(v));

  SeqNum max_seq = checkpoints_.last_stable();
  for (const auto& ppe : o_pre_prepares) {
    auto pp = SplitPrePrepare::deserialize(ppe.payload);
    if (!pp) continue;
    max_seq = std::max(max_seq, pp->seq);
    if (pp->seq <= checkpoints_.last_stable()) continue;
    log_[pp->seq] = *pp;
    if (!is_primary()) emit_prepare(*pp, out);
  }
  next_seq_ = max_seq;
  logger().info() << "prep@r" << self_ << " entered view " << v;
}

// -------------------------------------------------------------- attestation

void PrepCompartment::on_attest_request(const net::Envelope& env, Out& out) {
  auto req = AttestRequest::deserialize(env.payload);
  if (!req || !quote_fn_) return;

  ReportData rd;
  rd.signing_principal = signer_->id();
  rd.dh_public = {};  // Preparation holds no DH key
  rd.nonce = req->nonce;

  AttestReport report;
  report.replica = self_;
  report.compartment = Compartment::Preparation;
  report.quote = quote_fn_(rd.serialize());

  net::Envelope reply;
  reply.src = signer_->id();
  reply.dst = principal::client(req->client);
  reply.type = pbft::tag(pbft::MsgType::AttestReport);
  reply.payload = report.serialize();
  out.push_back(std::move(reply));
}

}  // namespace sbft::splitbft
