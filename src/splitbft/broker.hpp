// The untrusted broker (paper §5 "Untrusted broker").
//
// Lives in the environment of a replica and performs ALL I/O for the three
// enclaves: receives network traffic and routes/duplicates it to the right
// compartments (ecalls), ships enclave outputs to the network, batches
// client requests, and runs the liveness timers (request suspicion → the
// Confirmation enclave's view-change trigger). Compromising the broker can
// cost liveness but never safety or confidentiality — the byzantine-
// environment tests in tests/splitbft exercise exactly that.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>

#include "net/auth.hpp"
#include "pbft/config.hpp"
#include "pbft/messages.hpp"
#include "runtime/actor.hpp"
#include "runtime/runner/tuning.hpp"
#include "splitbft/messages.hpp"
#include "tee/enclave_host.hpp"

namespace sbft::splitbft {

class Broker final : public runtime::Actor {
 public:
  Broker(pbft::Config config, ReplicaId self,
         std::unique_ptr<tee::EnclaveHost> prep,
         std::unique_ptr<tee::EnclaveHost> conf,
         std::unique_ptr<tee::EnclaveHost> exec);

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override;
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override;

  [[nodiscard]] ReplicaId id() const noexcept { return self_; }
  [[nodiscard]] tee::EnclaveHost& host(Compartment c) noexcept;
  [[nodiscard]] const tee::EnclaveHost& host(Compartment c) const noexcept;

  /// Enables broker-side pre-verification of inbound wire messages:
  /// envelopes whose signature fails under the expected enclave principal
  /// are dropped before paying an ecall. Liveness-only filtering on public
  /// material — the enclaves keep their own in-enclave caches and remain
  /// authoritative (an untrusted broker's cache must never be trusted).
  void enable_ingress_filter(
      std::shared_ptr<const crypto::Verifier> verifier);
  /// Filter cache, if enabled (counters for tests/benchmarks).
  [[nodiscard]] const net::VerifyCache* ingress_cache() const noexcept {
    return ingress_.get();
  }
  /// Fresh requests shed by admission control
  /// (Config::admission_queue_cap over the outstanding-request backlog).
  [[nodiscard]] std::uint64_t admission_rejects() const noexcept {
    return admission_rejects_;
  }
  [[nodiscard]] const runtime::runner::AutoTuner* tuner() const noexcept {
    return tuner_.get();
  }
  /// Live view of the (possibly auto-tuned) batching knobs.
  [[nodiscard]] const pbft::Config& config() const noexcept {
    return config_;
  }
  /// Queued liveness state (GC/overload bounds tests): requests waiting in
  /// the batch buffer and reads waiting for coalescing.
  [[nodiscard]] std::size_t pending_batch_size() const noexcept {
    return pending_batch_.size();
  }
  [[nodiscard]] std::size_t pending_read_count() const noexcept {
    return pending_reads_.size();
  }
  [[nodiscard]] std::size_t outstanding_count() const noexcept {
    return outstanding_.size();
  }

 private:
  using Out = std::vector<net::Envelope>;

  /// Ecalls into one compartment and queues/dispatches its outputs.
  void deliver_to(Compartment c, const net::Envelope& env, Out& out);
  /// Routes one envelope (network-arrived or enclave-emitted).
  void route(net::Envelope env, Out& out, Micros now);
  void on_client_request(const net::Envelope& env, Micros now, Out& out);
  void cut_batch(Micros now, Out& out);
  void on_read_request(const net::Envelope& env, Micros now, Out& out);
  /// Ships queued fast-path reads to the Execution enclave, coalesced up
  /// to Config::read_batch_max per ecall.
  void cut_read_batch(Micros now, Out& out);
  [[nodiscard]] bool is_local(principal::Id id,
                              Compartment& out_compartment) const noexcept;
  /// False iff the ingress filter is on and the envelope carries a
  /// signature that provably fails under the signer the protocol expects.
  [[nodiscard]] bool passes_ingress_filter(const net::Envelope& env);

  pbft::Config config_;
  ReplicaId self_;
  std::unique_ptr<tee::EnclaveHost> prep_;
  std::unique_ptr<tee::EnclaveHost> conf_;
  std::unique_ptr<tee::EnclaveHost> exec_;
  std::unique_ptr<net::VerifyCache> ingress_;  // null = filter disabled
  // Self-tuning of the broker-owned batching knobs (batch_max /
  // read_batch_max; pipeline_depth lives in the Preparation enclave and is
  // untouched here). Untrusted liveness machinery, like everything else in
  // the broker — the enclaves re-validate all of it.
  std::unique_ptr<runtime::runner::AutoTuner> tuner_;
  std::uint64_t admission_rejects_{0};
  void observe_tuner(Micros now);

  // --- untrusted liveness state ---
  struct Outstanding {
    pbft::Request request;
    Micros deadline{0};
    std::uint32_t backoff{1};  // doubles per expiry (PBFT-style timeouts)
  };

  std::map<std::pair<ClientId, Timestamp>, pbft::Request> pending_batch_;
  Micros batch_deadline_{0};
  // Fast-path reads waiting for coalesced delivery to Execution. Pure
  // liveness state: the enclave re-authenticates every read.
  std::deque<pbft::Request> pending_reads_;
  Micros read_batch_deadline_{0};
  // Suspicion timers + request copies for post-view-change re-proposal.
  std::map<std::pair<ClientId, Timestamp>, Outstanding> outstanding_;
  std::deque<net::Envelope> local_queue_;
  // Set when the local Preparation enclave emits a NewView (it is the new
  // primary): outstanding requests are re-proposed right after.
  bool new_view_emitted_{false};

  void requeue_outstanding(Micros now, Out& out);
};

}  // namespace sbft::splitbft
