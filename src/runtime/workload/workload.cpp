#include "runtime/workload/workload.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "apps/kv_store.hpp"

namespace sbft::runtime::workload {

const char* to_string(Stack s) noexcept {
  switch (s) {
    case Stack::Pbft:
      return "pbft";
    case Stack::Splitbft:
      return "splitbft";
  }
  return "?";
}

const char* to_string(LoadMode m) noexcept {
  switch (m) {
    case LoadMode::Closed:
      return "closed";
    case LoadMode::Open:
      return "open";
  }
  return "?";
}

// ----------------------------------------------------------------- zipf

namespace {

[[nodiscard]] double zeta(std::uint64_t n, double theta) {
  // Exact up to a cap, then the Euler-Maclaurin tail approximation — the
  // constant matters much less than the shape, and key spaces can be huge.
  constexpr std::uint64_t kExact = 100'000;
  double sum = 0;
  const std::uint64_t exact = std::min(n, kExact);
  for (std::uint64_t i = 1; i <= exact; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  if (n > exact) {
    const double a = static_cast<double>(exact);
    const double b = static_cast<double>(n);
    sum += (std::pow(b, 1 - theta) - std::pow(a, 1 - theta)) / (1 - theta);
  }
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(std::max<std::uint64_t>(n, 1)), theta_(theta) {
  if (theta_ <= 0) return;  // uniform
  zetan_ = zeta(n_, theta_);
  const double zeta2 = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t ZipfGenerator::next(Rng& rng) {
  if (theta_ <= 0) return rng.below(n_);
  const double u = rng.unit();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(rank, n_ - 1);
}

// ------------------------------------------------------------ op stream

std::vector<Bytes> group_keys(const Options& options, std::uint64_t group) {
  std::vector<Bytes> keys;
  keys.reserve(options.multi_keys);
  const std::uint64_t base =
      options.key_space + group * options.multi_keys;
  for (std::uint32_t j = 0; j < options.multi_keys; ++j) {
    keys.push_back(apps::kv::encode_key(base + j));
  }
  return keys;
}

OpGenerator::OpGenerator(const Options& options, std::uint64_t client_seed)
    : zipf_(options.key_space, options.key_skew),
      get_fraction_(options.get_fraction),
      cas_fraction_(options.cas_fraction),
      del_fraction_(options.del_fraction),
      value_min_(options.value_min_bytes),
      value_max_(std::max(options.value_max_bytes, options.value_min_bytes)),
      multi_fraction_(options.multi_keys >= 2 ? options.cross_shard_fraction
                                              : 0.0),
      multi_keys_(options.multi_keys),
      multi_groups_(std::max<std::uint64_t>(options.multi_groups, 1)),
      group_base_(options.key_space),
      rng_(client_seed) {}

Bytes OpGenerator::next_value() {
  const std::size_t len =
      value_min_ +
      (value_max_ > value_min_
           ? rng_.below(value_max_ - value_min_ + 1)
           : 0);
  return rng_.bytes(len);
}

GeneratedOp OpGenerator::next_multi() {
  // Whole-group write with ONE (random, effectively unique) value: at
  // quiescence every key of a group must hold the same bytes, whichever
  // transaction won — the torn-write detector benches rely on.
  const std::uint64_t group = rng_.below(multi_groups_);
  const Bytes value = next_value();
  apps::kv::MultiOp multi;
  const std::uint64_t base = group_base_ + group * multi_keys_;
  for (std::uint32_t j = 0; j < multi_keys_; ++j) {
    multi.subs.push_back(apps::kv::SubOp{apps::KvOp::Put,
                                         apps::kv::encode_key(base + j),
                                         {},
                                         value});
  }
  return {apps::kv::encode_multi(multi), /*read_only=*/false};
}

GeneratedOp OpGenerator::next() {
  if (multi_fraction_ > 0 && rng_.chance(multi_fraction_)) {
    return next_multi();
  }
  const Bytes key = apps::kv::encode_key(zipf_.next(rng_));
  if (rng_.chance(get_fraction_)) {
    return {apps::kv::encode_get(key), /*read_only=*/true};
  }
  const double w = rng_.unit();
  if (w < cas_fraction_) {
    return {apps::kv::encode_cas(key, next_value(), next_value()),
            /*read_only=*/false};
  }
  if (w < cas_fraction_ + del_fraction_) {
    return {apps::kv::encode_del(key), /*read_only=*/false};
  }
  return {apps::kv::encode_put(key, next_value()), /*read_only=*/false};
}

crypto::Key32 session_key(std::uint64_t seed, ClientId client) {
  Bytes context(4);
  for (int i = 0; i < 4; ++i) {
    context[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(client >> (8 * i));
  }
  Bytes master(8);
  for (int i = 0; i < 8; ++i) {
    master[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(seed >> (8 * i));
  }
  return crypto::derive_key(master, "workload-session", context);
}

Micros exponential_us(Rng& rng, Micros mean_us) {
  if (mean_us == 0) return 0;
  // Inverse CDF; clamp the argument away from 0 so log() stays finite.
  const double u = std::max(rng.unit(), 1e-12);
  const double d = -std::log(u) * static_cast<double>(mean_us);
  return static_cast<Micros>(d);
}

// ---------------------------------------------------------------- report

void summarize_into(const LatencyHistogram& hist, Micros measure_us,
                    Report& report) {
  report.completed_ops = hist.count();
  report.ops_per_sec =
      measure_us ? static_cast<double>(report.completed_ops) /
                       (static_cast<double>(measure_us) / 1e6)
                 : 0;
  report.mean_latency_ms = hist.mean_us() / 1000.0;
  report.p50_us = hist.quantile(0.50);
  report.p95_us = hist.quantile(0.95);
  report.p99_us = hist.quantile(0.99);
  report.max_us = hist.max_us();
  report.histogram = hist.buckets();
}

std::string report_json(const Options& options, const Report& report) {
  std::ostringstream os;
  os << "{"
     << "\"stack\": \"" << to_string(options.stack) << "\", "
     << "\"mode\": \"" << to_string(options.mode) << "\", "
     << "\"clients\": " << options.clients << ", "
     << "\"pipeline_depth\": " << options.protocol.pipeline_depth << ", "
     << "\"batch_max\": " << options.protocol.batch_max << ", "
     << "\"key_space\": " << options.key_space << ", "
     << "\"key_skew\": " << options.key_skew << ", "
     << "\"get_fraction\": " << options.get_fraction << ", "
     << "\"cas_fraction\": " << options.cas_fraction << ", "
     << "\"del_fraction\": " << options.del_fraction << ", "
     << "\"shards\": " << options.shards << ", "
     << "\"cross_shard_fraction\": " << options.cross_shard_fraction << ", "
     << "\"multi_keys\": " << options.multi_keys << ", "
     << "\"read_path\": " << (options.protocol.read_path ? "true" : "false")
     << ", "
     << "\"workers\": " << options.workers << ", "
     << "\"auto_tune\": " << (options.protocol.auto_tune ? "true" : "false")
     << ", "
     << "\"admission_queue_cap\": " << options.protocol.admission_queue_cap
     << ", "
     << "\"measure_us\": " << options.measure_us << ", "
     << "\"completed_ops\": " << report.completed_ops << ", "
     << "\"fast_reads\": " << report.fast_reads << ", "
     << "\"read_fallbacks\": " << report.read_fallbacks << ", "
     << "\"admission_rejects\": " << report.admission_rejects << ", "
     << "\"ops_per_sec\": " << report.ops_per_sec << ", "
     << "\"mean_latency_ms\": " << report.mean_latency_ms << ", "
     << "\"p50_us\": " << report.p50_us << ", "
     << "\"p95_us\": " << report.p95_us << ", "
     << "\"p99_us\": " << report.p99_us << ", "
     << "\"max_us\": " << report.max_us << ", "
     << "\"sustained\": " << (report.sustained ? "true" : "false") << ", "
     << "\"sharding\": {"
     << "\"multi_ops\": " << report.sharding.multi_ops << ", "
     << "\"single_shard_multi\": " << report.sharding.single_shard_multi
     << ", "
     << "\"cross_shard_tx\": " << report.sharding.cross_shard_tx << ", "
     << "\"tx_commits\": " << report.sharding.tx_commits << ", "
     << "\"tx_aborts\": " << report.sharding.tx_aborts << ", "
     << "\"busy_retries\": " << report.sharding.busy_retries << ", "
     << "\"groups_checked\": " << report.sharding.groups_checked << ", "
     << "\"torn_groups\": " << report.sharding.torn_groups
     << "}, "
     << "\"transport\": {"
     << "\"bytes_in\": " << report.transport.bytes_in << ", "
     << "\"bytes_out\": " << report.transport.bytes_out << ", "
     << "\"frames_in\": " << report.transport.frames_in << ", "
     << "\"frames_out\": " << report.transport.frames_out << ", "
     << "\"writev_calls\": " << report.transport.writev_calls << ", "
     << "\"frames_per_writev\": " << report.transport.frames_per_writev << ", "
     << "\"reconnects\": " << report.transport.reconnects << ", "
     << "\"backpressure_drops\": " << report.transport.backpressure_drops
     << ", "
     << "\"state_frames_in\": " << report.transport.state_frames_in << ", "
     << "\"state_frames_out\": " << report.transport.state_frames_out << ", "
     << "\"state_bytes_in\": " << report.transport.state_bytes_in << ", "
     << "\"state_bytes_out\": " << report.transport.state_bytes_out
     << "}, "
     << "\"histogram\": [";
  for (std::size_t i = 0; i < report.histogram.size(); ++i) {
    const auto& b = report.histogram[i];
    if (i) os << ", ";
    os << "[" << b.lower_us << ", " << b.upper_us << ", " << b.count << "]";
  }
  os << "]}";
  return os.str();
}

}  // namespace sbft::runtime::workload
