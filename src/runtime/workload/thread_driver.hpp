// Workload engine, threaded-runtime driver.
//
// The same load shapes as the simulator driver, but over the REAL
// ThreadNetwork in wall-clock time: every replica runs behind its own
// consumer thread, clients are multiplexed onto a small set of station
// endpoints (register_endpoint_group — one queue + consumer per station,
// not one thread per client), and a ticker thread drives protocol and
// client timers. This is the configuration that actually contends on the
// pipelined-batching paths, the sharded client directory and the
// ThreadNetwork drain/shutdown handshake.
#pragma once

#include "runtime/workload/workload.hpp"

namespace sbft::runtime::workload {

/// Runs one load point in wall-clock time. `Options::warmup_us` and
/// `measure_us` are real durations — keep them short (hundreds of ms);
/// wall-clock numbers are trajectory-only, never hard-asserted.
[[nodiscard]] Report run_thread_workload(const Options& options);

}  // namespace sbft::runtime::workload
