#include "runtime/workload/sim_driver.hpp"

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "apps/kv_store.hpp"
#include "runtime/perf_model.hpp"

namespace sbft::runtime::workload {
namespace {

/// Per-client load actor shared by both stacks: submission pacing (closed
/// loop with think time, open loop with Poisson arrivals and an arrival
/// queue), latency measurement from the correct origin (submission vs
/// arrival), and the client's private operation stream.
template <typename Engine>
class LoadClient final : public Actor,
                         public std::enable_shared_from_this<LoadClient<Engine>> {
 public:
  LoadClient(SimHarness& harness, Engine engine, const Options& options,
             std::uint64_t client_seed, LatencyHistogram& hist)
      : harness_(harness),
        engine_(std::move(engine)),
        gen_(options, client_seed),
        rng_(client_seed ^ 0x10adc11e47ULL),
        mode_(options.mode),
        think_us_(options.think_time_us),
        interarrival_us_(options.interarrival_us),
        hist_(hist) {}

  void start(Micros now) {
    if (mode_ == LoadMode::Open) {
      schedule_arrival();
    } else {
      submit(gen_.next(), now, now);
    }
  }

  void set_measuring(bool on) noexcept { measuring_ = on; }
  [[nodiscard]] const Engine& engine() const noexcept { return engine_; }

  [[nodiscard]] std::vector<net::Envelope> handle(const net::Envelope& env,
                                                  Micros now) override {
    if (env.type == pbft::tag(pbft::MsgType::Reply) ||
        env.type == pbft::tag(pbft::MsgType::ReadReply)) {
      // `out` carries the ordered re-broadcast when a fast read falls back.
      std::vector<net::Envelope> out;
      if (engine_.on_reply(env, now, out)) completed(now);
      return out;
    }
    if constexpr (requires(Engine& e, const net::Envelope& v, Micros t) {
                    e.on_message(v, t);
                  }) {
      return engine_.on_message(env, now);
    } else {
      return {};
    }
  }
  [[nodiscard]] std::vector<net::Envelope> tick(Micros now) override {
    return engine_.tick(now);
  }

 private:
  static constexpr std::size_t kMaxQueued = 256;

  void submit(GeneratedOp op, Micros measured_from, Micros now) {
    inflight_measured_from_ = measured_from;
    harness_.inject(engine_.submit(std::move(op.op), now, op.read_only));
  }

  void completed(Micros now) {
    if (measuring_) hist_.record(now - inflight_measured_from_);
    if (mode_ == LoadMode::Open) {
      if (!queued_.empty()) {
        auto [arrived, op] = std::move(queued_.front());
        queued_.pop_front();
        // Open loop measures from ARRIVAL: queueing delay stays visible.
        submit(std::move(op), arrived, now);
      }
      return;
    }
    const Micros think = exponential_us(rng_, think_us_);
    if (think == 0) {
      submit(gen_.next(), now, now);
      return;
    }
    auto self = this->shared_from_this();
    harness_.scheduler().after(think, [self] {
      const Micros t = self->harness_.scheduler().now();
      self->submit(self->gen_.next(), t, t);
    });
  }

  void schedule_arrival() {
    const Micros gap =
        std::max<Micros>(1, exponential_us(rng_, interarrival_us_));
    auto self = this->shared_from_this();
    harness_.scheduler().after(gap, [self] {
      const Micros t = self->harness_.scheduler().now();
      self->on_arrival(t);
      self->schedule_arrival();
    });
  }

  void on_arrival(Micros now) {
    if (!engine_.in_flight()) {
      submit(gen_.next(), now, now);
    } else if (queued_.size() < kMaxQueued) {
      queued_.emplace_back(now, gen_.next());
    }
    // else: shed load — a real open-loop generator applies back-pressure
    // somewhere; an unbounded queue would only measure its own memory.
  }

  SimHarness& harness_;
  Engine engine_;
  OpGenerator gen_;
  Rng rng_;
  LoadMode mode_;
  Micros think_us_;
  Micros interarrival_us_;
  LatencyHistogram& hist_;
  bool measuring_{false};
  Micros inflight_measured_from_{0};
  std::deque<std::pair<Micros, GeneratedOp>> queued_;
};

/// Runs warmup + a quartered measurement window; `sustained` requires
/// completions in every quarter (a stalled pipeline or view-change livelock
/// shows up as an empty quarter even when the totals look plausible).
template <typename Client>
Report measure(SimHarness& harness, const Options& options,
               std::vector<std::shared_ptr<Client>>& clients,
               LatencyHistogram& hist) {
  for (std::size_t i = 0; i < clients.size(); ++i) {
    auto client = clients[i];
    harness.scheduler().at(harness.now() + static_cast<Micros>(i * 13 + 1),
                           [client, &harness] { client->start(harness.now()); });
  }
  harness.run_for(options.warmup_us);
  for (auto& client : clients) client->set_measuring(true);
  bool sustained = true;
  std::uint64_t prev = hist.count();
  for (int quarter = 0; quarter < 4; ++quarter) {
    harness.run_for(options.measure_us / 4);
    const std::uint64_t now_count = hist.count();
    if (now_count == prev) sustained = false;
    prev = now_count;
  }
  for (auto& client : clients) client->set_measuring(false);

  Report report;
  summarize_into(hist, options.measure_us, report);
  report.sustained = sustained && report.completed_ops > 0;
  for (const auto& client : clients) {
    report.fast_reads += client->engine().fast_reads();
    report.read_fallbacks += client->engine().read_fallbacks();
  }
  return report;
}

[[nodiscard]] Report run_pbft(const Options& options) {
  PbftClusterOptions copts;
  copts.config = options.protocol;
  copts.seed = options.seed;
  copts.scheme = crypto::Scheme::HmacShared;
  copts.link_params.min_delay_us = 60;
  copts.link_params.max_delay_us = 140;
  PbftCluster cluster(copts,
                      [] { return std::make_unique<apps::KvStore>(); });

  const CostProfile profile{};
  std::vector<std::shared_ptr<PbftPerfActor>> perf;
  for (ReplicaId r = 0; r < copts.config.n; ++r) {
    auto actor = std::make_shared<PbftPerfActor>(
        cluster.harness(), cluster.replica_actor(r), profile,
        std::max<std::size_t>(1, options.workers));
    pbft::Replica* replica = &cluster.replica(r);
    actor->set_auth_stats([replica] { return replica->auth().stats(); });
    cluster.harness().replace_actor(principal::pbft_replica(r), actor);
    perf.push_back(std::move(actor));
  }

  LatencyHistogram hist;
  using Client = LoadClient<pbft::Client>;
  std::vector<std::shared_ptr<Client>> clients;
  clients.reserve(options.clients);
  for (std::uint32_t i = 0; i < options.clients; ++i) {
    const ClientId id = kFirstClientId + i;
    auto client = std::make_shared<Client>(
        cluster.harness(),
        pbft::Client(copts.config, id, cluster.directory(),
                     /*retry=*/4'000'000),
        options, options.seed * 1'000'003 + i, hist);
    cluster.harness().add_actor(principal::client(id), client,
                                /*tick_interval_us=*/500'000);
    clients.push_back(std::move(client));
  }
  Report report = measure(cluster.harness(), options, clients, hist);
  for (ReplicaId r = 0; r < copts.config.n; ++r) {
    report.admission_rejects += cluster.replica(r).admission_rejects();
  }
  return report;
}

[[nodiscard]] Report run_splitbft(const Options& options) {
  SplitClusterOptions copts;
  copts.config = options.protocol;
  copts.seed = options.seed;
  copts.scheme = crypto::Scheme::HmacShared;
  copts.link_params.min_delay_us = 60;
  copts.link_params.max_delay_us = 140;
  SplitbftCluster cluster(
      copts,
      splitbft::plain_app([] { return std::make_unique<apps::KvStore>(); }));

  const CostProfile profile{};
  std::vector<std::shared_ptr<SplitPerfActor>> perf;
  for (ReplicaId r = 0; r < copts.config.n; ++r) {
    auto actor = std::make_shared<SplitPerfActor>(
        cluster.harness(), cluster.replica_actor(r), profile,
        /*single_ecall_thread=*/false, /*exec_workers=*/options.workers);
    splitbft::SplitbftReplica* replica = &cluster.replica(r);
    actor->set_auth_stats(Compartment::Preparation, [replica] {
      return replica->prep().auth().stats();
    });
    actor->set_auth_stats(Compartment::Confirmation, [replica] {
      return replica->conf().auth().stats();
    });
    actor->set_auth_stats(Compartment::Execution, [replica] {
      return replica->exec().auth().stats();
    });
    for (const principal::Id id : cluster.replica_principals(r)) {
      cluster.harness().replace_actor(id, actor);
    }
    perf.push_back(std::move(actor));
  }

  splitbft::SplitClient::TrustAnchors anchors;
  anchors.attestation_root = cluster.attestation().root_public_key();

  LatencyHistogram hist;
  using Client = LoadClient<splitbft::SplitClient>;
  std::vector<std::shared_ptr<Client>> clients;
  clients.reserve(options.clients);
  for (std::uint32_t i = 0; i < options.clients; ++i) {
    const ClientId id = kFirstClientId + i;
    splitbft::SplitClient engine(copts.config, id, cluster.directory(),
                                 anchors, options.seed, /*retry=*/4'000'000);
    // Sessions are provisioned out of band: the paper attests once before
    // the measured run, and per-client attestation for thousands of
    // clients would only measure the attestation service.
    const crypto::Key32 session = session_key(options.seed, id);
    engine.adopt_session(session);
    for (ReplicaId r = 0; r < copts.config.n; ++r) {
      cluster.replica(r).exec_mutable().install_session(id, session);
    }
    auto client = std::make_shared<Client>(cluster.harness(),
                                           std::move(engine), options,
                                           options.seed * 1'000'003 + i, hist);
    cluster.harness().add_actor(principal::client(id), client,
                                /*tick_interval_us=*/500'000);
    clients.push_back(std::move(client));
  }
  Report report = measure(cluster.harness(), options, clients, hist);
  for (ReplicaId r = 0; r < copts.config.n; ++r) {
    report.admission_rejects += cluster.replica(r).broker().admission_rejects();
  }
  return report;
}

}  // namespace

Report run_sim_workload(const Options& options) {
  return options.stack == Stack::Pbft ? run_pbft(options)
                                      : run_splitbft(options);
}

}  // namespace sbft::runtime::workload
