#include "runtime/workload/sharded_driver.hpp"

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "apps/kv_store.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/sharded_cluster.hpp"

namespace sbft::runtime::workload {
namespace {

void wrap_perf(PbftCluster& group, std::size_t workers) {
  const CostProfile profile{};
  for (ReplicaId r = 0; r < group.config().n; ++r) {
    auto actor = std::make_shared<PbftPerfActor>(
        group.harness(), group.replica_actor(r), profile,
        std::max<std::size_t>(1, workers));
    pbft::Replica* replica = &group.replica(r);
    actor->set_auth_stats([replica] { return replica->auth().stats(); });
    group.harness().replace_actor(principal::pbft_replica(r),
                                  std::move(actor));
  }
}

void wrap_perf(SplitbftCluster& group, std::size_t workers) {
  const CostProfile profile{};
  for (ReplicaId r = 0; r < group.config().n; ++r) {
    auto actor = std::make_shared<SplitPerfActor>(
        group.harness(), group.replica_actor(r), profile,
        /*single_ecall_thread=*/false, /*exec_workers=*/workers);
    splitbft::SplitbftReplica* replica = &group.replica(r);
    actor->set_auth_stats(Compartment::Preparation, [replica] {
      return replica->prep().auth().stats();
    });
    actor->set_auth_stats(Compartment::Confirmation, [replica] {
      return replica->conf().auth().stats();
    });
    actor->set_auth_stats(Compartment::Execution, [replica] {
      return replica->exec().auth().stats();
    });
    for (const principal::Id id : group.replica_principals(r)) {
      group.harness().replace_actor(id, actor);
    }
  }
}

[[nodiscard]] std::uint64_t admission_rejects(PbftCluster& group) {
  std::uint64_t total = 0;
  for (ReplicaId r = 0; r < group.config().n; ++r) {
    total += group.replica(r).admission_rejects();
  }
  return total;
}

[[nodiscard]] std::uint64_t admission_rejects(SplitbftCluster& group) {
  std::uint64_t total = 0;
  for (ReplicaId r = 0; r < group.config().n; ++r) {
    total += group.replica(r).broker().admission_rejects();
  }
  return total;
}

/// Per-client pacing state; submission/completion plumbing runs through
/// the ShardedCluster result callbacks instead of a dedicated actor.
struct Slot {
  ClientId id{0};
  std::unique_ptr<OpGenerator> gen;
  Rng rng{0};
  bool measuring{false};
  bool stopped{false};
  Micros measured_from{0};
  std::deque<std::pair<Micros, GeneratedOp>> queued;
};

template <typename Stack>
class ShardedLoad {
 public:
  explicit ShardedLoad(const Options& options) : options_(options) {
    ShardedClusterOptions copts;
    copts.shards = std::max<std::uint32_t>(options.shards, 1);
    copts.config = options.protocol;
    copts.seed = options.seed;
    copts.link_params.min_delay_us = 60;
    copts.link_params.max_delay_us = 140;
    cluster_ = std::make_unique<ShardedCluster<Stack>>(copts);
    for (std::uint32_t s = 0; s < cluster_->shards(); ++s) {
      wrap_perf(cluster_->group(s), options_.workers);
    }
  }

  [[nodiscard]] Report run() {
    add_load_clients();
    start_staggered();
    cluster_->run_for(options_.warmup_us);
    for (auto& slot : slots_) slot->measuring = true;
    bool sustained = true;
    std::uint64_t prev = hist_.count();
    for (int quarter = 0; quarter < 4; ++quarter) {
      cluster_->run_for(options_.measure_us / 4);
      const std::uint64_t now_count = hist_.count();
      if (now_count == prev) sustained = false;
      prev = now_count;
    }
    for (auto& slot : slots_) slot->measuring = false;

    Report report;
    summarize_into(hist_, options_.measure_us, report);
    report.sustained = sustained && report.completed_ops > 0;
    for (const auto& slot : slots_) {
      const auto& router = cluster_->router(slot->id);
      report.fast_reads += router.fast_reads();
      report.read_fallbacks += router.read_fallbacks();
      const auto& stats = router.stats();
      report.sharding.multi_ops += stats.multi_ops;
      report.sharding.single_shard_multi += stats.single_shard_multi;
      report.sharding.cross_shard_tx += stats.cross_shard_tx;
      report.sharding.tx_commits += stats.tx_commits;
      report.sharding.tx_aborts += stats.tx_aborts_vote +
                                   stats.tx_aborts_busy +
                                   stats.tx_aborts_expired;
      report.sharding.busy_retries += stats.busy_retries;
    }
    for (std::uint32_t s = 0; s < cluster_->shards(); ++s) {
      report.admission_rejects += admission_rejects(cluster_->group(s));
    }
    if (options_.cross_shard_fraction > 0 && options_.multi_keys >= 2) {
      audit_atomicity(report);
    }
    return report;
  }

 private:
  void submit(Slot& slot, GeneratedOp op, Micros measured_from) {
    slot.measured_from = measured_from;
    cluster_->submit(slot.id, std::move(op.op), op.read_only);
  }

  void on_complete(const std::shared_ptr<Slot>& slot, Micros now) {
    if (slot->measuring) hist_.record(now - slot->measured_from);
    if (slot->stopped) return;
    if (options_.mode == LoadMode::Open) {
      if (!slot->queued.empty()) {
        auto [arrived, op] = std::move(slot->queued.front());
        slot->queued.pop_front();
        // Open loop measures from ARRIVAL: queueing delay stays visible.
        submit(*slot, std::move(op), arrived);
      }
      return;
    }
    const Micros think = exponential_us(slot->rng, options_.think_time_us);
    if (think == 0) {
      submit(*slot, slot->gen->next(), now);
      return;
    }
    cluster_->scheduler().after(think, [this, slot] {
      if (slot->stopped) return;
      const Micros t = cluster_->now();
      submit(*slot, slot->gen->next(), t);
    });
  }

  void schedule_arrival(const std::shared_ptr<Slot>& slot) {
    const Micros gap = std::max<Micros>(
        1, exponential_us(slot->rng, options_.interarrival_us));
    cluster_->scheduler().after(gap, [this, slot] {
      if (slot->stopped) return;
      const Micros t = cluster_->now();
      if (!cluster_->router(slot->id).in_flight()) {
        submit(*slot, slot->gen->next(), t);
      } else if (slot->queued.size() < kMaxQueued) {
        slot->queued.emplace_back(t, slot->gen->next());
      }
      // else: shed load, as the single-group driver does.
      schedule_arrival(slot);
    });
  }

  void add_load_clients() {
    slots_.reserve(options_.clients);
    for (std::uint32_t i = 0; i < options_.clients; ++i) {
      auto slot = std::make_shared<Slot>();
      slot->id = kFirstClientId + i;
      slot->gen = std::make_unique<OpGenerator>(
          options_, options_.seed * 1'000'003 + i);
      slot->rng = Rng((options_.seed * 1'000'003 + i) ^ 0x10adc11e47ULL);
      cluster_->add_client(slot->id, /*retry_us=*/4'000'000,
                           [this, slot](Bytes, Micros now) {
                             on_complete(slot, now);
                           });
      slots_.push_back(std::move(slot));
    }
  }

  void start_staggered() {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      auto slot = slots_[i];
      cluster_->scheduler().at(
          cluster_->now() + static_cast<Micros>(i * 13 + 1), [this, slot] {
            if (options_.mode == LoadMode::Open) {
              schedule_arrival(slot);
            } else {
              submit(*slot, slot->gen->next(), cluster_->now());
            }
          });
    }
  }

  /// Stops the load, drains in-flight transactions, and reads back every
  /// multi-op key group through the protocol: all keys of a group were
  /// only ever written together with one value, so any disagreement
  /// (including a mix of present and missing keys) is a torn write.
  void audit_atomicity(Report& report) {
    for (auto& slot : slots_) slot->stopped = true;
    (void)cluster_->run_until(
        [&] {
          for (const auto& slot : slots_) {
            if (cluster_->router(slot->id).in_flight()) return false;
          }
          return true;
        },
        30'000'000);

    const ClientId verifier = kFirstClientId + options_.clients;
    cluster_->add_client(verifier, /*retry_us=*/4'000'000);
    for (std::uint64_t g = 0; g < options_.multi_groups; ++g) {
      bool first = true;
      bool torn = false;
      Bytes reference;
      for (const auto& key : group_keys(options_, g)) {
        const auto result =
            cluster_->execute(verifier, apps::kv::encode_get(key));
        if (!result) {
          torn = true;  // an unreadable key fails loudly, not silently
          break;
        }
        // Compare full replies so NotFound vs an empty value differ.
        if (first) {
          reference = *result;
          first = false;
        } else if (*result != reference) {
          torn = true;
          break;
        }
      }
      ++report.sharding.groups_checked;
      if (torn) ++report.sharding.torn_groups;
    }
  }

  static constexpr std::size_t kMaxQueued = 256;

  Options options_;
  std::unique_ptr<ShardedCluster<Stack>> cluster_;
  std::vector<std::shared_ptr<Slot>> slots_;
  LatencyHistogram hist_;
};

}  // namespace

Report run_sharded_sim_workload(const Options& options) {
  if (options.stack == Stack::Pbft) {
    ShardedLoad<PbftShardStack> load(options);
    return load.run();
  }
  ShardedLoad<SplitbftShardStack> load(options);
  return load.run();
}

}  // namespace sbft::runtime::workload
