// Workload engine, sharded simulator driver.
//
// Runs the configured load shape against an N-group sharded deployment
// (runtime/sharded_cluster.hpp) in virtual time: every load client is a
// shard::Router spanning all groups, replicas are wrapped in the perf
// model, and the groups advance in lockstep. `Options::shards == 1`
// runs the same code path (router + one group), so shard-count sweeps
// compare like with like.
//
// When `cross_shard_fraction > 0`, the run ends with an atomicity
// audit: load stops, in-flight transactions drain, and a verifier
// client reads back every multi-op key group — any group whose keys
// disagree is a torn transaction and lands in
// `Report::sharding.torn_groups`.
#pragma once

#include "runtime/workload/workload.hpp"

namespace sbft::runtime::workload {

/// Runs one sharded load point to completion in virtual time.
[[nodiscard]] Report run_sharded_sim_workload(const Options& options);

}  // namespace sbft::runtime::workload
