// Scale-out workload engine — configuration, generators and reports.
//
// Turns the protocol reproduction into a system that can be saturated: an
// open/closed-loop load generator driving thousands of concurrent clients
// (per-client session state, think times, request-size distribution and
// Zipf key skew for the KV application) over either the deterministic
// simulator (runtime/workload/sim_driver.hpp — virtual time, perf-modeled
// replicas, reproducible from the seed) or the real threaded runtime
// (runtime/workload/thread_driver.hpp — ThreadNetwork endpoints, wall
// clock, real contention on the pipelined-batching paths).
//
//  * Closed loop: each client keeps exactly one request in flight and
//    thinks for an exponentially distributed pause after each completion —
//    throughput is offered by the system's own speed (classic closed
//    queueing network; what the paper's figures measure).
//  * Open loop: requests arrive per client as a Poisson process regardless
//    of completions; a client whose previous request is still in flight
//    queues the arrival and submits it on completion. Latency is measured
//    from ARRIVAL, so queueing delay under overload is visible (the
//    coordinated-omission-free measurement closed loops cannot give).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "crypto/hmac.hpp"
#include "pbft/config.hpp"

namespace sbft::runtime::workload {

enum class Stack { Pbft, Splitbft };
enum class LoadMode { Closed, Open };

[[nodiscard]] const char* to_string(Stack s) noexcept;
[[nodiscard]] const char* to_string(LoadMode m) noexcept;

struct Options {
  Stack stack{Stack::Pbft};
  LoadMode mode{LoadMode::Closed};
  std::uint32_t clients{1000};

  /// Closed loop: mean think time between a completion and the next
  /// submission (exponential; 0 = immediate re-submission).
  Micros think_time_us{0};
  /// Open loop: mean inter-arrival time per client (Poisson arrivals).
  Micros interarrival_us{20'000};

  // --- KV workload shape ---
  /// Number of distinct keys (per deployment, shared across clients).
  std::uint64_t key_space{16'384};
  /// Zipf skew theta in [0, 1): 0 = uniform, 0.99 = YCSB-style hot keys.
  double key_skew{0.99};
  /// Fraction of GETs (remainder are writes).
  double get_fraction{0.5};
  /// Write mix: fraction of writes issued as CAS (expected = a fresh
  /// random value, so most mismatch — exercising the failure path) and
  /// as DEL. The remainder are plain PUTs.
  double cas_fraction{0.0};
  double del_fraction{0.0};
  /// Value size: uniform in [value_min_bytes, value_max_bytes].
  std::size_t value_min_bytes{10};
  std::size_t value_max_bytes{10};

  // --- sharding ---
  /// Shard groups the deployment runs (1 = single group, no router 2PC).
  std::uint32_t shards{1};
  /// Fraction of generated ops that are multi-key MultiOps over a key
  /// *group*. Group keys live ABOVE the single-key space and are only
  /// ever written whole-group with one unique value, so "all keys of a
  /// group are equal at quiescence" is the cross-shard atomicity
  /// invariant benches assert. Whether a given group actually spans
  /// shards is organic (keys are hash-placed); with `multi_keys` = k and
  /// s shards a fraction 1 - s^(1-k) of groups cross shards.
  double cross_shard_fraction{0.0};
  /// Keys per multi-op group (write-set size).
  std::uint32_t multi_keys{2};
  /// Number of distinct groups (uniformly chosen per multi op).
  std::uint64_t multi_groups{1024};

  /// Protocol configuration (n, f, batch_max, pipeline_depth, ...).
  pbft::Config protocol{};
  /// Execution-runner workers per replica: sizes the PBFT worker pool /
  /// SplitBFT in-enclave exec stage in the sim perf model, and the
  /// SpinOrderedRunner thread count in the threaded driver. 0 = serial
  /// reference path (SyncOrderedRunner; sim books one worker).
  std::size_t workers{4};
  Micros warmup_us{200'000};
  Micros measure_us{1'000'000};
  std::uint64_t seed{42};
};

struct Report {
  std::uint64_t completed_ops{0};
  /// Read fast-path accounting (whole run, warmup included): reads that
  /// completed in a single round / reads that fell back to ordering.
  /// Both zero when the read path is off.
  std::uint64_t fast_reads{0};
  std::uint64_t read_fallbacks{0};
  /// Fresh requests shed by replica-side admission control over the run
  /// (summed across replicas; 0 unless Config::admission_queue_cap is set).
  std::uint64_t admission_rejects{0};
  double ops_per_sec{0};
  double mean_latency_ms{0};
  Micros p50_us{0};
  Micros p95_us{0};
  Micros p99_us{0};
  Micros max_us{0};
  /// Non-empty latency-histogram buckets (JSON export).
  std::vector<LatencyHistogram::Bucket> histogram;
  /// True when the run sustained traffic: every measured window completed
  /// operations and no client starved (its in-flight request survived the
  /// whole measurement).
  bool sustained{false};

  /// Sharding counters, summed over routers by the sharded drivers (all
  /// zero for single-group runs).
  struct ShardingCounters {
    std::uint64_t multi_ops{0};
    std::uint64_t single_shard_multi{0};
    std::uint64_t cross_shard_tx{0};
    std::uint64_t tx_commits{0};
    std::uint64_t tx_aborts{0};
    std::uint64_t busy_retries{0};
    /// Post-run atomicity audit: key groups read back after quiescence /
    /// groups whose keys disagreed (MUST stay 0 — a torn multi-op).
    std::uint64_t groups_checked{0};
    std::uint64_t torn_groups{0};
  };
  ShardingCounters sharding;

  /// Transport-level counters, filled by drivers that run over a real
  /// transport (all zero for ThreadNetwork / simulator runs).
  struct TransportCounters {
    std::uint64_t bytes_in{0};
    std::uint64_t bytes_out{0};
    std::uint64_t frames_in{0};
    std::uint64_t frames_out{0};
    std::uint64_t writev_calls{0};
    double frames_per_writev{0};
    std::uint64_t reconnects{0};
    std::uint64_t backpressure_drops{0};
    /// State-transfer traffic split out from the totals above (recovery
    /// bandwidth vs. protocol bandwidth).
    std::uint64_t state_frames_in{0};
    std::uint64_t state_frames_out{0};
    std::uint64_t state_bytes_in{0};
    std::uint64_t state_bytes_out{0};
  };
  TransportCounters transport;
};

/// Fills the percentile/histogram fields of `report` from `hist`.
void summarize_into(const LatencyHistogram& hist, Micros measure_us,
                    Report& report);

/// Bounded Zipf(θ) sampler over [0, n) — Gray et al.'s incremental zeta
/// method, O(1) per sample after O(n_distinct_ranks) setup approximation.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta);

  [[nodiscard]] std::uint64_t next(Rng& rng);
  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }

 private:
  std::uint64_t n_{1};
  double theta_{0};
  double zetan_{1};
  double alpha_{0};
  double eta_{0};
};

/// One generated operation, tagged so drivers know whether it may take the
/// read fast path (Config::read_path permitting).
struct GeneratedOp {
  Bytes op;
  bool read_only{false};
};

/// Keys of multi-op group `group`: `multi_keys` consecutive ids starting
/// at key_space + group * multi_keys — disjoint from the single-key
/// space, so only whole-group writes ever touch them.
[[nodiscard]] std::vector<Bytes> group_keys(const Options& options,
                                            std::uint64_t group);

/// Per-client operation stream: KV GET/PUT/CAS/DEL ops with skewed keys
/// and sized values, plus whole-group MultiOps at `cross_shard_fraction`.
/// Deterministic from the seed; each client forks its own stream.
class OpGenerator {
 public:
  OpGenerator(const Options& options, std::uint64_t client_seed);

  /// Next serialized application operation, read-only tagged.
  [[nodiscard]] GeneratedOp next();

 private:
  [[nodiscard]] GeneratedOp next_multi();
  [[nodiscard]] Bytes next_value();

  ZipfGenerator zipf_;
  double get_fraction_;
  double cas_fraction_;
  double del_fraction_;
  std::size_t value_min_;
  std::size_t value_max_;
  double multi_fraction_;
  std::uint32_t multi_keys_;
  std::uint64_t multi_groups_;
  std::uint64_t group_base_;
  Rng rng_;
};

/// Exponentially distributed duration with the given mean (0 -> 0).
[[nodiscard]] Micros exponential_us(Rng& rng, Micros mean_us);

/// Deterministic out-of-band SplitBFT session key for a workload client.
/// Both drivers derive from here — the client adopts this key and every
/// Execution enclave has it pre-installed, so the two sides MUST agree.
[[nodiscard]] crypto::Key32 session_key(std::uint64_t seed, ClientId client);

/// One JSON object describing a run (no trailing newline).
[[nodiscard]] std::string report_json(const Options& options,
                                      const Report& report);

}  // namespace sbft::runtime::workload
