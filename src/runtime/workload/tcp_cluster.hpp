// Multi-process cluster assembly over the real TCP transport.
//
// A deployment is `replicas + loadgens` NODES, each one TcpTransport
// instance (usually one process, but tests host several nodes in-process —
// the sockets are real either way). Node ids are positional:
//
//   nodes [0, replicas)                     replica hosts
//   nodes [replicas, replicas + loadgens)   load generators
//
// `ClusterTopology::route()` maps every principal to its host node; all
// processes derive identical keys from the shared seed (the same
// deterministic provisioning the threaded driver uses in-process), so no
// key-distribution channel is needed — this is a benchmark harness, not a
// PKI.
//
//  * `ReplicaNode` assembles one replica of either stack behind a
//    transport endpoint plus a 500µs protocol ticker thread.
//  * `run_tcp_workload` is the loadgen side: the PR-4 workload engine's
//    stations paced over the transport, reporting the same JSON `Report`
//    schema as the sim/thread drivers plus the transport counters.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp_transport.hpp"
#include "pbft/state_transfer.hpp"
#include "runtime/workload/workload.hpp"

namespace sbft::runtime::workload {

struct ClusterTopology {
  std::uint32_t replicas{4};
  std::uint32_t loadgens{1};
  /// Listen address per node (size == replicas + loadgens):
  /// "host:port" or "unix:/path".
  std::vector<std::string> addrs;

  [[nodiscard]] std::uint32_t nodes() const noexcept {
    return replicas + loadgens;
  }

  /// The node hosting a principal. Clients round-robin over loadgens;
  /// a replica's every principal (PBFT replica, SplitBFT broker and
  /// enclaves) lives on its node.
  [[nodiscard]] std::uint32_t node_of(principal::Id id) const noexcept;

  /// route() for TcpTransport (a pure function of the counts above).
  [[nodiscard]] net::TcpTransport::RouteFn route() const;

  /// Transport for node `node`, listening on its topology address with
  /// every other node declared as a peer.
  [[nodiscard]] std::unique_ptr<net::TcpTransport> make_transport(
      std::uint32_t node, net::TcpTransport::Options options = {}) const;
};

/// One replica host: protocol state machine + transport + ticker thread.
class ReplicaNode {
 public:
  /// `options` carries the stack, seed, protocol config, worker count and
  /// the expected client count (for out-of-band SplitBFT session keys).
  ReplicaNode(const Options& options, const ClusterTopology& topology,
              ReplicaId replica, net::TcpTransport::Options transport_options);
  ~ReplicaNode();
  ReplicaNode(const ReplicaNode&) = delete;
  ReplicaNode& operator=(const ReplicaNode&) = delete;

  /// Binds, registers endpoints and starts the ticker. False on bind
  /// errors (see transport().last_error()).
  [[nodiscard]] bool start();
  void stop();

  [[nodiscard]] net::TcpTransport& transport() noexcept { return *transport_; }
  [[nodiscard]] std::uint64_t admission_rejects() const;
  /// Recovery introspection (mid-transfer kill tests, bench): the engine's
  /// execution frontier and its state-transfer counters.
  [[nodiscard]] SeqNum last_executed() const;
  [[nodiscard]] SeqNum last_stable() const;
  [[nodiscard]] bool awaiting_state() const;
  [[nodiscard]] pbft::StateTransferStats state_transfer_stats() const;

 private:
  struct Impl;
  void ticker_main();

  Options options_;
  ClusterTopology topology_;
  ReplicaId replica_;
  std::unique_ptr<net::TcpTransport> transport_;
  std::unique_ptr<Impl> impl_;
  std::thread ticker_;
  std::atomic<bool> running_{false};
};

/// Runs the workload from loadgen node `replicas + loadgen_index`: this
/// process drives every client with `id % loadgens == loadgen_index`.
/// Blocks for warmup + measure, then reports (transport counters filled).
[[nodiscard]] Report run_tcp_workload(const Options& options,
                                      const ClusterTopology& topology,
                                      std::uint32_t loadgen_index,
                                      net::TcpTransport::Options
                                          transport_options = {});

// ------------------------------------------------------------- sharding
//
// A sharded deployment is `shards` fully independent groups sharing one
// flat address plan: shard `s`'s nodes occupy the contiguous block
// starting at `s * (replicas + loadgens)`. Replica processes join ONE
// shard (their topology slice, with the shard-derived seed); loadgen
// processes open one transport per shard, because the shards' principal
// id spaces coincide and only the socket tells them apart.

/// Slices a flat `shards * (replicas + loadgens)` address plan into one
/// topology per shard.
[[nodiscard]] std::vector<ClusterTopology> sharded_topologies(
    std::uint32_t shards, std::uint32_t replicas, std::uint32_t loadgens,
    const std::vector<std::string>& flat_addrs);

/// Per-shard effective options: the seed is replaced by
/// `shard::shard_seed(seed, shard)`, so each group's replica processes
/// and the loadgen's per-shard client engines derive that group's key
/// material independently, with no distribution channel.
[[nodiscard]] Options shard_options(Options options, std::uint32_t shard);

/// Loadgen node of a sharded deployment: every driven client is a
/// `shard::Router` over one engine per shard, single-key ops one-group
/// fast, cross-shard `MultiOp`s via 2PC-over-BFT. When
/// `options.cross_shard_fraction > 0` the run ends with the torn-write
/// audit (load stops, transactions drain, a verifier reads back every
/// multi-op key group through the protocol); results land in
/// `Report::sharding`. Transport counters are summed over the shards.
[[nodiscard]] Report run_sharded_tcp_workload(
    const Options& options, const std::vector<ClusterTopology>& topologies,
    std::uint32_t loadgen_index,
    net::TcpTransport::Options transport_options = {});

}  // namespace sbft::runtime::workload
